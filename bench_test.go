// Package vrex's top-level benchmarks regenerate every table and figure of
// the paper through the experiment runners (one benchmark per artifact), and
// additionally benchmark the core algorithm kernels so `go test -bench=.`
// reports both reproduction output cost and kernel-level throughput.
package vrex_test

import (
	"io"
	"testing"

	"vrex/internal/core"
	"vrex/internal/experiments"
	"vrex/internal/hashbit"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/parallel"
	"vrex/internal/report"
	"vrex/internal/serve"
	"vrex/internal/telemetry"
	"vrex/internal/tensor"
	"vrex/internal/wicsum"
	"vrex/internal/workload"
)

// heavyExperiments run full accuracy evaluations even in Quick mode; they
// dominate bench wall time (several seconds each), so the -short smoke run
// used by CI skips them.
var heavyExperiments = map[string]bool{
	"tab2": true, "fig19": true, "multiturn": true,
	"sweep-thwics": true, "sweep-thhd": true, "sweep-nhp": true,
}

// benchExperiment drives one experiment runner end to end in Quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() && heavyExperiments[id] {
		b.Skipf("experiment %s runs full-fidelity sessions; skipped in -short", id)
	}
	opts := experiments.Options{Sessions: 2, Seed: 7, Quick: true}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aMemoryFootprint(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4bLatencyBreakdown(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4cRetrievalOverhead(b *testing.B) {
	benchExperiment(b, "fig4c")
}
func BenchmarkFig7Similarity(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig13LatencyEnergy(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14E2EBreakdown(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15Throughput(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16Ablation(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17Bandwidth(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18Roofline(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19ReSVAblation(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20RatioDistribution(b *testing.B) {
	benchExperiment(b, "fig20")
}
func BenchmarkMemoryPressure(b *testing.B) { benchExperiment(b, "memory") }

// BenchmarkScheduler drives the continuous-batching scheduler plane end to
// end through the slo experiment (load x policy x batch-cap sweep).
func BenchmarkScheduler(b *testing.B) { benchExperiment(b, "slo") }

// BenchmarkScenarioSuite drives the committed .vrex workload suite plus the
// adversarial load-shape search through the scenarios experiment.
func BenchmarkScenarioSuite(b *testing.B) { benchExperiment(b, "scenarios") }

// BenchmarkCluster drives the cluster plane end to end through the cluster
// experiment (node x router sweep, drain + recovery over LAN/WAN with live
// KV migration, autoscaler cold start).
func BenchmarkCluster(b *testing.B) { benchExperiment(b, "cluster") }

// BenchmarkPareto drives the degradation plane end to end through the pareto
// experiment (scheduler x eviction x degrader sweep over a KV-starved flash
// crowd).
func BenchmarkPareto(b *testing.B)          { benchExperiment(b, "pareto") }
func BenchmarkTable1Hardware(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTable2Accuracy(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkTable3AreaPower(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkTelemetry drives the observability plane end to end through the
// telemetry experiment (cluster drain scenario with a collector attached,
// span reconstruction, Chrome trace and Prometheus exports).
func BenchmarkTelemetry(b *testing.B) { benchExperiment(b, "telemetry") }

// telemetryBenchConfig is the serving run BenchmarkTelemetryOverhead prices:
// scheduler + KV pressure so the hot paths with telemetry hooks (frame
// service, paging, batching) all execute.
func telemetryBenchConfig() serve.Config {
	sched, err := serve.ParseScheduler("edf")
	if err != nil {
		panic(err)
	}
	sp, err := kvpool.ParseSpill("spill(evict=lru,pages=8)")
	if err != nil {
		panic(err)
	}
	classes, err := serve.ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		panic(err)
	}
	for i := range classes {
		classes[i].Stream.StartKV = 8000
	}
	return serve.Config{
		Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
		Streams: 8, Duration: 10, Classes: classes, Devices: 2,
		KV:            serve.KVConfig{Capacity: 35 * 256 * 131072, Spill: sp},
		Scheduler:     serve.SchedulerConfig{Policy: sched, BatchMax: 4},
		DropThreshold: 4, Seed: 7,
	}
}

// BenchmarkTelemetryOverhead isolates the cost of the telemetry hooks at both
// levels. step/* prices the hot simulation path (hwsim.Chunk) with phase
// attribution detached vs attached — the nil check is free and the attached
// accumulation is a handful of float adds, ≤1% of a step. run/* prices a whole
// serving run with the plane disabled vs a full collector + profile attached;
// the delta there is event buffering, the price of keeping every observation.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("step/nil", func(b *testing.B) {
		sim := hwsim.NewSim(hwsim.VRex8(), hwsim.Llama3_8B(), hwsim.ReSVModel())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Chunk(10, 40000, 1, 10)
		}
	})
	b.Run("step/profiled", func(b *testing.B) {
		sim := hwsim.NewSim(hwsim.VRex8(), hwsim.Llama3_8B(), hwsim.ReSVModel())
		sim.Phases = &hwsim.PhaseAccount{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Chunk(10, 40000, 1, 10)
		}
	})
	b.Run("run/nil", func(b *testing.B) {
		cfg := telemetryBenchConfig()
		for i := 0; i < b.N; i++ {
			_ = serve.Run(cfg)
		}
	})
	b.Run("run/collected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := telemetryBenchConfig()
			col := telemetry.NewCollector()
			col.Attach(&cfg)
			_ = serve.Run(cfg)
		}
	})
}

// benchRunAll dispatches the full registry through the parallel engine with
// the given worker count (Quick mode, accuracy sessions trimmed); comparing
// the two benchmarks below shows the experiment-level fan-out win directly.
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	if testing.Short() {
		b.Skip("full registry dispatch; skipped in -short")
	}
	opts := experiments.Options{Sessions: 2, Seed: 7, Quick: true, Parallel: workers}
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(opts, io.Discard, report.FormatText); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B)   { benchRunAll(b, 0) }

// --- Kernel-level benchmarks ---

// BenchmarkParallelMapOverhead measures the pool's fixed fan-out/fan-in cost
// on trivial tasks (the floor for any sharded kernel).
func BenchmarkParallelMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = parallel.Map(0, 64, func(i int) int { return i })
	}
}

// BenchmarkHashBitClustering measures ReSV stage 1 on a frame of keys
// against a grown cluster table (the HCU's work).
func BenchmarkHashBitClustering(b *testing.B) {
	const dim, tokens = 1024, 10
	rng := mathx.NewRNG(1)
	cl := hashbit.NewClusterer(dim, 32, 7, rng.Split())
	warm := tensor.NewMatrix(320, dim)
	warm.Randomize(rng, 1)
	cl.AddFrame(warm, 0)
	frame := tensor.NewMatrix(tokens, dim)
	frame.Randomize(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.AddFrame(frame, 320+i*tokens)
	}
}

// BenchmarkHamming measures the raw XOR-accumulate primitive.
func BenchmarkHamming(b *testing.B) {
	x := hashbit.Signature{0xdeadbeefcafebabe}
	y := hashbit.Signature{0x0123456789abcdef}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hashbit.Hamming(x, y)
	}
}

// BenchmarkWiCSumExact measures exact WiCSum thresholding on a 1250-cluster
// row (the 40K-cache operating point: 40K tokens / 32 per cluster).
func BenchmarkWiCSumExact(b *testing.B) {
	rng := mathx.NewRNG(2)
	mass := make([]float32, 1250)
	counts := make([]int, 1250)
	for i := range mass {
		mass[i] = rng.Float32()
		counts[i] = 1 + rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wicsum.SelectRow(mass, counts, 0.3)
	}
}

// BenchmarkWiCSumEarlyExit measures the WTU dataflow on the same row.
func BenchmarkWiCSumEarlyExit(b *testing.B) {
	rng := mathx.NewRNG(2)
	mass := make([]float32, 1250)
	counts := make([]int, 1250)
	for i := range mass {
		mass[i] = rng.Float32()
		counts[i] = 1 + rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wicsum.SelectRowEarlyExit(mass, counts, 0.3, 20)
	}
}

// BenchmarkModelForwardDense measures one frame forward with full attention.
func BenchmarkModelForwardDense(b *testing.B) {
	cfg := model.DefaultConfig()
	m := model.New(cfg)
	rng := mathx.NewRNG(3)
	warm := tensor.NewMatrix(200, cfg.Dim)
	warm.Randomize(rng, 1)
	m.Forward(warm, model.DenseRetriever{}, model.StageFrame, false)
	frame := tensor.NewMatrix(10, cfg.Dim)
	frame.Randomize(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(frame, model.DenseRetriever{}, model.StageFrame, false)
	}
}

// BenchmarkModelForwardReSV measures one frame forward under ReSV retrieval.
func BenchmarkModelForwardReSV(b *testing.B) {
	cfg := model.DefaultConfig()
	m := model.New(cfg)
	r := core.New(cfg, core.DefaultConfig())
	rng := mathx.NewRNG(3)
	warm := tensor.NewMatrix(200, cfg.Dim)
	warm.Randomize(rng, 1)
	m.Forward(warm, r, model.StageFrame, false)
	frame := tensor.NewMatrix(10, cfg.Dim)
	frame.Randomize(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(frame, r, model.StageFrame, false)
	}
}

// BenchmarkHWSimFrame measures the analytic simulator itself.
func BenchmarkHWSimFrame(b *testing.B) {
	sim := hwsim.NewSim(hwsim.VRex8(), hwsim.Llama3_8B(), hwsim.ReSVModel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.FrameLatency(10, 40000, 1)
	}
}

// BenchmarkWorkloadSession measures COIN-like session generation.
func BenchmarkWorkloadSession(b *testing.B) {
	gen := workload.NewGenerator(workload.DefaultConfig(), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Session(workload.TaskStep, i)
	}
}
