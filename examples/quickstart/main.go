// Quickstart: run a streaming video LLM session with ReSV retrieval.
//
// A synthetic video stream is encoded frame by frame and pushed through the
// functional transformer in iterative-prefill mode with ReSV selecting which
// past KV entries each layer attends to. At the end we ask a question and
// print the retrieval statistics ReSV accumulated.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"vrex/internal/core"
	"vrex/internal/kvcache"
	"vrex/internal/model"
	"vrex/internal/vision"
)

func main() {
	// 1. A small functional model (Llama-like decoder) and a ReSV retriever
	//    with the paper's hyperparameters (N_hp=32, Th_hd=7, Th_wics=0.3).
	mcfg := model.DefaultConfig()
	llm := model.New(mcfg)
	resv := core.New(mcfg, core.DefaultConfig())

	// Track tiered-memory traffic: a 64-token device budget spilling to
	// storage, as an edge deployment would.
	resv.AttachHierarchy(llm, 64, kvcache.TierStorage)

	// 2. A synthetic video stream and the vision tower + projector.
	scfg := vision.DefaultStreamConfig()
	stream := vision.NewStream(scfg)
	enc := vision.NewEncoder(scfg.TokensPerFrame, scfg.PixelDim, 96, 11)
	proj := vision.NewProjector(96, 2*mcfg.Dim, mcfg.Dim, 12)

	// 3. Iterative prefill: one frame at a time (Fig. 3 of the paper).
	const frames = 24
	for i := 0; i < frames; i++ {
		frame := stream.Next()
		embeds := proj.Project(enc.Encode(frame))
		llm.Forward(embeds, resv, model.StageFrame, false)
	}
	fmt.Printf("processed %d frames -> %d cached tokens per layer\n", frames, llm.Pos())

	// 4. Ask a question: reuse the last frame's content as a query stand-in.
	frame := stream.Next()
	question := proj.Project(enc.Encode(frame))
	out := llm.Forward(question, resv, model.StageText, true)
	fmt.Printf("question processed, hidden state %dx%d\n", out.Hidden.Rows, out.Hidden.Cols)

	// 5. What did ReSV do?
	st := resv.Stats()
	fmt.Printf("frame-stage retrieval ratio : %5.1f%%\n", 100*st.Frame.RetrievalRatio())
	fmt.Printf("text-stage retrieval ratio  : %5.1f%%\n", 100*st.Text.RetrievalRatio())
	fmt.Printf("WTU early-exit examined     : %5.1f%% of entries\n", 100*st.Frame.AvgExaminedFraction())
	fmt.Printf("avg tokens per hash cluster : %5.1f\n", resv.HCTable(0).AvgTokensPerCluster())
	log := resv.TransferLog()
	fmt.Printf("offloaded %d KB, fetched %d KB in %d segments\n",
		log.OffloadBytes/1024, log.FetchBytes/1024, log.FetchSegments)
}
