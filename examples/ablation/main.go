// Ablation walkthrough: how much does each ReSV / V-Rex mechanism buy?
//
// Functional plane: run the same COIN-like session with clustering on/off
// and different WiCSum thresholds, printing accuracy-relevant selection
// behaviour. Performance plane: replay Fig. 16's cumulative hardware gains.
//
//	go run ./examples/ablation
package main

import (
	"fmt"

	"vrex/internal/core"
	"vrex/internal/hwsim"
	"vrex/internal/model"
	"vrex/internal/workload"
)

func main() {
	mcfg := model.DefaultConfig()
	wcfg := workload.DefaultConfig()
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	sess := gen.Session(workload.TaskStep, 2)

	fmt.Println("-- functional plane: selection behaviour --")
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"ReSV (Th_wics=0.3, clustering on)", core.DefaultConfig()},
		{"ReSV w/o clustering", func() core.Config {
			c := core.DefaultConfig()
			c.DisableClustering = true
			return c
		}()},
		{"ReSV with Th_wics=0.8", func() core.Config {
			c := core.DefaultConfig()
			c.ThWics = 0.8
			return c
		}()},
	} {
		m := model.New(mcfg)
		r := core.New(mcfg, cfg.c)
		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, r, model.StageFrame, false)
		}
		st := r.Stats()
		fmt.Printf("%-36s frame ratio %5.1f%%, tokens/cluster %4.1f, examined %4.1f%%\n",
			cfg.name, 100*st.Frame.RetrievalRatio(),
			r.HCTable(0).AvgTokensPerCluster(), 100*st.Frame.AvgExaminedFraction())
	}

	fmt.Println()
	fmt.Println("-- performance plane: Fig. 16 cumulative gains at 40K --")
	llm := hwsim.Llama3_8B()
	kvpuOnly := hwsim.ReSVModel()
	kvpuOnly.SegmentTokens = 4 // no KVMU cluster-contiguous mapping
	steps := []struct {
		name string
		dev  hwsim.DeviceSpec
		pol  hwsim.PolicyModel
	}{
		{"AGX+FlexGen (baseline)", hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{"AGX+ReSV (algorithm only)", hwsim.AGXOrin(), hwsim.ReSVOnGPUModel()},
		{"V-Rex8 KVPU (HCU+WTU)", hwsim.VRex8(), kvpuOnly},
		{"V-Rex8 All (+KVMU)", hwsim.VRex8(), hwsim.ReSVModel()},
	}
	var base hwsim.Breakdown
	for i, st := range steps {
		b := hwsim.NewSim(st.dev, llm, st.pol).FrameLatency(10, 40000, 1)
		if i == 0 {
			base = b
		}
		fmt.Printf("%-28s %7.0f ms (%4.1fx), %6.1f J (%4.1fx energy)\n",
			//vrex:nonfinite-ok FrameLatency totals and energies are strictly positive
			st.name, b.Total*1000, base.Total/b.Total, b.EnergyJ, base.EnergyJ/b.EnergyJ)
	}
}
