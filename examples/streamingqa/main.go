// Streaming QA: multi-turn question answering over a COIN-like instructional
// video, comparing ReSV against dense attention and a fixed-top-k baseline.
//
// This is the workload the paper's Table II evaluates: queries reference
// specific past steps of the video, so a retrieval policy that drops the
// evidence tokens answers wrongly. The example prints per-policy answers,
// accuracy and retrieval ratios.
//
//	go run ./examples/streamingqa
package main

import (
	"fmt"

	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

func main() {
	mcfg := model.DefaultConfig()
	wcfg := workload.DefaultConfig()
	wcfg.Queries = 4

	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	sess := gen.Session(workload.TaskTask, 0)
	fmt.Printf("video: %d frames, %d scenes, %d queries\n",
		len(sess.FrameEmbeds), sess.SceneOf[len(sess.SceneOf)-1]+1, len(sess.Queries))

	policies := []struct {
		name string
		pol  model.Retriever
	}{
		{"VideoLLM-Online (dense)", retrieval.NewDense()},
		{"InfiniGenP (fixed top-k)", retrieval.NewInfiniGenP(mcfg, 0.5, 0.068)},
		{"ReSV (V-Rex)", core.New(mcfg, core.DefaultConfig())},
	}

	for _, p := range policies {
		m := model.New(mcfg)
		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, p.pol, model.StageFrame, false)
		}
		frameTokens := m.Pos()

		correct := 0
		for qi, q := range sess.Queries {
			out := m.Forward(q.Embeddings, p.pol, model.StageText, true)
			got := answer(out.AttnMass, sess, frameTokens)
			ok := got == q.TargetScene
			if ok {
				correct++
			}
			fmt.Printf("  [%s] Q%d: which step? -> scene %d (truth %d) %v\n",
				p.name, qi, got, q.TargetScene, mark(ok))
		}
		fmt.Printf("  [%s] accuracy %d/%d", p.name, correct, len(sess.Queries))
		if rp, ok := p.pol.(retrieval.Policy); ok {
			fmt.Printf(", retrieval ratio frame %.1f%% / text %.1f%%",
				100*rp.FrameRatio(), 100*rp.TextRatio())
		}
		fmt.Println()
	}
}

func mark(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}

// answer reads the attended-scene argmax (the planted-saliency QA proxy of
// internal/accuracy).
func answer(mass []float64, sess *workload.Session, frameTokens int) int {
	nScenes := sess.SceneOf[len(sess.SceneOf)-1] + 1
	perScene := make([]float64, nScenes)
	counts := make([]float64, nScenes)
	limit := len(mass)
	if frameTokens < limit {
		limit = frameTokens
	}
	for tok := 0; tok < limit; tok++ {
		sc := sess.SceneOf[sess.FrameOfToken(tok)]
		perScene[sc] += mass[tok]
	}
	for _, sc := range sess.SceneOf {
		counts[sc]++
	}
	best, bestV := 0, -1.0
	for sc := range perScene {
		v := perScene[sc] / counts[sc]
		if v > bestV {
			best, bestV = sc, v
		}
	}
	return best
}
