// Serving-scale demo: how many concurrent 2 FPS video streams can each
// system keep real-time? This exercises the multi-stream serving simulator
// (internal/serve) behind the paper's closing claim about scalable server
// deployment.
//
//	go run ./examples/serving
package main

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/serve"
)

func main() {
	mk := func(dev hwsim.DeviceSpec, pol hwsim.PolicyModel, kv int) serve.Config {
		sc := serve.DefaultStreamConfig()
		sc.StartKV = kv
		sc.QueryEvery = 0
		return serve.Config{
			Dev: dev, Pol: pol, Streams: 1, Duration: 15,
			Stream: sc, DropThreshold: 4, Seed: 42,
		}
	}
	systems := []struct {
		dev hwsim.DeviceSpec
		pol hwsim.PolicyModel
	}{
		{hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{hwsim.AGXOrin(), hwsim.ReKVModel()},
		{hwsim.VRex8(), hwsim.ReSVModel()},
		{hwsim.A100(), hwsim.FlexGenModel()},
		{hwsim.VRex48(), hwsim.ReSVModel()},
	}
	fmt.Println("max concurrent real-time 2 FPS streams (95% frames on time)")
	fmt.Printf("%-22s %8s %8s\n", "system", "kv=5K", "kv=20K")
	for _, s := range systems {
		n5 := serve.MaxRealTimeStreams(mk(s.dev, s.pol, 5000), 32)
		n20 := serve.MaxRealTimeStreams(mk(s.dev, s.pol, 20000), 32)
		fmt.Printf("%-22s %8d %8d\n", s.dev.Name+"+"+s.pol.Name, n5, n20)
	}

	fmt.Println()
	fmt.Println("3 streams at 20K KV on V-Rex8, with interleaved queries:")
	cfg := mk(hwsim.VRex8(), hwsim.ReSVModel(), 20000)
	cfg.Streams = 3
	cfg.Stream.QueryEvery = 10
	res := serve.Run(cfg)
	for i, m := range res.PerStream {
		fmt.Printf("  stream %d: %.1f FPS, p50 %.0f ms, p99 %.0f ms, %d queries, %d dropped\n",
			i, m.AchievedFPS, m.P50*1000, m.P99*1000, m.QueriesServed, m.FramesDropped)
	}
	fmt.Printf("  device utilization: %.0f%%\n", 100*res.Utilization)
}
