// Edge deployment simulation: reproduce the headline Fig. 13(a) comparison —
// V-Rex8 vs an AGX Orin GPU running retrieval baselines — and print
// per-frame latency, FPS, and energy efficiency across KV cache lengths.
//
//	go run ./examples/edgesim
package main

import (
	"fmt"

	"vrex/internal/hwsim"
)

func main() {
	llm := hwsim.Llama3_8B()
	kvLens := []int{1000, 5000, 10000, 20000, 40000}

	systems := []struct {
		dev hwsim.DeviceSpec
		pol hwsim.PolicyModel
	}{
		{hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{hwsim.AGXOrin(), hwsim.InfiniGenPModel()},
		{hwsim.AGXOrin(), hwsim.ReKVModel()},
		{hwsim.VRex8(), hwsim.ReSVModel()},
	}

	fmt.Println("per-frame latency (ms) / FPS / GOPS/W at batch 1 (paper Fig. 13a)")
	for _, s := range systems {
		fmt.Printf("%-22s", s.dev.Name+"+"+s.pol.Name)
		for _, kv := range kvLens {
			b := hwsim.NewSim(s.dev, llm, s.pol).FrameLatency(10, kv, 1)
			fmt.Printf("  %6.0fms/%4.1ffps/%5.1f", b.Total*1000, b.FPS(), b.GOPSPerWatt())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("headline: V-Rex8 speedup and energy gain over AGX+FlexGen")
	for _, kv := range kvLens {
		g := hwsim.NewSim(hwsim.AGXOrin(), llm, hwsim.FlexGenModel()).FrameLatency(10, kv, 1)
		v := hwsim.NewSim(hwsim.VRex8(), llm, hwsim.ReSVModel()).FrameLatency(10, kv, 1)
		fmt.Printf("  kv=%6d: %.1fx faster, %.1fx more energy-efficient, V-Rex8 at %.1f FPS\n",
			//vrex:nonfinite-ok FrameLatency totals and GOPS/W are strictly positive
			kv, g.Total/v.Total, v.GOPSPerWatt()/g.GOPSPerWatt(), v.FPS())
	}

	fmt.Println()
	fmt.Println("what the DRE buys (40K cache): exposed KV-prediction time")
	gpu := hwsim.NewSim(hwsim.AGXOrin(), llm, hwsim.ReSVOnGPUModel()).FrameLatency(10, 40000, 1)
	dre := hwsim.NewSim(hwsim.VRex8(), llm, hwsim.ReSVModel()).FrameLatency(10, 40000, 1)
	fmt.Printf("  ReSV prediction on GPU : %6.1f ms exposed (%.0f%% of frame)\n",
		//vrex:nonfinite-ok frame totals are strictly positive
		gpu.PredExposed*1000, 100*gpu.PredExposed/gpu.Total)
	fmt.Printf("  ReSV prediction on DRE : %6.3f ms exposed (%.2f%% of frame)\n",
		//vrex:nonfinite-ok frame totals are strictly positive
		dre.PredExposed*1000, 100*dre.PredExposed/dre.Total)
}
