package kvpool

import (
	"math"
	"testing"

	"vrex/internal/memsim"
)

func testTransfer(acct *Account) Transfer {
	return Transfer{
		Link:      memsim.PCIe4x16(),
		Host:      memsim.DDR4Host(),
		PageBytes: 1 << 20,
		Acct:      acct,
	}
}

// TestTransferAccount pins that the mover-level account tallies exactly the
// pages and seconds each direction prices, and that zero-page calls leave it
// untouched.
func TestTransferAccount(t *testing.T) {
	var acct Account
	tr := testTransfer(&acct)

	in := tr.PageIn(3)
	out := tr.PageOut(5)
	tr.PageIn(0)
	tr.PageOut(-1)

	if acct.PagesIn != 3 || acct.PagesOut != 5 {
		t.Fatalf("pages = (%d in, %d out), want (3, 5)", acct.PagesIn, acct.PagesOut)
	}
	if math.Abs(acct.TimeIn-in) > 1e-15 || math.Abs(acct.TimeOut-out) > 1e-15 {
		t.Fatalf("times = (%g, %g), want (%g, %g)", acct.TimeIn, acct.TimeOut, in, out)
	}

	// Nil account: identical pricing, no tracking.
	bare := testTransfer(nil)
	if got := bare.PageIn(3); got != in {
		t.Fatalf("Acct must not change pricing: %g != %g", got, in)
	}
}

// TestTransferAccountZeroAlloc guards the paging hot path with and without
// an account attached.
func TestTransferAccountZeroAlloc(t *testing.T) {
	var acct Account
	tr := testTransfer(&acct)
	if n := testing.AllocsPerRun(100, func() { tr.PageIn(4); tr.PageOut(4) }); n != 0 {
		t.Fatalf("attached Acct: %v allocs, want 0", n)
	}
	bare := testTransfer(nil)
	if n := testing.AllocsPerRun(100, func() { bare.PageIn(4); bare.PageOut(4) }); n != 0 {
		t.Fatalf("nil Acct: %v allocs, want 0", n)
	}
}
