package kvpool

import "vrex/internal/memsim"

// Transfer prices page movement through the memsim models: pages cross the
// PCIe link one segment each (page-granular scatter, so transfer efficiency
// follows the link's per-segment setup cost), and the far side is either an
// NVMe drive (edge devices) or host DRAM (servers). The slower of link and
// backing store bounds each direction, mirroring how hwsim prices KV
// fetches.
type Transfer struct {
	// Link is the device's PCIe connection.
	Link memsim.PCIeLink
	// SSD, when non-nil, is the NVMe backing store; nil spills to host DRAM.
	SSD *memsim.SSD
	// Host is the host DRAM on the far side of the link.
	Host memsim.DRAM
	// PageBytes is the KV bytes per page.
	PageBytes float64
	// Acct, when non-nil, accumulates every priced movement (telemetry
	// plane). This is mover-level accounting: the pool may price a partial
	// reclaim and then fail the admission, in which case the engine never
	// charges the time to a device timeline — so Acct can exceed the
	// engine-charged paging time and is reported as informational.
	Acct *Account
}

// Account tallies page movement priced through a Transfer.
type Account struct {
	// PagesIn / PagesOut count pages moved in each direction.
	PagesIn, PagesOut int
	// TimeIn / TimeOut are the priced seconds per direction.
	TimeIn, TimeOut float64
}

// moveTime prices moving pages across the link, bounded by whichever of the
// link and the backing store is slower.
//
//vrex:noalloc
func (t Transfer) moveTime(pages int) float64 {
	if pages <= 0 {
		return 0
	}
	bytes := float64(pages) * t.PageBytes
	d := t.Link.TransferTime(bytes, pages)
	if t.SSD != nil {
		if st := t.SSD.ReadTime(bytes, pages); st > d {
			d = st
		}
	} else if ht := t.Host.AccessTime(bytes); ht > d {
		d = ht
	}
	return d
}

// PageIn implements Mover: read pages back from the backing store.
//
//vrex:noalloc
func (t Transfer) PageIn(pages int) float64 {
	d := t.moveTime(pages)
	if t.Acct != nil && pages > 0 {
		t.Acct.PagesIn += pages
		t.Acct.TimeIn += d
	}
	return d
}

// PageOut implements Mover: write pages out to the backing store. NVMe
// writes are approximated with the drive's read-path model (flash program
// time is hidden behind the device write cache at these batch sizes, so the
// link and queue overheads dominate, as in the SSD read model).
//
//vrex:noalloc
func (t Transfer) PageOut(pages int) float64 {
	d := t.moveTime(pages)
	if t.Acct != nil && pages > 0 {
		t.Acct.PagesOut += pages
		t.Acct.TimeOut += d
	}
	return d
}
