package kvpool

import (
	"math"
	"reflect"
	"testing"

	"vrex/internal/memsim"
)

// flatMover prices every page at a fixed cost, keeping arithmetic exact in
// tests.
type flatMover struct{ in, out float64 }

func (m flatMover) PageIn(pages int) float64  { return m.in * float64(pages) }
func (m flatMover) PageOut(pages int) float64 { return m.out * float64(pages) }

func lruPool(capacity, pageTokens, batch int) *Pool {
	return New(Config{
		CapacityPages: capacity, PageTokens: pageTokens,
		Spill: SpillConfig{Evict: LRU{}, BatchPages: batch},
		Mover: flatMover{in: 2, out: 1},
	})
}

func TestPageMath(t *testing.T) {
	p := lruPool(10, 100, 1)
	cases := map[int]int{0: 0, 1: 1, 99: 1, 100: 1, 101: 2, 1000: 10}
	for tokens, pages := range cases {
		if got := p.pagesFor(tokens); got != pages {
			t.Fatalf("pagesFor(%d) = %d, want %d", tokens, got, pages)
		}
	}
	if !p.Fits(1000) || p.Fits(1001) {
		t.Fatal("Fits must compare page footprint to capacity")
	}
}

func TestAdmitGrowRelease(t *testing.T) {
	p := lruPool(10, 100, 1)
	if _, ok := p.Admit(0, 350, 0); !ok {
		t.Fatal("admission must succeed with free pages")
	}
	if p.FreePages() != 6 {
		t.Fatalf("free pages %d, want 6", p.FreePages())
	}
	// Growth within the last page allocates nothing.
	if _, ok := p.Grow(0, 50, 1); !ok || p.FreePages() != 6 {
		t.Fatalf("in-page growth must be free: free=%d", p.FreePages())
	}
	// Crossing the boundary allocates one page.
	if _, ok := p.Grow(0, 1, 2); !ok || p.FreePages() != 5 {
		t.Fatalf("boundary growth must allocate: free=%d", p.FreePages())
	}
	p.Release(0)
	if p.FreePages() != 10 {
		t.Fatalf("release must return pages: free=%d", p.FreePages())
	}
	// Releasing an unknown session is a no-op.
	p.Release(42)
}

func TestAdmitQueuesWithoutSpill(t *testing.T) {
	p := New(Config{CapacityPages: 4, PageTokens: 100})
	if _, ok := p.Admit(0, 300, 0); !ok {
		t.Fatal("first admission fits")
	}
	if _, ok := p.Admit(1, 200, 1); ok {
		t.Fatal("full pool without spill must refuse admission")
	}
	p.Release(0)
	if _, ok := p.Admit(1, 200, 2); !ok {
		t.Fatal("admission must succeed after pages free")
	}
}

func TestGrowFailsWhenFootprintExceedsPool(t *testing.T) {
	p := lruPool(4, 100, 1)
	p.Admit(0, 400, 0)
	if _, ok := p.Grow(0, 1, 1); ok {
		t.Fatal("growth past pool capacity must fail even with spill")
	}
	// The failed growth must not have changed accounting.
	if p.FreePages() != 0 {
		t.Fatalf("failed growth leaked pages: free=%d", p.FreePages())
	}
	if _, ok := p.Grow(0, 0, 2); !ok {
		t.Fatal("zero growth is always fine")
	}
}

func TestSpillEvictsColdestAndTouchReloads(t *testing.T) {
	p := lruPool(6, 100, 1)
	p.Admit(0, 300, 0) // 3 pages, last used t=0
	p.Admit(1, 300, 1) // 3 pages, last used t=1
	// Session 1 grows to 4 pages: needs one, pool full -> session 0 (colder)
	// spills one.
	spill, ok := p.Grow(1, 100, 2)
	if !ok {
		t.Fatal("growth with spill must succeed")
	}
	if spill != 1 { // 1 page x out-cost 1
		t.Fatalf("spill time %v, want 1", spill)
	}
	st := p.Stats()
	if st.PagesOut != 1 || st.PageOutTime != 1 {
		t.Fatalf("stats %+v, want 1 page out", st)
	}
	// Touching session 0 reloads its spilled page, evicting from session 1.
	pageIn, pageOut := p.Touch(0, 3)
	if pageIn != 2 || pageOut != 1 {
		t.Fatalf("touch times in=%v out=%v, want 2/1", pageIn, pageOut)
	}
	st = p.Stats()
	if st.PagesIn != 1 || st.PagesOut != 2 {
		t.Fatalf("stats after thrash %+v", st)
	}
	// Touch on a fully resident session is free.
	if in, out := p.Touch(0, 4); in != 0 || out != 0 {
		t.Fatalf("resident touch charged %v/%v", in, out)
	}
}

func TestEvictionPolicyOrders(t *testing.T) {
	// Three sessions with distinct recency, admission order and size.
	mk := func(ev EvictPolicy) *Pool {
		p := New(Config{
			CapacityPages: 6, PageTokens: 100,
			Spill: SpillConfig{Evict: ev, BatchPages: 1},
			Mover: flatMover{in: 1, out: 1},
		})
		p.Admit(0, 100, 0) // oldest admit, 1 page
		p.Admit(1, 300, 1) // 3 pages
		p.Admit(2, 200, 2) // newest admit, 2 pages
		p.Touch(0, 10)     // 0 is now the most recently used
		return p
	}
	firstVictim := func(p *Pool) int { return p.evictable(-1)[0].id }
	if got := firstVictim(mk(LRU{})); got != 1 {
		t.Fatalf("lru first victim %d, want 1 (coldest)", got)
	}
	if got := firstVictim(mk(FIFO{})); got != 0 {
		t.Fatalf("fifo first victim %d, want 0 (oldest admit)", got)
	}
	if got := firstVictim(mk(Largest{})); got != 1 {
		t.Fatalf("largest first victim %d, want 1 (most pages)", got)
	}
}

func TestBatchSpillAmortises(t *testing.T) {
	p := New(Config{
		CapacityPages: 8, PageTokens: 100,
		Spill: SpillConfig{Evict: LRU{}, BatchPages: 4},
		Mover: flatMover{in: 1, out: 1},
	})
	p.Admit(0, 700, 0) // 7 pages
	// Needs 1 page; batch=4 spills 4 at once.
	if _, ok := p.Admit(1, 200, 1); !ok {
		t.Fatal("batched admission must succeed")
	}
	if st := p.Stats(); st.PagesOut != 4 {
		t.Fatalf("batch spill moved %d pages, want 4", st.PagesOut)
	}
	if p.FreePages() != 3 { // 8 - 7 + 4(spilled) - 2(admitted) = 3
		t.Fatalf("free pages %d, want 3", p.FreePages())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		p := lruPool(8, 100, 2)
		p.Admit(0, 400, 0)
		p.Admit(1, 300, 1)
		p.Grow(0, 200, 2)
		p.Touch(1, 3)
		p.Grow(1, 150, 4)
		p.Touch(0, 5)
		p.Release(1)
		return p.Stats(), p.FreePages()
	}
	s1, f1 := run()
	s2, f2 := run()
	if !reflect.DeepEqual(s1, s2) || f1 != f2 {
		t.Fatalf("pool not deterministic: %+v/%d vs %+v/%d", s1, f1, s2, f2)
	}
}

func TestParseSpill(t *testing.T) {
	c, err := ParseSpill("spill(evict=lru,pages=16)")
	if err != nil {
		t.Fatal(err)
	}
	if c.Evict == nil || c.Evict.Name() != "lru" || c.BatchPages != 16 {
		t.Fatalf("parsed %+v", c)
	}
	if c.Name() != "spill(evict=lru,pages=16)" {
		t.Fatalf("canonical name %q", c.Name())
	}
	c, err = ParseSpill("spill")
	if err != nil || c.Evict.Name() != "lru" || c.BatchPages != 1 {
		t.Fatalf("defaults: %+v, %v", c, err)
	}
	c, err = ParseSpill("none")
	if err != nil || c.Evict != nil || c.Name() != "none" {
		t.Fatalf("none: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"", "nosuch", "spill(evict=nosuch)", "spill(pages=0)",
		"spill(typo=1)", "none(pages=1)",
	} {
		if _, err := ParseSpill(bad); err == nil {
			t.Errorf("ParseSpill(%q) should fail", bad)
		}
	}
}

func TestEvictionRegistry(t *testing.T) {
	names := EvictionNames()
	if len(names) < 3 {
		t.Fatalf("missing eviction registrations: %v", names)
	}
	for _, n := range names {
		ev, err := NewEviction(n)
		if err != nil || ev.Name() != n {
			t.Fatalf("NewEviction(%q) = %v, %v", n, ev, err)
		}
	}
	if _, err := NewEviction("nosuch"); err == nil {
		t.Fatal("unknown eviction must error")
	}
}

func TestTransferPricing(t *testing.T) {
	ssd := memsim.KioxiaBG6()
	edge := Transfer{Link: memsim.PCIe3x4(), SSD: &ssd, Host: memsim.DDR4Host(), PageBytes: 1 << 20}
	server := Transfer{Link: memsim.PCIe4x16(), Host: memsim.DDR4Host(), PageBytes: 1 << 20}
	if edge.PageIn(0) != 0 || edge.PageOut(0) != 0 {
		t.Fatal("zero pages must cost zero")
	}
	one, many := edge.PageIn(1), edge.PageIn(64)
	if one <= 0 || many <= one {
		t.Fatalf("page-in times not monotone: %v, %v", one, many)
	}
	// NVMe-backed reload must be at least as slow as the bare server link at
	// equal page counts (slower link AND a drive underneath).
	if edge.PageIn(16) <= server.PageIn(16) {
		t.Fatalf("edge reload %v should exceed server reload %v", edge.PageIn(16), server.PageIn(16))
	}
	// Per-page segment pricing is at worst linear in the page count.
	if many > 64*one*(1+1e-9) {
		t.Fatalf("page cost super-linear: %v vs %v", many, 64*one)
	}
}

// TestTransferZeroAndNegativePages: non-positive page counts are free no-ops
// in both directions (cluster migration of an empty session must cost zero).
func TestTransferZeroAndNegativePages(t *testing.T) {
	ssd := memsim.KioxiaBG6()
	tr := Transfer{Link: memsim.PCIe3x4(), SSD: &ssd, Host: memsim.DDR4Host(), PageBytes: 1 << 20}
	for _, pages := range []int{0, -1, -64} {
		if got := tr.PageIn(pages); got != 0 {
			t.Fatalf("PageIn(%d) = %v, want 0", pages, got)
		}
		if got := tr.PageOut(pages); got != 0 {
			t.Fatalf("PageOut(%d) = %v, want 0", pages, got)
		}
	}
}

// TestTransferInOutSymmetry: the write path deliberately reuses the
// read-path model (flash program time hides behind the device write cache),
// so PageIn and PageOut price identically at every batch size.
func TestTransferInOutSymmetry(t *testing.T) {
	ssd := memsim.KioxiaBG6()
	for i, tr := range []Transfer{
		{Link: memsim.PCIe3x4(), SSD: &ssd, Host: memsim.DDR4Host(), PageBytes: 1 << 20},
		{Link: memsim.PCIe4x16(), Host: memsim.DDR4Host(), PageBytes: 1 << 18},
	} {
		for _, pages := range []int{1, 7, 64, 1024} {
			if in, out := tr.PageIn(pages), tr.PageOut(pages); in != out {
				t.Fatalf("transfer %d: PageIn(%d)=%v != PageOut(%d)=%v", i, pages, in, pages, out)
			}
		}
	}
}

// TestTransferMissingModels pins the fallback pricing when a backing-store
// model is absent, against hand-computed memsim numbers.
func TestTransferMissingModels(t *testing.T) {
	const pageBytes = float64(1 << 20)
	const pages = 16
	bytes := pages * pageBytes
	link := memsim.PCIe3x4()

	// No SSD: the far side is host DRAM; time is max(link, host stream).
	hostOnly := Transfer{Link: link, Host: memsim.DDR4Host(), PageBytes: pageBytes}
	want := math.Max(link.TransferTime(bytes, pages), memsim.DDR4Host().AccessTime(bytes))
	if got := hostOnly.PageIn(pages); got != want {
		t.Fatalf("host-only PageIn = %v, want %v", got, want)
	}

	// SSD attached but no host model: the drive bounds the move; the
	// zero-valued Host is never consulted.
	ssd := memsim.KioxiaBG6()
	ssdOnly := Transfer{Link: link, SSD: &ssd, PageBytes: pageBytes}
	want = math.Max(link.TransferTime(bytes, pages), ssd.ReadTime(bytes, pages))
	if got := ssdOnly.PageIn(pages); got != want {
		t.Fatalf("ssd-only PageIn = %v, want %v", got, want)
	}

	// Neither SSD nor Host: the zero-bandwidth DRAM fallback prices the move
	// as +Inf — a fully unconfigured Transfer is unusable, never free.
	bare := Transfer{Link: link, PageBytes: pageBytes}
	if got := bare.PageIn(1); !math.IsInf(got, 1) {
		t.Fatalf("bare PageIn = %v, want +Inf", got)
	}
}
