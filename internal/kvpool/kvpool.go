// Package kvpool is the KV memory-pressure plane: it models one device's KV
// cache memory as a pool of fixed-size pages that concurrent video sessions
// allocate from as their caches grow. Under pressure, cold sessions' pages
// spill to the backing store (host DRAM over PCIe on servers, NVMe on edge
// devices) according to a pluggable eviction policy, and reload latency is
// charged through the internal/memsim DRAM/PCIe/NVMe models when the session
// becomes active again. Sessions whose working set cannot fit are refused at
// admission.
//
// The pool is deliberately single-threaded: internal/serve drives it from
// the serialised device loop, so every operation is deterministic for any
// worker count. Capacity <= 0 means "no pool" — callers must simply not
// construct one, which keeps the unpooled serving path byte-identical.
package kvpool

import (
	"fmt"
	"sort"
)

// Mover prices page movement between device memory and the backing store, in
// seconds. Transfer (over the memsim models) is the standard implementation.
type Mover interface {
	// PageOut returns the time to write pages out of device memory.
	PageOut(pages int) float64
	// PageIn returns the time to read pages back into device memory.
	PageIn(pages int) float64
}

// Config sizes a device pool.
type Config struct {
	// CapacityPages is the pool size in pages; must be positive (callers
	// model "infinite capacity" by not constructing a pool at all).
	CapacityPages int
	// PageTokens is the page size in KV tokens.
	PageTokens int
	// Spill configures eviction; a nil Evict disables spilling, in which
	// case allocation simply fails when the pool is full (the caller queues
	// the session or drops the frame).
	Spill SpillConfig
	// Mover prices page movement; required when Spill.Evict is non-nil.
	Mover Mover
}

// Stats counts the pool's page traffic since the last Reset.
type Stats struct {
	// PagesIn / PagesOut count pages moved into / out of device memory.
	PagesIn, PagesOut int
	// PageInTime / PageOutTime are the summed movement times in seconds.
	PageInTime, PageOutTime float64
}

// session is one admitted session's page accounting.
type session struct {
	id       int
	tokens   int     // KV length in tokens
	resident int     // pages currently in device memory
	spilled  int     // pages currently in the backing store
	lastUse  float64 // time of the session's last activity
	admitSeq int     // admission order (FIFO eviction key)
}

// pages returns the session's total footprint in pages.
func (s *session) pages() int { return s.resident + s.spilled }

// Pool is one device's paged KV allocator. Not safe for concurrent use; the
// serving scheduler drives it from its single-threaded device loop.
type Pool struct {
	cfg       Config
	freePages int
	sessions  map[int]*session
	order     []*session // admission order, for deterministic victim scans
	admitSeq  int
	stats     Stats
}

// New builds a pool; the configuration must be valid (positive capacity and
// page size, and a Mover whenever spilling is enabled).
func New(cfg Config) *Pool {
	if cfg.CapacityPages <= 0 || cfg.PageTokens <= 0 {
		panic(fmt.Sprintf("kvpool: invalid config %+v", cfg))
	}
	if cfg.Spill.Evict != nil && cfg.Mover == nil {
		panic("kvpool: spilling enabled without a Mover")
	}
	p := &Pool{cfg: cfg}
	p.Reset()
	return p
}

// Reset clears all sessions and statistics, reusing the pool across runs.
func (p *Pool) Reset() {
	p.freePages = p.cfg.CapacityPages
	p.sessions = make(map[int]*session)
	p.order = p.order[:0]
	p.admitSeq = 0
	p.stats = Stats{}
}

// CapacityPages returns the pool size in pages.
func (p *Pool) CapacityPages() int { return p.cfg.CapacityPages }

// PageTokens returns the page size in tokens.
func (p *Pool) PageTokens() int { return p.cfg.PageTokens }

// FreePages returns the unallocated page count (spilled pages do not occupy
// device memory).
func (p *Pool) FreePages() int { return p.freePages }

// Stats returns the page-traffic counters.
func (p *Pool) Stats() Stats { return p.stats }

// pagesFor returns the page footprint of a KV length.
func (p *Pool) pagesFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + p.cfg.PageTokens - 1) / p.cfg.PageTokens
}

// Fits reports whether a session of the given KV length can ever be resident
// on this device — the admission-control reject test.
func (p *Pool) Fits(tokens int) bool { return p.pagesFor(tokens) <= p.cfg.CapacityPages }

// Admitted reports whether the session currently holds pages.
func (p *Pool) Admitted(id int) bool {
	_, ok := p.sessions[id]
	return ok
}

// evictable lists victim sessions (resident pages, not the requester) in
// eviction order: the configured policy's order with a final session-id
// tie-break, scanned over the deterministic admission-order slice.
func (p *Pool) evictable(requester int) []*session {
	var out []*session
	for _, s := range p.order {
		if s.id != requester && s.resident > 0 {
			out = append(out, s)
		}
	}
	ev := p.cfg.Spill.Evict
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := ev.Compare(victim(a), victim(b)); c != 0 {
			return c < 0
		}
		return a.id < b.id
	})
	return out
}

// reclaim frees at least need pages by spilling cold sessions' pages, in
// batches of at least Spill.BatchPages to amortise transfer setup. It
// returns the charged page-out time and whether enough pages were freed.
func (p *Pool) reclaim(requester, need int) (float64, bool) {
	if p.freePages >= need {
		return 0, true
	}
	if p.cfg.Spill.Evict == nil {
		return 0, false
	}
	want := need - p.freePages
	if b := p.cfg.Spill.BatchPages; want < b {
		// Spill a full batch while we are here; capped below by what exists.
		want = b
	}
	spilled := 0
	for _, v := range p.evictable(requester) {
		if spilled >= want {
			break
		}
		take := v.resident
		if rem := want - spilled; take > rem {
			take = rem
		}
		v.resident -= take
		v.spilled += take
		spilled += take
	}
	if spilled > 0 {
		p.freePages += spilled
		t := p.cfg.Mover.PageOut(spilled)
		p.stats.PagesOut += spilled
		p.stats.PageOutTime += t
		return t, p.freePages >= need
	}
	return 0, p.freePages >= need
}

// Admit allocates pages for a new session of the given KV length. It returns
// the page-out time charged for any spilling done to make room, and reports
// failure when the pool cannot free enough pages (spilling disabled and the
// pool is full) — the caller queues the session. Sessions whose footprint
// exceeds the whole pool must be rejected beforehand via Fits.
func (p *Pool) Admit(id, tokens int, now float64) (spill float64, ok bool) {
	if p.Admitted(id) {
		panic(fmt.Sprintf("kvpool: session %d admitted twice", id))
	}
	need := p.pagesFor(tokens)
	if need > p.cfg.CapacityPages {
		return 0, false
	}
	spill, ok = p.reclaim(id, need)
	if !ok {
		return 0, false
	}
	p.freePages -= need
	s := &session{id: id, tokens: tokens, resident: need, lastUse: now, admitSeq: p.admitSeq}
	p.admitSeq++
	p.sessions[id] = s
	p.order = append(p.order, s)
	return spill, true
}

// Touch makes the session fully resident before service, reloading any
// spilled pages (evicting colder sessions as needed). It returns the charged
// page-in and page-out times. Touch panics on unadmitted sessions.
func (p *Pool) Touch(id int, now float64) (pageIn, pageOut float64) {
	s := p.mustGet(id)
	s.lastUse = now
	if s.spilled == 0 {
		return 0, 0
	}
	out, ok := p.reclaim(id, s.spilled)
	if !ok {
		// Unreachable: the session fit at admission and every other session
		// is evictable, but stay safe against future invariants.
		return 0, out
	}
	p.freePages -= s.spilled
	in := p.cfg.Mover.PageIn(s.spilled)
	p.stats.PagesIn += s.spilled
	p.stats.PageInTime += in
	s.resident += s.spilled
	s.spilled = 0
	return in, out
}

// Grow extends the session's KV by delta tokens, allocating pages as the
// length crosses page boundaries. It returns the page-out time charged for
// spilling and reports failure — without touching the session — when the
// new footprint cannot fit (the caller drops the frame). Grow panics on
// unadmitted sessions.
func (p *Pool) Grow(id, delta int, now float64) (spill float64, ok bool) {
	s := p.mustGet(id)
	if delta <= 0 {
		s.lastUse = now
		return 0, true
	}
	if p.pagesFor(s.tokens+delta) > p.cfg.CapacityPages {
		return 0, false
	}
	if need := p.pagesFor(s.tokens+delta) - s.pages(); need > 0 {
		spill, ok = p.reclaim(id, need)
		if !ok {
			return 0, false
		}
		p.freePages -= need
		s.resident += need
	}
	s.lastUse = now
	s.tokens += delta
	return spill, true
}

// Release frees the session's pages (resident and spilled) when it departs.
// Releasing an unadmitted session is a no-op, so callers need not track
// whether a queued session was ever admitted.
func (p *Pool) Release(id int) {
	s, ok := p.sessions[id]
	if !ok {
		return
	}
	p.freePages += s.resident
	delete(p.sessions, id)
	for i, o := range p.order {
		if o == s {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

func (p *Pool) mustGet(id int) *session {
	s, ok := p.sessions[id]
	if !ok {
		panic(fmt.Sprintf("kvpool: session %d not admitted", id))
	}
	return s
}
