package kvpool

import (
	"fmt"

	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// Victim is the eviction-relevant view of one admitted session, handed to
// eviction policies when the pool must free pages.
type Victim struct {
	// ID is the session's identifier (the serving plane's session index).
	ID int
	// LastUse is the time of the session's last activity.
	LastUse float64
	// AdmitSeq is the session's admission ordinal on this device.
	AdmitSeq int
	// ResidentPages is the session's in-memory page count.
	ResidentPages int
	// Tokens is the session's KV length.
	Tokens int
}

// victim projects the internal session state for policy comparison.
func victim(s *session) Victim {
	return Victim{ID: s.id, LastUse: s.lastUse, AdmitSeq: s.admitSeq, ResidentPages: s.resident, Tokens: s.tokens}
}

// EvictPolicy orders spill victims. Implementations must be deterministic
// pure functions of the two victims; the pool adds a final session-id
// tie-break.
type EvictPolicy interface {
	Name() string
	// Compare returns < 0 when a should spill before b, > 0 for the
	// converse, 0 to fall through to the next tie-break.
	Compare(a, b Victim) int
}

// LRU spills the coldest session first (oldest last-use time), the classic
// recency heuristic: an idle stream's KV is the least likely to be needed
// before more frames of a busy one.
type LRU struct{}

// Name implements EvictPolicy.
func (LRU) Name() string { return "lru" }

// Compare implements EvictPolicy.
func (LRU) Compare(a, b Victim) int {
	switch {
	case a.LastUse < b.LastUse:
		return -1
	case a.LastUse > b.LastUse:
		return 1
	}
	return 0
}

// FIFO spills the longest-admitted session first, regardless of activity —
// the paper's streaming setting ages out the oldest context first.
type FIFO struct{}

// Name implements EvictPolicy.
func (FIFO) Name() string { return "fifo" }

// Compare implements EvictPolicy.
func (FIFO) Compare(a, b Victim) int { return a.AdmitSeq - b.AdmitSeq }

// Largest spills the session with the most resident pages first, freeing the
// most memory per eviction decision (and per page-out batch).
type Largest struct{}

// Name implements EvictPolicy.
func (Largest) Name() string { return "largest" }

// Compare implements EvictPolicy.
func (Largest) Compare(a, b Victim) int { return b.ResidentPages - a.ResidentPages }

// evictions is the eviction-policy registry; the -spill spec's evict=
// parameter resolves here.
var evictions = named.New[func() EvictPolicy]("kvpool", "eviction")

func init() {
	RegisterEviction("lru", func() EvictPolicy { return LRU{} })
	RegisterEviction("fifo", func() EvictPolicy { return FIFO{} })
	RegisterEviction("largest", func() EvictPolicy { return Largest{} })
}

// RegisterEviction adds an eviction policy factory under name (lower-cased);
// duplicates panic — registry names are part of the CLI surface.
func RegisterEviction(name string, f func() EvictPolicy) { evictions.Register(name, f) }

// EvictionNames returns the registered eviction policy names, sorted.
func EvictionNames() []string { return evictions.Names() }

// NewEviction builds a registered eviction policy by name.
func NewEviction(name string) (EvictPolicy, error) {
	f, ok := evictions.Lookup(name)
	if !ok {
		return nil, evictions.Unknown(name)
	}
	return f(), nil
}

// SpillConfig is a parsed spill policy: how (and whether) a full pool evicts
// cold sessions' pages to the backing store.
type SpillConfig struct {
	// Evict orders victims; nil disables spilling entirely (a full pool
	// queues admissions and drops growth).
	Evict EvictPolicy
	// BatchPages is the minimum pages spilled per eviction event,
	// amortising per-transfer setup costs (the PCIe segment latency the
	// memsim models charge). 1 spills exactly what is needed.
	BatchPages int
}

// Name renders the config back to its canonical spec string.
func (c SpillConfig) Name() string {
	if c.Evict == nil {
		return "none"
	}
	return fmt.Sprintf("spill(evict=%s,pages=%d)", c.Evict.Name(), c.BatchPages)
}

// SpillNames returns the spill policy spec names, for CLI listings.
func SpillNames() []string { return []string{"none", "spill"} }

// ParseSpill parses a spill policy spec:
//
//	none                       no spilling (queue admissions, drop growth)
//	spill                      spill with defaults (evict=lru, pages=1)
//	spill(evict=lru,pages=16)  eviction policy + page-out batch size
//
// Eviction names resolve via the kvpool eviction registry (see
// EvictionNames).
func ParseSpill(spec string) (SpillConfig, error) {
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return SpillConfig{}, err
	}
	switch sp.Name {
	case "none":
		if err := sp.CheckConsumed(); err != nil {
			return SpillConfig{}, err
		}
		return SpillConfig{}, nil
	case "spill":
		ev, err := NewEviction(sp.Str("evict", "lru"))
		if err != nil {
			return SpillConfig{}, err
		}
		pages := sp.Int("pages", 1)
		if err := sp.CheckConsumed("evict", "pages"); err != nil {
			return SpillConfig{}, err
		}
		if pages < 1 {
			return SpillConfig{}, fmt.Errorf("kvpool: spill pages=%d must be >= 1", pages)
		}
		return SpillConfig{Evict: ev, BatchPages: pages}, nil
	}
	return SpillConfig{}, fmt.Errorf("kvpool: unknown spill policy %q (known: none, spill)", sp.Name)
}
