package accuracy

import (
	"testing"

	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

// TestEvaluateTaskParallelEquivalence: session fan-out must not change any
// field of the result, for a stateless policy and for stateful ReSV.
func TestEvaluateTaskParallelEquivalence(t *testing.T) {
	mcfg := model.DefaultConfig()
	factories := map[string]PolicyFactory{
		"dense": func() model.Retriever { return retrieval.NewDense() },
		"resv":  func() model.Retriever { return core.New(mcfg, core.DefaultConfig()) },
	}
	for name, factory := range factories {
		ev := evaluator(2)
		ev.Workers = 1
		seq := ev.EvaluateTask(workload.TaskStep, factory)
		// 8 workers > 2 sessions also covers the workers-exceed-tasks path.
		for _, w := range []int{2, 8} {
			evp := evaluator(2)
			evp.Workers = w
			par := evp.EvaluateTask(workload.TaskStep, factory)
			if seq != par {
				t.Fatalf("%s workers=%d: %+v != %+v", name, w, par, seq)
			}
		}
	}
}

// TestSessionCacheReuse: evaluating two policies on one evaluator generates
// each (task, index) session exactly once and returns pointer-identical
// sessions, without changing results vs a fresh evaluator.
func TestSessionCacheReuse(t *testing.T) {
	ev := evaluator(2)
	first := ev.EvaluateTask(workload.TaskNext, func() model.Retriever { return retrieval.NewDense() })
	if len(ev.sessionCache) != 2 {
		t.Fatalf("cache holds %d sessions, want 2", len(ev.sessionCache))
	}
	cached := ev.sessionCache[sessionKey{task: workload.TaskNext, idx: 0}]
	second := ev.EvaluateTask(workload.TaskNext, func() model.Retriever { return retrieval.NewDense() })
	if ev.sessionCache[sessionKey{task: workload.TaskNext, idx: 0}] != cached {
		t.Fatal("cached session was regenerated")
	}
	if first != second {
		t.Fatalf("cache changed results: %+v != %+v", second, first)
	}
	fresh := evaluator(2).EvaluateTask(workload.TaskNext, func() model.Retriever { return retrieval.NewDense() })
	if fresh != first {
		t.Fatalf("cached evaluator diverged from fresh: %+v != %+v", first, fresh)
	}
}
