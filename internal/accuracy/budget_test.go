package accuracy

import (
	"math"
	"testing"
)

// TestBudgetRetention pins the degradation proxy curve: exact endpoints,
// strict monotonicity, and bounded loss at the default floor (0.25 keeps
// about two thirds of proxy accuracy).
func TestBudgetRetention(t *testing.T) {
	if got := BudgetRetention(1); got != 1 {
		t.Fatalf("full budget: %g, want 1", got)
	}
	if got := BudgetRetention(1.5); got != 1 {
		t.Fatalf("over-unity budget must clamp: %g", got)
	}
	if got := BudgetRetention(0); got != 0 {
		t.Fatalf("zero budget: %g, want 0", got)
	}
	if got := BudgetRetention(-0.5); got != 0 {
		t.Fatalf("negative budget must clamp: %g", got)
	}
	prev := 0.0
	for s := 0.05; s < 1; s += 0.05 {
		r := BudgetRetention(s)
		if r <= prev || r >= 1 {
			t.Fatalf("retention not strictly increasing in (0,1): f(%g)=%g after %g", s, r, prev)
		}
		prev = r
	}
	// Bounded loss at the floor: the knob trades latency for a sublinear
	// accuracy cost (0.25^0.3 ~ 0.66).
	if r := BudgetRetention(0.25); math.Abs(r-math.Pow(0.25, retentionExp)) > 1e-12 || r < 0.6 {
		t.Fatalf("floor retention %g out of expected range", r)
	}
}
