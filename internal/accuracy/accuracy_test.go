package accuracy

import (
	"testing"

	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

func evaluator(sessions int) *Evaluator {
	return NewEvaluator(model.DefaultConfig(), workload.DefaultConfig(), sessions)
}

func TestDenseAccuracyAboveChance(t *testing.T) {
	ev := evaluator(4)
	r := ev.EvaluateTask(workload.TaskNext, func() model.Retriever { return retrieval.NewDense() })
	// TaskNext is the easiest family (evidence in the latest scene); dense
	// attention should answer nearly all queries. Chance is ~1/3.
	if r.Accuracy < 0.7 {
		t.Fatalf("dense accuracy on Next = %v, want >= 0.7", r.Accuracy)
	}
	if r.Queries != 4*workload.DefaultConfig().Queries {
		t.Fatalf("queries = %d", r.Queries)
	}
	if r.FrameRatio != 1 || r.TextRatio != 1 {
		t.Fatal("dense ratios should be 1")
	}
}

func TestEvaluationDeterminism(t *testing.T) {
	f := func() model.Retriever { return retrieval.NewDense() }
	a := evaluator(2).EvaluateTask(workload.TaskStep, f)
	b := evaluator(2).EvaluateTask(workload.TaskStep, f)
	if a.Accuracy != b.Accuracy {
		t.Fatalf("evaluation not deterministic: %v vs %v", a.Accuracy, b.Accuracy)
	}
}

func TestRatioReportingForReSV(t *testing.T) {
	mcfg := model.DefaultConfig()
	ev := evaluator(2)
	r := ev.EvaluateTask(workload.TaskStep, func() model.Retriever {
		return core.New(mcfg, core.DefaultConfig())
	})
	if r.FrameRatio <= 0 || r.FrameRatio >= 1 {
		t.Fatalf("ReSV frame ratio %v should be in (0,1)", r.FrameRatio)
	}
	if r.TextRatio <= 0 || r.TextRatio >= 1 {
		t.Fatalf("ReSV text ratio %v should be in (0,1)", r.TextRatio)
	}
}

// nonReporting wraps a retriever without ratio methods.
type nonReporting struct{ model.Retriever }

func TestNonReportingPolicyRatiosNegative(t *testing.T) {
	ev := evaluator(1)
	r := ev.EvaluateTask(workload.TaskStep, func() model.Retriever {
		return nonReporting{retrieval.NewDense()}
	})
	if r.FrameRatio != -1 || r.TextRatio != -1 {
		t.Fatal("non-reporting policy should yield -1 ratios")
	}
}

func TestEvaluateAllCoversAllTasks(t *testing.T) {
	ev := evaluator(1)
	rs := ev.EvaluateAll(func() model.Retriever { return retrieval.NewDense() })
	if len(rs) != 5 {
		t.Fatalf("want 5 task results, got %d", len(rs))
	}
	seen := map[workload.Task]bool{}
	for _, r := range rs {
		seen[r.Task] = true
	}
	if len(seen) != 5 {
		t.Fatal("duplicate task results")
	}
}

func TestMeanAccuracy(t *testing.T) {
	rs := []Result{{Accuracy: 0.4}, {Accuracy: 0.8}}
	if m := MeanAccuracy(rs); m < 0.6-1e-12 || m > 0.6+1e-12 {
		t.Fatalf("mean = %v, want 0.6", m)
	}
	if MeanAccuracy(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

// TestTable2Ordering reproduces the Table II relationships at small scale:
// ReSV stays close to the dense baseline while using a far lower frame
// retrieval ratio than the fixed-top-k baselines.
func TestTable2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering test needs several sessions")
	}
	mcfg := model.DefaultConfig()
	wcfg := workload.DefaultConfig()
	ev := NewEvaluator(mcfg, wcfg, 6)

	dense := ev.EvaluateAll(func() model.Retriever { return retrieval.NewDense() })
	resv := ev.EvaluateAll(func() model.Retriever { return core.New(mcfg, core.DefaultConfig()) })
	igp := ev.EvaluateAll(func() model.Retriever { return retrieval.NewInfiniGenP(mcfg, 0.5, 0.068) })
	rekv := ev.EvaluateAll(func() model.Retriever {
		return retrieval.NewReKV(mcfg, wcfg.Stream.TokensPerFrame, 0.584, 0.312)
	})

	denseAcc := MeanAccuracy(dense)
	resvAcc := MeanAccuracy(resv)
	if denseAcc-resvAcc > 0.06 {
		t.Fatalf("ReSV accuracy %.3f dropped > 6 pts below dense %.3f", resvAcc, denseAcc)
	}
	// ReSV must beat InfiniGenP on accuracy while using fewer tokens.
	if resvAcc <= MeanAccuracy(igp)-0.02 {
		t.Fatalf("ReSV accuracy %.3f should be >= InfiniGenP %.3f", resvAcc, MeanAccuracy(igp))
	}
	avgRatio := func(rs []Result) float64 {
		var s float64
		for _, r := range rs {
			s += r.FrameRatio
		}
		return s / float64(len(rs))
	}
	if avgRatio(resv) >= 0.5 {
		t.Fatalf("ReSV frame ratio %.3f should be well below InfiniGenP's 0.5", avgRatio(resv))
	}
	if avgRatio(resv) >= avgRatio(rekv) {
		t.Fatalf("ReSV ratio %.3f should beat ReKV %.3f", avgRatio(resv), avgRatio(rekv))
	}
}
