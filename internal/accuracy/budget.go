package accuracy

import "math"

// retentionExp shapes BudgetRetention's diminishing-returns curve. The
// exponent is fitted to the functional ThWics sweep (sweeps experiment):
// shrinking ReSV's retrieval budget from 1.0 to 0.25 costs roughly a third
// of the proxy accuracy, with most of the loss arriving near the floor —
// attention mass concentrates on few clusters, so the first tokens dropped
// are the least salient.
const retentionExp = 0.3

// BudgetRetention maps a retrieval budget scale in (0, 1] to the fraction of
// proxy accuracy retained: scale^0.3, so retention is 1 at full budget,
// ~0.9 at half budget and ~0.66 at the default degradation floor (0.25).
// The serving engine's degradation plane charges this per served frame and
// query, producing the accuracy-proxy column next to SLO attainment in
// serve.Result. Monotone increasing; clamped to [0, 1].
func BudgetRetention(scale float64) float64 {
	if scale >= 1 {
		return 1
	}
	if scale <= 0 {
		return 0
	}
	return math.Pow(scale, retentionExp)
}
