// Package accuracy evaluates retrieval policies on the planted-saliency QA
// proxy (this repo's substitution for COIN top-1 accuracy): a query is
// answered by the scene whose tokens receive the most attention mass from
// the question forward pass. A retrieval policy that drops the evidence
// tokens — during frame prefill (degrading the KV entries themselves) or
// during question processing (cutting the query off from them) — answers
// wrongly, which is exactly the degradation mechanism Table II measures.
package accuracy

import (
	"sync"

	"vrex/internal/model"
	"vrex/internal/parallel"
	"vrex/internal/workload"
)

// PolicyFactory creates a fresh retrieval policy instance per session (a
// policy accumulates per-session state such as ReSV's HC tables).
type PolicyFactory func() model.Retriever

// Result aggregates one policy's evaluation on one task family.
type Result struct {
	Task workload.Task
	// Accuracy is top-1 scene accuracy in [0, 1].
	Accuracy float64
	// FrameRatio / TextRatio are the observed retrieval ratios if the
	// policy exposes them (-1 otherwise).
	FrameRatio float64
	TextRatio  float64
	// Queries is the number of evaluated questions.
	Queries int
}

// ratioReporter is the optional interface (satisfied by retrieval.Policy
// implementations and core.ReSV) for ratio accounting.
type ratioReporter interface {
	FrameRatio() float64
	TextRatio() float64
}

// Evaluator runs sessions through the functional model under a policy.
type Evaluator struct {
	ModelCfg model.Config
	Workload workload.Config
	// Sessions per task family.
	Sessions int
	// Workers shards session evaluation across goroutines: 0 uses
	// GOMAXPROCS, 1 restores the sequential loop. Sessions are independent
	// (fresh model + fresh policy each) and results are folded in session
	// order, so the outcome is identical for any worker count.
	Workers int

	// sessionCache memoizes generated sessions by (task, index) across
	// EvaluateTask calls: a multi-policy comparison (e.g. Table II) replays
	// the same sessions for every policy, and generation is a pure function
	// of (workload config, task, index).
	mu           sync.Mutex
	sessionCache map[sessionKey]*workload.Session
}

type sessionKey struct {
	task workload.Task
	idx  int
}

// NewEvaluator returns an evaluator with n sessions per task.
func NewEvaluator(mcfg model.Config, wcfg workload.Config, sessions int) *Evaluator {
	return &Evaluator{ModelCfg: mcfg, Workload: wcfg, Sessions: sessions}
}

// session returns the cached session for (task, si), generating it on miss.
// Generation happens outside the lock so concurrent workers never serialise
// on the encoder; distinct (task, si) pairs never duplicate work within one
// EvaluateTask call.
func (e *Evaluator) session(gen *workload.Generator, task workload.Task, si int) *workload.Session {
	key := sessionKey{task: task, idx: si}
	e.mu.Lock()
	sess := e.sessionCache[key]
	e.mu.Unlock()
	if sess != nil {
		return sess
	}
	sess = gen.Session(task, si)
	e.mu.Lock()
	if e.sessionCache == nil {
		e.sessionCache = make(map[sessionKey]*workload.Session)
	}
	e.sessionCache[key] = sess
	e.mu.Unlock()
	return sess
}

// EvaluateTask measures one policy on one task family. The policy factory is
// invoked once per session; sessions run across the evaluator's worker pool
// and fold in session order.
func (e *Evaluator) EvaluateTask(task workload.Task, factory PolicyFactory) Result {
	gen := workload.NewGenerator(e.Workload, e.ModelCfg.Dim)
	res := Result{Task: task, FrameRatio: -1, TextRatio: -1}

	type sessionOutcome struct {
		correct, total int
		policy         model.Retriever
	}
	outcomes := parallel.Map(e.Workers, e.Sessions, func(si int) sessionOutcome {
		sess := e.session(gen, task, si)
		m := model.New(e.ModelCfg)
		pol := factory()
		out := sessionOutcome{policy: pol}

		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, pol, model.StageFrame, false)
		}
		frameTokens := m.Pos()

		for _, q := range sess.Queries {
			fwd := m.Forward(q.Embeddings, pol, model.StageText, true)
			if answerScene(fwd.AttnMass, sess, frameTokens) == q.TargetScene {
				out.correct++
			}
			out.total++
		}
		return out
	})

	correct, total := 0, 0
	var lastPolicy model.Retriever
	for _, out := range outcomes {
		correct += out.correct
		total += out.total
		lastPolicy = out.policy
	}
	if total > 0 {
		res.Accuracy = float64(correct) / float64(total)
	}
	res.Queries = total
	if rr, ok := lastPolicy.(ratioReporter); ok {
		res.FrameRatio = rr.FrameRatio()
		res.TextRatio = rr.TextRatio()
	}
	return res
}

// answerScene reads the answer from recorded attention mass: sum mass per
// frame (only over video tokens), then argmax over scenes.
func answerScene(mass []float64, sess *workload.Session, frameTokens int) int {
	nScenes := sess.SceneOf[len(sess.SceneOf)-1] + 1
	perScene := make([]float64, nScenes)
	limit := len(mass)
	if frameTokens < limit {
		limit = frameTokens
	}
	for tok := 0; tok < limit; tok++ {
		f := sess.FrameOfToken(tok)
		if f < len(sess.SceneOf) {
			perScene[sess.SceneOf[f]] += mass[tok]
		}
	}
	best, bestMass := 0, -1.0
	for sc, m := range perScene {
		// Normalise by scene length so long scenes don't win by mass alone.
		frames := 0
		for _, s := range sess.SceneOf {
			if s == sc {
				frames++
			}
		}
		norm := m / float64(frames)
		if norm > bestMass {
			best, bestMass = sc, norm
		}
	}
	return best
}

// EvaluateAll runs every Table II task family.
func (e *Evaluator) EvaluateAll(factory PolicyFactory) []Result {
	var out []Result
	for _, task := range workload.Tasks() {
		out = append(out, e.EvaluateTask(task, factory))
	}
	return out
}

// MeanAccuracy averages accuracy over results.
func MeanAccuracy(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	var s float64
	for _, r := range rs {
		s += r.Accuracy
	}
	return s / float64(len(rs))
}
