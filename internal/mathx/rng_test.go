package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n <= 64; n *= 2 {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(11)
	child := parent.Split()
	// The child must not mirror the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child mirrors parent %d times", same)
	}
}

func TestUint64UniformityProperty(t *testing.T) {
	// Property: low bit of Uint64 should be ~balanced over any seed.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		ones := 0
		const n = 2048
		for i := 0; i < n; i++ {
			ones += int(r.Uint64() & 1)
		}
		frac := float64(ones) / n
		return frac > 0.42 && frac < 0.58
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Error(err)
	}
}
