package mathx

import (
	"math"
	"sort"
)

// Softmax writes the softmax of src into dst (which may alias src). It uses
// the numerically stable max-subtraction form. Both slices must have the same
// length; zero-length input is a no-op.
func Softmax(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: Softmax length mismatch")
	}
	if len(src) == 0 {
		return
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxv))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// ExpNormalize writes exp(src[i]-max(src)) into dst without the final
// normalisation. The result is the softmax numerator: a positive "mass" that
// WiCSum thresholding accumulates. dst may alias src.
func ExpNormalize(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: ExpNormalize length mismatch")
	}
	if len(src) == 0 {
		return
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	for i, v := range src {
		dst[i] = float32(math.Exp(float64(v - maxv)))
	}
}

// Dot returns the dot product of a and b, accumulated in float64 for
// stability. The slices must have equal length.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	// Four independent accumulators break the loop-carried add dependency
	// (the hot path: attention scores and ReSV cluster scoring).
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either vector is zero.
func CosineSimilarity(a, b []float32) float64 {
	dot := Dot(a, b)
	na := math.Sqrt(Dot(a, a))
	nb := math.Sqrt(Dot(b, b))
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// PearsonCorrelation returns the Pearson correlation coefficient of the two
// samples, or 0 if either sample has zero variance. The slices must have
// equal, non-zero length.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mathx: PearsonCorrelation length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs and is O(n log n).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
