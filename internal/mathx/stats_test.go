package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSoftmaxSumsToOne(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	Softmax(dst, src)
	var sum float64
	for _, v := range dst {
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-5) {
		t.Fatalf("softmax sum = %v", sum)
	}
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatalf("softmax not monotone for monotone input: %v", dst)
		}
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	src := []float32{1000, 1001, 1002}
	dst := make([]float32, 3)
	Softmax(dst, src)
	for _, v := range dst {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", dst)
		}
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	s := []float32{0.5, -0.5, 2}
	want := make([]float32, 3)
	Softmax(want, s)
	Softmax(s, s)
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("in-place softmax mismatch at %d", i)
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil, nil) // must not panic
}

func TestSoftmaxPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Softmax(make([]float32, 2), make([]float32, 3))
}

func TestExpNormalizeMaxIsOne(t *testing.T) {
	src := []float32{-3, 0, 5, 2}
	dst := make([]float32, 4)
	ExpNormalize(dst, src)
	var maxv float32
	for _, v := range dst {
		if v > maxv {
			maxv = v
		}
		if v <= 0 {
			t.Fatalf("ExpNormalize produced non-positive mass: %v", dst)
		}
	}
	if !almostEq(float64(maxv), 1, 1e-6) {
		t.Fatalf("max mass = %v, want 1", maxv)
	}
}

func TestExpNormalizePreservesOrder(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		// Bound magnitude to avoid inf in exp input difference.
		a = float32(math.Mod(float64(a), 50))
		b = float32(math.Mod(float64(b), 50))
		src := []float32{a, b}
		dst := make([]float32, 2)
		ExpNormalize(dst, src)
		if a < b {
			return dst[0] <= dst[1]
		}
		return dst[0] >= dst[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDot(t *testing.T) {
	got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestCosineSimilaritySelf(t *testing.T) {
	v := []float32{0.3, -0.7, 2.5}
	if !almostEq(CosineSimilarity(v, v), 1, 1e-6) {
		t.Fatal("cos(v,v) != 1")
	}
}

func TestCosineSimilarityOrthogonal(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if !almostEq(CosineSimilarity(a, b), 0, 1e-9) {
		t.Fatal("orthogonal vectors should have cos 0")
	}
}

func TestCosineSimilarityZeroVector(t *testing.T) {
	if CosineSimilarity([]float32{0, 0}, []float32{1, 1}) != 0 {
		t.Fatal("zero vector should give 0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almostEq(PearsonCorrelation(xs, ys), 1, 1e-12) {
		t.Fatal("perfectly correlated data should give 1")
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almostEq(PearsonCorrelation(xs, neg), -1, 1e-12) {
		t.Fatal("anti-correlated data should give -1")
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if PearsonCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero variance should give 0")
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	r := NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
			ys[i] = r.Norm()
		}
		c := PearsonCorrelation(xs, ys)
		if c < -1-1e-9 || c > 1+1e-9 {
			t.Fatalf("correlation out of bounds: %v", c)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}
