// Package mathx provides deterministic randomness and small numeric
// utilities shared by the functional model, the ReSV algorithm and the
// experiment harness. All randomness in the repository flows through the
// splitmix64-based RNG defined here so every experiment is reproducible
// bit-for-bit from a seed.
package mathx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; derive independent child
// generators with Split for parallel work.
type RNG struct {
	state uint64
	// spare holds a cached Gaussian variate from the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state at the time of the call.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// Norm32 returns a standard normal variate as float32.
func (r *RNG) Norm32() float32 { return float32(r.Norm()) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
