// Package degrade implements accuracy-aware graceful degradation for the
// serving engine: a policyspec-registered family of controllers that watch a
// session's KV pressure and deadline signals and decide whether its ReSV
// retrieval budget should shrink, hold, or recover.
//
// The controller surface is deliberately small. On every service decision the
// engine samples Signals for the session and asks the controller for a target
// budget scale in [0, 1]; the engine then moves the session's quantized
// degradation level at most one bounded step toward that target. Budgets are
// quantized to powers of Policy.Step clamped at Policy.Floor, and the
// level-transition rule (Policy.Decide) never overshoots the target, so for
// any fixed target the level converges monotonically and cannot oscillate:
// after a degrade step the new budget is still >= target (no further restore
// pressure), and after a restore step the new budget is still <= target.
// Hysteresis lives in the controllers themselves — pressure and deadline
// controllers return the current budget (hold) inside their dead bands.
//
// Controllers:
//
//	none                         degradation disabled (Parse returns nil)
//	static(budget=B)             constant target: every session converges to
//	                             the coarsest quantized budget >= B
//	pressure(lo=,hi=,churn=)     degrade while the device's free-page
//	                             fraction is below lo or paging churn exceeds
//	                             churn pages/s; restore above hi with calm
//	                             paging; hold in between (hysteresis band)
//	deadline(slack=,meet=)       degrade on a deadline miss or negative
//	                             slack; restore after meet consecutive
//	                             on-time frames with slack beyond the margin
//	hybrid(...)                  min of pressure and deadline: degrades when
//	                             either is unhappy, restores only when both
//	                             have cleared
//
// All controllers accept the common step= and floor= parameters (consumed by
// Parse): step is the multiplicative budget shrink per degradation level and
// floor the validated minimum budget scale no controller can go below.
package degrade

import (
	"fmt"
	"math"
	"strings"

	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// Defaults for the common and per-controller parameters. Step and floor give
// four quantized budgets (1, 0.7, 0.49, 0.343, 0.25); the pressure band
// mirrors the kvpool spill watermarks and the deadline slack margin is a
// quarter second — generous against the repo's few-hundred-ms SLOs.
const (
	// DefaultStep is the multiplicative budget shrink per degradation level.
	DefaultStep = 0.7
	// DefaultFloor is the minimum budget scale any session can reach.
	DefaultFloor = 0.25
	// DefaultLo is the free-page fraction below which pressure degrades.
	DefaultLo = 0.1
	// DefaultHi is the free-page fraction above which pressure restores.
	DefaultHi = 0.3
	// DefaultChurn is the paging churn (pages/s) above which pressure
	// degrades regardless of free headroom.
	DefaultChurn = 256.0
	// DefaultSlack is the deadline controller's restore margin in seconds.
	DefaultSlack = 0.25
	// DefaultMeet is the consecutive on-time frames required to restore.
	DefaultMeet = 3
)

// Signals is the per-session snapshot the engine hands a controller at each
// service decision.
type Signals struct {
	// Session identifies the session (controllers are stateless; any
	// per-session memory belongs to the engine's plane).
	Session int
	// Budget is the session's current budget scale in (0, 1].
	Budget float64
	// FreePageFrac is the session's device free-page fraction in [0, 1]
	// (1 when the KV pressure plane is disabled).
	FreePageFrac float64
	// PagingRate is the device's paging churn in pages per simulated second
	// (spill + fetch traffic averaged since the run started).
	PagingRate float64
	// Slack is the class SLO minus the session's last observed frame
	// latency, in seconds (positive when meeting the deadline; the class SLO
	// when nothing has been served yet).
	Slack float64
	// MissStreak and MeetStreak count consecutive frames past / within the
	// class deadline.
	MissStreak int
	MeetStreak int
}

// Controller maps a session's signals to a target budget scale in [0, 1]:
// 0 asks for maximum degradation, 1 for full restoration, and returning
// sig.Budget holds the current level. The engine quantizes the move —
// controllers never see or set budgets directly.
type Controller interface {
	Name() string
	Target(sig Signals) float64
}

// Policy is a parsed degradation policy: the controller plus the common
// step/floor quantization parameters.
type Policy struct {
	Controller
	// Step is the multiplicative budget shrink per level, in (0, 1).
	Step float64
	// Floor is the minimum budget scale, in (0, 1].
	Floor float64
}

// Budget returns the budget scale at a degradation level: Step^level clamped
// below at Floor. Level 0 is always exactly 1.
func (p *Policy) Budget(level int) float64 {
	if level <= 0 {
		return 1
	}
	b := math.Pow(p.Step, float64(level))
	if b < p.Floor {
		return p.Floor
	}
	return b
}

// MaxLevel returns the deepest useful level: the first whose raw Step power
// reaches Floor (Budget(MaxLevel()) == Floor exactly).
func (p *Policy) MaxLevel() int {
	lvl := 0
	for b := 1.0; b > p.Floor; lvl++ {
		b *= p.Step
	}
	return lvl
}

// Decide maps a controller target onto a level transition: +1 to degrade one
// step, -1 to restore one step, 0 to hold. A step is only taken when the
// resulting budget does not overshoot the target, which makes convergence
// monotone for any fixed target: after degrading, Budget(level+1) >= target
// so the same target cannot immediately ask for a restore, and vice versa.
func (p *Policy) Decide(level int, target float64) int {
	cur := p.Budget(level)
	switch {
	case target < cur && level < p.MaxLevel() && p.Budget(level+1) >= target:
		return 1
	case target > cur && level > 0 && p.Budget(level-1) <= target:
		return -1
	}
	return 0
}

// staticCtl targets a constant budget for every session.
type staticCtl struct{ budget float64 }

func (c staticCtl) Name() string           { return "static" }
func (c staticCtl) Target(Signals) float64 { return c.budget }

// pressureCtl degrades on KV pressure (low free-page headroom or paging
// churn) and restores with hysteresis once headroom clears hi.
type pressureCtl struct{ lo, hi, churn float64 }

func (c pressureCtl) Name() string { return "pressure" }
func (c pressureCtl) Target(sig Signals) float64 {
	switch {
	case sig.FreePageFrac < c.lo || sig.PagingRate > c.churn:
		return 0
	case sig.FreePageFrac > c.hi && sig.PagingRate <= c.churn:
		return 1
	}
	return sig.Budget
}

// deadlineCtl degrades on deadline misses and restores after a streak of
// comfortably on-time frames.
type deadlineCtl struct {
	slack float64
	meet  int
}

func (c deadlineCtl) Name() string { return "deadline" }
func (c deadlineCtl) Target(sig Signals) float64 {
	switch {
	case sig.Slack < 0 || sig.MissStreak > 0:
		return 0
	case sig.Slack > c.slack && sig.MeetStreak >= c.meet:
		return 1
	}
	return sig.Budget
}

// hybridCtl is the pointwise minimum of pressure and deadline: either signal
// degrades, and restoration needs both to have cleared.
type hybridCtl struct {
	p pressureCtl
	d deadlineCtl
}

func (c hybridCtl) Name() string { return "hybrid" }
func (c hybridCtl) Target(sig Signals) float64 {
	return math.Min(c.p.Target(sig), c.d.Target(sig))
}

// controllers is the degradation-controller registry: CLIs resolve -degrade
// specs here through the shared policyspec grammar.
var controllers = named.New[func(*policyspec.Spec) (Controller, error)]("degrade", "controller")

func init() {
	Register("static", func(sp *policyspec.Spec) (Controller, error) {
		if !sp.Has("budget") {
			return nil, fmt.Errorf("degrade: static: budget is required (e.g. static(budget=0.5))")
		}
		b := sp.Float("budget", 0)
		if err := checkRange("static", "budget", b, 0, 1, openLo); err != nil {
			return nil, err
		}
		return staticCtl{budget: b}, sp.CheckConsumed("budget", "step", "floor")
	})
	Register("pressure", func(sp *policyspec.Spec) (Controller, error) {
		c, err := parsePressure(sp)
		if err != nil {
			return nil, err
		}
		return c, sp.CheckConsumed("lo", "hi", "churn", "step", "floor")
	})
	Register("deadline", func(sp *policyspec.Spec) (Controller, error) {
		c, err := parseDeadline(sp)
		if err != nil {
			return nil, err
		}
		return c, sp.CheckConsumed("slack", "meet", "step", "floor")
	})
	Register("hybrid", func(sp *policyspec.Spec) (Controller, error) {
		p, err := parsePressure(sp)
		if err != nil {
			return nil, err
		}
		d, err := parseDeadline(sp)
		if err != nil {
			return nil, err
		}
		return hybridCtl{p: p, d: d},
			sp.CheckConsumed("lo", "hi", "churn", "slack", "meet", "step", "floor")
	})
}

func parsePressure(sp *policyspec.Spec) (pressureCtl, error) {
	c := pressureCtl{
		lo:    sp.Float("lo", DefaultLo),
		hi:    sp.Float("hi", DefaultHi),
		churn: sp.Float("churn", DefaultChurn),
	}
	name := sp.Name
	if err := checkRange(name, "lo", c.lo, 0, 1, closed); err != nil {
		return c, err
	}
	if err := checkRange(name, "hi", c.hi, 0, 1, closed); err != nil {
		return c, err
	}
	if c.lo >= c.hi {
		return c, fmt.Errorf("degrade: %s: thresholds inverted: lo (%g) must be below hi (%g)", name, c.lo, c.hi)
	}
	if !isFinite(c.churn) || c.churn < 0 {
		return c, fmt.Errorf("degrade: %s: churn must be a finite non-negative rate, got %g", name, c.churn)
	}
	return c, nil
}

func parseDeadline(sp *policyspec.Spec) (deadlineCtl, error) {
	c := deadlineCtl{
		slack: sp.Float("slack", DefaultSlack),
		meet:  sp.Int("meet", DefaultMeet),
	}
	if !isFinite(c.slack) || c.slack < 0 {
		return c, fmt.Errorf("degrade: %s: slack must be a finite non-negative duration in seconds, got %g", sp.Name, c.slack)
	}
	if c.meet < 1 {
		return c, fmt.Errorf("degrade: %s: meet must be a positive streak length, got %d", sp.Name, c.meet)
	}
	return c, nil
}

// Register adds a degradation-controller factory under name (lower-cased);
// duplicates panic — registry names are part of the CLI surface.
func Register(name string, f func(*policyspec.Spec) (Controller, error)) {
	controllers.Register(name, f)
}

// Names returns the registered controller names, sorted ("none" is not a
// registered controller; Parse maps it to a nil Policy).
func Names() []string { return controllers.Names() }

// Parse builds a degradation policy from a policyspec string, e.g.
// "pressure(lo=0.1,hi=0.3)" or "static(budget=0.5,floor=0.4)"; "" and "none"
// return nil (plane disabled). The common step= and floor= parameters are
// validated here; everything else belongs to the named controller.
func Parse(spec string) (*Policy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return nil, err
	}
	step := sp.Float("step", DefaultStep)
	floor := sp.Float("floor", DefaultFloor)
	if err := checkRange(sp.Name, "step", step, 0, 1, open); err != nil {
		return nil, err
	}
	if err := checkRange(sp.Name, "floor", floor, 0, 1, openLo); err != nil {
		return nil, err
	}
	f, ok := controllers.Lookup(sp.Name)
	if !ok {
		return nil, controllers.Unknown(sp.Name)
	}
	c, err := f(sp)
	if err != nil {
		return nil, err
	}
	return &Policy{Controller: c, Step: step, Floor: floor}, nil
}

// Interval endpoint openness for checkRange.
const (
	closed = iota // [lo, hi]
	openLo        // (lo, hi]
	open          // (lo, hi)
)

// checkRange validates one numeric parameter with a clear per-field error:
// non-finite values, negatives and out-of-interval values are all named.
func checkRange(policy, key string, v, lo, hi float64, kind int) error {
	iv := map[int]string{closed: "[%g,%g]", openLo: "(%g,%g]", open: "(%g,%g)"}[kind]
	bad := func(why string) error {
		return fmt.Errorf("degrade: %s: %s must be %s in "+iv+", got %g", policy, key, why, lo, hi, v)
	}
	switch {
	case !isFinite(v):
		return bad("a finite number")
	case v < 0:
		return bad("non-negative")
	case v < lo || (kind != closed && v == lo): //vrex:float-eq open-interval boundary is exact by definition
		return bad("a value")
	case v > hi || (kind == open && v == hi): //vrex:float-eq open-interval boundary is exact by definition
		return bad("a value")
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
