package degrade

import (
	"strings"
	"testing"
)

func TestParseNone(t *testing.T) {
	for _, spec := range []string{"", "none", " NONE "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p != nil {
			t.Fatalf("Parse(%q) = %v, want nil policy", spec, p)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("pressure")
	if err != nil {
		t.Fatal(err)
	}
	if p.Step != DefaultStep || p.Floor != DefaultFloor {
		t.Fatalf("defaults: step=%g floor=%g, want %g/%g", p.Step, p.Floor, DefaultStep, DefaultFloor)
	}
	if p.Name() != "pressure" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestParseCommonParams(t *testing.T) {
	p, err := Parse("static(budget=0.5,step=0.8,floor=0.4)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Step != 0.8 || p.Floor != 0.4 {
		t.Fatalf("step=%g floor=%g, want 0.8/0.4", p.Step, p.Floor)
	}
}

func TestNames(t *testing.T) {
	want := []string{"deadline", "hybrid", "pressure", "static"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestParseRejects covers the validation-hardening satellite: non-finite,
// negative and inverted thresholds all fail with a per-field message naming
// the offending key.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		spec string
		frag string // required fragment of the error message
	}{
		{"static", "budget is required"},
		{"static(budget=0)", "budget"},
		{"static(budget=-0.5)", "budget"},
		{"static(budget=1.5)", "budget"},
		{"static(budget=NaN)", "budget"},
		{"static(budget=+Inf)", "budget"},
		{"static(budget=0.5,step=0)", "step"},
		{"static(budget=0.5,step=1)", "step"},
		{"static(budget=0.5,step=-0.7)", "step"},
		{"static(budget=0.5,step=NaN)", "step"},
		{"static(budget=0.5,floor=0)", "floor"},
		{"static(budget=0.5,floor=1.2)", "floor"},
		{"static(budget=0.5,floor=-1)", "floor"},
		{"pressure(lo=-0.1)", "lo"},
		{"pressure(lo=NaN)", "lo"},
		{"pressure(hi=1.5)", "hi"},
		{"pressure(hi=Inf)", "hi"},
		{"pressure(lo=0.3,hi=0.3)", "inverted"},
		{"pressure(lo=0.5,hi=0.2)", "inverted"},
		{"pressure(churn=-1)", "churn"},
		{"pressure(churn=NaN)", "churn"},
		{"deadline(slack=-0.1)", "slack"},
		{"deadline(slack=Inf)", "slack"},
		{"deadline(meet=0)", "meet"},
		{"hybrid(lo=0.4,hi=0.2)", "inverted"},
		{"hybrid(slack=NaN)", "slack"},
		{"pressure(typo=1)", "does not accept"},
		{"deadline(lo=0.1)", "does not accept"},
		{"nosuch", "unknown"},
		{"static(budget=0.5", "parenthesis"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tc.spec, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Parse(%q): error %q does not mention %q", tc.spec, err, tc.frag)
		}
	}
}

func TestBudgetQuantization(t *testing.T) {
	p := &Policy{Step: 0.7, Floor: 0.25}
	if got := p.Budget(0); got != 1 {
		t.Fatalf("Budget(0) = %g, want 1", got)
	}
	if got := p.Budget(1); got != 0.7 {
		t.Fatalf("Budget(1) = %g, want 0.7", got)
	}
	if got := p.MaxLevel(); got != 4 {
		t.Fatalf("MaxLevel() = %d, want 4 (0.7^4=0.2401 <= 0.25)", got)
	}
	if got := p.Budget(p.MaxLevel()); got != 0.25 {
		t.Fatalf("Budget(MaxLevel) = %g, want floor 0.25", got)
	}
	if got := p.Budget(p.MaxLevel() + 3); got != 0.25 {
		t.Fatalf("Budget beyond MaxLevel = %g, want floor 0.25", got)
	}
}

// TestDecideConverges drives Decide to a fixed point for a sweep of targets
// and levels: the level must converge monotonically (never reversing
// direction) and the fixed point never oscillates.
func TestDecideConverges(t *testing.T) {
	p := &Policy{Step: 0.7, Floor: 0.25}
	targets := []float64{0, 0.1, 0.25, 0.3, 0.49, 0.5, 0.7, 0.9, 1}
	for _, target := range targets {
		for start := 0; start <= p.MaxLevel(); start++ {
			level, dir := start, 0
			for i := 0; i < 2*p.MaxLevel()+4; i++ {
				d := p.Decide(level, target)
				if d == 0 {
					break
				}
				if dir != 0 && d != dir {
					t.Fatalf("target=%g start=%d: direction reversed at level %d", target, start, level)
				}
				dir = d
				level += d
			}
			if d := p.Decide(level, target); d != 0 {
				t.Fatalf("target=%g start=%d: no fixed point (level %d still moves %+d)", target, start, level, d)
			}
			if b := p.Budget(level); target <= 1 && b < p.Floor {
				t.Fatalf("target=%g: converged budget %g below floor", target, b)
			}
			// When degrading from above the target, the converged budget
			// never overshoots below it (except the floor clamp when the
			// target is below the floor); 1e-9 absorbs math.Pow rounding when
			// the target sits exactly on a level. Starting below the target
			// the rule holds rather than crossing, so no claim there.
			if b := p.Budget(level); p.Budget(start) >= target && b < target-1e-9 && b != p.Floor {
				t.Fatalf("target=%g start=%d: converged budget %g overshoots", target, start, b)
			}
		}
	}
}

func TestStaticController(t *testing.T) {
	p, err := Parse("static(budget=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Target(Signals{Budget: 1}); got != 0.5 {
		t.Fatalf("static target = %g, want 0.5", got)
	}
	// Quantized convergence: 1 -> 0.7, then hold (0.49 would overshoot 0.5).
	if d := p.Decide(0, 0.5); d != 1 {
		t.Fatalf("Decide(0, 0.5) = %+d, want +1", d)
	}
	if d := p.Decide(1, 0.5); d != 0 {
		t.Fatalf("Decide(1, 0.5) = %+d, want 0 (hold at 0.7)", d)
	}
}

func TestPressureHysteresis(t *testing.T) {
	p, err := Parse("pressure(lo=0.1,hi=0.3)")
	if err != nil {
		t.Fatal(err)
	}
	sig := Signals{Budget: 0.7, FreePageFrac: 0.05}
	if got := p.Target(sig); got != 0 {
		t.Fatalf("below lo: target = %g, want 0", got)
	}
	sig.FreePageFrac = 0.2 // inside the band: hold
	if got := p.Target(sig); got != sig.Budget {
		t.Fatalf("in band: target = %g, want hold %g", got, sig.Budget)
	}
	sig.FreePageFrac = 0.5
	if got := p.Target(sig); got != 1 {
		t.Fatalf("above hi: target = %g, want 1", got)
	}
	sig.PagingRate = DefaultChurn + 1 // churn overrides headroom
	if got := p.Target(sig); got != 0 {
		t.Fatalf("churning: target = %g, want 0", got)
	}
}

func TestDeadlineController(t *testing.T) {
	p, err := Parse("deadline(slack=0.25,meet=3)")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Target(Signals{Budget: 0.7, Slack: -0.05}); got != 0 {
		t.Fatalf("negative slack: target = %g, want 0", got)
	}
	if got := p.Target(Signals{Budget: 0.7, Slack: 0.1, MissStreak: 2}); got != 0 {
		t.Fatalf("miss streak: target = %g, want 0", got)
	}
	if got := p.Target(Signals{Budget: 0.7, Slack: 0.3, MeetStreak: 2}); got != 0.7 {
		t.Fatalf("short meet streak: target = %g, want hold 0.7", got)
	}
	if got := p.Target(Signals{Budget: 0.7, Slack: 0.3, MeetStreak: 3}); got != 1 {
		t.Fatalf("cleared: target = %g, want 1", got)
	}
}

func TestHybridMin(t *testing.T) {
	p, err := Parse("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	// Pressure unhappy, deadline fine: degrade.
	sig := Signals{Budget: 0.7, FreePageFrac: 0.01, Slack: 1, MeetStreak: 10}
	if got := p.Target(sig); got != 0 {
		t.Fatalf("pressure unhappy: target = %g, want 0", got)
	}
	// Pressure cleared but deadline missing: still degrade.
	sig = Signals{Budget: 0.7, FreePageFrac: 0.9, Slack: -1}
	if got := p.Target(sig); got != 0 {
		t.Fatalf("deadline unhappy: target = %g, want 0", got)
	}
	// One restores, the other holds: hold.
	sig = Signals{Budget: 0.7, FreePageFrac: 0.9, Slack: 0.1, MeetStreak: 1}
	if got := p.Target(sig); got != 0.7 {
		t.Fatalf("partial clear: target = %g, want hold 0.7", got)
	}
	// Both clear: restore.
	sig = Signals{Budget: 0.7, FreePageFrac: 0.9, Slack: 1, MeetStreak: 5}
	if got := p.Target(sig); got != 1 {
		t.Fatalf("both clear: target = %g, want 1", got)
	}
}
