package model

import (
	"math"
	"testing"

	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

func testInput(rows, dim int, seed uint64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, dim)
	m.Randomize(mathx.NewRNG(seed), 1)
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Layers: 0, Heads: 4, KVHeads: 4, Dim: 64, FFNDim: 128},
		{Layers: 1, Heads: 3, KVHeads: 3, Dim: 64, FFNDim: 128},   // Dim%Heads
		{Layers: 1, Heads: 4, KVHeads: 3, Dim: 64, FFNDim: 128},   // Heads%KVHeads
		{Layers: 1, Heads: 4, KVHeads: 4, Dim: 0, FFNDim: 128},    // zero dim
		{Layers: 1, Heads: 32, KVHeads: 32, Dim: 96, FFNDim: 128}, // odd head dim
		{Layers: 1, Heads: 4, KVHeads: 4, Dim: 64, FFNDim: 128, RotaryFraction: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := Config{Layers: 2, Heads: 8, KVHeads: 2, Dim: 64, FFNDim: 128}
	if c.HeadDim() != 8 {
		t.Fatal("HeadDim wrong")
	}
	if c.KVDim() != 16 {
		t.Fatal("KVDim wrong")
	}
}

func TestForwardDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg)
	b := New(cfg)
	x := testInput(5, cfg.Dim, 3)
	ra := a.Forward(x, DenseRetriever{}, StageFrame, false)
	rb := b.Forward(x, DenseRetriever{}, StageFrame, false)
	for i := range ra.Hidden.Data {
		if ra.Hidden.Data[i] != rb.Hidden.Data[i] {
			t.Fatal("same-seed models diverged")
		}
	}
}

func TestForwardAdvancesPositionAndCache(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Forward(testInput(4, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	m.Forward(testInput(3, cfg.Dim, 2), DenseRetriever{}, StageFrame, false)
	if m.Pos() != 7 {
		t.Fatalf("pos = %d, want 7", m.Pos())
	}
	for l := 0; l < cfg.Layers; l++ {
		if m.Cache(l).Len() != 7 {
			t.Fatalf("layer %d cache len %d, want 7", l, m.Cache(l).Len())
		}
	}
}

func TestResetClearsState(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Forward(testInput(4, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	m.Reset()
	if m.Pos() != 0 || m.Cache(0).Len() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestChunkingInvariance: processing tokens in one chunk or two must give
// identical final hidden states under dense attention (the iterative prefill
// of Fig. 3 is exact, not approximate).
func TestChunkingInvariance(t *testing.T) {
	cfg := DefaultConfig()
	x := testInput(6, cfg.Dim, 9)

	whole := New(cfg)
	rw := whole.Forward(x, DenseRetriever{}, StageFrame, false)

	split := New(cfg)
	x1 := tensor.NewMatrix(4, cfg.Dim)
	copy(x1.Data, x.Data[:4*cfg.Dim])
	x2 := tensor.NewMatrix(2, cfg.Dim)
	copy(x2.Data, x.Data[4*cfg.Dim:])
	split.Forward(x1, DenseRetriever{}, StageFrame, false)
	rs := split.Forward(x2, DenseRetriever{}, StageFrame, false)

	// Compare last two rows of whole vs rs.
	for i := 0; i < 2; i++ {
		wrow := rw.Hidden.Row(4 + i)
		srow := rs.Hidden.Row(i)
		for d := range wrow {
			if math.Abs(float64(wrow[d]-srow[d])) > 1e-4 {
				t.Fatalf("chunked forward differs at token %d dim %d: %v vs %v", i, d, wrow[d], srow[d])
			}
		}
	}
}

// TestCausality: a token's output must not depend on later tokens.
func TestCausality(t *testing.T) {
	cfg := DefaultConfig()
	x := testInput(5, cfg.Dim, 11)

	m1 := New(cfg)
	r1 := m1.Forward(x, DenseRetriever{}, StageFrame, false)

	// Perturb the last token and re-run.
	x2 := x.Clone()
	for d := 0; d < cfg.Dim; d++ {
		x2.Set(4, d, x2.At(4, d)+1)
	}
	m2 := New(cfg)
	r2 := m2.Forward(x2, DenseRetriever{}, StageFrame, false)

	for i := 0; i < 4; i++ {
		for d := 0; d < cfg.Dim; d++ {
			if r1.Hidden.At(i, d) != r2.Hidden.At(i, d) {
				t.Fatalf("token %d output changed by future perturbation", i)
			}
		}
	}
	changed := false
	for d := 0; d < cfg.Dim; d++ {
		if r1.Hidden.At(4, d) != r2.Hidden.At(4, d) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("perturbed token output unchanged — perturbation ineffective")
	}
}

func TestAttnMassRecording(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Forward(testInput(6, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	res := m.Forward(testInput(2, cfg.Dim, 2), DenseRetriever{}, StageText, true)
	if len(res.AttnMass) != 6 {
		t.Fatalf("AttnMass length %d, want 6", len(res.AttnMass))
	}
	var total float64
	for _, v := range res.AttnMass {
		if v < 0 {
			t.Fatal("negative attention mass")
		}
		total += v
	}
	// Mass over past tokens is bounded by layers*heads*queries (softmax sums
	// to 1 per head-query, part going to in-chunk tokens).
	upper := float64(cfg.Layers * cfg.Heads * 2)
	if total <= 0 || total > upper {
		t.Fatalf("total past mass %v out of (0, %v]", total, upper)
	}
}

func TestNoRecordingNilMass(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	res := m.Forward(testInput(2, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	if res.AttnMass != nil {
		t.Fatal("AttnMass should be nil when not recording")
	}
}

// restrictedRetriever selects only the given fixed tokens.
type restrictedRetriever struct{ allowed []int }

func (r restrictedRetriever) ObserveAppend(int, *kvcache.LayerCache, int, int) {}
func (r restrictedRetriever) SelectTokens(_ int, _ *kvcache.LayerCache, _ *tensor.Matrix, base int, _ Stage) []int {
	var out []int
	for _, t := range r.allowed {
		if t < base {
			out = append(out, t)
		}
	}
	return out
}

func TestRestrictedRetrieverLimitsMass(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Forward(testInput(6, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	res := m.Forward(testInput(1, cfg.Dim, 2), restrictedRetriever{allowed: []int{0, 1}}, StageText, true)
	for tok := 2; tok < 6; tok++ {
		if res.AttnMass[tok] != 0 {
			t.Fatalf("unselected token %d received mass %v", tok, res.AttnMass[tok])
		}
	}
	if res.AttnMass[0] == 0 && res.AttnMass[1] == 0 {
		t.Fatal("selected tokens received no mass")
	}
}

func TestRetrievalChangesOutput(t *testing.T) {
	cfg := DefaultConfig()
	hist := testInput(6, cfg.Dim, 1)
	probe := testInput(1, cfg.Dim, 2)

	dense := New(cfg)
	dense.Forward(hist, DenseRetriever{}, StageFrame, false)
	rd := dense.Forward(probe, DenseRetriever{}, StageText, false)

	restr := New(cfg)
	restr.Forward(hist, DenseRetriever{}, StageFrame, false)
	rr := restr.Forward(probe, restrictedRetriever{allowed: []int{0}}, StageText, false)

	diff := 0.0
	for i := range rd.Hidden.Data {
		diff += math.Abs(float64(rd.Hidden.Data[i] - rr.Hidden.Data[i]))
	}
	if diff < 1e-6 {
		t.Fatal("restricting retrieval should change the output")
	}
}

func TestDenseRetrieverSelectsAllPast(t *testing.T) {
	sel := DenseRetriever{}.SelectTokens(0, nil, nil, 5, StageFrame)
	if len(sel) != 5 {
		t.Fatalf("selected %d, want 5", len(sel))
	}
	for i, v := range sel {
		if v != i {
			t.Fatal("dense selection should be identity")
		}
	}
}

func TestGQAConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KVHeads = 2 // 4 heads sharing 2 KV heads
	m := New(cfg)
	res := m.Forward(testInput(3, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	if res.Hidden.Rows != 3 || res.Hidden.Cols != cfg.Dim {
		t.Fatal("GQA forward shape wrong")
	}
	if m.Cache(0).Dim != cfg.KVDim() {
		t.Fatal("cache dim should be KVDim")
	}
}

// TestTiedQKSimilarContentHighScore verifies the substitution that makes the
// synthetic accuracy experiments meaningful: a query embedded identically to
// an earlier token attends to it far more than to unrelated tokens.
func TestTiedQKSimilarContentHighScore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layers = 1
	m := New(cfg)
	rng := mathx.NewRNG(5)
	hist := tensor.NewMatrix(8, cfg.Dim)
	hist.Randomize(rng, 1)
	m.Forward(hist, DenseRetriever{}, StageFrame, false)
	// Probe = copy of token 3's embedding.
	probe := tensor.NewMatrix(1, cfg.Dim)
	copy(probe.Row(0), hist.Row(3))
	res := m.Forward(probe, DenseRetriever{}, StageText, true)
	best, bestMass := -1, -1.0
	for tok, mass := range res.AttnMass {
		if mass > bestMass {
			best, bestMass = tok, mass
		}
	}
	if best != 3 {
		t.Fatalf("query matching token 3 attended most to token %d", best)
	}
}
