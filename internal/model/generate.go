package model

import (
	"math"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// Embedding is a token-id -> vector table (the text side of Fig. 3's input
// path; video tokens arrive through the vision projector instead).
type Embedding struct {
	table *tensor.Matrix // Vocab x Dim
}

// NewEmbedding builds a deterministic random embedding table.
func NewEmbedding(vocab, dim int, seed uint64) *Embedding {
	if vocab <= 0 || dim <= 0 {
		panic("model: non-positive embedding shape")
	}
	e := &Embedding{table: tensor.NewMatrix(vocab, dim)}
	e.table.Randomize(mathx.NewRNG(seed), 1)
	return e
}

// Vocab returns the vocabulary size.
func (e *Embedding) Vocab() int { return e.table.Rows }

// Embed maps token ids to a (len(ids) x Dim) matrix.
func (e *Embedding) Embed(ids []int) *tensor.Matrix {
	out := tensor.NewMatrix(len(ids), e.table.Cols)
	for i, id := range ids {
		if id < 0 || id >= e.table.Rows {
			panic("model: token id out of vocabulary")
		}
		copy(out.Row(i), e.table.Row(id))
	}
	return out
}

// LMHead projects hidden states to vocabulary logits. Tied to the embedding
// table (weight tying, as Llama-class models use for small vocabularies).
type LMHead struct {
	emb *Embedding
}

// NewLMHead returns a head tied to emb.
func NewLMHead(emb *Embedding) *LMHead { return &LMHead{emb: emb} }

// Logits returns the vocabulary logits for one hidden state row.
func (h *LMHead) Logits(hidden []float32) []float32 {
	logits := make([]float32, h.emb.table.Rows)
	for v := 0; v < h.emb.table.Rows; v++ {
		logits[v] = float32(mathx.Dot(hidden, h.emb.table.Row(v)))
	}
	return logits
}

// Sampler draws token ids from logits. Temperature 0 is greedy argmax.
type Sampler struct {
	Temperature float64
	rng         *mathx.RNG
}

// NewSampler returns a sampler; seed only matters for Temperature > 0.
func NewSampler(temperature float64, seed uint64) *Sampler {
	if temperature < 0 {
		panic("model: negative temperature")
	}
	return &Sampler{Temperature: temperature, rng: mathx.NewRNG(seed)}
}

// Sample draws one token id.
func (s *Sampler) Sample(logits []float32) int {
	if len(logits) == 0 {
		panic("model: empty logits")
	}
	if s.Temperature == 0 {
		best, bestV := 0, float32(math.Inf(-1))
		for i, v := range logits {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	scaled := make([]float32, len(logits))
	inv := float32(1 / s.Temperature)
	for i, v := range logits {
		scaled[i] = v * inv
	}
	mathx.Softmax(scaled, scaled)
	r := s.rng.Float64()
	var acc float64
	for i, p := range scaled {
		acc += float64(p)
		if r < acc {
			return i
		}
	}
	return len(logits) - 1
}

// GenerateResult carries a generation's outputs.
type GenerateResult struct {
	// Tokens are the sampled ids, in order.
	Tokens []int
	// PromptMass is the attention-mass recording of the prompt forward (nil
	// unless record was requested).
	PromptMass []float64
}

// Generate runs the text-generation stage (Fig. 3's right side): the prompt
// chunk is prefilled, then tokens are sampled one by one, each fed back
// through the model with retrieval policy r. Generation stops after
// maxTokens or when stop (if non-nil) returns true for a sampled id.
func (m *Model) Generate(prompt *tensor.Matrix, r Retriever, head *LMHead, emb *Embedding, s *Sampler, maxTokens int, record bool, stop func(int) bool) GenerateResult {
	res := GenerateResult{}
	fw := m.Forward(prompt, r, StageText, record)
	res.PromptMass = fw.AttnMass
	last := fw.Hidden.Row(fw.Hidden.Rows - 1)
	for t := 0; t < maxTokens; t++ {
		id := s.Sample(head.Logits(last))
		res.Tokens = append(res.Tokens, id)
		if stop != nil && stop(id) {
			break
		}
		next := m.Forward(emb.Embed([]int{id}), r, StageText, false)
		last = next.Hidden.Row(0)
	}
	return res
}
