// Package model implements the functional streaming-video-LLM backbone of
// Fig. 3: a decoder-only transformer with RMSNorm, rotary attention, SwiGLU
// FFN and a per-layer KV cache, executed in the iterative-prefill +
// generation regime streaming video LLMs use. Retrieval policies (ReSV and
// the baselines) plug in through the Retriever interface, which observes
// newly appended KV entries and selects which past tokens attention may use.
//
// The functional plane runs at small dimensions with deterministic random
// weights; query/key projections are tied so attention scores
// track content similarity (the stand-in for trained attention), and rotary
// embedding is applied to half the head dimensions (partial rotary) so
// semantic matching survives long distances.
package model

import "fmt"

// Stage distinguishes the two inference regimes of a streaming video LLM;
// retrieval policies behave differently in each (e.g. InfiniGen retrieves
// only during text generation).
type Stage int

const (
	// StageFrame is the iterative prefill of arriving video frames.
	StageFrame Stage = iota
	// StageText is question prefill + answer generation.
	StageText
)

func (s Stage) String() string {
	if s == StageFrame {
		return "frame"
	}
	return "text"
}

// Config shapes the functional transformer.
type Config struct {
	Layers  int
	Heads   int
	KVHeads int // grouped-query attention; must divide Heads
	Dim     int // model width; Dim % Heads == 0
	FFNDim  int
	// RoPETheta is the rotary base (Llama uses 10000 / 500000).
	RoPETheta float64
	// RotaryFraction is the fraction of each head's dims that are rotated
	// (partial rotary); 0.5 keeps long-range semantic matching intact.
	RotaryFraction float64
	// Sharpness scales attention logits. Trained models exhibit highly
	// peaked attention (a few tokens carry most of the mass — the property
	// both the WTU's early exit and ReSV's thresholding rely on); random
	// weights alone give near-uniform attention, so the substitution
	// sharpens logits to restore realistic concentration.
	Sharpness float64
	// Seed drives weight initialisation.
	Seed uint64
}

// DefaultConfig returns a small functional configuration used by tests and
// the accuracy experiments.
func DefaultConfig() Config {
	return Config{
		Layers:         4,
		Heads:          4,
		KVHeads:        4,
		Dim:            64,
		FFNDim:         128,
		RoPETheta:      10000,
		RotaryFraction: 0.5,
		Sharpness:      3,
		Seed:           1,
	}
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model: Layers = %d, must be positive", c.Layers)
	case c.Heads <= 0 || c.Dim <= 0 || c.FFNDim <= 0:
		return fmt.Errorf("model: non-positive dimensions")
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("model: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	case c.KVHeads <= 0 || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model: Heads %d not divisible by KVHeads %d", c.Heads, c.KVHeads)
	case c.RotaryFraction < 0 || c.RotaryFraction > 1:
		return fmt.Errorf("model: RotaryFraction %v out of [0,1]", c.RotaryFraction)
	case c.Sharpness < 0:
		return fmt.Errorf("model: Sharpness must be non-negative")
	}
	headDim := c.Dim / c.Heads
	if headDim%2 != 0 {
		return fmt.Errorf("model: head dim %d must be even for RoPE", headDim)
	}
	return nil
}

// HeadDim returns Dim/Heads.
func (c Config) HeadDim() int { return c.Dim / c.Heads }

// KVDim returns the width of cached K/V rows (KVHeads x HeadDim).
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim() }
