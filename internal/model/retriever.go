package model

import (
	"vrex/internal/kvcache"
	"vrex/internal/tensor"
)

// Retriever is the policy hook the transformer consults each layer: which
// past tokens may attention read? Implementations range from dense
// attention (everything) to ReSV's clustered dynamic selection.
//
// The contract per forward chunk, per layer:
//  1. ObserveAppend fires after the chunk's new K/V rows are appended to the
//     layer cache at indices [base, base+n); policies update their metadata
//     (e.g. ReSV's HC table) here.
//  2. SelectTokens returns indices of *past* tokens (< base) the chunk's
//     queries may attend to. In-chunk tokens are always attended causally
//     and must not be returned. The returned slice may alias the policy's
//     reusable selection buffer: it is only valid until the next
//     SelectTokens call on the same layer, and callers that retain it must
//     copy it first.
//
// Implementations may mutate tier residency on the cache's hierarchy to
// account for data movement.
type Retriever interface {
	ObserveAppend(layer int, cache *kvcache.LayerCache, base, n int)
	SelectTokens(layer int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage Stage) []int
}

// DenseRetriever attends to the full history (the no-retrieval baseline,
// i.e. vanilla VideoLLM-Online).
type DenseRetriever struct{}

// ObserveAppend implements Retriever.
func (DenseRetriever) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements Retriever: all past tokens.
func (DenseRetriever) SelectTokens(_ int, _ *kvcache.LayerCache, _ *tensor.Matrix, base int, _ Stage) []int {
	sel := make([]int, base)
	for i := range sel {
		sel[i] = i
	}
	return sel
}
