package model

import (
	"testing"
)

func TestEmbeddingShapesAndDeterminism(t *testing.T) {
	e1 := NewEmbedding(100, 64, 5)
	e2 := NewEmbedding(100, 64, 5)
	m1 := e1.Embed([]int{3, 99, 0})
	m2 := e2.Embed([]int{3, 99, 0})
	if m1.Rows != 3 || m1.Cols != 64 {
		t.Fatal("embed shape wrong")
	}
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if e1.Vocab() != 100 {
		t.Fatal("vocab wrong")
	}
}

func TestEmbeddingPanics(t *testing.T) {
	e := NewEmbedding(10, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-vocab id")
		}
	}()
	e.Embed([]int{10})
}

func TestLMHeadLogitsTracksEmbedding(t *testing.T) {
	e := NewEmbedding(50, 64, 2)
	h := NewLMHead(e)
	// Hidden state equal to token 7's embedding should score token 7 highest
	// (tied weights).
	logits := h.Logits(e.table.Row(7))
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	if best != 7 {
		t.Fatalf("argmax logit = %d, want 7", best)
	}
}

func TestSamplerGreedyDeterministic(t *testing.T) {
	s := NewSampler(0, 1)
	logits := []float32{0.1, 3.0, -2, 2.9}
	for i := 0; i < 10; i++ {
		if s.Sample(logits) != 1 {
			t.Fatal("greedy sampling must pick the argmax")
		}
	}
}

func TestSamplerTemperatureDiversity(t *testing.T) {
	s := NewSampler(1.0, 7)
	logits := []float32{1, 1, 1, 1}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		id := s.Sample(logits)
		if id < 0 || id > 3 {
			t.Fatalf("sample %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) < 3 {
		t.Fatalf("uniform logits at T=1 should hit most ids, saw %d", len(seen))
	}
}

func TestSamplerSkewRespected(t *testing.T) {
	s := NewSampler(0.5, 9)
	logits := []float32{5, 0, 0, 0}
	hits := 0
	for i := 0; i < 100; i++ {
		if s.Sample(logits) == 0 {
			hits++
		}
	}
	if hits < 90 {
		t.Fatalf("dominant logit sampled only %d/100", hits)
	}
}

func TestSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(-1, 1)
}

func TestSamplerEmptyLogitsPanics(t *testing.T) {
	s := NewSampler(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Sample(nil)
}

func TestGenerateProducesTokensAndAdvancesCache(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	emb := NewEmbedding(64, cfg.Dim, 3)
	head := NewLMHead(emb)
	s := NewSampler(0, 1)

	m.Forward(testInput(8, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
	prompt := testInput(4, cfg.Dim, 2)
	before := m.Pos()
	res := m.Generate(prompt, DenseRetriever{}, head, emb, s, 5, true, nil)
	if len(res.Tokens) != 5 {
		t.Fatalf("generated %d tokens, want 5", len(res.Tokens))
	}
	for _, id := range res.Tokens {
		if id < 0 || id >= emb.Vocab() {
			t.Fatalf("token %d out of vocab", id)
		}
	}
	// Prompt (4) + 5 generated tokens extend the cache.
	if m.Pos() != before+4+5 {
		t.Fatalf("pos = %d, want %d", m.Pos(), before+9)
	}
	if len(res.PromptMass) != before {
		t.Fatalf("prompt mass length %d, want %d", len(res.PromptMass), before)
	}
}

func TestGenerateStopFunction(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	emb := NewEmbedding(64, cfg.Dim, 3)
	head := NewLMHead(emb)
	s := NewSampler(0, 1)
	prompt := testInput(2, cfg.Dim, 4)
	calls := 0
	res := m.Generate(prompt, DenseRetriever{}, head, emb, s, 50, false, func(int) bool {
		calls++
		return calls >= 3
	})
	if len(res.Tokens) != 3 {
		t.Fatalf("stop after 3 tokens, got %d", len(res.Tokens))
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	run := func() []int {
		cfg := DefaultConfig()
		m := New(cfg)
		emb := NewEmbedding(64, cfg.Dim, 3)
		head := NewLMHead(emb)
		s := NewSampler(0, 1)
		m.Forward(testInput(6, cfg.Dim, 1), DenseRetriever{}, StageFrame, false)
		return m.Generate(testInput(2, cfg.Dim, 2), DenseRetriever{}, head, emb, s, 8, false, nil).Tokens
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation not deterministic")
		}
	}
}
