package model

import (
	"math"

	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// layerWeights holds one decoder layer's parameters.
type layerWeights struct {
	wq, wk, wv, wo    *tensor.Matrix
	w1, w2, w3        *tensor.Matrix // SwiGLU: gate, down, up
	attnGain, ffnGain []float32
}

// Model is the functional streaming video LLM backbone. It owns per-layer
// KV caches and a running position counter; video frames and text chunks are
// pushed through Forward in arrival order (iterative prefill, Fig. 3).
type Model struct {
	Cfg    Config
	layers []*layerWeights
	caches []*kvcache.LayerCache
	pos    int
}

// New builds a model with deterministic random weights from cfg.Seed. The
// key projection is tied to the query projection (see package comment).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := mathx.NewRNG(cfg.Seed)
	m := &Model{Cfg: cfg}
	scale := 1 / float32(math.Sqrt(float64(cfg.Dim)))
	for l := 0; l < cfg.Layers; l++ {
		lw := &layerWeights{
			wq: tensor.NewMatrix(cfg.Dim, cfg.Dim),
			wv: tensor.NewMatrix(cfg.Dim, cfg.KVDim()),
			wo: tensor.NewMatrix(cfg.Dim, cfg.Dim),
			w1: tensor.NewMatrix(cfg.Dim, cfg.FFNDim),
			w2: tensor.NewMatrix(cfg.FFNDim, cfg.Dim),
			w3: tensor.NewMatrix(cfg.Dim, cfg.FFNDim),
		}
		lw.wq.Randomize(rng, scale)
		lw.wv.Randomize(rng, scale)
		lw.wo.Randomize(rng, scale)
		lw.w1.Randomize(rng, scale)
		lw.w2.Randomize(rng, 1/float32(math.Sqrt(float64(cfg.FFNDim))))
		lw.w3.Randomize(rng, scale)
		// Tied QK: wk reuses the leading KVDim columns of wq so attention
		// scores track content similarity (substitution for trained
		// attention; see the package comment of internal/model/config.go).
		lw.wk = tensor.NewMatrix(cfg.Dim, cfg.KVDim())
		for i := 0; i < cfg.Dim; i++ {
			copy(lw.wk.Row(i), lw.wq.Row(i)[:cfg.KVDim()])
		}
		lw.attnGain = ones(cfg.Dim)
		lw.ffnGain = ones(cfg.Dim)
		m.layers = append(m.layers, lw)
		m.caches = append(m.caches, kvcache.NewLayerCache(cfg.KVDim()))
	}
	return m
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Pos returns the number of tokens processed so far (the next base position).
func (m *Model) Pos() int { return m.pos }

// Cache returns layer l's KV cache (retrieval policies and the accuracy
// harness inspect it).
func (m *Model) Cache(l int) *kvcache.LayerCache { return m.caches[l] }

// Reset clears all caches and the position counter, starting a new session.
func (m *Model) Reset() {
	for l := range m.caches {
		m.caches[l] = kvcache.NewLayerCache(m.Cfg.KVDim())
	}
	m.pos = 0
}

// ForwardResult carries a chunk's outputs.
type ForwardResult struct {
	// Hidden is the final-layer hidden state (tokens x Dim).
	Hidden *tensor.Matrix
	// AttnMass, when recording, accumulates the softmax attention mass each
	// past token received from this chunk's queries, summed over layers and
	// heads. Index = global token index; length = base (tokens before this
	// chunk). The accuracy harness reads answers from it.
	AttnMass []float64
}

// Forward pushes one chunk of embeddings (tokens x Dim) through the model
// with retrieval policy r at the given stage, appending to the KV caches and
// advancing the position counter. If record is true, per-token attention
// mass is accumulated into the result.
func (m *Model) Forward(x *tensor.Matrix, r Retriever, stage Stage, record bool) ForwardResult {
	if x.Cols != m.Cfg.Dim {
		panic("model: input dim mismatch")
	}
	base := m.pos
	n := x.Rows
	res := ForwardResult{}
	if record {
		res.AttnMass = make([]float64, base)
	}
	h := x.Clone()
	for l, lw := range m.layers {
		normed := tensor.RMSNorm(h, lw.attnGain, 1e-6)
		q := tensor.MatMul(normed, lw.wq)
		k := tensor.MatMul(normed, lw.wk)
		v := tensor.MatMul(normed, lw.wv)
		m.applyRotary(q, m.Cfg.Heads, base)
		m.applyRotary(k, m.Cfg.KVHeads, base)

		cache := m.caches[l]
		for i := 0; i < n; i++ {
			cache.Append(k.Row(i), v.Row(i))
		}
		r.ObserveAppend(l, cache, base, n)
		sel := r.SelectTokens(l, cache, q, base, stage)

		attnOut := m.attention(q, cache, sel, base, n, res.AttnMass)
		proj := tensor.MatMul(attnOut, lw.wo)
		tensor.AddInPlace(h, proj)

		ffnIn := tensor.RMSNorm(h, lw.ffnGain, 1e-6)
		gate := tensor.MatMul(ffnIn, lw.w1)
		up := tensor.MatMul(ffnIn, lw.w3)
		tensor.SiLU(gate)
		for i := range gate.Data {
			gate.Data[i] *= up.Data[i]
		}
		ffnOut := tensor.MatMul(gate, lw.w2)
		tensor.AddInPlace(h, ffnOut)
	}
	m.pos += n
	res.Hidden = h
	return res
}

// applyRotary rotates the leading RotaryFraction of each head's dimensions
// for every row of mat (rows are tokens at positions base+i).
func (m *Model) applyRotary(mat *tensor.Matrix, nHeads, base int) {
	headDim := m.Cfg.HeadDim()
	rot := int(float64(headDim) * m.Cfg.RotaryFraction)
	rot -= rot % 2
	if rot == 0 {
		return
	}
	for i := 0; i < mat.Rows; i++ {
		pos := float64(base + i)
		row := mat.Row(i)
		for hd := 0; hd < nHeads; hd++ {
			seg := row[hd*headDim : hd*headDim+rot]
			for kk := 0; kk < rot/2; kk++ {
				freq := math.Pow(m.Cfg.RoPETheta, -2*float64(kk)/float64(rot))
				sin, cos := math.Sincos(pos * freq)
				a, b := float64(seg[2*kk]), float64(seg[2*kk+1])
				seg[2*kk] = float32(a*cos - b*sin)
				seg[2*kk+1] = float32(a*sin + b*cos)
			}
		}
	}
}

// attention computes causal multi-head attention for the chunk's queries
// over the selected past tokens plus the chunk's own (causal) tokens.
// q: n x Dim; sel: past-token indices (< base). attnMass, if non-nil,
// accumulates mass received by past tokens.
func (m *Model) attention(q *tensor.Matrix, cache *kvcache.LayerCache, sel []int, base, n int, attnMass []float64) *tensor.Matrix {
	cfg := m.Cfg
	headDim := cfg.HeadDim()
	group := cfg.Heads / cfg.KVHeads
	sharp := cfg.Sharpness
	if sharp == 0 {
		sharp = 1
	}
	invSqrt := float32(sharp / math.Sqrt(float64(headDim)))
	out := tensor.NewMatrix(n, cfg.Dim)

	for i := 0; i < n; i++ {
		// Candidate set: selected past tokens + in-chunk tokens <= i.
		cand := make([]int, 0, len(sel)+i+1)
		cand = append(cand, sel...)
		for j := 0; j <= i; j++ {
			cand = append(cand, base+j)
		}
		qrow := q.Row(i)
		orow := out.Row(i)
		scores := make([]float32, len(cand))
		for h := 0; h < cfg.Heads; h++ {
			kvh := h / group
			qh := qrow[h*headDim : (h+1)*headDim]
			for ci, tok := range cand {
				krow := cache.Key(tok)[kvh*headDim : (kvh+1)*headDim]
				scores[ci] = float32(mathx.Dot(qh, krow)) * invSqrt
			}
			mathx.Softmax(scores, scores)
			oh := orow[h*headDim : (h+1)*headDim]
			for ci, tok := range cand {
				w := scores[ci]
				if w == 0 {
					continue
				}
				vrow := cache.Value(tok)[kvh*headDim : (kvh+1)*headDim]
				for d := 0; d < headDim; d++ {
					oh[d] += w * vrow[d]
				}
				if attnMass != nil && tok < base {
					attnMass[tok] += float64(w)
				}
			}
		}
	}
	return out
}
