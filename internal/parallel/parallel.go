// Package parallel provides the repository's bounded worker pool and the
// deterministic fan-out/fan-in primitives built on it. Every concurrent path
// in the codebase — experiment dispatch, ReSV kernel sharding, serving-stream
// advancement — goes through this package so that one invariant holds
// everywhere: parallel output is byte-identical to sequential output.
//
// The invariant follows from two rules the primitives enforce:
//
//   - ordered fan-in: Map and ForEach hand out tasks by index and write each
//     result into its index slot, so merge order never depends on scheduling;
//   - derived seeds: a task that needs randomness derives its generator from
//     SeedFor(base, index), a pure function of the caller's seed and the task
//     index, never from a generator shared across workers.
//
// Callers pick a worker count (0 means runtime.GOMAXPROCS(0), 1 runs fully
// on the caller's goroutine), and output never depends on the choice:
// `-parallel N` on the CLIs is purely a performance knob. Note the guarantee
// is identity across worker counts, not identity with pre-engine releases —
// kernel accumulation orders (Dot, MatMul) and the serving arrival seeding
// changed when the engine landed.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is taken as-is, anything
// else defaults to runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Panic wraps a panic that escaped a worker goroutine. ForEach and Map
// re-raise it on the calling goroutine so a panicking task crashes the
// program with the same semantics as its sequential loop (plus the task
// index and the worker's stack for debugging).
type Panic struct {
	// Index is the task index whose function panicked.
	Index int
	// Value is the value originally passed to panic.
	Value any
	// Stack is the panicking worker goroutine's stack trace, captured at
	// recovery (the re-raise on the caller's goroutine would otherwise lose
	// the real fault line).
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\nworker stack:\n%s", p.Index, p.Value, p.Stack)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (resolved via Workers). Tasks are claimed from a shared atomic counter, so
// the pool is bounded and work-stealing; with workers <= 1 (or n <= 1) fn
// runs inline on the caller's goroutine — the exact sequential loop.
//
// If any fn panics, the pool stops claiming new tasks (in-flight tasks
// finish), then ForEach re-panics on the caller's goroutine with a *Panic
// carrying the first failing index — matching the sequential loop, which
// would not have run the tasks after the failing one either.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
		once    sync.Once
		first   *Panic
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if p := run(i, fn); p != nil {
					stopped.Store(true)
					once.Do(func() { first = p })
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}

// run executes fn(i), converting a panic into a *Panic value.
func run(i int, fn func(int)) (p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			p = &Panic{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines and
// returns the results in index order, independent of execution order. Panic
// semantics match ForEach.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// SeedFor derives the seed for task i from a base seed. It is a pure
// splitmix64-style mix, so per-task generators are decorrelated from each
// other and from the parent stream, yet fully determined by (base, i) — the
// cornerstone of parallel/sequential equivalence for randomized tasks.
func SeedFor(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Go runs fn on its own goroutine and returns a wait function that blocks
// until fn finishes, re-raising any panic on the waiter's goroutine. It is
// the sanctioned way to detach a supervisor task from its caller — bare go
// statements outside this package are rejected by vrex-vet — because the
// mandatory join keeps the goroutine's lifetime lexical and the panic
// handoff keeps crash semantics identical to running fn inline.
func Go(fn func()) (wait func()) {
	done := make(chan *Panic, 1)
	go func() {
		done <- run(0, func(int) { fn() })
	}()
	return func() {
		if p := <-done; p != nil {
			panic(p.Value)
		}
	}
}
