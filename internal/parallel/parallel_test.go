package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"vrex/internal/mathx"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("0 must resolve to GOMAXPROCS")
	}
	if Workers(-5) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative must resolve to GOMAXPROCS")
	}
}

// TestMapOrdering checks results land in index order for every worker count,
// including counts far above the task count.
func TestMapOrdering(t *testing.T) {
	const n = 1000
	for _, w := range []int{0, 1, 2, 3, 8, 64, n + 7} {
		got := Map(w, n, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("empty map returned %v", got)
	}
	ForEach(4, -1, func(i int) { t.Fatal("fn must not run for n < 0") })
}

// TestForEachRunsEachTaskOnce counts executions under contention.
func TestForEachRunsEachTaskOnce(t *testing.T) {
	const n = 4096
	var counts [n]atomic.Int32
	ForEach(16, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// TestSeedDeterminism: per-task seeds depend only on (base, index), so a
// parallel randomized fan-out reproduces the sequential one exactly.
func TestSeedDeterminism(t *testing.T) {
	const n = 64
	draw := func(workers int) []uint64 {
		return Map(workers, n, func(i int) uint64 {
			rng := mathx.NewRNG(SeedFor(7, i))
			// Burn a few variates to make stream divergence visible.
			rng.Uint64()
			rng.Uint64()
			return rng.Uint64()
		})
	}
	seq := draw(1)
	for _, w := range []int{2, 4, 16} {
		par := draw(w)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: stream %d diverged", w, i)
			}
		}
	}
	// Distinct tasks must get distinct seeds (decorrelation smoke check).
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		s := SeedFor(7, i)
		if seen[s] {
			t.Fatalf("seed collision at task %d", i)
		}
		seen[s] = true
	}
	if SeedFor(7, 0) == SeedFor(8, 0) {
		t.Fatal("different bases must give different seeds")
	}
}

// TestPanicPropagation: a worker panic resurfaces on the caller's goroutine
// as a *Panic carrying the failing index.
func TestPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if p.Index != 13 || p.Value != "boom" {
			t.Fatalf("got %+v, want index 13 value boom", p)
		}
		if len(p.Stack) == 0 {
			t.Fatal("worker stack not captured")
		}
	}()
	ForEach(4, 64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestPanicPropagationSequentialPath(t *testing.T) {
	defer func() {
		if _, ok := recover().(*Panic); ok {
			t.Fatal("workers=1 path must panic raw, like a plain loop")
		}
	}()
	ForEach(1, 4, func(i int) {
		if i == 2 {
			panic("raw")
		}
	})
}

// TestConcurrentMapStress hammers nested fan-outs; run with -race in CI.
func TestConcurrentMapStress(t *testing.T) {
	const outer, inner = 32, 128
	totals := Map(8, outer, func(o int) int {
		sub := Map(4, inner, func(i int) int { return o + i })
		s := 0
		for _, v := range sub {
			s += v
		}
		return s
	})
	for o, got := range totals {
		want := o*inner + inner*(inner-1)/2
		if got != want {
			t.Fatalf("outer %d: got %d, want %d", o, got, want)
		}
	}
}
