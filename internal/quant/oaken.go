// Package quant implements Oaken-style online-offline hybrid KV cache
// quantization (Kim et al., ISCA 2025 — the SOTA accelerator V-Rex compares
// against in Fig. 15). Oaken splits each KV vector's values into an inlier
// group, quantised to 4 bits with thresholds calibrated offline, and a small
// outlier group kept at higher precision; thresholds are applied online with
// no per-token calibration cost.
//
// The functional implementation here quantises real KV rows and reports
// exact memory footprints, so the Fig. 15 comparison (4x capacity, OOM
// beyond 20K) rests on measured bytes rather than a constant.
package quant

import (
	"math"
	"sort"

	"vrex/internal/tensor"
)

// OakenConfig controls the hybrid quantiser.
type OakenConfig struct {
	// OutlierFraction is the fraction of values (by magnitude) stored at
	// full precision (Oaken keeps ~1-5%).
	OutlierFraction float64
	// Bits is the inlier precision (4 in the paper).
	Bits int
}

// DefaultOakenConfig returns the paper's setting: 4-bit inliers, 2% outliers.
func DefaultOakenConfig() OakenConfig {
	return OakenConfig{OutlierFraction: 0.02, Bits: 4}
}

// Thresholds are the offline-calibrated outlier boundaries: values with
// |v| > Cut go to the outlier path.
type Thresholds struct {
	Cut float32
}

// Calibrate derives thresholds from sample rows (the offline phase): Cut is
// the (1 - OutlierFraction) magnitude quantile of the samples.
func Calibrate(cfg OakenConfig, samples *tensor.Matrix) Thresholds {
	if samples == nil || len(samples.Data) == 0 {
		return Thresholds{Cut: float32(math.Inf(1))}
	}
	mags := make([]float64, len(samples.Data))
	for i, v := range samples.Data {
		mags[i] = math.Abs(float64(v))
	}
	sort.Float64s(mags)
	q := 1 - cfg.OutlierFraction
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(mags)-1))
	return Thresholds{Cut: float32(mags[idx])}
}

// QuantizedRow is one KV row in hybrid representation.
type QuantizedRow struct {
	// Codes are the inlier 4-bit codes (one per element; outlier positions
	// hold 0 and are overridden by Outliers).
	Codes []uint8
	// Scale and Min dequantise the inliers.
	Scale, Min float32
	// OutlierIdx/OutlierVal list full-precision outliers.
	OutlierIdx []int32
	OutlierVal []float32
	bits       int
}

// Quantize encodes a row online using the offline thresholds.
func Quantize(cfg OakenConfig, th Thresholds, row []float32) QuantizedRow {
	inliers := make([]float32, 0, len(row))
	var outIdx []int32
	var outVal []float32
	for i, v := range row {
		if absf(v) > th.Cut {
			outIdx = append(outIdx, int32(i))
			outVal = append(outVal, v)
		} else {
			inliers = append(inliers, v)
		}
	}
	// Quantise inliers over their (narrower) range — the whole point of
	// outlier separation: the inlier range is tight, so 4 bits suffice.
	codes, scale, minv := quantizeBits(inliers, cfg.Bits)
	full := make([]uint8, len(row))
	ci := 0
	outSet := make(map[int32]bool, len(outIdx))
	for _, i := range outIdx {
		outSet[i] = true
	}
	for i := range row {
		if outSet[int32(i)] {
			continue
		}
		full[i] = codes[ci]
		ci++
	}
	return QuantizedRow{
		Codes: full, Scale: scale, Min: minv,
		OutlierIdx: outIdx, OutlierVal: outVal, bits: cfg.Bits,
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// quantizeBits is an n-bit asymmetric quantiser (generalising
// tensor.QuantizeInt4).
func quantizeBits(xs []float32, bits int) (codes []uint8, scale, minv float32) {
	if len(xs) == 0 {
		return nil, 1, 0
	}
	levels := float32(int(1)<<uint(bits)) - 1
	minv, maxv := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	scale = (maxv - minv) / levels
	if scale == 0 {
		scale = 1
	}
	codes = make([]uint8, len(xs))
	for i, v := range xs {
		q := int((v-minv)/scale + 0.5)
		if q < 0 {
			q = 0
		}
		if q > int(levels) {
			q = int(levels)
		}
		codes[i] = uint8(q)
	}
	return codes, scale, minv
}

// Dequantize reconstructs the row.
func (q QuantizedRow) Dequantize() []float32 {
	out := make([]float32, len(q.Codes))
	for i, c := range q.Codes {
		out[i] = float32(c)*q.Scale + q.Min
	}
	for k, i := range q.OutlierIdx {
		out[i] = q.OutlierVal[k]
	}
	return out
}

// Bytes returns the storage footprint: bits/8 per inlier code + scale/min +
// (index+value) per outlier.
func (q QuantizedRow) Bytes() int {
	inlierBits := len(q.Codes) * q.bits
	b := (inlierBits + 7) / 8
	b += 8 // scale + min (fp32)
	b += len(q.OutlierIdx) * (4 + 2)
	return b
}

// CompressionRatio returns fp16 bytes / quantised bytes for a row length.
func (q QuantizedRow) CompressionRatio() float64 {
	fp16 := 2 * len(q.Codes)
	return float64(fp16) / float64(q.Bytes())
}

// MaxAbsError returns the worst-case reconstruction error against the
// original row.
func MaxAbsError(orig []float32, q QuantizedRow) float64 {
	back := q.Dequantize()
	var worst float64
	for i := range orig {
		if d := math.Abs(float64(orig[i] - back[i])); d > worst {
			worst = d
		}
	}
	return worst
}
