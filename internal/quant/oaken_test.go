package quant

import (
	"math"
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

func sampleRows(seed uint64, rows, cols int, outlierScale float32) *tensor.Matrix {
	rng := mathx.NewRNG(seed)
	m := tensor.NewMatrix(rows, cols)
	m.Randomize(rng, 1)
	// Plant heavy outliers in ~2% of positions.
	for i := range m.Data {
		if rng.Float64() < 0.02 {
			m.Data[i] *= outlierScale
		}
	}
	return m
}

func TestCalibrateQuantile(t *testing.T) {
	s := sampleRows(1, 64, 64, 10)
	th := Calibrate(DefaultOakenConfig(), s)
	// ~2% of magnitudes should exceed the cut.
	over := 0
	for _, v := range s.Data {
		if math.Abs(float64(v)) > float64(th.Cut) {
			over++
		}
	}
	frac := float64(over) / float64(len(s.Data))
	if frac < 0.005 || frac > 0.05 {
		t.Fatalf("outlier fraction %v, want ~0.02", frac)
	}
}

func TestCalibrateEmpty(t *testing.T) {
	th := Calibrate(DefaultOakenConfig(), nil)
	if !math.IsInf(float64(th.Cut), 1) {
		t.Fatal("empty calibration should disable outliers")
	}
}

func TestRoundTripErrorSmall(t *testing.T) {
	s := sampleRows(2, 64, 64, 10)
	cfg := DefaultOakenConfig()
	th := Calibrate(cfg, s)
	probe := sampleRows(3, 1, 64, 10).Row(0)
	q := Quantize(cfg, th, probe)
	// Inlier range is ~[-cut, cut]; 4-bit step = 2cut/15; error <= step/2.
	maxErr := MaxAbsError(probe, q)
	bound := float64(th.Cut) / 15 * 1.01
	if maxErr > bound {
		t.Fatalf("max error %v exceeds inlier bound %v", maxErr, bound)
	}
}

func TestOutliersExact(t *testing.T) {
	cfg := DefaultOakenConfig()
	th := Thresholds{Cut: 2}
	row := []float32{0.1, -5, 0.3, 7, 0.2}
	q := Quantize(cfg, th, row)
	back := q.Dequantize()
	if back[1] != -5 || back[3] != 7 {
		t.Fatalf("outliers must be exact: %v", back)
	}
	if len(q.OutlierIdx) != 2 {
		t.Fatalf("outlier count %d, want 2", len(q.OutlierIdx))
	}
}

func TestCompressionNear4x(t *testing.T) {
	s := sampleRows(4, 64, 1024, 10)
	cfg := DefaultOakenConfig()
	th := Calibrate(cfg, s)
	q := Quantize(cfg, th, s.Row(0))
	r := q.CompressionRatio()
	// 4-bit inliers + 2% outliers -> ~3.2-4x vs fp16.
	if r < 2.5 || r > 4.2 {
		t.Fatalf("compression ratio %v, want ~3-4x", r)
	}
}

func TestHybridBeatsPlainInt4OnOutlierData(t *testing.T) {
	// The reason Oaken separates outliers: with heavy tails, plain int4
	// wastes its range on the outliers and crushes the inliers.
	rng := mathx.NewRNG(5)
	row := make([]float32, 512)
	for i := range row {
		row[i] = rng.Norm32()
	}
	row[7] = 80
	row[200] = -75

	cfg := DefaultOakenConfig()
	sample := tensor.FromRows([][]float32{row})
	th := Calibrate(cfg, sample)
	hybrid := MaxAbsError(row, Quantize(cfg, th, row))

	codes, scale, minv := tensor.QuantizeInt4(row)
	plain := tensor.DequantizeInt4(codes, scale, minv)
	var plainErr float64
	for i := range row {
		if d := math.Abs(float64(row[i] - plain[i])); d > plainErr && math.Abs(float64(row[i])) < 5 {
			plainErr = d
		}
	}
	if hybrid >= plainErr {
		t.Fatalf("hybrid inlier error %v should beat plain int4 %v", hybrid, plainErr)
	}
}

func TestQuantizeNoOutliers(t *testing.T) {
	cfg := DefaultOakenConfig()
	th := Thresholds{Cut: float32(math.Inf(1))}
	row := []float32{1, 2, 3}
	q := Quantize(cfg, th, row)
	if len(q.OutlierIdx) != 0 {
		t.Fatal("no outliers expected")
	}
	back := q.Dequantize()
	for i := range row {
		if math.Abs(float64(back[i]-row[i])) > float64(q.Scale) {
			t.Fatalf("round trip error too large: %v vs %v", back[i], row[i])
		}
	}
}

func TestQuantizeAllOutliers(t *testing.T) {
	cfg := DefaultOakenConfig()
	th := Thresholds{Cut: 0}
	row := []float32{1, -2, 3}
	q := Quantize(cfg, th, row)
	if len(q.OutlierIdx) != 3 {
		t.Fatalf("all values should be outliers, got %d", len(q.OutlierIdx))
	}
	back := q.Dequantize()
	for i := range row {
		if back[i] != row[i] {
			t.Fatal("all-outlier round trip must be exact")
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := DefaultOakenConfig()
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		row := make([]float32, 64)
		for i := range row {
			row[i] = rng.Norm32() * (1 + 10*rng.Float32())
		}
		sample := tensor.FromRows([][]float32{row})
		th := Calibrate(cfg, sample)
		q := Quantize(cfg, th, row)
		back := q.Dequantize()
		if len(back) != len(row) {
			return false
		}
		// Error bounded by the inlier quantisation step.
		step := float64(q.Scale)
		for i := range row {
			if math.Abs(float64(row[i]-back[i])) > step/2+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBytesAccounting(t *testing.T) {
	cfg := DefaultOakenConfig()
	th := Thresholds{Cut: 100}
	row := make([]float32, 1024)
	q := Quantize(cfg, th, row)
	// 1024 x 4 bits = 512B + 8B metadata.
	if q.Bytes() != 520 {
		t.Fatalf("bytes = %d, want 520", q.Bytes())
	}
}
