// Package hashbit implements ReSV's first stage, hash-bit key clustering
// (Fig. 8 of the paper): random-hyperplane signatures of key vectors, Hamming
// distance between signatures, and the streaming hash-cluster (HC) table that
// groups spatially/temporally similar tokens across video frames.
//
// The signature of a key is the sign pattern of its projection onto N_hp
// random hyperplanes. By the random-hyperplane LSH property, the Hamming
// distance between two signatures is proportional to the angle between the
// keys, so it tracks cosine similarity (the paper measures 0.8 correlation;
// TestHammingTracksCosine verifies the same behaviour here).
package hashbit

import (
	"math/bits"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// Signature is a packed bit vector of hyperplane signs (little-endian within
// each word).
type Signature []uint64

// SignatureWords returns the number of uint64 words needed for nbits.
func SignatureWords(nbits int) int { return (nbits + 63) / 64 }

// Bit reports whether bit i is set.
func (s Signature) Bit(i int) bool { return s[i/64]>>(uint(i)%64)&1 == 1 }

// SetBit sets bit i.
func (s Signature) SetBit(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clone returns a copy of s.
func (s Signature) Clone() Signature {
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// Hamming returns the number of differing bits between a and b. This is the
// XOR-accumulate operation the HCU hardware unit executes. The signatures
// must have equal word length.
//
//vrex:noalloc
func Hamming(a, b Signature) int {
	if len(a) != len(b) {
		panic("hashbit: Hamming length mismatch")
	}
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// Hasher projects key vectors onto fixed random hyperplanes and binarises
// the result into Signatures. One Hasher is instantiated per decoder layer;
// the hyperplanes are drawn once (training-free) and reused for every frame.
type Hasher struct {
	// NBits is N_hp, the number of hyperplanes (signature length in bits).
	NBits int
	// Dim is the key embedding dimension.
	Dim int
	// planes is Dim x NBits: column j is hyperplane j's normal.
	planes *tensor.Matrix
}

// NewHasher creates a hasher with nbits hyperplanes for dim-dimensional keys,
// drawing the hyperplanes from rng (standard normal entries).
func NewHasher(dim, nbits int, rng *mathx.RNG) *Hasher {
	if dim <= 0 || nbits <= 0 {
		panic("hashbit: non-positive Hasher dimensions")
	}
	h := &Hasher{NBits: nbits, Dim: dim, planes: tensor.NewMatrix(dim, nbits)}
	h.planes.Randomize(rng, 1)
	return h
}

// Reseed redraws the hyperplanes from rng in place, consuming exactly the
// variates NewHasher would (session reset without reallocating the planes).
func (h *Hasher) Reseed(rng *mathx.RNG) {
	h.planes.Randomize(rng, 1)
}

// Project returns the reduced-dimension matrix Key_hp = keys x planes
// (N_tokens x NBits), the intermediate the paper calls hyperplane
// multiplication. Exposed separately because the LXE executes this matmul
// while the HCU only consumes the binarised result.
func (h *Hasher) Project(keys *tensor.Matrix) *tensor.Matrix {
	if keys.Cols != h.Dim {
		panic("hashbit: key dimension mismatch")
	}
	return tensor.MatMul(keys, h.planes)
}

// Sign binarises a projected matrix row into a Signature: entries > 0 map to
// bit 1, entries <= 0 map to bit 0 (the paper's exact rule).
func Sign(row []float32) Signature {
	s := make(Signature, SignatureWords(len(row)))
	for i, v := range row {
		if v > 0 {
			s.SetBit(i)
		}
	}
	return s
}

// HashKeys computes the signature of every row of keys.
func (h *Hasher) HashKeys(keys *tensor.Matrix) []Signature {
	proj := h.Project(keys)
	sigs := make([]Signature, keys.Rows)
	for i := range sigs {
		sigs[i] = Sign(proj.Row(i))
	}
	return sigs
}

// HashVector computes the signature of a single key vector.
func (h *Hasher) HashVector(key []float32) Signature {
	m := tensor.FromRows([][]float32{key})
	return h.HashKeys(m)[0]
}
