package hashbit

import (
	"math"
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

func TestSignatureBits(t *testing.T) {
	s := make(Signature, SignatureWords(100))
	s.SetBit(0)
	s.SetBit(63)
	s.SetBit(64)
	s.SetBit(99)
	for i := 0; i < 100; i++ {
		want := i == 0 || i == 63 || i == 64 || i == 99
		if s.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, s.Bit(i), want)
		}
	}
}

func TestSignatureWords(t *testing.T) {
	cases := map[int]int{1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for bits, want := range cases {
		if got := SignatureWords(bits); got != want {
			t.Errorf("SignatureWords(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestHammingBasics(t *testing.T) {
	a := make(Signature, 1)
	b := make(Signature, 1)
	if Hamming(a, b) != 0 {
		t.Fatal("identical sigs should have distance 0")
	}
	b.SetBit(3)
	b.SetBit(17)
	if Hamming(a, b) != 2 {
		t.Fatal("expected distance 2")
	}
}

func TestHammingSymmetryAndTriangle(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := Signature{x}, Signature{y}, Signature{z}
		if Hamming(a, b) != Hamming(b, a) {
			return false
		}
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignOperatorRule(t *testing.T) {
	// Paper rule: x <= 0 -> 0, x > 0 -> 1.
	s := Sign([]float32{-1, 0, 0.001, 5})
	want := []bool{false, false, true, true}
	for i, w := range want {
		if s.Bit(i) != w {
			t.Fatalf("Sign bit %d = %v, want %v", i, s.Bit(i), w)
		}
	}
}

func TestHasherDeterministic(t *testing.T) {
	keys := tensor.NewMatrix(4, 16)
	keys.Randomize(mathx.NewRNG(9), 1)
	h1 := NewHasher(16, 32, mathx.NewRNG(1))
	h2 := NewHasher(16, 32, mathx.NewRNG(1))
	s1 := h1.HashKeys(keys)
	s2 := h2.HashKeys(keys)
	for i := range s1 {
		if Hamming(s1[i], s2[i]) != 0 {
			t.Fatal("same-seed hashers disagree")
		}
	}
}

func TestIdenticalKeysZeroDistance(t *testing.T) {
	h := NewHasher(32, 32, mathx.NewRNG(2))
	rng := mathx.NewRNG(3)
	key := make([]float32, 32)
	for i := range key {
		key[i] = rng.Norm32()
	}
	a := h.HashVector(key)
	b := h.HashVector(key)
	if Hamming(a, b) != 0 {
		t.Fatal("identical keys must hash identically")
	}
}

func TestOppositeKeysMaxDistance(t *testing.T) {
	h := NewHasher(32, 64, mathx.NewRNG(4))
	rng := mathx.NewRNG(5)
	key := make([]float32, 32)
	neg := make([]float32, 32)
	for i := range key {
		key[i] = rng.Norm32()
		neg[i] = -key[i]
	}
	d := Hamming(h.HashVector(key), h.HashVector(neg))
	// Antipodal vectors should flip every hyperplane sign (ties at exactly 0
	// projection are measure-zero).
	if d < 60 {
		t.Fatalf("antipodal distance = %d, want ~64", d)
	}
}

// TestHammingTracksCosine reproduces the Fig. 7(b) relationship: Hamming
// distance of 32-bit signatures correlates strongly (negatively) with cosine
// similarity across random key pairs.
func TestHammingTracksCosine(t *testing.T) {
	const dim, nbits, pairs = 64, 32, 400
	h := NewHasher(dim, nbits, mathx.NewRNG(6))
	rng := mathx.NewRNG(7)
	var cos, ham []float64
	for p := 0; p < pairs; p++ {
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = rng.Norm32()
		}
		// Interpolate b between a and an independent vector to cover the
		// whole similarity range.
		alpha := rng.Float32()
		for i := range b {
			b[i] = alpha*a[i] + (1-alpha)*rng.Norm32()
		}
		cos = append(cos, mathx.CosineSimilarity(a, b))
		ham = append(ham, float64(Hamming(h.HashVector(a), h.HashVector(b))))
	}
	r := mathx.PearsonCorrelation(cos, ham)
	if r > -0.7 {
		t.Fatalf("correlation between cosine and hamming = %v, want <= -0.7 (paper: |r|~0.8)", r)
	}
}

func TestHCTableSingleCluster(t *testing.T) {
	tab := NewHCTable(4)
	sig := make(Signature, 1)
	sig.SetBit(1)
	key := []float32{1, 2}
	id0, d0 := tab.Insert(0, key, sig)
	if id0 != 0 || d0 != 0 {
		t.Fatalf("first insert: id=%d d=%d", id0, d0)
	}
	near := sig.Clone()
	near.SetBit(5) // distance 1 < ThHD
	id1, d1 := tab.Insert(1, []float32{3, 4}, near)
	if id1 != 0 || d1 != 1 {
		t.Fatalf("second insert should join cluster 0: id=%d d=%d", id1, d1)
	}
	c := tab.Clusters[0]
	if c.Count() != 2 {
		t.Fatal("cluster count wrong")
	}
	if c.RepKey[0] != 2 || c.RepKey[1] != 3 {
		t.Fatalf("running mean wrong: %v", c.RepKey)
	}
}

func TestHCTableNewClusterBeyondThreshold(t *testing.T) {
	tab := NewHCTable(2)
	a := make(Signature, 1)
	b := make(Signature, 1)
	for i := 0; i < 10; i++ {
		b.SetBit(i)
	}
	tab.Insert(0, []float32{1}, a)
	id, _ := tab.Insert(1, []float32{2}, b)
	if id != 1 {
		t.Fatal("distant signature should create new cluster")
	}
	if tab.NumClusters() != 2 || tab.NumTokens() != 2 {
		t.Fatal("table counters wrong")
	}
}

func TestHCTableThresholdIsStrict(t *testing.T) {
	// Paper: distances below Th_hd are clustered; distance == Th_hd is not.
	tab := NewHCTable(3)
	a := make(Signature, 1)
	tab.Insert(0, []float32{0}, a)
	b := make(Signature, 1)
	b.SetBit(0)
	b.SetBit(1)
	b.SetBit(2) // distance exactly 3
	id, _ := tab.Insert(1, []float32{0}, b)
	if id != 1 {
		t.Fatal("distance == ThHD must not join (strict <)")
	}
}

func TestHCTableNearestWins(t *testing.T) {
	tab := NewHCTable(10)
	s0 := make(Signature, 1) // all zeros
	s1 := make(Signature, 1)
	for i := 0; i < 8; i++ {
		s1.SetBit(i)
	}
	tab.Insert(0, []float32{0}, s0)
	tab.Insert(1, []float32{0}, s1)
	probe := make(Signature, 1)
	probe.SetBit(0) // distance 1 from s0, 7 from s1
	id, d := tab.Insert(2, []float32{0}, probe)
	if id != 0 || d != 1 {
		t.Fatalf("nearest cluster should win: id=%d d=%d", id, d)
	}
}

func TestHCTableTokensOf(t *testing.T) {
	tab := NewHCTable(1)
	s := make(Signature, 1)
	tab.Insert(10, []float32{0}, s)
	tab.Insert(11, []float32{0}, s)
	far := make(Signature, 1)
	far.SetBit(0)
	far.SetBit(1)
	tab.Insert(12, []float32{0}, far)
	got := tab.TokensOf([]int{0, 1})
	want := []int{10, 11, 12}
	if len(got) != 3 {
		t.Fatalf("TokensOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TokensOf = %v, want %v", got, want)
		}
	}
}

func TestHCTableClusterOf(t *testing.T) {
	tab := NewHCTable(1)
	s := make(Signature, 1)
	tab.Insert(5, []float32{0}, s)
	if tab.ClusterOf(5) != 0 {
		t.Fatal("ClusterOf known token wrong")
	}
	if tab.ClusterOf(99) != -1 {
		t.Fatal("ClusterOf unknown token should be -1")
	}
}

func TestClustererGroupsSimilarFrames(t *testing.T) {
	// Two nearly identical frames should land mostly in shared clusters;
	// a third orthogonal frame should open new ones.
	const dim, tokens = 32, 16
	rng := mathx.NewRNG(8)
	c := NewClusterer(dim, 32, 7, rng.Split())
	f1 := tensor.NewMatrix(tokens, dim)
	f1.Randomize(rng, 1)
	f2 := f1.Clone()
	for i := range f2.Data {
		f2.Data[i] += rng.Norm32() * 0.02 // tiny temporal drift
	}
	f3 := tensor.NewMatrix(tokens, dim)
	f3.Randomize(rng, 1)

	c.AddFrame(f1, 0)
	n1 := c.Table.NumClusters()
	c.AddFrame(f2, tokens)
	n2 := c.Table.NumClusters()
	if n2-n1 > tokens/4 {
		t.Fatalf("similar frame created %d new clusters (of %d tokens)", n2-n1, tokens)
	}
	c.AddFrame(f3, 2*tokens)
	n3 := c.Table.NumClusters()
	if n3-n2 < tokens/2 {
		t.Fatalf("dissimilar frame only created %d new clusters", n3-n2)
	}
}

func TestClustererAssignmentsConsistent(t *testing.T) {
	rng := mathx.NewRNG(10)
	c := NewClusterer(16, 32, 7, rng.Split())
	keys := tensor.NewMatrix(8, 16)
	keys.Randomize(rng, 1)
	ids := c.AddFrame(keys, 100)
	for i, id := range ids {
		if c.Table.ClusterOf(100+i) != id {
			t.Fatal("AddFrame return values disagree with table state")
		}
	}
	if c.CompressionRatio() <= 0 {
		t.Fatal("compression ratio should be positive")
	}
}

func TestMemoryOverheadGrowsWithClusters(t *testing.T) {
	tab := NewHCTable(0) // every token its own cluster
	s := make(Signature, 1)
	before := tab.MemoryOverheadBytes(64, 32)
	for i := 0; i < 10; i++ {
		sig := s.Clone()
		for b := 0; b <= i; b++ {
			sig.SetBit(b)
		}
		tab.Insert(i, make([]float32, 64), sig)
	}
	after := tab.MemoryOverheadBytes(64, 32)
	if after <= before {
		t.Fatal("overhead should grow with clusters")
	}
}

// TestHammingAngleEstimate checks the LSH property quantitatively: the
// expected bit-disagreement fraction equals angle/pi.
func TestHammingAngleEstimate(t *testing.T) {
	const dim = 48
	const nbits = 512 // many planes for a tight estimate
	h := NewHasher(dim, nbits, mathx.NewRNG(11))
	rng := mathx.NewRNG(12)
	a := make([]float32, dim)
	b := make([]float32, dim)
	for i := range a {
		a[i] = rng.Norm32()
		b[i] = rng.Norm32()
	}
	cos := mathx.CosineSimilarity(a, b)
	angle := math.Acos(cos)
	d := Hamming(h.HashVector(a), h.HashVector(b))
	got := float64(d) / nbits
	want := angle / math.Pi
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("disagreement fraction %v, want ~%v", got, want)
	}
}

func TestActiveWindowLRU(t *testing.T) {
	w := NewActiveWindow(2)
	if ev := w.Touch(0); ev != -1 {
		t.Fatal("first insert should not evict")
	}
	w.Touch(1)
	// Touch 0 again: it becomes most recent; inserting 2 evicts 1.
	w.Touch(0)
	if ev := w.Touch(2); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if !w.Contains(0) || !w.Contains(2) || w.Contains(1) {
		t.Fatalf("window contents wrong: %v", w.Active())
	}
	if w.Len() != 2 {
		t.Fatal("window length wrong")
	}
}

func TestActiveWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewActiveWindow(0)
}

func TestWindowedClustererBoundsComparisons(t *testing.T) {
	const dim, tokens = 32, 8
	rng := mathx.NewRNG(44)
	base := NewClusterer(dim, 32, 7, rng.Split())
	wc := NewWindowedClusterer(base, 4)
	// Feed many dissimilar frames: the table grows but the active window
	// stays capped at 4.
	for f := 0; f < 10; f++ {
		keys := tensor.NewMatrix(tokens, dim)
		keys.Randomize(rng, 1)
		wc.AddFrame(keys, tokens, f*tokens)
		if wc.Window.Len() > 4 {
			t.Fatalf("active window exceeded cap: %d", wc.Window.Len())
		}
	}
	if wc.Table.NumTokens() != 80 {
		t.Fatalf("table tokens = %d, want 80", wc.Table.NumTokens())
	}
	if wc.Table.NumClusters() <= 4 {
		t.Fatal("table should retain inactive clusters beyond the window")
	}
}

func TestWindowedClustererStillGroupsSimilar(t *testing.T) {
	const dim, tokens = 32, 8
	rng := mathx.NewRNG(45)
	base := NewClusterer(dim, 32, 7, rng.Split())
	wc := NewWindowedClusterer(base, 64)
	f1 := tensor.NewMatrix(tokens, dim)
	f1.Randomize(rng, 1)
	f2 := f1.Clone()
	for i := range f2.Data {
		f2.Data[i] += rng.Norm32() * 0.02
	}
	wc.AddFrame(f1, tokens, 0)
	n1 := wc.Table.NumClusters()
	wc.AddFrame(f2, tokens, tokens)
	if wc.Table.NumClusters()-n1 > tokens/4 {
		t.Fatal("windowed clusterer failed to group similar frames")
	}
}

func TestInsertIntoUpdatesMean(t *testing.T) {
	tab := NewHCTable(4)
	sig := make(Signature, 1)
	tab.Insert(0, []float32{2, 4}, sig)
	tab.InsertInto(0, 1, []float32{4, 8})
	c := tab.Clusters[0]
	if c.Count() != 2 || c.RepKey[0] != 3 || c.RepKey[1] != 6 {
		t.Fatalf("InsertInto mean wrong: %+v", c)
	}
	if tab.ClusterOf(1) != 0 {
		t.Fatal("token mapping missing")
	}
}

func TestInsertIntoPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHCTable(1).InsertInto(0, 0, []float32{1})
}
