package hashbit

import (
	"testing"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// addFrames streams nFrames x tokensPerFrame random keys through a clusterer
// and returns it.
func addFrames(t *testing.T, nFrames, tokensPerFrame, dim int, seed uint64) *Clusterer {
	t.Helper()
	rng := mathx.NewRNG(seed)
	c := NewClusterer(dim, 32, 7, rng.Split())
	for f := 0; f < nFrames; f++ {
		keys := tensor.NewMatrix(tokensPerFrame, dim)
		keys.Randomize(rng, 1)
		c.AddFrame(keys, f*tokensPerFrame)
	}
	return c
}

// TestAdvancePastMatchesRescan checks the incremental candidate bookkeeping
// against a brute-force rescan at every frame boundary.
func TestAdvancePastMatchesRescan(t *testing.T) {
	const frames, perFrame, dim = 8, 6, 32
	rng := mathx.NewRNG(51)
	c := NewClusterer(dim, 32, 7, rng.Split())
	for f := 0; f < frames; f++ {
		keys := tensor.NewMatrix(perFrame, dim)
		keys.Randomize(rng, 1)
		c.AddFrame(keys, f*perFrame)
		boundary := f * perFrame // tokens of this frame are not yet past
		tab := c.Table
		tab.AdvancePast(boundary)
		// Brute force: count past members per cluster.
		wantPastClusters := 0
		for id, cl := range tab.Clusters {
			past := 0
			for _, tok := range cl.TokenIdxs {
				if tok < boundary {
					past++
				}
			}
			if past > 0 {
				if id != wantPastClusters {
					t.Fatalf("frame %d: candidate clusters are not a prefix (cluster %d)", f, id)
				}
				wantPastClusters++
			}
			if got := tab.PastCount(id); got != past {
				t.Fatalf("frame %d cluster %d: PastCount=%d, want %d", f, id, got, past)
			}
			if got := len(tab.PastTokens(id)); got != past {
				t.Fatalf("frame %d cluster %d: PastTokens len=%d, want %d", f, id, got, past)
			}
		}
		if got := tab.PastClusters(); got != wantPastClusters {
			t.Fatalf("frame %d: PastClusters=%d, want %d", f, got, wantPastClusters)
		}
	}
}

// TestAdvancePastRewind covers the backwards (slow-path) boundary move.
func TestAdvancePastRewind(t *testing.T) {
	c := addFrames(t, 4, 5, 16, 52)
	tab := c.Table
	tab.AdvancePast(20)
	if tab.PastClusters() != tab.NumClusters() {
		t.Fatal("all clusters should be past at the final boundary")
	}
	tab.AdvancePast(5)
	total := 0
	for id := 0; id < tab.NumClusters(); id++ {
		for _, tok := range tab.PastTokens(id) {
			if tok >= 5 {
				t.Fatalf("token %d beyond rewound boundary", tok)
			}
			total++
		}
	}
	if total != 5 {
		t.Fatalf("rewound past tokens = %d, want 5", total)
	}
	// Forward again must agree with a fresh rescan.
	tab.AdvancePast(12)
	total = 0
	for id := 0; id < tab.PastClusters(); id++ {
		total += tab.PastCount(id)
	}
	if total != 12 {
		t.Fatalf("re-advanced past tokens = %d, want 12", total)
	}
}

// TestAdvancePastUnorderedPanics pins the documented contract: the
// incremental bookkeeping refuses to run over out-of-order insertion.
func TestAdvancePastUnorderedPanics(t *testing.T) {
	tab := NewHCTable(1)
	sig := make(Signature, 1)
	tab.Insert(5, []float32{0}, sig)
	tab.Insert(3, []float32{0}, sig) // out of order
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AdvancePast(10)
}

// TestHCTableResetBehavesFresh: a reset table must be indistinguishable from
// a new one.
func TestHCTableResetBehavesFresh(t *testing.T) {
	rng := mathx.NewRNG(53)
	c := NewClusterer(16, 32, 7, rng.Split())
	keys := tensor.NewMatrix(10, 16)
	keys.Randomize(rng, 1)
	c.AddFrame(keys, 0)
	c.Table.AdvancePast(10)
	c.Table.Reset()
	if c.Table.NumClusters() != 0 || c.Table.NumTokens() != 0 || c.Table.PastClusters() != 0 {
		t.Fatal("reset table not empty")
	}
	if c.Table.ClusterOf(0) != -1 {
		t.Fatal("reset table retains token mapping")
	}
	ids := c.AddFrame(keys, 0)
	for i, id := range ids {
		if c.Table.ClusterOf(i) != id {
			t.Fatal("reset table misassigns tokens")
		}
	}
}

// TestClustererResetRedrawsIdentically: Reset with the same rng stream as
// construction must reproduce the exact clustering.
func TestClustererResetRedrawsIdentically(t *testing.T) {
	rng1 := mathx.NewRNG(54)
	c := NewClusterer(24, 32, 7, rng1.Split())
	keys := tensor.NewMatrix(12, 24)
	keys.Randomize(mathx.NewRNG(55), 1)
	first := append([]int(nil), c.AddFrame(keys, 0)...)

	rng2 := mathx.NewRNG(54)
	c.Reset(rng2.Split())
	second := c.AddFrame(keys, 0)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("reset clusterer diverges from fresh construction")
		}
	}
}

// TestPastScanSteadyStateAllocFree pins the candidate-scan allocation bound:
// once the boundary is caught up, re-reading the candidate set (the per-frame
// work SelectTokens does) allocates nothing.
func TestPastScanSteadyStateAllocFree(t *testing.T) {
	c := addFrames(t, 6, 8, 32, 56)
	tab := c.Table
	tab.AdvancePast(40)
	allocs := testing.AllocsPerRun(100, func() {
		tab.AdvancePast(40)
		total := 0
		for ci := 0; ci < tab.PastClusters(); ci++ {
			total += tab.PastCount(ci)
		}
		if total != 40 {
			t.Fatal("past token count wrong")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state candidate scan allocates %v times per call, want 0", allocs)
	}
}
