package hashbit

import (
	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// Clusterer bundles a Hasher with an HCTable into the complete streaming
// hash-bit key clustering pipeline of Fig. 8: each arriving frame's key
// matrix is projected, binarised and folded into the cluster table.
type Clusterer struct {
	Hasher *Hasher
	Table  *HCTable
}

// NewClusterer builds a clusterer for dim-dimensional keys with nbits
// hyperplanes and Hamming threshold thHD.
func NewClusterer(dim, nbits, thHD int, rng *mathx.RNG) *Clusterer {
	return &Clusterer{
		Hasher: NewHasher(dim, nbits, rng),
		Table:  NewHCTable(thHD),
	}
}

// AddFrame clusters every row of keys, assigning global token indices
// baseTokenIdx, baseTokenIdx+1, ... It returns the cluster ID assigned to
// each row. New tokens may join clusters created earlier in the same frame
// (the paper's "combined Key cluster hash-bit" includes current-frame bits).
func (c *Clusterer) AddFrame(keys *tensor.Matrix, baseTokenIdx int) []int {
	sigs := c.Hasher.HashKeys(keys)
	ids := make([]int, keys.Rows)
	for i := 0; i < keys.Rows; i++ {
		ids[i], _ = c.Table.Insert(baseTokenIdx+i, keys.Row(i), sigs[i])
	}
	return ids
}

// CompressionRatio returns tokens per cluster, i.e. how much the candidate
// set shrinks for the WiCSum scoring stage.
func (c *Clusterer) CompressionRatio() float64 {
	return c.Table.AvgTokensPerCluster()
}

// Reset clears the cluster table and redraws the hyperplanes from rng,
// reusing the existing hasher and table storage. A clusterer reset with the
// same rng stream as NewClusterer consumed behaves exactly like a freshly
// constructed one.
func (c *Clusterer) Reset(rng *mathx.RNG) {
	c.Hasher.Reseed(rng)
	c.Table.Reset()
}
