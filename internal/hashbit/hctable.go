package hashbit

import (
	"fmt"
	"sort"
)

// Cluster is one row of the hash cluster (HC) table: a group of tokens whose
// key signatures are within Th_hd Hamming distance of the cluster
// representative. RepKey is the running mean of member keys (Key_cluster in
// the paper) and is what WiCSum scores against; TokenIdxs maps the cluster
// back to the original token indices for retrieval.
type Cluster struct {
	ID        int
	TokenIdxs []int
	// RepSig is the cluster's representative hash-bit pattern (the signature
	// of the first member; kept stable so streaming assignment is cheap).
	RepSig Signature
	// RepKey is the element-wise mean of all member key vectors.
	RepKey []float32
	// pastLen is the number of leading TokenIdxs below the table's past
	// boundary (see HCTable.AdvancePast). TokenIdxs is sorted ascending under
	// streaming insertion, so the past members are exactly a prefix.
	pastLen int
	// pending marks membership in the table's dirty list: the cluster has
	// absorbed a token at or beyond the current past boundary since the last
	// AdvancePast (so its pastLen cursor and RepKey may still move).
	pending bool
}

// Count returns the number of tokens in the cluster (TC_j in Eq. 1).
func (c *Cluster) Count() int { return len(c.TokenIdxs) }

// addMember appends a token and folds its key into the running mean.
func (c *Cluster) addMember(tokenIdx int, key []float32) {
	n := float32(len(c.TokenIdxs))
	for j, v := range key {
		c.RepKey[j] = (c.RepKey[j]*n + v) / (n + 1)
	}
	c.TokenIdxs = append(c.TokenIdxs, tokenIdx)
}

// HCTable is the streaming hash cluster table maintained per decoder layer.
// Each arriving frame's tokens are assigned to the nearest existing cluster
// (by signature Hamming distance) if within the threshold, otherwise they
// found a new cluster.
//
// Beyond membership, the table keeps the KVPU's candidate bookkeeping up to
// date incrementally: AdvancePast moves a "past boundary" forward as frames
// arrive, maintaining per-cluster past-token counts and the candidate prefix
// in O(new tokens + touched clusters) instead of rescanning every cluster
// per frame.
type HCTable struct {
	// ThHD is Th_hd, the Hamming distance threshold for joining a cluster.
	ThHD int
	// Clusters in creation order; Cluster.ID is the index.
	Clusters []*Cluster
	// tokenToCluster maps token index -> cluster ID.
	tokenToCluster map[int]int
	// nTokens is the total number of tokens ever inserted.
	nTokens int

	// pastBoundary is the token index below which tokens count as "past"
	// (the base of the chunk currently being processed).
	pastBoundary int
	// numPast is the number of leading clusters with at least one past
	// member. Streaming insertion founds clusters with non-decreasing token
	// indices, so these clusters are exactly Clusters[:numPast] — the
	// candidate set SelectTokens scores.
	numPast int
	// dirty lists cluster IDs whose pastLen cursor is not yet caught up with
	// their membership (they hold tokens at or beyond pastBoundary).
	dirty []int
	// maxToken guards the sorted-TokenIdxs invariant the incremental
	// bookkeeping relies on.
	maxToken int
	// unordered records that tokens were inserted out of order; the past
	// tracking then refuses to run rather than silently miscount.
	unordered bool
}

// NewHCTable creates an empty table with Hamming threshold thHD.
func NewHCTable(thHD int) *HCTable {
	if thHD < 0 {
		panic("hashbit: negative Hamming threshold")
	}
	return &HCTable{ThHD: thHD, tokenToCluster: make(map[int]int), maxToken: -1}
}

// Reset returns the table to its empty state, retaining allocated capacity
// (the cluster slice, the dirty list and the token map) for the next session.
func (t *HCTable) Reset() {
	clear(t.Clusters) // drop the old session's cluster payloads, keep capacity
	t.Clusters = t.Clusters[:0]
	clear(t.tokenToCluster)
	t.nTokens = 0
	t.pastBoundary = 0
	t.numPast = 0
	t.dirty = t.dirty[:0]
	t.maxToken = -1
	t.unordered = false
}

// NumClusters returns the current cluster count.
func (t *HCTable) NumClusters() int { return len(t.Clusters) }

// NumTokens returns the total tokens inserted.
func (t *HCTable) NumTokens() int { return t.nTokens }

// ClusterOf returns the cluster ID for a token index, or -1 if unknown.
func (t *HCTable) ClusterOf(tokenIdx int) int {
	if id, ok := t.tokenToCluster[tokenIdx]; ok {
		return id
	}
	return -1
}

// AvgTokensPerCluster returns the mean cluster occupancy (the paper reports
// an average of 32 tokens per cluster on COIN).
func (t *HCTable) AvgTokensPerCluster() float64 {
	if len(t.Clusters) == 0 {
		return 0
	}
	return float64(t.nTokens) / float64(len(t.Clusters))
}

// noteMember records bookkeeping shared by every insertion path: the token
// map, the counters, the ordering guard and the dirty list (the new member
// sits at or beyond the past boundary, so its cluster's cursor is stale).
func (t *HCTable) noteMember(c *Cluster, tokenIdx int) {
	if tokenIdx <= t.maxToken {
		t.unordered = true
	} else {
		t.maxToken = tokenIdx
	}
	if !c.pending {
		c.pending = true
		t.dirty = append(t.dirty, c.ID)
	}
	t.tokenToCluster[tokenIdx] = c.ID
	t.nTokens++
}

// Insert assigns one token (global index tokenIdx, key vector key, signature
// sig) to the nearest cluster within ThHD, creating a new cluster if none
// qualifies. It returns the cluster ID and the Hamming distance to the chosen
// representative (0 for a newly created cluster).
func (t *HCTable) Insert(tokenIdx int, key []float32, sig Signature) (clusterID, dist int) {
	best, bestDist := -1, t.ThHD // strict: only d < ThHD joins
	for _, c := range t.Clusters {
		d := Hamming(sig, c.RepSig)
		if d < bestDist {
			best, bestDist = c.ID, d
		}
	}
	if best >= 0 {
		c := t.Clusters[best]
		c.addMember(tokenIdx, key)
		t.noteMember(c, tokenIdx)
		return best, bestDist
	}
	id, _ := t.insertNewCluster(tokenIdx, key, sig)
	return id, 0
}

// AdvancePast declares every token with index < boundary "past": eligible as
// a retrieval candidate for the chunk starting at boundary. The update is
// incremental — only clusters that absorbed tokens since the previous call
// (the dirty list) have their past cursors advanced, and the candidate prefix
// grows monotonically — so steady-state cost is O(new tokens + touched
// clusters), independent of the total cluster count.
//
// Boundaries normally only move forward (streaming prefill); moving the
// boundary backwards takes a full-rescan slow path. The incremental
// bookkeeping requires monotonically increasing token indices and panics if
// tokens were inserted out of order.
//
//vrex:noalloc
func (t *HCTable) AdvancePast(boundary int) {
	if boundary == t.pastBoundary {
		return
	}
	if t.unordered {
		panic("hashbit: AdvancePast requires monotonically increasing token insertion")
	}
	if boundary < t.pastBoundary {
		t.rewindPast(boundary)
		return
	}
	keep := t.dirty[:0]
	for _, id := range t.dirty {
		c := t.Clusters[id]
		for c.pastLen < len(c.TokenIdxs) && c.TokenIdxs[c.pastLen] < boundary {
			c.pastLen++
		}
		if c.pastLen < len(c.TokenIdxs) {
			keep = append(keep, id)
		} else {
			c.pending = false
		}
	}
	t.dirty = keep
	// Founding token indices are non-decreasing in cluster ID, so the
	// candidate set stays a prefix of the cluster list.
	for t.numPast < len(t.Clusters) && t.Clusters[t.numPast].TokenIdxs[0] < boundary {
		t.numPast++
	}
	t.pastBoundary = boundary
}

// rewindPast is the slow path for a boundary that moved backwards: every
// cluster's cursor is recomputed by binary search and the dirty list rebuilt.
//
//vrex:noalloc
func (t *HCTable) rewindPast(boundary int) {
	t.dirty = t.dirty[:0]
	t.numPast = 0
	for _, c := range t.Clusters {
		c.pastLen = sort.SearchInts(c.TokenIdxs, boundary)
		if c.pastLen < len(c.TokenIdxs) {
			c.pending = true
			t.dirty = append(t.dirty, c.ID)
		} else {
			c.pending = false
		}
		if c.TokenIdxs[0] < boundary {
			t.numPast++
		}
	}
	t.pastBoundary = boundary
}

// PastClusters returns how many leading clusters hold at least one past
// token, as of the last AdvancePast: Clusters[:PastClusters()] is the
// candidate set for WiCSum scoring.
func (t *HCTable) PastClusters() int { return t.numPast }

// PastCount returns how many of cluster id's members are past tokens, as of
// the last AdvancePast.
func (t *HCTable) PastCount(id int) int { return t.Clusters[id].pastLen }

// PastTokens returns cluster id's past members (those below the last
// AdvancePast boundary). The returned slice aliases the cluster's membership
// list and must not be mutated.
func (t *HCTable) PastTokens(id int) []int {
	c := t.Clusters[id]
	return c.TokenIdxs[:c.pastLen]
}

// PendingClusters returns the IDs of clusters that absorbed tokens since the
// last AdvancePast (their RepKey running means may have moved). The slice
// aliases internal state: read it before calling AdvancePast and do not
// retain it.
func (t *HCTable) PendingClusters() []int { return t.dirty }

// TokensOf expands a set of cluster IDs into the union of their member token
// indices (the HC-table lookup that maps selected clusters back to tokens in
// Fig. 9). The result preserves insertion order within each cluster.
func (t *HCTable) TokensOf(clusterIDs []int) []int {
	var out []int
	for _, id := range clusterIDs {
		if id < 0 || id >= len(t.Clusters) {
			panic(fmt.Sprintf("hashbit: cluster ID %d out of range", id))
		}
		out = append(out, t.Clusters[id].TokenIdxs...)
	}
	return out
}

// MemoryOverheadBytes estimates the HC table's storage cost: per cluster one
// representative key (bf16), one signature, and per token a 4-byte index.
// The paper reports this at 1.67% of the full KV cache.
func (t *HCTable) MemoryOverheadBytes(keyDim, sigBits int) int {
	perCluster := keyDim*2 + SignatureWords(sigBits)*8
	return len(t.Clusters)*perCluster + t.nTokens*4
}

// InsertInto adds a token directly to a known cluster (bypassing the
// nearest-signature search); the windowed clusterer uses it after matching
// against the active set only. It returns the cluster ID.
func (t *HCTable) InsertInto(clusterID, tokenIdx int, key []float32) int {
	if clusterID < 0 || clusterID >= len(t.Clusters) {
		panic(fmt.Sprintf("hashbit: cluster ID %d out of range", clusterID))
	}
	c := t.Clusters[clusterID]
	c.addMember(tokenIdx, key)
	t.noteMember(c, tokenIdx)
	return clusterID
}

// insertNewCluster founds a cluster unconditionally and returns (id, 0).
func (t *HCTable) insertNewCluster(tokenIdx int, key []float32, sig Signature) (int, int) {
	c := &Cluster{
		ID:        len(t.Clusters),
		TokenIdxs: []int{tokenIdx},
		RepSig:    sig.Clone(),
		RepKey:    append([]float32(nil), key...),
	}
	t.Clusters = append(t.Clusters, c)
	t.noteMember(c, tokenIdx)
	return c.ID, 0
}
