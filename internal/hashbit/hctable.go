package hashbit

import "fmt"

// Cluster is one row of the hash cluster (HC) table: a group of tokens whose
// key signatures are within Th_hd Hamming distance of the cluster
// representative. RepKey is the running mean of member keys (Key_cluster in
// the paper) and is what WiCSum scores against; TokenIdxs maps the cluster
// back to the original token indices for retrieval.
type Cluster struct {
	ID        int
	TokenIdxs []int
	// RepSig is the cluster's representative hash-bit pattern (the signature
	// of the first member; kept stable so streaming assignment is cheap).
	RepSig Signature
	// RepKey is the element-wise mean of all member key vectors.
	RepKey []float32
}

// Count returns the number of tokens in the cluster (TC_j in Eq. 1).
func (c *Cluster) Count() int { return len(c.TokenIdxs) }

// addMember appends a token and folds its key into the running mean.
func (c *Cluster) addMember(tokenIdx int, key []float32) {
	n := float32(len(c.TokenIdxs))
	for j, v := range key {
		c.RepKey[j] = (c.RepKey[j]*n + v) / (n + 1)
	}
	c.TokenIdxs = append(c.TokenIdxs, tokenIdx)
}

// HCTable is the streaming hash cluster table maintained per decoder layer.
// Each arriving frame's tokens are assigned to the nearest existing cluster
// (by signature Hamming distance) if within the threshold, otherwise they
// found a new cluster.
type HCTable struct {
	// ThHD is Th_hd, the Hamming distance threshold for joining a cluster.
	ThHD int
	// Clusters in creation order; Cluster.ID is the index.
	Clusters []*Cluster
	// tokenToCluster maps token index -> cluster ID.
	tokenToCluster map[int]int
	// nTokens is the total number of tokens ever inserted.
	nTokens int
}

// NewHCTable creates an empty table with Hamming threshold thHD.
func NewHCTable(thHD int) *HCTable {
	if thHD < 0 {
		panic("hashbit: negative Hamming threshold")
	}
	return &HCTable{ThHD: thHD, tokenToCluster: make(map[int]int)}
}

// NumClusters returns the current cluster count.
func (t *HCTable) NumClusters() int { return len(t.Clusters) }

// NumTokens returns the total tokens inserted.
func (t *HCTable) NumTokens() int { return t.nTokens }

// ClusterOf returns the cluster ID for a token index, or -1 if unknown.
func (t *HCTable) ClusterOf(tokenIdx int) int {
	if id, ok := t.tokenToCluster[tokenIdx]; ok {
		return id
	}
	return -1
}

// AvgTokensPerCluster returns the mean cluster occupancy (the paper reports
// an average of 32 tokens per cluster on COIN).
func (t *HCTable) AvgTokensPerCluster() float64 {
	if len(t.Clusters) == 0 {
		return 0
	}
	return float64(t.nTokens) / float64(len(t.Clusters))
}

// Insert assigns one token (global index tokenIdx, key vector key, signature
// sig) to the nearest cluster within ThHD, creating a new cluster if none
// qualifies. It returns the cluster ID and the Hamming distance to the chosen
// representative (0 for a newly created cluster).
func (t *HCTable) Insert(tokenIdx int, key []float32, sig Signature) (clusterID, dist int) {
	best, bestDist := -1, t.ThHD // strict: only d < ThHD joins
	for _, c := range t.Clusters {
		d := Hamming(sig, c.RepSig)
		if d < bestDist {
			best, bestDist = c.ID, d
		}
	}
	if best >= 0 {
		c := t.Clusters[best]
		c.addMember(tokenIdx, key)
		t.tokenToCluster[tokenIdx] = best
		t.nTokens++
		return best, bestDist
	}
	c := &Cluster{
		ID:        len(t.Clusters),
		TokenIdxs: []int{tokenIdx},
		RepSig:    sig.Clone(),
		RepKey:    append([]float32(nil), key...),
	}
	t.Clusters = append(t.Clusters, c)
	t.tokenToCluster[tokenIdx] = c.ID
	t.nTokens++
	return c.ID, 0
}

// TokensOf expands a set of cluster IDs into the union of their member token
// indices (the HC-table lookup that maps selected clusters back to tokens in
// Fig. 9). The result preserves insertion order within each cluster.
func (t *HCTable) TokensOf(clusterIDs []int) []int {
	var out []int
	for _, id := range clusterIDs {
		if id < 0 || id >= len(t.Clusters) {
			panic(fmt.Sprintf("hashbit: cluster ID %d out of range", id))
		}
		out = append(out, t.Clusters[id].TokenIdxs...)
	}
	return out
}

// MemoryOverheadBytes estimates the HC table's storage cost: per cluster one
// representative key (bf16), one signature, and per token a 4-byte index.
// The paper reports this at 1.67% of the full KV cache.
func (t *HCTable) MemoryOverheadBytes(keyDim, sigBits int) int {
	perCluster := keyDim*2 + SignatureWords(sigBits)*8
	return len(t.Clusters)*perCluster + t.nTokens*4
}

// InsertInto adds a token directly to a known cluster (bypassing the
// nearest-signature search); the windowed clusterer uses it after matching
// against the active set only. It returns the cluster ID.
func (t *HCTable) InsertInto(clusterID, tokenIdx int, key []float32) int {
	if clusterID < 0 || clusterID >= len(t.Clusters) {
		panic(fmt.Sprintf("hashbit: cluster ID %d out of range", clusterID))
	}
	t.Clusters[clusterID].addMember(tokenIdx, key)
	t.tokenToCluster[tokenIdx] = clusterID
	t.nTokens++
	return clusterID
}

// insertNewCluster founds a cluster unconditionally and returns (id, 0).
func (t *HCTable) insertNewCluster(tokenIdx int, key []float32, sig Signature) (int, int) {
	c := &Cluster{
		ID:        len(t.Clusters),
		TokenIdxs: []int{tokenIdx},
		RepSig:    sig.Clone(),
		RepKey:    append([]float32(nil), key...),
	}
	t.Clusters = append(t.Clusters, c)
	t.tokenToCluster[tokenIdx] = c.ID
	t.nTokens++
	return c.ID, 0
}
