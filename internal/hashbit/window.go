package hashbit

// ActiveWindow bounds the set of clusters new tokens are compared against.
// The KVMU performs clustering "entirely within the recent KV cache,
// removing any need to access the CPU or storage for clustering with the
// offloaded cache" (Sec. V-C): clusters that have not absorbed a token for
// a while become inactive — their signatures leave the HCU's hash-bit
// memory — and new tokens can only join active clusters or found new ones.
// Inactive clusters remain in the HC table for retrieval (their members are
// still selectable); they just stop growing.
//
// Bounding the active set also caps the HCU's comparison work per frame at
// O(newTokens x MaxActive) regardless of stream length.
type ActiveWindow struct {
	// MaxActive is the maximum number of clusters kept active (the HCU
	// hash-bit memory capacity; 1024 for 4 KB / 32-bit signatures).
	MaxActive int
	// order holds active cluster IDs, least-recently-updated first.
	order []int
	pos   map[int]int // cluster ID -> index in order
}

// NewActiveWindow returns a window of at most maxActive clusters.
func NewActiveWindow(maxActive int) *ActiveWindow {
	if maxActive <= 0 {
		panic("hashbit: non-positive active window")
	}
	return &ActiveWindow{MaxActive: maxActive, pos: make(map[int]int)}
}

// Active returns the active cluster IDs (ordering unspecified).
func (w *ActiveWindow) Active() []int {
	return append([]int(nil), w.order...)
}

// Len returns the active count.
func (w *ActiveWindow) Len() int { return len(w.order) }

// Contains reports whether a cluster is active.
func (w *ActiveWindow) Contains(id int) bool {
	_, ok := w.pos[id]
	return ok
}

// Touch marks a cluster as most-recently-updated, inserting it (and evicting
// the least-recently-updated cluster) if needed. It returns the evicted
// cluster ID, or -1.
func (w *ActiveWindow) Touch(id int) int {
	if i, ok := w.pos[id]; ok {
		// Move to the back.
		w.order = append(append(w.order[:i:i], w.order[i+1:]...), id)
		w.reindex(i)
		return -1
	}
	evicted := -1
	if len(w.order) >= w.MaxActive {
		evicted = w.order[0]
		delete(w.pos, evicted)
		w.order = w.order[1:]
		w.reindex(0)
	}
	w.pos[id] = len(w.order)
	w.order = append(w.order, id)
	return evicted
}

func (w *ActiveWindow) reindex(from int) {
	for i := from; i < len(w.order); i++ {
		w.pos[w.order[i]] = i
	}
}

// WindowedClusterer is a Clusterer whose assignment only considers active
// clusters.
type WindowedClusterer struct {
	Hasher *Hasher
	Table  *HCTable
	Window *ActiveWindow
}

// NewWindowedClusterer builds the bounded variant.
func NewWindowedClusterer(c *Clusterer, maxActive int) *WindowedClusterer {
	return &WindowedClusterer{
		Hasher: c.Hasher,
		Table:  c.Table,
		Window: NewActiveWindow(maxActive),
	}
}

// AddFrame clusters the frame's keys against active clusters only.
func (w *WindowedClusterer) AddFrame(keys interface {
	Row(int) []float32
}, rows, baseTokenIdx int) []int {
	ids := make([]int, rows)
	for i := 0; i < rows; i++ {
		key := keys.Row(i)
		sig := w.Hasher.HashVector(key)
		best, bestDist := -1, w.Table.ThHD
		for _, cid := range w.Window.Active() {
			d := Hamming(sig, w.Table.Clusters[cid].RepSig)
			if d < bestDist {
				best, bestDist = cid, d
			}
		}
		var id int
		if best >= 0 {
			id = w.Table.InsertInto(best, baseTokenIdx+i, key)
		} else {
			id, _ = w.insertNew(baseTokenIdx+i, key, sig)
		}
		w.Window.Touch(id)
		ids[i] = id
	}
	return ids
}

// insertNew founds a cluster unconditionally (bypassing the global nearest
// search — inactive clusters must not attract new members).
func (w *WindowedClusterer) insertNew(tokenIdx int, key []float32, sig Signature) (int, int) {
	return w.Table.insertNewCluster(tokenIdx, key, sig)
}
