package hwsim

import "testing"

// TestStepSingleMatchesChunk pins the batch-1 anchor: a one-request step is
// byte-identical to the corresponding Chunk, for every policy family and
// both stages — the property the serving plane's batch-1 scheduler
// equivalence rests on.
func TestStepSingleMatchesChunk(t *testing.T) {
	cases := []struct {
		dev DeviceSpec
		pol PolicyModel
	}{
		{VRex8(), ReSVModel()},
		{AGXOrin(), FlexGenModel()},
		{AGXOrin(), ReKVModel()},
		{A100(), InfiniGenModel()},
		{AGXOrin(), DenseModel()},
	}
	for _, c := range cases {
		sim := NewSim(c.dev, Llama3_8B(), c.pol)
		for _, kv := range []int{0, 1000, 20000, 40000} {
			for _, stage := range []StageKind{StageFramePhase, StageTextPhase} {
				n := 10
				if stage == StageTextPhase {
					n = 25
				}
				got := sim.Step([]StepReq{{NewTokens: n, KVLen: kv, Stage: stage}})
				want := sim.Chunk(n, kv, 1, stage)
				if got != want {
					t.Fatalf("%s+%s kv=%d stage=%d: Step != Chunk\n%+v\n%+v",
						c.dev.Name, c.pol.Name, kv, stage, got, want)
				}
			}
		}
	}
}

// TestStepBatchAmortizes is the reason continuous batching exists: a step of
// k frames is strictly cheaper than k serial frame steps (the weight read
// and host frame overhead are charged once), but strictly more expensive
// than one frame (per-token and per-stream work still accumulates).
func TestStepBatchAmortizes(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	solo := sim.Step([]StepReq{{NewTokens: 10, KVLen: 20000, Stage: StageFramePhase}})
	for _, k := range []int{2, 4, 8} {
		reqs := make([]StepReq, k)
		for i := range reqs {
			reqs[i] = StepReq{NewTokens: 10, KVLen: 20000, Stage: StageFramePhase}
		}
		b := sim.Step(reqs)
		if b.OOM {
			t.Fatalf("batch %d OOM", k)
		}
		if b.Total >= float64(k)*solo.Total {
			t.Fatalf("batch %d total %v not cheaper than %d serial steps %v",
				k, b.Total, k, float64(k)*solo.Total)
		}
		if b.Total <= solo.Total {
			t.Fatalf("batch %d total %v not above a single frame %v", k, b.Total, solo.Total)
		}
	}
}

// TestStepMonotoneInMembers: adding a member never makes the step cheaper.
func TestStepMonotoneInMembers(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	prev := 0.0
	var reqs []StepReq
	for k := 1; k <= 8; k++ {
		reqs = append(reqs, StepReq{NewTokens: 10, KVLen: 10000 + 1000*k, Stage: StageFramePhase})
		b := sim.Step(reqs)
		if b.Total <= prev {
			t.Fatalf("step total not strictly increasing at %d members: %v then %v", k, prev, b.Total)
		}
		prev = b.Total
	}
}

// TestStepDegenerate: empty and token-free requests cost nothing.
func TestStepDegenerate(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	if b := sim.Step(nil); b.Total != 0 || b.OOM {
		t.Fatalf("empty step: %+v", b)
	}
	if b := sim.Step([]StepReq{{NewTokens: 0, KVLen: 5000}}); b.Total != 0 || b.OOM {
		t.Fatalf("token-free step: %+v", b)
	}
	// Zero-token requests are ignored inside a real batch too: the pair
	// (live, dead) prices exactly like the live request alone.
	live := sim.Step([]StepReq{{NewTokens: 10, KVLen: 5000, Stage: StageFramePhase}})
	mixed := sim.Step([]StepReq{
		{NewTokens: 10, KVLen: 5000, Stage: StageFramePhase},
		{NewTokens: 0, KVLen: 9000},
	})
	if mixed != live {
		t.Fatalf("dead request changed the step: %+v vs %+v", mixed, live)
	}
}

// TestStepMixedStages: frame and text requests coalesce; the mixed step
// costs more than the frame alone (prefill/decode interference) but charges
// the vision tower and frame overhead only for the frame members.
func TestStepMixedStages(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	frame := StepReq{NewTokens: 10, KVLen: 20000, Stage: StageFramePhase}
	text := StepReq{NewTokens: 1, KVLen: 20000, Stage: StageTextPhase}
	fOnly := sim.Step([]StepReq{frame, frame})
	mixed := sim.Step([]StepReq{frame, frame, text})
	if mixed.Total <= fOnly.Total {
		t.Fatalf("decode rider should add cost: %v vs %v", mixed.Total, fOnly.Total)
	}
	if mixed.VisionTime != fOnly.VisionTime {
		t.Fatalf("text request changed vision time: %v vs %v", mixed.VisionTime, fOnly.VisionTime)
	}
}

// TestStepCombinedOOM: members that fit individually can exceed device
// memory together; the step reports OOM with no cost, like Chunk.
func TestStepCombinedOOM(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), DenseModel())
	solo := StepReq{NewTokens: 10, KVLen: 60000, Stage: StageFramePhase}
	if sim.OOM(solo.KVLen, 1) {
		t.Fatal("solo request should fit")
	}
	b := sim.Step([]StepReq{solo, solo})
	if !b.OOM || b.Total != 0 {
		t.Fatalf("combined working set must OOM: %+v", b)
	}
}

// TestScaledPricing pins the degradation hook: a scaled simulator fetches
// fewer tokens so chunks get strictly cheaper, scale 1 is the identity (same
// pointer, byte-identical costs), and the receiver is never mutated.
func TestScaledPricing(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	before := *sim
	full := sim.Chunk(10, 40000, 1, StageFramePhase)
	if sim.Scaled(1) != sim {
		t.Fatal("Scaled(1) must return the receiver")
	}
	prev := full.Total
	for _, scale := range []float64{0.7, 0.49, 0.25} {
		b := sim.Scaled(scale).Chunk(10, 40000, 1, StageFramePhase)
		if b.Total >= prev {
			t.Fatalf("scale %g: total %v not below %v", scale, b.Total, prev)
		}
		if b.FetchBytes >= full.FetchBytes*scale*1.01 {
			t.Fatalf("scale %g: fetch bytes %v not scaled from %v", scale, b.FetchBytes, full.FetchBytes)
		}
		prev = b.Total
	}
	if *sim != before {
		t.Fatal("Scaled mutated the receiver")
	}
}

// TestStepRatioScale pins the zero-value convention and the per-request
// scaling path: RatioScale 0 prices identically to an unscaled request (both
// solo and batched), a scaled solo request matches the Scaled Chunk exactly,
// and scaling one member of a batch makes the step cheaper.
func TestStepRatioScale(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	req := StepReq{NewTokens: 10, KVLen: 40000, Stage: StageFramePhase}
	if got, want := sim.Step([]StepReq{req}), sim.Chunk(10, 40000, 1, StageFramePhase); got != want {
		t.Fatalf("zero RatioScale solo: %+v != %+v", got, want)
	}
	scaled := req
	scaled.RatioScale = 0.5
	if got, want := sim.Step([]StepReq{scaled}), sim.Scaled(0.5).Chunk(10, 40000, 1, StageFramePhase); got != want {
		t.Fatalf("scaled solo: %+v != %+v", got, want)
	}
	full := sim.Step([]StepReq{req, req})
	mixed := sim.Step([]StepReq{req, scaled})
	if mixed.Total >= full.Total {
		t.Fatalf("degraded member should cheapen the step: %v vs %v", mixed.Total, full.Total)
	}
	explicit := req
	explicit.RatioScale = 1
	if got := sim.Step([]StepReq{req, explicit}); got != full {
		t.Fatalf("RatioScale 1 differs from zero value: %+v vs %+v", got, full)
	}
}

// TestOOMMatchesChunk: the exported admission check agrees with Chunk's
// internal one.
func TestOOMMatchesChunk(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), DenseModel())
	for _, kv := range []int{1000, 60000, 150000} {
		if got, want := sim.OOM(kv, 1), sim.Chunk(10, kv, 1, StageFramePhase).OOM; got != want {
			t.Fatalf("kv=%d OOM %v, Chunk reports %v", kv, got, want)
		}
	}
}
