package hwsim

// LLMSpec is the analytic shape of the backbone LLM (paper scale:
// Llama-3 8B) from which per-chunk FLOP and byte counts derive.
type LLMSpec struct {
	Layers  int
	Dim     int
	Heads   int
	KVHeads int
	FFNDim  int
	Vocab   int
	// BytesPerElem is the storage precision of weights/KV (2 for BF16).
	BytesPerElem float64
}

// Llama3_8B returns the paper's backbone: 32 layers, d=4096, 32 heads,
// 8 KV heads (GQA), FFN 14336, vocab 128256, BF16.
func Llama3_8B() LLMSpec {
	return LLMSpec{
		Layers:       32,
		Dim:          4096,
		Heads:        32,
		KVHeads:      8,
		FFNDim:       14336,
		Vocab:        128256,
		BytesPerElem: 2,
	}
}

// HeadDim returns Dim/Heads.
func (s LLMSpec) HeadDim() int { return s.Dim / s.Heads }

// KVDim returns KVHeads x HeadDim.
func (s LLMSpec) KVDim() int { return s.KVHeads * s.HeadDim() }

// KVBytesPerToken returns the full-model KV footprint of one token:
// 2 (K and V) x Layers x KVDim x BytesPerElem. For Llama-3 8B this is
// 128 KiB/token, which drives the Fig. 4a memory growth.
func (s LLMSpec) KVBytesPerToken() float64 {
	return 2 * float64(s.Layers) * float64(s.KVDim()) * s.BytesPerElem
}

// WeightBytes returns total parameter bytes (attention + FFN + embeddings).
func (s LLMSpec) WeightBytes() float64 {
	d := float64(s.Dim)
	kv := float64(s.KVDim())
	f := float64(s.FFNDim)
	perLayer := d*d + 2*d*kv + d*d + 3*d*f // wq, wk+wv, wo, w1/w2/w3
	return (float64(s.Layers)*perLayer + 2*float64(s.Vocab)*d) * s.BytesPerElem
}

// LayerLinearFLOPs returns the dense (QKVO + FFN) FLOPs for a chunk of n
// tokens in one layer.
func (s LLMSpec) LayerLinearFLOPs(n int) float64 {
	d := float64(s.Dim)
	kv := float64(s.KVDim())
	f := float64(s.FFNDim)
	nn := float64(n)
	qkvo := 2 * nn * d * (d + 2*kv + d)
	ffn := 2 * nn * d * f * 3
	return qkvo + ffn
}

// LayerAttnFLOPs returns attention FLOPs for n query tokens attending to
// attended tokens in one layer (scores + weighted values).
func (s LLMSpec) LayerAttnFLOPs(n, attended int) float64 {
	return 4 * float64(n) * float64(attended) * float64(s.Dim)
}

// LayerWeightBytes returns per-layer weight traffic for one pass.
func (s LLMSpec) LayerWeightBytes() float64 {
	d := float64(s.Dim)
	kv := float64(s.KVDim())
	f := float64(s.FFNDim)
	return (2*d*d + 2*d*kv + 3*d*f) * s.BytesPerElem
}

// LayerKVBytes returns the KV bytes read by attention over `attended` tokens
// in one layer.
func (s LLMSpec) LayerKVBytes(attended int) float64 {
	return 2 * float64(attended) * float64(s.KVDim()) * s.BytesPerElem
}

// PredFLOPs returns the KV-prediction compute for n query tokens scored
// against cand candidates in one layer (Q x K^T over KVDim plus
// normalisation), the dominant term of retrieval prediction (Fig. 4c).
func (s LLMSpec) PredFLOPs(n, cand int) float64 {
	return 2*float64(n)*float64(cand)*float64(s.KVDim()) + 4*float64(n)*float64(cand)
}
