package hwsim

// PredKind classifies a retrieval policy's KV-prediction computation.
type PredKind int

const (
	// PredNone: no prediction compute (FlexGen fetches everything, Dense
	// attends everything resident).
	PredNone PredKind = iota
	// PredTopK: score all cached tokens and top-k sort (InfiniGen/ReKV).
	PredTopK
	// PredReSV: hash-bit clustering + WiCSum over clusters (score work
	// shrinks by the cluster compression ratio).
	PredReSV
)

// PolicyModel is the performance-plane description of a retrieval policy:
// how much KV it fetches, what its prediction computes, where that
// prediction runs, and how its fetches are laid out. The ratio fields are
// typically measured on the functional plane (core/retrieval packages) and
// carried over, keeping both planes consistent.
type PolicyModel struct {
	Name string
	// FrameRatio / TextRatio: fraction of the cached KV fetched per layer in
	// each stage.
	FrameRatio float64
	TextRatio  float64
	// Pred selects the prediction cost model.
	Pred PredKind
	// PredOnDevice: prediction runs on the main compute device (GPU),
	// serialising with LLM kernels at IrregularEff for the irregular parts;
	// false on V-Rex, where the DRE runs it concurrently.
	PredOnDevice bool
	// SegmentTokens is the average contiguous run length (in tokens) of a
	// fetch: 1 for token-granular selection, the video tokens-per-frame for
	// ReKV, the mean cluster size for ReSV under the KVMU.
	SegmentTokens float64
	// Offloads: the full cache lives off-device and selected tokens must
	// cross the link. False for Dense/Oaken (resident cache, OOM risk).
	Offloads bool
	// ClusterCompression is tokens-per-cluster (ReSV): prediction scores
	// clusters, not tokens. 1 for token-granular policies.
	ClusterCompression float64
	// KVQuantBits is the resident-KV precision (16 default, 4 for Oaken).
	KVQuantBits int
	// PrefetchOverlap: selected KV for layer l+1 is prefetched during layer
	// l's computation (Fig. 5 ii/iii). FlexGen's vanilla loop (Fig. 5 i)
	// loads serially.
	PrefetchOverlap bool
	// ResidentReuse is the fraction of a chunk's selected tokens already
	// resident from the previous chunk's fetch (temporal selection
	// stability; high for ReSV because cluster-level selections are stable
	// across adjacent frames and the retrieved-KV region of Fig. 12 is
	// reused).
	ResidentReuse float64
}

func (p PolicyModel) ratio(stage StageKind) float64 {
	if stage == StageFramePhase {
		return p.FrameRatio
	}
	return p.TextRatio
}

func (p PolicyModel) quantFactor() float64 {
	if p.KVQuantBits <= 0 || p.KVQuantBits >= 16 {
		return 1
	}
	return float64(p.KVQuantBits) / 16
}

// KVBytesPerToken returns the resident KV footprint of one token under this
// policy's storage precision — the page-sizing input of the serving plane's
// KV pool (internal/kvpool).
func (p PolicyModel) KVBytesPerToken(llm LLMSpec) float64 {
	return llm.KVBytesPerToken() * p.quantFactor()
}

// StageKind mirrors model.Stage for the performance plane.
type StageKind int

const (
	// StageFramePhase is iterative prefill of a video frame.
	StageFramePhase StageKind = iota
	// StageTextPhase is question prefill / answer generation.
	StageTextPhase
)

// Default policy models. The ratios are the Table II averages (frame/text):
// FlexGen 100/100, InfiniGen 100/6.8, InfiniGenP 50.8/6.8, ReKV 58.4/31.2,
// ReSV 32.7/2.5. Experiments may override with functionally measured values.

// FlexGenModel returns the offload-everything baseline.
func FlexGenModel() PolicyModel {
	return PolicyModel{
		Name: "FlexGen", FrameRatio: 1, TextRatio: 1,
		Pred: PredNone, SegmentTokens: 4096, Offloads: true,
		ClusterCompression: 1, KVQuantBits: 16,
		PrefetchOverlap: false, // vanilla serial load (Fig. 5 i)
	}
}

// InfiniGenModel returns generation-only top-k retrieval.
func InfiniGenModel() PolicyModel {
	return PolicyModel{
		Name: "InfiniGen", FrameRatio: 1, TextRatio: 0.068,
		Pred: PredTopK, PredOnDevice: true, SegmentTokens: 1, Offloads: true,
		ClusterCompression: 1, KVQuantBits: 16,
		PrefetchOverlap: true,
	}
}

// InfiniGenPModel returns prefill-extended top-k retrieval.
func InfiniGenPModel() PolicyModel {
	return PolicyModel{
		Name: "InfiniGenP", FrameRatio: 0.508, TextRatio: 0.068,
		Pred: PredTopK, PredOnDevice: true, SegmentTokens: 1, Offloads: true,
		ClusterCompression: 1, KVQuantBits: 16,
		PrefetchOverlap: true,
	}
}

// ReKVModel returns frame-granular top-k retrieval (segment = 10 video
// tokens).
func ReKVModel() PolicyModel {
	return PolicyModel{
		Name: "ReKV", FrameRatio: 0.584, TextRatio: 0.312,
		Pred: PredTopK, PredOnDevice: true, SegmentTokens: 10, Offloads: true,
		ClusterCompression: 1, KVQuantBits: 16,
		PrefetchOverlap: true, ResidentReuse: 0.2,
	}
}

// ReSVModel returns ReSV under V-Rex: clustered prediction (avg 32
// tokens/cluster, the paper's measured occupancy), KVMU cluster-contiguous
// fetches, DRE execution.
func ReSVModel() PolicyModel {
	return PolicyModel{
		Name: "ReSV", FrameRatio: 0.327, TextRatio: 0.025,
		Pred: PredReSV, PredOnDevice: false, SegmentTokens: 32, Offloads: true,
		ClusterCompression: 32, KVQuantBits: 16,
		PrefetchOverlap: true, ResidentReuse: 0.65,
	}
}

// ReSVOnGPUModel returns the AGX+ReSV ablation of Fig. 16: same algorithm,
// but prediction executes on the GPU (irregular kernels) and fetches lose
// the KVMU's contiguity (online reordering is impractical on GPUs,
// Sec. V-C).
func ReSVOnGPUModel() PolicyModel {
	m := ReSVModel()
	m.Name = "ReSV-on-GPU"
	m.PredOnDevice = true
	m.SegmentTokens = 4 // partial contiguity from natural temporal runs
	return m
}

// DenseModel returns the no-offload baseline (vanilla VideoLLM-Online /
// AGX Orin in Fig. 15): everything resident, OOM when the cache outgrows
// device memory.
func DenseModel() PolicyModel {
	return PolicyModel{
		Name: "Dense", FrameRatio: 1, TextRatio: 1,
		Pred: PredNone, SegmentTokens: 4096, Offloads: false,
		ClusterCompression: 1, KVQuantBits: 16,
	}
}

// OakenModel returns the Oaken comparison point of Fig. 15: online 4-bit KV
// quantisation, no offload — 4x more cache fits, but growth is unbounded so
// OOM still occurs past ~4x the dense limit.
func OakenModel() PolicyModel {
	m := DenseModel()
	m.Name = "Oaken"
	m.KVQuantBits = 4
	return m
}
