package hwsim

import (
	"math"
	"testing"
)

func TestLlama3SpecShapes(t *testing.T) {
	s := Llama3_8B()
	if s.HeadDim() != 128 || s.KVDim() != 1024 {
		t.Fatalf("derived dims wrong: head %d kv %d", s.HeadDim(), s.KVDim())
	}
	// 2 x 32 x 1024 x 2 = 128 KiB per token — the well-known Llama-3 8B
	// figure driving Fig. 4a.
	if s.KVBytesPerToken() != 131072 {
		t.Fatalf("KV bytes/token = %v, want 131072", s.KVBytesPerToken())
	}
	// ~8B params -> ~16GB BF16.
	if s.WeightBytes() < 13e9 || s.WeightBytes() > 19e9 {
		t.Fatalf("weight bytes %v out of 8B-model band", s.WeightBytes())
	}
}

func TestLLMFLOPCountsScale(t *testing.T) {
	s := Llama3_8B()
	if s.LayerLinearFLOPs(2) != 2*s.LayerLinearFLOPs(1) {
		t.Fatal("linear FLOPs must scale with tokens")
	}
	if s.LayerAttnFLOPs(1, 2000) != 2*s.LayerAttnFLOPs(1, 1000) {
		t.Fatal("attention FLOPs must scale with attended length")
	}
	if s.PredFLOPs(10, 100) <= 0 {
		t.Fatal("prediction FLOPs must be positive")
	}
}

func TestDeviceSpecsTable1(t *testing.T) {
	agx, a100 := AGXOrin(), A100()
	v8, v48 := VRex8(), VRex48()
	if agx.PeakFLOPS != 54e12 || a100.PeakFLOPS != 312e12 {
		t.Fatal("GPU peaks don't match Table I")
	}
	// V-Rex8 53.3 TFLOPS, V-Rex48 319.5 TFLOPS (paper rounding).
	if math.Abs(v8.PeakFLOPS-53.3e12) > 1e12 {
		t.Fatalf("V-Rex8 peak %v, want ~53.3T", v8.PeakFLOPS)
	}
	if math.Abs(v48.PeakFLOPS-319.5e12) > 5e12 {
		t.Fatalf("V-Rex48 peak %v, want ~319.5T", v48.PeakFLOPS)
	}
	if v8.Power != 35 || math.Abs(v48.Power-203.68) > 1e-9 {
		t.Fatal("V-Rex power doesn't match Table I")
	}
	if !v8.HasDRE || !v48.HasDRE || agx.HasDRE || a100.HasDRE {
		t.Fatal("DRE flags wrong")
	}
	if agx.OffloadSSD == nil || a100.OffloadSSD != nil {
		t.Fatal("edge offloads to SSD, server to CPU memory")
	}
}

func TestFrameLatencyGrowsWithKV(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), FlexGenModel())
	prev := 0.0
	for _, kv := range []int{1000, 5000, 10000, 20000, 40000} {
		b := sim.FrameLatency(10, kv, 1)
		if b.OOM {
			t.Fatalf("FlexGen offloads; must not OOM at %d", kv)
		}
		if b.Total <= prev {
			t.Fatalf("latency must grow with KV length at %d", kv)
		}
		prev = b.Total
	}
}

func TestVRexFlatterThanGPU(t *testing.T) {
	llm := Llama3_8B()
	gpu := NewSim(AGXOrin(), llm, FlexGenModel())
	vrex := NewSim(VRex8(), llm, ReSVModel())
	g1, g40 := gpu.FrameLatency(10, 1000, 1).Total, gpu.FrameLatency(10, 40000, 1).Total
	v1, v40 := vrex.FrameLatency(10, 1000, 1).Total, vrex.FrameLatency(10, 40000, 1).Total
	if g40/g1 <= v40/v1 {
		t.Fatalf("GPU growth %.1fx should exceed V-Rex growth %.1fx", g40/g1, v40/v1)
	}
	// Fig. 13 speedup shape: grows with KV length, 2-8x at the edge.
	s1, s40 := g1/v1, g40/v40
	if s40 <= s1 {
		t.Fatal("speedup must grow with KV length")
	}
	if s40 < 3 || s40 > 12 {
		t.Fatalf("speedup at 40K = %.1fx, want paper-like 3-12x", s40)
	}
}

func TestVRexRealTimeAt40K(t *testing.T) {
	// Paper: 3.9-8.3 FPS across 1K-40K at batch 1.
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	for _, kv := range []int{1000, 5000, 10000, 20000, 40000} {
		b := sim.FrameLatency(10, kv, 1)
		if fps := b.FPS(); fps < 2 {
			t.Fatalf("V-Rex8 not real-time at %d: %.1f FPS", kv, fps)
		}
	}
}

func TestTPOTMemoryBound(t *testing.T) {
	// Decode is weight-bandwidth bound: ~16GB / 174GB/s ≈ 92ms on LPDDR5.
	b := NewSim(VRex8(), Llama3_8B(), ReSVModel()).TPOT(1000, 1)
	if b.Total < 0.05 || b.Total > 0.15 {
		t.Fatalf("edge TPOT %v, want 50-150ms (paper: 89-97ms)", b.Total)
	}
	// Server decode ~16GB / 1.6TB/s ≈ 10ms (paper: 14-15ms).
	b48 := NewSim(VRex48(), Llama3_8B(), ReSVModel()).TPOT(1000, 1)
	if b48.Total < 0.005 || b48.Total > 0.03 {
		t.Fatalf("server TPOT %v, want 5-30ms", b48.Total)
	}
}

func TestInfiniGenPrefillSlowerThanFlexGen(t *testing.T) {
	// Sec. VI-B: AGX+InfiniGen(P) are even slower than FlexGen during frame
	// processing due to token-level prediction overhead.
	llm := Llama3_8B()
	fg := NewSim(AGXOrin(), llm, FlexGenModel()).FrameLatency(10, 40000, 1)
	ig := NewSim(AGXOrin(), llm, InfiniGenModel()).FrameLatency(10, 40000, 1)
	if ig.Total <= fg.Total {
		t.Fatalf("InfiniGen prefill %.0fms should exceed FlexGen %.0fms", ig.Total*1000, fg.Total*1000)
	}
}

func TestInfiniGenFastInText(t *testing.T) {
	llm := Llama3_8B()
	fg := NewSim(AGXOrin(), llm, FlexGenModel()).TPOT(40000, 1)
	ig := NewSim(AGXOrin(), llm, InfiniGenModel()).TPOT(40000, 1)
	if ig.Total >= fg.Total {
		t.Fatal("InfiniGen should beat FlexGen at text generation")
	}
}

func TestOOMBehaviourFig15(t *testing.T) {
	llm := Llama3_8B()
	dense := NewSim(AGXOrin(), llm, DenseModel())
	oaken := NewSim(AGXOrin(), llm, OakenModel())
	vrex := NewSim(VRex8(), llm, ReSVModel())
	const batch = 16
	if dense.FrameLatency(10, 5000, batch).OOM {
		t.Fatal("dense should survive 5K")
	}
	if !dense.FrameLatency(10, 10000, batch).OOM {
		t.Fatal("dense should OOM by 10K at batch 16 (paper Fig. 15)")
	}
	if oaken.FrameLatency(10, 20000, batch).OOM {
		t.Fatal("Oaken (4-bit) should survive 20K")
	}
	if !oaken.FrameLatency(10, 40000, batch).OOM {
		t.Fatal("Oaken should OOM by 40K (paper: fails beyond 20K)")
	}
	b := vrex.FrameLatency(10, 40000, batch)
	if b.OOM {
		t.Fatal("V-Rex offloads and must not OOM")
	}
	if fps := float64(batch) / b.Total; fps < 3 {
		t.Fatalf("V-Rex throughput %.1f FPS at 40K, want >= 3 (paper ~7)", fps)
	}
}

func TestDREHiddenUnderCompute(t *testing.T) {
	// Fig. 16: the DRE reduces KV-prediction exposure to ~0.5% of latency.
	b := NewSim(VRex8(), Llama3_8B(), ReSVModel()).FrameLatency(10, 40000, 1)
	if b.PredExposed > 0.05*b.Total {
		t.Fatalf("DRE prediction exposure %.1f%% of total, want < 5%%",
			100*b.PredExposed/b.Total)
	}
	// On GPU the same algorithm's prediction is a large exposed fraction.
	g := NewSim(AGXOrin(), Llama3_8B(), ReSVOnGPUModel()).FrameLatency(10, 40000, 1)
	if g.PredExposed < 5*b.PredExposed {
		t.Fatalf("GPU prediction exposure %v should dwarf DRE %v", g.PredExposed, b.PredExposed)
	}
}

func TestAblationOrderingFig16(t *testing.T) {
	// Cumulative gains: AGX+FlexGen > AGX+ReSV > V-Rex8 KVPU-only > V-Rex8 All.
	llm := Llama3_8B()
	base := NewSim(AGXOrin(), llm, FlexGenModel()).FrameLatency(10, 40000, 1).Total
	gpuResv := NewSim(AGXOrin(), llm, ReSVOnGPUModel()).FrameLatency(10, 40000, 1).Total
	kvpuOnly := ReSVModel()
	kvpuOnly.SegmentTokens = 4 // KVMU disabled: scattered fetches
	vrexKVPU := NewSim(VRex8(), llm, kvpuOnly).FrameLatency(10, 40000, 1).Total
	vrexAll := NewSim(VRex8(), llm, ReSVModel()).FrameLatency(10, 40000, 1).Total
	if !(base > gpuResv && gpuResv > vrexKVPU && vrexKVPU > vrexAll) {
		t.Fatalf("ablation ordering violated: %.0f > %.0f > %.0f > %.0f (ms)",
			base*1000, gpuResv*1000, vrexKVPU*1000, vrexAll*1000)
	}
	if base/gpuResv < 1.3 {
		t.Fatalf("ReSV on GPU should give >= 1.3x, got %.2fx", base/gpuResv)
	}
	if base/vrexAll < 4 {
		t.Fatalf("full V-Rex should give >= 4x (paper 8.1x), got %.2fx", base/vrexAll)
	}
}

func TestEnergyEfficiencyOrdering(t *testing.T) {
	// Fig. 13: V-Rex wins GOPS/W, margin grows with KV length.
	llm := Llama3_8B()
	for _, kv := range []int{1000, 40000} {
		g := NewSim(AGXOrin(), llm, FlexGenModel()).FrameLatency(10, kv, 1)
		v := NewSim(VRex8(), llm, ReSVModel()).FrameLatency(10, kv, 1)
		if v.GOPSPerWatt() <= g.GOPSPerWatt() {
			t.Fatalf("V-Rex efficiency %.1f should beat GPU %.1f at %d",
				v.GOPSPerWatt(), g.GOPSPerWatt(), kv)
		}
	}
	g40 := NewSim(AGXOrin(), llm, FlexGenModel()).FrameLatency(10, 40000, 1)
	v40 := NewSim(VRex8(), llm, ReSVModel()).FrameLatency(10, 40000, 1)
	g1 := NewSim(AGXOrin(), llm, FlexGenModel()).FrameLatency(10, 1000, 1)
	v1 := NewSim(VRex8(), llm, ReSVModel()).FrameLatency(10, 1000, 1)
	if v40.GOPSPerWatt()/g40.GOPSPerWatt() <= v1.GOPSPerWatt()/g1.GOPSPerWatt() {
		t.Fatal("efficiency gain should grow with KV length")
	}
}

func TestHCUCycles(t *testing.T) {
	if HCUCycles(0, 100, 32, 8) != 0 {
		t.Fatal("no tokens -> no cycles")
	}
	c1 := HCUCycles(10, 100, 32, 1)
	c8 := HCUCycles(10, 100, 32, 8)
	if c8 >= c1 {
		t.Fatal("more cores must reduce cycles")
	}
	// 10x100 comparisons x ceil(32/16)=2 cycles = 2000 + 10 update.
	if c1 != 2010 {
		t.Fatalf("HCU cycles = %v, want 2010", c1)
	}
}

func TestWTUCycles(t *testing.T) {
	if WTUCycles(0, 10, 8, 0.16) != 0 || WTUCycles(10, 0, 8, 0.16) != 0 {
		t.Fatal("degenerate inputs -> 0")
	}
	full := WTUCycles(100, 1000, 1, 1.0)
	early := WTUCycles(100, 1000, 1, 0.16)
	if early >= full {
		t.Fatal("early exit must reduce cycles")
	}
	if WTUCycles(100, 1000, 8, 0.16) >= early {
		t.Fatal("more cores must reduce cycles")
	}
}

func TestDRETimeTiny(t *testing.T) {
	// The whole point: DRE per-layer work is microseconds at 800 MHz.
	cyc := DRECycles{
		HCU:  HCUCycles(10, 1250, 32, 8),
		WTU:  WTUCycles(320, 1250, 8, 0.16),
		KVMU: KVMUCycles(10, 400),
	}
	tm := DRETime(cyc, 800e6)
	if tm > 100e-6 {
		t.Fatalf("DRE per-layer time %v, want < 100us", tm)
	}
	if DRETime(cyc, 0) != 0 {
		t.Fatal("zero frequency should yield zero time")
	}
}

func TestTable3Budget(t *testing.T) {
	area, power := CoreTotals()
	if math.Abs(area-1.89) > 0.01 {
		t.Fatalf("core area %v, want 1.89 mm^2", area)
	}
	if math.Abs(power-2609.43) > 0.5 {
		t.Fatalf("core power %v, want ~2609 mW", power)
	}
	af, pf := DREShare()
	if af < 0.015 || af > 0.025 {
		t.Fatalf("DRE area share %v, want ~2%%", af)
	}
	if pf < 0.015 || pf > 0.03 {
		t.Fatalf("DRE power share %v, want ~2.2%%", pf)
	}
	if math.Abs(ChipArea(8)-15.12) > 0.1 {
		t.Fatalf("V-Rex8 area %v, want 15.12 mm^2", ChipArea(8))
	}
	if math.Abs(ChipArea(48)-90.57) > 0.5 {
		t.Fatalf("V-Rex48 area %v, want 90.57 mm^2", ChipArea(48))
	}
	lxe, dre := OnChipMemoryBytes()
	if lxe != 384*1024 {
		t.Fatal("LXE SRAM wrong")
	}
	if math.Abs(float64(dre)-20.125*1024) > 1 {
		t.Fatalf("DRE SRAM %v, want 20.125 KB", dre)
	}
}

func TestRooflineFig18(t *testing.T) {
	llm := Llama3_8B()
	fg := Roofline(AGXOrin(), llm, FlexGenModel(), 10, 40000, 4)
	rekv := Roofline(AGXOrin(), llm, ReKVModel(), 10, 40000, 4)
	vrex := Roofline(VRex8(), llm, ReSVModel(), 10, 40000, 4)
	// Paper: FlexGen ~6.6%, ReKV ~15%, V-Rex ~71.5% of theoretical max.
	if fg.PeakFraction > 0.15 {
		t.Fatalf("FlexGen at %.1f%% of peak, want < 15%%", 100*fg.PeakFraction)
	}
	if rekv.PeakFraction <= fg.PeakFraction {
		t.Fatal("ReKV should beat FlexGen utilisation")
	}
	if vrex.PeakFraction <= rekv.PeakFraction {
		t.Fatal("V-Rex should beat ReKV utilisation")
	}
	if vrex.PeakFraction < 0.3 || vrex.PeakFraction > 1 {
		t.Fatalf("V-Rex at %.1f%% of peak, want paper-like high fraction", 100*vrex.PeakFraction)
	}
	for _, p := range []RooflinePoint{fg, rekv, vrex} {
		if p.OpIntensity <= 0 || p.AchievedFLOPS <= 0 || p.CeilingFLOPS <= 0 {
			t.Fatalf("degenerate roofline point %+v", p)
		}
		if p.AchievedFLOPS > p.CeilingFLOPS*1.001 {
			t.Fatalf("%s exceeds its ceiling", p.System)
		}
	}
}

func TestBandwidthTraceFig17(t *testing.T) {
	tr := BandwidthTrace(VRex48(), Llama3_8B(), ReSVModel(), 10, 40000, 1, 2, 8)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	var sawPredSpike, sawRetrieval bool
	maxLLM := 0.0
	for i, p := range tr {
		if i > 0 && p.TimeUS < tr[i-1].TimeUS {
			t.Fatal("trace time not monotone")
		}
		if p.PredBW > 0 {
			sawPredSpike = true
			if p.Phase != "Attention" {
				t.Fatal("prediction must overlap attention")
			}
		}
		if p.RetrievalBW > 0 {
			sawRetrieval = true
		}
		if p.LLMBW > maxLLM {
			maxLLM = p.LLMBW
		}
	}
	if !sawPredSpike || !sawRetrieval {
		t.Fatal("trace missing prediction spike or retrieval flow")
	}
	// Retrieval consumes ~PCIe bandwidth, ~1-2% of HBM2e.
	frac := tr[0].RetrievalBW / VRex48().Mem.Bandwidth
	if frac > 0.05 {
		t.Fatalf("retrieval bandwidth fraction %v, want ~0.01-0.02", frac)
	}
	if maxLLM <= 0 {
		t.Fatal("LLM bandwidth missing")
	}
}

func TestChunkDegenerateInputs(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	if b := sim.Chunk(0, 1000, 1, StageFramePhase); b.Total != 0 {
		t.Fatal("zero tokens should cost nothing")
	}
	if b := sim.Chunk(10, 1000, 0, StageFramePhase); b.Total != 0 {
		t.Fatal("zero batch should cost nothing")
	}
}

func TestQuantFactor(t *testing.T) {
	if (PolicyModel{KVQuantBits: 16}).quantFactor() != 1 {
		t.Fatal("16-bit factor should be 1")
	}
	if (PolicyModel{KVQuantBits: 4}).quantFactor() != 0.25 {
		t.Fatal("4-bit factor should be 0.25")
	}
	if (PolicyModel{}).quantFactor() != 1 {
		t.Fatal("unset bits should default to 1")
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{LinearTime: 1, AttnTime: 2, PredExposed: 0.5, FetchExposed: 0.25, Total: 4, EnergyJ: 2, UsefulFLOPs: 8e9}
	if b.LLMTime() != 3 {
		t.Fatal("LLMTime wrong")
	}
	if b.RetrievalExposed() != 0.75 {
		t.Fatal("RetrievalExposed wrong")
	}
	if b.GOPSPerWatt() != 4 {
		t.Fatal("GOPSPerWatt wrong")
	}
	if b.FPS() != 0.25 {
		t.Fatal("FPS wrong")
	}
	var zero Breakdown
	if zero.GOPSPerWatt() != 0 || zero.FPS() != 0 {
		t.Fatal("zero breakdown helpers wrong")
	}
}

func TestSRAMCapacities(t *testing.T) {
	// 32-bit signatures -> 4 bytes each -> 1024 clusters in 4 KB.
	if got := HCUClusterCapacity(32); got != 1024 {
		t.Fatalf("HCU capacity = %d, want 1024", got)
	}
	if got := HCUClusterCapacity(0); got != 1024 {
		t.Fatal("default NHp capacity wrong")
	}
	// 8 KB / bf16 -> 4096 score entries.
	if got := WTUClusterCapacity(); got != 4096 {
		t.Fatalf("WTU capacity = %d, want 4096", got)
	}
}

func TestTiledCyclesMatchUntiledWithinCapacity(t *testing.T) {
	if HCUCyclesTiled(10, 500, 32, 8) != HCUCycles(10, 500, 32, 8) {
		t.Fatal("within-capacity HCU tiling should be free")
	}
	if WTUCyclesTiled(100, 1000, 8, 0.16) != WTUCycles(100, 1000, 8, 0.16) {
		t.Fatal("within-capacity WTU tiling should be free")
	}
}

func TestTiledCyclesPenaltyBeyondCapacity(t *testing.T) {
	// 5000 clusters > 1024 capacity: tiling must add cycles, but only a
	// small fraction (the DRE stays effective at 160K-token caches).
	base := HCUCycles(10, 5000, 32, 8)
	tiled := HCUCyclesTiled(10, 5000, 32, 8)
	if tiled <= base {
		t.Fatal("beyond-capacity tiling must cost extra cycles")
	}
	if tiled > base*1.2 {
		t.Fatalf("tiling overhead too large: %v vs %v", tiled, base)
	}
	wbase := WTUCycles(320, 8000, 8, 0.16)
	wtiled := WTUCyclesTiled(320, 8000, 8, 0.16)
	if wtiled <= wbase || wtiled > wbase*1.5 {
		t.Fatalf("WTU tiling overhead out of band: %v vs %v", wtiled, wbase)
	}
}

func TestKVBudgetBytes(t *testing.T) {
	llm := Llama3_8B()
	for _, dev := range []DeviceSpec{AGXOrin(), A100(), VRex8(), VRex48()} {
		b := dev.KVBudgetBytes(llm)
		if b <= 0 || b >= dev.MemCapacity {
			t.Fatalf("%s: KV budget %v out of (0, capacity %v)", dev.Name, b, dev.MemCapacity)
		}
		// Budget + weights + workspace must reconstruct device memory.
		if got := b + llm.WeightBytes() + kvWorkspaceBytes; math.Abs(got-dev.MemCapacity) > 1 {
			t.Fatalf("%s: budget accounting off: %v vs %v", dev.Name, got, dev.MemCapacity)
		}
	}
	// A device smaller than the model has no KV budget.
	tiny := VRex8()
	tiny.MemCapacity = 8e9
	if tiny.KVBudgetBytes(llm) != 0 {
		t.Fatal("undersized device must report zero budget")
	}
}

func TestPolicyKVBytesPerToken(t *testing.T) {
	llm := Llama3_8B()
	if got := ReSVModel().KVBytesPerToken(llm); got != llm.KVBytesPerToken() {
		t.Fatalf("16-bit policy must match raw footprint: %v", got)
	}
	// Oaken quantises KV to 4 bits: a quarter of the BF16 footprint.
	if got := OakenModel().KVBytesPerToken(llm); got != llm.KVBytesPerToken()/4 {
		t.Fatalf("4-bit policy footprint %v, want quarter of %v", got, llm.KVBytesPerToken())
	}
}
