package hwsim

import "sort"

// Resource identifies an execution engine in the pipeline simulation.
type Resource int

const (
	// ResCompute is the main compute engine (GPU SMs / LXE).
	ResCompute Resource = iota
	// ResLink is the PCIe/SSD fetch path.
	ResLink
	// ResDRE is the dynamic retrieval engine (V-Rex only).
	ResDRE
)

func (r Resource) String() string {
	switch r {
	case ResCompute:
		return "compute"
	case ResLink:
		return "link"
	case ResDRE:
		return "dre"
	default:
		return "?"
	}
}

// PipelineEvent is one scheduled task in the per-layer timeline.
type PipelineEvent struct {
	Layer int
	Kind  string // "pred", "fetch", "attn+ffn"
	Res   Resource
	Start float64
	End   float64
}

// PipelineResult is the outcome of the event-driven layer pipeline.
type PipelineResult struct {
	Events []PipelineEvent
	// Total is the end-to-end makespan.
	Total float64
	// Busy is per-resource busy time.
	Busy map[Resource]float64
}

// Utilization returns busy/total for a resource.
func (p PipelineResult) Utilization(r Resource) float64 {
	if p.Total <= 0 {
		return 0
	}
	return p.Busy[r] / p.Total
}

// SimulatePipeline runs the Fig. 5 decoder-layer pipeline as a discrete-event
// schedule instead of the closed-form overlap formula of Sim.Chunk: per
// layer, KV prediction must finish before that layer's fetch is issued, the
// fetch must land before the layer's attention runs, and each resource
// serves one task at a time. Prediction for layer l+1 is issued during layer
// l (prefetching), on the GPU (serialising with compute) or on the DRE
// (concurrent). It returns the schedule for inspection (the Fig. 5 diagrams)
// and cross-validates the analytic model (TestPipelineMatchesClosedForm).
func (s *Sim) SimulatePipeline(n, kvLen, batch int) PipelineResult {
	layers := s.LLM.Layers
	b := s.Chunk(n, kvLen, batch, StageFramePhase)
	res := PipelineResult{Busy: map[Resource]float64{}}
	if b.OOM || layers == 0 {
		return res
	}
	// Per-layer task durations from the aggregate breakdown.
	perCompute := (b.LinearTime + b.AttnTime) / float64(layers)
	perFetch := b.FetchRaw / float64(layers)
	perPred := b.PredRaw / float64(layers)

	var computeFree, linkFree, dreFree float64
	fetchDone := make([]float64, layers)
	predDone := make([]float64, layers)

	add := func(layer int, kind string, r Resource, start, dur float64) float64 {
		end := start + dur
		res.Events = append(res.Events, PipelineEvent{Layer: layer, Kind: kind, Res: r, Start: start, End: end})
		res.Busy[r] += dur
		return end
	}

	// schedPred schedules layer l's prediction (GPU: serialises on the
	// compute engine; V-Rex: runs on the DRE) and returns its end time.
	schedPred := func(l int) {
		if perPred <= 0 {
			return
		}
		if s.Pol.PredOnDevice {
			predDone[l] = add(l, "pred", ResCompute, computeFree, perPred)
			computeFree = predDone[l]
		} else {
			predDone[l] = add(l, "pred", ResDRE, dreFree, perPred)
			dreFree = predDone[l]
		}
	}
	// schedFetch schedules layer l's fetch after its prediction.
	schedFetch := func(l int) {
		if perFetch <= 0 {
			return
		}
		start := linkFree
		if predDone[l] > start {
			start = predDone[l]
		}
		fetchDone[l] = add(l, "fetch", ResLink, start, perFetch)
		linkFree = fetchDone[l]
	}

	// Prologue: layer 0 has no earlier compute to hide behind.
	schedPred(0)
	schedFetch(0)
	for l := 0; l < layers; l++ {
		if s.Pol.PrefetchOverlap && l+1 < layers {
			// Prefetching (Fig. 5 ii/iii): issue the next layer's
			// prediction, then let its fetch ride the link while this
			// layer computes.
			schedPred(l + 1)
			schedFetch(l + 1)
		}
		start := computeFree
		if fetchDone[l] > start {
			start = fetchDone[l]
		}
		computeFree = add(l, "attn+ffn", ResCompute, start, perCompute)
		if !s.Pol.PrefetchOverlap && l+1 < layers {
			// Vanilla (Fig. 5 i): next layer's fetch only starts after this
			// layer's compute finished.
			if computeFree > linkFree {
				linkFree = computeFree
			}
			schedPred(l + 1)
			schedFetch(l + 1)
		}
	}
	res.Total = computeFree
	for _, e := range res.Events {
		if e.End > res.Total {
			res.Total = e.End
		}
	}
	sort.Slice(res.Events, func(i, j int) bool { return res.Events[i].Start < res.Events[j].Start })
	return res
}
