package hwsim

// UnitBudget is one row of the Table III area/power breakdown for a single
// V-Rex core synthesised at 14 nm, 0.8 V, 800 MHz.
type UnitBudget struct {
	Engine  string // LXE or DRE
	Unit    string
	AreaMM2 float64
	PowerMW float64
}

// CoreBudget returns the per-core breakdown of Table III.
func CoreBudget() []UnitBudget {
	return []UnitBudget{
		{Engine: "LXE", Unit: "DPE", AreaMM2: 1.37, PowerMW: 2311.39},
		{Engine: "LXE", Unit: "VPE", AreaMM2: 0.14, PowerMW: 122.06},
		{Engine: "LXE", Unit: "On-chip Memory", AreaMM2: 0.34, PowerMW: 118.94},
		{Engine: "DRE", Unit: "KVPU - HCU", AreaMM2: 0.01, PowerMW: 2.99},
		{Engine: "DRE", Unit: "KVPU - WTU", AreaMM2: 0.02, PowerMW: 39.04},
		{Engine: "DRE", Unit: "KVMU", AreaMM2: 0.01, PowerMW: 15.01},
	}
}

// CoreTotals sums the breakdown: ~1.89 mm^2 and ~2.61 W per core.
func CoreTotals() (areaMM2, powerMW float64) {
	for _, u := range CoreBudget() {
		areaMM2 += u.AreaMM2
		powerMW += u.PowerMW
	}
	return areaMM2, powerMW
}

// DREShare returns the DRE's fraction of core area and power (the paper
// reports ~2.0% area and ~2.2-2.4% power).
func DREShare() (areaFrac, powerFrac float64) {
	var dreA, dreP, totA, totP float64
	for _, u := range CoreBudget() {
		totA += u.AreaMM2
		totP += u.PowerMW
		if u.Engine == "DRE" {
			dreA += u.AreaMM2
			dreP += u.PowerMW
		}
	}
	return dreA / totA, dreP / totP
}

// ChipArea returns the total silicon area of an n-core V-Rex (V-Rex8:
// 15.12 mm^2, V-Rex48: 90.57 mm^2, vs 200 mm^2 AGX Orin / 826 mm^2 A100).
func ChipArea(cores int) float64 {
	area, _ := CoreTotals()
	return area * float64(cores)
}

// OnChipMemoryBytes returns per-core SRAM: 384 KB for the LXE plus
// 20.125 KB for the DRE (hash-bit 4 KB + current hash-bit 128 B + 2x8 KB
// WTU score/count memories).
func OnChipMemoryBytes() (lxe, dre int) {
	return 384 * 1024, 4*1024 + 128 + 2*8*1024
}
