// Package hwsim is the performance plane: an analytic, phase-level hardware
// simulator for streaming video LLM inference on edge/server GPUs and the
// V-Rex accelerator. It models compute with a roofline per kernel class
// (dense vs irregular), KV movement through the memsim PCIe/SSD/DRAM models,
// the DRE's cycle-level unit models (HCU, WTU, KVMU), and the Fig. 5 overlap
// pipeline. All Fig. 13-18 experiments run on top of it.
package hwsim

import (
	"strings"

	"vrex/internal/memsim"
)

// DeviceSpec describes one execution platform (Table I).
type DeviceSpec struct {
	Name string
	// PeakFLOPS is the peak dense throughput (FP16/BF16), FLOP/s.
	PeakFLOPS float64
	// Mem is device-attached memory.
	Mem memsim.DRAM
	// MemCapacity is device memory size in bytes.
	MemCapacity float64
	// Link is the PCIe connection to host/storage.
	Link memsim.PCIeLink
	// OffloadSSD, when non-nil, is the NVMe target for KV offload (edge);
	// nil means offload goes to host DRAM over PCIe (server).
	OffloadSSD *memsim.SSD
	// HostMem is the CPU memory on the far side of the link (server offload
	// target); used for host-side read bandwidth when fetching.
	HostMem memsim.DRAM
	// Power is the system power envelope in watts (device + DRAM + PCIe +
	// storage, per Table I).
	Power float64
	// IdlePower is the floor draw in watts.
	IdlePower float64
	// DenseEff is the achievable fraction of PeakFLOPS on dense GEMM.
	DenseEff float64
	// AttnEff is the achievable fraction of PeakFLOPS on attention kernels
	// (lower: memory-bound, small tiles).
	AttnEff float64
	// IrregularEff is the achievable fraction of PeakFLOPS on conditional /
	// data-dependent kernels (clustering, sorting, thresholding) — the GPU
	// inefficiency that motivates the DRE (Sec. V).
	IrregularEff float64
	// HasDRE marks V-Rex devices: KV prediction runs on the DRE concurrently
	// with LLM compute, and the KVMU's cluster mapping is available.
	HasDRE bool
	// Freq is the accelerator clock for DRE cycle models (Hz).
	Freq float64
	// Cores is the V-Rex core count (0 for GPUs).
	Cores int
	// FrameOverhead is the fixed host-side cost per video frame (decode,
	// resize, tokenize, launch) in seconds.
	FrameOverhead float64
}

// kvWorkspaceBytes is the activation/workspace floor reserved out of device
// memory before KV, matching Sim.residentBytes' estimate at batch 1.
const kvWorkspaceBytes = 2e9

// KVBudgetBytes returns the device memory left for resident session KV after
// model weights and activation workspace — the budget the serving plane's KV
// pool derives per-device capacity from (serve.AutoCapacity).
func (d DeviceSpec) KVBudgetBytes(llm LLMSpec) float64 {
	b := d.MemCapacity - llm.WeightBytes() - kvWorkspaceBytes
	if b < 0 {
		return 0
	}
	return b
}

// AGXOrin returns the edge GPU of Table I: 54 TFLOPS FP16, LPDDR5
// 204.8 GB/s, 32 GB, PCIe 3.0 x4 to an NVMe SSD, ~40 W.
func AGXOrin() DeviceSpec {
	ssd := memsim.KioxiaBG6()
	return DeviceSpec{
		Name:          "AGX Orin",
		PeakFLOPS:     54e12,
		Mem:           memsim.LPDDR5_256(),
		MemCapacity:   32e9,
		Link:          memsim.PCIe3x4(),
		OffloadSSD:    &ssd,
		HostMem:       memsim.DDR4Host(),
		Power:         40,
		IdlePower:     12,
		DenseEff:      0.4,
		AttnEff:       0.25,
		IrregularEff:  0.03,
		FrameOverhead: 0.08,
	}
}

// A100 returns the server GPU of Table I: 312 TFLOPS BF16, HBM2e 1935 GB/s,
// 80 GB, PCIe 4.0 x16 to DDR4 CPU memory, ~300 W.
func A100() DeviceSpec {
	return DeviceSpec{
		Name:          "A100",
		PeakFLOPS:     312e12,
		Mem:           memsim.HBM2e5120(),
		MemCapacity:   80e9,
		Link:          memsim.PCIe4x16(),
		HostMem:       memsim.DDR4Host(),
		Power:         300,
		IdlePower:     60,
		DenseEff:      0.6,
		AttnEff:       0.4,
		IrregularEff:  0.05,
		FrameOverhead: 0.012,
	}
}

// VRexCoreFLOPS is one core's dense throughput: an N_DPE-h=64 x N_DPE-w=64
// MAC tree at 800 MHz -> 64*64*2*0.8e9 ≈ 6.55 TFLOPS; 8 cores give the
// paper's 53.3 TFLOPS, 48 give 319.5.
const VRexCoreFLOPS = 64 * 64 * 2 * 800e6

// VRex8 returns the edge V-Rex instantiation of Table I: 8 cores
// (53.3 TFLOPS), LPDDR5, PCIe 3.0 x4 + M.2 NVMe for KV offload, 35 W.
func VRex8() DeviceSpec {
	ssd := memsim.KioxiaBG6()
	return DeviceSpec{
		Name:          "V-Rex8",
		PeakFLOPS:     8 * VRexCoreFLOPS,
		Mem:           memsim.LPDDR5_256(),
		MemCapacity:   32e9,
		Link:          memsim.PCIe3x4(),
		OffloadSSD:    &ssd,
		HostMem:       memsim.DDR4Host(),
		Power:         35,
		IdlePower:     8,
		DenseEff:      0.85, // systolic MAC trees sustain near-peak on GEMM
		AttnEff:       0.7,
		IrregularEff:  0.05, // only relevant if ReSV ran on the LXE
		HasDRE:        true,
		Freq:          800e6,
		Cores:         8,
		FrameOverhead: 0.08,
	}
}

// VRex48 returns the server V-Rex instantiation: 48 cores (319.5 TFLOPS),
// HBM2e, PCIe 4.0 x16 to DDR4 CPU memory, 203.68 W.
func VRex48() DeviceSpec {
	return DeviceSpec{
		Name:          "V-Rex48",
		PeakFLOPS:     48 * VRexCoreFLOPS,
		Mem:           memsim.HBM2e5120(),
		MemCapacity:   80e9,
		Link:          memsim.PCIe4x16(),
		HostMem:       memsim.DDR4Host(),
		Power:         203.68,
		IdlePower:     40,
		DenseEff:      0.85,
		AttnEff:       0.7,
		IrregularEff:  0.05,
		HasDRE:        true,
		Freq:          800e6,
		Cores:         48,
		FrameOverhead: 0.012,
	}
}

// DeviceByName resolves a CLI/scenario device name to its spec. Accepted
// names (case-insensitive): agx | agxorin | orin, a100, vrex8 | v-rex8,
// vrex48 | v-rex48.
func DeviceByName(name string) (DeviceSpec, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "agx", "agxorin", "orin":
		return AGXOrin(), true
	case "a100":
		return A100(), true
	case "vrex8", "v-rex8":
		return VRex8(), true
	case "vrex48", "v-rex48":
		return VRex48(), true
	}
	return DeviceSpec{}, false
}

// DeviceNames returns the canonical device names DeviceByName accepts.
func DeviceNames() []string { return []string{"agx", "a100", "vrex8", "vrex48"} }
