package hwsim

import "math"

// DRE on-chip memory capacities (Fig. 10): the hash-bit memory holds the
// cluster-representative signatures the HCU compares against; the WTU score
// and token-count memories hold one row's working set. When the working set
// exceeds SRAM, the units stream from DRAM in tiles, which costs extra
// cycles — these helpers expose the capacities and the tiling penalty so the
// cycle models stay honest at large cluster counts.
const (
	// HashBitMemBytes is the HCU's key-cache hash-bit memory (4 KB).
	HashBitMemBytes = 4 * 1024
	// CurrentHashBitMemBytes holds the arriving frame's signatures (128 B).
	CurrentHashBitMemBytes = 128
	// WTUScoreMemBytes / WTUCountMemBytes are per-core row buffers (8 KB each).
	WTUScoreMemBytes = 8 * 1024
	WTUCountMemBytes = 8 * 1024
)

// HCUClusterCapacity returns how many cluster signatures fit in the
// hash-bit memory for a given signature width.
func HCUClusterCapacity(nhp int) int {
	if nhp <= 0 {
		nhp = defaultNHp
	}
	bytesPerSig := (nhp + 7) / 8
	return HashBitMemBytes / bytesPerSig
}

// WTUClusterCapacity returns how many score entries (bf16) fit in one WTU
// core's score memory.
func WTUClusterCapacity() int { return WTUScoreMemBytes / 2 }

// HCUCyclesTiled extends HCUCycles with SRAM tiling: when the cluster count
// exceeds the hash-bit memory, the signature set streams through SRAM in
// tiles and each extra tile pays a refill of the current-frame signatures'
// comparisons plus the DRAM burst setup (a handful of cycles per tile,
// amortised — the dominant term is simply that every comparison still
// happens, so the overhead is a small multiplicative refill factor).
func HCUCyclesTiled(newTokens, clusters, nhp, cores int) float64 {
	base := HCUCycles(newTokens, clusters, nhp, cores)
	cap := HCUClusterCapacity(nhp)
	if clusters <= cap || cap <= 0 {
		return base
	}
	tiles := math.Ceil(float64(clusters) / float64(cap))
	// Per-tile: re-load the tile's signatures (cap * sigBytes / 16B-per-cycle
	// DRAM port) — hidden behind compute except for the setup cycles.
	const tileSetup = 32
	return base + tiles*tileSetup
}

// WTUCyclesTiled extends WTUCycles with score-memory tiling.
func WTUCyclesTiled(rows, clusters, cores int, examineFr float64) float64 {
	base := WTUCycles(rows, clusters, cores, examineFr)
	cap := WTUClusterCapacity()
	if clusters <= cap || cap <= 0 {
		return base
	}
	tiles := math.Ceil(float64(clusters) / float64(cap))
	const tileSetup = 32
	return base + float64(rows)*tiles*tileSetup/float64(nWTUh*cores)
}
