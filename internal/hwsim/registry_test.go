package hwsim

import (
	"strings"
	"testing"
)

func TestParsePolicyDefaultsMatchConstructors(t *testing.T) {
	cases := map[string]PolicyModel{
		"flexgen":    FlexGenModel(),
		"infinigen":  InfiniGenModel(),
		"infinigenp": InfiniGenPModel(),
		"rekv":       ReKVModel(),
		"resv":       ReSVModel(),
		"resv-gpu":   ReSVOnGPUModel(),
		"dense":      DenseModel(),
		"oaken":      OakenModel(),
	}
	for spec, want := range cases {
		got, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got != want {
			t.Fatalf("%s: %+v != constructor %+v", spec, got, want)
		}
	}
}

func TestParsePolicyOverrides(t *testing.T) {
	m, err := ParsePolicy("rekv(frame=0.58,text=0.31)")
	if err != nil {
		t.Fatal(err)
	}
	if m.FrameRatio != 0.58 || m.TextRatio != 0.31 {
		t.Fatalf("overrides not applied: %+v", m)
	}
	// Untouched fields keep the constructor defaults.
	want := ReKVModel()
	if m.SegmentTokens != want.SegmentTokens || m.Pred != want.Pred {
		t.Fatalf("defaults clobbered: %+v", m)
	}
}

func TestParsePolicyAliases(t *testing.T) {
	a, err := ParsePolicy("resvongpu")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParsePolicy("resv-gpu")
	if a != b {
		t.Fatal("alias diverged from canonical name")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"nosuch", "unknown policy"},
		{"rekv(typo=1)", "does not accept"},
		{"rekv(frame=1.5)", "out of [0,1]"},
		{"rekv(segment=0)", ">= 1"},
		{"rekv(quantbits=0)", "out of [1,16]"},
		{"rekv(frame=", "parenthesis"},
	}
	for _, c := range cases {
		_, err := ParsePolicy(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePolicy(%q) err = %v, want containing %q", c.spec, err, c.wantSub)
		}
	}
}

func TestPolicyModelNamesSorted(t *testing.T) {
	names := PolicyModelNames()
	if len(names) < 8 {
		t.Fatalf("missing registrations: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
}
