package hwsim

// StepReq is one stream's contribution to a coalesced hardware step: n new
// tokens attending to that stream's own cached KV, at the given stage. The
// serving plane's continuous-batching scheduler builds one StepReq per
// co-scheduled frame.
type StepReq struct {
	// NewTokens is the stream's new tokens this step (tokens-per-frame for a
	// video frame, prompt length for a query prefill, 1 for a decode token).
	NewTokens int
	// KVLen is the stream's cached context length at step start.
	KVLen int
	// Stage selects the policy's fetch ratio and, for StageFramePhase, the
	// vision tower cost.
	Stage StageKind
	// RatioScale multiplies the policy's fetch ratio for this stream — the
	// degradation plane's per-session budget scale (Sim.Scaled for the
	// single-stream path). 0 means unscaled (1), so the zero value prices
	// identically to a request without the field.
	RatioScale float64
}

// scale resolves RatioScale's zero-means-unscaled convention.
func (r StepReq) scale() float64 {
	if r.RatioScale == 0 {
		return 1
	}
	return r.RatioScale
}

// Step simulates one continuous-batching hardware step over a heterogeneous
// batch of streams. Unlike Chunk's homogeneous batch parameter (every stream
// at the same KV length), each request carries its own cache length and
// stage, which is what a real multi-stream scheduler produces.
//
// Cost structure — the per-step vs per-token split that makes batching pay:
//
//   - Per step (charged once, amortised across the batch): the weight read
//     of every linear layer, the vision tower's weight traffic, and the
//     fixed host-side frame overhead (decode/resize for co-batched frames
//     pipeline on host cores while the accelerator runs).
//   - Per token / per stream (summed over requests): linear FLOPs,
//     attention FLOPs and KV bytes against each stream's own cache, KV
//     prediction, and KV fetch traffic.
//
// A single-request step delegates to Chunk at batch 1, so a batch-1
// scheduler reproduces the serial per-frame timeline bit for bit; the
// multi-request path below mirrors Chunk's per-stream formulas (frame.go) —
// keep the two in sync. Requests with no new tokens are ignored. The caller
// is responsible for per-stream OOM admission (see Sim.OOM); a step whose
// combined resident footprint exceeds device memory reports OOM with no
// cost, like Chunk.
func (s *Sim) Step(reqs []StepReq) Breakdown {
	live := 0
	for _, r := range reqs {
		if r.NewTokens > 0 {
			live++
		}
	}
	var b Breakdown
	if live == 0 {
		return b
	}
	if live == 1 && len(reqs) == 1 {
		r := reqs[0]
		return s.Scaled(r.scale()).Chunk(r.NewTokens, r.KVLen, 1, r.Stage)
	}

	// Combined resident footprint: weights once, each stream's working set,
	// workspace growing mildly with batch (mirrors residentBytes at batch 1
	// per stream).
	resident := s.LLM.WeightBytes()
	for _, r := range reqs {
		if r.NewTokens <= 0 {
			continue
		}
		kvBytes := s.LLM.KVBytesPerToken() * float64(r.KVLen) * s.Pol.quantFactor()
		if s.Pol.Offloads {
			resident += kvBytes * s.Pol.FrameRatio * r.scale() * 2 / float64(s.LLM.Layers)
		} else {
			resident += kvBytes
		}
	}
	resident += 2e9 + 0.1e9*float64(live)
	if resident > s.Dev.MemCapacity {
		b.OOM = true
		return b
	}

	layers := float64(s.LLM.Layers)
	rows := 0
	nFrames := 0
	var attnFLOPs, attnBytes float64
	var predDense, predIrregularOps, topkLaunch, dre float64
	var fetchBytes float64
	fetchSegs := 0
	for _, r := range reqs {
		if r.NewTokens <= 0 {
			continue
		}
		n := r.NewTokens
		rows += n
		if r.Stage == StageFramePhase {
			nFrames++
		}
		ratio := s.Pol.ratio(r.Stage) * r.scale()
		attended := int(ratio*float64(r.KVLen)+0.5) + n

		// Attention stays per stream: each request reads its own cache.
		attnFLOPs += s.LLM.LayerAttnFLOPs(n, attended) * layers
		attnBytes += s.LLM.LayerKVBytes(attended) * layers * s.Pol.quantFactor()

		// KV prediction per stream, mirroring Chunk at batch 1.
		cand := float64(r.KVLen)
		if s.Pol.ClusterCompression > 1 {
			cand /= s.Pol.ClusterCompression
		}
		nCand := int(cand + 0.5)
		predDense += s.LLM.PredFLOPs(n, nCand) * layers
		switch s.Pol.Pred {
		case PredTopK:
			predIrregularOps += 8 * float64(n) * cand * layers
			topkLaunch += float64(n) * (60e-6 + cand*0.5e-9) * layers
		case PredReSV:
			hamOps := float64(n) * cand * defaultNHp / 8
			wicOps := 6 * float64(n*s.LLM.Heads) * cand * wtuExamineFraction(s.ExamineFraction)
			predIrregularOps += (hamOps + wicOps) * layers
		case PredNone:
			// no prediction pass: nothing irregular to charge
		}
		if s.Pol.Pred != PredNone && !s.Pol.PredOnDevice {
			cyc := DRECycles{
				HCU: HCUCycles(n, nCand, defaultNHp, s.Dev.Cores),
				WTU: WTUCycles(n*s.LLM.Heads, nCand, s.Dev.Cores,
					wtuExamineFraction(s.ExamineFraction)),
				KVMU: KVMUCycles(n, s.fetchSegments(r.KVLen, 1, ratio)),
			}
			dre += DRETime(cyc, s.Dev.Freq) * layers
		}

		// KV fetch per stream: selected tokens cross the link for each cache.
		if s.Pol.Offloads && r.KVLen > 0 {
			reuse := s.Pol.ResidentReuse
			if reuse < 0 {
				reuse = 0
			}
			if reuse > 1 {
				reuse = 1
			}
			fetchTokens := ratio * (1 - reuse) * float64(r.KVLen) * layers
			fetchBytes += fetchTokens * 2 * float64(s.LLM.KVDim()) * s.LLM.BytesPerElem * s.Pol.quantFactor()
			fetchSegs += int(float64(s.fetchSegments(r.KVLen, 1, ratio)) * (1 - reuse) * layers)
		}
	}

	// Linear layers: FLOPs scale with the batch's total new tokens, but the
	// weights are read once for everyone — the step's amortised cost.
	linFLOPs := s.LLM.LayerLinearFLOPs(rows) * layers
	linBytes := s.LLM.LayerWeightBytes() * layers
	b.LinearTime = s.rooflineTime(linFLOPs, s.Dev.DenseEff, linBytes)
	b.AttnTime = s.rooflineTime(attnFLOPs, s.Dev.AttnEff, attnBytes)
	b.UsefulFLOPs = linFLOPs + attnFLOPs

	if s.Pol.Pred != PredNone {
		if s.Pol.PredOnDevice {
			irr := predIrregularOps / (s.Dev.PeakFLOPS * s.Dev.IrregularEff)
			if s.Pol.Pred == PredTopK {
				irr += topkLaunch
			}
			if s.Pol.Pred == PredReSV {
				irr = predIrregularOps / gpuSerialOpsPerSec
			}
			b.PredRaw = predDense/(s.Dev.PeakFLOPS*s.Dev.DenseEff) + irr
			b.PredExposed = b.PredRaw
		} else {
			lxe := predDense / (s.Dev.PeakFLOPS * s.Dev.DenseEff)
			b.DRETime = dre
			b.PredRaw = lxe + dre
			b.PredExposed = lxe
			if over := dre - (b.LinearTime + b.AttnTime); over > 0 {
				b.PredExposed += over
			}
		}
	}

	if fetchBytes > 0 {
		b.FetchBytes = fetchBytes
		linkTime := s.Dev.Link.TransferTime(fetchBytes, fetchSegs)
		if s.Dev.OffloadSSD != nil {
			if st := s.Dev.OffloadSSD.ReadTime(fetchBytes, fetchSegs); st > linkTime {
				linkTime = st
			}
		}
		b.FetchRaw = linkTime
		if s.Pol.PrefetchOverlap {
			cover := b.LinearTime + b.AttnTime + b.PredExposed
			if b.FetchRaw > cover {
				b.FetchExposed = b.FetchRaw - cover
			}
		} else {
			b.FetchExposed = b.FetchRaw
		}
	}

	if nFrames > 0 && s.VisionCost != nil {
		vf := s.VisionCost.FLOPs * float64(nFrames)
		b.VisionTime = s.rooflineTime(vf, s.Dev.DenseEff, s.VisionCost.WeightBytes)
		b.VisionTime += s.Dev.FrameOverhead
		b.UsefulFLOPs += vf
	}

	b.Total = b.VisionTime + b.LinearTime + b.AttnTime + b.PredExposed + b.FetchExposed
	b.EnergyJ = s.energy(b)
	if s.Phases != nil {
		// The single-request path above accumulates through Chunk; only the
		// multi-request path records here, so nothing is double counted.
		s.Phases.add(&b)
	}
	return b
}

// OOM reports whether a chunk against kvLen cached tokens at the given batch
// would exceed device memory — the same resident-footprint admission check
// Chunk applies before simulating. The serving scheduler uses it to filter
// batch candidates per stream before pricing the step.
func (s *Sim) OOM(kvLen, batch int) bool {
	return s.residentBytes(kvLen, batch) > s.Dev.MemCapacity
}
