package hwsim

import (
	"math"
	"testing"
)

// TestPhaseAccountPartitionsTotal pins the telemetry invariant: the five
// phase buckets partition each priced Breakdown.Total exactly, so the
// account total equals the sum of chunk totals.
func TestPhaseAccountPartitionsTotal(t *testing.T) {
	var acct PhaseAccount
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	sim.Phases = &acct

	var want float64
	for i, kv := range []int{0, 1000, 40000, 120000} {
		b := sim.FrameLatency(10, kv, 1+i%2)
		want += b.Total
		q := sim.TPOT(kv, 1)
		want += q.Total
	}
	if acct.Steps != 8 {
		t.Fatalf("Steps = %d, want 8", acct.Steps)
	}
	if got := acct.Total(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("account total %g != summed chunk totals %g", got, want)
	}
}

// TestPhaseAccountStepPaths checks both Step paths feed the account exactly
// once: the batch-1 path delegates to Chunk (which records), and the
// multi-request path records at its own exit.
func TestPhaseAccountStepPaths(t *testing.T) {
	var acct PhaseAccount
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	sim.Phases = &acct

	one := sim.Step([]StepReq{{NewTokens: 10, KVLen: 5000, Stage: StageFramePhase}})
	if acct.Steps != 1 {
		t.Fatalf("after batch-1 step: Steps = %d, want 1 (no double count)", acct.Steps)
	}
	many := sim.Step([]StepReq{
		{NewTokens: 10, KVLen: 5000, Stage: StageFramePhase},
		{NewTokens: 1, KVLen: 12000, Stage: StageTextPhase},
	})
	if acct.Steps != 2 {
		t.Fatalf("after multi step: Steps = %d, want 2", acct.Steps)
	}
	want := one.Total + many.Total
	if got := acct.Total(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("account total %g != %g", got, want)
	}

	// OOM and empty steps price nothing and must not count.
	small := *sim
	small.Dev.MemCapacity = 1
	small.Phases = &acct
	if b := small.Step([]StepReq{{NewTokens: 10, KVLen: 40000}, {NewTokens: 10, KVLen: 40000}}); !b.OOM {
		t.Fatal("expected OOM")
	}
	sim.Step(nil)
	if acct.Steps != 2 {
		t.Fatalf("OOM/empty steps leaked into account: Steps = %d, want 2", acct.Steps)
	}
}

// TestPhaseAccountSharedByScaled pins that Scaled's shallow copy carries the
// Phases pointer, so degraded-budget pricing folds into the same account.
func TestPhaseAccountSharedByScaled(t *testing.T) {
	var acct PhaseAccount
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	sim.Phases = &acct
	sim.Scaled(0.5).FrameLatency(10, 40000, 1)
	if acct.Steps != 1 {
		t.Fatalf("scaled sim did not share the account: Steps = %d, want 1", acct.Steps)
	}
}

// TestPhaseAccountZeroAlloc guards the hot path: pricing allocates nothing
// whether the account is nil or attached.
func TestPhaseAccountZeroAlloc(t *testing.T) {
	sim := NewSim(VRex8(), Llama3_8B(), ReSVModel())
	reqs := []StepReq{
		{NewTokens: 10, KVLen: 40000, Stage: StageFramePhase},
		{NewTokens: 1, KVLen: 20000, Stage: StageTextPhase},
	}
	if n := testing.AllocsPerRun(100, func() { sim.Step(reqs) }); n != 0 {
		t.Fatalf("nil Phases: %v allocs/step, want 0", n)
	}
	sim.Phases = &PhaseAccount{}
	if n := testing.AllocsPerRun(100, func() { sim.Step(reqs) }); n != 0 {
		t.Fatalf("attached Phases: %v allocs/step, want 0", n)
	}
}
