package hwsim

import "math"

// DRE unit shape constants (Sec. VI-A): a single V-Rex core is configured
// with N_HCU-h=1 x N_HCU-w=16 XOR accumulators and N_WTU-h=1 x N_WTU-w=16
// WTU lanes; hash signatures are N_hp=32 bits; the WTU uses 20 buckets and
// examines ~16% of entries per row thanks to early exit.
const (
	nHCUh        = 1
	nHCUw        = 16
	nWTUh        = 1
	nWTUw        = 16
	defaultNHp   = 32
	wtuBuckets   = 20
	wtuExamineFr = 0.16
)

// DRECycles reports the per-layer cycle cost of the DRE units for one chunk.
type DRECycles struct {
	HCU  float64
	WTU  float64
	KVMU float64
}

// Total returns the serial sum (the units pipeline in practice; Total is an
// upper bound used for the exposed-latency check).
func (c DRECycles) Total() float64 { return c.HCU + c.WTU + c.KVMU }

// HCUCycles models hash-bit clustering in hardware: newTokens signatures
// compared against clusters representatives, each comparison XOR-accumulating
// nhp bits at nHCUw bits/cycle across nHCUh parallel lanes, plus table
// update (1 cycle per token).
func HCUCycles(newTokens, clusters, nhp, cores int) float64 {
	if newTokens <= 0 || cores <= 0 {
		return 0
	}
	if nhp <= 0 {
		nhp = defaultNHp
	}
	perCompare := math.Ceil(float64(nhp) / nHCUw)
	compares := float64(newTokens) * float64(clusters)
	lanes := float64(nHCUh * cores)
	return compares*perCompare/lanes + float64(newTokens)
}

// WTUCycles models WiCSum thresholding with early-exit sorting: per score
// row, a preprocess pass (weighted sum + min/max, clusters/nWTUw cycles) and
// a token-selection pass touching examineFr of the clusters through the
// bucket pipeline. Rows are distributed over the cores' WTU lanes.
func WTUCycles(rows, clusters, cores int, examineFr float64) float64 {
	if rows <= 0 || clusters <= 0 || cores <= 0 {
		return 0
	}
	if examineFr <= 0 || examineFr > 1 {
		examineFr = wtuExamineFr
	}
	perRowPre := math.Ceil(float64(clusters) / nWTUw)
	perRowSel := math.Ceil(examineFr*float64(clusters)/nWTUw) + wtuBuckets
	lanes := float64(nWTUh * cores)
	return float64(rows) * (perRowPre + perRowSel) / lanes
}

// KVMUCycles models the management unit's bookkeeping: reordering newly
// written tokens to cluster-major layout (a streamed scatter, ~1 cycle/token
// of metadata work — the data movement itself rides the DRAM write of the
// new KV and is hidden) plus issuing one descriptor per fetch segment.
func KVMUCycles(newTokens, fetchSegments int) float64 {
	return float64(newTokens) + 4*float64(fetchSegments)
}

// DRETime converts DRE cycles at the core frequency into seconds.
func DRETime(c DRECycles, freq float64) float64 {
	if freq <= 0 {
		return 0
	}
	return c.Total() / freq
}
