package hwsim

// PhaseAccount accumulates simulated compute time by phase across every
// Chunk/Step a Sim prices — the telemetry plane's one-level-deep flamegraph
// of where device-seconds go. Attach one via Sim.Phases; Scaled copies share
// the pointer, so a fleet of per-budget scaled sims folds into one account.
// The five buckets partition Breakdown.Total exactly: Vision + Linear +
// Attn + Pred + Fetch == sum of Totals (Pred and Fetch record the *exposed*
// critical-path components, matching what the serving engine charges).
type PhaseAccount struct {
	// Vision is vision tower + projector + host frame-handling time.
	Vision float64
	// Linear is QKVO+FFN GEMM time (weights).
	Linear float64
	// Attn is attention kernel time.
	Attn float64
	// Pred is exposed KV-prediction time.
	Pred float64
	// Fetch is exposed retrieval-fetch time.
	Fetch float64
	// Steps counts priced chunks/steps (OOM and empty calls excluded).
	Steps int
}

// add folds one priced breakdown into the account. Callers nil-check the
// receiver at the call site so the disabled path stays branch-only.
func (a *PhaseAccount) add(b *Breakdown) {
	a.Vision += b.VisionTime
	a.Linear += b.LinearTime
	a.Attn += b.AttnTime
	a.Pred += b.PredExposed
	a.Fetch += b.FetchExposed
	a.Steps++
}

// Total returns the accounted device time (equals the sum of every priced
// Breakdown.Total, since the buckets partition it).
func (a *PhaseAccount) Total() float64 {
	return a.Vision + a.Linear + a.Attn + a.Pred + a.Fetch
}
