package hwsim

import (
	"math"
	"testing"
)

func TestPipelineEventsValid(t *testing.T) {
	llm := Llama3_8B()
	for _, sys := range []struct {
		dev DeviceSpec
		pol PolicyModel
	}{
		{AGXOrin(), FlexGenModel()},
		{AGXOrin(), InfiniGenPModel()},
		{VRex8(), ReSVModel()},
	} {
		sim := NewSim(sys.dev, llm, sys.pol)
		res := sim.SimulatePipeline(10, 20000, 1)
		if len(res.Events) == 0 {
			t.Fatalf("%s: no events", sys.pol.Name)
		}
		// Per-resource non-overlap.
		lastEnd := map[Resource]float64{}
		byRes := map[Resource][]PipelineEvent{}
		for _, e := range res.Events {
			byRes[e.Res] = append(byRes[e.Res], e)
			if e.End < e.Start {
				t.Fatalf("%s: negative-duration event %+v", sys.pol.Name, e)
			}
		}
		for r, evs := range byRes {
			for _, e := range evs {
				if e.Start < lastEnd[r]-1e-12 {
					t.Fatalf("%s: overlapping events on %v", sys.pol.Name, r)
				}
				lastEnd[r] = e.End
			}
		}
		if res.Total <= 0 {
			t.Fatalf("%s: zero makespan", sys.pol.Name)
		}
	}
}

func TestPipelineDependencies(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), InfiniGenPModel())
	res := sim.SimulatePipeline(10, 20000, 1)
	pred := map[int]float64{}
	fetch := map[int]float64{}
	for _, e := range res.Events {
		switch e.Kind {
		case "pred":
			pred[e.Layer] = e.End
		case "fetch":
			if e.Start < pred[e.Layer]-1e-12 {
				t.Fatalf("layer %d fetch before prediction", e.Layer)
			}
			fetch[e.Layer] = e.End
		case "attn+ffn":
			if e.Start < fetch[e.Layer]-1e-12 {
				t.Fatalf("layer %d compute before fetch", e.Layer)
			}
		}
	}
}

// TestPipelineMatchesClosedForm keeps the event-driven schedule consistent
// with the analytic overlap formula: the makespans must agree within 40%
// across systems and cache sizes (they model the same pipeline with
// different granularity).
func TestPipelineMatchesClosedForm(t *testing.T) {
	llm := Llama3_8B()
	for _, sys := range []struct {
		dev DeviceSpec
		pol PolicyModel
	}{
		{AGXOrin(), FlexGenModel()},
		{AGXOrin(), ReKVModel()},
		{VRex8(), ReSVModel()},
	} {
		for _, kv := range []int{5000, 40000} {
			sim := NewSim(sys.dev, llm, sys.pol)
			closed := sim.Chunk(10, kv, 1, StageFramePhase)
			event := sim.SimulatePipeline(10, kv, 1)
			closedLLM := closed.Total - closed.VisionTime
			ratio := event.Total / closedLLM
			if ratio < 0.6 || ratio > 1.4 {
				t.Errorf("%s kv=%d: event %v vs closed-form %v (ratio %.2f)",
					sys.pol.Name, kv, event.Total, closedLLM, ratio)
			}
		}
	}
}

// TestPipelineDREConcurrency: on V-Rex the DRE carries prediction, so the
// compute engine's schedule contains no pred events; on the GPU it does.
func TestPipelineDREConcurrency(t *testing.T) {
	llm := Llama3_8B()
	vrex := NewSim(VRex8(), llm, ReSVModel()).SimulatePipeline(10, 40000, 1)
	sawDRE := false
	for _, e := range vrex.Events {
		if e.Kind == "pred" {
			if e.Res != ResDRE {
				t.Fatal("V-Rex prediction must run on the DRE")
			}
			sawDRE = true
		}
	}
	if !sawDRE {
		t.Fatal("V-Rex pipeline missing DRE prediction events")
	}
	gpu := NewSim(AGXOrin(), llm, ReSVOnGPUModel()).SimulatePipeline(10, 40000, 1)
	for _, e := range gpu.Events {
		if e.Kind == "pred" && e.Res != ResCompute {
			t.Fatal("GPU prediction must serialise on compute")
		}
	}
	// The GPU spends a visible fraction of its compute time on prediction;
	// the V-Rex compute engine spends none.
	if gpu.Busy[ResCompute] <= vrex.Busy[ResCompute] {
		t.Fatal("GPU compute busy time should exceed V-Rex (prediction load)")
	}
}

func TestPipelineUtilization(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), FlexGenModel())
	res := sim.SimulatePipeline(10, 40000, 1)
	u := res.Utilization(ResLink)
	if u <= 0 || u > 1 {
		t.Fatalf("link utilization %v out of (0,1]", u)
	}
	// FlexGen at 40K is fetch-bound: the link is the busiest resource.
	if res.Utilization(ResLink) <= res.Utilization(ResCompute) {
		t.Fatal("FlexGen at 40K should be link-bound")
	}
	var zero PipelineResult
	if zero.Utilization(ResCompute) != 0 {
		t.Fatal("zero result utilization should be 0")
	}
}

func TestResourceString(t *testing.T) {
	if ResCompute.String() != "compute" || ResLink.String() != "link" || ResDRE.String() != "dre" {
		t.Fatal("resource names wrong")
	}
	if Resource(9).String() != "?" {
		t.Fatal("unknown resource should be ?")
	}
}

func TestPipelineOOM(t *testing.T) {
	sim := NewSim(AGXOrin(), Llama3_8B(), DenseModel())
	res := sim.SimulatePipeline(10, 40000, 16)
	if len(res.Events) != 0 || res.Total != 0 {
		t.Fatal("OOM configuration should produce an empty schedule")
	}
}

func TestPipelineSpeedupOrdering(t *testing.T) {
	// The event-driven model must reproduce the headline ordering too.
	llm := Llama3_8B()
	fg := NewSim(AGXOrin(), llm, FlexGenModel()).SimulatePipeline(10, 40000, 1)
	vx := NewSim(VRex8(), llm, ReSVModel()).SimulatePipeline(10, 40000, 1)
	if fg.Total/vx.Total < 3 {
		t.Fatalf("event-driven speedup %.1fx, want >= 3x", fg.Total/vx.Total)
	}
	if math.IsNaN(fg.Total) || math.IsNaN(vx.Total) {
		t.Fatal("NaN makespan")
	}
}
