package hwsim

// RooflinePoint is one system's position in the Fig. 18 roofline analysis.
type RooflinePoint struct {
	System string
	// OpIntensity is FLOPs per byte of off-chip traffic.
	OpIntensity float64
	// AchievedFLOPS is useful FLOPs / end-to-end latency.
	AchievedFLOPS float64
	// CeilingFLOPS is min(peak compute, OI x memory bandwidth).
	CeilingFLOPS float64
	// PeakFraction is Achieved/Ceiling.
	PeakFraction float64
}

// Roofline evaluates one device+policy at a workload point (tokensPerFrame
// new tokens, kvLen cache, batch) and returns its roofline position.
func Roofline(dev DeviceSpec, llm LLMSpec, pol PolicyModel, tokensPerFrame, kvLen, batch int) RooflinePoint {
	sim := NewSim(dev, llm, pol)
	b := sim.FrameLatency(tokensPerFrame, kvLen, batch)

	// The roofline considers the LLM execution phase (the paper's analysis
	// is of the frame processing stage's compute): vision/host overhead is
	// excluded from both FLOPs and time.
	llmFLOPs := llm.LayerLinearFLOPs(tokensPerFrame*batch) * float64(llm.Layers)
	ratio := pol.FrameRatio
	attended := ratio*float64(kvLen) + float64(tokensPerFrame)
	llmFLOPs += 4 * float64(tokensPerFrame) * attended * float64(llm.Dim) * float64(batch) * float64(llm.Layers)
	llmTime := b.Total - b.VisionTime
	if dev.HasDRE {
		// In steady-state streaming the KVMU prefetches the next frame's
		// selected KV across the whole frame interval (hierarchical memory,
		// Fig. 12), so the compute engines see no fetch stall; GPU baselines
		// only overlap within the layer pipeline and stall on PCIe (the
		// "PCIe Bottleneck" annotation of Fig. 18).
		llmTime -= b.FetchExposed
	}

	// Off-chip traffic: weights + attended KV (+ fetched KV on GPUs, whose
	// compute engines wait on it; on V-Rex it streams in the background).
	bytes := llm.WeightBytes() +
		2*attended*float64(llm.KVDim())*llm.BytesPerElem*float64(llm.Layers)*float64(batch)
	if !dev.HasDRE {
		bytes += b.FetchBytes
	}

	oi := llmFLOPs / bytes
	ceiling := dev.PeakFLOPS
	if bwBound := oi * dev.Mem.Bandwidth; bwBound < ceiling {
		ceiling = bwBound
	}
	achieved := 0.0
	if llmTime > 0 {
		achieved = llmFLOPs / llmTime
	}
	return RooflinePoint{
		System:        dev.Name + "+" + pol.Name,
		OpIntensity:   oi,
		AchievedFLOPS: achieved,
		CeilingFLOPS:  ceiling,
		PeakFraction:  achieved / ceiling,
	}
}
