package hwsim

import (
	"math"

	"vrex/internal/vision"
)

// Breakdown is the simulated cost of processing one chunk (a video frame or
// a text step) end to end. "Raw" components are busy times of each engine;
// "Exposed" components are what remains on the critical path after the
// Fig. 5 overlap pipeline. Total is the critical-path latency.
type Breakdown struct {
	// VisionTime is the vision tower + projector time (frame stage only).
	VisionTime float64
	// LinearTime is QKVO+FFN GEMM time across layers.
	LinearTime float64
	// AttnTime is attention kernel time across layers.
	AttnTime float64
	// PredRaw is KV-prediction busy time (wherever it runs).
	PredRaw float64
	// PredExposed is prediction time on the critical path (zero when the
	// DRE hides it).
	PredExposed float64
	// FetchRaw is the KV fetch busy time on the link/SSD.
	FetchRaw float64
	// FetchExposed is fetch time on the critical path after overlap.
	FetchExposed float64
	// DRETime is the DRE busy time (V-Rex only).
	DRETime float64
	// Total is the end-to-end chunk latency in seconds.
	Total float64
	// EnergyJ is the system energy for the chunk in joules.
	EnergyJ float64
	// UsefulFLOPs counts LLM compute (linear + attention), the numerator of
	// the efficiency metrics.
	UsefulFLOPs float64
	// FetchBytes is the KV traffic across the link.
	FetchBytes float64
	// OOM marks that the resident footprint exceeded device memory.
	OOM bool
}

// LLMTime returns the exposed LLM compute time (linear + attention).
func (b Breakdown) LLMTime() float64 { return b.LinearTime + b.AttnTime }

// RetrievalExposed returns the exposed retrieval overhead (prediction +
// fetch on the critical path).
func (b Breakdown) RetrievalExposed() float64 { return b.PredExposed + b.FetchExposed }

// Sim evaluates chunk latencies for one device + LLM + policy combination.
type Sim struct {
	Dev DeviceSpec
	LLM LLMSpec
	Pol PolicyModel
	// VisionCost is charged once per frame chunk (nil disables).
	VisionCost *vision.ViTCost
	// ExamineFraction overrides the WTU early-exit examine fraction
	// (<= 0 uses the default 16%).
	ExamineFraction float64
	// Phases, when non-nil, accumulates each priced chunk/step into a
	// per-phase time account (telemetry plane). Scaled copies share it.
	Phases *PhaseAccount
}

// NewSim builds a simulator with the SigLIP vision cost attached.
func NewSim(dev DeviceSpec, llm LLMSpec, pol PolicyModel) *Sim {
	vc := vision.SigLIPViTL384Cost(10)
	return &Sim{Dev: dev, LLM: llm, Pol: pol, VisionCost: &vc}
}

// Scaled returns a simulator whose retrieval fetch ratios (frame and text)
// are multiplied by scale — the degradation plane's pricing hook: a session
// at budget scale b retrieves b times the tokens per chunk, so its steps are
// priced through Scaled(b). Scale 1 returns the receiver unchanged; other
// scales return a shallow copy (Sim holds only value fields plus the shared
// read-only VisionCost pointer, so the copy is safe and cheap).
func (s *Sim) Scaled(scale float64) *Sim {
	if scale == 1 {
		return s
	}
	c := *s
	c.Pol.FrameRatio *= scale
	c.Pol.TextRatio *= scale
	return &c
}

// rooflineTime returns max(flops-bound, bytes-bound) kernel time.
func (s *Sim) rooflineTime(flops, eff, bytes float64) float64 {
	t := 0.0
	if flops > 0 && eff > 0 {
		t = flops / (s.Dev.PeakFLOPS * eff)
	}
	if bytes > 0 {
		if bt := s.Dev.Mem.AccessTime(bytes); bt > t {
			t = bt
		}
	}
	return t
}

// residentBytes returns the device-memory footprint for an OOM check.
func (s *Sim) residentBytes(kvLen, batch int) float64 {
	resident := s.LLM.WeightBytes()
	kvBytes := s.LLM.KVBytesPerToken() * float64(kvLen) * float64(batch) * s.Pol.quantFactor()
	if s.Pol.Offloads {
		// Only the fetched working set + recent window stays resident
		// (double-buffered).
		working := kvBytes * s.Pol.FrameRatio * 2 / float64(s.LLM.Layers)
		resident += working
	} else {
		resident += kvBytes
	}
	// Activations / workspace: ~2 GB at batch, grows mildly.
	resident += 2e9 + 0.1e9*float64(batch)
	return resident
}

// Chunk simulates one chunk of n new tokens per stream against a cache of
// kvLen tokens, at the given batch size and stage. Step's multi-request path
// (step.go) mirrors these per-stream cost formulas for heterogeneous
// batches; a change here must be mirrored there.
func (s *Sim) Chunk(n, kvLen, batch int, stage StageKind) Breakdown {
	var b Breakdown
	if batch <= 0 || n <= 0 {
		return b
	}
	if s.residentBytes(kvLen, batch) > s.Dev.MemCapacity {
		b.OOM = true
		return b
	}
	ratio := s.Pol.ratio(stage)
	attended := int(ratio*float64(kvLen)+0.5) + n
	rows := n * batch

	// --- Per-layer compute (summed across layers) ---
	linFLOPs := s.LLM.LayerLinearFLOPs(rows) * float64(s.LLM.Layers)
	linBytes := s.LLM.LayerWeightBytes() * float64(s.LLM.Layers)
	b.LinearTime = s.rooflineTime(linFLOPs, s.Dev.DenseEff, linBytes)

	attnFLOPs := s.LLM.LayerAttnFLOPs(n, attended) * float64(batch) * float64(s.LLM.Layers)
	attnBytes := s.LLM.LayerKVBytes(attended) * float64(batch) * float64(s.LLM.Layers) * s.Pol.quantFactor()
	b.AttnTime = s.rooflineTime(attnFLOPs, s.Dev.AttnEff, attnBytes)
	b.UsefulFLOPs = linFLOPs + attnFLOPs

	// --- KV prediction ---
	cand := float64(kvLen)
	if s.Pol.ClusterCompression > 1 {
		cand /= s.Pol.ClusterCompression
	}
	nCand := int(cand + 0.5)
	predDense := s.LLM.PredFLOPs(rows, nCand) * float64(s.LLM.Layers)
	var predIrregularOps float64
	switch s.Pol.Pred {
	case PredTopK:
		// GPU top-k: score pass is dense; the sort/selection pass touches
		// every candidate with data-dependent control flow.
		predIrregularOps = 8 * float64(rows) * cand * float64(s.LLM.Layers)
	case PredReSV:
		// Hamming clustering (bit ops over clusters) + WiCSum thresholding.
		hamOps := float64(n*batch) * cand * defaultNHp / 8
		wicOps := 6 * float64(rows*s.LLM.Heads) * cand * wtuExamineFraction(s.ExamineFraction)
		predIrregularOps = (hamOps + wicOps) * float64(s.LLM.Layers)
	case PredNone:
		// no prediction pass: nothing irregular to charge
	}
	if s.Pol.Pred != PredNone {
		if s.Pol.PredOnDevice {
			irr := predIrregularOps / (s.Dev.PeakFLOPS * s.Dev.IrregularEff)
			if s.Pol.Pred == PredTopK {
				// Per-row sort kernels: fixed launch + element-linear cost
				// (GPU-friendly but still one kernel per query row per layer).
				irr += float64(rows) * (60e-6 + cand*0.5e-9) * float64(s.LLM.Layers)
			}
			if s.Pol.Pred == PredReSV {
				// ReSV's clustering/thresholding is conditional and
				// data-dependent (Sec. V): on a GPU it serialises into
				// latency-bound chains instead of wide kernels. Top-k, by
				// contrast, is a "computationally regular and GPU-friendly
				// primitive" (Sec. I) and keeps the parallel rate above.
				irr = predIrregularOps / gpuSerialOpsPerSec
			}
			b.PredRaw = predDense/(s.Dev.PeakFLOPS*s.Dev.DenseEff) + irr
			// Prediction shares the device with LLM kernels: fully exposed.
			b.PredExposed = b.PredRaw
		} else {
			// DRE path: Q x K_cluster^T runs on the LXE (dense, cheap);
			// clustering + thresholding run on HCU/WTU concurrently.
			lxe := predDense / (s.Dev.PeakFLOPS * s.Dev.DenseEff)
			cyc := DRECycles{
				HCU: HCUCycles(n*batch, nCand, defaultNHp, s.Dev.Cores),
				WTU: WTUCycles(rows*s.LLM.Heads, nCand, s.Dev.Cores,
					wtuExamineFraction(s.ExamineFraction)),
				KVMU: KVMUCycles(n*batch, s.fetchSegments(kvLen, batch, ratio)),
			}
			dre := DRETime(cyc, s.Dev.Freq) * float64(s.LLM.Layers)
			b.DRETime = dre
			b.PredRaw = lxe + dre
			// The LXE score matmul is exposed (tiny); DRE work overlaps with
			// attention+FFN and is exposed only if it exceeds them.
			b.PredExposed = lxe
			if over := dre - (b.LinearTime + b.AttnTime); over > 0 {
				b.PredExposed += over
			}
		}
	}

	// --- KV fetch ---
	if s.Pol.Offloads && kvLen > 0 {
		reuse := s.Pol.ResidentReuse
		if reuse < 0 {
			reuse = 0
		}
		if reuse > 1 {
			reuse = 1
		}
		fetchTokens := ratio * (1 - reuse) * float64(kvLen) * float64(batch) * float64(s.LLM.Layers)
		b.FetchBytes = fetchTokens * 2 * float64(s.LLM.KVDim()) * s.LLM.BytesPerElem * s.Pol.quantFactor()
		segs := int(float64(s.fetchSegments(kvLen, batch, ratio)) * (1 - reuse) * float64(s.LLM.Layers))
		linkTime := s.Dev.Link.TransferTime(b.FetchBytes, segs)
		if s.Dev.OffloadSSD != nil {
			if st := s.Dev.OffloadSSD.ReadTime(b.FetchBytes, segs); st > linkTime {
				linkTime = st
			}
		}
		b.FetchRaw = linkTime
		if s.Pol.PrefetchOverlap {
			// Prefetch overlap (Fig. 5 ii/iii): fetch for layer l+1 overlaps
			// layer l compute (+ exposed on-device prediction).
			cover := b.LinearTime + b.AttnTime + b.PredExposed
			if b.FetchRaw > cover {
				b.FetchExposed = b.FetchRaw - cover
			}
		} else {
			// Vanilla serial load (Fig. 5 i).
			b.FetchExposed = b.FetchRaw
		}
	}

	// --- Vision tower + host-side frame handling (frame stage only) ---
	if stage == StageFramePhase && s.VisionCost != nil {
		vf := s.VisionCost.FLOPs * float64(batch)
		b.VisionTime = s.rooflineTime(vf, s.Dev.DenseEff, s.VisionCost.WeightBytes)
		b.VisionTime += s.Dev.FrameOverhead
		b.UsefulFLOPs += vf
	}

	b.Total = b.VisionTime + b.LinearTime + b.AttnTime + b.PredExposed + b.FetchExposed
	b.EnergyJ = s.energy(b)
	if s.Phases != nil {
		s.Phases.add(&b)
	}
	return b
}

// gpuSerialOpsPerSec is the effective GPU rate on serialised, data-dependent
// operation chains (dependent memory loads, divergent branches, dynamic
// output sizes). Calibrated so ReSV-on-GPU's KV prediction consumes ~48% of
// frame latency at 40K cache (Fig. 16's AGX+ReSV measurement).
const gpuSerialOpsPerSec = 5e7

func wtuExamineFraction(override float64) float64 {
	if override > 0 && override <= 1 {
		return override
	}
	return wtuExamineFr
}

// fetchSegments returns the number of contiguous segments for one layer's
// fetch of ratio*kvLen tokens per stream.
func (s *Sim) fetchSegments(kvLen, batch int, ratio float64) int {
	tokens := ratio * float64(kvLen) * float64(batch)
	if tokens <= 0 {
		return 0
	}
	segTokens := s.Pol.SegmentTokens
	if segTokens < 1 {
		segTokens = 1
	}
	return int(math.Ceil(tokens / segTokens))
}

// energy integrates the component-power model over the chunk's busy times.
func (s *Sim) energy(b Breakdown) float64 {
	active := s.Dev.Power - s.Dev.IdlePower
	if active < 0 {
		active = 0
	}
	computeBusy := b.VisionTime + b.LinearTime + b.AttnTime + b.PredExposed
	e := s.Dev.IdlePower*b.Total + active*computeBusy
	e += s.Dev.Link.Power() * b.FetchRaw
	if s.Dev.OffloadSSD != nil {
		e += s.Dev.OffloadSSD.ActivePower * b.FetchRaw
	}
	e += s.Dev.Mem.AccessEnergy(b.FetchBytes)
	return e
}

// FrameLatency simulates processing one video frame (tokensPerFrame new
// tokens) against a kvLen cache at the given batch.
func (s *Sim) FrameLatency(tokensPerFrame, kvLen, batch int) Breakdown {
	return s.Chunk(tokensPerFrame, kvLen, batch, StageFramePhase)
}

// TPOT simulates one generated output token (time per output token).
func (s *Sim) TPOT(kvLen, batch int) Breakdown {
	return s.Chunk(1, kvLen, batch, StageTextPhase)
}

// GOPSPerWatt returns the chunk's energy-efficiency metric.
func (b Breakdown) GOPSPerWatt() float64 {
	if b.EnergyJ <= 0 {
		return 0
	}
	return b.UsefulFLOPs / 1e9 / b.EnergyJ
}

// FPS returns frames/second implied by the chunk latency.
func (b Breakdown) FPS() float64 {
	if b.Total <= 0 {
		return 0
	}
	return 1 / b.Total
}
