package hwsim

import (
	"fmt"

	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// PolicyModelFactory builds a policy model's default parameterization; spec
// parameters are applied on top by ParsePolicy.
type PolicyModelFactory func() PolicyModel

// policyModels is the performance-plane policy registry: every PolicyModel
// constructor registers under a canonical lower-case name (plus aliases), so
// CLIs and experiments can select models declaratively from spec strings
// like "rekv(frame=0.58,text=0.31)" instead of hard-coding constructors.
var policyModels = named.New[PolicyModelFactory]("hwsim", "policy")

// RegisterPolicyModel registers a factory under name (lower-cased); extra
// names are aliases. Re-registering a name panics: registry names are part
// of the CLI surface.
func RegisterPolicyModel(name string, f PolicyModelFactory, aliases ...string) {
	policyModels.Register(name, f, aliases...)
}

func init() {
	RegisterPolicyModel("flexgen", FlexGenModel)
	RegisterPolicyModel("infinigen", InfiniGenModel)
	RegisterPolicyModel("infinigenp", InfiniGenPModel)
	RegisterPolicyModel("rekv", ReKVModel)
	RegisterPolicyModel("resv", ReSVModel)
	RegisterPolicyModel("resv-gpu", ReSVOnGPUModel, "resvongpu", "resv-on-gpu")
	RegisterPolicyModel("dense", DenseModel)
	RegisterPolicyModel("oaken", OakenModel)
}

// PolicyModelNames returns the canonical registered names, sorted.
func PolicyModelNames() []string { return policyModels.Names() }

// policyParamKeys are the typed parameters every policy model accepts; each
// overrides the corresponding PolicyModel field.
var policyParamKeys = []string{"frame", "text", "segment", "cluster", "reuse", "quantbits"}

// ParsePolicy builds a PolicyModel from a spec string: a registered name
// with optional parameter overrides, e.g. "rekv(frame=0.58,text=0.31)".
// Parameters: frame/text (retrieval ratios in [0,1]), segment (contiguous
// fetch run length in tokens), cluster (tokens per predicted cluster), reuse
// (resident-reuse fraction in [0,1]), quantbits (resident-KV precision).
func ParsePolicy(spec string) (PolicyModel, error) {
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return PolicyModel{}, err
	}
	f, ok := policyModels.Lookup(sp.Name)
	if !ok {
		return PolicyModel{}, policyModels.Unknown(sp.Name)
	}
	m := f()
	m.FrameRatio = sp.Float("frame", m.FrameRatio)
	m.TextRatio = sp.Float("text", m.TextRatio)
	m.SegmentTokens = sp.Float("segment", m.SegmentTokens)
	m.ClusterCompression = sp.Float("cluster", m.ClusterCompression)
	m.ResidentReuse = sp.Float("reuse", m.ResidentReuse)
	m.KVQuantBits = sp.Int("quantbits", m.KVQuantBits)
	if err := sp.CheckConsumed(policyParamKeys...); err != nil {
		return PolicyModel{}, err
	}
	for _, r := range []struct {
		key string
		v   float64
	}{{"frame", m.FrameRatio}, {"text", m.TextRatio}, {"reuse", m.ResidentReuse}} {
		if r.v < 0 || r.v > 1 {
			return PolicyModel{}, fmt.Errorf("hwsim: policy %q: %s=%v out of [0,1]", sp.Name, r.key, r.v)
		}
	}
	if m.SegmentTokens < 1 || m.ClusterCompression < 1 {
		return PolicyModel{}, fmt.Errorf("hwsim: policy %q: segment and cluster must be >= 1", sp.Name)
	}
	if m.KVQuantBits < 1 || m.KVQuantBits > 16 {
		return PolicyModel{}, fmt.Errorf("hwsim: policy %q: quantbits=%d out of [1,16]", sp.Name, m.KVQuantBits)
	}
	return m, nil
}
