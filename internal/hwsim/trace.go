package hwsim

// TracePoint is one sample of the Fig. 17 bandwidth-over-time analysis.
type TracePoint struct {
	TimeUS float64
	// LLMBW is DRAM bandwidth consumed by LLM kernels (bytes/s).
	LLMBW float64
	// PredBW is DRAM bandwidth consumed by KV prediction (bytes/s).
	PredBW float64
	// RetrievalBW is bandwidth consumed writing fetched KV into DRAM
	// (PCIe-bound, ~1% of DRAM bandwidth).
	RetrievalBW float64
	// Phase labels the active LLM phase ("QKV Gen", "Attention", "FFN").
	Phase string
}

// BandwidthTrace reconstructs the per-phase DRAM bandwidth usage of nLayers
// decoder layers on a V-Rex device (Fig. 17's analysis of concurrent
// computation): QKV generation and FFN stream weights; attention streams the
// attended KV; KV prediction briefly spikes while reading cluster metadata
// concurrently with attention; retrieval trickles constantly at PCIe rate.
func BandwidthTrace(dev DeviceSpec, llm LLMSpec, pol PolicyModel, tokensPerFrame, kvLen, batch, nLayers, samplesPerPhase int) []TracePoint {
	sim := NewSim(dev, llm, pol)
	ratio := pol.FrameRatio
	attended := int(ratio*float64(kvLen)+0.5) + tokensPerFrame
	rows := tokensPerFrame * batch

	// Phase durations for one layer.
	qkvFLOPs := 2 * float64(rows) * float64(llm.Dim) * (float64(llm.Dim) + 2*float64(llm.KVDim()))
	qkvBytes := (float64(llm.Dim)*float64(llm.Dim)*2 + 2*float64(llm.Dim)*float64(llm.KVDim())*2)
	qkvT := sim.rooflineTime(qkvFLOPs, dev.DenseEff, qkvBytes)

	attnFLOPs := llm.LayerAttnFLOPs(tokensPerFrame, attended) * float64(batch)
	attnBytes := llm.LayerKVBytes(attended) * float64(batch)
	attnT := sim.rooflineTime(attnFLOPs, dev.AttnEff, attnBytes)

	ffnFLOPs := 2 * float64(rows) * float64(llm.Dim) * float64(llm.FFNDim) * 3
	ffnBytes := 3 * float64(llm.Dim) * float64(llm.FFNDim) * 2
	ffnT := sim.rooflineTime(ffnFLOPs, dev.DenseEff, ffnBytes)

	// Prediction metadata read: cluster representatives (KVDim each).
	cand := float64(kvLen)
	if pol.ClusterCompression > 1 {
		cand /= pol.ClusterCompression
	}
	predBytes := cand * float64(llm.KVDim()) * llm.BytesPerElem
	predBW := 0.0
	if attnT > 0 {
		predDur := attnT * 0.3 // overlapped within attention
		predBW = predBytes / predDur
	}

	// Retrieval: constant PCIe-rate DRAM writes while fetching.
	retrBW := 0.0
	if pol.Offloads {
		retrBW = dev.Link.Bandwidth
		if dev.OffloadSSD != nil && dev.OffloadSSD.ReadBandwidth < retrBW {
			retrBW = dev.OffloadSSD.ReadBandwidth
		}
	}

	var out []TracePoint
	t := 0.0
	emit := func(phase string, dur, llmBW, pBW float64) {
		for i := 0; i < samplesPerPhase; i++ {
			out = append(out, TracePoint{
				TimeUS:      (t + dur*float64(i)/float64(samplesPerPhase)) * 1e6,
				LLMBW:       llmBW,
				PredBW:      pBW,
				RetrievalBW: retrBW,
				Phase:       phase,
			})
		}
		t += dur
	}
	for l := 0; l < nLayers; l++ {
		emit("QKV Gen", qkvT, qkvBytes/qkvT, 0)
		// Prediction spike in the first 30% of attention.
		emit("Attention", attnT*0.3, attnBytes/attnT, predBW)
		emit("Attention", attnT*0.7, attnBytes/attnT, 0)
		emit("FFN", ffnT, ffnBytes/ffnT, 0)
	}
	return out
}
