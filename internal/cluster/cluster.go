// Package cluster simulates a geo-distributed fleet of serving fleets: nodes
// (each an internal/serve device fleet, possibly on different hardware) sit
// behind a global router that places arriving sessions, an autoscaler that
// drains and reactivates whole nodes on load, and a fault plane that injects
// node drains and failures. Sessions move between devices and nodes by live
// KV migration: pages leave the source through its kvpool.Transfer mover,
// cross a memsim.NICLink (LAN within a region, WAN across regions), and page
// in at the destination — both device timelines are charged, so migration is
// never free. It extends the paper's closing claim ("clear potential for
// scalable deployment in large-scale server environments") from one fleet to
// a cluster of them.
//
// A single-node cluster with no faults, no autoscaler and no rebalancing
// compiles to exactly the serve.Config it wraps — the composite balancer
// delegates straight to the node balancer and the control plane stays off —
// so Run reduces byte-identically to serve.Run (pinned by tests).
package cluster

import (
	"fmt"
	"math"

	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/memsim"
	"vrex/internal/serve"
)

// NodeSpec describes one cluster node: a named fleet of identical devices in
// a region, on its own hardware spec.
type NodeSpec struct {
	// Name identifies the node in results ("node<i>" when empty).
	Name string
	// SpecName is the hwsim device registry name Spec resolved from, when the
	// node came through ParseNodes — FormatNodes needs it to render the list
	// back. Purely informational for Run.
	SpecName string
	// Region groups nodes by network locality: migrations within a region
	// cross the LAN link, migrations across regions the WAN link. Empty
	// regions all count as one region.
	Region string
	// Spec is the hardware of each of the node's devices.
	Spec hwsim.DeviceSpec
	// Devices is the node's fleet size (must be positive).
	Devices int
}

// NetConfig picks the inter-node network links. Zero-valued links default to
// memsim.LAN100G within a region and memsim.WAN across regions.
type NetConfig struct {
	LAN, WAN memsim.NICLink
}

func (n NetConfig) lan() memsim.NICLink {
	if n.LAN.Bandwidth > 0 {
		return n.LAN
	}
	return memsim.LAN100G()
}

func (n NetConfig) wan() memsim.NICLink {
	if n.WAN.Bandwidth > 0 {
		return n.WAN
	}
	return memsim.WAN()
}

// RebalanceConfig lets the controller move sessions between nodes at each
// tick to even out load. The zero value disables rebalancing.
type RebalanceConfig struct {
	// MaxMoves caps live migrations per tick (0 disables rebalancing).
	MaxMoves int
	// Slack is the sessions-per-device imbalance tolerated between the most-
	// and least-loaded nodes before moves trigger (values below 1 read as 1,
	// so perfectly balanced fleets never churn).
	Slack float64
}

// Config describes a cluster run.
type Config struct {
	// Nodes is the cluster topology (at least one node).
	Nodes []NodeSpec
	// Base is the serving configuration every node shares: workload, classes,
	// churn, KV plane, scheduler, seed. Its Devices, DevSpecs, Dev, Balancer,
	// Control and Migration fields are owned by the cluster compiler and
	// overwritten; everything else passes through — including Telemetry,
	// whose sink sees the flattened fleet's raw event/stall streams (device
	// indices are global, in node declaration order) and whose profile
	// attributes the whole cluster's device-seconds.
	Base serve.Config
	// Router places arriving sessions on nodes; nil defaults to round-robin.
	Router Router
	// NodeBalancer builds each node's device balancer; nil defaults to
	// round-robin.
	NodeBalancer func() serve.Balancer
	// Autoscaler drains / reactivates whole nodes on load; nil disables.
	Autoscaler Autoscaler
	// InitialNodes is the number of nodes in service at t=0 when an
	// autoscaler is attached (the rest start drained, available for
	// scale-out). 0 or >= len(Nodes) starts everything; ignored without an
	// autoscaler.
	InitialNodes int
	// Faults injects node drains and failures (see Fault).
	Faults []Fault
	// Rebalance moves sessions between nodes on load imbalance.
	Rebalance RebalanceConfig
	// Net picks the LAN / WAN links migrations cross between nodes.
	Net NetConfig
	// ControlInterval is the controller tick period in seconds when the
	// autoscaler or rebalancer needs periodic ticks (default 1). It is also
	// the SLO attainment window width.
	ControlInterval float64
}

// Window is one SLO attainment window of the run: frames are bucketed by
// arrival time, so a node fault shows up as a dip in the windows covering
// the recovery.
type Window struct {
	// Start / End bound the window in simulation seconds.
	Start, End float64
	// FramesServed / DeadlineMisses / FramesDropped count the frames arriving
	// in the window by outcome (misses are a subset of served).
	FramesServed, DeadlineMisses, FramesDropped int
	// Attained is the fraction of the window's arrived frames served within
	// deadline (1 when none arrived).
	Attained float64
}

// NodeMetrics summarises one node of a run.
type NodeMetrics struct {
	Name, Region string
	Devices      int
	// Sessions counts sessions placed on the node (migrations move sessions
	// without re-counting them here).
	Sessions      int
	FramesServed  int
	QueriesServed int
	// Utilization is the mean device utilization across the node.
	Utilization float64
	// MigrationsIn / MigrationsOut / MigrationTime aggregate the node's
	// device migration counters (time is the node's own timeline legs).
	MigrationsIn, MigrationsOut int
	MigrationTime               float64
	// Degradations / Restorations aggregate the node's degradation-plane
	// budget steps (zero with the plane disabled).
	Degradations, Restorations int
}

// Result is a cluster run's outcome.
type Result struct {
	// Serve is the underlying fleet result over all nodes' devices (device
	// indices are contiguous per node, in Nodes order).
	Serve serve.Result
	// PerNode folds the device metrics back into nodes.
	PerNode []NodeMetrics
	// Windows is the SLO attainment series (ControlInterval-wide buckets).
	Windows []Window
}

// node fault / autoscaler ownership of a down node.
const (
	nodeUp = iota
	downByFault
	downByScaler
)

// fault event kinds, in application order at equal times.
const (
	fevDrain = iota
	fevFail
	fevRecover
)

type faultEvent struct {
	at   float64
	kind int
	node int
}

func validateCluster(cfg Config) {
	if len(cfg.Nodes) == 0 {
		panic("cluster: no nodes configured")
	}
	for i, n := range cfg.Nodes {
		if n.Devices <= 0 {
			panic(fmt.Sprintf("cluster: node %d (%s) has %d devices", i, n.Name, n.Devices))
		}
	}
	for _, f := range cfg.Faults {
		if f.Kind != FaultDrain && f.Kind != FaultFail {
			panic(fmt.Sprintf("cluster: unknown fault kind %q", f.Kind))
		}
		if f.Node < 0 || f.Node >= len(cfg.Nodes) {
			panic(fmt.Sprintf("cluster: fault targets node %d of %d", f.Node, len(cfg.Nodes)))
		}
		if f.At < 0 || math.IsNaN(f.At) {
			panic(fmt.Sprintf("cluster: fault at negative time %v", f.At))
		}
		if f.Recover != 0 && (f.Recover <= f.At || math.IsNaN(f.Recover)) {
			panic(fmt.Sprintf("cluster: fault recover %v not after fault time %v", f.Recover, f.At))
		}
	}
	if cfg.ControlInterval < 0 || math.IsNaN(cfg.ControlInterval) {
		panic(fmt.Sprintf("cluster: negative control interval %v", cfg.ControlInterval))
	}
	if cfg.Rebalance.MaxMoves < 0 {
		panic(fmt.Sprintf("cluster: negative rebalance move cap %d", cfg.Rebalance.MaxMoves))
	}
}

// uniformSpecs reports whether every node runs identical hardware, in which
// case the compiled fleet stays homogeneous (sharing one analytic simulator,
// exactly like a plain serve run).
func uniformSpecs(nodes []NodeSpec) bool {
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Spec != nodes[0].Spec {
			return false
		}
	}
	return true
}

// migrationPricer builds the serve.MigrationConfig cost function: source
// pages leave through the source node's kvpool.Transfer mover, cross the LAN
// (same region) or WAN (cross-region) link for inter-node moves, and page in
// through the destination's mover. The network leg charges both endpoints —
// the source streams out while the destination streams in.
func migrationPricer(cfg Config, devNode []int) func(src, dst, kvTokens int) (float64, float64) {
	llm := hwsim.Llama3_8B()
	bytesPerToken := cfg.Base.Pol.KVBytesPerToken(llm)
	pageTokens := cfg.Base.KV.PageTokens
	if pageTokens == 0 {
		pageTokens = serve.DefaultPageTokens
	}
	movers := make([]kvpool.Transfer, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		movers[i] = kvpool.Transfer{
			Link: n.Spec.Link, SSD: n.Spec.OffloadSSD, Host: n.Spec.HostMem,
			PageBytes: bytesPerToken * float64(pageTokens),
		}
	}
	lan, wan := cfg.Net.lan(), cfg.Net.wan()
	return func(src, dst, kvTokens int) (float64, float64) {
		pages := (kvTokens + pageTokens - 1) / pageTokens
		sn, dn := devNode[src], devNode[dst]
		out := movers[sn].PageOut(pages)
		in := movers[dn].PageIn(pages)
		if sn == dn {
			// Intra-node move: device-to-device over the node's own link.
			return out, in
		}
		link := lan
		if cfg.Nodes[sn].Region != cfg.Nodes[dn].Region {
			link = wan
		}
		net := link.TransferTime(float64(kvTokens)*bytesPerToken, pages)
		return out + net, net + in
	}
}

// clusterRun is the controller's mutable state across ticks.
type clusterRun struct {
	cfg    Config
	comp   *compositeBalancer
	scaler Autoscaler

	// downBy tracks who owns each down node (fault beats scaler).
	downBy []int
	// fevents is the compiled fault schedule; fi the application cursor.
	fevents []faultEvent
	fi      int
	// initPending drains Nodes[InitialNodes:] at the first tick.
	initPending bool

	// Windowed SLO accounting, fed by the chained observer: frames bucket by
	// arrival time into winW-wide windows, and tick* accumulate since the
	// autoscaler last looked.
	winW                                float64
	winServed, winMissed, winDropped    []int
	tickServed, tickMissed, tickDropped int
}

// compileFaults flattens the fault list into a time-sorted event schedule
// (stable at equal times: config order, drains/fails before the recovery of
// a later entry only by timestamp).
func compileFaults(faults []Fault) []faultEvent {
	var evs []faultEvent
	for _, f := range faults {
		kind := fevDrain
		if f.Kind == FaultFail {
			kind = fevFail
		}
		evs = append(evs, faultEvent{at: f.At, kind: kind, node: f.Node})
		if f.Recover > 0 {
			evs = append(evs, faultEvent{at: f.Recover, kind: fevRecover, node: f.Node})
		}
	}
	// Insertion sort keeps equal-time events in config order (stable).
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].at < evs[j-1].at; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	return evs
}

// tickTimes assembles the control tick schedule: every fault and recovery
// time, periodic ticks when the autoscaler or rebalancer runs, and t=0 when
// the autoscaler starts with a partial cluster.
func (r *clusterRun) tickTimes() (interval float64, at []float64) {
	for _, fe := range r.fevents {
		at = append(at, fe.at)
	}
	if r.scaler != nil || r.cfg.Rebalance.MaxMoves > 0 {
		interval = r.cfg.ControlInterval
		if interval <= 0 {
			interval = 1
		}
	}
	if r.initPending {
		at = append(at, 0)
	}
	return interval, at
}

// takeNode drains or fails a whole node; by records the owner so only the
// matching plane reactivates it. A fault claims a scaler-drained node.
func (r *clusterRun) takeNode(n, by, kind int, ops *serve.FleetOps) {
	if r.downBy[n] != nodeUp {
		if by == downByFault {
			r.downBy[n] = downByFault
		}
		return
	}
	r.downBy[n] = by
	// Mark the node unroutable before the first device drains, so evacuated
	// sessions never hop to a sibling device that is about to go down too.
	r.comp.avoid[n] = true
	for d := r.comp.lo[n]; d < r.comp.hi[n]; d++ {
		if kind == fevFail {
			ops.Fail(d)
		} else {
			ops.Drain(d)
		}
	}
}

// restoreNode returns a node to service if the given plane owns its outage.
func (r *clusterRun) restoreNode(n, by int, ops *serve.FleetOps) {
	if r.downBy[n] != by {
		return
	}
	r.downBy[n] = nodeUp
	r.comp.avoid[n] = false
	for d := r.comp.lo[n]; d < r.comp.hi[n]; d++ {
		ops.Activate(d)
	}
}

// activeNodes counts nodes currently in service.
func (r *clusterRun) activeNodes() int {
	n := 0
	for _, by := range r.downBy {
		if by == nodeUp {
			n++
		}
	}
	return n
}

// control is the serve.ControlConfig tick body: apply due faults, run the
// autoscaler, then rebalance.
func (r *clusterRun) control(now float64, ops *serve.FleetOps) {
	if r.initPending {
		r.initPending = false
		for n := r.cfg.InitialNodes; n < len(r.cfg.Nodes); n++ {
			r.takeNode(n, downByScaler, fevDrain, ops)
		}
	}
	for r.fi < len(r.fevents) && r.fevents[r.fi].at <= now {
		fe := r.fevents[r.fi]
		r.fi++
		if fe.kind == fevRecover {
			r.restoreNode(fe.node, downByFault, ops)
		} else {
			r.takeNode(fe.node, downByFault, fe.kind, ops)
		}
	}
	if r.scaler != nil {
		r.autoscale(now, ops)
	}
	if r.cfg.Rebalance.MaxMoves > 0 {
		r.rebalance(now, ops)
	}
}

// autoscale evaluates the scaler against the load since the last tick and
// drains / reactivates scaler-owned nodes toward the desired count.
func (r *clusterRun) autoscale(now float64, ops *serve.FleetOps) {
	devs := ops.Devices()
	var backlog float64
	up := 0
	for i := range devs {
		if devs[i].Down {
			continue
		}
		up++
		if w := devs[i].Free - now; w > 0 {
			backlog += w
		}
	}
	if up > 0 {
		backlog /= float64(up)
	}
	arrived := r.tickServed + r.tickDropped
	att := 1.0
	if arrived > 0 {
		att = float64(r.tickServed-r.tickMissed) / float64(arrived)
	}
	r.tickServed, r.tickMissed, r.tickDropped = 0, 0, 0

	active := r.activeNodes()
	desired := r.scaler.Scale(now, View{
		Nodes: len(r.cfg.Nodes), Active: active,
		Backlog: backlog, Attainment: att,
	})
	if desired < 1 {
		desired = 1
	}
	if desired > len(r.cfg.Nodes) {
		desired = len(r.cfg.Nodes)
	}
	for desired > active {
		// Scale out: reactivate the lowest scaler-drained node.
		n := -1
		for i, by := range r.downBy {
			if by == downByScaler {
				n = i
				break
			}
		}
		if n < 0 {
			break
		}
		r.restoreNode(n, downByScaler, ops)
		active++
	}
	for desired < active && active > 1 {
		// Scale in: drain the highest up node (node 0 never scales in).
		n := -1
		for i := len(r.downBy) - 1; i > 0; i-- {
			if r.downBy[i] == nodeUp {
				n = i
				break
			}
		}
		if n < 0 {
			break
		}
		r.takeNode(n, downByScaler, fevDrain, ops)
		active--
	}
}

// rebalance moves sessions from the most-loaded node to the least-loaded one
// (sessions per device) until the imbalance is within slack or the per-tick
// move cap is hit.
func (r *clusterRun) rebalance(_ float64, ops *serve.FleetOps) {
	slack := r.cfg.Rebalance.Slack
	if slack < 1 {
		slack = 1
	}
	devs := ops.Devices()
	for moves := 0; moves < r.cfg.Rebalance.MaxMoves; moves++ {
		// Per-node load over up nodes.
		hiN, loN := -1, -1
		var hiLoad, loLoad float64
		for n := range r.cfg.Nodes {
			if r.downBy[n] != nodeUp {
				continue
			}
			sessions := 0
			for d := r.comp.lo[n]; d < r.comp.hi[n]; d++ {
				sessions += devs[d].ActiveSessions
			}
			load := float64(sessions) / float64(r.comp.hi[n]-r.comp.lo[n])
			if hiN < 0 || load > hiLoad {
				hiN, hiLoad = n, load
			}
			if loN < 0 || load < loLoad {
				loN, loLoad = n, load
			}
		}
		if hiN < 0 || hiN == loN || hiLoad-loLoad <= slack {
			return
		}
		// Busiest device with an occupant on the hot node; its lowest session.
		srcD, srcSessions := -1, -1
		for d := r.comp.lo[hiN]; d < r.comp.hi[hiN]; d++ {
			if devs[d].ActiveSessions > srcSessions {
				if on := ops.SessionsOn(d); len(on) > 0 {
					srcD, srcSessions = d, devs[d].ActiveSessions
				}
			}
		}
		if srcD < 0 {
			return
		}
		s := ops.SessionsOn(srcD)[0]
		// Emptiest device on the cold node.
		dstD := r.comp.lo[loN]
		for d := dstD + 1; d < r.comp.hi[loN]; d++ {
			if devs[d].ActiveSessions < devs[dstD].ActiveSessions {
				dstD = d
			}
		}
		ops.Migrate(s, dstD)
	}
}

// observe chains the windowed SLO accounting in front of the user observer.
func (r *clusterRun) observe(inner serve.Observer) serve.Observer {
	return serve.ObserverFunc(func(ev serve.Event) {
		switch ev.Kind {
		case serve.EventFrameServed, serve.EventDeadlineMissed, serve.EventFrameDropped:
			w := int(ev.Time / r.winW)
			if w >= len(r.winServed) {
				w = len(r.winServed) - 1
			}
			switch ev.Kind {
			case serve.EventFrameServed:
				r.winServed[w]++
				r.tickServed++
			case serve.EventDeadlineMissed:
				r.winMissed[w]++
				r.tickMissed++
			case serve.EventFrameDropped:
				r.winDropped[w]++
				r.tickDropped++
			default:
				// unreachable: the outer case narrows to these three kinds
			}
		default:
			// every other event kind is outside the SLO window accounting
		}
		if inner != nil {
			inner.Observe(ev)
		}
	})
}

// Run executes the cluster simulation: the topology compiles to one
// serve.Config over the flattened device fleet, with the composite balancer,
// migration pricer and controller wired in, and the fleet result folds back
// into per-node metrics and the windowed SLO series.
func Run(cfg Config) Result {
	validateCluster(cfg)
	for i := range cfg.Nodes {
		if cfg.Nodes[i].Name == "" {
			cfg.Nodes[i].Name = fmt.Sprintf("node%d", i)
		}
	}
	nNodes := len(cfg.Nodes)

	sc := cfg.Base
	sc.Dev = cfg.Nodes[0].Spec
	sc.Devices = 0
	for _, n := range cfg.Nodes {
		sc.Devices += n.Devices
	}
	if !uniformSpecs(cfg.Nodes) {
		sc.DevSpecs = make([]hwsim.DeviceSpec, 0, sc.Devices)
		for _, n := range cfg.Nodes {
			for d := 0; d < n.Devices; d++ {
				sc.DevSpecs = append(sc.DevSpecs, n.Spec)
			}
		}
	} else {
		sc.DevSpecs = nil
	}

	router := cfg.Router
	if router == nil {
		router = &roundRobinRouter{}
	}
	inner := cfg.NodeBalancer
	if inner == nil {
		inner = func() serve.Balancer { return serve.NewRoundRobin() }
	}
	nClasses := len(sc.Classes)
	if nClasses == 0 {
		nClasses = 1
	}
	comp := newCompositeBalancer(cfg.Nodes, router, inner, nClasses)
	sc.Balancer = comp
	sc.Migration = serve.MigrationConfig{Cost: migrationPricer(cfg, comp.devNode)}

	run := &clusterRun{
		cfg: cfg, comp: comp, scaler: cfg.Autoscaler,
		downBy: make([]int, nNodes),
		initPending: cfg.Autoscaler != nil &&
			cfg.InitialNodes > 0 && cfg.InitialNodes < nNodes,
	}
	run.fevents = compileFaults(cfg.Faults)
	run.winW = cfg.ControlInterval
	if run.winW <= 0 {
		run.winW = 1
	}
	nW := int(math.Ceil(sc.Duration / run.winW))
	if nW < 1 {
		nW = 1
	}
	run.winServed = make([]int, nW)
	run.winMissed = make([]int, nW)
	run.winDropped = make([]int, nW)
	sc.Observer = run.observe(cfg.Base.Observer)

	if run.initPending {
		// Pre-avoid the cold nodes so t=0 arrivals (which sort before the
		// t=0 control tick) already route to the initial set.
		for n := cfg.InitialNodes; n < nNodes; n++ {
			comp.avoid[n] = true
		}
	}
	needControl := len(run.fevents) > 0 || run.scaler != nil ||
		cfg.Rebalance.MaxMoves > 0 || run.initPending
	if needControl {
		interval, at := run.tickTimes()
		sc.Control = serve.ControlConfig{
			Interval: interval, At: at,
			Controller: run.control,
		}
	}

	sres := serve.Run(sc)

	res := Result{Serve: sres, PerNode: make([]NodeMetrics, nNodes)}
	for n := range res.PerNode {
		nm := &res.PerNode[n]
		nm.Name, nm.Region = cfg.Nodes[n].Name, cfg.Nodes[n].Region
		nm.Devices = cfg.Nodes[n].Devices
		for d := comp.lo[n]; d < comp.hi[n]; d++ {
			dm := &sres.PerDevice[d]
			nm.Sessions += dm.Sessions
			nm.FramesServed += dm.FramesServed
			nm.QueriesServed += dm.QueriesServed
			nm.Utilization += dm.Utilization
			nm.MigrationsIn += dm.MigrationsIn
			nm.MigrationsOut += dm.MigrationsOut
			nm.MigrationTime += dm.MigrationTime
			nm.Degradations += dm.Degradations
			nm.Restorations += dm.Restorations
		}
		nm.Utilization /= float64(nm.Devices)
	}
	res.Windows = make([]Window, nW)
	for w := range res.Windows {
		win := &res.Windows[w]
		win.Start = float64(w) * run.winW
		win.End = win.Start + run.winW
		if win.End > sc.Duration {
			win.End = sc.Duration
		}
		win.FramesServed = run.winServed[w]
		win.DeadlineMisses = run.winMissed[w]
		win.FramesDropped = run.winDropped[w]
		win.Attained = 1
		if arrived := win.FramesServed + win.FramesDropped; arrived > 0 {
			win.Attained = float64(win.FramesServed-win.DeadlineMisses) / float64(arrived)
		}
	}
	return res
}
