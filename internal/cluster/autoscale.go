package cluster

import (
	"strings"

	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// View is the autoscaler's load summary at a control tick.
type View struct {
	// Nodes is the configured cluster size; Active the nodes in service.
	Nodes, Active int
	// Backlog is the mean queued seconds per in-service device (how far
	// behind real time the fleet's timelines run).
	Backlog float64
	// Attainment is the frame SLO attainment over the frames that arrived
	// since the previous tick (1 when none arrived).
	Attainment float64
}

// Autoscaler decides each control tick how many nodes should be in service;
// the cluster controller drains or reactivates scaler-owned nodes toward the
// returned count (clamped to [1, Nodes]). Fault-downed nodes stay down
// regardless.
type Autoscaler interface {
	Name() string
	Reset(nodes int)
	Scale(now float64, v View) int
}

// queueScaler scales on backlog: one node out above hi queued seconds per
// device, one node in below lo.
type queueScaler struct{ hi, lo float64 }

func (queueScaler) Name() string { return "queue" }
func (queueScaler) Reset(int)    {}
func (s queueScaler) Scale(_ float64, v View) int {
	switch {
	case v.Backlog > s.hi:
		return v.Active + 1
	case v.Backlog < s.lo:
		return v.Active - 1
	}
	return v.Active
}

// sloScaler scales on SLO attainment: one node out while attainment runs
// below target, one node in when attainment holds and the backlog is below
// lo (capacity is provably spare).
type sloScaler struct{ target, lo float64 }

func (sloScaler) Name() string { return "slo" }
func (sloScaler) Reset(int)    {}
func (s sloScaler) Scale(_ float64, v View) int {
	switch {
	case v.Attainment < s.target:
		return v.Active + 1
	case v.Backlog < s.lo:
		return v.Active - 1
	}
	return v.Active
}

// autoscalers is the autoscaler registry: CLIs resolve -autoscale specs here.
var autoscalers = named.New[func(*policyspec.Spec) (Autoscaler, error)]("cluster", "autoscaler")

func init() {
	RegisterAutoscaler("queue", func(sp *policyspec.Spec) (Autoscaler, error) {
		s := queueScaler{hi: sp.Float("hi", 1), lo: sp.Float("lo", 0.1)}
		return s, sp.CheckConsumed("hi", "lo")
	})
	RegisterAutoscaler("slo", func(sp *policyspec.Spec) (Autoscaler, error) {
		s := sloScaler{target: sp.Float("target", 0.95), lo: sp.Float("lo", 0.1)}
		return s, sp.CheckConsumed("target", "lo")
	})
}

// RegisterAutoscaler adds an autoscaler factory under name (lower-cased);
// duplicates panic — registry names are part of the CLI surface.
func RegisterAutoscaler(name string, f func(*policyspec.Spec) (Autoscaler, error)) {
	autoscalers.Register(name, f)
}

// AutoscalerNames returns the registered autoscaler names, sorted.
func AutoscalerNames() []string { return autoscalers.Names() }

// ParseAutoscaler builds an autoscaler from a policyspec string, e.g.
// "queue(hi=2,lo=0.2)" or "slo(target=0.99)"; "" and "none" disable
// autoscaling (nil scaler).
func ParseAutoscaler(spec string) (Autoscaler, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return nil, err
	}
	f, ok := autoscalers.Lookup(sp.Name)
	if !ok {
		return nil, autoscalers.Unknown(sp.Name)
	}
	return f(sp)
}
