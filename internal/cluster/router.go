package cluster

import (
	"fmt"
	"strings"

	"vrex/internal/named"
	"vrex/internal/policyspec"
	"vrex/internal/serve"
)

// NodeState is the router's live view of one node at placement time,
// aggregated from the node's devices in the current placement view (down
// devices are filtered out before routing, so Devices can be smaller than
// TotalDevices — or zero for a fully down node, which routers must skip).
type NodeState struct {
	Index        int
	Name, Region string
	// Devices counts the node's placeable devices in the current view;
	// TotalDevices its configured size.
	Devices, TotalDevices int
	// ActiveSessions / ResidentKV / FreePages / CapacityPages sum the view
	// devices' balancer-visible state.
	ActiveSessions           int
	ResidentKV               int
	FreePages, CapacityPages int
	// ClassSessions counts the node's active sessions per stream class.
	ClassSessions []int
	// Free is the earliest queue-drain time among the view devices.
	Free float64
}

// Router places arriving sessions on cluster nodes; a per-node balancer then
// picks the device within the chosen node. Implementations may carry state;
// Reset runs once before the first placement. Route must return a node with
// Devices > 0.
type Router interface {
	Name() string
	Reset(nodes int)
	Route(now float64, class int, nodes []NodeState) int
}

// roundRobinRouter cycles through nodes in index order, skipping nodes with
// no placeable devices.
type roundRobinRouter struct{ next int }

func (*roundRobinRouter) Name() string { return "round-robin" }
func (r *roundRobinRouter) Reset(int)  { r.next = 0 }
func (r *roundRobinRouter) Route(_ float64, _ int, nodes []NodeState) int {
	for i := 0; i < len(nodes); i++ {
		n := r.next % len(nodes)
		r.next++
		if nodes[n].Devices > 0 {
			return n
		}
	}
	return 0
}

// leastLoadedRouter picks the node with the fewest active sessions per
// placeable device, breaking ties by smaller resident KV, earlier
// queue-drain, then lower index. Load is normalised per device so a big node
// is allowed proportionally more sessions than a small one.
type leastLoadedRouter struct{}

func (leastLoadedRouter) Name() string { return "least-loaded" }
func (leastLoadedRouter) Reset(int)    {}
func (leastLoadedRouter) Route(_ float64, _ int, nodes []NodeState) int {
	return leastLoadedNode(nodes)
}

func leastLoadedNode(nodes []NodeState) int {
	best := -1
	for i := range nodes {
		if nodes[i].Devices == 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		a, b := &nodes[i], &nodes[best]
		// Compare sessions/device as cross-multiplied integers (exact).
		al := a.ActiveSessions * b.Devices
		bl := b.ActiveSessions * a.Devices
		switch {
		case al != bl:
			if al < bl {
				best = i
			}
		case a.ResidentKV != b.ResidentKV:
			if a.ResidentKV < b.ResidentKV {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// kvHeadroomRouter picks the node with the most free KV pool pages (ties
// fall back to least-loaded order) — placement tracks actual memory
// pressure, which matters when nodes have heterogeneous KV budgets.
type kvHeadroomRouter struct{}

func (kvHeadroomRouter) Name() string { return "kv-headroom" }
func (kvHeadroomRouter) Reset(int)    {}
func (kvHeadroomRouter) Route(_ float64, _ int, nodes []NodeState) int {
	best := -1
	for i := range nodes {
		if nodes[i].Devices == 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		a, b := &nodes[i], &nodes[best]
		switch {
		case a.FreePages != b.FreePages:
			if a.FreePages > b.FreePages {
				best = i
			}
		case a.ActiveSessions*b.Devices != b.ActiveSessions*a.Devices:
			if a.ActiveSessions*b.Devices < b.ActiveSessions*a.Devices {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// affinityRouter co-locates sessions of the same stream class on the same
// node (locality: sessions sharing a shape share cluster layouts and CDN
// edges), under a balance constraint mirroring serve.KVAffinity at node
// granularity: nodes holding more than a balanced per-device share (plus one
// session of slack) are ineligible, and among the rest the session joins the
// node with the most active sessions of its class.
type affinityRouter struct{}

func (affinityRouter) Name() string { return "affinity" }
func (affinityRouter) Reset(int)    {}
func (affinityRouter) Route(_ float64, class int, nodes []NodeState) int {
	total, devs := 0, 0
	for i := range nodes {
		if nodes[i].Devices == 0 {
			continue
		}
		total += nodes[i].ActiveSessions
		devs += nodes[i].Devices
	}
	if devs == 0 {
		return 0
	}
	// Balanced per-device share of the population including the arriving
	// session, rounded up, plus one session of slack for affinity to act on.
	share := (total + 1 + devs - 1) / devs
	best := -1
	for i := range nodes {
		n := &nodes[i]
		if n.Devices == 0 || n.ActiveSessions >= (share+1)*n.Devices {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		a, b := n, &nodes[best]
		if a.ClassSessions[class] != b.ClassSessions[class] {
			if a.ClassSessions[class] > b.ClassSessions[class] {
				best = i
			}
			continue
		}
		switch {
		case a.ActiveSessions*b.Devices != b.ActiveSessions*a.Devices:
			if a.ActiveSessions*b.Devices < b.ActiveSessions*a.Devices {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	if best < 0 {
		return leastLoadedNode(nodes)
	}
	return best
}

// routers is the router registry: CLIs resolve -router specs here through
// the shared policyspec grammar.
var routers = named.New[func(*policyspec.Spec) (Router, error)]("cluster", "router")

func init() {
	RegisterRouter("round-robin", func(sp *policyspec.Spec) (Router, error) {
		return &roundRobinRouter{}, sp.CheckConsumed()
	})
	RegisterRouter("least-loaded", func(sp *policyspec.Spec) (Router, error) {
		return leastLoadedRouter{}, sp.CheckConsumed()
	})
	RegisterRouter("kv-headroom", func(sp *policyspec.Spec) (Router, error) {
		return kvHeadroomRouter{}, sp.CheckConsumed()
	})
	RegisterRouter("affinity", func(sp *policyspec.Spec) (Router, error) {
		return affinityRouter{}, sp.CheckConsumed()
	})
}

// RegisterRouter adds a router factory under name (lower-cased); duplicates
// panic — registry names are part of the CLI surface.
func RegisterRouter(name string, f func(*policyspec.Spec) (Router, error)) {
	routers.Register(name, f)
}

// RouterNames returns the registered router names, sorted.
func RouterNames() []string { return routers.Names() }

// ParseRouter builds a router from a policyspec string ("round-robin",
// "least-loaded", "kv-headroom", "affinity"); "" defaults to round-robin.
func ParseRouter(spec string) (Router, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &roundRobinRouter{}, nil
	}
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return nil, err
	}
	f, ok := routers.Lookup(sp.Name)
	if !ok {
		return nil, routers.Unknown(sp.Name)
	}
	return f(sp)
}

// compositeBalancer implements serve.Balancer over the flattened cluster
// fleet: the router picks a node from aggregated node states, then the
// node's own balancer picks the device within it. With a single node the
// composite delegates directly to the node balancer, so a one-node cluster
// assigns byte-identically to serve.Run with that balancer.
type compositeBalancer struct {
	router Router
	// inners is one device balancer per node (independent state, so e.g. a
	// round-robin cursor is per node).
	inners []serve.Balancer
	// lo/hi are each node's device-index range in the flattened fleet;
	// devNode maps device index back to node.
	lo, hi  []int
	devNode []int
	names   []string
	regions []string
	classes int
	// avoid marks nodes the cluster controller is draining (or holding cold
	// for the autoscaler): their devices are dropped from the placement view
	// even while still up, so evacuated sessions never hop to a sibling
	// device that is about to go down too. If every placeable device is
	// avoided, the marks are ignored — work must land somewhere.
	avoid []bool

	// Per-assignment scratch, reused to keep placement allocation-free on
	// the steady state.
	nodes     []NodeState
	classScr  [][]int
	positions [][]int
	sub       []serve.DeviceState
}

func newCompositeBalancer(nodes []NodeSpec, router Router, inner func() serve.Balancer, classes int) *compositeBalancer {
	b := &compositeBalancer{router: router, classes: classes}
	for i, n := range nodes {
		start := 0
		if i > 0 {
			start = b.hi[i-1]
		}
		b.lo = append(b.lo, start)
		b.hi = append(b.hi, start+n.Devices)
		b.inners = append(b.inners, inner())
		b.names = append(b.names, n.Name)
		b.regions = append(b.regions, n.Region)
		for d := 0; d < n.Devices; d++ {
			b.devNode = append(b.devNode, i)
		}
	}
	b.nodes = make([]NodeState, len(nodes))
	b.classScr = make([][]int, len(nodes))
	b.positions = make([][]int, len(nodes))
	b.avoid = make([]bool, len(nodes))
	for i := range b.classScr {
		b.classScr[i] = make([]int, classes)
	}
	return b
}

// Name implements serve.Balancer.
func (b *compositeBalancer) Name() string { return "cluster:" + b.router.Name() }

// Reset implements serve.Balancer.
func (b *compositeBalancer) Reset(int) {
	b.router.Reset(len(b.inners))
	for i, in := range b.inners {
		in.Reset(b.hi[i] - b.lo[i])
	}
}

// nodeStates aggregates the placement view into per-node states. The view
// may be the full fleet or a down-filtered subset (Index survives
// filtering); positions records where each node's devices sit in the view.
func (b *compositeBalancer) nodeStates(devices []serve.DeviceState) []NodeState {
	b.buildStates(devices, true)
	placeable := false
	for i := range b.nodes {
		if b.nodes[i].Devices > 0 {
			placeable = true
			break
		}
	}
	if !placeable {
		// Every viewed device sits on an avoided node; ignore the marks.
		b.buildStates(devices, false)
	}
	return b.nodes
}

func (b *compositeBalancer) buildStates(devices []serve.DeviceState, honorAvoid bool) {
	for i := range b.nodes {
		cs := b.classScr[i]
		for c := range cs {
			cs[c] = 0
		}
		b.nodes[i] = NodeState{
			Index: i, Name: b.names[i], Region: b.regions[i],
			TotalDevices: b.hi[i] - b.lo[i], ClassSessions: cs,
		}
		b.positions[i] = b.positions[i][:0]
	}
	for p := range devices {
		d := &devices[p]
		ni := b.devNode[d.Index]
		if honorAvoid && b.avoid[ni] {
			continue
		}
		n := &b.nodes[ni]
		if n.Devices == 0 || d.Free < n.Free {
			n.Free = d.Free
		}
		n.Devices++
		n.ActiveSessions += d.ActiveSessions
		n.ResidentKV += d.ResidentKV
		n.FreePages += d.FreePages
		n.CapacityPages += d.CapacityPages
		for c, k := range d.ClassSessions {
			n.ClassSessions[c] += k
		}
		b.positions[ni] = append(b.positions[ni], p)
	}
}

// Assign implements serve.Balancer.
func (b *compositeBalancer) Assign(now float64, class int, devices []serve.DeviceState) int {
	if len(b.inners) == 1 {
		// Single node: the node balancer IS the fleet balancer.
		return b.inners[0].Assign(now, class, devices)
	}
	nodes := b.nodeStates(devices)
	n := b.router.Route(now, class, nodes)
	if n < 0 || n >= len(nodes) || nodes[n].Devices == 0 {
		panic(fmt.Sprintf("cluster: router %q returned node %d (devices in view: %v)",
			b.router.Name(), n, len(devices)))
	}
	pos := b.positions[n]
	if len(pos) == len(devices) {
		// Whole view is this node (can happen when every other node is down).
		d := b.inners[n].Assign(now, class, devices)
		return pos[d]
	}
	sub := b.sub[:0]
	for _, p := range pos {
		sub = append(sub, devices[p])
	}
	b.sub = sub
	d := b.inners[n].Assign(now, class, sub)
	if d < 0 || d >= len(sub) {
		panic(fmt.Sprintf("cluster: node %d balancer returned device %d of %d", n, d, len(sub)))
	}
	return pos[d]
}
