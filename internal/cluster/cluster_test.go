package cluster

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"vrex/internal/hwsim"
	"vrex/internal/serve"
)

// baseServe is the shared workload: 1 FPS streams (one VRex8 sustains ~5.8
// frames/s, so a drained node's sessions consolidate without overload).
func baseServe(streams int) serve.Config {
	sc := serve.DefaultStreamConfig()
	sc.QueryEvery = 0
	sc.FPS = 1
	return serve.Config{
		Pol:           hwsim.ReSVModel(),
		Streams:       streams,
		Duration:      20,
		Stream:        sc,
		DropThreshold: 4,
		Seed:          1,
	}
}

func twoNodes() []NodeSpec {
	return []NodeSpec{
		{Name: "a", Region: "us", Spec: hwsim.VRex8(), Devices: 2},
		{Name: "b", Region: "us", Spec: hwsim.VRex8(), Devices: 2},
	}
}

func TestSingleNodeReducesToServe(t *testing.T) {
	// A one-node, no-fault cluster must compile to exactly the serve run it
	// wraps: same balancer behaviour (the composite delegates), no control
	// plane, homogeneous sim sharing.
	for _, devices := range []int{1, 3} {
		direct := baseServe(4)
		direct.Dev = hwsim.VRex8()
		direct.Devices = devices
		want := serve.Run(direct)

		got := Run(Config{
			Nodes: []NodeSpec{{Spec: hwsim.VRex8(), Devices: devices}},
			Base:  baseServe(4),
		})
		if !reflect.DeepEqual(want, got.Serve) {
			t.Fatalf("devices=%d: single-node cluster diverged from serve.Run", devices)
		}
		if got.PerNode[0].FramesServed != want.Aggregate.FramesServed {
			t.Fatalf("node metrics lost frames: %d != %d",
				got.PerNode[0].FramesServed, want.Aggregate.FramesServed)
		}
	}
}

func TestSingleNodeSchedulerAndKVReduces(t *testing.T) {
	// The reduction must hold with the scheduler and memory-pressure planes
	// on too — the cluster compiler may not perturb either.
	mk := func() serve.Config {
		cfg := baseServe(4)
		cfg.Dev = hwsim.VRex8()
		cfg.Scheduler = serve.SchedulerConfig{Policy: mustScheduler(t, "edf"), BatchMax: 4}
		cfg.KV = serve.KVConfig{Capacity: serve.AutoCapacity}
		return cfg
	}
	direct := mk()
	direct.Devices = 2
	want := serve.Run(direct)
	got := Run(Config{
		Nodes: []NodeSpec{{Spec: hwsim.VRex8(), Devices: 2}},
		Base:  mk(),
	})
	if !reflect.DeepEqual(want, got.Serve) {
		t.Fatal("single-node cluster with scheduler+KV diverged from serve.Run")
	}
}

func TestMultiNodeSpreadsLoad(t *testing.T) {
	res := Run(Config{Nodes: twoNodes(), Base: baseServe(8)})
	if res.PerNode[0].Sessions == 0 || res.PerNode[1].Sessions == 0 {
		t.Fatalf("round-robin router left a node empty: %+v", res.PerNode)
	}
	if got := res.PerNode[0].Sessions + res.PerNode[1].Sessions; got != 8 {
		t.Fatalf("placed %d sessions, want 8", got)
	}
	if res.Serve.Migrations.Live != 0 || res.Serve.Migrations.Lossy != 0 {
		t.Fatalf("no controller, yet migrations happened: %+v", res.Serve.Migrations)
	}
}

func TestDrainMigratesAndPricesMoves(t *testing.T) {
	cfg := Config{
		Nodes:  twoNodes(),
		Base:   baseServe(8),
		Faults: []Fault{{Kind: FaultDrain, Node: 1, At: 10}},
	}
	res := Run(cfg)
	// All of node b's sessions must have moved to node a, paying real
	// transfer time on both legs.
	mig := res.Serve.Migrations
	if mig.Live == 0 {
		t.Fatal("drain moved nothing")
	}
	if mig.Lossy != 0 {
		t.Fatalf("drain must migrate live, got %d lossy", mig.Lossy)
	}
	if !(mig.Time > 0) || mig.Tokens == 0 {
		t.Fatalf("migration must cost time and move tokens: %+v", mig)
	}
	if res.PerNode[1].MigrationsOut != mig.Live || res.PerNode[0].MigrationsIn != mig.Live {
		t.Fatalf("node migration counters off: %+v", res.PerNode)
	}
	if !(res.PerNode[0].MigrationTime > 0) || !(res.PerNode[1].MigrationTime > 0) {
		t.Fatalf("both nodes' timelines must be charged: %+v", res.PerNode)
	}
	for s, m := range res.Serve.PerStream {
		if m.Device >= 2 { // node b holds devices 2,3
			t.Fatalf("session %d still on drained node (device %d)", s, m.Device)
		}
	}
	if res.Serve.Aggregate.FramesDropped != 0 {
		t.Fatalf("consolidation onto node a must not overload it: %d drops",
			res.Serve.Aggregate.FramesDropped)
	}
	// Deterministic for any worker count.
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Base.Workers = w
		if !reflect.DeepEqual(res, Run(c)) {
			t.Fatalf("workers=%d changed the cluster result", w)
		}
	}
}

func TestFailIsLossyAndDipsSLO(t *testing.T) {
	// One device per node so the survivor overloads when node b fails: 8
	// sessions at 1 FPS need ~1.4 devices of VRex8 capacity.
	cfg := Config{
		Nodes: []NodeSpec{
			{Name: "a", Region: "us", Spec: hwsim.VRex8(), Devices: 1},
			{Name: "b", Region: "us", Spec: hwsim.VRex8(), Devices: 1},
		},
		Base:   baseServe(8),
		Faults: []Fault{{Kind: FaultFail, Node: 1, At: 10, Recover: 15}},
	}
	cfg.Base.Scheduler = serve.SchedulerConfig{Policy: mustScheduler(t, "edf"), BatchMax: 8}
	res := Run(cfg)
	if res.Serve.Migrations.Lossy == 0 {
		t.Fatal("failure must re-place sessions lossily")
	}
	if res.Serve.Migrations.Live != 0 {
		t.Fatalf("failure re-placement must not count as live: %+v", res.Serve.Migrations)
	}
	// The windows around the failure must show a worse outcome than the
	// steady state before it (frames arriving just before t=10 sit queued
	// when the device dies, so the dip lands in the windows from 9 on).
	pre := res.Windows[7]
	worst := 1.0
	for _, w := range res.Windows[9:16] {
		if w.Attained < worst {
			worst = w.Attained
		}
	}
	if !(worst < pre.Attained) {
		t.Fatalf("failure must dip windowed SLO attainment: pre=%.3f worst=%.3f", pre.Attained, worst)
	}
	// And the dip must be deterministic.
	if !reflect.DeepEqual(res, Run(cfg)) {
		t.Fatal("failure run not deterministic")
	}
}

func TestCrossRegionMigrationCostsMore(t *testing.T) {
	run := func(regionB string) Result {
		nodes := twoNodes()
		nodes[1].Region = regionB
		return Run(Config{
			Nodes:  nodes,
			Base:   baseServe(8),
			Faults: []Fault{{Kind: FaultDrain, Node: 1, At: 10}},
		})
	}
	lan := run("us")
	wan := run("eu")
	if lan.Serve.Migrations.Live != wan.Serve.Migrations.Live {
		t.Fatalf("same drain, different move counts: %d vs %d",
			lan.Serve.Migrations.Live, wan.Serve.Migrations.Live)
	}
	if !(wan.Serve.Migrations.Time > lan.Serve.Migrations.Time) {
		t.Fatalf("WAN migration must cost more than LAN: wan=%.4f lan=%.4f",
			wan.Serve.Migrations.Time, lan.Serve.Migrations.Time)
	}
}

func TestMigrationCostMatchesHandComputed(t *testing.T) {
	// Pin the pricer against hand-computed memsim numbers: a cross-region
	// move of kv tokens is PageOut(src) + WAN transfer on both legs +
	// PageIn(dst).
	cfg := Config{
		Nodes: []NodeSpec{
			{Region: "us", Spec: hwsim.VRex8(), Devices: 1},
			{Region: "eu", Spec: hwsim.VRex8(), Devices: 1},
		},
		Base: baseServe(2),
	}
	devNode := []int{0, 1}
	cost := migrationPricer(cfg, devNode)

	kv := 1000
	llm := hwsim.Llama3_8B()
	bpt := cfg.Base.Pol.KVBytesPerToken(llm)
	pageTokens := serve.DefaultPageTokens
	pages := (kv + pageTokens - 1) / pageTokens
	spec := hwsim.VRex8()
	bytes := float64(kv) * bpt

	// Source leg: page out through the node's PCIe/SSD mover, then the WAN.
	pcie := spec.Link.TransferTime(float64(pages)*bpt*float64(pageTokens), pages)
	if spec.OffloadSSD != nil {
		if st := spec.OffloadSSD.ReadTime(float64(pages)*bpt*float64(pageTokens), pages); st > pcie {
			pcie = st
		}
	} else if ht := spec.HostMem.AccessTime(float64(pages) * bpt * float64(pageTokens)); ht > pcie {
		pcie = ht
	}
	net := NetConfig{}.wan().TransferTime(bytes, pages)
	wantSrc := pcie + net
	wantDst := net + pcie // same spec both sides: PageIn == PageOut

	gotSrc, gotDst := cost(0, 1, kv)
	if math.Abs(gotSrc-wantSrc) > 1e-12 || math.Abs(gotDst-wantDst) > 1e-12 {
		t.Fatalf("cost(0,1,%d) = (%.9g, %.9g), want (%.9g, %.9g)",
			kv, gotSrc, gotDst, wantSrc, wantDst)
	}
	// Intra-node moves skip the network leg entirely.
	srcOnly, dstOnly := cost(0, 0, kv)
	_ = srcOnly
	_ = dstOnly
	// Zero tokens move nothing.
	if s, d := cost(0, 1, 0); s != 0 || d != 0 {
		t.Fatalf("zero-token move must be free, got (%v, %v)", s, d)
	}
}

func TestAutoscalerScalesOut(t *testing.T) {
	// Start on one node with an overloading population; the queue scaler
	// must bring node b into service and node b must end up doing work.
	// The rebalancer is what physically moves sessions onto the node the
	// scaler brings up — scale-out alone only makes it routable.
	cfg := Config{
		Nodes:           twoNodes(),
		Base:            baseServe(24),
		Autoscaler:      mustAutoscaler(t, "queue(hi=0.5,lo=0.01)"),
		InitialNodes:    1,
		Rebalance:       RebalanceConfig{MaxMoves: 6, Slack: 1},
		ControlInterval: 1,
	}
	cfg.Base.Stream.FPS = 2
	res := Run(cfg)
	if res.PerNode[1].FramesServed == 0 {
		t.Fatalf("autoscaler never used node b: %+v", res.PerNode)
	}
	// Deterministic.
	if !reflect.DeepEqual(res, Run(cfg)) {
		t.Fatal("autoscaled run not deterministic")
	}
}

func TestAutoscalerHoldsColdNodesInitially(t *testing.T) {
	// With a scaler that never scales out, InitialNodes=1 must keep all
	// sessions on node a for the whole run.
	cfg := Config{
		Nodes:           twoNodes(),
		Base:            baseServe(4),
		Autoscaler:      mustAutoscaler(t, "queue(hi=1e18,lo=-1)"),
		InitialNodes:    1,
		ControlInterval: 1,
	}
	res := Run(cfg)
	if res.PerNode[1].Sessions != 0 || res.PerNode[1].FramesServed != 0 {
		t.Fatalf("cold node b saw traffic: %+v", res.PerNode[1])
	}
}

func TestRebalanceEvensLoad(t *testing.T) {
	// Affinity-free imbalance: a router that dumps everything on node a,
	// then the rebalancer must move sessions toward node b.
	bad := &staticRouter{node: 0}
	cfg := Config{
		Nodes:           twoNodes(),
		Base:            baseServe(8),
		Router:          bad,
		Rebalance:       RebalanceConfig{MaxMoves: 4, Slack: 1},
		ControlInterval: 1,
	}
	res := Run(cfg)
	if res.Serve.Migrations.Live == 0 {
		t.Fatal("rebalancer moved nothing off the hot node")
	}
	if res.PerNode[1].MigrationsIn == 0 {
		t.Fatalf("node b received no sessions: %+v", res.PerNode)
	}
}

// staticRouter always routes to one node (test-only pathological router).
type staticRouter struct{ node int }

func (r *staticRouter) Name() string { return "static" }
func (r *staticRouter) Reset(int)    {}
func (r *staticRouter) Route(_ float64, _ int, nodes []NodeState) int {
	if nodes[r.node].Devices > 0 {
		return r.node
	}
	return leastLoadedNode(nodes)
}

func TestHeterogeneousNodes(t *testing.T) {
	// A V-Rex node and an Orin node: the fleet compiles with per-device
	// specs and the Orin's devices price work on their own (slower) model.
	cfg := Config{
		Nodes: []NodeSpec{
			{Name: "dc", Region: "us", Spec: hwsim.VRex8(), Devices: 1},
			{Name: "edge", Region: "edge", Spec: hwsim.AGXOrin(), Devices: 1},
		},
		Base:   baseServe(2),
		Router: leastLoadedRouter{},
	}
	res := Run(cfg)
	if got := res.PerNode[0].Sessions + res.PerNode[1].Sessions; got != 2 {
		t.Fatalf("placed %d sessions, want 2", got)
	}
	var vrex, orin serve.StreamMetrics
	for _, m := range res.Serve.PerStream {
		if m.Device == 0 {
			vrex = m
		} else {
			orin = m
		}
	}
	if !(orin.P50 > vrex.P50) {
		t.Fatalf("Orin must serve frames slower than V-Rex: orin p50=%.4f vrex p50=%.4f",
			orin.P50, vrex.P50)
	}
}

func TestRoutersAllValid(t *testing.T) {
	for _, name := range RouterNames() {
		r, err := ParseRouter(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := Config{Nodes: twoNodes(), Base: baseServe(6), Router: r}
		res := Run(cfg)
		if res.Serve.Aggregate.FramesServed == 0 {
			t.Fatalf("router %s served nothing", name)
		}
		if got := res.PerNode[0].Sessions + res.PerNode[1].Sessions; got != 6 {
			t.Fatalf("router %s placed %d sessions, want 6", name, got)
		}
	}
}

func mustScheduler(t *testing.T, spec string) serve.Scheduler {
	t.Helper()
	p, err := serve.ParseScheduler(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAutoscaler(t *testing.T, spec string) Autoscaler {
	t.Helper()
	a, err := ParseAutoscaler(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseRouterAndAutoscaler(t *testing.T) {
	if _, err := ParseRouter("nope"); err == nil {
		t.Fatal("unknown router must error")
	}
	if _, err := ParseRouter("round-robin(bogus=1)"); err == nil {
		t.Fatal("unknown router parameter must error")
	}
	r, err := ParseRouter("")
	if err != nil || r.Name() != "round-robin" {
		t.Fatalf("empty router spec must default to round-robin, got %v, %v", r, err)
	}
	if a, err := ParseAutoscaler(""); err != nil || a != nil {
		t.Fatalf("empty autoscaler spec must disable, got %v, %v", a, err)
	}
	if a, err := ParseAutoscaler("none"); err != nil || a != nil {
		t.Fatalf("none autoscaler must disable, got %v, %v", a, err)
	}
	if _, err := ParseAutoscaler("queue(bogus=1)"); err == nil {
		t.Fatal("unknown autoscaler parameter must error")
	}
	a := mustAutoscaler(t, "slo(target=0.9)")
	if a.Name() != "slo" {
		t.Fatalf("got %s", a.Name())
	}
}

func TestParseNodesAndFaults(t *testing.T) {
	nodes, err := ParseNodes("a100:4@us-east, vrex8:2@eu ,agx@edge")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0].Devices != 4 || nodes[2].Devices != 1 {
		t.Fatalf("bad parse: %+v", nodes)
	}
	if nodes[1].Region != "eu" || nodes[2].Region != "edge" {
		t.Fatalf("bad regions: %+v", nodes)
	}
	if nodes[0].Spec.Name != hwsim.A100().Name {
		t.Fatalf("node 0 spec: %+v", nodes[0].Spec.Name)
	}
	// FormatNodes is a fixed point through ParseNodes.
	s := FormatNodes(nodes)
	again, err := ParseNodes(s)
	if err != nil || FormatNodes(again) != s {
		t.Fatalf("FormatNodes not a fixed point: %q -> %q (%v)", s, FormatNodes(again), err)
	}
	for _, bad := range []string{"", "warp9", "a100:0", "a100:x", "a100@"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) must error", bad)
		}
	}

	faults, err := ParseFaults("drain(node=1,at=30,recover=60); fail(node=0,at=80)")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultDrain, Node: 1, At: 30, Recover: 60},
		{Kind: FaultFail, Node: 0, At: 80},
	}
	if !reflect.DeepEqual(faults, want) {
		t.Fatalf("got %+v", faults)
	}
	fs := FormatFaults(faults)
	again2, err := ParseFaults(fs)
	if err != nil || !reflect.DeepEqual(again2, faults) {
		t.Fatalf("FormatFaults not a fixed point: %q (%v)", fs, err)
	}
	if out, err := ParseFaults(""); err != nil || out != nil {
		t.Fatalf("empty fault list: %v, %v", out, err)
	}
	for _, bad := range []string{
		"reboot(node=0,at=1)", "drain(at=1)", "drain(node=0)",
		"drain(node=0,at=5,recover=3)", "drain(node=0,at=1,bogus=2)",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) must error", bad)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	expectPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		Run(cfg)
	}
	expectPanic("no nodes", Config{Base: baseServe(1)})
	expectPanic("zero devices", Config{
		Nodes: []NodeSpec{{Spec: hwsim.VRex8()}}, Base: baseServe(1),
	})
	expectPanic("fault out of range", Config{
		Nodes:  []NodeSpec{{Spec: hwsim.VRex8(), Devices: 1}},
		Base:   baseServe(1),
		Faults: []Fault{{Kind: FaultDrain, Node: 3, At: 1}},
	})
	expectPanic("bad fault kind", Config{
		Nodes:  []NodeSpec{{Spec: hwsim.VRex8(), Devices: 1}},
		Base:   baseServe(1),
		Faults: []Fault{{Kind: "reboot", Node: 0, At: 1}},
	})
}
