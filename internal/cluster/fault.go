package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"vrex/internal/hwsim"
	"vrex/internal/policyspec"
)

// Fault kinds: a drain evacuates the node's sessions by live migration; a
// failure kills it, dropping queued work and losing device-side KV (lossy
// re-placement at the survivors).
const (
	FaultDrain = "drain"
	FaultFail  = "fail"
)

// Fault is one injected node outage.
type Fault struct {
	// Kind is FaultDrain or FaultFail.
	Kind string
	// Node indexes Config.Nodes.
	Node int
	// At is the outage time in simulation seconds.
	At float64
	// Recover, when positive, returns the node to service at that time
	// (must be after At); 0 means the node stays down.
	Recover float64
}

// ParseFaults parses a semicolon-separated fault list in the policyspec
// grammar, e.g. "drain(node=1,at=30,recover=60);fail(node=0,at=80)".
// Empty input means no faults.
func ParseFaults(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var faults []Fault
	for _, part := range strings.Split(s, ";") {
		sp, err := policyspec.Parse(part)
		if err != nil {
			return nil, err
		}
		if sp.Name != FaultDrain && sp.Name != FaultFail {
			return nil, fmt.Errorf("cluster: fault kind %q (want %s or %s)", sp.Name, FaultDrain, FaultFail)
		}
		if !sp.Has("node") || !sp.Has("at") {
			return nil, fmt.Errorf("cluster: fault %q needs node= and at=", strings.TrimSpace(part))
		}
		f := Fault{
			Kind: sp.Name,
			Node: sp.Int("node", 0),
			At:   sp.Float("at", 0),
		}
		f.Recover = sp.Float("recover", 0)
		if err := sp.CheckConsumed("node", "at", "recover"); err != nil {
			return nil, err
		}
		if f.Node < 0 {
			return nil, fmt.Errorf("cluster: fault targets negative node %d", f.Node)
		}
		if f.At < 0 {
			return nil, fmt.Errorf("cluster: fault at negative time %v", f.At)
		}
		if f.Recover != 0 && f.Recover <= f.At {
			return nil, fmt.Errorf("cluster: fault recover %v not after fault time %v", f.Recover, f.At)
		}
		faults = append(faults, f)
	}
	return faults, nil
}

// FormatFaults renders a fault list canonically: Parse(Format(fs)) yields fs,
// and formatting a parsed list reproduces it byte for byte (the scenario
// marshaller's fixed-point requirement).
func FormatFaults(fs []Fault) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		ps := []policyspec.Param{
			policyspec.P("node", f.Node),
			policyspec.P("at", f.At),
		}
		if f.Recover > 0 {
			ps = append(ps, policyspec.P("recover", f.Recover))
		}
		parts[i] = policyspec.Format(f.Kind, ps...)
	}
	return strings.Join(parts, ";")
}

// ParseNodes parses a comma-separated node list "spec[:devices][@region]",
// e.g. "a100:4@us-east,vrex8:2@eu,agx@edge". Device specs resolve through
// the hwsim device registry (hwsim.DeviceNames); devices defaults to 1.
func ParseNodes(s string) ([]NodeSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	var nodes []NodeSpec
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		region := ""
		if j := strings.IndexByte(part, '@'); j >= 0 {
			region = strings.TrimSpace(part[j+1:])
			part = strings.TrimSpace(part[:j])
			if region == "" {
				return nil, fmt.Errorf("cluster: node %d: empty region after @", i)
			}
		}
		devices := 1
		if j := strings.IndexByte(part, ':'); j >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(part[j+1:]))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("cluster: node %d: bad device count %q", i, part[j+1:])
			}
			devices = n
			part = strings.TrimSpace(part[:j])
		}
		name := strings.ToLower(part)
		spec, ok := hwsim.DeviceByName(name)
		if !ok {
			return nil, fmt.Errorf("cluster: node %d: unknown device %q (known: %s)",
				i, part, strings.Join(hwsim.DeviceNames(), ", "))
		}
		nodes = append(nodes, NodeSpec{
			Name:   fmt.Sprintf("node%d-%s", i, name),
			Region: region, Spec: spec, Devices: devices,
			SpecName: name,
		})
	}
	return nodes, nil
}

// FormatNodes renders a node list canonically ("spec:devices@region", region
// omitted when empty): a fixed point of ParseNodes for lists it produced.
// Nodes built by hand without SpecName cannot be formatted (panic).
func FormatNodes(nodes []NodeSpec) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		if n.SpecName == "" {
			panic(fmt.Sprintf("cluster: FormatNodes: node %d (%s) has no SpecName", i, n.Name))
		}
		p := fmt.Sprintf("%s:%d", n.SpecName, n.Devices)
		if n.Region != "" {
			p += "@" + n.Region
		}
		parts[i] = p
	}
	return strings.Join(parts, ",")
}
