package named

import (
	"reflect"
	"strings"
	"testing"
)

func TestRegisterLookupNames(t *testing.T) {
	r := New[int]("pkg", "thing")
	r.Register("Beta", 2)
	r.Register("alpha", 1, "A", "first")
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Names() = %v", got)
	}
	for _, name := range []string{"alpha", "ALPHA", " a ", "first"} {
		if v, ok := r.Lookup(name); !ok || v != 1 {
			t.Fatalf("Lookup(%q) = %v, %v", name, v, ok)
		}
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Fatal("unknown name resolved")
	}
	err := r.Unknown("gamma")
	if err == nil || !strings.Contains(err.Error(), `pkg: unknown thing "gamma" (known: alpha, beta)`) {
		t.Fatalf("Unknown() = %v", err)
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := New[int]("pkg", "thing")
	r.Register("x", 1, "y")
	for _, dup := range []string{"x", "y"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("re-registering %q should panic", dup)
				}
			}()
			r.Register(dup, 2)
		}()
	}
}
