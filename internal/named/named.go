// Package named is the small name→value registry shared by the policy,
// policy-model and balancer registries: lower-cased names, optional aliases,
// panics on duplicate registration (registry names are CLI surface), and
// sorted name listings with consistent unknown-name errors.
package named

import (
	"fmt"
	"sort"
	"strings"
)

// Registry maps lower-cased names (and aliases) to values of type T.
type Registry[T any] struct {
	// pkg and kind label panics and errors, e.g. "hwsim" / "policy".
	pkg, kind string
	items     map[string]T
	aliases   map[string]string
}

// New returns an empty registry; pkg and kind prefix its messages.
func New[T any](pkg, kind string) *Registry[T] {
	return &Registry[T]{pkg: pkg, kind: kind, items: map[string]T{}, aliases: map[string]string{}}
}

// Register adds v under name; extra names are aliases. Re-registering any
// name or alias panics.
func (r *Registry[T]) Register(name string, v T, aliases ...string) {
	name = strings.ToLower(name)
	if r.taken(name) {
		panic(fmt.Sprintf("%s: %s %q registered twice", r.pkg, r.kind, name))
	}
	r.items[name] = v
	for _, a := range aliases {
		a = strings.ToLower(a)
		if r.taken(a) {
			panic(fmt.Sprintf("%s: %s alias %q registered twice", r.pkg, r.kind, a))
		}
		r.aliases[a] = name
	}
}

func (r *Registry[T]) taken(name string) bool {
	_, dup := r.items[name]
	_, dupAlias := r.aliases[name]
	return dup || dupAlias
}

// Lookup resolves a name or alias, case-insensitively.
func (r *Registry[T]) Lookup(name string) (T, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	if canon, ok := r.aliases[name]; ok {
		name = canon
	}
	v, ok := r.items[name]
	return v, ok
}

// Names returns the canonical registered names (no aliases), sorted.
func (r *Registry[T]) Names() []string {
	names := make([]string, 0, len(r.items))
	for n := range r.items {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Unknown builds the standard unknown-name error listing valid names.
func (r *Registry[T]) Unknown(name string) error {
	return fmt.Errorf("%s: unknown %s %q (known: %s)",
		r.pkg, r.kind, name, strings.Join(r.Names(), ", "))
}
