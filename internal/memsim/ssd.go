package memsim

// SSD models an NVMe drive for KV cache offloading on edge deployments
// (Kioxia BG6-class M.2 in the paper). Reads are issued as one IO per
// contiguous segment; the drive overlaps up to QueueDepth IOs, so scattered
// reads are latency-bound while large sequential reads are bandwidth-bound —
// the behaviour MQSim captures and the KVMU's mapping optimises for.
type SSD struct {
	// ReadBandwidth is sustained sequential read bytes/second.
	ReadBandwidth float64
	// IOLatency is the per-IO service latency in seconds.
	IOLatency float64
	// QueueDepth is the number of in-flight IOs the device overlaps.
	QueueDepth int
	// ActivePower is the read-active power in watts.
	ActivePower float64
	// IdlePower is the idle power in watts.
	IdlePower float64
}

// KioxiaBG6 returns the paper's edge SSD: ~3.5 GB/s sequential read (the
// PCIe 3.0 x4 link caps it at 4 GB/s), ~60 us read latency, QD 64.
func KioxiaBG6() SSD {
	return SSD{
		ReadBandwidth: 3.5e9,
		IOLatency:     60e-6,
		QueueDepth:    64,
		ActivePower:   4.1,
		IdlePower:     0.25,
	}
}

// ReadTime returns the time to read bytes in the given number of contiguous
// segments (one IO per segment, overlapped QueueDepth at a time).
func (s SSD) ReadTime(bytes float64, segments int) float64 {
	if bytes <= 0 {
		return 0
	}
	if segments <= 0 {
		segments = 1
	}
	qd := s.QueueDepth
	if qd <= 0 {
		qd = 1
	}
	bandwidthTime := bytes / s.ReadBandwidth
	// Latency component amortised over the queue depth.
	latencyTime := float64(segments) * s.IOLatency / float64(qd)
	if latencyTime > bandwidthTime {
		return latencyTime
	}
	return bandwidthTime
}
