package memsim

import (
	"container/heap"
	"fmt"
)

// NVMeSim is an event-driven multi-queue SSD simulator in the spirit of
// MQSim: requests are submitted to submission queues, dispatched to a fixed
// number of flash channels, and serviced with per-chunk latency; channel
// parallelism and queue depth determine how much of the device's internal
// bandwidth a workload achieves. The analytic SSD model (SSD.ReadTime) is a
// closed-form approximation of this simulator; TestNVMeMatchesAnalytic keeps
// the two consistent.
type NVMeSim struct {
	// Channels is the number of independent flash channels.
	Channels int
	// ChunkBytes is the flash read unit (page granularity).
	ChunkBytes int
	// ChunkLatency is the per-chunk flash read time in seconds.
	ChunkLatency float64
	// CommandOverhead is the per-request firmware/NVMe protocol cost.
	CommandOverhead float64

	clock    float64
	channels []float64 // next-free time per channel
}

// NewNVMeSim returns a simulator roughly matching the Kioxia BG6 analytic
// model: 4 channels x 4 KiB pages; per-page latency tuned so sequential
// reads sustain ~3.5 GB/s.
func NewNVMeSim() *NVMeSim {
	s := &NVMeSim{
		Channels:        4,
		ChunkBytes:      4 * 1024,
		ChunkLatency:    4.5e-6,
		CommandOverhead: 2e-6,
	}
	s.Reset()
	return s
}

// Reset clears simulated time.
func (s *NVMeSim) Reset() {
	s.clock = 0
	s.channels = make([]float64, s.Channels)
}

// Clock returns the current simulated time.
func (s *NVMeSim) Clock() float64 { return s.clock }

// Request is one read request (a contiguous segment).
type Request struct {
	Bytes int
	// Submit is the submission time; requests may be submitted out of order.
	Submit float64
}

// channelHeap orders channels by next-free time.
type channelHeap []float64

func (h channelHeap) Len() int           { return len(h) }
func (h channelHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h channelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *channelHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *channelHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Read services the batch of requests and returns the completion time of the
// last one (relative to time zero). Each request is striped across channels
// chunk by chunk; channels serve chunks first-come-first-served.
func (s *NVMeSim) Read(reqs []Request) float64 {
	if s.Channels <= 0 || s.ChunkBytes <= 0 {
		panic(fmt.Sprintf("memsim: invalid NVMeSim config %+v", s))
	}
	h := make(channelHeap, len(s.channels))
	copy(h, s.channels)
	heap.Init(&h)
	var done float64
	for _, r := range reqs {
		if r.Bytes <= 0 {
			continue
		}
		chunks := (r.Bytes + s.ChunkBytes - 1) / s.ChunkBytes
		reqDone := r.Submit
		for c := 0; c < chunks; c++ {
			free := heap.Pop(&h).(float64)
			start := free
			if r.Submit > start {
				start = r.Submit
			}
			if c == 0 {
				start += s.CommandOverhead
			}
			end := start + s.ChunkLatency
			heap.Push(&h, end)
			if end > reqDone {
				reqDone = end
			}
		}
		if reqDone > done {
			done = reqDone
		}
	}
	copy(s.channels, h)
	s.clock = done
	return done
}

// SequentialReadTime is a convenience: one large request at time zero.
func (s *NVMeSim) SequentialReadTime(bytes int) float64 {
	s.Reset()
	return s.Read([]Request{{Bytes: bytes}})
}

// ScatteredReadTime is a convenience: many small same-size requests at time
// zero (the token-granular KV fetch pattern).
func (s *NVMeSim) ScatteredReadTime(bytes, segments int) float64 {
	s.Reset()
	if segments <= 0 {
		segments = 1
	}
	per := bytes / segments
	if per <= 0 {
		per = 1
	}
	reqs := make([]Request, segments)
	for i := range reqs {
		reqs[i] = Request{Bytes: per}
	}
	return s.Read(reqs)
}

// EffectiveBandwidth returns achieved bytes/second for a workload shape.
func (s *NVMeSim) EffectiveBandwidth(bytes, segments int) float64 {
	t := s.ScatteredReadTime(bytes, segments)
	if t <= 0 {
		return 0
	}
	return float64(bytes) / t
}
