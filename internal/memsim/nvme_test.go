package memsim

import (
	"math"
	"testing"
)

func TestNVMeSequentialBandwidth(t *testing.T) {
	s := NewNVMeSim()
	// 4 channels x 4KiB / 4.5us = ~3.6 GB/s internal.
	const bytes = 64 * 1024 * 1024
	tm := s.SequentialReadTime(bytes)
	bw := float64(bytes) / tm
	if bw < 3.0e9 || bw > 4.2e9 {
		t.Fatalf("sequential bandwidth %v, want ~3.5 GB/s", bw)
	}
}

func TestNVMeScatteredSlower(t *testing.T) {
	s := NewNVMeSim()
	const bytes = 8 * 1024 * 1024
	seq := s.SequentialReadTime(bytes)
	scat := s.ScatteredReadTime(bytes, 2048) // 4 KiB requests
	if scat <= seq {
		t.Fatalf("scattered (%v) should be slower than sequential (%v)", scat, seq)
	}
}

func TestNVMeCommandOverheadDominatesTinyRequests(t *testing.T) {
	s := NewNVMeSim()
	// 4096 x 512B requests: each pays 2us overhead + 4.5us page read over 4
	// channels -> >= 4096*(2+4.5)us/4.
	tm := s.ScatteredReadTime(4096*512, 4096)
	min := 4096 * (2e-6 + 4.5e-6) / 4
	if tm < min*0.9 {
		t.Fatalf("tiny-request time %v, want >= %v", tm, min)
	}
}

func TestNVMeZeroAndDegenerate(t *testing.T) {
	s := NewNVMeSim()
	if got := s.Read(nil); got != 0 {
		t.Fatal("no requests should finish at 0")
	}
	if got := s.Read([]Request{{Bytes: 0}}); got != 0 {
		t.Fatal("zero-byte request should be free")
	}
}

func TestNVMeSubmitTimeRespected(t *testing.T) {
	s := NewNVMeSim()
	done := s.Read([]Request{{Bytes: 1024, Submit: 1.0}})
	if done < 1.0 {
		t.Fatalf("completion %v before submission", done)
	}
}

func TestNVMeChannelParallelism(t *testing.T) {
	// Twice the channels should nearly halve a parallel workload's time.
	a := NewNVMeSim()
	b := NewNVMeSim()
	b.Channels = 8
	b.Reset()
	const bytes = 16 * 1024 * 1024
	ta := a.ScatteredReadTime(bytes, 64)
	tb := b.ScatteredReadTime(bytes, 64)
	ratio := ta / tb
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("8-channel speedup %v, want ~2x", ratio)
	}
}

func TestNVMeMatchesAnalytic(t *testing.T) {
	// The analytic SSD model and the event-driven simulator must agree
	// within 2x across workload shapes (they encode the same device).
	ssd := KioxiaBG6()
	sim := NewNVMeSim()
	for _, c := range []struct {
		bytes, segs int
	}{
		{32 << 20, 1},
		{32 << 20, 64},
		{8 << 20, 2048},
	} {
		analytic := ssd.ReadTime(float64(c.bytes), c.segs)
		event := sim.ScatteredReadTime(c.bytes, c.segs)
		ratio := event / analytic
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("bytes=%d segs=%d: event %v vs analytic %v (ratio %v)",
				c.bytes, c.segs, event, analytic, ratio)
		}
	}
}

func TestNVMeEffectiveBandwidthMonotone(t *testing.T) {
	s := NewNVMeSim()
	const bytes = 16 << 20
	prev := math.Inf(1)
	for _, segs := range []int{1, 16, 256, 4096} {
		bw := s.EffectiveBandwidth(bytes, segs)
		if bw > prev*1.05 {
			t.Fatalf("bandwidth should not improve with fragmentation: %v segs -> %v", segs, bw)
		}
		prev = bw
	}
}

func TestNVMePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := &NVMeSim{Channels: 0, ChunkBytes: 0}
	bad.Reset()
	bad.Read([]Request{{Bytes: 1}})
}

func TestBankModelStreamNearPeak(t *testing.T) {
	b := NewBankModel()
	eff := b.StreamEfficiency(1 << 20)
	if eff < 0.8 {
		t.Fatalf("stream efficiency %v, want >= 0.8", eff)
	}
}

func TestBankModelScatterDegrades(t *testing.T) {
	b := NewBankModel()
	stream := b.StreamEfficiency(1 << 20)
	// 64B touches at 1 MiB stride: every access a row miss.
	scatter := b.ScatterEfficiency(64, 4096, 1<<20)
	if scatter >= stream {
		t.Fatalf("scatter efficiency %v should be below stream %v", scatter, stream)
	}
	if scatter > 0.3 {
		t.Fatalf("pathological scatter efficiency %v, want << 1", scatter)
	}
}

func TestBankModelRowHitAccounting(t *testing.T) {
	b := NewBankModel()
	b.Reset()
	// Two sequential bursts in the same row: 1 miss + 1 hit.
	_, hits, misses := b.Access(0, 128)
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Re-reading the same row is all hits.
	_, hits2, misses2 := b.Access(0, 128)
	if hits2 != 2 || misses2 != 0 {
		t.Fatalf("re-read hits=%d misses=%d, want 2/0", hits2, misses2)
	}
}

func TestBankModelZeroLength(t *testing.T) {
	b := NewBankModel()
	if tm, h, m := b.Access(0, 0); tm != 0 || h != 0 || m != 0 {
		t.Fatal("zero access should be free")
	}
}

// TestBankModelExplainsDRAMEfficiency ties the bank model to the analytic
// DRAM constant: streaming efficiency should be in the ballpark of the 0.85
// the DRAM presets use.
func TestBankModelExplainsDRAMEfficiency(t *testing.T) {
	b := NewBankModel()
	eff := b.StreamEfficiency(4 << 20)
	if math.Abs(eff-LPDDR5_256().Efficiency) > 0.15 {
		t.Fatalf("bank-model stream efficiency %v vs analytic constant %v", eff, LPDDR5_256().Efficiency)
	}
}
