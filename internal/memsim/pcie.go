// Package memsim provides the memory-system models the V-Rex evaluation
// plugs into its cycle-level simulator: a PCIe link with per-transaction
// overhead (so transfer efficiency depends on segment size — the effect the
// KVMU's cluster-contiguous mapping exploits), an NVMe SSD model in the
// spirit of MQSim (bandwidth + per-IO latency with queueing), and a DRAM
// bandwidth model in the spirit of DRAMSim3 (sustained bandwidth with a
// utilisation-dependent efficiency knee).
package memsim

// PCIeLink models a PCIe connection between device memory and CPU memory /
// storage. Transfers are split into contiguous segments; each segment pays a
// fixed setup latency, so many small segments waste bandwidth (Sec. V's
// "irregular and sparse KV cache fetching ... causes underutilization of
// PCIe bandwidth").
type PCIeLink struct {
	// Bandwidth is the peak payload bandwidth in bytes/second.
	Bandwidth float64
	// SegmentLatency is the fixed per-segment cost in seconds (DMA setup,
	// TLP header overhead, doorbell).
	SegmentLatency float64
	// Lanes is the lane count (power model: ~3 W per lane under load).
	Lanes int
}

// PCIe3x4 returns the edge link of Table I: PCIe 3.0 x4, 4 GB/s.
func PCIe3x4() PCIeLink {
	return PCIeLink{Bandwidth: 4e9, SegmentLatency: 2e-6, Lanes: 4}
}

// PCIe4x16 returns the server link of Table I: PCIe 4.0 x16, 32 GB/s.
func PCIe4x16() PCIeLink {
	return PCIeLink{Bandwidth: 32e9, SegmentLatency: 1.5e-6, Lanes: 16}
}

// TransferTime returns the time to move bytes split into segments contiguous
// runs. segments <= 0 is treated as a single segment; zero bytes cost zero.
func (l PCIeLink) TransferTime(bytes float64, segments int) float64 {
	if bytes <= 0 {
		return 0
	}
	if segments <= 0 {
		segments = 1
	}
	return bytes/l.Bandwidth + float64(segments)*l.SegmentLatency
}

// Efficiency returns achieved/peak bandwidth for the given transfer shape.
func (l PCIeLink) Efficiency(bytes float64, segments int) float64 {
	if bytes <= 0 {
		return 1
	}
	ideal := bytes / l.Bandwidth
	return ideal / l.TransferTime(bytes, segments)
}

// Power returns the link's active power draw in watts (3 W/lane under load,
// the paper's estimate).
func (l PCIeLink) Power() float64 { return 3 * float64(l.Lanes) }
