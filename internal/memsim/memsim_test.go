package memsim

import (
	"math"
	"testing"
)

func TestPCIeTransferTimeScalesWithBytes(t *testing.T) {
	l := PCIe3x4()
	t1 := l.TransferTime(4e9, 1)
	if math.Abs(t1-1.000002) > 1e-4 {
		t.Fatalf("4GB over 4GB/s should take ~1s, got %v", t1)
	}
	if l.TransferTime(0, 5) != 0 {
		t.Fatal("zero bytes should be free")
	}
}

func TestPCIeSegmentationPenalty(t *testing.T) {
	l := PCIe3x4()
	contig := l.TransferTime(1e6, 1)
	scattered := l.TransferTime(1e6, 1000)
	if scattered <= contig {
		t.Fatal("scattered transfer must be slower")
	}
	// 1000 segments x 2us = 2ms vs 0.25ms payload: scattered is latency-bound.
	if scattered < 0.002 {
		t.Fatalf("scattered time %v, want >= 2ms", scattered)
	}
}

func TestPCIeEfficiencyBounds(t *testing.T) {
	l := PCIe4x16()
	for _, segs := range []int{1, 10, 1000} {
		e := l.Efficiency(1e6, segs)
		if e <= 0 || e > 1 {
			t.Fatalf("efficiency %v out of (0,1]", e)
		}
	}
	if l.Efficiency(1e9, 1) <= l.Efficiency(1e9, 100000) {
		t.Fatal("more segments must not improve efficiency")
	}
	if l.Efficiency(0, 1) != 1 {
		t.Fatal("empty transfer efficiency should be 1")
	}
}

func TestPCIeDefaultSegments(t *testing.T) {
	l := PCIe3x4()
	if l.TransferTime(1e6, 0) != l.TransferTime(1e6, 1) {
		t.Fatal("segments <= 0 should mean one segment")
	}
}

func TestPCIePower(t *testing.T) {
	if PCIe3x4().Power() != 12 {
		t.Fatal("x4 power should be 12W")
	}
	if PCIe4x16().Power() != 48 {
		t.Fatal("x16 power should be 48W")
	}
}

func TestSSDSequentialBandwidthBound(t *testing.T) {
	s := KioxiaBG6()
	// 3.5 GB sequential read ~ 1s.
	got := s.ReadTime(3.5e9, 1)
	if math.Abs(got-1) > 0.01 {
		t.Fatalf("sequential read time %v, want ~1s", got)
	}
}

func TestSSDScatteredLatencyBound(t *testing.T) {
	s := KioxiaBG6()
	// 10000 tiny segments: latency-bound at 10000*60us/64 ≈ 9.4ms.
	got := s.ReadTime(10e6, 10000)
	want := 10000 * 60e-6 / 64
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("scattered read time %v, want ~%v", got, want)
	}
	if s.ReadTime(10e6, 10000) <= s.ReadTime(10e6, 1) {
		t.Fatal("scattered must be slower than sequential")
	}
}

func TestSSDZeroBytes(t *testing.T) {
	if KioxiaBG6().ReadTime(0, 100) != 0 {
		t.Fatal("zero read should be free")
	}
}

func TestSSDDegenerateQueueDepth(t *testing.T) {
	s := SSD{ReadBandwidth: 1e9, IOLatency: 1e-3, QueueDepth: 0}
	// QD 0 treated as 1: 10 IOs x 1ms = 10ms >= bandwidth time.
	if got := s.ReadTime(1e6, 10); math.Abs(got-0.01) > 1e-6 {
		t.Fatalf("QD0 read time %v, want 10ms", got)
	}
}

func TestDRAMPresetsOrdering(t *testing.T) {
	lp, hbm, ddr := LPDDR5_256(), HBM2e5120(), DDR4Host()
	if !(hbm.Bandwidth > lp.Bandwidth && lp.Bandwidth > ddr.Bandwidth) {
		t.Fatal("bandwidth ordering HBM > LPDDR5 > DDR4 violated")
	}
	if hbm.EnergyPerByte >= ddr.EnergyPerByte {
		t.Fatal("HBM should be more energy-efficient per byte than DDR4")
	}
}

func TestDRAMAccessTimeAndEnergy(t *testing.T) {
	d := LPDDR5_256()
	bytes := 204.8e9 * d.Efficiency // exactly one second of traffic
	if got := d.AccessTime(bytes); math.Abs(got-1) > 1e-9 {
		t.Fatalf("access time %v, want 1s", got)
	}
	if d.AccessTime(0) != 0 || d.AccessEnergy(0) != 0 {
		t.Fatal("zero access should be free")
	}
	if d.AccessEnergy(1e9) <= 0 {
		t.Fatal("energy should be positive")
	}
}

// The KVMU claim in miniature: fetching the same bytes in cluster-contiguous
// segments beats token-scattered segments on both PCIe and SSD.
func TestClusterContiguityHelpsEndToEnd(t *testing.T) {
	const bytes = 50e6 // ~400 tokens x 128KB
	link := PCIe3x4()
	ssd := KioxiaBG6()
	clustered := link.TransferTime(bytes, 40) + ssd.ReadTime(bytes, 40)
	scattered := link.TransferTime(bytes, 12800) + ssd.ReadTime(bytes, 12800)
	if scattered/clustered < 1.3 {
		t.Fatalf("clustering should speed fetch >= 1.3x, got %v", scattered/clustered)
	}
}

func TestNICTransferTimeScalesWithBytes(t *testing.T) {
	l := LAN100G()
	small := l.TransferTime(1e6, 1)
	big := l.TransferTime(2e6, 1)
	if big <= small {
		t.Fatalf("more bytes should take longer: %g vs %g", small, big)
	}
	// One message of b bytes costs exactly Setup + b/BW + MsgOverhead.
	want := l.Setup + 1e6/l.Bandwidth + l.MsgOverhead
	if small != want {
		t.Fatalf("TransferTime(1e6,1) = %g, want %g", small, want)
	}
}

func TestNICSetupDominatesWAN(t *testing.T) {
	// A small move across the WAN is RTT-bound: halving the payload barely
	// changes the latency, unlike on the LAN.
	w, lan := WAN(), LAN100G()
	smallWAN := w.TransferTime(1e5, 1)
	if smallWAN < w.Setup {
		t.Fatalf("WAN transfer %g must include setup %g", smallWAN, w.Setup)
	}
	if ratio := w.TransferTime(2e5, 1) / smallWAN; ratio > 1.01 {
		t.Fatalf("small WAN moves should be setup-bound, got ratio %g", ratio)
	}
	if lr := lan.TransferTime(2e8, 1) / lan.TransferTime(1e8, 1); lr < 1.8 {
		t.Fatalf("large LAN moves should be bandwidth-bound, got ratio %g", lr)
	}
}

func TestNICMessageOverheadPenalty(t *testing.T) {
	l := LAN25G()
	one := l.TransferTime(1e7, 1)
	many := l.TransferTime(1e7, 1000)
	if many <= one {
		t.Fatalf("fragmented transfer should be slower: %g vs %g", one, many)
	}
	if got, want := many-one, 999*l.MsgOverhead; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fragmentation penalty = %g, want %g", got, want)
	}
}

func TestNICZeroAndDegenerate(t *testing.T) {
	l := LAN25G()
	if got := l.TransferTime(0, 5); got != 0 {
		t.Fatalf("zero bytes must cost zero, got %g", got)
	}
	if got := l.TransferTime(-1, 1); got != 0 {
		t.Fatalf("negative bytes must cost zero, got %g", got)
	}
	if l.TransferTime(1e6, 0) != l.TransferTime(1e6, 1) {
		t.Fatal("messages<=0 must behave as a single message")
	}
	if eff := l.Efficiency(0, 1); eff != 1 {
		t.Fatalf("zero-byte efficiency = %g, want 1", eff)
	}
	if eff := l.Efficiency(1e9, 1); eff <= 0 || eff >= 1 {
		t.Fatalf("efficiency must be in (0,1), got %g", eff)
	}
	if l.Power() != l.ActivePower {
		t.Fatal("Power must report ActivePower")
	}
}

func TestNICPresetsOrdering(t *testing.T) {
	// 100G beats 25G beats WAN on bandwidth; WAN has the largest setup.
	if !(LAN100G().Bandwidth > LAN25G().Bandwidth && LAN25G().Bandwidth > WAN().Bandwidth) {
		t.Fatal("preset bandwidth ordering violated")
	}
	if !(WAN().Setup > LAN25G().Setup && WAN().Setup > LAN100G().Setup) {
		t.Fatal("WAN must have the largest setup latency")
	}
}
