package memsim

// NICLink models the network leg of a cross-node KV move: a session's pages
// leave the source node over PCIe, cross the datacenter (or WAN) fabric, and
// land on the destination node's PCIe. Like PCIeLink, transfers are split
// into messages that each pay a fixed per-message overhead, and the whole
// move pays a one-time setup latency (connection/RPC establishment — a
// round-trip on LAN, tens of milliseconds across regions).
type NICLink struct {
	Name string
	// Bandwidth is the sustained payload bandwidth in bytes/second.
	Bandwidth float64
	// Setup is the one-time per-transfer latency in seconds (RPC setup,
	// TCP/RDMA connection reuse handshake; dominated by RTT).
	Setup float64
	// MsgOverhead is the fixed per-message cost in seconds (framing,
	// interrupt/poll, protocol headers).
	MsgOverhead float64
	// ActivePower is the NIC's power draw under load in watts.
	ActivePower float64
}

// LAN25G returns a 25 GbE datacenter NIC: ~3.1 GB/s payload, ~20 us RTT
// setup inside a rack/pod.
func LAN25G() NICLink {
	return NICLink{Name: "lan25", Bandwidth: 3.1e9, Setup: 20e-6, MsgOverhead: 2e-6, ActivePower: 12}
}

// LAN100G returns a 100 GbE / RDMA-class fabric: ~12 GB/s payload, ~10 us
// setup.
func LAN100G() NICLink {
	return NICLink{Name: "lan100", Bandwidth: 12e9, Setup: 10e-6, MsgOverhead: 1e-6, ActivePower: 20}
}

// WAN returns a cross-region link: ~1.25 GB/s (10 Gb/s provisioned) with a
// 30 ms RTT-dominated setup — the cost of migrating a session between
// geo-distributed sites.
func WAN() NICLink {
	return NICLink{Name: "wan", Bandwidth: 1.25e9, Setup: 30e-3, MsgOverhead: 5e-6, ActivePower: 20}
}

// TransferTime returns the time to move bytes split into messages discrete
// sends. messages <= 0 is treated as a single message; zero bytes cost zero.
func (l NICLink) TransferTime(bytes float64, messages int) float64 {
	if bytes <= 0 {
		return 0
	}
	if messages <= 0 {
		messages = 1
	}
	return l.Setup + bytes/l.Bandwidth + float64(messages)*l.MsgOverhead
}

// Efficiency returns achieved/peak bandwidth for the given transfer shape.
func (l NICLink) Efficiency(bytes float64, messages int) float64 {
	if bytes <= 0 {
		return 1
	}
	ideal := bytes / l.Bandwidth
	return ideal / l.TransferTime(bytes, messages)
}

// Power returns the link's active power draw in watts.
func (l NICLink) Power() float64 { return l.ActivePower }
