package memsim

// BankModel is a DRAMSim3-style row-buffer model at the granularity the
// evaluation needs: accesses to an open row hit the row buffer (column
// access only); accesses to a different row in the same bank pay precharge +
// activate. Streaming (sequential) traffic achieves near-peak efficiency,
// scattered traffic degrades — the same efficiency knee the DRAM.Efficiency
// constant encodes analytically.
type BankModel struct {
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TCol is the column access time (row hit) per burst, seconds.
	TCol float64
	// TRowMiss is precharge+activate+column time on a row miss, seconds.
	TRowMiss float64
	// BurstBytes is the data moved per access.
	BurstBytes int

	openRow []int64 // currently open row id per bank, -1 if none
}

// NewBankModel returns a model sized like a 256-bit LPDDR5 subsystem:
// 16 banks, 2 KiB rows, 64 B bursts, ~5 ns column access, ~35 ns row miss.
func NewBankModel() *BankModel {
	b := &BankModel{
		Banks:      16,
		RowBytes:   2048,
		TCol:       5e-9,
		TRowMiss:   35e-9,
		BurstBytes: 64,
	}
	b.Reset()
	return b
}

// Reset closes all rows.
func (b *BankModel) Reset() {
	b.openRow = make([]int64, b.Banks)
	for i := range b.openRow {
		b.openRow[i] = -1
	}
}

// Access simulates reading length bytes starting at addr and returns the
// time spent, counting row hits and misses. Banks interleave at row
// granularity.
func (b *BankModel) Access(addr, length int64) (t float64, hits, misses int) {
	if length <= 0 {
		return 0, 0, 0
	}
	burst := int64(b.BurstBytes)
	for off := int64(0); off < length; off += burst {
		a := addr + off
		row := a / int64(b.RowBytes)
		bank := int(row % int64(b.Banks))
		if b.openRow[bank] == row {
			t += b.TCol
			hits++
		} else {
			t += b.TRowMiss
			b.openRow[bank] = row
			misses++
		}
	}
	return t, hits, misses
}

// StreamEfficiency returns achieved/peak efficiency for a sequential stream
// of the given size, where peak is one burst per TCol.
func (b *BankModel) StreamEfficiency(bytes int64) float64 {
	b.Reset()
	t, _, _ := b.Access(0, bytes)
	if t <= 0 {
		return 1
	}
	ideal := float64(bytes) / float64(b.BurstBytes) * b.TCol
	return ideal / t
}

// ScatterEfficiency returns efficiency for n accesses of chunk bytes at
// stride-separated addresses (the scattered KV gather pattern).
func (b *BankModel) ScatterEfficiency(chunk, n, stride int64) float64 {
	b.Reset()
	var t float64
	for i := int64(0); i < n; i++ {
		dt, _, _ := b.Access(i*stride, chunk)
		t += dt
	}
	if t <= 0 {
		return 1
	}
	ideal := float64(chunk*n) / float64(b.BurstBytes) * b.TCol
	return ideal / t
}
