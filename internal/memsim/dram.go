package memsim

// DRAM models a device-attached memory system at the granularity the
// evaluation needs: sustained bandwidth with an achievable-efficiency factor
// (row-buffer and refresh losses), plus energy per byte for the energy
// model. LPDDR5/HBM2e/DDR4 presets follow Table I and the vendor data the
// paper cites for energy.
type DRAM struct {
	Name string
	// Bandwidth is the peak bytes/second of the interface.
	Bandwidth float64
	// Efficiency is the achievable fraction of peak for streaming access.
	Efficiency float64
	// EnergyPerByte is access energy in joules/byte (pJ/bit x 8).
	EnergyPerByte float64
	// StaticPower is background+refresh power in watts.
	StaticPower float64
}

// LPDDR5_256 returns the edge memory of Table I: 204.8 GB/s on a 256-bit bus.
// LPDDR5 access energy ~4 pJ/bit.
func LPDDR5_256() DRAM {
	return DRAM{Name: "LPDDR5", Bandwidth: 204.8e9, Efficiency: 0.85, EnergyPerByte: 32e-12, StaticPower: 1.5}
}

// HBM2e5120 returns the server memory of Table I: 1935 GB/s on a 5120-bit
// bus. HBM2e access energy ~3 pJ/bit.
func HBM2e5120() DRAM {
	return DRAM{Name: "HBM2e", Bandwidth: 1935e9, Efficiency: 0.85, EnergyPerByte: 24e-12, StaticPower: 10}
}

// DDR4Host returns host CPU memory for server-side KV offload: ~100 GB/s,
// ~10 pJ/bit.
func DDR4Host() DRAM {
	return DRAM{Name: "DDR4", Bandwidth: 100e9, Efficiency: 0.8, EnergyPerByte: 80e-12, StaticPower: 4}
}

// AccessTime returns the time to stream bytes through the interface.
func (d DRAM) AccessTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / (d.Bandwidth * d.Efficiency)
}

// AccessEnergy returns the energy to move bytes, in joules.
func (d DRAM) AccessEnergy(bytes float64) float64 {
	return bytes * d.EnergyPerByte
}
