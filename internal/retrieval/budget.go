package retrieval

// BudgetScaler is the degradation plane's budget override surface: a policy
// implementing it can have its retrieval budget rescaled mid-session without
// rebuilding per-session state (HC tables, trackers). ScaleBudget(scale)
// sets the effective budget to scale times the policy's configured budget —
// absolute, not cumulative: repeated calls replace the previous scale, and
// scale 1 restores the configured budget exactly. Scales are expected in
// (0, 1]; policies clamp rather than reject out-of-range values.
//
// FlexGen deliberately does not implement it: it has no selection stage, so
// there is no budget to shrink (degrading it would change its identity).
type BudgetScaler interface {
	ScaleBudget(scale float64)
}

func clampScale(scale float64) float64 {
	if scale > 1 {
		return 1
	}
	if scale <= 0 {
		return 1e-6
	}
	return scale
}

// ScaleBudget implements BudgetScaler: the generation-stage top-k budget
// shrinks to scale times its configured value (prefill attends everything
// regardless — that is InfiniGen's defining mismatch).
func (g *InfiniGen) ScaleBudget(scale float64) {
	if g.baseText == 0 {
		g.baseText = g.TextBudget
	}
	g.TextBudget = g.baseText * clampScale(scale)
}

// ScaleBudget implements BudgetScaler for both stage budgets.
func (g *InfiniGenP) ScaleBudget(scale float64) {
	if g.baseFrame == 0 {
		g.baseFrame, g.baseText = g.FrameBudget, g.TextBudget
	}
	s := clampScale(scale)
	g.FrameBudget = g.baseFrame * s
	g.TextBudget = g.baseText * s
}

// ScaleBudget implements BudgetScaler for both stage budgets (selection
// granularity — FrameSize — is untouched; fewer whole frames are fetched).
func (r *ReKV) ScaleBudget(scale float64) {
	if r.baseFrame == 0 {
		r.baseFrame, r.baseText = r.FrameBudget, r.TextBudget
	}
	s := clampScale(scale)
	r.FrameBudget = r.baseFrame * s
	r.TextBudget = r.baseText * s
}
