package retrieval

import (
	"vrex/internal/kvcache"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// Pruning models the destructive cache-eviction family the paper contrasts
// with retrieval (Sec. II: "pruning ... risk[s] permanently discarding
// information that, while irrelevant to the current query, may be essential
// for future ones"). Like H2O-style heavy-hitter eviction, it keeps a fixed
// budget of the highest-scoring tokens and permanently discards the rest —
// discarded tokens are never attended again, even if a later query needs
// them. The multiturn experiment uses it to reproduce the paper's
// conversational-coherence argument.
type Pruning struct {
	tracker
	cfg model.Config
	// Budget is the fraction of the live set retained after each chunk.
	Budget float64
	// alive[layer] marks tokens still in the cache.
	alive []map[int]bool
}

// NewPruning returns a destructive eviction policy with the given retention
// budget.
func NewPruning(cfg model.Config, budget float64) *Pruning {
	p := &Pruning{cfg: cfg, Budget: budget}
	p.alive = make([]map[int]bool, cfg.Layers)
	for l := range p.alive {
		p.alive[l] = make(map[int]bool)
	}
	return p
}

// Name implements Policy.
func (*Pruning) Name() string { return "Pruning (H2O-style)" }

// ObserveAppend implements model.Retriever: new tokens enter the live set.
func (p *Pruning) ObserveAppend(layer int, _ *kvcache.LayerCache, base, n int) {
	for i := 0; i < n; i++ {
		p.alive[layer][base+i] = true
	}
}

// SelectTokens implements model.Retriever: attend the live set, then evict
// the lowest-scoring survivors down to the budget — permanently.
func (p *Pruning) SelectTokens(layer int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	live := p.alive[layer]
	var sel []int
	for tok := range live {
		if tok < base {
			sel = append(sel, tok)
		}
	}
	sortAsc(sel)
	p.record(stage, len(sel), base)
	if len(sel) == 0 {
		return sel
	}

	// Evict: score the live past tokens and keep the top Budget fraction
	// (plus the current chunk, which is always alive).
	scores := headScores(p.cfg, cache, queries, base)
	keep := int(p.Budget*float64(len(sel)) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep < len(sel) {
		liveScores := make([]float64, len(sel))
		for i, tok := range sel {
			liveScores[i] = scores[tok]
		}
		kept := topK(liveScores, keep)
		keptSet := make(map[int]bool, len(kept))
		for _, i := range kept {
			keptSet[sel[i]] = true
		}
		for _, tok := range sel {
			if !keptSet[tok] {
				delete(live, tok) // permanent: the KV entry is gone
			}
		}
	}
	return sel
}

// LiveCount returns the number of surviving tokens at a layer (test hook).
func (p *Pruning) LiveCount(layer int) int { return len(p.alive[layer]) }
