package retrieval

import (
	"vrex/internal/kvcache"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// FlexGen models FlexGen-style full offloading: the entire KV cache is
// offloaded and every past token is fetched back for every layer — no
// selection at all. It is the latency baseline of Fig. 13.
type FlexGen struct {
	tracker
}

// NewFlexGen returns the policy.
func NewFlexGen() *FlexGen { return &FlexGen{} }

// Name implements Policy.
func (*FlexGen) Name() string { return "FlexGen" }

// ObserveAppend implements model.Retriever.
func (*FlexGen) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements model.Retriever: everything.
func (f *FlexGen) SelectTokens(_ int, _ *kvcache.LayerCache, _ *tensor.Matrix, base int, stage model.Stage) []int {
	f.record(stage, base, base)
	return allPast(base)
}

// InfiniGen models InfiniGen: speculative top-k token selection, but only
// during the text generation stage; the iterative prefill attends (and
// therefore fetches) everything — the mismatch Sec. III-A identifies.
type InfiniGen struct {
	tracker
	cfg model.Config
	// TextBudget is the fraction of past tokens fetched during generation.
	TextBudget float64
	// baseText remembers the configured budget across ScaleBudget calls.
	baseText float64
}

// NewInfiniGen returns the policy with the given generation-stage budget.
func NewInfiniGen(cfg model.Config, textBudget float64) *InfiniGen {
	return &InfiniGen{cfg: cfg, TextBudget: textBudget}
}

// Name implements Policy.
func (*InfiniGen) Name() string { return "InfiniGen" }

// ObserveAppend implements model.Retriever.
func (*InfiniGen) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements model.Retriever.
func (g *InfiniGen) SelectTokens(_ int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	if stage == model.StageFrame {
		g.record(stage, base, base)
		return allPast(base)
	}
	k := int(g.TextBudget*float64(base) + 0.5)
	if k < 1 && base > 0 {
		k = 1
	}
	sel := topK(headScores(g.cfg, cache, queries, base), k)
	g.record(stage, len(sel), base)
	return sel
}

// InfiniGenP extends InfiniGen's fixed top-k selection to the prefill stage
// with a (necessarily large) frame budget; the paper configures 50%, which
// costs up to 3.4 accuracy points (Table II).
type InfiniGenP struct {
	tracker
	cfg         model.Config
	FrameBudget float64
	TextBudget  float64
	// baseFrame/baseText remember the configured budgets for ScaleBudget.
	baseFrame, baseText float64
}

// NewInfiniGenP returns the policy.
func NewInfiniGenP(cfg model.Config, frameBudget, textBudget float64) *InfiniGenP {
	return &InfiniGenP{cfg: cfg, FrameBudget: frameBudget, TextBudget: textBudget}
}

// Name implements Policy.
func (*InfiniGenP) Name() string { return "InfiniGenP" }

// ObserveAppend implements model.Retriever.
func (*InfiniGenP) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements model.Retriever.
func (g *InfiniGenP) SelectTokens(_ int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	budget := g.FrameBudget
	if stage == model.StageText {
		budget = g.TextBudget
	}
	k := int(budget*float64(base) + 0.5)
	if k < 1 && base > 0 {
		k = 1
	}
	sel := topK(headScores(g.cfg, cache, queries, base), k)
	g.record(stage, len(sel), base)
	return sel
}

// ReKV models ReKV's frame-level (coarse-grained) selection: past tokens are
// grouped into fixed frames of FrameSize tokens; whole frames are ranked by
// their best token score and selected until the stage's token budget is
// reached. Coarse granularity forces higher budgets to keep accuracy
// (Table II: ~58% frame / ~31% text).
type ReKV struct {
	tracker
	cfg         model.Config
	FrameSize   int
	FrameBudget float64
	TextBudget  float64
	// baseFrame/baseText remember the configured budgets for ScaleBudget.
	baseFrame, baseText float64
}

// NewReKV returns the policy; frameSize is the token granularity of
// selection (the video tokens-per-frame).
func NewReKV(cfg model.Config, frameSize int, frameBudget, textBudget float64) *ReKV {
	if frameSize <= 0 {
		panic("retrieval: ReKV frame size must be positive")
	}
	return &ReKV{cfg: cfg, FrameSize: frameSize, FrameBudget: frameBudget, TextBudget: textBudget}
}

// Name implements Policy.
func (*ReKV) Name() string { return "ReKV" }

// ObserveAppend implements model.Retriever.
func (*ReKV) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements model.Retriever.
func (r *ReKV) SelectTokens(_ int, cache *kvcache.LayerCache, queries *tensor.Matrix, base int, stage model.Stage) []int {
	if base == 0 {
		return nil
	}
	budget := r.FrameBudget
	if stage == model.StageText {
		budget = r.TextBudget
	}
	tokenBudget := int(budget*float64(base) + 0.5)
	if tokenBudget < 1 {
		tokenBudget = 1
	}
	scores := headScores(r.cfg, cache, queries, base)
	nFrames := (base + r.FrameSize - 1) / r.FrameSize
	frameScore := make([]float64, nFrames)
	for tok, s := range scores {
		f := tok / r.FrameSize
		if s > frameScore[f] {
			frameScore[f] = s
		}
	}
	order := topK(frameScore, nFrames) // ascending frame ids, all frames
	// Rank frames by score descending.
	byScore := append([]int(nil), order...)
	sortByScoreDesc(byScore, frameScore)
	var sel []int
	for _, f := range byScore {
		if len(sel) >= tokenBudget {
			break
		}
		lo := f * r.FrameSize
		hi := lo + r.FrameSize
		if hi > base {
			hi = base
		}
		for tok := lo; tok < hi; tok++ {
			sel = append(sel, tok)
		}
	}
	sortAsc(sel)
	r.record(stage, len(sel), base)
	return sel
}

func sortByScoreDesc(ids []int, score []float64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && score[ids[j]] > score[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
