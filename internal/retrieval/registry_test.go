// Registry tests use an external test package to exercise the registry the
// way CLI and experiment code sees it.
package retrieval_test

import (
	"strings"
	"testing"

	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/retrieval"
)

func modelCfg() model.Config { return model.DefaultConfig() }

func TestFromSpecBuildsEveryRegisteredPolicy(t *testing.T) {
	wantNames := map[string]string{
		"dense":          "VideoLLM-Online",
		"flexgen":        "FlexGen",
		"infinigen":      "InfiniGen",
		"infinigenp":     "InfiniGenP",
		"rekv":           "ReKV",
		"resv":           "ReSV",
		"resv-nocluster": "ReSV w/o Clustering",
	}
	for spec, want := range wantNames {
		p, err := retrieval.FromSpec(spec, modelCfg())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if p.Name() != want {
			t.Fatalf("%s: Name() = %q, want %q", spec, p.Name(), want)
		}
	}
}

func TestNamesIncludeSelfRegisteredReSV(t *testing.T) {
	names := retrieval.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"resv", "rekv", "dense"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Names() = %v missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
}

func TestFromSpecParamsReachPolicies(t *testing.T) {
	p, err := retrieval.FromSpec("rekv(frame=0.58,text=0.31,framesize=4)", modelCfg())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := p.(*retrieval.ReKV)
	if !ok {
		t.Fatalf("got %T", p)
	}
	if r.FrameBudget != 0.58 || r.TextBudget != 0.31 || r.FrameSize != 4 {
		t.Fatalf("params not applied: %+v", r)
	}

	p, err = retrieval.FromSpec("resv(thwics=0.4,nhp=16)", modelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*core.ReSV); !ok {
		t.Fatalf("got %T", p)
	}
}

func TestFromSpecErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"nosuch", "unknown policy"},
		{"rekv(typo=1)", "does not accept"},
		{"rekv(frame=0)", "out of (0,1]"},
		{"infinigen(text=2)", "out of (0,1]"},
		{"rekv(framesize=0)", "framesize"},
		{"resv(thwics=7)", "ThWics"},
		{"dense(frame=0.5)", "does not accept"},
	}
	for _, c := range cases {
		_, err := retrieval.FromSpec(c.spec, modelCfg())
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("FromSpec(%q) err = %v, want containing %q", c.spec, err, c.wantSub)
		}
	}
}
