package retrieval

import (
	"testing"

	"vrex/internal/core"
	"vrex/internal/model"
)

// The budget override surface: every selecting policy implements it; FlexGen
// (no selection stage) deliberately does not.
var (
	_ BudgetScaler = (*InfiniGen)(nil)
	_ BudgetScaler = (*InfiniGenP)(nil)
	_ BudgetScaler = (*ReKV)(nil)
	_ BudgetScaler = (*core.ReSV)(nil)
)

// TestScaleBudgetAbsolute pins the absolute (replace, not compound)
// semantics: two calls with the same scale are idempotent, and scale 1
// restores the configured budgets exactly.
func TestScaleBudgetAbsolute(t *testing.T) {
	cfg := model.DefaultConfig()
	g := NewInfiniGenP(cfg, 0.5, 0.068)
	g.ScaleBudget(0.5)
	if g.FrameBudget != 0.25 || g.TextBudget != 0.034 {
		t.Fatalf("after ScaleBudget(0.5): frame=%g text=%g", g.FrameBudget, g.TextBudget)
	}
	g.ScaleBudget(0.5) // absolute: no compounding
	if g.FrameBudget != 0.25 {
		t.Fatalf("repeated scale compounded: frame=%g", g.FrameBudget)
	}
	g.ScaleBudget(1)
	if g.FrameBudget != 0.5 || g.TextBudget != 0.068 {
		t.Fatalf("scale 1 did not restore: frame=%g text=%g", g.FrameBudget, g.TextBudget)
	}

	r := NewReKV(cfg, 10, 0.584, 0.312)
	r.ScaleBudget(0.25)
	if r.FrameBudget != 0.584*0.25 || r.TextBudget != 0.312*0.25 {
		t.Fatalf("ReKV scaled: frame=%g text=%g", r.FrameBudget, r.TextBudget)
	}
	r.ScaleBudget(-3) // clamps, never zeroes or inverts
	if r.FrameBudget <= 0 || r.FrameBudget > 0.584 {
		t.Fatalf("ReKV clamp: frame=%g", r.FrameBudget)
	}

	ig := NewInfiniGen(cfg, 0.068)
	ig.ScaleBudget(0.5)
	if ig.TextBudget != 0.034 {
		t.Fatalf("InfiniGen scaled: text=%g", ig.TextBudget)
	}
	ig.ScaleBudget(1)
	if ig.TextBudget != 0.068 {
		t.Fatalf("InfiniGen restore: text=%g", ig.TextBudget)
	}
}

// TestScaleBudgetReSVSelection exercises ReSV end to end: a scaled-down
// WiCSum threshold selects no more tokens than the configured one on the
// same stream, and Reset restores the configured threshold.
func TestScaleBudgetReSVSelection(t *testing.T) {
	run := func(scale float64) int64 {
		r := core.New(model.DefaultConfig(), core.DefaultConfig())
		if scale != 1 {
			r.ScaleBudget(scale)
		}
		setup(t, r, 6, 10)
		return r.Stats().Frame.SelectedTokens
	}
	full := run(1)
	half := run(0.3)
	if full == 0 {
		t.Fatal("full run selected nothing; test stream too short")
	}
	if half > full {
		t.Fatalf("scaled selection larger than full: %d > %d", half, full)
	}

	// Reset restores the configured threshold: a scaled-then-reset instance
	// selects exactly like a fresh one.
	r := core.New(model.DefaultConfig(), core.DefaultConfig())
	r.ScaleBudget(0.3)
	r.Reset()
	setup(t, r, 6, 10)
	if got := r.Stats().Frame.SelectedTokens; got != full {
		t.Fatalf("reset instance selected %d tokens, fresh selected %d", got, full)
	}
}
