package retrieval

import (
	"math"
	"sort"

	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// PartialScorer approximates attention scores in a reduced key subspace —
// the mechanism InfiniGen uses (SVD-derived partial query/key weights) to
// make speculative KV prediction cheap. Here the subspace is chosen
// data-dependently: the Dims key dimensions with the highest variance across
// the cache carry most of the score energy, so scoring only those
// reconstructs the token ranking at a fraction of the compute.
type PartialScorer struct {
	// Dims is the number of key dimensions retained (per KV head-slice
	// ordering is global across the concatenated KV dim).
	Dims int
}

// topVarianceDims returns the indices of the Dims highest-variance key
// dimensions over the first `base` cached tokens.
func (p PartialScorer) topVarianceDims(cache *kvcache.LayerCache, base int) []int {
	d := cache.Dim
	mean := make([]float64, d)
	m2 := make([]float64, d)
	for tok := 0; tok < base; tok++ {
		row := cache.Key(tok)
		for j, v := range row {
			mean[j] += float64(v)
			m2[j] += float64(v) * float64(v)
		}
	}
	n := float64(base)
	vars := make([]float64, d)
	for j := range vars {
		mu := mean[j] / n
		vars[j] = m2[j]/n - mu*mu
	}
	idx := make([]int, d)
	for j := range idx {
		idx[j] = j
	}
	sort.Slice(idx, func(a, b int) bool { return vars[idx[a]] > vars[idx[b]] })
	k := p.Dims
	if k > d {
		k = d
	}
	keep := append([]int(nil), idx[:k]...)
	sort.Ints(keep)
	return keep
}

// Scores returns per-token importance like headScores, but computed only on
// the retained dimensions. queries is tokens x model-Dim.
func (p PartialScorer) Scores(cfg model.Config, cache *kvcache.LayerCache, queries *tensor.Matrix, base int) []float64 {
	if p.Dims <= 0 || p.Dims >= cache.Dim {
		return headScores(cfg, cache, queries, base)
	}
	keep := p.topVarianceDims(cache, base)
	headDim := cfg.HeadDim()
	group := cfg.Heads / cfg.KVHeads
	sharp := cfg.Sharpness
	if sharp == 0 {
		sharp = 1
	}
	invSqrt := float32(sharp / math.Sqrt(float64(headDim)))

	// Partition retained dims by KV head so query head slices align.
	perHead := make([][]int, cfg.KVHeads)
	for _, j := range keep {
		h := j / headDim
		perHead[h] = append(perHead[h], j)
	}

	imp := make([]float64, base)
	raw := make([]float32, base)
	norm := make([]float32, base)
	for qi := 0; qi < queries.Rows; qi++ {
		qrow := queries.Row(qi)
		for h := 0; h < cfg.Heads; h++ {
			kvh := h / group
			dims := perHead[kvh]
			if len(dims) == 0 {
				continue
			}
			qh := qrow[h*headDim : (h+1)*headDim]
			for tok := 0; tok < base; tok++ {
				krow := cache.Key(tok)
				var s float64
				for _, j := range dims {
					s += float64(qh[j-kvh*headDim]) * float64(krow[j])
				}
				raw[tok] = float32(s) * invSqrt
			}
			mathx.ExpNormalize(norm[:base], raw[:base])
			for tok := 0; tok < base; tok++ {
				if v := float64(norm[tok]); v > imp[tok] {
					imp[tok] = v
				}
			}
		}
	}
	return imp
}

// Recall measures how much of the exact top-k selection a partial selection
// recovers (evaluation helper for the predictor's fidelity).
func Recall(exact, approx []int) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(approx))
	for _, t := range approx {
		in[t] = true
	}
	hit := 0
	for _, t := range exact {
		if in[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
