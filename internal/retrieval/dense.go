package retrieval

import (
	"vrex/internal/kvcache"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// Dense is the no-retrieval baseline (vanilla VideoLLM-Online): full
// attention over the entire resident KV cache. Unlike FlexGen it implies no
// offloading at all — the cache must fit in device memory, which is exactly
// what fails beyond a few minutes of video (Fig. 4a).
type Dense struct {
	tracker
}

// NewDense returns the policy.
func NewDense() *Dense { return &Dense{} }

// Name implements Policy.
func (*Dense) Name() string { return "VideoLLM-Online" }

// ObserveAppend implements model.Retriever.
func (*Dense) ObserveAppend(int, *kvcache.LayerCache, int, int) {}

// SelectTokens implements model.Retriever.
func (d *Dense) SelectTokens(_ int, _ *kvcache.LayerCache, _ *tensor.Matrix, base int, stage model.Stage) []int {
	d.record(stage, base, base)
	return allPast(base)
}
