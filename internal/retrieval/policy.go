// Package retrieval implements the baseline KV cache retrieval policies the
// paper compares against (Sec. VI): FlexGen (offload everything, fetch
// everything), InfiniGen (top-k selection during text generation only),
// InfiniGenP (InfiniGen extended to the prefill stage) and ReKV (frame-level
// top-k selection). All are fixed-top-k designs — the inflexibility ReSV's
// dynamic thresholding removes (Sec. III-C).
package retrieval

import (
	"sort"

	"math"

	"vrex/internal/kvcache"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

// Policy is a named retrieval policy with ratio accounting; every baseline
// here implements it, and core.ReSV satisfies it too.
type Policy interface {
	model.Retriever
	Name() string
	// FrameRatio and TextRatio return the observed retrieval ratios
	// (selected/candidate tokens) per stage, in [0, 1].
	FrameRatio() float64
	TextRatio() float64
}

// tracker accumulates per-stage ratio accounting shared by the baselines.
type tracker struct {
	frameSel, frameCand int64
	textSel, textCand   int64
}

func (t *tracker) record(stage model.Stage, selected, candidates int) {
	if stage == model.StageFrame {
		t.frameSel += int64(selected)
		t.frameCand += int64(candidates)
	} else {
		t.textSel += int64(selected)
		t.textCand += int64(candidates)
	}
}

func ratio(sel, cand int64) float64 {
	if cand == 0 {
		return 1
	}
	return float64(sel) / float64(cand)
}

// FrameRatio implements part of Policy.
func (t *tracker) FrameRatio() float64 { return ratio(t.frameSel, t.frameCand) }

// TextRatio implements part of Policy.
func (t *tracker) TextRatio() float64 { return ratio(t.textSel, t.textCand) }

// allPast returns [0, base).
func allPast(base int) []int {
	sel := make([]int, base)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// headScores computes, for every past token, the maximum exp-normalised
// attention score over all (query, head) rows — the importance estimate
// fixed-top-k baselines rank by. queries is tokens x Dim.
func headScores(cfg model.Config, cache *kvcache.LayerCache, queries *tensor.Matrix, base int) []float64 {
	headDim := cfg.HeadDim()
	group := cfg.Heads / cfg.KVHeads
	sharp := cfg.Sharpness
	if sharp == 0 {
		sharp = 1
	}
	invSqrt := float32(sharp / math.Sqrt(float64(headDim)))
	imp := make([]float64, base)
	raw := make([]float32, base)
	norm := make([]float32, base)
	for qi := 0; qi < queries.Rows; qi++ {
		qrow := queries.Row(qi)
		for h := 0; h < cfg.Heads; h++ {
			kvh := h / group
			qh := qrow[h*headDim : (h+1)*headDim]
			for tok := 0; tok < base; tok++ {
				krow := cache.Key(tok)[kvh*headDim : (kvh+1)*headDim]
				raw[tok] = float32(mathx.Dot(qh, krow)) * invSqrt
			}
			mathx.ExpNormalize(norm, raw)
			for tok := 0; tok < base; tok++ {
				if v := float64(norm[tok]); v > imp[tok] {
					imp[tok] = v
				}
			}
		}
	}
	return imp
}

// topK returns the indices of the k highest-scoring entries, ascending.
func topK(scores []float64, k int) []int {
	if k >= len(scores) {
		return allPast(len(scores))
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	sel := append([]int(nil), idx[:k]...)
	sort.Ints(sel)
	return sel
}

func sortAsc(xs []int) { sort.Ints(xs) }
