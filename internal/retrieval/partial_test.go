package retrieval

import (
	"testing"

	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
)

func TestPartialScorerFallsBackWhenFullDims(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewDense()
	m := setup(t, p, 3, 5)
	q := tensor.NewMatrix(1, cfg.Dim)
	q.Randomize(mathx.NewRNG(2), 1)
	exact := headScores(cfg, m.Cache(0), q, m.Pos())
	full := PartialScorer{Dims: 0}.Scores(cfg, m.Cache(0), q, m.Pos())
	for i := range exact {
		if exact[i] != full[i] {
			t.Fatal("Dims<=0 must match exact scoring")
		}
	}
}

func TestPartialScorerHighRecall(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewDense()
	m := setup(t, p, 8, 5)
	base := m.Pos()
	q := tensor.NewMatrix(4, cfg.Dim)
	q.Randomize(mathx.NewRNG(3), 1)

	exact := topK(headScores(cfg, m.Cache(0), q, base), base/4)
	half := PartialScorer{Dims: cfg.KVDim() / 2}
	approx := topK(half.Scores(cfg, m.Cache(0), q, base), base/4)
	// Random-selection baseline recall would be ~k/base = 0.25; half-dims
	// scoring must do meaningfully better (real keys with structured
	// variance recover more).
	if r := Recall(exact, approx); r < 0.35 {
		t.Fatalf("half-dims recall %v, want >= 0.35", r)
	}
}

func TestPartialScorerRecallImprovesWithDims(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewDense()
	m := setup(t, p, 8, 5)
	base := m.Pos()
	q := tensor.NewMatrix(4, cfg.Dim)
	q.Randomize(mathx.NewRNG(4), 1)
	exact := topK(headScores(cfg, m.Cache(0), q, base), base/4)

	var prev float64 = -1
	for _, dims := range []int{4, 16, 48} {
		approx := topK(PartialScorer{Dims: dims}.Scores(cfg, m.Cache(0), q, base), base/4)
		r := Recall(exact, approx)
		if r < prev-0.25 {
			t.Fatalf("recall should broadly improve with dims: %v dims -> %v (prev %v)", dims, r, prev)
		}
		prev = r
	}
	if prev < 0.55 {
		t.Fatalf("recall at 48/64 dims = %v, want >= 0.55", prev)
	}
}

func TestRecallHelper(t *testing.T) {
	if Recall(nil, nil) != 1 {
		t.Fatal("empty exact should be full recall")
	}
	if Recall([]int{1, 2, 3, 4}, []int{1, 2}) != 0.5 {
		t.Fatal("recall arithmetic wrong")
	}
}
