package retrieval

import (
	"testing"

	"vrex/internal/core"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/tensor"
	"vrex/internal/workload"
)

var _ Policy = (*FlexGen)(nil)
var _ Policy = (*InfiniGen)(nil)
var _ Policy = (*InfiniGenP)(nil)
var _ Policy = (*ReKV)(nil)
var _ Policy = (*Dense)(nil)
var _ Policy = (*core.ReSV)(nil)

func setup(t *testing.T, p model.Retriever, nFrames, tokensPerFrame int) *model.Model {
	t.Helper()
	cfg := model.DefaultConfig()
	m := model.New(cfg)
	rng := mathx.NewRNG(21)
	for f := 0; f < nFrames; f++ {
		x := tensor.NewMatrix(tokensPerFrame, cfg.Dim)
		x.Randomize(rng, 1)
		m.Forward(x, p, model.StageFrame, false)
	}
	return m
}

func TestFlexGenSelectsEverything(t *testing.T) {
	p := NewFlexGen()
	m := setup(t, p, 4, 5)
	if m.Pos() != 20 {
		t.Fatal("setup failed")
	}
	if p.FrameRatio() != 1 {
		t.Fatalf("FlexGen frame ratio %v, want 1", p.FrameRatio())
	}
	if p.Name() != "FlexGen" {
		t.Fatal("name wrong")
	}
}

func TestInfiniGenFullFetchDuringFrames(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewInfiniGen(cfg, 0.1)
	setup(t, p, 4, 5)
	if p.FrameRatio() != 1 {
		t.Fatalf("InfiniGen must not select during prefill: ratio %v", p.FrameRatio())
	}
}

func TestInfiniGenSelectsDuringText(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewInfiniGen(cfg, 0.25)
	m := setup(t, p, 4, 5)
	q := tensor.NewMatrix(2, cfg.Dim)
	q.Randomize(mathx.NewRNG(5), 1)
	m.Forward(q, p, model.StageText, false)
	r := p.TextRatio()
	if r < 0.15 || r > 0.35 {
		t.Fatalf("text ratio %v, want ~0.25", r)
	}
}

func TestInfiniGenPBudgetsRespected(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewInfiniGenP(cfg, 0.5, 0.1)
	m := setup(t, p, 6, 5)
	fr := p.FrameRatio()
	if fr < 0.4 || fr > 0.6 {
		t.Fatalf("frame ratio %v, want ~0.5", fr)
	}
	q := tensor.NewMatrix(2, cfg.Dim)
	q.Randomize(mathx.NewRNG(6), 1)
	m.Forward(q, p, model.StageText, false)
	tr := p.TextRatio()
	if tr < 0.05 || tr > 0.2 {
		t.Fatalf("text ratio %v, want ~0.1", tr)
	}
}

func TestInfiniGenPSelectionValid(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewInfiniGenP(cfg, 0.5, 0.1)
	m := setup(t, p, 3, 5)
	base := m.Pos()
	q := tensor.NewMatrix(1, cfg.Dim)
	q.Randomize(mathx.NewRNG(7), 1)
	sel := p.SelectTokens(0, m.Cache(0), q, base, model.StageFrame)
	seen := map[int]bool{}
	for _, tok := range sel {
		if tok < 0 || tok >= base || seen[tok] {
			t.Fatalf("invalid selection %v", sel)
		}
		seen[tok] = true
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatal("selection not strictly ascending")
		}
	}
}

func TestReKVSelectsWholeFrames(t *testing.T) {
	cfg := model.DefaultConfig()
	const frameSize = 5
	p := NewReKV(cfg, frameSize, 0.6, 0.3)
	m := setup(t, p, 6, frameSize)
	base := m.Pos()
	q := tensor.NewMatrix(1, cfg.Dim)
	q.Randomize(mathx.NewRNG(8), 1)
	sel := p.SelectTokens(0, m.Cache(0), q, base, model.StageFrame)
	// Every selected token's whole frame must be present (frame granularity).
	inSel := map[int]bool{}
	for _, tok := range sel {
		inSel[tok] = true
	}
	for _, tok := range sel {
		f := tok / frameSize
		for k := f * frameSize; k < (f+1)*frameSize && k < base; k++ {
			if !inSel[k] {
				t.Fatalf("frame %d partially selected", f)
			}
		}
	}
}

func TestReKVBudget(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewReKV(cfg, 5, 0.5, 0.2)
	setup(t, p, 8, 5)
	r := p.FrameRatio()
	// Frame granularity overshoots by at most one frame per call.
	if r < 0.35 || r > 0.8 {
		t.Fatalf("ReKV frame ratio %v, want ~0.5-0.65", r)
	}
}

func TestReKVZeroBase(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewReKV(cfg, 5, 0.5, 0.2)
	if sel := p.SelectTokens(0, nil, nil, 0, model.StageFrame); sel != nil {
		t.Fatal("zero base should select nothing")
	}
}

func TestReKVPanicsOnBadFrameSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReKV(model.DefaultConfig(), 0, 0.5, 0.2)
}

func TestDensePolicy(t *testing.T) {
	p := NewDense()
	setup(t, p, 2, 4)
	if p.Name() != "VideoLLM-Online" || p.FrameRatio() != 1 || p.TextRatio() != 1 {
		t.Fatal("dense policy wrong")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.2}
	sel := topK(scores, 2)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("topK = %v, want [1 3]", sel)
	}
	if got := topK(scores, 10); len(got) != 5 {
		t.Fatal("k > n should return all")
	}
	if got := topK(scores, 0); got != nil {
		t.Fatal("k = 0 should return nil")
	}
}

func TestTopKProperty(t *testing.T) {
	rng := mathx.NewRNG(33)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		k := 1 + rng.Intn(n)
		sel := topK(scores, k)
		if len(sel) != k {
			t.Fatalf("topK returned %d of %d", len(sel), k)
		}
		// Every selected score >= every unselected score.
		inSel := map[int]bool{}
		minSel := 2.0
		for _, i := range sel {
			inSel[i] = true
			if scores[i] < minSel {
				minSel = scores[i]
			}
		}
		for i, s := range scores {
			if !inSel[i] && s > minSel+1e-12 {
				t.Fatalf("unselected %v > min selected %v", s, minSel)
			}
		}
	}
}

// TestReSVRatioBeatsFixedTopK reproduces the qualitative Table II claim:
// on the COIN-like streaming workload, ReSV's adaptive selection fetches
// fewer tokens than the 50%-budget InfiniGenP and far fewer than ReKV,
// while both run the same session.
func TestReSVRatioBeatsFixedTopK(t *testing.T) {
	mcfg := model.DefaultConfig()
	wcfg := workload.DefaultConfig()
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	sess := gen.Session(workload.TaskStep, 0)

	run := func(p model.Retriever) {
		m := model.New(mcfg)
		for _, fe := range sess.FrameEmbeds {
			m.Forward(fe, p, model.StageFrame, false)
		}
		for _, q := range sess.Queries {
			m.Forward(q.Embeddings, p, model.StageText, false)
		}
	}
	resv := core.New(mcfg, core.DefaultConfig())
	run(resv)
	igp := NewInfiniGenP(mcfg, 0.5, 0.068)
	run(igp)
	rekv := NewReKV(mcfg, wcfg.Stream.TokensPerFrame, 0.584, 0.312)
	run(rekv)
	if resv.FrameRatio() >= igp.FrameRatio() {
		t.Fatalf("ReSV frame ratio %v should beat InfiniGenP %v",
			resv.FrameRatio(), igp.FrameRatio())
	}
	if resv.FrameRatio() >= rekv.FrameRatio() {
		t.Fatalf("ReSV frame ratio %v should beat ReKV %v",
			resv.FrameRatio(), rekv.FrameRatio())
	}
	if resv.TextRatio() >= rekv.TextRatio() {
		t.Fatalf("ReSV text ratio %v should beat ReKV %v",
			resv.TextRatio(), rekv.TextRatio())
	}
}

func TestPruningEvictsPermanently(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewPruning(cfg, 0.3)
	m := setup(t, p, 10, 5)
	// After many chunks at 30% retention, the live set must be far below
	// the full history.
	live := p.LiveCount(0)
	if live >= m.Pos()/2 {
		t.Fatalf("pruning kept %d of %d tokens, want far fewer", live, m.Pos())
	}
	// Evicted tokens never come back: a query attends only the tokens that
	// were live before the call (eviction then shrinks the set further).
	liveBefore := p.LiveCount(0)
	q := tensor.NewMatrix(1, cfg.Dim)
	q.Randomize(mathx.NewRNG(9), 1)
	sel := p.SelectTokens(0, m.Cache(0), q, m.Pos(), model.StageText)
	if len(sel) > liveBefore {
		t.Fatalf("selection %d exceeds prior live set %d", len(sel), liveBefore)
	}
	if p.LiveCount(0) > liveBefore {
		t.Fatal("live set must never grow from selection")
	}
}

func TestPruningKeepsAtLeastOne(t *testing.T) {
	cfg := model.DefaultConfig()
	p := NewPruning(cfg, 0.0001)
	setup(t, p, 4, 5)
	if p.LiveCount(0) < 1 {
		t.Fatal("pruning must keep at least one token")
	}
}

func TestPruningName(t *testing.T) {
	if NewPruning(model.DefaultConfig(), 0.5).Name() == "" {
		t.Fatal("name empty")
	}
}
