package retrieval

import (
	"fmt"

	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// Factory builds a functional-plane policy from a parsed spec. It must
// consume every parameter it accepts via the Spec accessors and call
// Spec.CheckConsumed so unknown parameters are rejected.
type Factory func(cfg model.Config, sp *policyspec.Spec) (Policy, error)

// registry is the functional policy registry: the baselines and core.ReSV
// register here in init, so CLIs and experiments construct policies from
// spec strings instead of hard-coding constructors.
var registry = named.New[Factory]("retrieval", "policy")

// Register adds a factory under name (lower-cased); duplicate names panic —
// registry names are part of the CLI surface.
func Register(name string, f Factory) { registry.Register(name, f) }

// Names returns the registered policy names, sorted.
func Names() []string { return registry.Names() }

// FromSpec builds a policy from a spec string like
// "rekv(frame=0.58,text=0.31)"; cfg is the model the policy will serve.
func FromSpec(spec string, cfg model.Config) (Policy, error) {
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return nil, err
	}
	f, ok := registry.Lookup(sp.Name)
	if !ok {
		return nil, registry.Unknown(sp.Name)
	}
	return f(cfg, sp)
}

func ratioParam(sp *policyspec.Spec, key string, def float64) (float64, error) {
	v := sp.Float(key, def)
	if v <= 0 || v > 1 {
		return 0, fmt.Errorf("retrieval: policy %q: %s=%v out of (0,1]", sp.Name, key, v)
	}
	return v, nil
}

func init() {
	Register("dense", func(_ model.Config, sp *policyspec.Spec) (Policy, error) {
		if err := sp.CheckConsumed(); err != nil {
			return nil, err
		}
		return NewDense(), nil
	})
	Register("flexgen", func(_ model.Config, sp *policyspec.Spec) (Policy, error) {
		if err := sp.CheckConsumed(); err != nil {
			return nil, err
		}
		return NewFlexGen(), nil
	})
	Register("infinigen", func(cfg model.Config, sp *policyspec.Spec) (Policy, error) {
		text, err := ratioParam(sp, "text", 0.068)
		if err != nil {
			return nil, err
		}
		if err := sp.CheckConsumed("text"); err != nil {
			return nil, err
		}
		return NewInfiniGen(cfg, text), nil
	})
	Register("infinigenp", func(cfg model.Config, sp *policyspec.Spec) (Policy, error) {
		frame, err := ratioParam(sp, "frame", 0.5)
		if err != nil {
			return nil, err
		}
		text, err := ratioParam(sp, "text", 0.068)
		if err != nil {
			return nil, err
		}
		if err := sp.CheckConsumed("frame", "text"); err != nil {
			return nil, err
		}
		return NewInfiniGenP(cfg, frame, text), nil
	})
	Register("rekv", func(cfg model.Config, sp *policyspec.Spec) (Policy, error) {
		frame, err := ratioParam(sp, "frame", 0.584)
		if err != nil {
			return nil, err
		}
		text, err := ratioParam(sp, "text", 0.312)
		if err != nil {
			return nil, err
		}
		size := sp.Int("framesize", 10)
		if size <= 0 {
			return nil, fmt.Errorf("retrieval: policy %q: framesize must be positive", sp.Name)
		}
		if err := sp.CheckConsumed("frame", "text", "framesize"); err != nil {
			return nil, err
		}
		return NewReKV(cfg, size, frame, text), nil
	})
	Register("resv", resvFactory(false))
	Register("resv-nocluster", resvFactory(true))
}

// resvFactory builds core.ReSV from a spec: nhp/thhd/thwics/recent override
// the paper-default hyperparameters of core.DefaultConfig.
func resvFactory(disableClustering bool) Factory {
	return func(mcfg model.Config, sp *policyspec.Spec) (Policy, error) {
		cfg := core.DefaultConfig()
		cfg.DisableClustering = disableClustering
		cfg.NHp = sp.Int("nhp", cfg.NHp)
		cfg.ThHD = sp.Int("thhd", cfg.ThHD)
		cfg.ThWics = sp.Float("thwics", cfg.ThWics)
		cfg.RecentWindow = sp.Int("recent", cfg.RecentWindow)
		if err := sp.CheckConsumed("nhp", "thhd", "thwics", "recent"); err != nil {
			return nil, err
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("retrieval: policy %q: %w", sp.Name, err)
		}
		return core.New(mcfg, cfg), nil
	}
}
