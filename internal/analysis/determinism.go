package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// parallelPkgPath is the one package allowed to spawn goroutines: every other
// package must fan out through its deterministic worker pool.
const parallelPkgPath = "vrex/internal/parallel"

// Determinism enforces the simulator's byte-identical-output invariant: no
// wall-clock reads, no global math/rand, no goroutines outside
// internal/parallel, and no map iteration whose effects depend on order
// unless the keys are sorted first (the recognized collect-then-sort idiom)
// or the site is marked //vrex:unordered.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, stray goroutines and " +
		"order-sensitive map iteration; sorted-before-use key collection is " +
		"recognized, provably order-insensitive loops pass, and intentional " +
		"sites carry //vrex:unordered",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				determinismFunc(pass, fn)
				continue
			}
			// Package-level initializers still must not read wall clocks.
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkNondetCall(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

// determinismFunc walks one function body.
func determinismFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n)
		case *ast.GoStmt:
			if pass.Pkg.Path() != parallelPkgPath {
				pass.Reportf(n.Pos(),
					"goroutine outside internal/parallel; fan out through the deterministic worker pool (parallel.ForEach / parallel.Go)")
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// checkNondetCall flags wall-clock reads and global math/rand draws.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return
	}
	switch {
	case pkgFuncFrom(f, "time") && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until"):
		pass.Reportf(call.Pos(),
			"call to time.%s reads the wall clock; the simulator must run on simulated time only", f.Name())
	case pkgFuncFrom(f, "math/rand", "math/rand/v2"):
		pass.Reportf(call.Pos(),
			"global math/rand.%s draws from the shared unseeded source; use a seeded *mathx.RNG threaded through the call", f.Name())
	}
}

// checkMapRange classifies one range-over-map site: pass when suppressed,
// when it is the collect-keys-then-sort idiom, or when the body is provably
// order-insensitive; report otherwise.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.Suppressed(rs.Pos(), "unordered") {
		return
	}
	// `for range m` uses only the iteration count — trivially insensitive.
	if rs.Key == nil && rs.Value == nil {
		return
	}
	if sortedCollectIdiom(pass, fn, rs) {
		return
	}
	if orderInsensitiveBlock(pass, rs.Body) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order is nondeterministic and this loop's effects are order-sensitive; collect and sort keys first, or mark the loop //vrex:unordered")
}

// sortedCollectIdiom recognizes the canonical determinism idiom: the loop
// only collects keys/values into slices (mutating per-iteration locals on
// the way is fine), and the enclosing function later sorts one of those
// slices — sort.*, slices.Sort*, or a local sort helper (sortAsc, sortInts).
func sortedCollectIdiom(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) bool {
	locals := map[types.Object]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
	}
	targets := map[types.Object]bool{}
	if !collectAppendsOnly(pass, rs.Body.List, targets, locals) || len(targets) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(pass.TypesInfo, arg); obj != nil && targets[obj] {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isSortCall matches sort.* / slices.Sort* plus local helpers whose name
// starts with "sort" (sortAsc, sortInts — the repo's small-slice sorters).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	if pkgFuncFrom(f, "sort", "slices") {
		return true
	}
	return strings.HasPrefix(strings.ToLower(f.Name()), "sort")
}

// collectAppendsOnly reports whether stmts consist solely of self-appends
// and mutations of per-iteration locals (optionally guarded by ifs, with
// continues allowed), recording the append targets' objects.
func collectAppendsOnly(pass *Pass, stmts []ast.Stmt, targets, locals map[types.Object]bool) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if selfAppend(pass, st, targets) {
				continue
			}
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							locals[obj] = true
						}
					}
				}
				continue
			}
			// Plain writes are fine when they only touch per-iteration
			// locals (k.Count = n before appending k).
			ok := st.Tok == token.ASSIGN
			for _, lhs := range st.Lhs {
				if obj := baseObject(pass.TypesInfo, lhs); obj == nil || !locals[obj] {
					ok = false
				}
			}
			if !ok {
				return false
			}
		case *ast.IfStmt:
			if !collectAppendsOnly(pass, st.Body.List, targets, locals) {
				return false
			}
			if st.Else != nil {
				blk, ok := st.Else.(*ast.BlockStmt)
				if !ok || !collectAppendsOnly(pass, blk.List, targets, locals) {
					return false
				}
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// selfAppend matches `x = append(x, ...)` (single assign), recording x.
func selfAppend(pass *Pass, st *ast.AssignStmt, targets map[types.Object]bool) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 || st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return false
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
		return false
	}
	lhs := rootObject(pass.TypesInfo, st.Lhs[0])
	if lhs == nil || len(call.Args) == 0 || rootObject(pass.TypesInfo, call.Args[0]) != lhs {
		return false
	}
	targets[lhs] = true
	return true
}

// orderInsensitiveBlock reports whether every statement's effect is invariant
// under iteration-order permutation: map writes, deletes, integer
// accumulation, per-iteration locals, and recursively insensitive control
// flow. Conservative — anything unrecognized is order-sensitive.
func orderInsensitiveBlock(pass *Pass, blk *ast.BlockStmt) bool {
	for _, st := range blk.List {
		if !orderInsensitiveStmt(pass, st) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		if st.Tok == token.DEFINE {
			return true // per-iteration locals carry no state across iterations
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
			token.XOR_ASSIGN, token.MUL_ASSIGN:
			// Commutative only over integers: float accumulation is
			// order-sensitive in the last bits.
			t := pass.TypesInfo.TypeOf(st.Lhs[0])
			b, ok := t.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		case token.ASSIGN:
			// Plain assignment is fine only when every target is a map entry
			// keyed by loop state (m[k] = v): each key is written once.
			for _, lhs := range st.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					return false
				}
				if _, ok := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); !ok {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IncDecStmt:
		t := pass.TypesInfo.TypeOf(st.X)
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	case *ast.ExprStmt:
		// Only delete(m, k) — other calls may have order-dependent effects.
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete")
	case *ast.IfStmt:
		if st.Init != nil && !orderInsensitiveStmt(pass, st.Init) {
			return false
		}
		if !orderInsensitiveBlock(pass, st.Body) {
			return false
		}
		if st.Else != nil {
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				return orderInsensitiveBlock(pass, blk)
			}
			els, ok := st.Else.(*ast.IfStmt)
			return ok && orderInsensitiveStmt(pass, els)
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBlock(pass, st)
	case *ast.RangeStmt, *ast.ForStmt:
		var body *ast.BlockStmt
		if r, ok := st.(*ast.RangeStmt); ok {
			body = r.Body
		} else {
			body = st.(*ast.ForStmt).Body
		}
		return orderInsensitiveBlock(pass, body)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	case *ast.DeclStmt:
		return true
	}
	return false
}

// baseObject unwraps selectors, indexes and slices down to the base
// identifier and resolves it (k.Count -> k; s[i].f -> s).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObject resolves the base identifier of an lvalue-ish expression
// (x, x[i], x.f, x[:n]) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if o := info.Uses[x.Sel]; o != nil {
				return o
			}
			return nil
		default:
			return nil
		}
	}
}
