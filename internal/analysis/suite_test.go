package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vrex/internal/analysis"
	"vrex/internal/analysis/analysistest"
)

func corpus(name string) string { return filepath.Join("testdata", "src", name) }

func TestDeterminismCorpus(t *testing.T) {
	analysistest.Run(t, corpus("determinism"), analysis.Determinism)
}

func TestNoAllocCorpus(t *testing.T) {
	analysistest.Run(t, corpus("noalloc"), analysis.NoAlloc)
}

func TestPolicyRegCorpus(t *testing.T) {
	analysistest.Run(t, corpus("policyreg"), analysis.PolicyReg)
}

func TestExhaustiveCorpus(t *testing.T) {
	analysistest.Run(t, corpus("exhaustive"), analysis.Exhaustive)
}

func TestFloatDetCorpus(t *testing.T) {
	analysistest.Run(t, corpus("floatdet"), analysis.FloatDet)
}

// TestSuiteComplete pins the analyzer roster: vrex-vet -run names and the
// README's Invariants section both key off these.
func TestSuiteComplete(t *testing.T) {
	want := []string{"determinism", "noalloc", "policyreg", "exhaustive", "floatdet"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}

// TestVetWiredIntoCI is the smoke test that replaced the runtime
// numEventKinds/StallKind sentinel tests: exhaustiveness (and the rest of the
// invariants) are enforced statically now, so what needs pinning is that the
// static check actually runs — in the Makefile vet target and the CI workflow.
func TestVetWiredIntoCI(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, tc := range []struct{ file, needle string }{
		{"Makefile", "vrex-vet"},
		{filepath.Join(".github", "workflows", "ci.yml"), "vrex-vet"},
	} {
		data, err := os.ReadFile(filepath.Join(root, tc.file))
		if err != nil {
			t.Fatalf("reading %s: %v", tc.file, err)
		}
		if !strings.Contains(string(data), tc.needle) {
			t.Errorf("%s does not run %s; the invariant suite is not wired into CI", tc.file, tc.needle)
		}
	}
}
