package analysis

// All returns the full vrex analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, NoAlloc, PolicyReg, Exhaustive, FloatDet}
}
