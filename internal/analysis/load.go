package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (testdata corpora use bare names).
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset maps every position in Files.
	Fset *token.FileSet
	// Files are the parsed sources, comments included, test files excluded.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records type and object resolution for Files.
	Info *types.Info
}

// Loader type-checks packages against compiler export data produced by
// `go list -export`, so loading needs no network, no GOPATH source layout
// and no x/tools dependency — only the local build cache.
type Loader struct {
	// Dir is the working directory for go list (anywhere in the module).
	Dir string
	// Fset is shared by every package the loader produces.
	Fset *token.FileSet

	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// NewLoader returns a loader rooted at dir (any directory inside the module).
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, Fset: token.NewFileSet(), exports: map[string]string{}}
}

// goList runs `go list -export -deps -json` over args and folds the entries
// into the loader's export map, returning the non-dep (root) entries.
func (l *Loader) goList(args []string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var roots []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list decode: %v", err)
		}
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			roots = append(roots, e)
		}
	}
	return roots, nil
}

// importer returns the shared gc-export-data importer, building it on first
// use so every package load shares one package cache.
func (l *Loader) importer() types.Importer {
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
			e, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q (not listed by go list -deps)", path)
			}
			return os.Open(e)
		})
	}
	return l.imp
}

// Load lists, parses and type-checks the packages matching patterns
// (e.g. "./..."), returning them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(roots))
	for _, e := range roots {
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := l.check(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file in dir as a package
// with the given import path, resolving its imports through `go list -export`
// (the analysistest corpora under testdata/ load this way — go tooling never
// builds them, so they have no export data of their own).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != ".go" ||
			len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go" {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	// Resolve the corpus's imports (and their deps) into the export map.
	parsed, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	need := map[string]bool{}
	for _, f := range parsed {
		for _, im := range f.Imports {
			p := im.Path.Value
			p = p[1 : len(p)-1] // unquote
			if p != "unsafe" && l.exports[p] == "" {
				need[p] = true
			}
		}
	}
	if len(need) > 0 {
		args := make([]string, 0, len(need))
		for p := range need {
			args = append(args, p)
		}
		sort.Strings(args)
		if _, err := l.goList(args); err != nil {
			return nil, err
		}
	}
	return l.checkParsed(importPath, dir, parsed)
}

// parse parses files with comments into the shared fileset.
func (l *Loader) parse(files []string) ([]*ast.File, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// check parses and type-checks one package.
func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	parsed, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(importPath, dir, parsed)
}

func (l *Loader) checkParsed(importPath, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l.importer(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: parsed, Types: tpkg, Info: info}, nil
}
