package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatDet catches the float-determinism bug class fixed by hand in PRs 5
// and 8: exact ==/!= on floats (NaN drop-latency sentinels compared with
// == 0), float-keyed maps (NaN keys are unreachable and iteration is
// nondeterministic), and freshly divided values flowing into formatting
// without a finiteness guard (0/0 printing as NaN in reports).
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc: "forbid ==/!= on floating-point operands (mark intentional exact " +
		"comparisons //vrex:float-eq), float-keyed map types, and division " +
		"results passed to fmt/strconv formatting in functions with no " +
		"math.IsNaN/IsInf guard (waive with //vrex:nonfinite-ok)",
	Run: runFloatDet,
}

func runFloatDet(pass *Pass) error {
	for _, file := range pass.Files {
		tieBreaks := collectTieBreakIdioms(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !tieBreaks[n] {
					checkFloatCompare(pass, n)
				}
			case *ast.MapType:
				checkFloatMapKey(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFormattedDivisions(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkFloatCompare flags exact equality on floating-point operands.
func checkFloatCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	xt, yt := pass.TypesInfo.TypeOf(e.X), pass.TypesInfo.TypeOf(e.Y)
	if xt == nil || yt == nil || !typeIsFloat(xt) && !typeIsFloat(yt) {
		return
	}
	// Comparing against a compile-time constant is the recognized
	// exact-sentinel idiom (zero-value config defaulting, bit-exact flag
	// values); the risky class is identity between two computed values.
	if isConstExpr(pass, e.X) || isConstExpr(pass, e.Y) {
		return
	}
	if pass.Suppressed(e.Pos(), "float-eq") {
		return
	}
	pass.Reportf(e.Pos(),
		"exact %s on floating-point values; NaN never compares equal and rounding breaks identity — use math.IsNaN / an epsilon, or mark //vrex:float-eq if exactness is the point", e.Op)
}

// checkFloatMapKey flags map types keyed by floats.
func checkFloatMapKey(pass *Pass, mt *ast.MapType) {
	kt := pass.TypesInfo.TypeOf(mt.Key)
	if kt == nil || !typeIsFloat(kt) {
		return
	}
	pass.Reportf(mt.Pos(),
		"map keyed by %s: NaN keys are unretrievable and float identity is rounding-sensitive; key by an int or string form instead", kt.String())
}

// checkFormattedDivisions flags float divisions whose result feeds a
// formatting call in a function with no finiteness guard anywhere — the
// 0/0 → "NaN" report bug. A single math.IsNaN/IsInf call in the function
// counts as the guard (the analyzer does not trace the exact value flow),
// as does an enclosing `if denom > 0` / `if denom != 0` test naming the
// same denominator expression.
func checkFormattedDivisions(pass *Pass, fn *ast.FuncDecl) {
	if functionHasFiniteGuard(pass, fn) {
		return
	}
	var walk func(n ast.Node, conds []ast.Expr)
	walk = func(n ast.Node, conds []ast.Expr) {
		if ifst, ok := n.(*ast.IfStmt); ok {
			if ifst.Init != nil {
				walk(ifst.Init, conds)
			}
			walk(ifst.Cond, conds)
			inner := append(conds, ifst.Cond)
			walk(ifst.Body, inner)
			if ifst.Else != nil {
				walk(ifst.Else, conds)
			}
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && isFormattingCall(pass, call) {
			for _, arg := range call.Args {
				div := findFloatDivision(pass, arg)
				if div == nil {
					continue
				}
				if denominatorGuarded(div.Y, conds) ||
					pass.Suppressed(div.Pos(), "nonfinite-ok") || pass.Suppressed(call.Pos(), "nonfinite-ok") {
					continue
				}
				pass.Reportf(div.Pos(),
					"float division formatted directly with no math.IsNaN/IsInf guard in this function; a zero denominator prints NaN/Inf into the report — guard it or mark //vrex:nonfinite-ok")
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if m != nil {
				walk(m, conds)
			}
			return false
		})
	}
	walk(fn.Body, nil)
}

// denominatorGuarded reports whether an enclosing if-condition compares the
// denominator expression against zero (`d > 0`, `d != 0`, `0 < d`).
func denominatorGuarded(denom ast.Expr, conds []ast.Expr) bool {
	want := exprString(ast.Unparen(denom))
	for _, cond := range conds {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch b.Op {
			case token.GTR, token.NEQ, token.LSS, token.GEQ:
			default:
				return true
			}
			if exprString(ast.Unparen(b.X)) == want || exprString(ast.Unparen(b.Y)) == want {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// collectTieBreakIdioms returns the `x != y` conditions of the deterministic
// comparator idiom
//
//	if x != y { return x < y }   // then fall through to the next tie-break
//
// where exact inequality is the point: equal keys must fall through to a
// total tie-break, which is how every comparator in the engine stays
// deterministic.
func collectTieBreakIdioms(file *ast.File) map[*ast.BinaryExpr]bool {
	out := map[*ast.BinaryExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok || ifst.Else != nil || len(ifst.Body.List) != 1 {
			return true
		}
		cond, ok := ast.Unparen(ifst.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		ret, ok := ifst.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
		if !ok || cmp.Op != token.LSS && cmp.Op != token.GTR {
			return true
		}
		if exprString(cmp.X) == exprString(cond.X) && exprString(cmp.Y) == exprString(cond.Y) {
			out[cond] = true
		}
		return true
	})
	return out
}

// exprString renders e for structural comparison.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// isConstExpr reports whether e has a compile-time constant value.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// functionHasFiniteGuard reports whether fn calls math.IsNaN or math.IsInf.
func functionHasFiniteGuard(pass *Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(pass.TypesInfo, call); pkgFuncFrom(f, "math") && (f.Name() == "IsNaN" || f.Name() == "IsInf") {
			found = true
		}
		return true
	})
	return found
}

// isFormattingCall matches fmt.* and strconv float formatting calls.
func isFormattingCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	if pkgFuncFrom(f, "fmt") {
		return true
	}
	if pkgFuncFrom(f, "strconv") {
		switch f.Name() {
		case "FormatFloat", "AppendFloat":
			return true
		}
	}
	return false
}

// findFloatDivision returns a float-typed `/` expression inside e, not
// descending into nested calls (their own call sites are checked there).
// Division by a nonzero constant (unit scaling like ns/1e6) cannot mint a
// non-finite value from finite inputs and is skipped.
func findFloatDivision(pass *Pass, e ast.Expr) *ast.BinaryExpr {
	var div *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.QUO {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[b.Y]; ok && tv.Value != nil {
			return true // constant denominator: 0 would already fail to compile
		}
		if t := pass.TypesInfo.TypeOf(b); t != nil && typeIsFloat(t) && div == nil {
			div = b
		}
		return true
	})
	return div
}
