// Package analysistest runs vrex analyzers over committed source corpora and
// checks their diagnostics against expectations written in the sources as
//
//	expr // want "substring-regexp"
//
// mirroring golang.org/x/tools/go/analysis/analysistest (which the module
// cannot depend on) closely enough that corpora read the same way. A want
// comment may carry several quoted or backquoted patterns when one line is
// expected to produce several diagnostics. Every diagnostic must match an
// unconsumed want on its line, and every want must be consumed — both
// directions fail the test with positions.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vrex/internal/analysis"
)

// wantRE captures the expectation list after a want marker.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// patRE captures one quoted or backquoted pattern from the expectation list.
var patRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// want is one expectation: a pattern anchored to a file line.
type want struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// Run loads dir as a single package and applies the analyzers, diffing their
// diagnostics against the corpus's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader := analysis.NewLoader(dir)
	pkg, err := loader.LoadDir(dir, "vrexvet.test/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	wants := collectWants(t, dir)

	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if w := claim(wants, filepath.Base(pos.Filename), pos.Line, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic (%s): %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// claim finds and consumes the first unmatched want on (file, line) whose
// pattern matches message.
func claim(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants scans every non-test .go file in dir for want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	var wants []*want
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != ".go" || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading corpus file: %v", err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			pats := patRE.FindAllString(m[1], -1)
			if len(pats) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted pattern", name, i+1)
			}
			for _, p := range pats {
				text := p[1 : len(p)-1]
				if p[0] == '"' {
					if text, err = strconv.Unquote(p); err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", name, i+1, p, err)
					}
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %s: %v", name, i+1, p, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, raw: p, re: re})
			}
		}
	}
	return wants
}
