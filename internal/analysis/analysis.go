// Package analysis is vrex's static-analysis plane: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (the
// toolchain image has no module proxy, so x/tools is unavailable) plus the
// five vrex analyzers that enforce the simulator's invariants at review time:
//
//	determinism — no wall-clock time, no global math/rand, no goroutines
//	              outside internal/parallel, no unsorted map iteration
//	              feeding output or aggregation
//	noalloc     — functions annotated //vrex:noalloc stay free of
//	              alloc-prone constructs (closures, fmt, literals, boxing)
//	policyreg   — policyspec factories call CheckConsumed; registries are
//	              listable (reachable from -list-policies)
//	exhaustive  — switches over *Kind enums cover every constant or carry
//	              an explicit default
//	floatdet    — no float ==/!=, no float map keys, no unguarded division
//	              results flowing into formatting
//
// Analyzers report file:line diagnostics; cmd/vrex-vet runs them over the
// module and `make vet` wires them into CI. Suppression directives (one per
// diagnostic class, always a trailing or preceding line comment):
//
//	//vrex:unordered     map iteration is provably order-insensitive
//	//vrex:alloc-ok      waive one alloc site inside a //vrex:noalloc func
//	//vrex:float-eq      exact float comparison is intentional
//	//vrex:nonfinite-ok  the formatted value is proven finite
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check, mirroring the x/tools analysis.Analyzer
// shape so the checks read like upstream go/analysis code.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph help text shown by vrex-vet -list.
	Doc string
	// Run executes the analyzer over one package pass.
	Run func(*Pass) error
}

// Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package (path = import path).
	Pkg *types.Package
	// TypesInfo records types and object resolution for Files.
	TypesInfo *types.Info
	// report collects diagnostics (set by the driver).
	report func(Diagnostic)
	// directives maps file -> line -> the //vrex: directive text on it.
	directives map[*token.File]map[int]string
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Suppressed reports whether the line containing pos (or the line above it)
// carries the given //vrex:<directive> comment. Directives must name their
// diagnostic class precisely — a stray directive never silences a different
// analyzer's finding.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.directives[tf]
	if lines == nil {
		return false
	}
	ln := tf.Line(pos)
	for _, l := range [2]int{ln, ln - 1} {
		if d, ok := lines[l]; ok && directiveMatches(d, directive) {
			return true
		}
	}
	return false
}

// directiveMatches reports whether comment text d contains //vrex:<want>
// as a whole word ("//vrex:unordered" matches "unordered", not "unorder").
func directiveMatches(d, want string) bool {
	for _, f := range strings.Fields(d) {
		f = strings.TrimPrefix(f, "//")
		if f == "vrex:"+want {
			return true
		}
	}
	return false
}

// buildDirectives indexes every //vrex: comment by file and line so
// Suppressed is O(1) per query.
func (p *Pass) buildDirectives() {
	p.directives = map[*token.File]map[int]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "vrex:") {
					continue
				}
				tf := p.Fset.File(c.Pos())
				if tf == nil {
					continue
				}
				lines := p.directives[tf]
				if lines == nil {
					lines = map[int]string{}
					p.directives[tf] = lines
				}
				ln := tf.Line(c.Pos())
				lines[ln] = lines[ln] + " " + c.Text
			}
		}
	}
}

// FuncAnnotated reports whether decl carries the //vrex:<name> annotation in
// its doc comment or on any comment line directly above its position.
func (p *Pass) FuncAnnotated(decl *ast.FuncDecl, name string) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if directiveMatches(c.Text, name) {
				return true
			}
		}
	}
	// A detached comment line right above the func (no doc association).
	return p.Suppressed(decl.Pos(), name)
}

// RunAnalyzers executes every analyzer over the package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { out = append(out, d) },
		}
		pass.buildDirectives()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// typeIsFloat reports whether t's underlying type is a floating-point or
// complex kind (shared by determinism and floatdet).
func typeIsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// calleeFunc resolves a call expression's static callee, or nil for dynamic
// calls (function-typed variables, method values bound at runtime).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// pkgFuncFrom reports whether f is a package-level function (not a method)
// belonging to one of the given import paths.
func pkgFuncFrom(f *types.Func, paths ...string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range paths {
		if f.Pkg().Path() == p {
			return true
		}
	}
	return false
}
