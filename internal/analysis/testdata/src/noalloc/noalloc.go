// Package noalloc seeds //vrex:noalloc violations (and the amortized-grow
// idioms that must pass) for the analyzer's analysistest corpus.
package noalloc

import "fmt"

func sink(v interface{}) { _ = v }

//vrex:noalloc
func hotBad(xs, dst []int) []int {
	fmt.Println(len(xs))   // want `fmt\.Println in //vrex:noalloc function allocates`
	seen := map[int]bool{} // want `map literal in //vrex:noalloc function allocates`
	_ = seen
	buf := make([]int, len(xs)) // want `make in //vrex:noalloc function allocates`
	_ = buf
	other := append(xs, 1) // want `append to a foreign slice`
	_ = other
	f := func() {} // want `closure in //vrex:noalloc function allocates`
	f()
	sink(len(xs)) // want `boxed into interface`
	return dst
}

//vrex:noalloc
func hotGood(xs []int, scratch []int) []int {
	if cap(scratch) < len(xs) {
		scratch = make([]int, 0, len(xs)) // guarded: amortized grow is the point
	}
	scratch = scratch[:0]
	for _, x := range xs {
		scratch = append(scratch, x*2) // self-append into owned scratch
	}
	return scratch
}

//vrex:noalloc
func hotWaived() *int {
	p := new(int) //vrex:alloc-ok one-time lazily initialized state
	return p
}

// cold is unannotated: anything goes.
func cold(n int) []int {
	out := make([]int, n)
	fmt.Println(n)
	return out
}
