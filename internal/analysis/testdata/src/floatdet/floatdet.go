// Package floatdet seeds float-determinism violations (and the recognized
// idioms) for the analyzer's analysistest corpus.
package floatdet

import (
	"fmt"
	"math"
)

// identical compares two computed floats exactly.
func identical(a, b float64) bool {
	return a == b // want `exact == on floating-point values`
}

// drifted uses exact inequality.
func drifted(a, b float32) bool {
	return a != b // want `exact != on floating-point values`
}

// histogram keys a map by floats.
var histogram map[float64]int // want `map keyed by float64`

// reportRatio formats a division with no finiteness guard anywhere.
func reportRatio(num, den float64) string {
	return fmt.Sprintf("%.2f", num/den) // want `float division formatted directly with no math\.IsNaN/IsInf guard`
}

// zeroSentinel compares against a constant: the exact-sentinel idiom.
func zeroSentinel(v float64) bool {
	return v == 0
}

// less is the deterministic tie-break comparator idiom.
func less(a, b float64, i, j int) bool {
	if a != b {
		return a < b
	}
	return i < j
}

// guardedRatio checks finiteness in-function — no diagnostic.
func guardedRatio(num, den float64) string {
	r := num / den
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", r)
}

// positiveRatio divides under an explicit denominator guard.
func positiveRatio(num, den float64) string {
	if den > 0 {
		return fmt.Sprintf("%.2f", num/den)
	}
	return "n/a"
}

// unitScale divides by a nonzero constant: cannot mint a non-finite value.
func unitScale(ns float64) string {
	return fmt.Sprintf("%.1fms", ns/1e6)
}

// waivedEq is exact on purpose and marked.
func waivedEq(a, b float64) bool {
	return a == b //vrex:float-eq bit-identical replay check
}
