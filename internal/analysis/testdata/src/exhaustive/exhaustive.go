// Package exh seeds non-exhaustive Kind-enum switches (and the compliant
// shapes) for the analyzer's analysistest corpus.
package exh

// PhaseKind mirrors the simulator's *Kind enums.
type PhaseKind int

const (
	PhasePrefill PhaseKind = iota
	PhaseDecode
	PhaseIdle
	numPhaseKinds // bounds sentinel: exempt from coverage
)

// StallKind is a second enum to prove coverage is tracked per type.
type StallKind int

const (
	StallNone StallKind = iota
	StallFetch
	StallCompute
)

// missingOne skips PhaseIdle.
func missingOne(p PhaseKind) string {
	switch p { // want `switch over exh\.PhaseKind is not exhaustive: missing PhaseIdle`
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	}
	return "?"
}

// missingMany covers a single constant.
func missingMany(p PhaseKind) bool {
	switch p { // want `switch over exh\.PhaseKind is not exhaustive: missing PhaseDecode, PhaseIdle`
	case PhasePrefill:
		return true
	}
	return false
}

// missingStall skips StallCompute on the second enum type.
func missingStall(s StallKind) bool {
	switch s { // want `switch over exh\.StallKind is not exhaustive: missing StallCompute`
	case StallNone, StallFetch:
		return true
	}
	return false
}

// covered names every constant; the num sentinel is not required.
func covered(p PhaseKind) string {
	switch p {
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	case PhaseIdle:
		return "idle"
	}
	return "?"
}

// defaulted opts out with an explicit default clause.
func defaulted(p PhaseKind) string {
	switch p {
	case PhasePrefill:
		return "prefill"
	default:
		return "other"
	}
}

// notAKindEnum: switches over plain ints are out of scope.
func notAKindEnum(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
