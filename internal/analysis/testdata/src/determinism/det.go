// Package det seeds determinism violations (and the recognized idioms that
// must pass) for the analyzer's analysistest corpus.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock reads real time twice; both reads must be flagged.
func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// globalRand draws from the shared unseeded source.
func globalRand() int {
	return rand.Intn(6) // want `global math/rand\.Intn`
}

// spawn starts a goroutine outside internal/parallel.
func spawn(done chan struct{}) {
	go close(done) // want `goroutine outside internal/parallel`
}

// orderSensitive appends formatted output in map order with no sort after.
func orderSensitive(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k+"!")
	}
	return out
}

// collectThenSort is the canonical idiom: collect, then sort — no diagnostic.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// accumulate only folds integers commutatively — no diagnostic.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// waived is order-sensitive but explicitly marked — no diagnostic.
func waived(m map[string]int, sink func(string)) {
	//vrex:unordered diagnostic ordering is tested elsewhere
	for k := range m {
		sink(k)
	}
}

// countOnly uses no iteration variables — trivially insensitive.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
