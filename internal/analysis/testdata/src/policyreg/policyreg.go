// Package policyreg seeds policy-registry contract violations (and compliant
// factories) for the analyzer's analysistest corpus.
package policyreg

import (
	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// Controller is the exported policy surface factories construct.
type Controller struct {
	Ratio float64
}

// NewLeaky builds a Controller but never validates the spec; the expectation
// anchors to the declaration line.
func NewLeaky(sp *policyspec.Spec) (*Controller, error) { // want `NewLeaky consumes a \*policyspec\.Spec .* never calls Spec\.CheckConsumed`
	return &Controller{Ratio: sp.Float("ratio", 0.5)}, nil
}

// FromString parses its own spec and is just as leaky.
func FromString(s string) (*Controller, error) { // want `FromString consumes a \*policyspec\.Spec .* never calls Spec\.CheckConsumed`
	sp, err := policyspec.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Controller{Ratio: sp.Float("ratio", 0.5)}, nil
}

// NewChecked validates before constructing — no diagnostic.
func NewChecked(sp *policyspec.Spec) (*Controller, error) {
	r := sp.Float("ratio", 0.5)
	if err := sp.CheckConsumed("ratio"); err != nil {
		return nil, err
	}
	return &Controller{Ratio: r}, nil
}

// ratioParam returns only basics: a helper, not a factory — no diagnostic.
func ratioParam(sp *policyspec.Spec, key string) float64 {
	return sp.Float(key, 0.5)
}

// Resolve hands the spec to a registry-resolved factory, which owns the
// CheckConsumed at its definition site — no diagnostic.
func Resolve(name string, sp *policyspec.Spec) (*Controller, error) {
	f, ok := factories.Lookup(name)
	if !ok {
		return nil, listed.Unknown(name)
	}
	return f(sp)
}

// hidden has no exported accessor reaching .Names().
var hidden = named.New[func() int]("policyreg", "hidden") // want `registry hidden has no exported accessor`

// listed is reachable through Names below — no diagnostic.
var listed = named.New[func() int]("policyreg", "listed")

// factories is reachable through FactoryNames below — no diagnostic.
var factories = named.New[func(*policyspec.Spec) (*Controller, error)]("policyreg", "factories")

// Names lists the listed registry.
func Names() []string { return listed.Names() }

// FactoryNames lists the factory registry.
func FactoryNames() []string { return factories.Names() }

func init() {
	hidden.Register("one", func() int { return 1 })
	listed.Register("two", func() int { return 2 })
	factories.Register("checked", NewChecked)
}
