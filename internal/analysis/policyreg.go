package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	policyspecPath = "vrex/internal/policyspec"
	namedPath      = "vrex/internal/named"
)

// PolicyReg enforces the policy-registry contract: every factory-shaped
// consumer of a *policyspec.Spec validates its parameters by calling
// CheckConsumed (or hands the spec to a registry-resolved factory that
// does), and every named registry stays listable through an exported
// Names-style accessor so -list-policies can surface it.
var PolicyReg = &Analyzer{
	Name: "policyreg",
	Doc: "policyspec factories must call Spec.CheckConsumed (directly or by " +
		"delegating the spec to a registry-resolved factory); named.New " +
		"registries must expose an exported accessor calling .Names() so " +
		"-list-policies reaches them",
	Run: runPolicyReg,
}

func runPolicyReg(pass *Pass) error {
	if pass.Pkg.Path() == policyspecPath {
		return nil // the grammar package itself is exempt
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil {
					checkSpecConsumers(pass, decl.Name.Name, decl.Type, decl.Body, decl.Pos())
					// Factory literals nest inside init()/builder functions.
					ast.Inspect(decl.Body, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							checkSpecConsumers(pass, "func literal", lit.Type, lit.Body, lit.Pos())
						}
						return true
					})
				}
			case *ast.GenDecl:
				checkRegistryListable(pass, decl)
			}
		}
	}
	return nil
}

// checkSpecConsumers applies the CheckConsumed rule to one function: if it is
// factory-shaped — it receives or parses a *policyspec.Spec and returns a
// constructed value (any non-basic result) — its body must either call
// CheckConsumed or pass the spec onward through a dynamic (registry-resolved)
// call. Helpers returning only basics (param accessors like ratioParam) are
// exempt: the factory that calls them still owns the CheckConsumed.
func checkSpecConsumers(pass *Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt, pos token.Pos) {
	touchesSpec := funcHasSpecParam(pass, ftype) || callsPolicyspecParse(pass, body)
	if !touchesSpec || !returnsConstructed(pass, ftype) {
		return
	}
	if bodyCallsCheckConsumed(pass, body) || delegatesSpecDynamically(pass, body) {
		return
	}
	pass.Reportf(pos,
		"%s consumes a *policyspec.Spec and builds a policy but never calls Spec.CheckConsumed; unknown or ill-typed parameters would be silently ignored", name)
}

// funcHasSpecParam reports whether ftype has a *policyspec.Spec parameter.
func funcHasSpecParam(pass *Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if isSpecPointer(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isSpecPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Spec" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == policyspecPath
}

// callsPolicyspecParse reports whether body calls policyspec.Parse, skipping
// nested function literals (they are checked on their own).
func callsPolicyspecParse(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if f := calleeFunc(pass.TypesInfo, call); pkgFuncFrom(f, policyspecPath) && f.Name() == "Parse" {
				found = true
			}
		}
	})
	return found
}

// returnsConstructed reports whether the function returns a policy surface —
// a result whose type reaches an exported named type or interface. Factories
// build those; sub-parsers returning unexported ctl structs are helpers
// whose callers (the registered factories) own the CheckConsumed, so they
// are exempt.
func returnsConstructed(pass *Pass, ftype *ast.FuncType) bool {
	if ftype.Results == nil {
		return false
	}
	for _, field := range ftype.Results.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || isErrorType(t) {
			continue
		}
		if isExportedConstructed(t) {
			return true
		}
	}
	return false
}

// isExportedConstructed unwraps containers and reports whether t is (or
// holds) an exported named non-basic type or any interface.
func isExportedConstructed(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return isExportedConstructed(u.Elem())
	case *types.Slice:
		return isExportedConstructed(u.Elem())
	case *types.Array:
		return isExportedConstructed(u.Elem())
	case *types.Named:
		if _, basic := u.Underlying().(*types.Basic); basic {
			return false
		}
		return u.Obj().Exported()
	case *types.Interface:
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// bodyCallsCheckConsumed reports whether body (excluding nested func
// literals) calls the CheckConsumed method.
func bodyCallsCheckConsumed(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "CheckConsumed" {
			if isSpecPointer(pass.TypesInfo.TypeOf(sel.X)) {
				found = true
			}
		}
	})
	return found
}

// delegatesSpecDynamically reports whether body passes a *policyspec.Spec to
// a dynamic call — a function-typed variable, which in this codebase is
// always a registry-resolved factory whose own body is checked at its
// definition site.
func delegatesSpecDynamically(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeFunc(pass.TypesInfo, call) != nil {
			return // static callee: delegation responsibility stays here
		}
		// Builtin-or-conversion calls have no *types.Func either; require a
		// function-typed operand resolving to a variable.
		if obj := rootObject(pass.TypesInfo, call.Fun); obj == nil {
			return
		} else if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		for _, arg := range call.Args {
			if isSpecPointer(pass.TypesInfo.TypeOf(arg)) {
				found = true
			}
		}
	})
	return found
}

// inspectSkippingFuncLits walks body, calling fn on every node but not
// descending into nested function literals.
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkRegistryListable flags package-level `var x = named.New[...]`
// registries that no exported function exposes via a .Names() call: a
// registry -list-policies cannot reach is a policy surface users cannot
// discover.
func checkRegistryListable(pass *Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr)
			if !ok || !isNamedNewCall(pass, call) {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !registryListed(pass, obj) {
				pass.Reportf(name.Pos(),
					"registry %s has no exported accessor calling %s.Names(); -list-policies cannot reach it", name.Name, name.Name)
			}
		}
	}
}

// isNamedNewCall matches named.New[...](...) including its generic
// instantiation forms.
func isNamedNewCall(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ix.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == namedPath && f.Name() == "New"
}

// registryListed reports whether any exported package-level function calls
// <registry>.Names().
func registryListed(pass *Pass, registry types.Object) bool {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Names" {
					return true
				}
				if rootObject(pass.TypesInfo, sel.X) == registry {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
