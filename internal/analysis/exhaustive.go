package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive supersedes the runtime numEventKinds-sentinel tests: every
// switch over a *Kind enum (serve.EventKind, serve.StallKind,
// hwsim.StageKind, ...) must cover all of the enum's constants or carry an
// explicit default clause. Sentinel bounds constants (unexported, named
// num<...>) are not required.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over named *Kind enum types must either cover every " +
		"declared constant of the type or have an explicit default clause; " +
		"unexported num* sentinels are exempt from coverage",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitchExhaustive(pass, sw)
			return true
		})
	}
	return nil
}

// kindEnum returns the named *Kind enum type of e, or nil when e is not one.
// A kind enum is a defined integer type whose name ends in "Kind" with at
// least two declared constants in its package.
func kindEnum(pass *Pass, e ast.Expr) (*types.Named, []*types.Const) {
	t := pass.TypesInfo.TypeOf(e)
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Kind") {
		return nil, nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil, nil
	}
	var consts []*types.Const
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && strings.HasPrefix(c.Name(), "num") {
			continue // bounds sentinel, not a real kind
		}
		consts = append(consts, c)
	}
	if len(consts) < 2 {
		return nil, nil
	}
	return named, consts
}

func checkSwitchExhaustive(pass *Pass, sw *ast.SwitchStmt) {
	named, consts := kindEnum(pass, sw.Tag)
	if named == nil {
		return
	}
	covered := map[types.Object]bool{}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author opted out of exhaustiveness
		}
		for _, e := range cc.List {
			if obj := rootObject(pass.TypesInfo, e); obj != nil {
				covered[obj] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s.%s is not exhaustive: missing %s; add the cases or an explicit default",
		named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
}
