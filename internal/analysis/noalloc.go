package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc scans functions annotated //vrex:noalloc — the ReSV hot path — for
// alloc-prone constructs. The hot path's zero-alloc property is also pinned
// dynamically by AllocsPerRun tests; this analyzer moves the failure to
// review time with a file:line instead of a counter regression.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //vrex:noalloc must avoid closures, fmt calls, " +
		"map/slice literals, make/new outside a cap/len grow guard, " +
		"non-self append, and value-to-interface boxing; waive a single site " +
		"with //vrex:alloc-ok",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncAnnotated(fn, "noalloc") {
				continue
			}
			checkNoAllocBody(pass, fn)
		}
	}
	return nil
}

// checkNoAllocBody walks one annotated function. growGuard tracks whether the
// walk is inside an `if` whose condition mentions cap() or len() — the
// amortized ensure-capacity idiom, where a make/append grow is the point.
func checkNoAllocBody(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node, growGuard bool)
	walkAll := func(n ast.Node, growGuard bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m, growGuard)
			return false
		})
	}
	walk = func(n ast.Node, growGuard bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Init != nil {
				walkAll(n.Init, growGuard)
			}
			walkAll(n.Cond, growGuard)
			inner := growGuard || mentionsCapLen(pass, n.Cond)
			walkAll(n.Body, inner)
			if n.Else != nil {
				walkAll(n.Else, inner)
			}
			return
		case *ast.FuncLit:
			if !pass.Suppressed(n.Pos(), "alloc-ok") {
				pass.Reportf(n.Pos(), "closure in //vrex:noalloc function allocates its captures")
			}
			return // do not descend: the closure body runs elsewhere
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil && !growGuard && !pass.Suppressed(n.Pos(), "alloc-ok") {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal in //vrex:noalloc function allocates")
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal in //vrex:noalloc function allocates")
				}
			}
		case *ast.UnaryExpr:
			// &T{...} escapes to the heap in almost every use on a hot path.
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !growGuard &&
					!pass.Suppressed(n.Pos(), "alloc-ok") {
					pass.Reportf(n.Pos(), "&composite literal in //vrex:noalloc function allocates")
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, growGuard)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					checkNoAllocAppend(pass, n, call, growGuard)
				}
			}
		}
		// Default: descend with the current guard state.
		switch n.(type) {
		case ast.Stmt, ast.Expr, *ast.CaseClause, *ast.CommClause:
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walk(m, growGuard)
				return false
			})
		}
	}
	for _, st := range fn.Body.List {
		walk(st, false)
	}
}

// checkNoAllocCall flags fmt calls, unguarded make/new, and value→interface
// boxing at call boundaries.
func checkNoAllocCall(pass *Pass, call *ast.CallExpr, growGuard bool) {
	if f := calleeFunc(pass.TypesInfo, call); f != nil && pkgFuncFrom(f, "fmt") {
		if !pass.Suppressed(call.Pos(), "alloc-ok") {
			pass.Reportf(call.Pos(), "fmt.%s in //vrex:noalloc function allocates (boxing + buffers)", f.Name())
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("make"), types.Universe.Lookup("new"):
			if !growGuard && !pass.Suppressed(call.Pos(), "alloc-ok") {
				pass.Reportf(call.Pos(),
					"%s in //vrex:noalloc function allocates; guard it with a cap/len capacity check (amortized grow) or preallocate", id.Name)
			}
			return
		case types.Universe.Lookup("append"):
			return // judged at its assignment by checkNoAllocAppend
		}
	}
	// Boxing: a concrete non-pointer argument passed as an interface
	// parameter allocates when it escapes.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		pt := paramType(sig, i)
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(pass, arg) {
			continue
		}
		// Constants (panic("message"), fixed sentinels) are materialized in
		// read-only data by the compiler; boxing them does not allocate.
		if isConstExpr(pass, arg) {
			continue
		}
		if !pass.Suppressed(arg.Pos(), "alloc-ok") {
			pass.Reportf(arg.Pos(), "value of type %s boxed into interface %s in //vrex:noalloc function allocates",
				at.String(), pt.String())
		}
	}
}

// checkNoAllocAppend flags appends that are not the self-append scratch-grow
// idiom `x = append(x, ...)` / `x = append(x[:0], ...)`.
func checkNoAllocAppend(pass *Pass, assign *ast.AssignStmt, call *ast.CallExpr, growGuard bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
		return
	}
	if growGuard || pass.Suppressed(call.Pos(), "alloc-ok") {
		return
	}
	if len(assign.Lhs) == 1 && len(call.Args) > 0 {
		lhs := rootObject(pass.TypesInfo, assign.Lhs[0])
		if lhs != nil && rootObject(pass.TypesInfo, call.Args[0]) == lhs {
			return // amortized self-append to a scratch slice
		}
	}
	pass.Reportf(call.Pos(),
		"append to a foreign slice in //vrex:noalloc function may allocate; use the self-append scratch idiom x = append(x[:0], ...)")
}

// paramType returns the type of parameter i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		last := sig.Params().At(sig.Params().Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < sig.Params().Len() {
		return sig.Params().At(i).Type()
	}
	return types.Typ[types.Invalid]
}

// isPointerShaped reports whether boxing t into an interface is free of a
// heap copy (pointers, maps, chans, funcs and unsafe pointers share one
// word; everything else is copied to the heap).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// mentionsCapLen reports whether cond contains a cap() or len() call — the
// shape of every ensure-capacity grow guard on the hot path.
func mentionsCapLen(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if u := pass.TypesInfo.Uses[id]; u == types.Universe.Lookup("cap") || u == types.Universe.Lookup("len") {
				found = true
			}
		}
		return true
	})
	return found
}
