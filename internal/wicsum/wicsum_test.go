package wicsum

import (
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
)

func TestSelectRowPaperExample(t *testing.T) {
	// Fig. 9's first row: scores {9,8,2,1,1}, counts {1,3,3,2,2}(reordered),
	// Th_r-wics = 80%. Walking 9*1=9? The figure uses weighted sums 49, 38,
	// 37 against Sum=95*0.8=76... we verify the mechanism, not the figure's
	// exact arithmetic: selection stops as soon as cumulative mass exceeds
	// ratio*total and covers at least that fraction.
	mass := []float32{9, 8, 2, 1, 1}
	counts := []int{5, 4, 3, 2, 1}
	sel := SelectRow(mass, counts, 0.8)
	if sel.Fraction() <= 0.8 {
		t.Fatalf("covered fraction %v, want > 0.8", sel.Fraction())
	}
	// Must select in descending score order: cluster 0 then 1, ...
	if sel.Selected[0] != 0 || sel.Selected[1] != 1 {
		t.Fatalf("selection order wrong: %v", sel.Selected)
	}
	// Must not have selected everything (scores are skewed).
	if len(sel.Selected) == len(mass) {
		t.Fatal("skewed distribution should not require all clusters")
	}
}

func TestSelectRowSkewedSelectsFew(t *testing.T) {
	// One dominant cluster carries ~99% of mass: selection must be tiny.
	mass := make([]float32, 100)
	counts := make([]int, 100)
	for i := range mass {
		mass[i] = 0.001
		counts[i] = 1
	}
	mass[42] = 10
	sel := SelectRow(mass, counts, 0.9)
	if len(sel.Selected) != 1 || sel.Selected[0] != 42 {
		t.Fatalf("expected only cluster 42, got %v", sel.Selected)
	}
}

func TestSelectRowUniformSelectsMany(t *testing.T) {
	// Uniform distribution: need ~ratio of all clusters.
	mass := make([]float32, 100)
	counts := make([]int, 100)
	for i := range mass {
		mass[i] = 1
		counts[i] = 1
	}
	sel := SelectRow(mass, counts, 0.8)
	if len(sel.Selected) != 81 { // strictly exceed 80 -> 81 entries
		t.Fatalf("uniform selection = %d clusters, want 81", len(sel.Selected))
	}
}

func TestSelectRowCountsWeighting(t *testing.T) {
	// Equal scores but one cluster holds many tokens: its mass dominates.
	mass := []float32{1, 1}
	counts := []int{99, 1}
	sel := SelectRow(mass, counts, 0.5)
	// Descending sort is stable over equal scores; cluster 0 (mass 99)
	// already exceeds 50%.
	if len(sel.Selected) != 1 {
		t.Fatalf("selection %v, want a single cluster", sel.Selected)
	}
	if sel.MassCovered != 99 {
		t.Fatalf("mass covered %v, want 99", sel.MassCovered)
	}
}

func TestSelectRowZeroRatioPicksOne(t *testing.T) {
	sel := SelectRow([]float32{1, 2, 3}, []int{1, 1, 1}, 0)
	if len(sel.Selected) != 1 || sel.Selected[0] != 2 {
		t.Fatalf("ratio 0 should still pick the top cluster: %v", sel.Selected)
	}
}

func TestSelectRowEmpty(t *testing.T) {
	sel := SelectRow(nil, nil, 0.5)
	if len(sel.Selected) != 0 || sel.Fraction() != 1 {
		t.Fatal("empty row should select nothing and report full coverage")
	}
}

func TestSelectRowAllZeroMass(t *testing.T) {
	sel := SelectRow([]float32{0, 0}, []int{1, 1}, 0.5)
	if len(sel.Selected) != 0 {
		t.Fatal("zero mass row should select nothing")
	}
}

func TestSelectRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectRow([]float32{1}, []int{1, 2}, 0.5)
}

func TestSelectRowCoverageProperty(t *testing.T) {
	// Property: for any non-negative row, the selection covers > ratio of
	// total mass, and removing the last selected cluster would not.
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(64)
		mass := make([]float32, n)
		counts := make([]int, n)
		for i := range mass {
			mass[i] = rng.Float32()
			counts[i] = 1 + rng.Intn(40)
		}
		ratio := 0.3 + 0.6*rng.Float64()
		sel := SelectRow(mass, counts, ratio)
		if sel.TotalMass == 0 {
			return true
		}
		if sel.MassCovered <= ratio*sel.TotalMass {
			return false
		}
		last := sel.Selected[len(sel.Selected)-1]
		withoutLast := sel.MassCovered - float64(mass[last])*float64(counts[last])
		return withoutLast <= ratio*sel.TotalMass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEarlyExitCoversThreshold(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(128)
		mass := make([]float32, n)
		counts := make([]int, n)
		for i := range mass {
			mass[i] = rng.Float32()
			counts[i] = 1 + rng.Intn(40)
		}
		ratio := 0.3 + 0.6*rng.Float64()
		sel := SelectRowEarlyExit(mass, counts, ratio, 20)
		if sel.TotalMass == 0 {
			return true
		}
		return sel.MassCovered > ratio*sel.TotalMass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEarlyExitExaminesFewOnSkewedData(t *testing.T) {
	// Attention-like skew: a few large masses dominate. Early exit should
	// examine a small fraction (the paper reports ~16% on average).
	rng := mathx.NewRNG(77)
	const n = 1000
	mass := make([]float32, n)
	counts := make([]int, n)
	for i := range mass {
		mass[i] = rng.Float32() * 0.001
		counts[i] = 1
	}
	for i := 0; i < 20; i++ {
		mass[rng.Intn(n)] = 0.5 + rng.Float32()
	}
	sel := SelectRowEarlyExit(mass, counts, 0.8, 20)
	if sel.Examined > n/4 {
		t.Fatalf("early exit examined %d of %d entries, want far fewer", sel.Examined, n)
	}
}

func TestEarlyExitDegenerateEqualScores(t *testing.T) {
	mass := []float32{2, 2, 2, 2}
	counts := []int{1, 1, 1, 1}
	sel := SelectRowEarlyExit(mass, counts, 0.6, 20)
	if sel.MassCovered <= 0.6*sel.TotalMass {
		t.Fatal("degenerate range must still satisfy coverage")
	}
	if len(sel.Selected) != 3 {
		t.Fatalf("expected 3 of 4 equal clusters, got %d", len(sel.Selected))
	}
}

func TestEarlyExitOvershootBounded(t *testing.T) {
	// The early-exit selection may overshoot the exact selection but never
	// by more than one bucket's worth of entries in the crossing bucket.
	rng := mathx.NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(200)
		mass := make([]float32, n)
		counts := make([]int, n)
		for i := range mass {
			mass[i] = rng.Float32()
			counts[i] = 1 + rng.Intn(10)
		}
		exact := SelectRow(mass, counts, 0.8)
		ee := SelectRowEarlyExit(mass, counts, 0.8, 20)
		// Both must satisfy the coverage guarantee.
		if ee.MassCovered <= 0.8*ee.TotalMass {
			t.Fatal("early exit failed coverage guarantee")
		}
		// Within the threshold-crossing bucket, count-weighting can make
		// early exit cross with slightly fewer or more entries than the
		// exact descending order; the deviation is bounded by one bucket of
		// entries. Assert a loose but meaningful mass bound: <= 2x exact.
		if ee.MassCovered > 2*exact.MassCovered+1e-9 {
			t.Fatalf("early exit covered %v vs exact %v", ee.MassCovered, exact.MassCovered)
		}
		// Selection sizes agree within one bucket's worth of entries.
		diff := len(ee.Selected) - len(exact.Selected)
		if diff < 0 {
			diff = -diff
		}
		if diff > n/20+n/10+1 { // generous bucket-width slack
			t.Fatalf("selection sizes diverge too much: ee=%d exact=%d n=%d",
				len(ee.Selected), len(exact.Selected), n)
		}
	}
}

func TestEarlyExitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectRowEarlyExit([]float32{1}, []int{1}, 0.5, 0)
}

func TestSelectMatrixUnion(t *testing.T) {
	masses := [][]float32{
		{10, 0.1, 0.1},
		{0.1, 10, 0.1},
	}
	counts := []int{1, 1, 1}
	s := Selector{Ratio: 0.8}
	res := s.SelectMatrix(masses, counts)
	if len(res.Union) != 2 || res.Union[0] != 0 || res.Union[1] != 1 {
		t.Fatalf("union = %v, want [0 1]", res.Union)
	}
	if res.SelectedTokenCount(counts) != 2 {
		t.Fatal("token count wrong")
	}
}

func TestSelectMatrixPerRowAdaptivity(t *testing.T) {
	// Row 0 is skewed (few clusters needed), row 1 uniform (many needed):
	// the per-row counts must differ — the core claim vs fixed top-k.
	skew := make([]float32, 50)
	uni := make([]float32, 50)
	counts := make([]int, 50)
	for i := range skew {
		skew[i] = 0.001
		uni[i] = 1
		counts[i] = 1
	}
	skew[0] = 100
	s := Selector{Ratio: 0.8}
	res := s.SelectMatrix([][]float32{skew, uni}, counts)
	if len(res.Rows[0].Selected) >= len(res.Rows[1].Selected) {
		t.Fatalf("adaptive selection failed: skewed=%d uniform=%d",
			len(res.Rows[0].Selected), len(res.Rows[1].Selected))
	}
}

func TestSelectMatrixEarlyExitMode(t *testing.T) {
	masses := [][]float32{{5, 1, 0.1, 0.1}}
	counts := []int{1, 1, 1, 1}
	exactSel := Selector{Ratio: 0.8}
	exact := exactSel.SelectMatrix(masses, counts)
	eeSel := Selector{Ratio: 0.8, Buckets: 10}
	ee := eeSel.SelectMatrix(masses, counts)
	if len(ee.Union) < len(exact.Union) {
		t.Fatal("early-exit union smaller than exact")
	}
	if ee.ExaminedFraction <= 0 || ee.ExaminedFraction > 1 {
		t.Fatalf("examined fraction out of range: %v", ee.ExaminedFraction)
	}
}

func TestSelectMatrixEmpty(t *testing.T) {
	s := Selector{Ratio: 0.5}
	res := s.SelectMatrix(nil, nil)
	if len(res.Union) != 0 || res.ExaminedFraction != 0 {
		t.Fatal("empty matrix should yield empty selection")
	}
}
