package wicsum

import (
	"testing"

	"vrex/internal/mathx"
)

// TestSelectMatrixSteadyStateAllocFree pins the scratch-reuse guarantee for
// both sorter variants: after the first call sizes the selector's arenas,
// sequential matrix thresholding performs zero heap allocations.
func TestSelectMatrixSteadyStateAllocFree(t *testing.T) {
	rng := mathx.NewRNG(31)
	const rows, cols = 48, 300
	masses := make([][]float32, rows)
	counts := make([]int, cols)
	for j := range counts {
		counts[j] = 1 + rng.Intn(32)
	}
	for i := range masses {
		row := make([]float32, cols)
		for j := range row {
			row[j] = rng.Float32()
		}
		masses[i] = row
	}
	for _, buckets := range []int{0, 20} {
		s := Selector{Ratio: 0.3, Buckets: buckets, Workers: 1}
		for i := 0; i < 3; i++ {
			s.SelectMatrix(masses, counts)
		}
		allocs := testing.AllocsPerRun(100, func() {
			s.SelectMatrix(masses, counts)
		})
		if allocs != 0 {
			t.Fatalf("buckets=%d: steady-state SelectMatrix allocates %v times per call, want 0", buckets, allocs)
		}
	}
}

// TestSelectMatrixScratchReuseKeepsResults guards the arena lifetime
// contract: results from one call must be fully consumed before the next
// call on the same selector, and consecutive calls on identical input yield
// identical selections.
func TestSelectMatrixScratchReuseKeepsResults(t *testing.T) {
	rng := mathx.NewRNG(32)
	const rows, cols = 8, 64
	masses := make([][]float32, rows)
	counts := make([]int, cols)
	for j := range counts {
		counts[j] = 1 + rng.Intn(8)
	}
	for i := range masses {
		row := make([]float32, cols)
		for j := range row {
			row[j] = rng.Float32()
		}
		masses[i] = row
	}
	s := Selector{Ratio: 0.3, Buckets: 20}
	first := s.SelectMatrix(masses, counts)
	union := append([]int(nil), first.Union...)
	selected := make([][]int, len(first.Rows))
	for i, r := range first.Rows {
		selected[i] = append([]int(nil), r.Selected...)
	}
	second := s.SelectMatrix(masses, counts)
	if len(second.Union) != len(union) {
		t.Fatalf("union size changed across identical calls: %d vs %d", len(second.Union), len(union))
	}
	for i := range union {
		if second.Union[i] != union[i] {
			t.Fatal("union diverged across identical calls")
		}
	}
	for i := range selected {
		if len(second.Rows[i].Selected) != len(selected[i]) {
			t.Fatalf("row %d selection size changed", i)
		}
		for j := range selected[i] {
			if second.Rows[i].Selected[j] != selected[i][j] {
				t.Fatalf("row %d selection diverged", i)
			}
		}
	}
}
