package wicsum

// SelectRowEarlyExit implements the WTU's early-exit sorting dataflow
// (Fig. 11). Instead of a full sort, the preprocess step computes the row's
// weighted sum, threshold and min/max score range; the token-selection step
// then bucket-sorts scores into nBuckets equal ranges and walks buckets from
// the highest range downward, accumulating each bucket's weighted mass and
// exiting as soon as the cumulative sum exceeds the threshold. Buckets below
// the exit point are never examined ("Skip" in Fig. 11), which is why the
// WTU touches only ~16% of entries per row on average.
//
// Within the final (threshold-crossing) bucket the entries are accumulated
// in index order, so the selection can slightly overshoot the exact
// descending-order selection — by at most one bucket's width of mass. The
// mass guarantee (covered > ratio*total) always holds, which is what
// accuracy depends on.
func SelectRowEarlyExit(mass []float32, counts []int, ratio float64, nBuckets int) RowSelection {
	if len(mass) != len(counts) {
		panic("wicsum: mass/counts length mismatch")
	}
	if nBuckets <= 0 {
		panic("wicsum: non-positive bucket count")
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	n := len(mass)
	sel := RowSelection{}
	if n == 0 {
		return sel
	}

	// Preprocess step: weighted sum, min/max, threshold (all single-pass
	// vector ops on the WTU's adder tree and min/max unit).
	minv, maxv := mass[0], mass[0]
	var total float64
	for j := 0; j < n; j++ {
		v := mass[j]
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
		total += float64(v) * float64(counts[j])
	}
	sel.TotalMass = total
	if total == 0 {
		return sel
	}
	th := total * ratio

	if maxv == minv {
		// Degenerate range: a single bucket holds everything; accumulate in
		// index order until the threshold trips.
		for j := 0; j < n; j++ {
			sel.Examined++
			sel.Selected = append(sel.Selected, j)
			sel.MassCovered += float64(mass[j]) * float64(counts[j])
			if sel.MassCovered > th {
				return sel
			}
		}
		return sel
	}

	// Bucket sort: bucket b covers scores in
	// [minv + b*width, minv + (b+1)*width). The bucket-range updater
	// produces per-bucket bitmasks; we realise them as index lists.
	width := (maxv - minv) / float32(nBuckets)
	buckets := make([][]int, nBuckets)
	for j := 0; j < n; j++ {
		b := int((mass[j] - minv) / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		buckets[b] = append(buckets[b], j)
	}

	// Token selection step: walk from the highest-range bucket downward,
	// early-exiting once the cumulative weighted sum exceeds the threshold.
	for b := nBuckets - 1; b >= 0; b-- {
		for _, j := range buckets[b] {
			sel.Examined++
			sel.Selected = append(sel.Selected, j)
			sel.MassCovered += float64(mass[j]) * float64(counts[j])
			if sel.MassCovered > th {
				return sel
			}
		}
	}
	return sel
}
