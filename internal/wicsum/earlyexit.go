package wicsum

// SelectRowEarlyExit implements the WTU's early-exit sorting dataflow
// (Fig. 11). Instead of a full sort, the preprocess step computes the row's
// weighted sum, threshold and min/max score range; the token-selection step
// then bucket-sorts scores into nBuckets equal ranges and walks buckets from
// the highest range downward, accumulating each bucket's weighted mass and
// exiting as soon as the cumulative sum exceeds the threshold. Buckets below
// the exit point are never examined ("Skip" in Fig. 11), which is why the
// WTU touches only ~16% of entries per row on average.
//
// Within the final (threshold-crossing) bucket the entries are accumulated
// in index order, so the selection can slightly overshoot the exact
// descending-order selection — by at most one bucket's width of mass. The
// mass guarantee (covered > ratio*total) always holds, which is what
// accuracy depends on.
func SelectRowEarlyExit(mass []float32, counts []int, ratio float64, nBuckets int) RowSelection {
	var ws rowScratch
	return ws.selectRowEarlyExit(mass, counts, ratio, nBuckets)
}

// selectRowEarlyExit is the scratch-backed kernel behind SelectRowEarlyExit:
// the bucket store is a counting sort over reusable buffers (the hardware's
// fixed bucket memory), so the steady state allocates nothing.
func (ws *rowScratch) selectRowEarlyExit(mass []float32, counts []int, ratio float64, nBuckets int) RowSelection {
	if len(mass) != len(counts) {
		panic("wicsum: mass/counts length mismatch")
	}
	if nBuckets <= 0 {
		panic("wicsum: non-positive bucket count")
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	n := len(mass)
	sel := RowSelection{}
	if n == 0 {
		return sel
	}

	// Preprocess step: weighted sum, min/max, threshold (all single-pass
	// vector ops on the WTU's adder tree and min/max unit).
	minv, maxv := mass[0], mass[0]
	var total float64
	for j := 0; j < n; j++ {
		v := mass[j]
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
		total += float64(v) * float64(counts[j])
	}
	sel.TotalMass = total
	if total == 0 {
		return sel
	}
	th := total * ratio
	start := len(ws.selected)

	if maxv == minv { //vrex:float-eq degenerate-range detection wants bit equality, not closeness
		// Degenerate range: a single bucket holds everything; accumulate in
		// index order until the threshold trips.
		for j := 0; j < n; j++ {
			sel.Examined++
			ws.selected = append(ws.selected, j)
			sel.MassCovered += float64(mass[j]) * float64(counts[j])
			if sel.MassCovered > th {
				break
			}
		}
		sel.Selected = ws.selected[start:]
		return sel
	}

	// Bucket sort: bucket b covers scores in
	// [minv + b*width, minv + (b+1)*width). The bucket-range updater
	// produces per-bucket bitmasks; we realise them as index runs in a
	// reusable counting-sort store (entries within a bucket stay in index
	// order, matching the per-bucket append order).
	width := (maxv - minv) / float32(nBuckets)
	bucketCount := grabInts(&ws.bucketCount, nBuckets)
	clear(bucketCount)
	bucketOf := func(j int) int {
		b := int((mass[j] - minv) / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		return b
	}
	for j := 0; j < n; j++ {
		bucketCount[bucketOf(j)]++
	}
	bucketStart := grabInts(&ws.bucketStart, nBuckets)
	pos := 0
	for b := 0; b < nBuckets; b++ {
		bucketStart[b] = pos
		pos += bucketCount[b]
	}
	items := grabInts(&ws.bucketItems, n)
	fill := grabInts(&ws.bucketCount, nBuckets) // reuse as per-bucket cursor
	copy(fill, bucketStart)
	for j := 0; j < n; j++ {
		b := bucketOf(j)
		items[fill[b]] = j
		fill[b]++
	}

	// Token selection step: walk from the highest-range bucket downward,
	// early-exiting once the cumulative weighted sum exceeds the threshold.
	// (fill aliased bucketCount, so bucket extents come from the starts.)
	for b := nBuckets - 1; b >= 0; b-- {
		end := n
		if b+1 < nBuckets {
			end = bucketStart[b+1]
		}
		for _, j := range items[bucketStart[b]:end] {
			sel.Examined++
			ws.selected = append(ws.selected, j)
			sel.MassCovered += float64(mass[j]) * float64(counts[j])
			if sel.MassCovered > th {
				sel.Selected = ws.selected[start:]
				return sel
			}
		}
	}
	sel.Selected = ws.selected[start:]
	return sel
}
