// Package wicsum implements ReSV's second stage, weighted cumulative sum
// (WiCSum) thresholding (Fig. 9 of the paper), and the early-exit bucket
// sorting dataflow the WTU hardware unit uses to execute it (Fig. 11).
//
// Given per-cluster relevance masses (the exp-normalised Query x
// Key_cluster^T scores) and per-cluster token counts, WiCSum selects, per
// score-matrix row (one row per query token x attention head), the smallest
// prefix of descending-sorted clusters whose weighted mass exceeds a fixed
// fraction Th_r-wics of the row's total weighted mass:
//
//	Sum_i      = sum_j mass[i][j] * count[j]                 (Eq. 1)
//	Th_wics_i  = Sum_i * Th_r-wics                           (Eq. 2)
//	select smallest t with sum_{j<=t} mass[i][sigma(j)]*count[sigma(j)]
//	    > Th_wics_i, sigma = descending sort of row i        (Eq. 3)
//
// Unlike fixed top-k, the number of selected clusters adapts to the row's
// score distribution, which is what produces the per-layer/per-head ratio
// variability of Fig. 20.
//
// The Selector runs the whole matrix through fixed per-worker scratch
// buffers — order permutations, bucket stores and selection arenas are
// reused across calls (the software analogue of the WTU's fixed on-chip
// buffers), so steady-state thresholding performs no heap allocation.
package wicsum

import (
	"slices"

	"vrex/internal/parallel"
)

// RowSelection is the outcome of thresholding one score row.
type RowSelection struct {
	// Selected holds the chosen cluster indices (unordered set semantics;
	// stored in selection order, highest mass first for the exact variant).
	// Slices produced by Selector.SelectMatrix alias the selector's reusable
	// arena and are valid until its next SelectMatrix call.
	Selected []int
	// MassCovered is the weighted mass accumulated by the selection.
	MassCovered float64
	// TotalMass is Sum_i, the row's full weighted mass.
	TotalMass float64
	// Examined counts score entries inspected before the threshold tripped;
	// the WTU's early exit makes this much smaller than the row length.
	Examined int
}

// Fraction returns MassCovered/TotalMass (1 if the row is empty).
func (r RowSelection) Fraction() float64 {
	if r.TotalMass == 0 {
		return 1
	}
	return r.MassCovered / r.TotalMass
}

// rowScratch is one worker's reusable buffers: the index permutation for the
// exact sort, the bucket store for the early-exit sorter, and the arena the
// per-row Selected slices are carved from.
type rowScratch struct {
	order       []int
	bucketCount []int
	bucketStart []int
	bucketItems []int
	selected    []int
}

// grabInts returns a length-n scratch slice, growing buf only when needed.
//
//vrex:noalloc
func grabInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// SelectRow performs exact WiCSum thresholding on one row: full descending
// sort, then cumulative accumulation until the weighted mass exceeds
// ratio * total. mass and counts must have equal length; mass entries must be
// non-negative (use mathx.ExpNormalize upstream). ratio is Th_r-wics in
// (0, 1]; values outside are clamped.
func SelectRow(mass []float32, counts []int, ratio float64) RowSelection {
	var ws rowScratch
	return ws.selectRow(mass, counts, ratio)
}

// selectRow is the scratch-backed exact kernel behind SelectRow.
func (ws *rowScratch) selectRow(mass []float32, counts []int, ratio float64) RowSelection {
	if len(mass) != len(counts) {
		panic("wicsum: mass/counts length mismatch")
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	n := len(mass)
	var total float64
	for j := 0; j < n; j++ {
		total += float64(mass[j]) * float64(counts[j])
	}
	if n == 0 || total == 0 {
		return RowSelection{TotalMass: total}
	}
	order := grabInts(&ws.order, n)
	for j := range order {
		order[j] = j
	}
	// Descending index sort; slices.SortFunc shares sort.Slice's pdqsort so
	// tie permutations are unchanged, without the interface boxing and
	// reflect swapper sort.Slice allocates per call.
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case mass[a] > mass[b]:
			return -1
		case mass[a] < mass[b]:
			return 1
		default:
			return 0
		}
	})
	th := total * ratio
	sel := RowSelection{TotalMass: total}
	start := len(ws.selected)
	for _, j := range order {
		sel.Examined++
		ws.selected = append(ws.selected, j)
		sel.MassCovered += float64(mass[j]) * float64(counts[j])
		if sel.MassCovered > th {
			break
		}
	}
	sel.Selected = ws.selected[start:]
	return sel
}

// Selector applies WiCSum thresholding to a whole score matrix and
// aggregates the per-row selections. Two strategies are available: Exact
// (software reference, full sort) and EarlyExit (the WTU hardware dataflow).
//
// A Selector owns reusable scratch (lazily allocated on first use), so its
// methods take a pointer receiver and a single Selector must not be shared
// across concurrent SelectMatrix calls. The returned MatrixSelection aliases
// that scratch and is valid until the next SelectMatrix call.
type Selector struct {
	// Ratio is Th_r-wics.
	Ratio float64
	// Buckets is the bucket count for the early-exit sorter (hardware uses a
	// fixed small number; <= 0 disables early-exit and falls back to exact).
	Buckets int
	// Workers shards row thresholding across goroutines (the software
	// analogue of the WTU's per-head parallelism): 0 uses GOMAXPROCS, 1 is
	// sequential. The selection is identical for any worker count — rows are
	// independent and the union is merged in row order.
	Workers int

	scr *matrixScratch
}

// matrixScratch holds the Selector's reusable buffers: per-worker row
// scratch, the row-selection slice, the union accumulator and its epoch-
// stamped seen marks.
type matrixScratch struct {
	workers []rowScratch
	rows    []RowSelection
	union   []int
	seen    []uint64
	epoch   uint64
}

// MatrixSelection aggregates row selections over a score matrix.
type MatrixSelection struct {
	Rows []RowSelection
	// Union is the sorted union of selected cluster indices over all rows
	// ("the indices of the clusters selected ... are aggregated across all
	// rows" in the paper).
	Union []int
	// ExaminedFraction is the mean fraction of entries examined per row —
	// the paper observes ~16% thanks to early exit.
	ExaminedFraction float64
}

// SelectMatrix thresholds every row of the masses matrix (rows x clusters)
// and aggregates. counts must have length == number of columns.
func (s *Selector) SelectMatrix(masses [][]float32, counts []int) MatrixSelection {
	if s.scr == nil {
		s.scr = &matrixScratch{}
	}
	scr := s.scr
	n := len(masses)
	if cap(scr.rows) < n {
		scr.rows = make([]RowSelection, n)
	}
	rows := scr.rows[:n]

	// Fan out: rows are thresholded independently in fixed per-worker
	// chunks, each worker writing its rows' slots and carving Selected
	// slices from its own arena. Small matrices stay on the caller's
	// goroutine — without constructing the fan-out closure, so the
	// sequential steady state is allocation-free.
	workers := parallel.Workers(s.Workers)
	if n < 4 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	for len(scr.workers) < workers {
		scr.workers = append(scr.workers, rowScratch{})
	}
	if workers <= 1 {
		if n > 0 {
			s.selectChunk(&scr.workers[0], masses, counts, rows, 0, n)
		}
	} else {
		chunk := (n + workers - 1) / workers
		parallel.ForEach(workers, workers, func(w int) {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo < hi {
				s.selectChunk(&scr.workers[w], masses, counts, rows, lo, hi)
			}
		})
	}

	// Fan in: aggregate in row order, so the union and the examined-fraction
	// accumulation are byte-identical to the sequential loop.
	out := MatrixSelection{Rows: rows}
	scr.epoch++
	seen := scr.seen
	if cap(seen) < len(counts) {
		seen = make([]uint64, len(counts))
		scr.seen = seen
	}
	seen = seen[:len(counts)]
	union := scr.union[:0]
	var examined, width float64
	for i := range rows {
		for _, j := range rows[i].Selected {
			if seen[j] != scr.epoch {
				seen[j] = scr.epoch
				union = append(union, j)
			}
		}
		examined += float64(rows[i].Examined)
		width += float64(len(masses[i]))
	}
	slices.Sort(union)
	scr.union = union
	out.Union = union
	if width > 0 {
		out.ExaminedFraction = examined / width
	}
	return out
}

// selectChunk thresholds rows [lo, hi) on one worker's scratch.
func (s *Selector) selectChunk(ws *rowScratch, masses [][]float32, counts []int, rows []RowSelection, lo, hi int) {
	ws.selected = ws.selected[:0]
	for i := lo; i < hi; i++ {
		if s.Buckets > 0 {
			rows[i] = ws.selectRowEarlyExit(masses[i], counts, s.Ratio, s.Buckets)
		} else {
			rows[i] = ws.selectRow(masses[i], counts, s.Ratio)
		}
	}
}

// SelectedTokenCount returns the number of tokens covered by the union given
// per-cluster token counts.
func (m MatrixSelection) SelectedTokenCount(counts []int) int {
	n := 0
	for _, j := range m.Union {
		n += counts[j]
	}
	return n
}
