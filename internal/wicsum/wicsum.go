// Package wicsum implements ReSV's second stage, weighted cumulative sum
// (WiCSum) thresholding (Fig. 9 of the paper), and the early-exit bucket
// sorting dataflow the WTU hardware unit uses to execute it (Fig. 11).
//
// Given per-cluster relevance masses (the exp-normalised Query x
// Key_cluster^T scores) and per-cluster token counts, WiCSum selects, per
// score-matrix row (one row per query token x attention head), the smallest
// prefix of descending-sorted clusters whose weighted mass exceeds a fixed
// fraction Th_r-wics of the row's total weighted mass:
//
//	Sum_i      = sum_j mass[i][j] * count[j]                 (Eq. 1)
//	Th_wics_i  = Sum_i * Th_r-wics                           (Eq. 2)
//	select smallest t with sum_{j<=t} mass[i][sigma(j)]*count[sigma(j)]
//	    > Th_wics_i, sigma = descending sort of row i        (Eq. 3)
//
// Unlike fixed top-k, the number of selected clusters adapts to the row's
// score distribution, which is what produces the per-layer/per-head ratio
// variability of Fig. 20.
package wicsum

import (
	"sort"

	"vrex/internal/parallel"
)

// RowSelection is the outcome of thresholding one score row.
type RowSelection struct {
	// Selected holds the chosen cluster indices (unordered set semantics;
	// stored in selection order, highest mass first for the exact variant).
	Selected []int
	// MassCovered is the weighted mass accumulated by the selection.
	MassCovered float64
	// TotalMass is Sum_i, the row's full weighted mass.
	TotalMass float64
	// Examined counts score entries inspected before the threshold tripped;
	// the WTU's early exit makes this much smaller than the row length.
	Examined int
}

// Fraction returns MassCovered/TotalMass (1 if the row is empty).
func (r RowSelection) Fraction() float64 {
	if r.TotalMass == 0 {
		return 1
	}
	return r.MassCovered / r.TotalMass
}

// SelectRow performs exact WiCSum thresholding on one row: full descending
// sort, then cumulative accumulation until the weighted mass exceeds
// ratio * total. mass and counts must have equal length; mass entries must be
// non-negative (use mathx.ExpNormalize upstream). ratio is Th_r-wics in
// (0, 1]; values outside are clamped.
func SelectRow(mass []float32, counts []int, ratio float64) RowSelection {
	if len(mass) != len(counts) {
		panic("wicsum: mass/counts length mismatch")
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	n := len(mass)
	var total float64
	for j := 0; j < n; j++ {
		total += float64(mass[j]) * float64(counts[j])
	}
	if n == 0 || total == 0 {
		return RowSelection{TotalMass: total}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return mass[order[a]] > mass[order[b]] })
	th := total * ratio
	sel := RowSelection{TotalMass: total}
	for _, j := range order {
		sel.Examined++
		sel.Selected = append(sel.Selected, j)
		sel.MassCovered += float64(mass[j]) * float64(counts[j])
		if sel.MassCovered > th {
			break
		}
	}
	return sel
}

// Selector applies WiCSum thresholding to a whole score matrix and
// aggregates the per-row selections. Two strategies are available: Exact
// (software reference, full sort) and EarlyExit (the WTU hardware dataflow).
type Selector struct {
	// Ratio is Th_r-wics.
	Ratio float64
	// Buckets is the bucket count for the early-exit sorter (hardware uses a
	// fixed small number; <= 0 disables early-exit and falls back to exact).
	Buckets int
	// Workers shards row thresholding across goroutines (the software
	// analogue of the WTU's per-head parallelism): 0 uses GOMAXPROCS, 1 is
	// sequential. The selection is identical for any worker count — rows are
	// independent and the union is merged in row order.
	Workers int
}

// MatrixSelection aggregates row selections over a score matrix.
type MatrixSelection struct {
	Rows []RowSelection
	// Union is the sorted union of selected cluster indices over all rows
	// ("the indices of the clusters selected ... are aggregated across all
	// rows" in the paper).
	Union []int
	// ExaminedFraction is the mean fraction of entries examined per row —
	// the paper observes ~16% thanks to early exit.
	ExaminedFraction float64
}

// SelectMatrix thresholds every row of the masses matrix (rows x clusters)
// and aggregates. counts must have length == number of columns.
func (s Selector) SelectMatrix(masses [][]float32, counts []int) MatrixSelection {
	// Fan out: rows are thresholded independently, results land in row order.
	// Small matrices stay on the caller's goroutine.
	workers := s.Workers
	if len(masses) < 4 {
		workers = 1
	}
	rows := parallel.Map(workers, len(masses), func(i int) RowSelection {
		if s.Buckets > 0 {
			return SelectRowEarlyExit(masses[i], counts, s.Ratio, s.Buckets)
		}
		return SelectRow(masses[i], counts, s.Ratio)
	})

	// Fan in: aggregate in row order, so the union and the examined-fraction
	// accumulation are byte-identical to the sequential loop.
	out := MatrixSelection{Rows: rows}
	inUnion := make(map[int]bool)
	var examined, width float64
	for i, rs := range rows {
		for _, j := range rs.Selected {
			if !inUnion[j] {
				inUnion[j] = true
				out.Union = append(out.Union, j)
			}
		}
		examined += float64(rs.Examined)
		width += float64(len(masses[i]))
	}
	sort.Ints(out.Union)
	if width > 0 {
		out.ExaminedFraction = examined / width
	}
	return out
}

// SelectedTokenCount returns the number of tokens covered by the union given
// per-cluster token counts.
func (m MatrixSelection) SelectedTokenCount(counts []int) int {
	n := 0
	for _, j := range m.Union {
		n += counts[j]
	}
	return n
}
