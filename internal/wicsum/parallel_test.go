package wicsum

import (
	"reflect"
	"testing"

	"vrex/internal/mathx"
)

// TestSelectMatrixParallelEquivalence: sharded row thresholding must produce
// exactly the sequential result — same rows, same union order, same
// examined-fraction accumulation — for both sorter variants.
func TestSelectMatrixParallelEquivalence(t *testing.T) {
	rng := mathx.NewRNG(9)
	const rows, cols = 64, 300
	masses := make([][]float32, rows)
	counts := make([]int, cols)
	for j := range counts {
		counts[j] = 1 + rng.Intn(32)
	}
	for i := range masses {
		row := make([]float32, cols)
		for j := range row {
			row[j] = rng.Float32()
		}
		masses[i] = row
	}
	for _, buckets := range []int{0, 20} {
		seqSel := Selector{Ratio: 0.3, Buckets: buckets, Workers: 1}
		seq := seqSel.SelectMatrix(masses, counts)
		for _, w := range []int{2, 4, 16} {
			parSel := Selector{Ratio: 0.3, Buckets: buckets, Workers: w}
			par := parSel.SelectMatrix(masses, counts)
			if !reflect.DeepEqual(seq.Rows, par.Rows) {
				t.Fatalf("buckets=%d workers=%d: rows diverged", buckets, w)
			}
			if !reflect.DeepEqual(seq.Union, par.Union) {
				t.Fatalf("buckets=%d workers=%d: union diverged", buckets, w)
			}
			if seq.ExaminedFraction != par.ExaminedFraction {
				t.Fatalf("buckets=%d workers=%d: examined fraction diverged", buckets, w)
			}
		}
	}
}
