package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2.5)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header and separator must align with the widest cell.
	if len(lines[1]) < len("longer-name") {
		t.Fatal("misaligned header")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "a,b\n1,2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		0.327:   "0.327",
		0.00012: "0.00012",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestNumRows(t *testing.T) {
	tb := NewTable("", "x")
	if tb.NumRows() != 0 {
		t.Fatal("empty table should have 0 rows")
	}
	tb.AddRow(1)
	if tb.NumRows() != 1 {
		t.Fatal("NumRows wrong")
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, 2.5)
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	out := sb.String()
	if !strings.Contains(out, "### demo") {
		t.Fatal("missing markdown title")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("malformed markdown:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 2.500 |") {
		t.Fatalf("missing data row:\n%s", out)
	}
}

func TestRenderAsDispatch(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1)
	var txt, csv, md strings.Builder
	tb.RenderAs(&txt, FormatText)
	tb.RenderAs(&csv, FormatCSV)
	tb.RenderAs(&md, FormatMarkdown)
	if csv.String() != "x\n1\n" {
		t.Fatalf("csv dispatch wrong: %q", csv.String())
	}
	if !strings.Contains(md.String(), "| x |") {
		t.Fatal("md dispatch wrong")
	}
	if txt.Len() == 0 {
		t.Fatal("text dispatch empty")
	}
	var fallback strings.Builder
	tb.RenderAs(&fallback, Format("bogus"))
	if fallback.String() != txt.String() {
		t.Fatal("unknown format should fall back to text")
	}
}
