// Package report renders experiment results as aligned text tables and CSV,
// the output format of the benchmark harness (cmd/vrex-bench) and of the
// EXPERIMENTS.md regeneration flow.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat picks a human scale: large values get thousands separators via
// %.0f, small ones keep precision.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas, which holds for all harness output).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders to a string (fmt.Stringer).
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
