package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderJSON(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("x", 1.5)
	tab.AddRow("y", 20000.0)
	var sb strings.Builder
	tab.RenderAs(&sb, FormatJSON)
	out := sb.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly one line, got %q", out)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.Title != "demo" || len(got.Headers) != 2 || len(got.Rows) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// Cells must match the shared cell formatter used by text/CSV.
	if got.Rows[0][1] != "1.500" || got.Rows[1][1] != "20000" {
		t.Fatalf("cell formatting diverged: %+v", got.Rows)
	}
}

func TestRenderJSONEmptyTable(t *testing.T) {
	var sb strings.Builder
	NewTable("empty", "h").RenderJSON(&sb)
	if strings.Contains(sb.String(), "null") {
		t.Fatalf("empty rows must encode as [], got %q", sb.String())
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "md", "json"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) should fail")
	}
}
