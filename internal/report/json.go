package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTable is the machine-readable wire form of a Table: cells carry the
// same formatted strings as the text/CSV/Markdown renderers, so every format
// agrees on values and the output stays byte-deterministic.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// RenderJSON writes the table as a single-line JSON object; a stream of
// tables (vrex-bench -format json) is therefore newline-delimited JSON,
// ready for jq or artifact ingestion.
func (t *Table) RenderJSON(w io.Writer) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonTable{Title: t.Title, Headers: t.Headers, Rows: rows}); err != nil {
		// Tables hold only strings; encoding cannot fail short of a broken
		// writer, which the text renderers ignore too.
		fmt.Fprintf(w, "{}\n")
	}
}
