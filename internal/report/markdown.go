package report

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the table as GitHub-flavoured Markdown (useful for
// pasting regenerated results into EXPERIMENTS.md).
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}

// Format names a rendering style.
type Format string

const (
	// FormatText is the aligned plain-text table (default).
	FormatText Format = "text"
	// FormatCSV is comma-separated values.
	FormatCSV Format = "csv"
	// FormatMarkdown is a GitHub-flavoured Markdown table.
	FormatMarkdown Format = "md"
	// FormatJSON is one JSON object per table (newline-delimited).
	FormatJSON Format = "json"
)

// ParseFormat validates a format name (e.g. a CLI flag value).
func ParseFormat(s string) (Format, error) {
	switch f := Format(s); f {
	case FormatText, FormatCSV, FormatMarkdown, FormatJSON:
		return f, nil
	}
	return "", fmt.Errorf("report: unknown format %q (known: text, csv, md, json)", s)
}

// RenderAs dispatches to the named format; unknown formats fall back to text.
func (t *Table) RenderAs(w io.Writer, f Format) {
	switch f {
	case FormatCSV:
		t.RenderCSV(w)
	case FormatMarkdown:
		t.RenderMarkdown(w)
	case FormatJSON:
		t.RenderJSON(w)
	default:
		t.Render(w)
	}
}
