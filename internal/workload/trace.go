package workload

import "sort"

// TraceEvent is one recorded session arrival: when the session joined, the
// stream class it drew, and how long it stayed. A Lifetime of 0 means the
// session was still present when the recording ended (on replay it stays for
// the rest of the run). Traces are the raw material of trace-replay
// scenarios: internal/scenario embeds them in .vrex files and compiles them
// back into the serving churn plane's arrival/lifetime/class hooks.
type TraceEvent struct {
	At       float64
	Class    string
	Lifetime float64
}

// TraceRecorder accumulates per-session arrival traces from a serving run:
// feed it every session's start (and, when observed, end), then read the
// replayable event list with Events. The zero value is not ready; use
// NewTraceRecorder.
type TraceRecorder struct {
	index  map[int]int // session id -> position in events
	events []TraceEvent
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{index: map[int]int{}}
}

// Start records session's arrival at time at with the given class name. A
// repeated Start for the same session overwrites the previous record.
func (r *TraceRecorder) Start(session int, at float64, class string) {
	if i, ok := r.index[session]; ok {
		r.events[i] = TraceEvent{At: at, Class: class}
		return
	}
	r.index[session] = len(r.events)
	r.events = append(r.events, TraceEvent{At: at, Class: class})
}

// End records session's departure; its lifetime becomes at minus its start.
// Ends for unknown sessions are ignored (the recording may have begun
// mid-run).
func (r *TraceRecorder) End(session int, at float64) {
	i, ok := r.index[session]
	if !ok {
		return
	}
	if life := at - r.events[i].At; life > 0 {
		r.events[i].Lifetime = life
	}
}

// Len returns the number of recorded sessions.
func (r *TraceRecorder) Len() int { return len(r.events) }

// Events returns the recorded arrivals sorted by arrival time (stable, so
// simultaneous arrivals keep recording order). Sessions never seen ending
// carry Lifetime 0 — on replay they stay until the run ends.
func (r *TraceRecorder) Events() []TraceEvent {
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
