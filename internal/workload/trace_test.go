package workload

import (
	"reflect"
	"testing"
)

func TestTraceRecorderLifetimes(t *testing.T) {
	r := NewTraceRecorder()
	r.Start(3, 5.0, "4fps")
	r.Start(1, 0.0, "2fps")
	r.Start(2, 2.5, "2fps")
	r.End(1, 8.0)
	r.End(9, 4.0) // unknown session: ignored
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Events()
	want := []TraceEvent{
		{At: 0.0, Class: "2fps", Lifetime: 8.0},
		{At: 2.5, Class: "2fps"},
		{At: 5.0, Class: "4fps"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Events = %+v, want %+v", got, want)
	}
}

func TestTraceRecorderRestartOverwrites(t *testing.T) {
	r := NewTraceRecorder()
	r.Start(1, 1.0, "2fps")
	r.End(1, 2.0)
	r.Start(1, 3.0, "4fps")
	got := r.Events()
	if len(got) != 1 || got[0] != (TraceEvent{At: 3.0, Class: "4fps"}) {
		t.Fatalf("restart must overwrite: %+v", got)
	}
}

func TestTraceRecorderStableTies(t *testing.T) {
	r := NewTraceRecorder()
	r.Start(2, 1.0, "b")
	r.Start(1, 1.0, "a")
	got := r.Events()
	if got[0].Class != "b" || got[1].Class != "a" {
		t.Fatalf("simultaneous arrivals must keep recording order: %+v", got)
	}
}
