package workload

import (
	"testing"

	"vrex/internal/mathx"
)

func TestTasksListAndNames(t *testing.T) {
	ts := Tasks()
	if len(ts) != 5 {
		t.Fatalf("want 5 task families, got %d", len(ts))
	}
	names := map[string]bool{}
	for _, task := range ts {
		names[task.String()] = true
	}
	for _, want := range []string{"Step", "Next", "Proc.", "Proc.+", "Task"} {
		if !names[want] {
			t.Errorf("missing task %q", want)
		}
	}
	if Task(99).String() == "" {
		t.Error("unknown task should still format")
	}
}

func TestNoiseOrdering(t *testing.T) {
	// Task recognition is the easiest (least noise); Proc.+ the hardest.
	if TaskTask.queryNoise() >= TaskStep.queryNoise() {
		t.Fatal("Task should be easier than Step")
	}
	if TaskProcPlus.queryNoise() <= TaskProc.queryNoise() {
		t.Fatal("Proc.+ should be harder than Proc.")
	}
}

func TestSessionShape(t *testing.T) {
	cfg := DefaultConfig()
	gen := NewGenerator(cfg, 64)
	s := gen.Session(TaskStep, 0)
	if len(s.FrameEmbeds) != cfg.Frames {
		t.Fatalf("frames = %d, want %d", len(s.FrameEmbeds), cfg.Frames)
	}
	if len(s.Queries) != cfg.Queries {
		t.Fatalf("queries = %d, want %d", len(s.Queries), cfg.Queries)
	}
	if s.TokensPerFrame() != cfg.Stream.TokensPerFrame {
		t.Fatal("tokens per frame wrong")
	}
	for _, q := range s.Queries {
		if q.Embeddings.Rows != cfg.QueryTokens || q.Embeddings.Cols != 64 {
			t.Fatalf("query shape %v", q.Embeddings)
		}
		if q.TargetScene < 0 || q.TargetScene > s.SceneOf[len(s.SceneOf)-1] {
			t.Fatalf("target scene %d out of range", q.TargetScene)
		}
	}
}

func TestSessionDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := NewGenerator(cfg, 64).Session(TaskNext, 3)
	b := NewGenerator(cfg, 64).Session(TaskNext, 3)
	for f := range a.FrameEmbeds {
		for i := range a.FrameEmbeds[f].Data {
			if a.FrameEmbeds[f].Data[i] != b.FrameEmbeds[f].Data[i] {
				t.Fatal("sessions not deterministic")
			}
		}
	}
	for qi := range a.Queries {
		if a.Queries[qi].TargetScene != b.Queries[qi].TargetScene {
			t.Fatal("query targets not deterministic")
		}
	}
}

func TestSessionsVary(t *testing.T) {
	cfg := DefaultConfig()
	gen := NewGenerator(cfg, 64)
	a := gen.Session(TaskStep, 0)
	b := gen.Session(TaskStep, 1)
	same := true
	for i := range a.FrameEmbeds[0].Data {
		if a.FrameEmbeds[0].Data[i] != b.FrameEmbeds[0].Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different session indices should differ")
	}
}

func TestNextTaskTargetsLastScene(t *testing.T) {
	cfg := DefaultConfig()
	gen := NewGenerator(cfg, 64)
	for si := 0; si < 5; si++ {
		s := gen.Session(TaskNext, si)
		last := s.SceneOf[len(s.SceneOf)-1]
		for _, q := range s.Queries {
			if q.TargetScene != last {
				t.Fatalf("TaskNext should target last scene %d, got %d", last, q.TargetScene)
			}
		}
	}
}

func TestFrameOfToken(t *testing.T) {
	cfg := DefaultConfig()
	s := NewGenerator(cfg, 64).Session(TaskStep, 0)
	tpf := s.TokensPerFrame()
	if s.FrameOfToken(0) != 0 || s.FrameOfToken(tpf-1) != 0 || s.FrameOfToken(tpf) != 1 {
		t.Fatal("FrameOfToken mapping wrong")
	}
}

func TestQuerySignalAboveNoiseFloor(t *testing.T) {
	// The planted query must correlate with its evidence scene's embeddings
	// far more than with other scenes'.
	cfg := DefaultConfig()
	gen := NewGenerator(cfg, 64)
	hits, trials := 0, 0
	for si := 0; si < 8; si++ {
		s := gen.Session(TaskTask, si)
		for _, q := range s.Queries {
			// Mean |cosine| between query rows and each scene's tokens.
			nScenes := s.SceneOf[len(s.SceneOf)-1] + 1
			best, bestSim := -1, -2.0
			for sc := 0; sc < nScenes; sc++ {
				var sims []float64
				for f, fsc := range s.SceneOf {
					if fsc != sc {
						continue
					}
					fm := s.FrameEmbeds[f]
					for r := 0; r < fm.Rows; r++ {
						sims = append(sims, mathx.CosineSimilarity(q.Embeddings.Row(0), fm.Row(r)))
					}
				}
				if m := mathx.Percentile(sims, 90); m > bestSim {
					best, bestSim = sc, m
				}
			}
			trials++
			if best == q.TargetScene {
				hits++
			}
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.6 {
		t.Fatalf("planted signal too weak: embedding-level hit rate %v", frac)
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(Config{}, 64)
}
