// Package workload generates COIN-like streaming QA scenarios: instructional
// "videos" made of step-structured scenes, with multi-turn queries whose
// answers live in specific past scenes. The paper evaluates five COIN task
// families (Table II); here each family controls where the queried evidence
// sits and how noisy the query is, producing the per-task accuracy /
// retrieval-ratio spread the table reports.
//
// The average working scenario matches the paper's COIN statistics: 26
// frames, 25 question tokens, 39 answer tokens (Sec. III-A).
package workload

import (
	"fmt"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
	"vrex/internal/vision"
)

// Task enumerates the five COIN benchmark families of Table II.
type Task int

const (
	// TaskStep is step recognition: the query references one specific past
	// step.
	TaskStep Task = iota
	// TaskNext is next-step prediction: evidence sits in the most recent
	// step.
	TaskNext
	// TaskProc is procedure segmentation: evidence in a mid-video step.
	TaskProc
	// TaskProcPlus is the harder procedure variant: evidence split across
	// an early step, with more query noise.
	TaskProcPlus
	// TaskTask is task recognition: evidence is global (any scene works),
	// the easiest family.
	TaskTask
)

// Tasks lists all five families in Table II column order.
func Tasks() []Task {
	return []Task{TaskStep, TaskNext, TaskProcPlus, TaskTask, TaskProc}
}

func (t Task) String() string {
	switch t {
	case TaskStep:
		return "Step"
	case TaskNext:
		return "Next"
	case TaskProc:
		return "Proc."
	case TaskProcPlus:
		return "Proc.+"
	case TaskTask:
		return "Task"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// queryNoise returns the query-construction noise level per family in units
// of the typical embedding norm (harder families have noisier queries; the
// signal gain is fixed at 1.5x, so SNR = 1.5/noise).
func (t Task) queryNoise() float64 {
	switch t {
	case TaskStep:
		return 0.6
	case TaskNext:
		return 0.4
	case TaskProc:
		return 0.8
	case TaskProcPlus:
		return 1.0
	default: // TaskTask
		return 0.3
	}
}

// Config shapes a generated session.
type Config struct {
	// Frames per session (paper average: 26).
	Frames int
	// QueryTokens per question (paper average: 25).
	QueryTokens int
	// AnswerTokens generated per question (paper average: 39).
	AnswerTokens int
	// Queries per session (multi-turn).
	Queries int
	// Stream configures the underlying synthetic video.
	Stream vision.StreamConfig
	// Seed drives query construction.
	Seed uint64
}

// DefaultConfig returns the paper's average COIN scenario.
func DefaultConfig() Config {
	sc := vision.DefaultStreamConfig()
	return Config{
		Frames:       26,
		QueryTokens:  25,
		AnswerTokens: 39,
		Queries:      3,
		Stream:       sc,
		Seed:         7,
	}
}

// Query is one question over the session history.
type Query struct {
	// Embeddings is QueryTokens x Dim, ready to feed the model.
	Embeddings *tensor.Matrix
	// TargetScene is the ground-truth scene holding the evidence.
	TargetScene int
	// Task is the family this query belongs to.
	Task Task
}

// Session is a fully materialised scenario: per-frame model-input embeddings
// plus queries with ground truth.
type Session struct {
	// FrameEmbeds[i] is frame i's model-input embeddings
	// (TokensPerFrame x Dim).
	FrameEmbeds []*tensor.Matrix
	// SceneOf[i] is frame i's scene id.
	SceneOf []int
	Queries []Query
}

// TokensPerFrame returns the per-frame token count.
func (s *Session) TokensPerFrame() int {
	if len(s.FrameEmbeds) == 0 {
		return 0
	}
	return s.FrameEmbeds[0].Rows
}

// FrameOfToken maps a global token index (during the frame phase) to its
// frame index.
func (s *Session) FrameOfToken(tok int) int { return tok / s.TokensPerFrame() }

// Generator builds sessions for a model embedding width.
type Generator struct {
	cfg  Config
	dim  int
	enc  *vision.Encoder
	proj *vision.Projector
	rng  *mathx.RNG
}

// NewGenerator creates a generator that emits sessions with model-input
// embeddings of width dim (the LLM's Dim), using the vision encoder +
// projector pipeline of Fig. 3.
func NewGenerator(cfg Config, dim int) *Generator {
	if cfg.Frames <= 0 || cfg.QueryTokens <= 0 {
		panic("workload: non-positive session shape")
	}
	embedDim := 2 * cfg.Stream.PixelDim
	return &Generator{
		cfg:  cfg,
		dim:  dim,
		enc:  vision.NewEncoder(cfg.Stream.TokensPerFrame, cfg.Stream.PixelDim, embedDim, cfg.Seed^0xabc),
		proj: vision.NewProjector(embedDim, 2*dim, dim, cfg.Seed^0xdef),
		rng:  mathx.NewRNG(cfg.Seed),
	}
}

// Session materialises one scenario for the given task family. Each session
// uses an independent sub-seed so sessions are i.i.d. but reproducible.
func (g *Generator) Session(task Task, sessionIdx int) *Session {
	streamCfg := g.cfg.Stream
	streamCfg.Seed = g.cfg.Stream.Seed + uint64(sessionIdx)*1000003
	stream := vision.NewStream(streamCfg)
	rng := mathx.NewRNG(g.cfg.Seed ^ (uint64(sessionIdx+1) * 0x9e37))

	s := &Session{}
	for f := 0; f < g.cfg.Frames; f++ {
		frame := stream.Next()
		emb := g.proj.Project(g.enc.Encode(frame))
		s.FrameEmbeds = append(s.FrameEmbeds, emb)
		s.SceneOf = append(s.SceneOf, frame.SceneID)
	}
	for q := 0; q < g.cfg.Queries; q++ {
		s.Queries = append(s.Queries, g.buildQuery(s, task, rng))
	}
	return s
}

// buildQuery plants evidence: the query embedding mixes the target scene's
// content with task-dependent noise, so a model attending to the right
// tokens can answer and one that dropped them cannot.
func (g *Generator) buildQuery(s *Session, task Task, rng *mathx.RNG) Query {
	nScenes := s.SceneOf[len(s.SceneOf)-1] + 1
	var target int
	switch task {
	case TaskNext:
		target = nScenes - 1
	case TaskProc:
		target = nScenes / 2
	case TaskProcPlus:
		target = nScenes / 4
	default: // TaskStep, TaskTask: any scene
		target = rng.Intn(nScenes)
	}
	// Evidence content: a specific spatial token of the target scene's
	// middle frame (the "salient object" the question is about). Using one
	// concrete token keeps the planted signal sharp — its key, and the
	// AR-correlated keys of the same spatial slot in adjacent frames of the
	// scene, are what a correct answer must attend to.
	var sceneFrames []int
	for f, sc := range s.SceneOf {
		if sc == target {
			sceneFrames = append(sceneFrames, f)
		}
	}
	mid := sceneFrames[len(sceneFrames)/2]
	slot := rng.Intn(s.FrameEmbeds[mid].Rows)
	evidence := s.FrameEmbeds[mid].Row(slot)

	// Normalise to the typical embedding norm so the task noise levels are
	// calibrated SNRs regardless of projector scaling.
	typ := typicalNorm(s.FrameEmbeds)
	en := norm(evidence)
	gain := float32(0)
	if en > 0 {
		gain = 1.5 * typ / en
	}
	// Per-dim sigma = level*typ/sqrt(dim) makes the noise vector's expected
	// norm equal to level*typ, i.e. SNR = 1.5/level.
	sigma := float32(task.queryNoise()) * typ / sqrt32(float32(g.dim))
	q := tensor.NewMatrix(g.cfg.QueryTokens, g.dim)
	for i := 0; i < q.Rows; i++ {
		row := q.Row(i)
		for d := range row {
			row[d] = gain*evidence[d] + sigma*rng.Norm32()
		}
	}
	return Query{Embeddings: q, TargetScene: target, Task: task}
}

// typicalNorm returns the mean row norm across the session's embeddings.
func typicalNorm(frames []*tensor.Matrix) float32 {
	var sum float64
	n := 0
	for _, fm := range frames {
		for r := 0; r < fm.Rows; r++ {
			sum += float64(norm(fm.Row(r)))
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return float32(sum / float64(n))
}

func norm(v []float32) float32 {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	return sqrt32(float32(ss))
}

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 16; i++ {
		x = (x + v/x) / 2
	}
	return x
}
