package policyspec

import (
	"reflect"
	"testing"
)

func TestParseBareName(t *testing.T) {
	sp, err := Parse("  ReSV ")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "resv" {
		t.Fatalf("name %q, want resv", sp.Name)
	}
	if got := sp.Float("frame", 0.5); got != 0.5 {
		t.Fatalf("absent param must default: got %v", got)
	}
	if err := sp.CheckConsumed("frame"); err != nil {
		t.Fatal(err)
	}
}

func TestParseParams(t *testing.T) {
	sp, err := Parse("rekv( frame = 0.58 , text=0.31, size=10 )")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Float("frame", 0) != 0.58 || sp.Float("text", 0) != 0.31 {
		t.Fatal("params not parsed")
	}
	if sp.Int("size", 0) != 10 {
		t.Fatal("int param not parsed")
	}
	if err := sp.CheckConsumed("frame", "text", "size"); err != nil {
		t.Fatal(err)
	}
}

func TestUnusedReported(t *testing.T) {
	sp, err := Parse("resv(typo=1,other=2)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Unused(); !reflect.DeepEqual(got, []string{"other", "typo"}) {
		t.Fatalf("unused %v", got)
	}
	if err := sp.CheckConsumed("frame", "text"); err == nil {
		t.Fatal("unknown params must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "  ", "rekv(frame=0.5", "rekv(frame)", "rekv(=1)",
		"rekv(frame=)", "rekv(frame=1,frame=2)",
		"(frame=1)", "a=b",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestStrParams(t *testing.T) {
	sp, err := Parse("spill(evict=LRU,pages=16)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Str("evict", "fifo"); got != "lru" {
		t.Fatalf("string param %q, want lru (lower-cased)", got)
	}
	if sp.Int("pages", 0) != 16 {
		t.Fatal("numeric param alongside string param not parsed")
	}
	if got := sp.Str("absent", "def"); got != "def" {
		t.Fatalf("absent string param must default: got %q", got)
	}
	if err := sp.CheckConsumed("evict", "pages"); err != nil {
		t.Fatal(err)
	}
}

func TestFloatOnStringValueReported(t *testing.T) {
	// A non-numeric value consumed as a number is a type error, surfaced by
	// CheckConsumed so registries reject it ("rekv(frame=zero)" stays fatal).
	sp, err := Parse("rekv(frame=zero)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Float("frame", 0.5); got != 0.5 {
		t.Fatalf("ill-typed param must fall back to default, got %v", got)
	}
	if err := sp.CheckConsumed("frame"); err == nil {
		t.Fatal("type mismatch must be reported by CheckConsumed")
	}
}

func TestEmptyParamList(t *testing.T) {
	for _, s := range []string{"rekv()", "rekv(  )"} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if sp.Name != "rekv" || len(sp.Unused()) != 0 {
			t.Fatalf("Parse(%q) = %+v", s, sp)
		}
	}
}

func TestHas(t *testing.T) {
	sp, _ := Parse("x(a=1)")
	if !sp.Has("a") || sp.Has("b") {
		t.Fatal("Has wrong")
	}
	// Has must not consume.
	if err := sp.CheckConsumed("a"); err == nil {
		t.Fatal("Has must not mark the key consumed")
	}
}
