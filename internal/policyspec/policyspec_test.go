package policyspec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBareName(t *testing.T) {
	sp, err := Parse("  ReSV ")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "resv" {
		t.Fatalf("name %q, want resv", sp.Name)
	}
	if got := sp.Float("frame", 0.5); got != 0.5 {
		t.Fatalf("absent param must default: got %v", got)
	}
	if err := sp.CheckConsumed("frame"); err != nil {
		t.Fatal(err)
	}
}

func TestParseParams(t *testing.T) {
	sp, err := Parse("rekv( frame = 0.58 , text=0.31, size=10 )")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Float("frame", 0) != 0.58 || sp.Float("text", 0) != 0.31 {
		t.Fatal("params not parsed")
	}
	if sp.Int("size", 0) != 10 {
		t.Fatal("int param not parsed")
	}
	if err := sp.CheckConsumed("frame", "text", "size"); err != nil {
		t.Fatal(err)
	}
}

func TestUnusedReported(t *testing.T) {
	sp, err := Parse("resv(typo=1,other=2)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Unused(); !reflect.DeepEqual(got, []string{"other", "typo"}) {
		t.Fatalf("unused %v", got)
	}
	if err := sp.CheckConsumed("frame", "text"); err == nil {
		t.Fatal("unknown params must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "  ", "rekv(frame=0.5", "rekv(frame)", "rekv(=1)",
		"rekv(frame=)", "rekv(frame=1,frame=2)",
		"(frame=1)", "a=b",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestStrParams(t *testing.T) {
	sp, err := Parse("spill(evict=LRU,pages=16)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Str("evict", "fifo"); got != "lru" {
		t.Fatalf("string param %q, want lru (lower-cased)", got)
	}
	if sp.Int("pages", 0) != 16 {
		t.Fatal("numeric param alongside string param not parsed")
	}
	if got := sp.Str("absent", "def"); got != "def" {
		t.Fatalf("absent string param must default: got %q", got)
	}
	if err := sp.CheckConsumed("evict", "pages"); err != nil {
		t.Fatal(err)
	}
}

func TestFloatOnStringValueReported(t *testing.T) {
	// A non-numeric value consumed as a number is a type error, surfaced by
	// CheckConsumed so registries reject it ("rekv(frame=zero)" stays fatal).
	sp, err := Parse("rekv(frame=zero)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Float("frame", 0.5); got != 0.5 {
		t.Fatalf("ill-typed param must fall back to default, got %v", got)
	}
	if err := sp.CheckConsumed("frame"); err == nil {
		t.Fatal("type mismatch must be reported by CheckConsumed")
	}
}

func TestEmptyParamList(t *testing.T) {
	for _, s := range []string{"rekv()", "rekv(  )"} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if sp.Name != "rekv" || len(sp.Unused()) != 0 {
			t.Fatalf("Parse(%q) = %+v", s, sp)
		}
	}
}

func TestHas(t *testing.T) {
	sp, _ := Parse("x(a=1)")
	if !sp.Has("a") || sp.Has("b") {
		t.Fatal("Has wrong")
	}
	// Has must not consume.
	if err := sp.CheckConsumed("a"); err == nil {
		t.Fatal("Has must not mark the key consumed")
	}
}

func TestCheckConsumedErrorMessages(t *testing.T) {
	// Unknown key: the error must name both the offending and the known keys
	// so CLI typos are self-diagnosing.
	sp, err := Parse("resv(frmae=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	sp.Float("frame", 0.5)
	cerr := sp.CheckConsumed("frame", "text")
	if cerr == nil {
		t.Fatal("unknown key must fail CheckConsumed")
	}
	for _, want := range []string{"frmae", "frame", "text"} {
		if !strings.Contains(cerr.Error(), want) {
			t.Fatalf("error %q must mention %q", cerr, want)
		}
	}

	// Malformed number: reported with the offending literal, and takes
	// precedence over the unconsumed-parameter report.
	sp, err = Parse("rekv(frame=0x,typo=1)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Float("frame", 0.25); got != 0.25 {
		t.Fatalf("malformed number must fall back to default, got %v", got)
	}
	cerr = sp.CheckConsumed("frame")
	if cerr == nil || !strings.Contains(cerr.Error(), `bad number "0x"`) {
		t.Fatalf("malformed number not reported: %v", cerr)
	}

	// Unconsumed params: every leftover key listed, sorted.
	sp, err = Parse("fifo(z=1,a=2)")
	if err != nil {
		t.Fatal(err)
	}
	cerr = sp.CheckConsumed()
	if cerr == nil || !strings.Contains(cerr.Error(), "a, z") {
		t.Fatalf("unconsumed keys not listed sorted: %v", cerr)
	}
}

func TestIntOnMalformedNumberReported(t *testing.T) {
	sp, err := Parse("spill(pages=many)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Int("pages", 4); got != 4 {
		t.Fatalf("malformed int must fall back to default, got %v", got)
	}
	if err := sp.CheckConsumed("pages"); err == nil {
		t.Fatal("malformed int must be reported by CheckConsumed")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		spec string
		ps   []Param
	}{
		{"resv", nil},
		{"diurnal(rate=0.5,amp=0.9,period=12)", []Param{P("rate", 0.5), P("amp", 0.9), P("period", 12.0)}},
		{"spill(evict=lru,pages=16)", []Param{P("evict", "lru"), P("pages", 16)}},
		{"flash(rate=0.3333333333333333,mult=8)", []Param{P("rate", 1.0/3), P("mult", 8.0)}},
	} {
		name, _, _ := strings.Cut(tc.spec, "(")
		got := Format(name, tc.ps...)
		if got != tc.spec {
			t.Fatalf("Format = %q, want %q", got, tc.spec)
		}
		sp, err := Parse(got)
		if err != nil {
			t.Fatalf("Format output %q must re-parse: %v", got, err)
		}
		for _, p := range tc.ps {
			switch v := p.Value.(type) {
			case float64:
				if sp.Float(p.Key, -1) != v {
					t.Fatalf("%s: param %s did not survive the round trip exactly", got, p.Key)
				}
			case int:
				if sp.Int(p.Key, -1) != v {
					t.Fatalf("%s: param %s did not survive the round trip", got, p.Key)
				}
			case string:
				if sp.Str(p.Key, "") != v {
					t.Fatalf("%s: param %s did not survive the round trip", got, p.Key)
				}
			}
		}
	}
}

func TestFormatRejectsUnknownValueType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Format must panic on unsupported value types")
		}
	}()
	Format("x", P("a", []int{1}))
}
