// Package policyspec parses the declarative policy spec strings shared by
// the hwsim and retrieval registries: a lower-case policy name with optional
// typed parameters, e.g.
//
//	resv
//	rekv(frame=0.58,text=0.31)
//	infinigen(text=0.068)
//
// Registries consume parameters by key; any key left unconsumed is a spec
// error reported back to the caller, so typos in CLI flags fail loudly
// instead of silently using defaults.
package policyspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is one parsed policy spec: a normalised name plus keyed numeric
// parameters. Consume parameters with Float/Int and finish with Unused to
// reject unknown keys.
type Spec struct {
	// Name is the policy name, lower-cased and trimmed.
	Name string

	params map[string]float64
	used   map[string]bool
}

// Parse parses "name" or "name(k=v,k2=v2)". Names are case-insensitive;
// whitespace around tokens is ignored; duplicate keys and malformed numbers
// are errors.
func Parse(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("policyspec: empty spec")
	}
	name := s
	var arg string
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("policyspec: %q: missing closing parenthesis", s)
		}
		name = s[:i]
		arg = s[i+1 : len(s)-1]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || strings.ContainsAny(name, "()=,") {
		return nil, fmt.Errorf("policyspec: %q: malformed policy name", s)
	}
	sp := &Spec{Name: name, params: map[string]float64{}, used: map[string]bool{}}
	if strings.TrimSpace(arg) == "" {
		// "name" and "name()" are equivalent.
		return sp, nil
	}
	for _, kv := range strings.Split(arg, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("policyspec: %q: parameter %q is not key=value", s, strings.TrimSpace(kv))
		}
		key := strings.ToLower(strings.TrimSpace(k))
		if key == "" {
			return nil, fmt.Errorf("policyspec: %q: empty parameter key", s)
		}
		if _, dup := sp.params[key]; dup {
			return nil, fmt.Errorf("policyspec: %q: duplicate parameter %q", s, key)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("policyspec: %q: parameter %s: bad number %q", s, key, strings.TrimSpace(v))
		}
		sp.params[key] = f
	}
	return sp, nil
}

// Float consumes the parameter key, returning def when absent.
func (s *Spec) Float(key string, def float64) float64 {
	if v, ok := s.params[key]; ok {
		s.used[key] = true
		return v
	}
	return def
}

// Int consumes the parameter key as an integer (truncating), returning def
// when absent.
func (s *Spec) Int(key string, def int) int {
	if v, ok := s.params[key]; ok {
		s.used[key] = true
		return int(v)
	}
	return def
}

// Has reports whether the key was given (without consuming it).
func (s *Spec) Has(key string) bool {
	_, ok := s.params[key]
	return ok
}

// Unused returns the sorted parameter keys never consumed by Float/Int —
// unknown parameters the registry should reject.
func (s *Spec) Unused() []string {
	var out []string
	for k := range s.params {
		if !s.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsumed returns an error naming any unconsumed parameters, listing
// the keys the policy does accept.
func (s *Spec) CheckConsumed(known ...string) error {
	if u := s.Unused(); len(u) > 0 {
		return fmt.Errorf("policyspec: policy %q does not accept parameter(s) %s (known: %s)",
			s.Name, strings.Join(u, ", "), strings.Join(known, ", "))
	}
	return nil
}
