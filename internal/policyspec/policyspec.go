// Package policyspec parses the declarative policy spec strings shared by
// the hwsim, retrieval and kvpool registries: a lower-case policy name with
// optional typed parameters, e.g.
//
//	resv
//	rekv(frame=0.58,text=0.31)
//	infinigen(text=0.068)
//	spill(evict=lru,pages=16)
//
// Registries consume parameters by key — numerically via Float/Int, or as
// enumeration strings via Str — and finish with CheckConsumed, which reports
// both unconsumed keys and type mismatches (a non-numeric value consumed by
// Float). Typos in CLI flags therefore fail loudly instead of silently using
// defaults.
package policyspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is one parsed policy spec: a normalised name plus keyed parameters.
// Consume parameters with Float/Int/Str and finish with CheckConsumed to
// reject unknown keys and ill-typed values.
type Spec struct {
	// Name is the policy name, lower-cased and trimmed.
	Name string

	raw  map[string]string
	nums map[string]float64
	used map[string]bool
	errs []string
}

// Parse parses "name" or "name(k=v,k2=v2)". Names are case-insensitive;
// whitespace around tokens is ignored; duplicate keys are errors. Values may
// be numbers or bare strings (enumeration values like evict=lru); whether a
// string value is acceptable is decided by the consumer (Float records a
// type error, Str accepts it).
func Parse(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("policyspec: empty spec")
	}
	name := s
	var arg string
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("policyspec: %q: missing closing parenthesis", s)
		}
		name = s[:i]
		arg = s[i+1 : len(s)-1]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || strings.ContainsAny(name, "()=,") {
		return nil, fmt.Errorf("policyspec: %q: malformed policy name", s)
	}
	sp := &Spec{Name: name, raw: map[string]string{}, nums: map[string]float64{}, used: map[string]bool{}}
	if strings.TrimSpace(arg) == "" {
		// "name" and "name()" are equivalent.
		return sp, nil
	}
	for _, kv := range strings.Split(arg, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("policyspec: %q: parameter %q is not key=value", s, strings.TrimSpace(kv))
		}
		key := strings.ToLower(strings.TrimSpace(k))
		if key == "" {
			return nil, fmt.Errorf("policyspec: %q: empty parameter key", s)
		}
		if _, dup := sp.raw[key]; dup {
			return nil, fmt.Errorf("policyspec: %q: duplicate parameter %q", s, key)
		}
		val := strings.TrimSpace(v)
		if val == "" {
			return nil, fmt.Errorf("policyspec: %q: parameter %s: empty value", s, key)
		}
		sp.raw[key] = val
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			sp.nums[key] = f
		}
	}
	return sp, nil
}

// Float consumes the parameter key as a number, returning def when absent. A
// present but non-numeric value records a type error reported by
// CheckConsumed.
func (s *Spec) Float(key string, def float64) float64 {
	if _, ok := s.raw[key]; !ok {
		return def
	}
	s.used[key] = true
	v, ok := s.nums[key]
	if !ok {
		s.errs = append(s.errs, fmt.Sprintf("parameter %s: bad number %q", key, s.raw[key]))
		return def
	}
	return v
}

// Int consumes the parameter key as an integer (truncating), returning def
// when absent.
func (s *Spec) Int(key string, def int) int {
	if _, ok := s.raw[key]; !ok {
		return def
	}
	return int(s.Float(key, float64(def)))
}

// Str consumes the parameter key as a string (lower-cased — string values
// are enumeration names), returning def when absent.
func (s *Spec) Str(key, def string) string {
	v, ok := s.raw[key]
	if !ok {
		return def
	}
	s.used[key] = true
	return strings.ToLower(v)
}

// Has reports whether the key was given (without consuming it).
func (s *Spec) Has(key string) bool {
	_, ok := s.raw[key]
	return ok
}

// Unused returns the sorted parameter keys never consumed by Float/Int/Str —
// unknown parameters the registry should reject.
func (s *Spec) Unused() []string {
	var out []string
	for k := range s.raw {
		if !s.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Param is one key=value parameter for Format. Value must be a string,
// float64 or int; floats render with the shortest representation that
// re-parses exactly, so Format output is a fixed point of Parse.
type Param struct {
	Key   string
	Value any
}

// P builds a Param — sugar for Format call sites.
func P(key string, value any) Param { return Param{Key: key, Value: value} }

// Format renders a canonical spec string — "name" for no parameters,
// "name(k=v,k2=v2)" otherwise — in the given parameter order. It is the
// inverse of Parse for well-formed inputs: Parse(Format(n, ps...)) yields the
// same name and parameter values, and the scenario marshaller relies on
// Format being a fixed point (formatting a parsed spec reproduces it byte for
// byte).
func Format(name string, params ...Param) string {
	if len(params) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, p := range params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.Key)
		sb.WriteByte('=')
		switch v := p.Value.(type) {
		case string:
			sb.WriteString(v)
		case float64:
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case int:
			sb.WriteString(strconv.Itoa(v))
		default:
			panic(fmt.Sprintf("policyspec: Format value for %s must be string, float64 or int, got %T", p.Key, p.Value))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// CheckConsumed returns an error for any type mismatch recorded during
// consumption, then for unconsumed parameters, listing the keys the policy
// does accept.
func (s *Spec) CheckConsumed(known ...string) error {
	if len(s.errs) > 0 {
		return fmt.Errorf("policyspec: policy %q: %s", s.Name, strings.Join(s.errs, "; "))
	}
	if u := s.Unused(); len(u) > 0 {
		return fmt.Errorf("policyspec: policy %q does not accept parameter(s) %s (known: %s)",
			s.Name, strings.Join(u, ", "), strings.Join(known, ", "))
	}
	return nil
}
