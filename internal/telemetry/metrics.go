package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"

	"vrex/internal/report"
	"vrex/internal/serve"
)

// latencyBounds are the fixed log-scale histogram bucket upper bounds in
// seconds: 1e-4 · 2^i. Fixed buckets keep every export comparable across
// runs and policies (no data-dependent bucketing).
var latencyBounds = func() []float64 {
	b := make([]float64, 18)
	for i := range b {
		b[i] = 1e-4 * math.Pow(2, float64(i))
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram for one operation and class.
type Histogram struct {
	// Op is "frame" or "query"; Class the stream class name.
	Op, Class string
	// Counts[i] counts samples <= latencyBounds[i]; the final entry is the
	// +Inf overflow bucket.
	Counts []int
	// Sum / N are the sample total and count.
	Sum float64
	N   int
}

// Counter is one (kind, class, device) event count.
type Counter struct {
	Kind   serve.EventKind
	Class  string
	Device int
	Count  int
}

// Window is one fixed-width slice of the run's time-series, in the style of
// cluster.Window.
type Window struct {
	// Start is the window's start time in simulated seconds.
	Start float64
	// Event counts inside the window.
	FramesServed, FramesDropped, DeadlineMisses, QueriesServed int
	Degraded, Restored, Migrations                             int
	// ActiveSessions is the session-count gauge sampled at the window's end.
	ActiveSessions int
}

// Metrics is the registry computed from a collector's streams.
type Metrics struct {
	Counters   []Counter
	Histograms []Histogram
	Windows    []Window
	// WindowWidth is the window size in seconds.
	WindowWidth float64
	// StallSeconds[d] maps stall kind name to charged seconds on device d.
	StallSeconds []map[string]float64
	// PeakActive / FinalActive are the session gauge's extremes.
	PeakActive, FinalActive int
}

// Metrics folds the collected streams into the registry. width is the
// time-series window size (<= 0 collapses to one window over the whole
// duration).
func (c *Collector) Metrics(width, duration float64) *Metrics {
	if width <= 0 || width > duration {
		width = duration
	}
	nW := int(math.Ceil(duration / width))
	if nW < 1 {
		nW = 1
	}
	m := &Metrics{WindowWidth: width, Windows: make([]Window, nW)}
	for w := range m.Windows {
		m.Windows[w].Start = float64(w) * width
	}
	idx := func(at float64) int {
		w := int(at / width)
		if w >= nW {
			w = nW - 1
		}
		if w < 0 {
			w = 0
		}
		return w
	}
	window := func(at float64) *Window { return &m.Windows[idx(at)] }

	counts := make(map[Counter]int)
	hists := make(map[[2]string]*Histogram)
	sample := func(op, class string, lat float64) {
		key := [2]string{op, class}
		h := hists[key]
		if h == nil {
			h = &Histogram{Op: op, Class: class, Counts: make([]int, len(latencyBounds)+1)}
			hists[key] = h
		}
		i := sort.SearchFloat64s(latencyBounds, lat)
		h.Counts[i]++
		h.Sum += lat
		h.N++
	}
	starts := make([]int, nW)
	ends := make([]int, nW)
	for _, ev := range c.Events() {
		counts[Counter{Kind: ev.Kind, Class: ev.Class, Device: ev.Device}]++
		w := window(ev.Time)
		switch ev.Kind {
		case serve.EventSessionStart:
			starts[idx(ev.Time)]++
		case serve.EventSessionEnd:
			ends[idx(ev.Time)]++
		case serve.EventFrameServed:
			w.FramesServed++
			sample("frame", ev.Class, ev.Latency)
		case serve.EventFrameDropped:
			w.FramesDropped++
		case serve.EventDeadlineMissed:
			w.DeadlineMisses++
		case serve.EventQueryServed:
			w.QueriesServed++
			sample("query", ev.Class, ev.Latency)
		case serve.EventDegraded:
			w.Degraded++
		case serve.EventRestored:
			w.Restored++
		case serve.EventSessionMigrated:
			w.Migrations++
		default:
			// remaining kinds land in Counters above but have no window column
		}
	}
	active := 0
	for w := range m.Windows {
		active += starts[w] - ends[w]
		m.Windows[w].ActiveSessions = active
		if active > m.PeakActive {
			m.PeakActive = active
		}
	}
	m.FinalActive = active

	m.Counters = make([]Counter, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		m.Counters = append(m.Counters, k)
	}
	sort.Slice(m.Counters, func(i, j int) bool {
		a, b := m.Counters[i], m.Counters[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Device < b.Device
	})
	m.Histograms = make([]Histogram, 0, len(hists))
	for _, h := range hists {
		m.Histograms = append(m.Histograms, *h)
	}
	sort.Slice(m.Histograms, func(i, j int) bool {
		a, b := m.Histograms[i], m.Histograms[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Class < b.Class
	})

	maxDev := 0
	for _, st := range c.stalls {
		if st.Device > maxDev {
			maxDev = st.Device
		}
	}
	m.StallSeconds = make([]map[string]float64, maxDev+1)
	for d := range m.StallSeconds {
		m.StallSeconds[d] = map[string]float64{}
	}
	for _, st := range c.stalls {
		m.StallSeconds[st.Device][st.Kind.String()] += st.Dur
	}
	return m
}

// WritePrometheus writes the registry in Prometheus text exposition format.
// Output is deterministic: series are emitted in sorted label order.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintln(w, "# HELP vrex_events_total Engine events by kind, class and device.")
	fmt.Fprintln(w, "# TYPE vrex_events_total counter")
	for _, c := range m.Counters {
		fmt.Fprintf(w, "vrex_events_total{kind=%q,class=%q,device=\"%d\"} %d\n",
			c.Kind.String(), c.Class, c.Device, c.Count)
	}
	fmt.Fprintln(w, "# HELP vrex_latency_seconds Completion latency of served work.")
	fmt.Fprintln(w, "# TYPE vrex_latency_seconds histogram")
	for _, h := range m.Histograms {
		cum := 0
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(latencyBounds) {
				le = formatBound(latencyBounds[i])
			}
			fmt.Fprintf(w, "vrex_latency_seconds_bucket{op=%q,class=%q,le=%q} %d\n",
				h.Op, h.Class, le, cum)
		}
		fmt.Fprintf(w, "vrex_latency_seconds_sum{op=%q,class=%q} %g\n", h.Op, h.Class, h.Sum)
		fmt.Fprintf(w, "vrex_latency_seconds_count{op=%q,class=%q} %d\n", h.Op, h.Class, h.N)
	}
	fmt.Fprintln(w, "# HELP vrex_stall_seconds_total Device-timeline stall seconds by kind.")
	fmt.Fprintln(w, "# TYPE vrex_stall_seconds_total counter")
	for d, kinds := range m.StallSeconds {
		names := make([]string, 0, len(kinds))
		for name := range kinds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "vrex_stall_seconds_total{device=\"%d\",kind=%q} %g\n", d, name, kinds[name])
		}
	}
	fmt.Fprintln(w, "# HELP vrex_active_sessions_peak Peak concurrent sessions.")
	fmt.Fprintln(w, "# TYPE vrex_active_sessions_peak gauge")
	fmt.Fprintf(w, "vrex_active_sessions_peak %d\n", m.PeakActive)
	fmt.Fprintln(w, "# HELP vrex_active_sessions Concurrent sessions at end of run.")
	fmt.Fprintln(w, "# TYPE vrex_active_sessions gauge")
	fmt.Fprintf(w, "vrex_active_sessions %d\n", m.FinalActive)
}

// formatBound renders a bucket bound compactly and stably (%g keeps
// 0.0001 .. 13.1072 readable without trailing zeros).
func formatBound(v float64) string { return fmt.Sprintf("%g", v) }

// CounterTable renders the event counters as a report table.
func (m *Metrics) CounterTable() *report.Table {
	t := report.NewTable("Event counters", "kind", "class", "device", "count")
	for _, c := range m.Counters {
		t.AddRow(c.Kind.String(), c.Class, c.Device, c.Count)
	}
	return t
}

// HistogramTable renders the non-empty buckets of every latency histogram.
func (m *Metrics) HistogramTable() *report.Table {
	t := report.NewTable("Latency histograms (log buckets)", "op", "class", "le_ms", "count", "cum")
	for _, h := range m.Histograms {
		cum := 0
		for i, n := range h.Counts {
			cum += n
			if n == 0 {
				continue
			}
			le := "+Inf"
			if i < len(latencyBounds) {
				le = formatBound(latencyBounds[i] * 1e3)
			}
			t.AddRow(h.Op, h.Class, le, n, cum)
		}
	}
	return t
}

// WindowTable renders the windowed time-series.
func (m *Metrics) WindowTable() *report.Table {
	t := report.NewTable("Windowed series", "t0", "served", "dropped", "missed",
		"queries", "degraded", "restored", "migrations", "active")
	for _, w := range m.Windows {
		t.AddRow(w.Start, w.FramesServed, w.FramesDropped, w.DeadlineMisses,
			w.QueriesServed, w.Degraded, w.Restored, w.Migrations, w.ActiveSessions)
	}
	return t
}
