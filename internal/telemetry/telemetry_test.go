package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"

	"vrex/internal/cluster"
	"vrex/internal/degrade"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/serve"
)

// schedConfig is a scheduler-plane serving run whose event delivery order
// is non-monotone in time (served events surface when their batch forms).
func schedConfig(t *testing.T) serve.Config {
	t.Helper()
	mix, err := serve.ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix {
		mix[i].Stream.QueryEvery = 7
		mix[i].Stream.StartKV = 5000
	}
	pol, err := serve.ParseScheduler("edf")
	if err != nil {
		t.Fatal(err)
	}
	return serve.Config{
		Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
		Streams: 8, Duration: 20, Classes: mix, Devices: 2,
		Scheduler:     serve.SchedulerConfig{Policy: pol, BatchMax: 4},
		DropThreshold: 4, Seed: 11,
	}
}

func monotone(ts []float64) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return false
		}
	}
	return true
}

// TestEventsReorderedAtFlush is the satellite regression for the
// Event.Time documentation gap: the scheduler plane delivers events out of
// time order, and the collector must not assume sorted input — Events()
// stable-sorts at flush.
func TestEventsReorderedAtFlush(t *testing.T) {
	cfg := schedConfig(t)
	col := NewCollector()
	col.Attach(&cfg)
	serve.Run(cfg)

	raw := make([]float64, 0, len(col.Raw()))
	for _, ev := range col.Raw() {
		raw = append(raw, ev.Time)
	}
	if monotone(raw) {
		t.Fatal("scheduler-plane delivery was monotone; the regression lost its teeth — " +
			"pick a config that batches across arrivals")
	}
	sorted := col.Events()
	ts := make([]float64, 0, len(sorted))
	for _, ev := range sorted {
		ts = append(ts, ev.Time)
	}
	if !monotone(ts) {
		t.Fatal("Events() must be time-sorted")
	}
	if len(sorted) != len(col.Raw()) {
		t.Fatal("sort must not lose events")
	}
	// Stability: equal-time events keep engine delivery order.
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Time != sorted[i-1].Time {
			continue
		}
		// Find both in the raw stream; the earlier one must come first.
		a, b := indexOf(col.Raw(), sorted[i-1]), indexOf(col.Raw(), sorted[i])
		if a > b {
			t.Fatalf("equal-time events reordered at %g", sorted[i].Time)
		}
	}
}

func indexOf(evs []serve.Event, want serve.Event) int {
	for i, ev := range evs {
		if ev == want || (math.IsNaN(ev.Latency) && math.IsNaN(want.Latency) && sameButLatency(ev, want)) {
			return i
		}
	}
	return -1
}

func sameButLatency(a, b serve.Event) bool {
	a.Latency, b.Latency = 0, 0
	return a == b
}

// TestTraceMonotonePerLane pins the acceptance criterion: the emitted
// Chrome trace parses as JSON and every lane's timestamps are monotone,
// even though the engine delivered events out of order.
func TestTraceMonotonePerLane(t *testing.T) {
	cfg := schedConfig(t)
	col := NewCollector()
	col.Attach(&cfg)
	serve.Run(cfg)

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	lanes := map[[2]int][]float64{}
	batches := 0
	for _, te := range trace.TraceEvents {
		if te.Ph == "M" {
			continue
		}
		if te.Ph == "X" && strings.HasPrefix(te.Name, "batch") {
			batches++
		}
		if te.Ts < 0 || te.Dur < 0 {
			t.Fatalf("negative timestamp/duration: %+v", te)
		}
		key := [2]int{te.Pid, te.Tid}
		lanes[key] = append(lanes[key], te.Ts)
	}
	if batches == 0 {
		t.Fatal("scheduler-plane trace must contain batch slices")
	}
	for key, ts := range lanes {
		if !monotone(ts) {
			t.Fatalf("lane pid=%d tid=%d not monotone", key[0], key[1])
		}
	}
}

// TestMetricsRegistry checks counters, histograms and windows against the
// run's own Result, and the Prometheus exposition's internal consistency.
func TestMetricsRegistry(t *testing.T) {
	cfg := schedConfig(t)
	col := NewCollector()
	col.Attach(&cfg)
	res := serve.Run(cfg)

	m := col.Metrics(1, cfg.Duration)
	if len(m.Windows) != 20 {
		t.Fatalf("want 20 windows, got %d", len(m.Windows))
	}
	served, dropped, queries := 0, 0, 0
	for _, w := range m.Windows {
		served += w.FramesServed
		dropped += w.FramesDropped
		queries += w.QueriesServed
	}
	agg := res.Aggregate
	if served != agg.FramesServed || dropped != agg.FramesDropped || queries != agg.QueriesServed {
		t.Fatalf("windows (%d/%d/%d) disagree with Result (%d/%d/%d)",
			served, dropped, queries, agg.FramesServed, agg.FramesDropped, agg.QueriesServed)
	}
	// Histogram sample counts equal served work per op.
	histN := map[string]int{}
	for _, h := range m.Histograms {
		cum := 0
		for _, n := range h.Counts {
			cum += n
		}
		if cum != h.N {
			t.Fatalf("histogram %s/%s buckets sum %d != N %d", h.Op, h.Class, cum, h.N)
		}
		histN[h.Op] += h.N
	}
	if histN["frame"] != agg.FramesServed || histN["query"] != agg.QueriesServed {
		t.Fatalf("histogram totals %v disagree with Result", histN)
	}
	if m.PeakActive == 0 || m.PeakActive < m.FinalActive {
		t.Fatalf("active gauge inconsistent: peak=%d final=%d", m.PeakActive, m.FinalActive)
	}

	var prom bytes.Buffer
	m.WritePrometheus(&prom)
	text := prom.String()
	for _, want := range []string{
		"# TYPE vrex_events_total counter",
		"# TYPE vrex_latency_seconds histogram",
		`le="+Inf"`,
		"# TYPE vrex_active_sessions gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Determinism: a second export is byte-identical.
	var again bytes.Buffer
	col.Metrics(1, cfg.Duration).WritePrometheus(&again)
	if !bytes.Equal(prom.Bytes(), again.Bytes()) {
		t.Fatal("Prometheus export is not deterministic")
	}
}

// TestAttributionTableSorted pins the profile table's ordering and total.
func TestAttributionTableSorted(t *testing.T) {
	p := &serve.PhaseProfile{PageIn: 3, PageOut: 1, MigrationSend: 0.5}
	p.Sim.Attn = 7
	p.Sim.Linear = 7 // ties break by name
	tab := AttributionTable(p)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	order := []string{"attention", "weights (linear)", "kv page-in", "kv page-out", "migration send", "total"}
	last := -1
	for _, name := range order {
		i := strings.Index(out, name)
		if i < 0 {
			t.Fatalf("missing row %q:\n%s", name, out)
		}
		if i < last {
			t.Fatalf("row %q out of order:\n%s", name, out)
		}
		last = i
	}
}

// TestCompletenessClusterRun is the satellite coverage test: a
// churn+spill+degrade+cluster run reconstructs every session's span with a
// balanced lifecycle, and per-kind event counts match the Result counters.
func TestCompletenessClusterRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep; skipped in -short")
	}
	mix, err := serve.ParseMix("2fps:0.6,4fps:0.4")
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix {
		mix[i].Stream.QueryEvery = 6
		mix[i].Stream.StartKV = 8000
	}
	pol, err := serve.ParseScheduler("edf")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := kvpool.ParseSpill("spill(evict=lru,pages=8)")
	if err != nil {
		t.Fatal(err)
	}
	dp, err := degrade.Parse("pressure(lo=0.2,hi=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	deg := serve.DegradeConfig{Policy: dp.Controller, Step: dp.Step, Floor: dp.Floor}
	base := serve.Config{
		Pol:     hwsim.ReSVModel(),
		Streams: 8, Duration: 30, Classes: mix,
		Churn: serve.ChurnConfig{ArrivalRate: 0.3, MeanLifetime: 10},
		// ~35 default pages per device: one 8000-token session fits, two thrash.
		KV:            serve.KVConfig{Capacity: 35 * 256 * 131072, Spill: sp},
		Scheduler:     serve.SchedulerConfig{Policy: pol, BatchMax: 4, SLO: 0.7},
		Degrade:       deg,
		DropThreshold: 4, Seed: 7,
	}
	col := NewCollector()
	prof := col.Attach(&base)
	router, err := cluster.ParseRouter("least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Config{
		Nodes: []cluster.NodeSpec{
			{Spec: hwsim.VRex48(), Devices: 2, Region: "us"},
			{Spec: hwsim.VRex48(), Devices: 2, Region: "eu"},
		},
		Base: base, Router: router,
		Faults:          []cluster.Fault{{Kind: cluster.FaultDrain, Node: 1, At: 12, Recover: 20}},
		Rebalance:       cluster.RebalanceConfig{MaxMoves: 4, Slack: 1},
		ControlInterval: 1,
	})

	spans, err := BuildSpans(col.Events())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != res.Serve.Aggregate.Sessions {
		t.Fatalf("%d spans for %d sessions", len(spans), res.Serve.Aggregate.Sessions)
	}
	counts := map[serve.EventKind]int{}
	for _, ev := range col.Events() {
		counts[ev.Kind]++
	}
	agg := res.Serve.Aggregate
	mig := res.Serve.Migrations
	for _, chk := range []struct {
		kind serve.EventKind
		want int
		name string
	}{
		{serve.EventSessionStart, agg.Sessions, "sessions"},
		{serve.EventSessionEnd, agg.Sessions, "session ends"},
		{serve.EventFrameServed, agg.FramesServed, "frames served"},
		{serve.EventFrameDropped, agg.FramesDropped, "frames dropped"},
		{serve.EventQueryServed, agg.QueriesServed, "queries served"},
		{serve.EventQueryDropped, agg.QueriesDropped, "queries dropped"},
		{serve.EventDeadlineMissed, agg.DeadlineMisses, "deadline misses"},
		{serve.EventSessionMigrated, mig.Live + mig.Lossy, "migrations"},
		{serve.EventDegraded, agg.Degradations, "degradations"},
		{serve.EventRestored, agg.Restorations, "restorations"},
	} {
		if counts[chk.kind] != chk.want {
			t.Errorf("%s: %d events, Result says %d", chk.name, counts[chk.kind], chk.want)
		}
	}
	if mig.Live == 0 {
		t.Error("drain produced no live migrations; the scenario lost its pressure")
	}
	if agg.Degradations == 0 {
		t.Error("no degradations; the scenario lost its pressure")
	}
	// Span tallies agree with the same counters session by session.
	totFrames, totMig := 0, 0
	for _, sp := range spans {
		totFrames += sp.Frames
		totMig += sp.Migrations
	}
	if totFrames != agg.FramesServed || totMig != mig.Live+mig.Lossy {
		t.Errorf("span tallies (%d frames, %d migrations) disagree with Result (%d, %d)",
			totFrames, totMig, agg.FramesServed, mig.Live+mig.Lossy)
	}
	// The cluster profile conserves too.
	if prof.Charged <= 0 {
		t.Fatal("cluster run charged nothing")
	}
	if diff := math.Abs(prof.Total() - prof.Charged); diff > 1e-9 {
		t.Fatalf("cluster attribution leak: %g", diff)
	}
	// Spans are internally time-sorted.
	for _, sp := range spans {
		ts := make([]float64, 0, len(sp.Events))
		for _, ev := range sp.Events {
			ts = append(ts, ev.Time)
		}
		if !sort.Float64sAreSorted(ts) {
			t.Fatalf("session %d span events not sorted", sp.Session)
		}
	}
}
