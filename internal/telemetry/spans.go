package telemetry

import (
	"fmt"
	"sort"

	"vrex/internal/serve"
)

// Span is one session's reconstructed lifecycle: the start→end interval
// plus every event that touched the session, in time order.
type Span struct {
	Session int
	Class   string
	// Start / End bound the session's presence window.
	Start, End float64
	// Started / Ended record whether the lifecycle events were both seen
	// (a balanced span has both).
	Started, Ended bool
	// Device is the session's final device.
	Device int
	// Event tallies over the span.
	Frames, Drops, Queries, QueryDrops int
	Migrations, Degradations, Restores int
	DeadlineMisses, Queued, Admissions int
	// Events is the session's slice of the time-sorted stream.
	Events []serve.Event
}

// Balanced reports whether the span saw exactly one start and one end.
func (s *Span) Balanced() bool { return s.Started && s.Ended }

// BuildSpans folds a time-sorted event stream (Collector.Events) into one
// span per session, ordered by session index. Device-lifecycle events
// (session -1) are skipped. It returns an error if any session's lifecycle
// is unbalanced (missing or duplicated start/end) — the engine emits both
// for every created session, so an unbalanced span means event loss.
func BuildSpans(events []serve.Event) ([]Span, error) {
	bySession := map[int]*Span{}
	order := []int{}
	for _, ev := range events {
		if ev.Session < 0 {
			continue
		}
		sp := bySession[ev.Session]
		if sp == nil {
			sp = &Span{Session: ev.Session, Class: ev.Class, Device: ev.Device}
			bySession[ev.Session] = sp
			order = append(order, ev.Session)
		}
		sp.Events = append(sp.Events, ev)
		sp.Device = ev.Device
		switch ev.Kind {
		case serve.EventSessionStart:
			if sp.Started {
				return nil, fmt.Errorf("telemetry: session %d started twice", ev.Session)
			}
			sp.Started = true
			sp.Start = ev.Time
		case serve.EventSessionEnd:
			if sp.Ended {
				return nil, fmt.Errorf("telemetry: session %d ended twice", ev.Session)
			}
			sp.Ended = true
			sp.End = ev.Time
		case serve.EventFrameServed:
			sp.Frames++
		case serve.EventFrameDropped:
			sp.Drops++
		case serve.EventQueryServed:
			sp.Queries++
		case serve.EventQueryDropped:
			sp.QueryDrops++
		case serve.EventSessionMigrated:
			sp.Migrations++
		case serve.EventDegraded:
			sp.Degradations++
		case serve.EventRestored:
			sp.Restores++
		case serve.EventDeadlineMissed:
			sp.DeadlineMisses++
		case serve.EventSessionQueued:
			sp.Queued++
		case serve.EventSessionAdmitted:
			sp.Admissions++
		default:
			// batch/device events carry no session and never reach a span
		}
	}
	sort.Ints(order)
	spans := make([]Span, 0, len(order))
	for _, s := range order {
		sp := bySession[s]
		if !sp.Balanced() {
			return nil, fmt.Errorf("telemetry: session %d span unbalanced (started=%v ended=%v)",
				s, sp.Started, sp.Ended)
		}
		spans = append(spans, *sp)
	}
	return spans, nil
}
