// Package telemetry is the simulator's observability plane: it consumes the
// serving engine's event and stall streams (serve.TelemetrySink) and renders
// them as a metrics registry (counters, gauges, log-bucket latency
// histograms, windowed time-series; Prometheus text exposition or
// report tables), per-session spans and Chrome trace-event JSON loadable in
// Perfetto / chrome://tracing, and a sorted phase-attribution table over the
// engine's PhaseProfile. Everything is simulated-time and deterministic:
// identical runs (any Workers setting) produce byte-identical exports.
package telemetry

import (
	"sort"

	"vrex/internal/serve"
)

// DeviceStall is one non-compute occupation of a device timeline (KV paging
// or a migration leg), as reported by the engine.
type DeviceStall struct {
	Device     int
	Start, Dur float64
	Kind       serve.StallKind
}

// Collector implements serve.TelemetrySink by buffering the raw streams.
// The engine's delivery order is deterministic but — documented on
// serve.Event — not globally time-monotone under the scheduler plane
// (served events surface when their batch forms, after later arrivals), so
// every accessor that needs time order stable-sorts at flush rather than
// assuming sorted input.
type Collector struct {
	events []serve.Event
	stalls []DeviceStall
	// sorted caches the stable time-sort of events (invalidated on append).
	sorted []serve.Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach wires the collector and a fresh phase profile into cfg and returns
// the profile; run the config, then export.
func (c *Collector) Attach(cfg *serve.Config) *serve.PhaseProfile {
	prof := &serve.PhaseProfile{}
	cfg.Telemetry = serve.TelemetryConfig{Sink: c, Profile: prof}
	return prof
}

// Observe implements serve.Observer.
func (c *Collector) Observe(ev serve.Event) {
	c.events = append(c.events, ev)
	c.sorted = nil
}

// Stall implements serve.TelemetrySink.
func (c *Collector) Stall(device int, start, dur float64, kind serve.StallKind) {
	c.stalls = append(c.stalls, DeviceStall{Device: device, Start: start, Dur: dur, Kind: kind})
}

// Events returns the event stream stable-sorted by time: equal-time events
// keep the engine's deterministic delivery order, and scheduler-plane
// out-of-order delivery is repaired here (the reorder buffer at flush).
// The returned slice is shared; callers must not mutate it.
func (c *Collector) Events() []serve.Event {
	if c.sorted == nil {
		c.sorted = make([]serve.Event, len(c.events))
		copy(c.sorted, c.events)
		sort.SliceStable(c.sorted, func(i, j int) bool {
			return c.sorted[i].Time < c.sorted[j].Time
		})
	}
	return c.sorted
}

// Raw returns the events in engine delivery order (shared; do not mutate).
func (c *Collector) Raw() []serve.Event { return c.events }

// Stalls returns the stall stream stable-sorted by start time (shared; do
// not mutate the records).
func (c *Collector) Stalls() []DeviceStall {
	out := make([]DeviceStall, len(c.stalls))
	copy(out, c.stalls)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
