package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"vrex/internal/serve"
)

// traceEvent is one Chrome trace-event record (the JSON object format the
// Perfetto / chrome://tracing loaders accept). Timestamps and durations are
// microseconds of simulated time.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Lane layout: pid 1 holds one thread per device (batches, paging stalls
// and migration legs as complete slices), pid 2 one thread per session
// (the presence-window slice plus instant marks for every session event).
const (
	pidDevices  = 1
	pidSessions = 2
)

// WriteTrace emits the collected run as Chrome trace-event JSON. Events
// within each lane are sorted by timestamp (ties keep delivery order), so
// every lane is monotone regardless of the engine's scheduler-plane
// delivery order. Deterministic: identical streams produce identical bytes.
func (c *Collector) WriteTrace(w io.Writer) error {
	spans, err := BuildSpans(c.Events())
	if err != nil {
		return err
	}
	var out []traceEvent
	meta := func(pid int, name string) {
		out = append(out, traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
	}
	thread := func(pid, tid int, name string) {
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	meta(pidDevices, "devices")
	meta(pidSessions, "sessions")

	// Device lanes: batches (scheduler plane) and stalls as complete slices.
	devLanes := map[int][]traceEvent{}
	for _, ev := range c.Events() {
		if ev.Kind != serve.EventBatchFormed {
			continue
		}
		devLanes[ev.Device] = append(devLanes[ev.Device], traceEvent{
			Name: fmt.Sprintf("batch x%d", ev.Batch), Ph: "X", Cat: "batch",
			Pid: pidDevices, Tid: ev.Device,
			Ts: us(ev.Time), Dur: us(ev.Latency),
			Args: map[string]any{"head_session": ev.Session, "size": ev.Batch},
		})
	}
	for _, st := range c.Stalls() {
		devLanes[st.Device] = append(devLanes[st.Device], traceEvent{
			Name: st.Kind.String(), Ph: "X", Cat: "stall",
			Pid: pidDevices, Tid: st.Device,
			Ts: us(st.Start), Dur: us(st.Dur),
		})
	}
	devs := make([]int, 0, len(devLanes))
	for d := range devLanes {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		thread(pidDevices, d, fmt.Sprintf("device %d", d))
		lane := devLanes[d]
		sort.SliceStable(lane, func(i, j int) bool { return lane[i].Ts < lane[j].Ts })
		out = append(out, lane...)
	}

	// Session lanes: the presence window as one slice, every event a mark.
	for _, sp := range spans {
		thread(pidSessions, sp.Session, fmt.Sprintf("session %d (%s)", sp.Session, sp.Class))
		lane := []traceEvent{{
			Name: fmt.Sprintf("session %d", sp.Session), Ph: "X", Cat: "session",
			Pid: pidSessions, Tid: sp.Session,
			Ts: us(sp.Start), Dur: us(sp.End - sp.Start),
			Args: map[string]any{"class": sp.Class, "frames": sp.Frames, "drops": sp.Drops},
		}}
		for _, ev := range sp.Events {
			te := traceEvent{
				Name: ev.Kind.String(), Ph: "i", S: "t", Cat: "event",
				Pid: pidSessions, Tid: sp.Session, Ts: us(ev.Time),
				Args: map[string]any{"device": ev.Device, "kv": ev.KV},
			}
			if !math.IsNaN(ev.Latency) {
				te.Args["latency_ms"] = ev.Latency * 1e3
			}
			lane = append(lane, te)
		}
		sort.SliceStable(lane, func(i, j int) bool { return lane[i].Ts < lane[j].Ts })
		out = append(out, lane...)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{out})
}

// us converts simulated seconds to trace microseconds.
func us(sec float64) float64 { return sec * 1e6 }
