package telemetry

import (
	"sort"

	"vrex/internal/report"
	"vrex/internal/serve"
)

// AttributionTable renders the profile as a sorted one-level flamegraph of
// simulated time: each phase's device-seconds and share of the attributed
// total, largest first (name breaks ties for determinism). The final row is
// the total, which equals the engine-charged device-seconds within float
// tolerance (serve.PhaseProfile's conservation invariant).
func AttributionTable(p *serve.PhaseProfile) *report.Table {
	phases := []struct {
		name string
		secs float64
	}{
		{"attention", p.Sim.Attn},
		{"weights (linear)", p.Sim.Linear},
		{"vision tower", p.Sim.Vision},
		{"kv prediction", p.Sim.Pred},
		{"retrieval fetch", p.Sim.Fetch},
		{"kv page-in", p.PageIn},
		{"kv page-out", p.PageOut},
		{"migration send", p.MigrationSend},
		{"migration recv", p.MigrationRecv},
	}
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].secs != phases[j].secs {
			return phases[i].secs > phases[j].secs
		}
		return phases[i].name < phases[j].name
	})
	total := p.Total()
	t := report.NewTable("Phase attribution (simulated device-seconds)",
		"phase", "seconds", "share_pct")
	for _, ph := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * ph.secs / total
		}
		t.AddRow(ph.name, ph.secs, share)
	}
	t.AddRow("total", total, 100.0)
	return t
}
