package kvcache

import (
	"testing"

	"vrex/internal/mathx"
)

// TestHierarchyRandomOpsInvariants drives the hierarchy with random
// append/enforce/fetch/release sequences and checks global invariants after
// every operation:
//
//  1. every token is in exactly one tier (trivially true by representation,
//     asserted via tier validity),
//  2. device-resident count never exceeds capacity right after Enforce,
//  3. transfer accounting only grows, and fetch bytes are consistent with
//     fetch tokens,
//  4. a token's data is never lost: Key/Value views always return the
//     originally appended values regardless of tier shuffling.
func TestHierarchyRandomOpsInvariants(t *testing.T) {
	rng := mathx.NewRNG(2024)
	const dim = 4
	for trial := 0; trial < 30; trial++ {
		c := NewLayerCache(dim)
		capTokens := 4 + rng.Intn(20)
		h := NewHierarchy(c, capTokens, TierStorage, 2)
		layout := NewClusterLayout()
		var prevLog TransferLog
		appended := map[int]float32{}

		steps := 100 + rng.Intn(100)
		for s := 0; s < steps; s++ {
			switch rng.Intn(4) {
			case 0: // append a small chunk
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					v := rng.Norm32()
					idx := c.Append(row(dim, v), row(dim, -v))
					appended[idx] = v
				}
			case 1:
				h.Enforce()
				if got := c.ResidentCount(); got > capTokens+4 {
					// Enforce runs before the next chunk lands; allow the
					// chunk slack but nothing more.
					t.Fatalf("trial %d: resident %d far above capacity %d", trial, got, capTokens)
				}
			case 2: // fetch a random subset
				if c.Len() == 0 {
					continue
				}
				var tokens []int
				for i := 0; i < 1+rng.Intn(8); i++ {
					tokens = append(tokens, rng.Intn(c.Len()))
				}
				log := h.Fetch(tokens, layout)
				if log.FetchBytes != log.FetchTokens*int64(h.BytesPerToken) {
					t.Fatalf("trial %d: fetch bytes %d inconsistent with tokens %d",
						trial, log.FetchBytes, log.FetchTokens)
				}
				for _, tok := range tokens {
					if c.TierOf(tok) != TierDevice {
						t.Fatalf("trial %d: fetched token %d not resident", trial, tok)
					}
				}
			case 3: // release a random prefix
				if c.Len() == 0 {
					continue
				}
				var tokens []int
				for i := 0; i < 1+rng.Intn(8); i++ {
					tokens = append(tokens, rng.Intn(c.Len()))
				}
				h.Release(tokens, c.Len()-rng.Intn(5))
			}

			// Monotone accounting.
			if h.Log.OffloadBytes < prevLog.OffloadBytes ||
				h.Log.FetchBytes < prevLog.FetchBytes ||
				h.Log.FetchTokens < prevLog.FetchTokens {
				t.Fatalf("trial %d: transfer log went backwards", trial)
			}
			prevLog = h.Log

			// Data integrity across tier shuffles.
			for idx, v := range appended {
				if c.Key(idx)[0] != v || c.Value(idx)[0] != -v {
					t.Fatalf("trial %d: token %d data corrupted", trial, idx)
				}
				tier := c.TierOf(idx)
				if tier != TierDevice && tier != TierStorage {
					t.Fatalf("trial %d: token %d in unexpected tier %v", trial, idx, tier)
				}
			}
		}
	}
}

// TestHierarchyOffloadChargedOnce: repeated demote/fetch cycles of the same
// token charge offload traffic exactly once (the off-device copy is
// immutable) while every re-fetch pays.
func TestHierarchyOffloadChargedOnce(t *testing.T) {
	c := NewLayerCache(2)
	c.Append(row(2, 1), row(2, 2))
	h := NewHierarchy(c, 0, TierHost, 2)
	layout := TokenOrderLayout{}
	for cycle := 0; cycle < 5; cycle++ {
		h.Enforce()
		h.Fetch([]int{0}, layout)
		h.Release([]int{0}, 1)
	}
	if h.Log.OffloadBytes != int64(h.BytesPerToken) {
		t.Fatalf("offload bytes %d, want exactly one token (%d)", h.Log.OffloadBytes, h.BytesPerToken)
	}
	if h.Log.FetchTokens != 5 {
		t.Fatalf("fetch tokens %d, want 5 (one per cycle)", h.Log.FetchTokens)
	}
}
