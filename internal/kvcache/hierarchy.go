package kvcache

// TransferLog accumulates data-movement accounting for one layer's cache.
// The hardware simulator converts these counters into PCIe/SSD time and
// energy; the contiguity counters (segments vs tokens) capture the benefit
// of the KVMU's cluster-wise mapping.
type TransferLog struct {
	// OffloadBytes counts device -> host/storage traffic.
	OffloadBytes int64
	// FetchBytes counts host/storage -> device traffic.
	FetchBytes int64
	// FetchTokens counts tokens fetched.
	FetchTokens int64
	// FetchSegments counts contiguous transfer segments used for those
	// fetches (lower is better: fewer, larger DMA bursts).
	FetchSegments int64
	// OffloadEvents counts eviction batches.
	OffloadEvents int64
}

// Add accumulates other into l.
func (l *TransferLog) Add(other TransferLog) {
	l.OffloadBytes += other.OffloadBytes
	l.FetchBytes += other.FetchBytes
	l.FetchTokens += other.FetchTokens
	l.FetchSegments += other.FetchSegments
	l.OffloadEvents += other.OffloadEvents
}

// Hierarchy manages the tier residency of one LayerCache against a device
// capacity budget: recent tokens stay on device, the oldest spill to the
// off-device tier, and selected tokens are fetched back on demand
// (offloading / selection / pre-fetching, Sec. II-B).
type Hierarchy struct {
	Cache *LayerCache
	// CapacityTokens is the device-tier budget for this layer.
	CapacityTokens int
	// OffTier is where evicted tokens go (TierHost for server offload to
	// CPU DRAM, TierStorage for edge offload to NVMe).
	OffTier Tier
	// BytesPerToken is the wire size of one token's K+V rows (bf16: 2 bytes
	// per element, two rows).
	BytesPerToken int
	Log           TransferLog
	// written marks tokens whose KV has been copied off-device at least
	// once; only the first demotion pays offload traffic (the off-device
	// copy is immutable afterwards, so later releases are free).
	written map[int]bool
	// missing is reusable scratch for Fetch's non-resident token list.
	missing []int
}

// NewHierarchy wraps cache with a device budget of capacityTokens.
func NewHierarchy(cache *LayerCache, capacityTokens int, offTier Tier, bytesPerElem int) *Hierarchy {
	if offTier == TierDevice {
		panic("kvcache: off-tier must not be device")
	}
	return &Hierarchy{
		Cache:          cache,
		CapacityTokens: capacityTokens,
		OffTier:        offTier,
		BytesPerToken:  2 * cache.Dim * bytesPerElem,
		written:        make(map[int]bool),
	}
}

// demote moves token i off-device, charging offload traffic the first time
// its data leaves the device.
func (h *Hierarchy) demote(i int) {
	h.Cache.SetTier(i, h.OffTier)
	if !h.written[i] {
		h.written[i] = true
		h.Log.OffloadBytes += int64(h.BytesPerToken)
	}
}

// Enforce evicts the oldest device-resident tokens until the device tier is
// within capacity. It returns the number of tokens offloaded.
func (h *Hierarchy) Enforce() int {
	over := h.Cache.ResidentCount() - h.CapacityTokens
	if over <= 0 {
		return 0
	}
	evicted := 0
	for i := 0; i < h.Cache.Len() && evicted < over; i++ {
		if h.Cache.TierOf(i) == TierDevice {
			h.demote(i)
			evicted++
		}
	}
	h.Log.OffloadEvents++
	return evicted
}

// Fetch makes the given tokens device-resident, counting transfer bytes and
// contiguous segments according to layout. Already-resident tokens cost
// nothing. It returns the per-call transfer statistics (also accumulated
// into h.Log).
func (h *Hierarchy) Fetch(tokens []int, layout Layout) TransferLog {
	missing := h.missing[:0]
	for _, t := range tokens {
		if h.Cache.TierOf(t) != TierDevice {
			missing = append(missing, t)
		}
	}
	h.missing = missing
	var log TransferLog
	if len(missing) > 0 {
		segs := layout.Segments(missing)
		for _, t := range missing {
			h.Cache.SetTier(t, TierDevice)
		}
		log.FetchTokens = int64(len(missing))
		log.FetchBytes = int64(len(missing)) * int64(h.BytesPerToken)
		log.FetchSegments = int64(segs)
	}
	h.Log.Add(log)
	return log
}

// Release demotes fetched tokens back off-device (retrieved entries are
// transient working-set copies; only the recent window is pinned). Tokens
// younger than pinnedAfter stay on device.
func (h *Hierarchy) Release(tokens []int, pinnedAfter int) {
	for _, t := range tokens {
		if t < pinnedAfter && h.Cache.TierOf(t) == TierDevice {
			h.demote(t)
		}
	}
}
