// Package kvcache implements the KV cache substrate for streaming video
// LLMs: an append-only per-layer key/value store, the hierarchical
// device / CPU / storage tiering that KV cache retrieval systems rely on
// (Sec. II-B of the paper: offloading, selection, pre-fetching), transfer
// accounting, and the KVMU's cluster-wise memory layout that turns scattered
// token fetches into contiguous segment transfers (Fig. 12).
package kvcache

import "fmt"

// Tier identifies where a token's KV entry currently resides.
type Tier uint8

const (
	// TierDevice is the accelerator/GPU local memory (fast, small).
	TierDevice Tier = iota
	// TierHost is CPU DRAM reachable over PCIe.
	TierHost
	// TierStorage is NVMe storage (edge deployments offload here).
	TierStorage
)

func (t Tier) String() string {
	switch t {
	case TierDevice:
		return "device"
	case TierHost:
		return "host"
	case TierStorage:
		return "storage"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// LayerCache is the KV cache of a single decoder layer. Keys and values are
// stored row-per-token with dimension Dim (= kv-heads x head-dim,
// head-concatenated). Rows are append-only; eviction changes a row's Tier
// but never deletes data (retrieval preserves all prior context — the
// property that distinguishes retrieval from pruning).
type LayerCache struct {
	Dim  int
	keys []float32
	vals []float32
	tier []Tier
}

// NewLayerCache creates an empty cache for dim-wide KV rows.
func NewLayerCache(dim int) *LayerCache {
	if dim <= 0 {
		panic("kvcache: non-positive dim")
	}
	return &LayerCache{Dim: dim}
}

// Len returns the number of cached tokens.
func (c *LayerCache) Len() int { return len(c.tier) }

// Append stores one token's key and value rows (each of length Dim) on the
// device tier and returns the token's index.
func (c *LayerCache) Append(key, val []float32) int {
	if len(key) != c.Dim || len(val) != c.Dim {
		panic("kvcache: row dimension mismatch")
	}
	c.keys = append(c.keys, key...)
	c.vals = append(c.vals, val...)
	c.tier = append(c.tier, TierDevice)
	return len(c.tier) - 1
}

// Key returns a view of token i's key row.
func (c *LayerCache) Key(i int) []float32 { return c.keys[i*c.Dim : (i+1)*c.Dim] }

// KeySpan returns a view of the contiguous key rows for tokens
// [base, base+n): n*Dim values, row-major. Retrieval policies cluster
// directly over this span instead of copying rows out of the cache.
func (c *LayerCache) KeySpan(base, n int) []float32 {
	return c.keys[base*c.Dim : (base+n)*c.Dim]
}

// Value returns a view of token i's value row.
func (c *LayerCache) Value(i int) []float32 { return c.vals[i*c.Dim : (i+1)*c.Dim] }

// TierOf returns where token i resides.
func (c *LayerCache) TierOf(i int) Tier { return c.tier[i] }

// SetTier moves token i to tier t (bookkeeping only; data stays addressable
// so the functional model can always compute attention).
func (c *LayerCache) SetTier(i int, t Tier) { c.tier[i] = t }

// ResidentCount returns how many tokens are on the device tier.
func (c *LayerCache) ResidentCount() int {
	n := 0
	for _, t := range c.tier {
		if t == TierDevice {
			n++
		}
	}
	return n
}

// TokensInTier returns the indices currently in tier t, ascending.
func (c *LayerCache) TokensInTier(t Tier) []int {
	var out []int
	for i, ti := range c.tier {
		if ti == t {
			out = append(out, i)
		}
	}
	return out
}
