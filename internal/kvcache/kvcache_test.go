package kvcache

import (
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
)

func row(dim int, fill float32) []float32 {
	r := make([]float32, dim)
	for i := range r {
		r[i] = fill
	}
	return r
}

func TestLayerCacheAppendAndViews(t *testing.T) {
	c := NewLayerCache(4)
	i0 := c.Append(row(4, 1), row(4, 2))
	i1 := c.Append(row(4, 3), row(4, 4))
	if i0 != 0 || i1 != 1 || c.Len() != 2 {
		t.Fatal("append indices wrong")
	}
	if c.Key(0)[0] != 1 || c.Value(0)[0] != 2 || c.Key(1)[0] != 3 || c.Value(1)[0] != 4 {
		t.Fatal("row views wrong")
	}
	if c.TierOf(0) != TierDevice {
		t.Fatal("new tokens must start on device")
	}
}

func TestLayerCacheDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayerCache(4).Append(row(3, 1), row(4, 1))
}

func TestTierString(t *testing.T) {
	if TierDevice.String() != "device" || TierHost.String() != "host" || TierStorage.String() != "storage" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Fatal("unknown tier should still format")
	}
}

func TestHierarchyEnforceEvictsOldest(t *testing.T) {
	c := NewLayerCache(2)
	for i := 0; i < 10; i++ {
		c.Append(row(2, float32(i)), row(2, float32(i)))
	}
	h := NewHierarchy(c, 4, TierStorage, 2)
	evicted := h.Enforce()
	if evicted != 6 {
		t.Fatalf("evicted %d, want 6", evicted)
	}
	// Oldest six must be off-device, newest four on device.
	for i := 0; i < 6; i++ {
		if c.TierOf(i) != TierStorage {
			t.Fatalf("token %d should be offloaded", i)
		}
	}
	for i := 6; i < 10; i++ {
		if c.TierOf(i) != TierDevice {
			t.Fatalf("token %d should stay on device", i)
		}
	}
	wantBytes := int64(6 * 2 * 2 * 2) // 6 tokens x 2 rows x dim 2 x 2B
	if h.Log.OffloadBytes != wantBytes {
		t.Fatalf("offload bytes %d, want %d", h.Log.OffloadBytes, wantBytes)
	}
}

func TestHierarchyEnforceNoopUnderCapacity(t *testing.T) {
	c := NewLayerCache(2)
	c.Append(row(2, 0), row(2, 0))
	h := NewHierarchy(c, 4, TierHost, 2)
	if h.Enforce() != 0 || h.Log.OffloadEvents != 0 {
		t.Fatal("under-capacity enforce should be a no-op")
	}
}

func TestHierarchyFetchAccounting(t *testing.T) {
	c := NewLayerCache(2)
	for i := 0; i < 8; i++ {
		c.Append(row(2, 0), row(2, 0))
	}
	h := NewHierarchy(c, 2, TierStorage, 2)
	h.Enforce() // tokens 0..5 offloaded
	log := h.Fetch([]int{0, 1, 2, 7}, TokenOrderLayout{})
	if log.FetchTokens != 3 { // token 7 resident
		t.Fatalf("fetch tokens %d, want 3", log.FetchTokens)
	}
	if log.FetchSegments != 1 { // 0,1,2 contiguous
		t.Fatalf("fetch segments %d, want 1", log.FetchSegments)
	}
	for _, i := range []int{0, 1, 2} {
		if c.TierOf(i) != TierDevice {
			t.Fatal("fetched tokens must be resident")
		}
	}
	// Second fetch of same tokens is free.
	log2 := h.Fetch([]int{0, 1, 2}, TokenOrderLayout{})
	if log2.FetchBytes != 0 {
		t.Fatal("re-fetch of resident tokens must be free")
	}
}

func TestHierarchyRelease(t *testing.T) {
	c := NewLayerCache(2)
	for i := 0; i < 6; i++ {
		c.Append(row(2, 0), row(2, 0))
	}
	h := NewHierarchy(c, 2, TierHost, 2)
	h.Enforce()
	h.Fetch([]int{0, 1}, TokenOrderLayout{})
	h.Release([]int{0, 1}, 4) // pin tokens >= 4
	if c.TierOf(0) != TierHost || c.TierOf(1) != TierHost {
		t.Fatal("released tokens should be demoted")
	}
	h.Fetch([]int{5}, TokenOrderLayout{})
	h.Release([]int{5}, 4)
	if c.TierOf(5) != TierDevice {
		t.Fatal("pinned token must stay on device")
	}
}

func TestHierarchyOffTierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierarchy(NewLayerCache(2), 1, TierDevice, 2)
}

func TestTokensInTier(t *testing.T) {
	c := NewLayerCache(2)
	for i := 0; i < 4; i++ {
		c.Append(row(2, 0), row(2, 0))
	}
	c.SetTier(1, TierHost)
	c.SetTier(3, TierHost)
	got := c.TokensInTier(TierHost)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TokensInTier = %v", got)
	}
}

func TestTokenOrderLayoutSegments(t *testing.T) {
	l := TokenOrderLayout{}
	cases := []struct {
		tokens []int
		want   int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 2, 3}, 1},
		{[]int{3, 1, 2}, 1}, // order-insensitive
		{[]int{1, 3, 5}, 3},
		{[]int{1, 2, 10, 11, 20}, 3},
		{[]int{4, 4, 5}, 1}, // duplicates don't split runs
	}
	for _, c := range cases {
		if got := l.Segments(c.tokens); got != c.want {
			t.Errorf("Segments(%v) = %d, want %d", c.tokens, got, c.want)
		}
	}
}

func TestClusterLayoutCoalescesClusterFetch(t *testing.T) {
	l := NewClusterLayout()
	// Cluster 0 holds scattered tokens {0, 7, 14}; cluster 1 holds {3, 10}.
	l.SetClusters([][]int{{0, 7, 14}, {3, 10}})
	if got := l.Segments([]int{0, 7, 14}); got != 1 {
		t.Fatalf("cluster fetch should be 1 segment, got %d", got)
	}
	if got := l.Segments([]int{0, 7, 14, 3, 10}); got != 1 {
		t.Fatalf("adjacent clusters fetch should coalesce to 1 segment, got %d", got)
	}
	// The same tokens under token order are 5 segments.
	if got := (TokenOrderLayout{}).Segments([]int{0, 7, 14, 3, 10}); got != 5 {
		t.Fatalf("token-order segments = %d, want 5", got)
	}
}

func TestClusterLayoutUnknownTokensIsolated(t *testing.T) {
	l := NewClusterLayout()
	l.SetClusters([][]int{{1, 2}})
	if got := l.Segments([]int{1, 2, 99, 100}); got != 3 {
		t.Fatalf("unknown tokens should each be a segment: got %d", got)
	}
}

func TestClusterLayoutRebuild(t *testing.T) {
	l := NewClusterLayout()
	l.SetClusters([][]int{{0, 1}})
	l.SetClusters([][]int{{1}, {0}})
	if got := l.Segments([]int{0, 1}); got != 1 {
		// slots: 1->0, 0->1; both consecutive
		t.Fatalf("rebuilt layout segments = %d, want 1", got)
	}
}

// Property: cluster layout never uses more segments than tokens, and at
// least one segment for non-empty input; fetching whole clusters costs at
// most the number of clusters.
func TestClusterLayoutSegmentBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		nClusters := 1 + rng.Intn(8)
		var clusters [][]int
		token := 0
		for c := 0; c < nClusters; c++ {
			size := 1 + rng.Intn(6)
			var members []int
			for i := 0; i < size; i++ {
				members = append(members, token)
				token++
			}
			clusters = append(clusters, members)
		}
		// Shuffle token ids across clusters to simulate interleaved arrival.
		perm := rng.Perm(token)
		for _, members := range clusters {
			for i := range members {
				members[i] = perm[members[i]]
			}
		}
		l := NewClusterLayout()
		l.SetClusters(clusters)
		// Fetch a random subset of whole clusters.
		var tokens []int
		picked := 0
		for _, members := range clusters {
			if rng.Float64() < 0.5 {
				tokens = append(tokens, members...)
				picked++
			}
		}
		if picked == 0 {
			return true
		}
		segs := l.Segments(tokens)
		return segs >= 1 && segs <= picked && segs <= len(tokens)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransferLogAdd(t *testing.T) {
	a := TransferLog{OffloadBytes: 1, FetchBytes: 2, FetchTokens: 3, FetchSegments: 4, OffloadEvents: 5}
	b := a
	a.Add(b)
	if a.OffloadBytes != 2 || a.FetchBytes != 4 || a.FetchTokens != 6 || a.FetchSegments != 8 || a.OffloadEvents != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
}
