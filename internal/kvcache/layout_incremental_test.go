package kvcache

import (
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
)

// TestClusterLayoutAddMatchesSetClusters: streaming Add must produce the
// same address space as a bulk SetClusters rebuild of the same membership.
func TestClusterLayoutAddMatchesSetClusters(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		nClusters := 1 + rng.Intn(6)
		// Streaming arrival: tokens 0..n-1, each assigned a cluster; cluster
		// IDs appear in creation order like the HC table's.
		var clusters [][]int
		inc := NewClusterLayout()
		nTokens := 4 + rng.Intn(40)
		for tok := 0; tok < nTokens; tok++ {
			var cid int
			if len(clusters) < nClusters && (len(clusters) == 0 || rng.Float64() < 0.3) {
				cid = len(clusters)
				clusters = append(clusters, nil)
			} else {
				cid = rng.Intn(len(clusters))
			}
			clusters[cid] = append(clusters[cid], tok)
			inc.Add(cid, tok)
		}
		bulk := NewClusterLayout()
		bulk.SetClusters(clusters)
		// Compare segment counts over random subsets.
		for trial := 0; trial < 8; trial++ {
			var tokens []int
			for tok := 0; tok < nTokens; tok++ {
				if rng.Float64() < 0.4 {
					tokens = append(tokens, tok)
				}
			}
			if inc.Segments(tokens) != bulk.Segments(tokens) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestClusterLayoutReset: a reset layout treats every token as unknown.
func TestClusterLayoutReset(t *testing.T) {
	l := NewClusterLayout()
	l.SetClusters([][]int{{0, 1, 2}})
	if got := l.Segments([]int{0, 1, 2}); got != 1 {
		t.Fatalf("pre-reset segments = %d, want 1", got)
	}
	l.Reset()
	if got := l.Segments([]int{0, 1, 2}); got != 3 {
		t.Fatalf("post-reset segments = %d, want 3 (all unknown)", got)
	}
	l.Add(0, 5)
	if got := l.Segments([]int{5}); got != 1 {
		t.Fatalf("layout unusable after reset: %d", got)
	}
}

// TestClusterLayoutSegmentsAllocFree: the per-fetch address materialisation
// reuses scratch after the first call.
func TestClusterLayoutSegmentsAllocFree(t *testing.T) {
	l := NewClusterLayout()
	for tok := 0; tok < 64; tok++ {
		l.Add(tok%8, tok)
	}
	tokens := []int{0, 8, 16, 1, 9, 33, 40, 63}
	l.Segments(tokens)
	allocs := testing.AllocsPerRun(100, func() {
		l.Segments(tokens)
	})
	if allocs != 0 {
		t.Fatalf("Segments allocates %v times per call, want 0", allocs)
	}
}

// TestClusterLayoutAddPanics pins the dense-ID contract.
func TestClusterLayoutAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClusterLayout().Add(1, 0) // cluster 0 does not exist yet
}
