package kvcache

import "slices"

// Layout maps token indices to storage addresses and reports how many
// contiguous segments a set of tokens spans. Fewer segments means fewer,
// larger DMA transfers and better PCIe utilisation — the KVMU's cluster-wise
// memory mapping exists precisely to reduce this number (Fig. 12).
type Layout interface {
	// Segments returns the number of maximal contiguous address runs
	// covering the given tokens.
	Segments(tokens []int) int
}

// TokenOrderLayout stores tokens at their arrival index (the conventional
// GPU layout). Tokens selected by retrieval are scattered across frames, so
// fetches fragment into many segments.
type TokenOrderLayout struct{}

// Segments implements Layout: runs of consecutive token indices.
func (TokenOrderLayout) Segments(tokens []int) int {
	return runsOf(tokens, func(t int) int { return t })
}

// ClusterLayout stores tokens grouped by hash cluster: all members of a
// cluster occupy consecutive addresses. The KVMU reorders entries to this
// layout as frames arrive ("KVMU reorders and stores them in memory
// according to the latest clustering results"), so fetching a selected
// cluster is a single contiguous transfer.
//
// The layout is maintained incrementally: Add appends one token to its
// cluster in O(1), mirroring the HC table's streaming growth, instead of
// rebuilding a token->slot map from the full membership lists every frame.
// Storage addresses are materialised lazily (per Segments call) from the
// cluster sizes.
type ClusterLayout struct {
	// tokCluster and tokPos map a token index to its (cluster, position
	// within cluster) coordinate; tokCluster is -1 for unknown tokens.
	tokCluster []int32
	tokPos     []int32
	// clusterLen holds each cluster's member count.
	clusterLen []int32

	// starts and addrs are reusable scratch for Segments.
	starts []int
	addrs  []int
}

// NewClusterLayout creates an empty cluster layout.
func NewClusterLayout() *ClusterLayout {
	return &ClusterLayout{}
}

// Reset empties the layout, retaining allocated capacity for the next
// session.
func (l *ClusterLayout) Reset() {
	l.tokCluster = l.tokCluster[:0]
	l.tokPos = l.tokPos[:0]
	l.clusterLen = l.clusterLen[:0]
}

// Add appends tokenIdx to clusterID's contiguous run, founding the cluster
// if it is the next unseen ID. Tokens and clusters arrive in the HC table's
// streaming order, so this is the KVMU's per-frame reordering work reduced
// to O(1) bookkeeping per token.
func (l *ClusterLayout) Add(clusterID, tokenIdx int) {
	if tokenIdx < 0 {
		panic("kvcache: negative token index in cluster layout")
	}
	if clusterID < 0 || clusterID > len(l.clusterLen) {
		panic("kvcache: cluster layout IDs must be dense and in creation order")
	}
	if clusterID == len(l.clusterLen) {
		l.clusterLen = append(l.clusterLen, 0)
	}
	for tokenIdx >= len(l.tokCluster) {
		l.tokCluster = append(l.tokCluster, -1)
		l.tokPos = append(l.tokPos, 0)
	}
	l.tokCluster[tokenIdx] = int32(clusterID)
	l.tokPos[tokenIdx] = l.clusterLen[clusterID]
	l.clusterLen[clusterID]++
}

// SetClusters rebuilds the layout from full cluster membership lists
// (cluster-major order). Streaming callers should prefer Add; this remains
// for bulk construction and mirrors the incremental semantics exactly.
func (l *ClusterLayout) SetClusters(clusters [][]int) {
	l.Reset()
	for ci, members := range clusters {
		// Preserve dense cluster IDs even for empty membership lists.
		for ci >= len(l.clusterLen) {
			l.clusterLen = append(l.clusterLen, 0)
		}
		for _, t := range members {
			l.Add(ci, t)
		}
	}
}

// Segments implements Layout: runs of consecutive storage slots. Slot
// addresses are cluster-major (cluster 0's members first, in insertion
// order, then cluster 1's, ...), recovered from the per-cluster sizes.
//
//vrex:noalloc
func (l *ClusterLayout) Segments(tokens []int) int {
	if len(tokens) == 0 {
		return 0
	}
	// Prefix-sum the cluster sizes into start addresses (reused scratch).
	if cap(l.starts) < len(l.clusterLen) {
		l.starts = make([]int, len(l.clusterLen))
	}
	l.starts = l.starts[:len(l.clusterLen)]
	slot := 0
	for c, n := range l.clusterLen {
		l.starts[c] = slot
		slot += int(n)
	}
	if cap(l.addrs) < len(tokens) {
		l.addrs = make([]int, len(tokens))
	}
	l.addrs = l.addrs[:len(tokens)]
	for i, t := range tokens {
		if t >= 0 && t < len(l.tokCluster) && l.tokCluster[t] >= 0 {
			l.addrs[i] = l.starts[l.tokCluster[t]] + int(l.tokPos[t])
		} else {
			// Unknown tokens get isolated virtual slots (spaced by 2 so no
			// two are ever consecutive) so they each count as a segment.
			l.addrs[i] = -2 - 2*t
		}
	}
	return runsOfAddrs(l.addrs)
}

// runsOf counts maximal runs of consecutive addresses after sorting.
func runsOf(tokens []int, addr func(int) int) int {
	if len(tokens) == 0 {
		return 0
	}
	addrs := make([]int, len(tokens))
	for i, t := range tokens {
		addrs[i] = addr(t)
	}
	return runsOfAddrs(addrs)
}

// runsOfAddrs counts maximal runs of consecutive values, sorting in place.
//
//vrex:noalloc
func runsOfAddrs(addrs []int) int {
	slices.Sort(addrs)
	runs := 1
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+1 && addrs[i] != addrs[i-1] {
			runs++
		}
	}
	return runs
}
