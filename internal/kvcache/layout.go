package kvcache

import "sort"

// Layout maps token indices to storage addresses and reports how many
// contiguous segments a set of tokens spans. Fewer segments means fewer,
// larger DMA transfers and better PCIe utilisation — the KVMU's cluster-wise
// memory mapping exists precisely to reduce this number (Fig. 12).
type Layout interface {
	// Segments returns the number of maximal contiguous address runs
	// covering the given tokens.
	Segments(tokens []int) int
}

// TokenOrderLayout stores tokens at their arrival index (the conventional
// GPU layout). Tokens selected by retrieval are scattered across frames, so
// fetches fragment into many segments.
type TokenOrderLayout struct{}

// Segments implements Layout: runs of consecutive token indices.
func (TokenOrderLayout) Segments(tokens []int) int {
	return runsOf(tokens, func(t int) int { return t })
}

// ClusterLayout stores tokens grouped by hash cluster: all members of a
// cluster occupy consecutive addresses. The KVMU reorders entries to this
// layout as frames arrive ("KVMU reorders and stores them in memory
// according to the latest clustering results"), so fetching a selected
// cluster is a single contiguous transfer.
type ClusterLayout struct {
	pos map[int]int // token index -> storage slot
	n   int
}

// NewClusterLayout creates an empty cluster layout.
func NewClusterLayout() *ClusterLayout {
	return &ClusterLayout{pos: make(map[int]int)}
}

// SetClusters rebuilds the address map from the cluster membership lists
// (cluster-major order). Call after each frame's clustering pass.
func (l *ClusterLayout) SetClusters(clusters [][]int) {
	l.pos = make(map[int]int, l.n)
	slot := 0
	for _, members := range clusters {
		for _, t := range members {
			l.pos[t] = slot
			slot++
		}
	}
	l.n = slot
}

// Segments implements Layout: runs of consecutive storage slots.
func (l *ClusterLayout) Segments(tokens []int) int {
	return runsOf(tokens, func(t int) int {
		if s, ok := l.pos[t]; ok {
			return s
		}
		// Unknown tokens get isolated virtual slots (spaced by 2 so no two
		// are ever consecutive) so they each count as a segment.
		return -2 - 2*t
	})
}

// runsOf counts maximal runs of consecutive addresses after sorting.
func runsOf(tokens []int, addr func(int) int) int {
	if len(tokens) == 0 {
		return 0
	}
	addrs := make([]int, len(tokens))
	for i, t := range tokens {
		addrs[i] = addr(t)
	}
	sort.Ints(addrs)
	runs := 1
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+1 && addrs[i] != addrs[i-1] {
			runs++
		}
	}
	return runs
}
