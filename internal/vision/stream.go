// Package vision provides the vision-side substrate of a streaming video
// LLM (Fig. 3 of the paper): a synthetic video stream whose frame contents
// exhibit the temporal/spatial similarity real video has (the property ReSV
// exploits, Fig. 7), a frame encoder standing in for the SigLIP vision
// tower, an MLP projector into the LLM embedding space, and an analytic cost
// model of the real ViT for the performance simulator.
package vision

import (
	"math"

	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// StreamConfig shapes a synthetic video stream.
type StreamConfig struct {
	// TokensPerFrame is the number of spatial tokens each frame produces
	// after the vision tower + projector (VideoLLM-Online uses ~10).
	TokensPerFrame int
	// PixelDim is the dimension of the raw per-token patch observation the
	// encoder consumes.
	PixelDim int
	// TemporalRho is the frame-to-frame AR(1) correlation of patch content
	// within a scene; 0.97+ reproduces the near-identical adjacent-frame
	// keys of Fig. 7(a).
	TemporalRho float64
	// SceneLength is the expected number of frames between scene changes
	// (content resets, e.g. a new step in an instructional video). <= 0
	// disables scene changes.
	SceneLength int
	// Seed drives all stream randomness.
	Seed uint64
}

// DefaultStreamConfig mirrors the paper's working scenario: 10 tokens per
// frame, strong temporal correlation, scene changes every ~8 frames.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		TokensPerFrame: 10,
		PixelDim:       64,
		TemporalRho:    0.97,
		SceneLength:    8,
		Seed:           1,
	}
}

// Frame is one sampled video frame: a matrix of per-token raw observations
// (TokensPerFrame x PixelDim) plus provenance metadata.
type Frame struct {
	Index   int
	SceneID int
	Pixels  *tensor.Matrix
}

// Stream generates frames with intra-scene temporal correlation.
type Stream struct {
	cfg     StreamConfig
	rng     *mathx.RNG
	state   *tensor.Matrix // current latent content per token
	frame   int
	sceneID int
}

// NewStream creates a stream from cfg.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.TokensPerFrame <= 0 || cfg.PixelDim <= 0 {
		panic("vision: non-positive stream dimensions")
	}
	s := &Stream{cfg: cfg, rng: mathx.NewRNG(cfg.Seed)}
	s.reset()
	return s
}

func (s *Stream) reset() {
	s.state = tensor.NewMatrix(s.cfg.TokensPerFrame, s.cfg.PixelDim)
	s.state.Randomize(s.rng, 1)
}

// Next returns the next frame. Within a scene, content evolves by an AR(1)
// process with coefficient TemporalRho (variance-preserving); at scene
// boundaries the content is redrawn.
func (s *Stream) Next() Frame {
	if s.frame > 0 && s.cfg.SceneLength > 0 {
		// Geometric scene-change arrivals with mean SceneLength.
		if s.rng.Float64() < 1/float64(s.cfg.SceneLength) {
			s.sceneID++
			s.reset()
		} else {
			rho := float32(s.cfg.TemporalRho)
			nscale := float32(math.Sqrt(1 - s.cfg.TemporalRho*s.cfg.TemporalRho))
			for i := range s.state.Data {
				s.state.Data[i] = rho*s.state.Data[i] + nscale*s.rng.Norm32()
			}
		}
	}
	f := Frame{Index: s.frame, SceneID: s.sceneID, Pixels: s.state.Clone()}
	s.frame++
	return f
}

// SceneID returns the current scene identifier.
func (s *Stream) SceneID() int { return s.sceneID }
