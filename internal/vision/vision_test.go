package vision

import (
	"math"
	"testing"

	"vrex/internal/mathx"
)

func TestStreamDeterminism(t *testing.T) {
	cfg := DefaultStreamConfig()
	a := NewStream(cfg)
	b := NewStream(cfg)
	for i := 0; i < 20; i++ {
		fa, fb := a.Next(), b.Next()
		for j := range fa.Pixels.Data {
			if fa.Pixels.Data[j] != fb.Pixels.Data[j] {
				t.Fatal("same-seed streams diverged")
			}
		}
		if fa.Index != i || fa.SceneID != fb.SceneID {
			t.Fatal("frame metadata mismatch")
		}
	}
}

func TestStreamAdjacentFramesSimilar(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.SceneLength = 0 // no scene changes: pure AR(1)
	s := NewStream(cfg)
	prev := s.Next()
	var sims []float64
	for i := 0; i < 30; i++ {
		cur := s.Next()
		for tok := 0; tok < cfg.TokensPerFrame; tok++ {
			sims = append(sims, mathx.CosineSimilarity(prev.Pixels.Row(tok), cur.Pixels.Row(tok)))
		}
		prev = cur
	}
	mean := mathx.Mean(sims)
	if mean < 0.9 {
		t.Fatalf("adjacent-frame similarity %v, want >= 0.9 (rho=%v)", mean, cfg.TemporalRho)
	}
}

func TestStreamSceneChangesDecorrelate(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.SceneLength = 2 // frequent changes
	cfg.Seed = 7
	s := NewStream(cfg)
	prev := s.Next()
	crossScene := []float64{}
	for i := 0; i < 200; i++ {
		cur := s.Next()
		if cur.SceneID != prev.SceneID {
			for tok := 0; tok < cfg.TokensPerFrame; tok++ {
				crossScene = append(crossScene, mathx.CosineSimilarity(prev.Pixels.Row(tok), cur.Pixels.Row(tok)))
			}
		}
		prev = cur
	}
	if len(crossScene) == 0 {
		t.Fatal("no scene changes observed")
	}
	if m := mathx.Mean(crossScene); math.Abs(m) > 0.3 {
		t.Fatalf("cross-scene similarity %v, want ~0", m)
	}
}

func TestStreamVariancePreserved(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.SceneLength = 0
	s := NewStream(cfg)
	var last Frame
	for i := 0; i < 500; i++ {
		last = s.Next()
	}
	var ss float64
	for _, v := range last.Pixels.Data {
		ss += float64(v) * float64(v)
	}
	variance := ss / float64(len(last.Pixels.Data))
	if variance < 0.5 || variance > 2 {
		t.Fatalf("AR(1) variance drifted to %v, want ~1", variance)
	}
}

func TestEncoderPreservesTemporalSimilarity(t *testing.T) {
	// The property ReSV needs: similar frames -> similar embeddings.
	cfg := DefaultStreamConfig()
	cfg.SceneLength = 0
	s := NewStream(cfg)
	enc := NewEncoder(cfg.TokensPerFrame, cfg.PixelDim, 128, 42)
	e1 := enc.Encode(s.Next())
	e2 := enc.Encode(s.Next())
	var sims []float64
	for tok := 0; tok < cfg.TokensPerFrame; tok++ {
		sims = append(sims, mathx.CosineSimilarity(e1.Row(tok), e2.Row(tok)))
	}
	if m := mathx.Mean(sims); m < 0.85 {
		t.Fatalf("embedding similarity %v, want >= 0.85", m)
	}
}

func TestEncoderShape(t *testing.T) {
	cfg := DefaultStreamConfig()
	s := NewStream(cfg)
	enc := NewEncoder(cfg.TokensPerFrame, cfg.PixelDim, 96, 1)
	out := enc.Encode(s.Next())
	if out.Rows != cfg.TokensPerFrame || out.Cols != 96 {
		t.Fatalf("encoder output %v", out)
	}
}

func TestProjectorShapeAndDeterminism(t *testing.T) {
	cfg := DefaultStreamConfig()
	s := NewStream(cfg)
	enc := NewEncoder(cfg.TokensPerFrame, cfg.PixelDim, 96, 1)
	emb := enc.Encode(s.Next())
	p1 := NewProjector(96, 128, 64, 5)
	p2 := NewProjector(96, 128, 64, 5)
	o1 := p1.Project(emb)
	o2 := p2.Project(emb)
	if o1.Rows != cfg.TokensPerFrame || o1.Cols != 64 {
		t.Fatalf("projector output %v", o1)
	}
	for i := range o1.Data {
		if o1.Data[i] != o2.Data[i] {
			t.Fatal("same-seed projectors disagree")
		}
	}
}

func TestViTCostSanity(t *testing.T) {
	c := SigLIPViTL384Cost(10)
	// ViT-L is ~300M params -> ~600MB bf16? No: 300M x 2B = 600MB is too
	// high because SigLIP-L is ~428M total with text tower; vision side
	// ~315M. Accept a broad band.
	if c.WeightBytes < 200e6 || c.WeightBytes > 900e6 {
		t.Fatalf("weight bytes %v out of plausible band", c.WeightBytes)
	}
	// Per-frame FLOPs for ViT-L/14-384 is in the hundreds of GFLOPs.
	if c.FLOPs < 1e11 || c.FLOPs > 1e13 {
		t.Fatalf("FLOPs %v out of plausible band", c.FLOPs)
	}
	if c.OutTokens != 10 {
		t.Fatal("out tokens not propagated")
	}
}

func TestStreamPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(StreamConfig{TokensPerFrame: 0, PixelDim: 8})
}
