package vision

// ViTCost describes the analytic per-frame cost of a real vision tower +
// projector at paper scale; the performance simulator charges this work to
// the device's compute roofline. Counts are for a single frame.
type ViTCost struct {
	// FLOPs per frame through the tower and projector.
	FLOPs float64
	// WeightBytes is the parameter traffic per frame (weights re-read once).
	WeightBytes float64
	// OutTokens is the number of LLM tokens emitted per frame after the
	// projector/resampler.
	OutTokens int
}

// SigLIPViTL384Cost returns the cost model for SigLIP-ViT-L-384 (the
// paper's vision encoder): 24 layers, hidden 1024, MLP 4096, patch 14 →
// (384/14)^2 ≈ 729 patch tokens, with outTokens tokens surviving the
// projector (VideoLLM-Online pools to ~10).
func SigLIPViTL384Cost(outTokens int) ViTCost {
	const (
		layers = 24
		hidden = 1024.0
		mlp    = 4096.0
		tokens = 729.0
	)
	perLayer := 0.0
	// QKVO projections: 4 matmuls of [tokens,hidden]x[hidden,hidden].
	perLayer += 4 * 2 * tokens * hidden * hidden
	// Attention scores + weighted values: 2 matmuls of [tokens,tokens,hidden].
	perLayer += 2 * 2 * tokens * tokens * hidden
	// MLP: two matmuls hidden<->mlp.
	perLayer += 2 * 2 * tokens * hidden * mlp
	flops := layers * perLayer
	// Projector: hidden -> LLM dim 4096, two layers.
	flops += 2 * 2 * tokens * hidden * 4096

	params := layers*(4*hidden*hidden+2*hidden*mlp) + 2*hidden*4096
	return ViTCost{
		FLOPs:       flops,
		WeightBytes: params * 2, // bf16
		OutTokens:   outTokens,
	}
}
