package vision

import (
	"vrex/internal/mathx"
	"vrex/internal/tensor"
)

// Encoder is the functional stand-in for the vision tower (SigLIP/CLIP): a
// fixed random linear patch embedding followed by one token-mixing layer,
// enough to preserve the input's temporal correlation structure while
// producing embeddings in the tower's output space.
type Encoder struct {
	// EmbedDim is the tower output dimension per token.
	EmbedDim int
	patch    *tensor.Matrix // PixelDim x EmbedDim
	mix      *tensor.Matrix // TokensPerFrame x TokensPerFrame
	norm     []float32
}

// NewEncoder builds an encoder for frames of tokensPerFrame x pixelDim into
// embedDim outputs, with weights drawn deterministically from seed.
func NewEncoder(tokensPerFrame, pixelDim, embedDim int, seed uint64) *Encoder {
	rng := mathx.NewRNG(seed)
	e := &Encoder{
		EmbedDim: embedDim,
		patch:    tensor.NewMatrix(pixelDim, embedDim),
		mix:      tensor.NewMatrix(tokensPerFrame, tokensPerFrame),
		norm:     make([]float32, embedDim),
	}
	e.patch.Randomize(rng, 1/float32(sqrtf(pixelDim)))
	// Mixing: mostly identity with light neighbour blending (spatial
	// locality), like an attention layer with a near-diagonal pattern.
	for i := 0; i < tokensPerFrame; i++ {
		for j := 0; j < tokensPerFrame; j++ {
			switch {
			case i == j:
				e.mix.Set(i, j, 0.8)
			case i-j == 1 || j-i == 1:
				e.mix.Set(i, j, 0.1)
			}
		}
	}
	for i := range e.norm {
		e.norm[i] = 1
	}
	return e
}

func sqrtf(n int) float64 {
	v := float64(n)
	x := v
	for i := 0; i < 20; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// Encode maps a frame's pixel matrix to tower embeddings
// (TokensPerFrame x EmbedDim).
func (e *Encoder) Encode(f Frame) *tensor.Matrix {
	emb := tensor.MatMul(f.Pixels, e.patch)
	mixed := tensor.MatMul(e.mix, emb)
	return tensor.RMSNorm(mixed, e.norm, 1e-6)
}

// Projector is the MLP that adapts vision-tower embeddings to the LLM input
// dimension (the "MLP projector" module of Fig. 3): Linear -> SiLU -> Linear.
type Projector struct {
	w1, w2 *tensor.Matrix
}

// NewProjector builds an inDim -> hidden -> outDim projector with weights
// drawn deterministically from seed.
func NewProjector(inDim, hidden, outDim int, seed uint64) *Projector {
	rng := mathx.NewRNG(seed)
	p := &Projector{
		w1: tensor.NewMatrix(inDim, hidden),
		w2: tensor.NewMatrix(hidden, outDim),
	}
	p.w1.Randomize(rng, 1/float32(sqrtf(inDim)))
	p.w2.Randomize(rng, 1/float32(sqrtf(hidden)))
	return p
}

// Project maps tower embeddings into the LLM embedding space.
func (p *Projector) Project(emb *tensor.Matrix) *tensor.Matrix {
	h := tensor.MatMul(emb, p.w1)
	tensor.SiLU(h)
	return tensor.MatMul(h, p.w2)
}
