package serve

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"vrex/internal/hwsim"
)

func mustScheduler(t testing.TB, spec string) Scheduler {
	t.Helper()
	s, err := ParseScheduler(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseScheduler(t *testing.T) {
	for _, name := range []string{"fifo", "edf", "priority"} {
		s, err := ParseScheduler(name)
		if err != nil || s == nil || s.Name() != name {
			t.Fatalf("ParseScheduler(%q) = %v, %v", name, s, err)
		}
	}
	for _, none := range []string{"", "none", " NONE "} {
		s, err := ParseScheduler(none)
		if err != nil || s != nil {
			t.Fatalf("ParseScheduler(%q) should disable the plane, got %v, %v", none, s, err)
		}
	}
	for _, bad := range []string{"nosuch", "fifo(bogus=1)", "edf(slack=abc"} {
		if _, err := ParseScheduler(bad); err == nil {
			t.Errorf("ParseScheduler(%q) should fail", bad)
		}
	}
	found := map[string]bool{}
	for _, n := range SchedulerNames() {
		found[n] = true
	}
	if !found["fifo"] || !found["edf"] || !found["priority"] {
		t.Fatalf("registry incomplete: %v", SchedulerNames())
	}
}

// stripPeaks zeroes the resident-KV high-water marks, the one account the
// scheduler plane legitimately shifts: it counts KV growth at service rather
// than arrival time and holds a departed session's pages until its queued
// work drains, so a frame in flight across a departure moves the peak (the
// SchedulerConfig contract documents this). Everything else must match
// exactly.
func stripPeaks(res Result) Result {
	res.PerDevice = append([]DeviceMetrics(nil), res.PerDevice...)
	for d := range res.PerDevice {
		res.PerDevice[d].PeakResidentKV = 0
	}
	res.Memory.PeakResidentKV = 0
	return res
}

// TestBatch1FifoMatchesSerial is the simulator-correctness anchor: a batch-1
// FIFO scheduler must reproduce the pre-scheduler serial timeline exactly —
// underloaded fleets with queries, an overloaded single device with drops,
// and the KV memory-pressure plane with active spilling — across worker
// counts 1, 4 and GOMAXPROCS (mirroring pressure_test.go). Latencies, drop
// decisions, paging and utilization are compared bit for bit; only the
// resident-KV peaks are normalised (see stripPeaks).
func TestBatch1FifoMatchesSerial(t *testing.T) {
	scenarios := map[string]Config{}

	under := mixConfig(6, 2)
	for i := range under.Classes {
		under.Classes[i].Stream.QueryEvery = 8
	}
	scenarios["underloaded fleet + queries"] = under

	over := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 10)
	over.Stream.StartKV = 20000
	over.Stream.QueryEvery = 9
	scenarios["overloaded device + drops"] = over

	spill := kvConfig(2, 1, 30*pageBytes250, "spill(evict=lru,pages=4)")
	scenarios["kv plane + spilling"] = spill

	for name, cfg := range scenarios {
		t.Run(name, func(t *testing.T) {
			for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				serial := cfg
				serial.Workers = w
				sched := serial
				sched.Scheduler = SchedulerConfig{Policy: mustScheduler(t, "fifo"), BatchMax: 1}
				a, b := Run(serial), Run(sched)
				if !reflect.DeepEqual(stripPeaks(a), stripPeaks(b)) {
					t.Fatalf("workers=%d: batch-1 fifo diverged from serial timeline:\nserial %+v\nsched  %+v",
						w, a.Aggregate, b.Aggregate)
				}
				if b.Aggregate.FramesServed == 0 {
					t.Fatal("scenario served nothing")
				}
			}
		})
	}
}

// TestSchedulerParallelEquivalence extends the worker-count guarantee to a
// batched, deadline-ordered run under churn and memory pressure.
func TestSchedulerParallelEquivalence(t *testing.T) {
	cfg := kvConfig(6, 3, 40*pageBytes250, "spill(evict=lru,pages=8)")
	cfg.Churn = ChurnConfig{ArrivalRate: 0.4, MeanLifetime: 8}
	cfg.Scheduler = SchedulerConfig{Policy: mustScheduler(t, "edf"), BatchMax: 4, SLO: 1}
	cfg.Workers = 1
	seq := Run(cfg)
	if seq.Aggregate.FramesServed == 0 {
		t.Fatal("scenario must serve frames")
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Workers = w
		if par := Run(c); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential under the scheduler plane", w)
		}
	}
}

// TestBatchingImprovesThroughputAtHighLoad pins the acceptance criterion:
// on a saturated device, raising the batch cap strictly raises aggregate
// served frames (the per-step weight read amortises across the batch).
func TestBatchingImprovesThroughputAtHighLoad(t *testing.T) {
	mk := func(batch int) Config {
		cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 10)
		cfg.Stream.StartKV = 20000
		cfg.Scheduler = SchedulerConfig{Policy: mustScheduler(t, "fifo"), BatchMax: batch}
		return cfg
	}
	one := Run(mk(1))
	if one.RealTime {
		t.Fatal("scenario must be overloaded")
	}
	prev := one.Aggregate.FramesServed
	for _, batch := range []int{4, 8} {
		res := Run(mk(batch))
		if res.Aggregate.FramesServed <= prev {
			t.Fatalf("batch %d served %d frames, not above %d", batch, res.Aggregate.FramesServed, prev)
		}
		if res.PerDevice[0].Batches >= res.Aggregate.FramesServed {
			t.Fatalf("batch %d never coalesced: %d steps for %d frames",
				batch, res.PerDevice[0].Batches, res.Aggregate.FramesServed)
		}
		prev = res.Aggregate.FramesServed
	}
}

// TestEDFMonotoneAttainment: under edf with a uniform SLO, tightening the
// SLO never increases attainment (with one class, edf's deadline order
// degenerates to arrival order, so the schedule is invariant and only the
// deadline test moves).
func TestEDFMonotoneAttainment(t *testing.T) {
	prev := math.Inf(1)
	for _, slo := range []float64{2, 1, 0.5, 0.25} {
		cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 8)
		cfg.Stream.StartKV = 20000
		cfg.Scheduler = SchedulerConfig{Policy: mustScheduler(t, "edf"), BatchMax: 4, SLO: slo}
		res := Run(cfg)
		if res.Aggregate.SLOAttained > prev {
			t.Fatalf("tightening SLO to %v raised attainment to %v (was %v)",
				slo, res.Aggregate.SLOAttained, prev)
		}
		prev = res.Aggregate.SLOAttained
	}
}

// schedMixConfig is an overloaded two-class scenario: a tight-deadline
// interactive class against a loose background class.
func schedMixConfig(t *testing.T, policy string, batch, streams int) Config {
	sc := DefaultStreamConfig()
	sc.QueryEvery = 0
	sc.StartKV = 20000
	return Config{
		Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
		Streams: streams, Duration: 20,
		Classes: []StreamClass{
			{Name: "interactive", Weight: 0.3, Stream: sc, SLO: 0.6, Priority: 0},
			{Name: "background", Weight: 0.7, Stream: sc, SLO: 2, Priority: 1},
		},
		DropThreshold: 4, Seed: 7,
		Scheduler: SchedulerConfig{Policy: mustScheduler(t, policy), BatchMax: batch},
	}
}

// TestPriorityProtectsTightClass: under overload, the priority scheduler
// keeps the interactive class's attainment above both its own background
// class and fifo's interactive attainment.
func TestPriorityProtectsTightClass(t *testing.T) {
	byClass := func(res Result, name string) ClassMetrics {
		for _, cm := range res.PerClass {
			if cm.Class == name {
				return cm
			}
		}
		t.Fatalf("class %q missing", name)
		return ClassMetrics{}
	}
	prio := Run(schedMixConfig(t, "priority", 1, 8))
	fifo := Run(schedMixConfig(t, "fifo", 1, 8))
	pi, pb := byClass(prio, "interactive"), byClass(prio, "background")
	fi := byClass(fifo, "interactive")
	if pi.SLOAttained <= pb.SLOAttained {
		t.Fatalf("priority failed to protect interactive: %v vs background %v",
			pi.SLOAttained, pb.SLOAttained)
	}
	if pi.SLOAttained <= fi.SLOAttained {
		t.Fatalf("priority interactive %v not above fifo %v", pi.SLOAttained, fi.SLOAttained)
	}
	if pi.QueueP99 >= pb.QueueP99 {
		t.Fatalf("interactive queue wait %v should undercut background %v", pi.QueueP99, pb.QueueP99)
	}
}

// TestBatchObserverConsistent: batch-formed events account for every
// hardware step and every served item, and deadline-missed events match the
// metric.
func TestBatchObserverConsistent(t *testing.T) {
	cfg := schedMixConfig(t, "edf", 4, 8)
	batches, members, misses := 0, 0, 0
	cfg.Observer = ObserverFunc(func(e Event) {
		switch e.Kind {
		case EventBatchFormed:
			if e.Batch < 1 || e.Batch > 4 {
				t.Fatalf("batch size %d outside [1, cap]", e.Batch)
			}
			if math.IsNaN(e.Latency) || e.Latency <= 0 {
				t.Fatalf("batch-formed needs a positive service time, got %v", e.Latency)
			}
			batches++
			members += e.Batch
		case EventDeadlineMissed:
			if math.IsNaN(e.Latency) {
				t.Fatal("deadline-missed must carry the completion latency")
			}
			misses++
		default:
			if e.Batch != 0 {
				t.Fatalf("%v event carries batch size %d", e.Kind, e.Batch)
			}
		}
	})
	res := Run(cfg)
	steps := 0
	for _, dm := range res.PerDevice {
		steps += dm.Batches
	}
	if batches != steps {
		t.Fatalf("batch events %d != device steps %d", batches, steps)
	}
	if want := res.Aggregate.FramesServed + res.Aggregate.QueriesServed; members != want {
		t.Fatalf("batch members %d != served items %d", members, want)
	}
	if misses != res.Aggregate.DeadlineMisses || misses == 0 {
		t.Fatalf("deadline events %d != metric %d (want nonzero)", misses, res.Aggregate.DeadlineMisses)
	}
}

// TestDroppedEventLatencyIsNaN pins the Observer sentinel contract: events
// that carry no completion latency report NaN, never a fake zero sample.
func TestDroppedEventLatencyIsNaN(t *testing.T) {
	cfg := baseConfig(hwsim.AGXOrin(), hwsim.FlexGenModel(), 4)
	cfg.Stream.StartKV = 20000
	drops, serves := 0, 0
	cfg.Observer = ObserverFunc(func(e Event) {
		switch e.Kind {
		case EventFrameServed, EventQueryServed, EventDeadlineMissed:
			if math.IsNaN(e.Latency) || e.Latency <= 0 {
				t.Fatalf("served event latency %v", e.Latency)
			}
			serves++
		default:
			if !math.IsNaN(e.Latency) {
				t.Fatalf("%v event latency %v, want NaN sentinel", e.Kind, e.Latency)
			}
			if e.Kind == EventFrameDropped {
				drops++
			}
		}
	})
	Run(cfg)
	if drops == 0 || serves == 0 {
		t.Fatalf("scenario must both drop and serve: drops=%d serves=%d", drops, serves)
	}
}

// TestSerialSLOAccounting: the SLO/queue metrics exist on the serial
// timeline too (one hardware step per served item), so scheduler sweeps have
// an apples-to-apples batch-1 reference.
func TestSerialSLOAccounting(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 2)
	cfg.Stream.QueryEvery = 7
	res := Run(cfg)
	agg := res.Aggregate
	if agg.SLOAttained < 0 || agg.SLOAttained > 1 {
		t.Fatalf("SLOAttained %v outside [0,1]", agg.SLOAttained)
	}
	wantGoodput := float64(agg.FramesServed-agg.DeadlineMisses) / cfg.Duration
	if agg.Goodput != wantGoodput {
		t.Fatalf("goodput %v, want %v", agg.Goodput, wantGoodput)
	}
	if agg.QueueP99 < agg.QueueP50 || agg.QueueP50 < 0 {
		t.Fatalf("queue percentiles inconsistent: p50=%v p99=%v", agg.QueueP50, agg.QueueP99)
	}
	dm := res.PerDevice[0]
	if dm.Batches != agg.FramesServed+agg.QueriesServed {
		t.Fatalf("serial timeline: %d steps for %d served items", dm.Batches, agg.FramesServed+agg.QueriesServed)
	}
	if dm.MeanQueueWait < 0 {
		t.Fatalf("negative mean queue wait %v", dm.MeanQueueWait)
	}
	misses := 0
	for _, m := range res.PerStream {
		misses += m.DeadlineMisses
	}
	if misses != agg.DeadlineMisses {
		t.Fatalf("per-stream misses %d != aggregate %d", misses, agg.DeadlineMisses)
	}
}

// TestSchedulerValidation: malformed scheduler and class fields fail loudly.
func TestSchedulerValidation(t *testing.T) {
	fifo := mustScheduler(t, "fifo")
	for name, mutate := range map[string]func(*Config){
		"negative batch cap": func(c *Config) {
			c.Scheduler = SchedulerConfig{Policy: fifo, BatchMax: -1}
		},
		"negative scheduler slo": func(c *Config) {
			c.Scheduler = SchedulerConfig{Policy: fifo, SLO: -0.5}
		},
		"negative class slo": func(c *Config) { c.Classes[0].SLO = -1 },
		"zero fps":           func(c *Config) { c.Classes[0].Stream.FPS = 0 },
		"negative fps":       func(c *Config) { c.Classes[0].Stream.FPS = -2 },
		"nan fps":            func(c *Config) { c.Classes[0].Stream.FPS = math.NaN() },
		"inf fps":            func(c *Config) { c.Classes[0].Stream.FPS = math.Inf(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic", name)
				}
			}()
			cfg := mixConfig(2, 1)
			mutate(&cfg)
			Run(cfg)
		}()
	}
}

// TestExpDrawNeverZero pins the churn-sampling regression: the exponential
// inverse CDF is clamped strictly away from zero, so a uniform draw of
// exactly 0 can no longer produce zero-gap arrivals or zero-length
// lifetimes, while ordinary draws are untouched.
func TestExpDrawNeverZero(t *testing.T) {
	if d := expFromUniform(0, 5); d <= 0 {
		t.Fatalf("zero draw yields non-positive gap %v", d)
	}
	for _, u := range []float64{1e-300, 1e-17, 0.25, 0.5, 0.999999} {
		d := expFromUniform(u, 5)
		if d <= 0 {
			t.Fatalf("u=%v: non-positive gap %v", u, d)
		}
		if want := -5 * math.Log(1-u); d != want && want > 0 {
			t.Fatalf("u=%v: clamp perturbed an ordinary draw: %v != %v", u, d, want)
		}
	}
}
