package serve

import (
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
)

// StallKind classifies non-compute time the engine charges to a device
// timeline — KV page movement and migration legs. The telemetry plane
// renders these as device-lane stall slices alongside batches.
type StallKind int

const (
	// StallPageIn: spilled KV pages read back before service.
	StallPageIn StallKind = iota
	// StallPageOut: KV pages spilled to the backing store (admission spills,
	// reclaim on growth, queue drains).
	StallPageOut
	// StallMigrateSend: the source leg of a live session migration.
	StallMigrateSend
	// StallMigrateRecv: the destination leg of a live session migration.
	StallMigrateRecv
	// numStallKinds bounds the kind space for exhaustiveness tests.
	numStallKinds
)

// String names the kind for traces and tables.
func (k StallKind) String() string {
	switch k {
	case StallPageIn:
		return "kv-page-in"
	case StallPageOut:
		return "kv-page-out"
	case StallMigrateSend:
		return "migration-send"
	case StallMigrateRecv:
		return "migration-recv"
	}
	return "unknown"
}

// TelemetrySink extends Observer with device-stall callbacks: the engine
// reports every paging and migration occupation of a device timeline with
// its actual start (after queueing behind in-flight work) and duration.
// Like Observer, calls arrive from the single-threaded device loop in a
// deterministic order for every Workers setting.
type TelemetrySink interface {
	Observer
	// Stall reports dur seconds of non-compute occupation of device's
	// timeline beginning at start (simulated seconds).
	Stall(device int, start, dur float64, kind StallKind)
}

// PhaseProfile attributes every simulated device-second a run charges to a
// phase — the telemetry plane's one-level flamegraph. Attach one via
// Config.Telemetry; Run threads it through every pricing path:
//
//   - Sim accumulates compute phases (vision, weights, attention, exposed
//     prediction and retrieval fetch) inside hwsim.Chunk/Step.
//   - PageIn/PageOut/MigrationSend/MigrationRecv accumulate at the engine's
//     charge sites, so they cover exactly the paging and migration seconds
//     that landed on device timelines.
//   - Charged accumulates at every device Busy increment independently of
//     the buckets; Total() == Charged within float tolerance is the plane's
//     conservation invariant (nothing attributed twice, nothing lost).
//   - Pages is the kvpool mover-level account. It is informational: the
//     pool may price a partial reclaim and then fail the allocation, so
//     Pages can exceed the engine-charged paging time.
type PhaseProfile struct {
	// Sim is the compute-phase account shared by every device simulator.
	Sim hwsim.PhaseAccount
	// Pages is the mover-level page-transfer account (see note above).
	Pages kvpool.Account
	// PageIn / PageOut are engine-charged KV paging seconds per direction.
	PageIn, PageOut float64
	// MigrationSend / MigrationRecv are engine-charged live-migration legs.
	MigrationSend, MigrationRecv float64
	// Charged is the sum of every device Busy increment.
	Charged float64
}

// Total returns the attributed device-seconds: the sum of every phase
// bucket. It equals Charged within float tolerance (see the invariant
// note on the type).
func (p *PhaseProfile) Total() float64 {
	return p.Sim.Total() + p.PageIn + p.PageOut + p.MigrationSend + p.MigrationRecv
}

// addStall folds one engine-charged stall into its phase bucket.
func (p *PhaseProfile) addStall(kind StallKind, dur float64) {
	switch kind {
	case StallPageIn:
		p.PageIn += dur
	case StallPageOut:
		p.PageOut += dur
	case StallMigrateSend:
		p.MigrationSend += dur
	case StallMigrateRecv:
		p.MigrationRecv += dur
	}
}

// TelemetryConfig attaches the observability plane to a run. The zero value
// disables it entirely: Run prices and observes exactly as before, with no
// additional allocations on the hot path.
type TelemetryConfig struct {
	// Sink, when non-nil, receives every Event the engine emits (alongside
	// Config.Observer, which still sees the same stream) plus Stall
	// callbacks for paging and migration occupations.
	Sink TelemetrySink
	// Profile, when non-nil, accumulates the run's phase attribution.
	Profile *PhaseProfile
}

// enabled reports whether any telemetry hook is attached.
func (t TelemetryConfig) enabled() bool { return t.Sink != nil || t.Profile != nil }

// --- engine hooks ---

// observing reports whether any event consumer is attached; observe sites
// skip Event construction entirely when not.
func (e *engine) observing() bool { return e.cfg.Observer != nil || e.tel != nil }

// emit delivers one event to the configured Observer and the telemetry sink
// (both see the identical stream, in the same deterministic order).
func (e *engine) emit(ev Event) {
	if e.cfg.Observer != nil {
		e.cfg.Observer.Observe(ev)
	}
	if e.tel != nil {
		e.tel.Observe(ev)
	}
}

// profCharge mirrors a device Busy increment into the profile's Charged
// conservation counter.
func (e *engine) profCharge(dur float64) {
	if e.prof != nil {
		e.prof.Charged += dur
	}
}

// profPaging attributes inline frame/query paging (admission growth spill +
// touch page-out, then page-in) that the caller adds to the device timeline
// at start, and reports the two stall slices on device d's lane. Unlike
// chargePaging it does not touch Charged — the caller's Busy site does.
func (e *engine) profPaging(d int, start, out, in float64) {
	if e.prof != nil {
		e.prof.PageOut += out
		e.prof.PageIn += in
	}
	if e.tel != nil {
		if out > 0 {
			e.tel.Stall(d, start, out, StallPageOut)
		}
		if in > 0 {
			e.tel.Stall(d, start+out, in, StallPageIn)
		}
	}
}
