package serve

import (
	"container/heap"
	"strings"

	"vrex/internal/hwsim"
	"vrex/internal/named"
	"vrex/internal/policyspec"
)

// DefaultBatchMax is the frames-per-step cap when SchedulerConfig leaves
// BatchMax unset: deep enough that the per-step weight read amortises well,
// shallow enough that a batch never stalls a deadline by more than a few
// frame times.
const DefaultBatchMax = 8

// SchedulerConfig configures the per-device continuous-batching scheduler
// plane. When enabled, frame and query arrivals queue per device and the
// device forms one hardware step whenever it is free: ready frames coalesce
// (up to BatchMax) into a single batched step priced by hwsim.Step — one
// weight read and one fixed host overhead for the whole batch — while
// queries (prefill + full answer) always execute as solo steps. The policy
// orders the ready queue; per-class deadlines (StreamClass.SLO) drive the
// edf policy and the SLO/goodput metrics.
//
// The zero value (nil Policy) disables the plane entirely: Run executes the
// original serial arrival-order timeline byte for byte. An enabled scheduler
// with the fifo policy and BatchMax 1 reproduces that serial timeline's
// latencies, drops and service decisions exactly (steps form in arrival
// order at the same instants); only resident-KV high-water accounting can
// shift, because the plane counts KV growth at service rather than arrival
// time and holds a departed session's pages until its queued work drains.
type SchedulerConfig struct {
	// Policy orders ready work at each batch-formation point; nil disables
	// the scheduler plane. Build one with ParseScheduler ("fifo", "edf",
	// "priority") or implement Scheduler directly.
	Policy Scheduler
	// BatchMax caps the frames coalesced into one hardware step
	// (DefaultBatchMax when 0, 1 restores one-item steps).
	BatchMax int
	// SLO is the default frame deadline in seconds for classes that leave
	// StreamClass.SLO unset; 0 falls back to one frame interval (1/FPS).
	SLO float64
}

func (c SchedulerConfig) enabled() bool { return c.Policy != nil }

// WorkItem is the scheduling policy's view of one queued frame or query.
type WorkItem struct {
	Session int
	// Class indexes the run's stream mix; Priority is that class's
	// StreamClass.Priority.
	Class    int
	Priority int
	// Query marks a query (prefill + answer) item; false for a video frame.
	Query bool
	// Arrival is the item's arrival time; Deadline is Arrival plus the
	// class's resolved SLO.
	Arrival  float64
	Deadline float64
}

// Scheduler orders a device's ready queue: items with lower keys serve
// first, ties break by global arrival order. Keys are computed once at
// enqueue, so they must be a pure function of the item.
type Scheduler interface {
	Name() string
	Key(WorkItem) float64
}

// fifoSched serves in arrival order (every key equal; the arrival-sequence
// tie-break does the ordering).
type fifoSched struct{}

func (fifoSched) Name() string         { return "fifo" }
func (fifoSched) Key(WorkItem) float64 { return 0 }

// edfSched is earliest-deadline-first: tighter-SLO classes overtake.
type edfSched struct{}

func (edfSched) Name() string            { return "edf" }
func (edfSched) Key(it WorkItem) float64 { return it.Deadline }

// prioritySched serves by stream-class priority (lower StreamClass.Priority
// first), arrival order within a class.
type prioritySched struct{}

func (prioritySched) Name() string            { return "priority" }
func (prioritySched) Key(it WorkItem) float64 { return float64(it.Priority) }

// schedulers is the scheduling-policy registry: CLIs resolve -scheduler
// specs here through the shared policyspec grammar.
var schedulers = named.New[func(*policyspec.Spec) (Scheduler, error)]("serve", "scheduler")

func init() {
	RegisterScheduler("fifo", func(sp *policyspec.Spec) (Scheduler, error) {
		return fifoSched{}, sp.CheckConsumed()
	})
	RegisterScheduler("edf", func(sp *policyspec.Spec) (Scheduler, error) {
		return edfSched{}, sp.CheckConsumed()
	})
	RegisterScheduler("priority", func(sp *policyspec.Spec) (Scheduler, error) {
		return prioritySched{}, sp.CheckConsumed()
	})
}

// RegisterScheduler adds a scheduling-policy factory under name
// (lower-cased); duplicates panic — registry names are part of the CLI
// surface.
func RegisterScheduler(name string, f func(*policyspec.Spec) (Scheduler, error)) {
	schedulers.Register(name, f)
}

// SchedulerNames returns the registered scheduling policy names, sorted.
func SchedulerNames() []string { return schedulers.Names() }

// ParseScheduler builds a scheduling policy from a policyspec string
// ("fifo", "edf", "priority"); "" and "none" return nil (plane disabled).
func ParseScheduler(spec string) (Scheduler, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	sp, err := policyspec.Parse(spec)
	if err != nil {
		return nil, err
	}
	f, ok := schedulers.Lookup(sp.Name)
	if !ok {
		return nil, schedulers.Unknown(sp.Name)
	}
	return f(sp)
}

// readyItem is one queued frame or query on a device's ready heap.
type readyItem struct {
	at      float64
	key     float64
	seq     int
	session int
	query   bool
}

// readyHeap orders by (policy key, arrival time, schedule sequence): policy
// first, arrival order within a key — seq alone is not arrival order (it
// numbers per-session event blocks) and only breaks exact-time ties, exactly
// as the global event heap does.
type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// batchMember is a frame admitted into the step under formation, with the
// page-movement time its admission charged.
type batchMember struct {
	it     readyItem
	paging float64
}

// schedRun is the scheduler plane's per-run state on top of the engine:
// per-device ready heaps, at most one pending wake-up per device, and the
// per-session pending-work counts that defer a departed session's KV release
// until its queued work drains.
type schedRun struct {
	*engine
	sched    Scheduler
	batchMax int
	events   *eventHeap
	ready    []readyHeap
	// stepScheduled marks devices with a wake-up already on the event heap.
	stepScheduled []bool
	// stepSeq numbers wake-ups above every arrival's seq, so at equal
	// timestamps arrivals enqueue before the batch forms.
	stepSeq int
	pending []int
	ended   []bool
	// reqs / members are per-step scratch buffers reused across batch
	// formations.
	reqs    []hwsim.StepReq
	members []batchMember
}

// runScheduled is the continuous-batching timeline: arrivals enqueue onto
// their device's ready heap and the device forms policy-ordered steps
// whenever it is free.
func (e *engine) runScheduled(events *eventHeap) {
	batchMax := e.cfg.Scheduler.BatchMax
	if batchMax <= 0 {
		batchMax = DefaultBatchMax
	}
	r := &schedRun{
		engine: e, sched: e.cfg.Scheduler.Policy, batchMax: batchMax,
		events:        events,
		ready:         make([]readyHeap, e.nDev),
		stepScheduled: make([]bool, e.nDev),
		stepSeq:       events.Len(),
		pending:       make([]int, len(e.sessions)),
		ended:         make([]bool, len(e.sessions)),
		reqs:          make([]hwsim.StepReq, 0, batchMax),
	}
	e.sched = r
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		if ev.kind == evStep {
			d := ev.session
			r.stepScheduled[d] = false
			r.formBatch(d, ev.at)
			continue
		}
		if ev.kind == evControl {
			e.handleControl(ev.at)
			continue
		}
		sess := &e.sessions[ev.session]
		switch ev.kind {
		case evStart:
			e.startSession(ev)
			continue
		case evEnd:
			d := sess.device
			e.devs[d].ActiveSessions--
			e.devs[d].ClassSessions[sess.class]--
			e.alive[ev.session] = false
			if r.pending[ev.session] > 0 {
				// Queued work outlives the session: hold its KV (and pool
				// pages) until the last pending item resolves.
				r.ended[ev.session] = true
			} else {
				e.releaseSession(ev.session, ev.at)
			}
			e.observe(EventSessionEnd, ev.at, ev.session, latencyNone)
			continue
		}
		m := &e.metrics[ev.session]
		if e.devs[sess.device].Down {
			// The session could not be moved off its failed device (or every
			// device is down): its work drops until service resumes.
			if ev.kind == evFrame {
				m.FramesArrived++
				m.FramesDropped++
				e.observe(EventFrameDropped, ev.at, ev.session, latencyNone)
			} else {
				m.QueriesDropped++
				e.observe(EventQueryDropped, ev.at, ev.session, latencyNone)
			}
			continue
		}
		if e.plane != nil && e.plane.state[ev.session] != sessAdmitted {
			// Queued or rejected sessions hold no pages: their frames drop
			// and their queries go unanswered until admission.
			if ev.kind == evFrame {
				m.FramesArrived++
				m.FramesDropped++
				e.observe(EventFrameDropped, ev.at, ev.session, latencyNone)
			} else {
				m.QueriesDropped++
				e.observe(EventQueryDropped, ev.at, ev.session, latencyNone)
			}
			continue
		}
		if ev.kind == evFrame {
			m.FramesArrived++
		}
		d := sess.device
		it := readyItem{at: ev.at, seq: ev.seq, session: ev.session, query: ev.kind == evQuery}
		it.key = r.sched.Key(WorkItem{
			Session: ev.session, Class: sess.class,
			Priority: e.classes[sess.class].Priority, Query: it.query,
			Arrival: ev.at, Deadline: ev.at + e.slo[sess.class],
		})
		heap.Push(&r.ready[d], it)
		r.pending[ev.session]++
		if !r.stepScheduled[d] {
			t := ev.at
			if e.devs[d].Free > t {
				t = e.devs[d].Free
			}
			r.scheduleStep(d, t)
		}
	}
}

// scheduleStep pushes device d's next wake-up at time t; the caller
// guarantees no wake-up is pending.
func (r *schedRun) scheduleStep(d int, t float64) {
	heap.Push(r.events, event{at: t, session: d, kind: evStep, seq: r.stepSeq})
	r.stepSeq++
	r.stepScheduled[d] = true
}

// resolve retires one pending item (served or dropped) for session s,
// releasing the session's KV once it has departed and drained.
func (r *schedRun) resolve(s int, at float64) {
	r.pending[s]--
	if r.ended[s] && r.pending[s] == 0 {
		r.releaseSession(s, at)
	}
}

// formBatch runs one scheduling point on device d at time at: pick ready
// items in policy order, dropping stale or unallocatable frames, until one
// hardware step forms — a frame batch up to batchMax, or a solo query — then
// charge it and schedule the next wake-up at the step's completion.
func (r *schedRun) formBatch(d int, at float64) {
	e := r.engine
	q := &r.ready[d]
	if q.Len() == 0 {
		return
	}
	if e.devs[d].Down {
		// The device died with work queued (it could not be moved): drop it.
		r.dropReady(d, at)
		return
	}
	if e.devs[d].Free > at {
		// The device picked up work (admission paging) after this wake-up
		// was scheduled; form the batch when it actually frees up.
		r.scheduleStep(d, e.devs[d].Free)
		return
	}
	for q.Len() > 0 {
		head := heap.Pop(q).(readyItem)
		if head.query {
			if r.serveQuery(d, head, at) {
				break
			}
			continue // dropped without occupying the device; keep picking
		}
		paging, ok := r.admitFrame(d, head, at)
		if !ok {
			continue
		}
		members := append(r.members[:0], batchMember{it: head, paging: paging})
		// Extend the step with ready frames in strict policy order: a query
		// at the front ends the batch rather than being overtaken.
		for len(members) < r.batchMax && q.Len() > 0 && !(*q)[0].query {
			it := heap.Pop(q).(readyItem)
			p, ok := r.admitFrame(d, it, at)
			if !ok {
				continue
			}
			members = append(members, batchMember{it: it, paging: p})
		}
		r.serveFrames(d, members, at)
		r.members = members[:0]
		break
	}
	if q.Len() > 0 {
		r.scheduleStep(d, e.devs[d].Free)
	}
}

// admitFrame runs the engine's shared per-frame admission for a batch
// candidate at formation time `at` (which is the member's service start,
// exactly as the serial timeline measures the drop threshold); on failure
// the dropped frame's pending slot resolves.
func (r *schedRun) admitFrame(d int, it readyItem, at float64) (paging float64, ok bool) {
	paging, ok = r.admitFrameAt(it.session, d, it.at, at)
	if !ok {
		r.resolve(it.session, at)
	}
	return paging, ok
}

// serveFrames charges one coalesced frame step: the batch's page movement
// lands on the device timeline once, before the step, and every member
// completes at the step's end. Each member's latency is measured against the
// captured completion time, so a member's session teardown (resolve can
// charge drain paging onto the device) never bleeds into a batchmate's
// sample. The batch-formed event follows the members' served events and
// carries the head session's post-step KV, matching the query step's
// convention.
func (r *schedRun) serveFrames(d int, members []batchMember, at float64) {
	e := r.engine
	dev := &e.devs[d]
	start := at
	if dev.Free > start {
		start = dev.Free
	}
	paging := 0.0
	reqs := r.reqs[:0]
	for _, mb := range members {
		sc := e.classes[e.sessions[mb.it.session].class].Stream
		req := hwsim.StepReq{
			NewTokens: sc.TokensPerFrame, KVLen: e.kv[mb.it.session],
			Stage: hwsim.StageFramePhase,
		}
		if e.deg != nil {
			// Per-member budget scale: degraded members cheapen the coalesced
			// step (and the serial OOM fallback below inherits it per request).
			req.RatioScale = e.budgetOf(mb.it.session)
		}
		reqs = append(reqs, req)
		paging += mb.paging
	}
	b := e.sims[d].Step(reqs)
	total := b.Total
	if b.OOM {
		// The members fit individually (admitFrame checked) but not
		// co-resident: price the step as serial sub-steps instead of
		// dropping work the pool already allocated.
		total = 0
		for i := range reqs {
			total += e.sims[d].Step(reqs[i : i+1]).Total
		}
	}
	dev.Free = start + paging + total
	dev.Busy += paging + total
	e.profCharge(paging + total)
	done := dev.Free
	e.devMetrics[d].Batches++
	for _, mb := range members {
		s := mb.it.session
		sc := e.classes[e.sessions[s].class].Stream
		e.kv[s] += sc.TokensPerFrame
		dev.ResidentKV += sc.TokensPerFrame
		e.trackPeak(d)
		e.metrics[s].FramesServed++
		e.devMetrics[d].FramesServed++
		lat := done - mb.it.at
		e.latencies[s] = append(e.latencies[s], lat)
		e.observe(EventFrameServed, mb.it.at, s, lat)
		e.served(s, d, mb.it.at, start-mb.it.at, lat, true)
		r.resolve(s, at)
	}
	e.observeBatch(at, d, members[0].it.session, len(members), total)
	r.reqs = reqs[:0]
}

// serveQuery charges one solo query step through the engine's shared query
// pricing (exactly the serial timeline's arithmetic); it reports whether the
// device was occupied (false when the query dropped on KV allocation
// failure). The batch-formed event follows the query's served event, since
// the step's service time is only known after pricing.
func (r *schedRun) serveQuery(d int, it readyItem, at float64) bool {
	e := r.engine
	start := at
	if e.devs[d].Free > start {
		start = e.devs[d].Free
	}
	total, ok := e.serveQueryAt(it.session, d, it.at, start)
	if ok {
		e.observeBatch(at, d, it.session, 1, total)
	}
	r.resolve(it.session, at)
	return ok
}

// observeBatch emits an EventBatchFormed for a step of `size` items headed
// by session `head`, with the step's service time (excluding queued page
// movement) as Latency.
func (e *engine) observeBatch(at float64, d, head, size int, service float64) {
	if !e.observing() {
		return
	}
	e.emit(Event{
		Kind: EventBatchFormed, Time: at, Session: head,
		Class: e.classes[e.sessions[head].class].Name, Device: d,
		Latency: service, KV: e.kv[head], Batch: size,
	})
}
