// Package serve simulates multi-stream streaming-video-LLM serving: several
// concurrent video sessions share one device, frames arrive in real time,
// queries interleave, and the scheduler processes work in arrival order with
// optional frame dropping under backlog. It quantifies the paper's closing
// claim — "clear potential for scalable deployment in large-scale server
// environments" — by measuring how many concurrent real-time streams each
// system sustains (the `scale` experiment).
package serve

import (
	"container/heap"
	"fmt"
	"sort"

	"vrex/internal/hwsim"
	"vrex/internal/mathx"
	"vrex/internal/parallel"
)

// StreamConfig describes one video session's arrival process.
type StreamConfig struct {
	// FPS is the incoming frame rate.
	FPS float64
	// TokensPerFrame is the LLM tokens per frame.
	TokensPerFrame int
	// QueryEvery is the mean seconds between user queries (0 disables).
	QueryEvery float64
	// QueryTokens / AnswerTokens shape each interaction.
	QueryTokens  int
	AnswerTokens int
	// StartKV is the session's pre-existing KV length (e.g. mid-session).
	StartKV int
}

// DefaultStreamConfig matches the paper's working scenario at 2 FPS
// streaming (VideoLLM-Online's operating point).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		FPS:            2,
		TokensPerFrame: 10,
		QueryEvery:     15,
		QueryTokens:    25,
		AnswerTokens:   39,
		StartKV:        1000,
	}
}

// Config describes a serving run.
type Config struct {
	Dev hwsim.DeviceSpec
	Pol hwsim.PolicyModel
	// Streams is the number of concurrent sessions.
	Streams int
	// Duration is the simulated wall-clock seconds.
	Duration float64
	// Stream shapes every session.
	Stream StreamConfig
	// DropThreshold: a frame still queued after this many frame intervals
	// is dropped (<= 0 disables dropping).
	DropThreshold float64
	// Seed jitters arrivals. Each stream derives an independent sub-seed
	// from it, so stream s's arrival process never depends on how many other
	// streams exist or on scheduling order.
	Seed uint64
	// Workers advances independent streams concurrently between the
	// scheduler barriers (schedule construction before the device loop,
	// per-stream metric reduction after it): 0 uses GOMAXPROCS, 1 is
	// sequential. The device loop itself is the barrier — one shared device
	// serves arrivals in global order — and results are identical for any
	// worker count.
	Workers int
}

// StreamMetrics summarises one session.
type StreamMetrics struct {
	FramesArrived int
	FramesServed  int
	FramesDropped int
	QueriesServed int
	// AchievedFPS counts served frames / duration.
	AchievedFPS float64
	// P50 / P99 are frame completion latencies (queueing + service).
	P50, P99 float64
	// FinalKV is the session's KV length at the end.
	FinalKV int
}

// Result is a serving run's outcome.
type Result struct {
	PerStream []StreamMetrics
	// RealTime reports whether every stream served >= 95% of its frames.
	RealTime bool
	// Utilization is device busy time / duration.
	Utilization float64
}

// event is one arrival.
type event struct {
	at     float64
	stream int
	query  bool
	seq    int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the serving simulation.
func Run(cfg Config) Result {
	if cfg.Streams <= 0 || cfg.Duration <= 0 {
		panic(fmt.Sprintf("serve: invalid config streams=%d duration=%v", cfg.Streams, cfg.Duration))
	}
	sim := hwsim.NewSim(cfg.Dev, hwsim.Llama3_8B(), cfg.Pol)

	// Build the arrival schedule: streams are independent, so each one's
	// arrival process is generated concurrently from its own derived seed
	// (parallel.SeedFor keeps stream s's jitter a pure function of cfg.Seed
	// and s). The ordered fan-in and the deterministic seq renumbering below
	// make the merged schedule identical for any worker count.
	perStream := parallel.Map(cfg.Workers, cfg.Streams, func(s int) []event {
		rng := mathx.NewRNG(parallel.SeedFor(cfg.Seed, s))
		interval := 1 / cfg.Stream.FPS
		var evs []event
		// Phase-shift streams so arrivals interleave.
		phase := rng.Float64() * interval
		for t := phase; t < cfg.Duration; t += interval {
			evs = append(evs, event{at: t, stream: s})
		}
		if cfg.Stream.QueryEvery > 0 {
			for t := cfg.Stream.QueryEvery * (0.5 + rng.Float64()); t < cfg.Duration; t += cfg.Stream.QueryEvery {
				evs = append(evs, event{at: t, stream: s, query: true})
			}
		}
		return evs
	})
	var events eventHeap
	seq := 0
	for _, evs := range perStream {
		for _, ev := range evs {
			ev.seq = seq
			seq++
			events = append(events, ev)
		}
	}
	heap.Init(&events)

	kv := make([]int, cfg.Streams)
	for s := range kv {
		kv[s] = cfg.Stream.StartKV
	}
	metrics := make([]StreamMetrics, cfg.Streams)
	latencies := make([][]float64, cfg.Streams)

	var deviceFree, busy float64
	frameInterval := 1 / cfg.Stream.FPS
	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		m := &metrics[ev.stream]
		start := deviceFree
		if ev.at > start {
			start = ev.at
		}
		if !ev.query {
			m.FramesArrived++
			if cfg.DropThreshold > 0 && start-ev.at > cfg.DropThreshold*frameInterval {
				m.FramesDropped++
				continue
			}
			b := sim.FrameLatency(cfg.Stream.TokensPerFrame, kv[ev.stream], 1)
			if b.OOM {
				m.FramesDropped++
				continue
			}
			deviceFree = start + b.Total
			busy += b.Total
			kv[ev.stream] += cfg.Stream.TokensPerFrame
			m.FramesServed++
			latencies[ev.stream] = append(latencies[ev.stream], deviceFree-ev.at)
		} else {
			q := sim.Chunk(cfg.Stream.QueryTokens, kv[ev.stream], 1, hwsim.StageTextPhase)
			total := q.Total
			kv[ev.stream] += cfg.Stream.QueryTokens
			for i := 0; i < cfg.Stream.AnswerTokens; i++ {
				total += sim.TPOT(kv[ev.stream], 1).Total
				kv[ev.stream]++
			}
			deviceFree = start + total
			busy += total
			m.QueriesServed++
		}
	}

	res := Result{PerStream: metrics, RealTime: true, Utilization: busy / cfg.Duration}
	if res.Utilization > 1 {
		res.Utilization = 1
	}
	// Post-barrier reduction: each stream's latency sort and percentiles are
	// independent, so they run across the pool; the real-time verdict folds
	// in stream order afterwards.
	parallel.ForEach(cfg.Workers, cfg.Streams, func(s int) {
		m := &metrics[s]
		m.AchievedFPS = float64(m.FramesServed) / cfg.Duration
		m.FinalKV = kv[s]
		if len(latencies[s]) > 0 {
			sort.Float64s(latencies[s])
			m.P50 = mathx.Percentile(latencies[s], 50)
			m.P99 = mathx.Percentile(latencies[s], 99)
		}
	})
	for s := range metrics {
		m := &metrics[s]
		if m.FramesArrived > 0 && float64(m.FramesServed) < 0.95*float64(m.FramesArrived) {
			res.RealTime = false
		}
	}
	return res
}

// MaxRealTimeStreams bisects the largest stream count (up to limit) the
// system serves in real time.
func MaxRealTimeStreams(cfg Config, limit int) int {
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		c := cfg
		c.Streams = mid
		if Run(c).RealTime {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
