// Package serve simulates multi-stream streaming-video-LLM serving under the
// Scenario API: a fleet of devices serves concurrent video sessions drawn
// from a weighted mix of stream classes, frames arrive in real time, queries
// interleave, whole sessions arrive and depart (open-loop churn), and a
// pluggable balancer places each session on a device. The scheduler
// processes work in arrival order with optional frame dropping under
// backlog. It quantifies the paper's closing claim — "clear potential for
// scalable deployment in large-scale server environments" — by measuring how
// many concurrent real-time streams each system sustains (the `scale` and
// `fleet` experiments).
//
// A Config with no Classes, no Churn and at most one device reduces exactly
// to the original single-device, homogeneous-stream simulation: the golden
// tests in internal/experiments pin that path byte-for-byte.
package serve

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/mathx"
	"vrex/internal/parallel"
)

// StreamConfig describes one video session's arrival process.
type StreamConfig struct {
	// FPS is the incoming frame rate.
	FPS float64
	// TokensPerFrame is the LLM tokens per frame.
	TokensPerFrame int
	// QueryEvery is the mean seconds between user queries (0 disables).
	QueryEvery float64
	// QueryTokens / AnswerTokens shape each interaction.
	QueryTokens  int
	AnswerTokens int
	// StartKV is the session's pre-existing KV length (e.g. mid-session).
	StartKV int
}

// DefaultStreamConfig matches the paper's working scenario at 2 FPS
// streaming (VideoLLM-Online's operating point).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		FPS:            2,
		TokensPerFrame: 10,
		QueryEvery:     15,
		QueryTokens:    25,
		AnswerTokens:   39,
		StartKV:        1000,
	}
}

// StreamClass is one component of a heterogeneous stream mix: a named
// session shape with a selection weight. Sessions draw their class with
// probability Weight / sum(Weights).
type StreamClass struct {
	Name   string
	Weight float64
	Stream StreamConfig
	// SLO is the class's frame deadline in seconds: a frame completing more
	// than SLO after arrival is a deadline miss (it is still served — only
	// DropThreshold discards work). 0 falls back to SchedulerConfig.SLO,
	// then to one frame interval (1/FPS). The edf scheduler orders ready
	// work by arrival + SLO.
	SLO float64
	// Priority orders classes under the priority scheduler: lower values
	// serve first. Classes sharing a priority fall back to arrival order.
	Priority int
}

// ChurnConfig describes open-loop session churn: whole sessions arriving as
// a Poisson process and departing after exponentially distributed lifetimes.
// The zero value disables churn (the closed population of Config.Streams
// sessions runs for the whole duration).
//
// The three hooks generalise the churn plane to arbitrary load shapes
// (internal/scenario compiles .vrex scenario files into them): each replaces
// one draw while keeping the derived-seed discipline — the hook receives a
// private RNG seeded exactly like the draw it replaces, so enabling one hook
// never perturbs the randomness the others consume. All hooks nil reduces
// byte-identically to the Poisson/exponential process above.
type ChurnConfig struct {
	// ArrivalRate is the mean session arrivals per second (0 disables).
	ArrivalRate float64
	// MeanLifetime is the mean session lifetime in seconds; 0 means sessions
	// stay for the rest of the run.
	MeanLifetime float64
	// Arrivals, when non-nil, replaces the Poisson arrival process: it
	// returns churned-session arrival times (seconds; values outside
	// [0, Duration) are skipped without disturbing later ordinals). rng is
	// the churn-domain generator the Poisson process would have used, so a
	// hook drawing the same exponential gaps reproduces it exactly.
	// ArrivalRate is ignored when set.
	Arrivals func(rng *mathx.RNG, duration float64) []float64
	// Lifetime, when non-nil, replaces the exponential lifetime draw for
	// every session (initial and churned): rng is the session's private
	// lifetime generator, ordinal its index within its seed domain, start its
	// arrival time. A non-positive (or NaN) return means the session stays
	// for the rest of the run. MeanLifetime is ignored when set.
	Lifetime func(rng *mathx.RNG, ordinal int, start float64) float64
	// Class, when non-nil, replaces the weighted class draw: it returns an
	// index into the effective class mix (out-of-range panics). rng is the
	// session's private class generator, ordinal and start as for Lifetime —
	// time-varying mixes (correlated per-class bursts) key off start,
	// trace replays key off ordinal.
	Class func(rng *mathx.RNG, ordinal int, start float64) int
}

// hasArrivals reports whether churn can create sessions at all.
func (c ChurnConfig) hasArrivals() bool { return c.ArrivalRate > 0 || c.Arrivals != nil }

// Config describes a serving run.
type Config struct {
	Dev hwsim.DeviceSpec
	Pol hwsim.PolicyModel
	// DevSpecs, when non-empty, gives each fleet member its own hardware
	// spec (len must equal the fleet size): heterogeneous fleets price each
	// device's work and KV pool from its own spec. Empty means every device
	// is Dev — exactly the original homogeneous fleet.
	DevSpecs []hwsim.DeviceSpec
	// Streams is the number of sessions active at t=0.
	Streams int
	// Duration is the simulated wall-clock seconds.
	Duration float64
	// Stream shapes every session when Classes is empty (the original
	// homogeneous API, kept for back-compat).
	Stream StreamConfig
	// Classes, when non-empty, is the weighted mix sessions draw their shape
	// from; it takes precedence over Stream.
	Classes []StreamClass
	// Churn adds open-loop session arrivals/departures.
	Churn ChurnConfig
	// KV enables the device KV memory-pressure plane: paged per-device KV
	// budgets, spill-to-host/NVMe and memory-aware admission (see KVConfig).
	// The zero value disables it and Run reduces exactly to the unpooled
	// simulation.
	KV KVConfig
	// Scheduler enables the per-device continuous-batching scheduler plane:
	// ready frames from co-resident sessions coalesce into one hardware step
	// under a pluggable, deadline-aware policy (see SchedulerConfig). The
	// zero value disables it and Run reduces exactly to the serial
	// arrival-order batch-1 timeline.
	Scheduler SchedulerConfig
	// Degrade enables the accuracy-aware graceful-degradation plane: a
	// controller shrinks KV-pressured or deadline-missing sessions' retrieval
	// budgets in bounded quantized steps and restores them with hysteresis
	// (see DegradeConfig). The zero value disables it and Run reduces exactly
	// to the undegraded engine.
	Degrade DegradeConfig
	// Devices is the fleet size; 0 or 1 simulates a single device.
	Devices int
	// Balancer places each arriving session on a device; nil defaults to
	// round-robin. Run calls Reset before use, so one Balancer value can be
	// reused across runs.
	Balancer Balancer
	// Control attaches a fleet controller (drain/fail/activate devices,
	// migrate sessions) running at deterministic tick events; the zero value
	// disables it (see ControlConfig).
	Control ControlConfig
	// Migration prices live session moves the controller triggers; the zero
	// value makes moves free (see MigrationConfig).
	Migration MigrationConfig
	// Observer, when non-nil, receives every scheduling event in
	// deterministic order (see Event).
	Observer Observer
	// Telemetry attaches the observability plane: an event/stall sink and a
	// phase-attribution profile (see TelemetryConfig). The zero value
	// disables it and Run prices and observes exactly as before.
	Telemetry TelemetryConfig
	// DropThreshold: a frame still queued after this many frame intervals
	// is dropped (<= 0 disables dropping).
	DropThreshold float64
	// Seed jitters arrivals. Each session derives an independent sub-seed
	// from it, so session s's arrival process never depends on how many other
	// sessions exist or on scheduling order.
	Seed uint64
	// Workers advances independent sessions concurrently between the
	// scheduler barriers (schedule construction before the device loop,
	// per-session metric reduction after it): 0 uses GOMAXPROCS, 1 is
	// sequential. The device loop itself is the barrier — devices serve
	// arrivals in global order — and results are identical for any worker
	// count.
	Workers int
}

// classes returns the effective mix: Classes, or the legacy single Stream.
func (cfg *Config) classes() []StreamClass {
	if len(cfg.Classes) > 0 {
		return cfg.Classes
	}
	return []StreamClass{{Name: "default", Weight: 1, Stream: cfg.Stream}}
}

// StreamMetrics summarises one session.
type StreamMetrics struct {
	// Class names the session's stream class; Device is the fleet member the
	// balancer placed it on.
	Class  string
	Device int

	FramesArrived int
	FramesServed  int
	FramesDropped int
	QueriesServed int
	// QueriesDropped counts queries lost to the memory-pressure plane (the
	// session was unadmitted, or its KV growth could not be allocated);
	// always zero with the plane disabled.
	QueriesDropped int
	// DeadlineMisses counts served frames that completed after their class
	// deadline (see StreamClass.SLO); dropped frames are not counted here —
	// they already show in FramesDropped and depress SLOAttained.
	DeadlineMisses int
	// AchievedFPS counts served frames over the session's presence window
	// (the whole run for non-churned sessions).
	AchievedFPS float64
	// P50 / P99 are frame completion latencies (queueing + service).
	P50, P99 float64
	// FinalKV is the session's KV length at the end.
	FinalKV int
	// Degradation-plane accounting, all zero with Config.Degrade disabled:
	// budget steps taken in each direction, the mean retrieval budget scale
	// across served frames and queries, and the mean accuracy-proxy
	// retention at those budgets (1 when never degraded).
	Degradations  int
	Restorations  int
	MeanBudget    float64
	AccuracyProxy float64
}

// ClassMetrics aggregates the sessions of one stream class (or, for
// Result.Aggregate, every session).
type ClassMetrics struct {
	Class    string
	Sessions int

	FramesArrived int
	FramesServed  int
	FramesDropped int
	QueriesServed int
	// QueriesDropped counts queries lost to the memory-pressure plane.
	QueriesDropped int
	// MeanFPS is the mean per-session achieved FPS (each session's rate over
	// its own presence window).
	MeanFPS float64
	// P50 / P99 are percentiles of the pooled frame completion latencies.
	P50, P99 float64
	// QueueP50 / QueueP99 are percentiles of the pooled queue waits (time
	// from arrival to service start) of served frames and queries.
	QueueP50, QueueP99 float64
	// DeadlineMisses counts served frames completing past their deadline.
	DeadlineMisses int
	// SLOAttained is the fraction of arrived frames served within their
	// class deadline (dropped frames count against it; 0 when none arrived).
	SLOAttained float64
	// Goodput is SLO-attained frames per second of simulated time — the
	// throughput that actually met the deadline.
	Goodput float64
	// DropRate is dropped / arrived frames (0 when nothing arrived).
	DropRate float64
	// RealTimeSessions counts sessions that served >= 95% of their frames.
	RealTimeSessions int
	// Degradation-plane accounting, all zero with Config.Degrade disabled:
	// budget steps across the class's sessions, plus the served-work-weighted
	// mean budget scale and accuracy-proxy retention (sessions that served
	// nothing carry no weight).
	Degradations  int
	Restorations  int
	MeanBudget    float64
	AccuracyProxy float64
}

// DeviceMetrics summarises one fleet member.
type DeviceMetrics struct {
	// Sessions counts sessions the balancer assigned to this device.
	Sessions      int
	FramesServed  int
	QueriesServed int
	// Utilization is this device's busy time / duration (including any
	// page-movement time the memory-pressure plane charged).
	Utilization float64
	// PeakResidentKV is the high-water mark of DeviceState.ResidentKV across
	// the run: the KV owned by the device's admitted sessions, counting any
	// pages spilled to the backing store (so under spilling it can exceed
	// the device's physical pool). Tracked whether or not the
	// memory-pressure plane is enabled.
	PeakResidentKV int
	// Batches counts hardware steps the device executed: one per served
	// frame or query on the serial timeline, one per coalesced step under
	// the scheduler plane (so FramesServed/Batches is the mean frame batch).
	Batches int
	// MeanQueueWait is the mean time served frames and queries spent queued
	// before service started on this device.
	MeanQueueWait float64
	// Memory-pressure plane counters, all zero when Config.KV is disabled:
	// pages moved between device memory and the backing store, the seconds
	// charged for that movement, and admission-control outcomes.
	PagesIn, PagesOut                int
	PageInTime, PageOutTime          float64
	SessionsQueued, SessionsRejected int
	// Control-plane counters, all zero without a controller: sessions
	// migrated onto / off this device and the seconds migration occupied
	// its timeline (this device's leg only).
	MigrationsIn, MigrationsOut int
	MigrationTime               float64
	// Degradation-plane counters, zero with Config.Degrade disabled: budget
	// steps taken by sessions while resident on this device.
	Degradations, Restorations int
}

// Result is a serving run's outcome.
type Result struct {
	PerStream []StreamMetrics
	// PerClass aggregates sessions by stream class, in mix order; Aggregate
	// pools every session.
	PerClass  []ClassMetrics
	Aggregate ClassMetrics
	// PerDevice summarises each fleet member.
	PerDevice []DeviceMetrics
	// Memory aggregates the KV memory-pressure plane across the fleet
	// (zero when Config.KV is disabled).
	Memory MemoryMetrics
	// Migrations aggregates controller-driven session mobility (zero
	// without a controller).
	Migrations MigrationMetrics
	// RealTime reports whether every stream served >= 95% of its frames.
	RealTime bool
	// Utilization is fleet busy time / (duration * devices).
	Utilization float64
}

// event kinds, in the order they sort at equal timestamps within a session.
const (
	evStart = iota // session joins: balancer assignment
	evFrame        // video frame arrival
	evQuery        // user query arrival
	evEnd          // session leaves: balancer state release
	// evStep is a scheduler-plane wake-up: the device is (or becomes) free
	// and forms its next batch. Step events carry the device index in the
	// session field and draw seq numbers above every arrival's, so at equal
	// timestamps arrivals enqueue before the batch forms.
	evStep
	// evControl is a fleet-controller tick (session field unused, -1).
	// Control events draw seq numbers above every arrival's but below the
	// step range, so at equal timestamps a tick sees the arrivals that just
	// landed and acts before any batch forms.
	evControl
)

// event is one arrival (or, under the scheduler plane, a device wake-up).
type event struct {
	at      float64
	session int
	kind    int
	seq     int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Derived-seed domains: each randomness consumer hashes its own salt into
// the config seed so the per-session arrival jitter (salt 0) stays a pure
// function of (Seed, session) regardless of churn or mix settings — adding a
// class or enabling churn never perturbs an existing session's schedule.
// Churned sessions draw everything (jitter, class, lifetime) from the
// churn-session domain keyed by their arrival ordinal, NOT their session
// index, so changing Config.Streams never re-randomises the churn
// population — the monotonicity MaxRealTimeStreams depends on.
const (
	classSeedSalt    = 0x00C1A55E5
	churnSeedSalt    = 0x0C4312A15
	lifeSeedSalt     = 0x011FE7113
	churnSessionSalt = 0x05E551035
)

// expDraw samples an exponential with the given mean.
func expDraw(rng *mathx.RNG, mean float64) float64 {
	return expFromUniform(rng.Float64(), mean)
}

// expFromUniform maps a uniform draw in [0, 1) through the exponential
// inverse CDF, clamped strictly away from 0: a draw of exactly 0 would
// otherwise yield a zero inter-arrival gap or a zero-length session
// lifetime, producing simultaneous events whose heap order is only
// tie-break-dependent. The clamp is far below any simulated timescale, so
// every other draw is unchanged.
func expFromUniform(u, mean float64) float64 {
	d := -mean * math.Log(1-u)
	if d <= 0 {
		return mean * 1e-12
	}
	return d
}

// session is one video session's static plan: its class, presence window,
// jitter seed and (once assigned) device.
type session struct {
	class      int
	start, end float64
	device     int
	// seed drives the session's arrival jitter; a pure function of
	// (Config.Seed, index) for initial sessions and of (Config.Seed, churn
	// ordinal) for churned ones.
	seed uint64
}

// buildSessions lays out the run's session population: Streams sessions at
// t=0 plus Poisson arrivals, classes drawn from the weighted mix, lifetimes
// truncating the presence window. Everything is a pure function of cfg, and
// churned sessions are seeded by arrival ordinal in their own domain, so
// the churn population is invariant under changes to cfg.Streams.
func buildSessions(cfg Config, classes []StreamClass) []session {
	var totalWeight float64
	for _, c := range classes {
		totalWeight += c.Weight
	}
	// pickClass and endOf key their draws on a domain seed (the initial or
	// churn session domain) plus the session's ordinal within that domain.
	// The Churn hooks, when set, consume the same privately seeded RNG as the
	// draw they replace, so the hook and built-in paths never share state.
	pickClass := func(domain uint64, i int, start float64) int {
		if cfg.Churn.Class != nil {
			rng := mathx.NewRNG(parallel.SeedFor(domain^classSeedSalt, i))
			c := cfg.Churn.Class(rng, i, start)
			if c < 0 || c >= len(classes) {
				panic(fmt.Sprintf("serve: Churn.Class returned %d with %d classes", c, len(classes)))
			}
			return c
		}
		if len(classes) == 1 {
			return 0
		}
		x := mathx.NewRNG(parallel.SeedFor(domain^classSeedSalt, i)).Float64() * totalWeight
		for c := range classes {
			x -= classes[c].Weight
			if x < 0 {
				return c
			}
		}
		return len(classes) - 1
	}
	endOf := func(domain uint64, i int, start float64) float64 {
		var life float64
		if cfg.Churn.Lifetime != nil {
			life = cfg.Churn.Lifetime(mathx.NewRNG(parallel.SeedFor(domain^lifeSeedSalt, i)), i, start)
			if !(life > 0) { // non-positive or NaN: stays for the rest of the run
				return cfg.Duration
			}
		} else {
			if cfg.Churn.MeanLifetime <= 0 {
				return cfg.Duration
			}
			life = expDraw(mathx.NewRNG(parallel.SeedFor(domain^lifeSeedSalt, i)), cfg.Churn.MeanLifetime)
		}
		end := start + life
		if end > cfg.Duration {
			end = cfg.Duration
		}
		return end
	}

	sessions := make([]session, 0, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		sessions = append(sessions, session{
			class: pickClass(cfg.Seed, s, 0), end: endOf(cfg.Seed, s, 0),
			device: -1, seed: parallel.SeedFor(cfg.Seed, s),
		})
	}
	switch {
	case cfg.Churn.Arrivals != nil:
		domain := cfg.Seed ^ churnSessionSalt
		rng := mathx.NewRNG(parallel.SeedFor(cfg.Seed^churnSeedSalt, 0))
		for i, t := range cfg.Churn.Arrivals(rng, cfg.Duration) {
			// Out-of-window times are skipped but keep their ordinal, so a
			// trace replayed with a shorter duration still seeds and classes
			// its surviving sessions identically.
			if !(t >= 0) || t >= cfg.Duration {
				continue
			}
			sessions = append(sessions, session{
				class: pickClass(domain, i, t), start: t, end: endOf(domain, i, t),
				device: -1, seed: parallel.SeedFor(domain, i),
			})
		}
	case cfg.Churn.ArrivalRate > 0:
		domain := cfg.Seed ^ churnSessionSalt
		rng := mathx.NewRNG(parallel.SeedFor(cfg.Seed^churnSeedSalt, 0))
		i := 0
		for t := expDraw(rng, 1/cfg.Churn.ArrivalRate); t < cfg.Duration; t += expDraw(rng, 1/cfg.Churn.ArrivalRate) {
			sessions = append(sessions, session{
				class: pickClass(domain, i, t), start: t, end: endOf(domain, i, t),
				device: -1, seed: parallel.SeedFor(domain, i),
			})
			i++
		}
	}
	return sessions
}

func validate(cfg Config, classes []StreamClass) {
	if cfg.Duration <= 0 || (cfg.Streams <= 0 && !cfg.Churn.hasArrivals()) {
		panic(fmt.Sprintf("serve: invalid config streams=%d duration=%v arrival_rate=%v",
			cfg.Streams, cfg.Duration, cfg.Churn.ArrivalRate))
	}
	if cfg.Streams < 0 || cfg.Churn.ArrivalRate < 0 || cfg.Churn.MeanLifetime < 0 || cfg.Devices < 0 {
		panic(fmt.Sprintf("serve: negative config field: %+v", cfg))
	}
	for _, c := range classes {
		// Real-time classes divide by FPS (the frame schedule and the drop
		// threshold's frame-interval scale), so NaN/Inf must fail here, not
		// corrupt the timeline: `!(x > 0)` also catches NaN.
		if !(c.Stream.FPS > 0) || math.IsInf(c.Stream.FPS, 0) {
			panic(fmt.Sprintf("serve: stream class %q: FPS must be a positive finite number, got %v (the frame schedule and drop threshold divide by it)",
				c.Name, c.Stream.FPS))
		}
		if c.Weight <= 0 {
			panic(fmt.Sprintf("serve: class %q needs positive weight", c.Name))
		}
		if c.SLO < 0 || math.IsNaN(c.SLO) {
			panic(fmt.Sprintf("serve: class %q: negative SLO %v", c.Name, c.SLO))
		}
	}
	if cfg.Scheduler.BatchMax < 0 {
		panic(fmt.Sprintf("serve: negative scheduler batch cap %d", cfg.Scheduler.BatchMax))
	}
	if cfg.Scheduler.SLO < 0 || math.IsNaN(cfg.Scheduler.SLO) {
		panic(fmt.Sprintf("serve: negative scheduler SLO %v", cfg.Scheduler.SLO))
	}
	if cfg.KV.Capacity < 0 && cfg.KV.Capacity != AutoCapacity {
		panic(fmt.Sprintf("serve: KV capacity %v must be positive, 0 (disabled) or AutoCapacity", cfg.KV.Capacity))
	}
	if cfg.KV.PageTokens < 0 {
		panic(fmt.Sprintf("serve: negative KV page size %d", cfg.KV.PageTokens))
	}
	if n := len(cfg.DevSpecs); n > 0 {
		nDev := cfg.Devices
		if nDev <= 0 {
			nDev = 1
		}
		if n != nDev {
			panic(fmt.Sprintf("serve: %d DevSpecs for a %d-device fleet", n, nDev))
		}
	}
	if cfg.Control.Interval < 0 || math.IsNaN(cfg.Control.Interval) {
		panic(fmt.Sprintf("serve: negative control interval %v", cfg.Control.Interval))
	}
	if cfg.Degrade.enabled() {
		// `!(x > 0 && ...)` also catches NaN.
		if s := cfg.Degrade.Step; s != 0 && !(s > 0 && s < 1) {
			panic(fmt.Sprintf("serve: degrade step %v must be in (0, 1) or 0 for the default", s))
		}
		if f := cfg.Degrade.Floor; f != 0 && !(f > 0 && f <= 1) {
			panic(fmt.Sprintf("serve: degrade floor %v must be in (0, 1] or 0 for the default", f))
		}
	}
}

// Run executes the serving simulation.
func Run(cfg Config) Result {
	classes := cfg.classes()
	validate(cfg, classes)
	sessions := buildSessions(cfg, classes)
	nDev := cfg.Devices
	if nDev <= 0 {
		nDev = 1
	}
	// Homogeneous fleets share one analytic simulator (hwsim.Sim is
	// stateless); heterogeneous fleets get one per device spec.
	sims := make([]*hwsim.Sim, nDev)
	if len(cfg.DevSpecs) == 0 {
		sim := hwsim.NewSim(cfg.Dev, hwsim.Llama3_8B(), cfg.Pol)
		for d := range sims {
			sims[d] = sim
		}
	} else {
		for d := range sims {
			sims[d] = hwsim.NewSim(cfg.DevSpecs[d], hwsim.Llama3_8B(), cfg.Pol)
		}
	}
	bal := cfg.Balancer
	if bal == nil {
		bal = NewRoundRobin()
	}
	bal.Reset(nDev)

	// Build the arrival schedule: sessions are independent, so each one's
	// arrival process is generated concurrently from its own derived seed
	// (parallel.SeedFor keeps session s's jitter a pure function of cfg.Seed
	// and s). The ordered fan-in and the deterministic seq renumbering below
	// make the merged schedule identical for any worker count.
	perSession := parallel.Map(cfg.Workers, len(sessions), func(s int) []event {
		sess := sessions[s]
		sc := classes[sess.class].Stream
		rng := mathx.NewRNG(sess.seed)
		interval := 1 / sc.FPS
		evs := []event{{at: sess.start, session: s, kind: evStart}}
		// Phase-shift sessions so arrivals interleave.
		phase := rng.Float64() * interval
		for t := sess.start + phase; t < sess.end; t += interval {
			evs = append(evs, event{at: t, session: s, kind: evFrame})
		}
		if sc.QueryEvery > 0 {
			for t := sess.start + sc.QueryEvery*(0.5+rng.Float64()); t < sess.end; t += sc.QueryEvery {
				evs = append(evs, event{at: t, session: s, kind: evQuery})
			}
		}
		evs = append(evs, event{at: sess.end, session: s, kind: evEnd})
		return evs
	})
	var events eventHeap
	seq := 0
	for _, evs := range perSession {
		for _, ev := range evs {
			ev.seq = seq
			seq++
			events = append(events, ev)
		}
	}
	// Controller ticks seq above every arrival (and below the scheduler's
	// step range, which starts at the heap length): at equal timestamps a
	// tick sees the arrivals that just landed and runs before batches form.
	if cfg.Control.enabled() {
		for _, t := range cfg.Control.tickTimes(cfg.Duration) {
			events = append(events, event{at: t, session: -1, kind: evControl, seq: seq})
			seq++
		}
	}
	heap.Init(&events)

	e := &engine{
		cfg: cfg, classes: classes, sims: sims, sessions: sessions,
		nDev: nDev, bal: bal,
		kv:         make([]int, len(sessions)),
		metrics:    make([]StreamMetrics, len(sessions)),
		latencies:  make([][]float64, len(sessions)),
		waits:      make([][]float64, len(sessions)),
		devs:       make([]DeviceState, nDev),
		devMetrics: make([]DeviceMetrics, nDev),
		waitSum:    make([]float64, nDev),
		waitN:      make([]int, nDev),
		slo:        make([]float64, len(classes)),
		alive:      make([]bool, len(sessions)),
		resident:   make([]bool, len(sessions)),
	}
	for s := range e.kv {
		e.kv[s] = classes[sessions[s].class].Stream.StartKV
	}
	for d := range e.devs {
		e.devs[d].Index = d
		e.devs[d].ClassSessions = make([]int, len(classes))
	}
	for c := range classes {
		v := classes[c].SLO
		if v <= 0 {
			v = cfg.Scheduler.SLO
		}
		if v <= 0 {
			v = 1 / classes[c].Stream.FPS
		}
		e.slo[c] = v
	}
	e.tel = cfg.Telemetry.Sink
	e.prof = cfg.Telemetry.Profile
	var pageAcct *kvpool.Account
	if e.prof != nil {
		// One compute-phase account across the fleet: homogeneous fleets
		// share a sim, heterogeneous ones each point at the same account,
		// and degradation-scaled copies inherit the pointer via Scaled.
		for d := range sims {
			sims[d].Phases = &e.prof.Sim
		}
		pageAcct = &e.prof.Pages
	}
	e.plane = newKVPlane(cfg, nDev, len(sessions), pageAcct)
	if e.plane != nil {
		for d := range e.devs {
			e.devs[d].CapacityPages = e.plane.pools[d].CapacityPages()
			e.devs[d].FreePages = e.devs[d].CapacityPages
		}
	}
	e.deg = newDegradePlane(cfg, len(sessions), nDev)

	if cfg.Scheduler.enabled() {
		e.runScheduled(&events)
	} else {
		e.runSerial(&events)
	}
	kv, metrics, latencies := e.kv, e.metrics, e.latencies
	devs, devMetrics, plane := e.devs, e.devMetrics, e.plane

	var busy float64
	for d := range devs {
		busy += devs[d].Busy
		devMetrics[d].Utilization = clampUtil(devs[d].Busy / cfg.Duration)
		if e.waitN[d] > 0 {
			devMetrics[d].MeanQueueWait = e.waitSum[d] / float64(e.waitN[d])
		}
	}
	if plane != nil {
		for d := range plane.pools {
			st := plane.pools[d].Stats()
			dm := &devMetrics[d]
			dm.PagesIn, dm.PagesOut = st.PagesIn, st.PagesOut
			dm.PageInTime, dm.PageOutTime = st.PageInTime, st.PageOutTime
		}
	}
	res := Result{
		PerStream: metrics, PerDevice: devMetrics, RealTime: true,
		Utilization: clampUtil(busy / (cfg.Duration * float64(nDev))),
	}
	if plane != nil {
		res.Memory = plane.memory(devMetrics)
	}
	res.Migrations = e.mig
	// Post-barrier reduction: each session's latency sort and percentiles are
	// independent, so they run across the pool; the real-time verdict folds
	// in session order afterwards.
	parallel.ForEach(cfg.Workers, len(sessions), func(s int) {
		m := &metrics[s]
		m.Class = classes[sessions[s].class].Name
		m.Device = sessions[s].device
		if window := sessions[s].end - sessions[s].start; window > 0 {
			m.AchievedFPS = float64(m.FramesServed) / window
		}
		m.FinalKV = kv[s]
		if len(latencies[s]) > 0 {
			sort.Float64s(latencies[s])
			m.P50 = mathx.Percentile(latencies[s], 50)
			m.P99 = mathx.Percentile(latencies[s], 99)
		}
		if e.deg != nil && e.deg.servedN[s] > 0 {
			n := float64(e.deg.servedN[s])
			m.MeanBudget = e.deg.budgetSum[s] / n
			m.AccuracyProxy = e.deg.retainSum[s] / n
		}
	})
	for s := range metrics {
		m := &metrics[s]
		if m.FramesArrived > 0 && float64(m.FramesServed) < 0.95*float64(m.FramesArrived) {
			res.RealTime = false
		}
	}
	res.PerClass, res.Aggregate = reduceClasses(classes, sessions, metrics, latencies, e.waits, cfg.Duration)
	return res
}

// engine bundles one Run's mutable state so the serial and scheduled event
// loops (this file / scheduler.go) share the same arrival, admission and
// accounting machinery. Both loops are single-threaded; Workers parallelism
// stays confined to schedule construction and metric reduction.
type engine struct {
	cfg     Config
	classes []StreamClass
	// sims holds each device's analytic simulator; homogeneous fleets share
	// one instance across all entries.
	sims     []*hwsim.Sim
	sessions []session
	nDev     int
	bal      Balancer

	kv        []int
	metrics   []StreamMetrics
	latencies [][]float64
	// waits collects per-session queue waits (service start minus arrival)
	// of served frames and queries; reduceClasses pools them into the class
	// queue-wait percentiles.
	waits      [][]float64
	devs       []DeviceState
	devMetrics []DeviceMetrics
	// waitSum / waitN accumulate per-device queue waits for MeanQueueWait.
	waitSum []float64
	waitN   []int
	// slo is the resolved per-class frame deadline in seconds (class SLO,
	// else SchedulerConfig.SLO, else one frame interval).
	slo   []float64
	plane *kvPlane
	// deg is the degradation plane's run state (nil with Config.Degrade
	// disabled — every pricing path then uses the unscaled sims).
	deg *degradePlane

	// Control-plane state, all idle without a controller: alive marks
	// sessions between their start and end events, resident marks sessions
	// holding a device slot (start to KV release — under the scheduler plane
	// release can outlive the end event), nDown counts out-of-service
	// devices, upScratch is the filtered-fleet scratch for placement, sched
	// points at the scheduler plane's run state (nil on the serial
	// timeline), and mig accumulates migration totals.
	alive     []bool
	resident  []bool
	nDown     int
	upScratch []DeviceState
	sched     *schedRun
	mig       MigrationMetrics

	// Telemetry-plane hooks, both nil with Config.Telemetry zero: tel
	// receives events and device stalls alongside cfg.Observer, prof
	// accumulates the run's phase attribution.
	tel  TelemetrySink
	prof *PhaseProfile
}

func (e *engine) observe(kind EventKind, at float64, s int, latency float64) {
	if !e.observing() {
		return
	}
	e.emit(Event{
		Kind: kind, Time: at, Session: s,
		Class: e.classes[e.sessions[s].class].Name, Device: e.sessions[s].device,
		Latency: latency, KV: e.kv[s],
	})
}

// trackPeak records device d's resident-KV high-water mark.
func (e *engine) trackPeak(d int) {
	if e.devs[d].ResidentKV > e.devMetrics[d].PeakResidentKV {
		e.devMetrics[d].PeakResidentKV = e.devs[d].ResidentKV
	}
}

// chargePaging occupies device d's serving timeline with page movement
// starting no earlier than now: spills and reloads ride the same PCIe
// link the device fetches KV over, so they serialise with service. kind
// classifies the occupation for the telemetry plane.
func (e *engine) chargePaging(d int, now, dur float64, kind StallKind) {
	if dur <= 0 {
		return
	}
	start := e.devs[d].Free
	if now > start {
		start = now
	}
	e.devs[d].Free = start + dur
	e.devs[d].Busy += dur
	if e.prof != nil {
		e.prof.addStall(kind, dur)
		e.prof.Charged += dur
	}
	if e.tel != nil {
		e.tel.Stall(d, start, dur, kind)
	}
}

// admit runs admission control for session s on device d: reject when
// the working set can never fit, queue when the pool is full and
// spilling is disabled, otherwise allocate (spilling cold sessions).
func (e *engine) admit(s, d int, at float64) int {
	pool := e.plane.pools[d]
	if !pool.Fits(e.kv[s]) {
		e.devMetrics[d].SessionsRejected++
		e.observe(EventSessionRejected, at, s, latencyNone)
		return sessRejected
	}
	spill, ok := pool.Admit(s, e.kv[s], at)
	if !ok {
		e.plane.queues[d] = append(e.plane.queues[d], s)
		e.devMetrics[d].SessionsQueued++
		e.observe(EventSessionQueued, at, s, latencyNone)
		return sessQueued
	}
	e.chargePaging(d, at, spill, StallPageOut)
	e.devs[d].ResidentKV += e.kv[s]
	e.trackPeak(d)
	return sessAdmitted
}

// drainQueue admits waiting sessions in FIFO order after pages freed;
// the head of the line blocks (no overtaking by smaller sessions).
func (e *engine) drainQueue(d int, at float64) {
	if e.devs[d].Down {
		// An out-of-service device admits nobody; Activate re-drains.
		return
	}
	q := e.plane.queues[d]
	i := 0
	for ; i < len(q); i++ {
		h := q[i]
		if e.plane.state[h] != sessQueued {
			continue // departed while waiting
		}
		spill, ok := e.plane.pools[d].Admit(h, e.kv[h], at)
		if !ok {
			break
		}
		e.chargePaging(d, at, spill, StallPageOut)
		e.plane.state[h] = sessAdmitted
		e.devs[d].ResidentKV += e.kv[h]
		e.trackPeak(d)
		e.observe(EventSessionAdmitted, at, h, latencyNone)
	}
	e.plane.queues[d] = q[i:]
}

// startSession handles an evStart arrival: balancer assignment, balancer
// state bookkeeping, and (with the memory-pressure plane) admission control.
func (e *engine) startSession(ev event) {
	sess := &e.sessions[ev.session]
	// Refresh the balancer's view of pool occupancy.
	e.refreshFreePages()
	var d int
	if e.nDown > 0 && e.nDown < e.nDev {
		// Some devices are out of service: place among the up ones (the
		// filtered view preserves Index). With every device down, fall
		// through to the full fleet — the session lands somewhere and its
		// frames drop until a device comes back.
		d = e.placeAvailable(ev.session, ev.at)
	} else {
		d = e.bal.Assign(ev.at, sess.class, e.devs)
		if d < 0 || d >= e.nDev {
			panic(fmt.Sprintf("serve: balancer %q returned device %d of %d", e.bal.Name(), d, e.nDev))
		}
	}
	sess.device = d
	e.alive[ev.session] = true
	e.resident[ev.session] = true
	e.devs[d].ActiveSessions++
	e.devs[d].ClassSessions[sess.class]++
	e.devMetrics[d].Sessions++
	e.observe(EventSessionStart, ev.at, ev.session, latencyNone)
	if e.plane == nil {
		e.devs[d].ResidentKV += e.kv[ev.session]
		e.trackPeak(d)
	} else {
		e.plane.state[ev.session] = e.admit(ev.session, d, ev.at)
	}
}

// releaseSession returns session s's KV to device d: the balancer-visible
// resident count drops and (with the plane) its pages free up, unblocking
// the admission queue. On the serial timeline this happens at the evEnd
// event; the scheduler plane defers it until the session's queued work has
// drained (see schedRun.resolve).
func (e *engine) releaseSession(s int, at float64) {
	d := e.sessions[s].device
	if e.plane == nil {
		e.devs[d].ResidentKV -= e.kv[s]
	} else if e.plane.state[s] == sessAdmitted {
		e.devs[d].ResidentKV -= e.kv[s]
		e.plane.pools[d].Release(s)
		e.drainQueue(d, at)
	}
	if e.plane != nil {
		e.plane.state[s] = sessGone
	}
	if e.deg != nil && e.deg.level[s] > 0 {
		e.devs[d].DegradedSessions--
	}
	e.resident[s] = false
}

// served records the queue-wait sample and deadline accounting for one
// served frame or query: wait is service start minus arrival, lat the
// completion latency. Frames completing past the class deadline count as
// deadline misses (they were still served — only DropThreshold discards
// work).
func (e *engine) served(s, d int, at, wait, lat float64, frame bool) {
	e.waits[s] = append(e.waits[s], wait)
	e.waitSum[d] += wait
	e.waitN[d]++
	if frame && lat > e.slo[e.sessions[s].class] {
		e.metrics[s].DeadlineMisses++
		e.observe(EventDeadlineMissed, at, s, lat)
	}
	e.degradeServed(s, lat, frame)
}

// runSerial is the original batch-1 timeline: every arrival is charged to
// its device in global arrival order, one hardware step per frame or query.
func (e *engine) runSerial(events *eventHeap) {
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		if ev.kind == evControl {
			e.handleControl(ev.at)
			continue
		}
		sess := &e.sessions[ev.session]
		sc := e.classes[sess.class].Stream
		switch ev.kind {
		case evStart:
			e.startSession(ev)
			continue
		case evEnd:
			d := sess.device
			e.devs[d].ActiveSessions--
			e.alive[ev.session] = false
			e.releaseSession(ev.session, ev.at)
			e.devs[d].ClassSessions[sess.class]--
			e.observe(EventSessionEnd, ev.at, ev.session, latencyNone)
			continue
		}
		m := &e.metrics[ev.session]
		dev := &e.devs[sess.device]
		if dev.Down {
			// The session could not be moved off its failed device (or every
			// device is down): its work drops until service resumes.
			if ev.kind == evFrame {
				m.FramesArrived++
				m.FramesDropped++
				e.observe(EventFrameDropped, ev.at, ev.session, latencyNone)
			} else {
				m.QueriesDropped++
				e.observe(EventQueryDropped, ev.at, ev.session, latencyNone)
			}
			continue
		}
		if e.plane != nil && e.plane.state[ev.session] != sessAdmitted {
			// Queued or rejected sessions hold no pages: their frames drop
			// and their queries go unanswered until admission.
			if ev.kind == evFrame {
				m.FramesArrived++
				m.FramesDropped++
				e.observe(EventFrameDropped, ev.at, ev.session, latencyNone)
			} else {
				m.QueriesDropped++
				e.observe(EventQueryDropped, ev.at, ev.session, latencyNone)
			}
			continue
		}
		start := dev.Free
		if ev.at > start {
			start = ev.at
		}
		if ev.kind == evFrame {
			m.FramesArrived++
			paging, ok := e.admitFrameAt(ev.session, sess.device, ev.at, start)
			if !ok {
				continue
			}
			b := e.simFor(sess.device, ev.session).FrameLatency(sc.TokensPerFrame, e.kv[ev.session], 1)
			dev.Free = start + paging + b.Total
			dev.Busy += paging + b.Total
			e.profCharge(paging + b.Total)
			e.kv[ev.session] += sc.TokensPerFrame
			dev.ResidentKV += sc.TokensPerFrame
			e.trackPeak(sess.device)
			m.FramesServed++
			e.devMetrics[sess.device].FramesServed++
			e.devMetrics[sess.device].Batches++
			e.latencies[ev.session] = append(e.latencies[ev.session], dev.Free-ev.at)
			e.observe(EventFrameServed, ev.at, ev.session, dev.Free-ev.at)
			e.served(ev.session, sess.device, ev.at, start-ev.at, dev.Free-ev.at, true)
		} else {
			e.serveQueryAt(ev.session, sess.device, ev.at, start)
		}
	}
}

// admitFrameAt applies per-frame admission for session s on device d: the
// drop threshold (measured from arrival to service start), the
// device-memory check, and — with the memory-pressure plane — reserving
// pages for the frame's new tokens and making the session fully resident
// (the returned page-movement time lands on the device timeline before the
// frame's step, like any other work). Failures drop the frame with its
// accounting. Both event loops admit frames through this one method, so the
// scheduled and serial timelines can never drift apart on the drop/OOM/page
// rules.
func (e *engine) admitFrameAt(s, d int, arrival, start float64) (paging float64, ok bool) {
	e.degradeDecide(s, d, arrival)
	sc := e.classes[e.sessions[s].class].Stream
	drop := func() {
		e.metrics[s].FramesDropped++
		e.observe(EventFrameDropped, arrival, s, latencyNone)
	}
	if e.cfg.DropThreshold > 0 && start-arrival > e.cfg.DropThreshold*(1/sc.FPS) {
		drop()
		return 0, false
	}
	if e.simFor(d, s).OOM(e.kv[s], 1) {
		drop()
		return 0, false
	}
	if e.plane != nil {
		pool := e.plane.pools[d]
		growSpill, ok := pool.Grow(s, sc.TokensPerFrame, arrival)
		if !ok {
			drop()
			return 0, false
		}
		pageIn, pageOut := pool.Touch(s, arrival)
		paging = growSpill + pageIn + pageOut
		e.profPaging(d, start, growSpill+pageOut, pageIn)
	}
	return paging, true
}

// serveQueryAt prices one query — prefill plus the full answer, KV growing
// token by token — for session s on device d: arrival is the query's arrival
// time (the pool's touch stamps and the latency baseline), start its service
// start. Both event loops charge queries through this one method, so the
// scheduled and serial timelines can never drift apart on query arithmetic.
// It returns the step's service time and whether the device was occupied
// (false when the memory-pressure plane could not allocate the KV growth —
// the query drops).
func (e *engine) serveQueryAt(s, d int, arrival, start float64) (total float64, ok bool) {
	e.degradeDecide(s, d, arrival)
	sc := e.classes[e.sessions[s].class].Stream
	m := &e.metrics[s]
	paging := 0.0
	if e.plane != nil {
		pool := e.plane.pools[d]
		growSpill, ok := pool.Grow(s, sc.QueryTokens+sc.AnswerTokens, arrival)
		if !ok {
			m.QueriesDropped++
			e.observe(EventQueryDropped, arrival, s, latencyNone)
			return 0, false
		}
		pageIn, pageOut := pool.Touch(s, arrival)
		paging = growSpill + pageIn + pageOut
		e.profPaging(d, start, growSpill+pageOut, pageIn)
	}
	dev := &e.devs[d]
	sim := e.simFor(d, s)
	q := sim.Chunk(sc.QueryTokens, e.kv[s], 1, hwsim.StageTextPhase)
	total = q.Total
	e.kv[s] += sc.QueryTokens
	for i := 0; i < sc.AnswerTokens; i++ {
		total += sim.TPOT(e.kv[s], 1).Total
		e.kv[s]++
	}
	dev.Free = start + paging + total
	dev.Busy += paging + total
	e.profCharge(paging + total)
	dev.ResidentKV += sc.QueryTokens + sc.AnswerTokens
	e.trackPeak(d)
	m.QueriesServed++
	e.devMetrics[d].QueriesServed++
	e.devMetrics[d].Batches++
	e.observe(EventQueryServed, arrival, s, dev.Free-arrival)
	e.served(s, d, arrival, start-arrival, dev.Free-arrival, false)
	return total, true
}

func clampUtil(u float64) float64 {
	if u > 1 {
		return 1
	}
	return u
}

// reduceClasses pools per-session metrics into per-class and aggregate
// summaries. Latency and queue-wait percentiles are computed over the pooled
// (re-sorted) samples of each group, so they reflect frames, not sessions.
func reduceClasses(classes []StreamClass, sessions []session, metrics []StreamMetrics, latencies, waits [][]float64, duration float64) ([]ClassMetrics, ClassMetrics) {
	perClass := make([]ClassMetrics, len(classes))
	pooled := make([][]float64, len(classes))
	pooledWait := make([][]float64, len(classes))
	for c := range classes {
		perClass[c].Class = classes[c].Name
	}
	agg := ClassMetrics{Class: "all"}
	var aggPool, aggWait []float64
	var aggFPS float64
	fps := make([]float64, len(classes))
	// Served-work-weighted budget/proxy accumulators per class plus the
	// aggregate (index len(classes)); weight is served frames + queries, so a
	// session's budget only counts while it actually served at it.
	budgetW := make([]float64, len(classes)+1)
	budgetSum := make([]float64, len(classes)+1)
	proxySum := make([]float64, len(classes)+1)
	for s, m := range metrics {
		c := sessions[s].class
		cm := &perClass[c]
		cm.Sessions++
		cm.FramesArrived += m.FramesArrived
		cm.FramesServed += m.FramesServed
		cm.FramesDropped += m.FramesDropped
		cm.QueriesServed += m.QueriesServed
		cm.QueriesDropped += m.QueriesDropped
		cm.DeadlineMisses += m.DeadlineMisses
		cm.Degradations += m.Degradations
		cm.Restorations += m.Restorations
		if w := float64(m.FramesServed + m.QueriesServed); m.MeanBudget > 0 && w > 0 {
			for _, i := range [2]int{c, len(classes)} {
				budgetW[i] += w
				budgetSum[i] += m.MeanBudget * w
				proxySum[i] += m.AccuracyProxy * w
			}
		}
		fps[c] += m.AchievedFPS
		if m.FramesArrived > 0 && float64(m.FramesServed) >= 0.95*float64(m.FramesArrived) {
			cm.RealTimeSessions++
		}
		pooled[c] = append(pooled[c], latencies[s]...)
		pooledWait[c] = append(pooledWait[c], waits[s]...)
		aggFPS += m.AchievedFPS
		aggPool = append(aggPool, latencies[s]...)
		aggWait = append(aggWait, waits[s]...)
	}
	finish := func(cm *ClassMetrics, pool, wait []float64, fpsSum float64) {
		if cm.Sessions > 0 {
			cm.MeanFPS = fpsSum / float64(cm.Sessions)
		}
		if cm.FramesArrived > 0 {
			cm.DropRate = float64(cm.FramesDropped) / float64(cm.FramesArrived)
			cm.SLOAttained = float64(cm.FramesServed-cm.DeadlineMisses) / float64(cm.FramesArrived)
		}
		if duration > 0 {
			cm.Goodput = float64(cm.FramesServed-cm.DeadlineMisses) / duration
		}
		if len(pool) > 0 {
			sort.Float64s(pool)
			cm.P50 = mathx.Percentile(pool, 50)
			cm.P99 = mathx.Percentile(pool, 99)
		}
		if len(wait) > 0 {
			sort.Float64s(wait)
			cm.QueueP50 = mathx.Percentile(wait, 50)
			cm.QueueP99 = mathx.Percentile(wait, 99)
		}
	}
	for c := range perClass {
		finish(&perClass[c], pooled[c], pooledWait[c], fps[c])
		if budgetW[c] > 0 {
			perClass[c].MeanBudget = budgetSum[c] / budgetW[c]
			perClass[c].AccuracyProxy = proxySum[c] / budgetW[c]
		}
		agg.Sessions += perClass[c].Sessions
		agg.FramesArrived += perClass[c].FramesArrived
		agg.FramesServed += perClass[c].FramesServed
		agg.FramesDropped += perClass[c].FramesDropped
		agg.QueriesServed += perClass[c].QueriesServed
		agg.QueriesDropped += perClass[c].QueriesDropped
		agg.DeadlineMisses += perClass[c].DeadlineMisses
		agg.RealTimeSessions += perClass[c].RealTimeSessions
		agg.Degradations += perClass[c].Degradations
		agg.Restorations += perClass[c].Restorations
	}
	finish(&agg, aggPool, aggWait, aggFPS)
	if w := budgetW[len(classes)]; w > 0 {
		agg.MeanBudget = budgetSum[len(classes)] / w
		agg.AccuracyProxy = proxySum[len(classes)] / w
	}
	return perClass, agg
}

// MaxRealTimeStreams bisects the largest initial stream count (up to limit)
// the system serves in real time. The bisection relies on the real-time
// verdict being monotone in the stream count, which holds because initial
// sessions' schedules are pure functions of (Seed, index) and the churn
// population is seeded by arrival ordinal in its own domain: adding an
// initial session perturbs nothing else, it only adds device load.
func MaxRealTimeStreams(cfg Config, limit int) int {
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		c := cfg
		c.Streams = mid
		if Run(c).RealTime {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
