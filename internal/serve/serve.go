// Package serve simulates multi-stream streaming-video-LLM serving under the
// Scenario API: a fleet of devices serves concurrent video sessions drawn
// from a weighted mix of stream classes, frames arrive in real time, queries
// interleave, whole sessions arrive and depart (open-loop churn), and a
// pluggable balancer places each session on a device. The scheduler
// processes work in arrival order with optional frame dropping under
// backlog. It quantifies the paper's closing claim — "clear potential for
// scalable deployment in large-scale server environments" — by measuring how
// many concurrent real-time streams each system sustains (the `scale` and
// `fleet` experiments).
//
// A Config with no Classes, no Churn and at most one device reduces exactly
// to the original single-device, homogeneous-stream simulation: the golden
// tests in internal/experiments pin that path byte-for-byte.
package serve

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"vrex/internal/hwsim"
	"vrex/internal/mathx"
	"vrex/internal/parallel"
)

// StreamConfig describes one video session's arrival process.
type StreamConfig struct {
	// FPS is the incoming frame rate.
	FPS float64
	// TokensPerFrame is the LLM tokens per frame.
	TokensPerFrame int
	// QueryEvery is the mean seconds between user queries (0 disables).
	QueryEvery float64
	// QueryTokens / AnswerTokens shape each interaction.
	QueryTokens  int
	AnswerTokens int
	// StartKV is the session's pre-existing KV length (e.g. mid-session).
	StartKV int
}

// DefaultStreamConfig matches the paper's working scenario at 2 FPS
// streaming (VideoLLM-Online's operating point).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		FPS:            2,
		TokensPerFrame: 10,
		QueryEvery:     15,
		QueryTokens:    25,
		AnswerTokens:   39,
		StartKV:        1000,
	}
}

// StreamClass is one component of a heterogeneous stream mix: a named
// session shape with a selection weight. Sessions draw their class with
// probability Weight / sum(Weights).
type StreamClass struct {
	Name   string
	Weight float64
	Stream StreamConfig
}

// ChurnConfig describes open-loop session churn: whole sessions arriving as
// a Poisson process and departing after exponentially distributed lifetimes.
// The zero value disables churn (the closed population of Config.Streams
// sessions runs for the whole duration).
type ChurnConfig struct {
	// ArrivalRate is the mean session arrivals per second (0 disables).
	ArrivalRate float64
	// MeanLifetime is the mean session lifetime in seconds; 0 means sessions
	// stay for the rest of the run.
	MeanLifetime float64
}

// Config describes a serving run.
type Config struct {
	Dev hwsim.DeviceSpec
	Pol hwsim.PolicyModel
	// Streams is the number of sessions active at t=0.
	Streams int
	// Duration is the simulated wall-clock seconds.
	Duration float64
	// Stream shapes every session when Classes is empty (the original
	// homogeneous API, kept for back-compat).
	Stream StreamConfig
	// Classes, when non-empty, is the weighted mix sessions draw their shape
	// from; it takes precedence over Stream.
	Classes []StreamClass
	// Churn adds open-loop session arrivals/departures.
	Churn ChurnConfig
	// KV enables the device KV memory-pressure plane: paged per-device KV
	// budgets, spill-to-host/NVMe and memory-aware admission (see KVConfig).
	// The zero value disables it and Run reduces exactly to the unpooled
	// simulation.
	KV KVConfig
	// Devices is the fleet size; 0 or 1 simulates a single device.
	Devices int
	// Balancer places each arriving session on a device; nil defaults to
	// round-robin. Run calls Reset before use, so one Balancer value can be
	// reused across runs.
	Balancer Balancer
	// Observer, when non-nil, receives every scheduling event in
	// deterministic order (see Event).
	Observer Observer
	// DropThreshold: a frame still queued after this many frame intervals
	// is dropped (<= 0 disables dropping).
	DropThreshold float64
	// Seed jitters arrivals. Each session derives an independent sub-seed
	// from it, so session s's arrival process never depends on how many other
	// sessions exist or on scheduling order.
	Seed uint64
	// Workers advances independent sessions concurrently between the
	// scheduler barriers (schedule construction before the device loop,
	// per-session metric reduction after it): 0 uses GOMAXPROCS, 1 is
	// sequential. The device loop itself is the barrier — devices serve
	// arrivals in global order — and results are identical for any worker
	// count.
	Workers int
}

// classes returns the effective mix: Classes, or the legacy single Stream.
func (cfg *Config) classes() []StreamClass {
	if len(cfg.Classes) > 0 {
		return cfg.Classes
	}
	return []StreamClass{{Name: "default", Weight: 1, Stream: cfg.Stream}}
}

// StreamMetrics summarises one session.
type StreamMetrics struct {
	// Class names the session's stream class; Device is the fleet member the
	// balancer placed it on.
	Class  string
	Device int

	FramesArrived int
	FramesServed  int
	FramesDropped int
	QueriesServed int
	// QueriesDropped counts queries lost to the memory-pressure plane (the
	// session was unadmitted, or its KV growth could not be allocated);
	// always zero with the plane disabled.
	QueriesDropped int
	// AchievedFPS counts served frames over the session's presence window
	// (the whole run for non-churned sessions).
	AchievedFPS float64
	// P50 / P99 are frame completion latencies (queueing + service).
	P50, P99 float64
	// FinalKV is the session's KV length at the end.
	FinalKV int
}

// ClassMetrics aggregates the sessions of one stream class (or, for
// Result.Aggregate, every session).
type ClassMetrics struct {
	Class    string
	Sessions int

	FramesArrived int
	FramesServed  int
	FramesDropped int
	QueriesServed int
	// QueriesDropped counts queries lost to the memory-pressure plane.
	QueriesDropped int
	// MeanFPS is the mean per-session achieved FPS (each session's rate over
	// its own presence window).
	MeanFPS float64
	// P50 / P99 are percentiles of the pooled frame completion latencies.
	P50, P99 float64
	// DropRate is dropped / arrived frames (0 when nothing arrived).
	DropRate float64
	// RealTimeSessions counts sessions that served >= 95% of their frames.
	RealTimeSessions int
}

// DeviceMetrics summarises one fleet member.
type DeviceMetrics struct {
	// Sessions counts sessions the balancer assigned to this device.
	Sessions      int
	FramesServed  int
	QueriesServed int
	// Utilization is this device's busy time / duration (including any
	// page-movement time the memory-pressure plane charged).
	Utilization float64
	// PeakResidentKV is the high-water mark of DeviceState.ResidentKV across
	// the run: the KV owned by the device's admitted sessions, counting any
	// pages spilled to the backing store (so under spilling it can exceed
	// the device's physical pool). Tracked whether or not the
	// memory-pressure plane is enabled.
	PeakResidentKV int
	// Memory-pressure plane counters, all zero when Config.KV is disabled:
	// pages moved between device memory and the backing store, the seconds
	// charged for that movement, and admission-control outcomes.
	PagesIn, PagesOut                int
	PageInTime, PageOutTime          float64
	SessionsQueued, SessionsRejected int
}

// Result is a serving run's outcome.
type Result struct {
	PerStream []StreamMetrics
	// PerClass aggregates sessions by stream class, in mix order; Aggregate
	// pools every session.
	PerClass  []ClassMetrics
	Aggregate ClassMetrics
	// PerDevice summarises each fleet member.
	PerDevice []DeviceMetrics
	// Memory aggregates the KV memory-pressure plane across the fleet
	// (zero when Config.KV is disabled).
	Memory MemoryMetrics
	// RealTime reports whether every stream served >= 95% of its frames.
	RealTime bool
	// Utilization is fleet busy time / (duration * devices).
	Utilization float64
}

// event kinds, in the order they sort at equal timestamps within a session.
const (
	evStart = iota // session joins: balancer assignment
	evFrame        // video frame arrival
	evQuery        // user query arrival
	evEnd          // session leaves: balancer state release
)

// event is one arrival.
type event struct {
	at      float64
	session int
	kind    int
	seq     int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Derived-seed domains: each randomness consumer hashes its own salt into
// the config seed so the per-session arrival jitter (salt 0) stays a pure
// function of (Seed, session) regardless of churn or mix settings — adding a
// class or enabling churn never perturbs an existing session's schedule.
// Churned sessions draw everything (jitter, class, lifetime) from the
// churn-session domain keyed by their arrival ordinal, NOT their session
// index, so changing Config.Streams never re-randomises the churn
// population — the monotonicity MaxRealTimeStreams depends on.
const (
	classSeedSalt    = 0x00C1A55E5
	churnSeedSalt    = 0x0C4312A15
	lifeSeedSalt     = 0x011FE7113
	churnSessionSalt = 0x05E551035
)

// expDraw samples an exponential with the given mean.
func expDraw(rng *mathx.RNG, mean float64) float64 {
	return -mean * math.Log(1-rng.Float64())
}

// session is one video session's static plan: its class, presence window,
// jitter seed and (once assigned) device.
type session struct {
	class      int
	start, end float64
	device     int
	// seed drives the session's arrival jitter; a pure function of
	// (Config.Seed, index) for initial sessions and of (Config.Seed, churn
	// ordinal) for churned ones.
	seed uint64
}

// buildSessions lays out the run's session population: Streams sessions at
// t=0 plus Poisson arrivals, classes drawn from the weighted mix, lifetimes
// truncating the presence window. Everything is a pure function of cfg, and
// churned sessions are seeded by arrival ordinal in their own domain, so
// the churn population is invariant under changes to cfg.Streams.
func buildSessions(cfg Config, classes []StreamClass) []session {
	var totalWeight float64
	for _, c := range classes {
		totalWeight += c.Weight
	}
	// pickClass and endOf key their draws on a domain seed (the initial or
	// churn session domain) plus the session's ordinal within that domain.
	pickClass := func(domain uint64, i int) int {
		if len(classes) == 1 {
			return 0
		}
		x := mathx.NewRNG(parallel.SeedFor(domain^classSeedSalt, i)).Float64() * totalWeight
		for c := range classes {
			x -= classes[c].Weight
			if x < 0 {
				return c
			}
		}
		return len(classes) - 1
	}
	endOf := func(domain uint64, i int, start float64) float64 {
		if cfg.Churn.MeanLifetime <= 0 {
			return cfg.Duration
		}
		end := start + expDraw(mathx.NewRNG(parallel.SeedFor(domain^lifeSeedSalt, i)), cfg.Churn.MeanLifetime)
		if end > cfg.Duration {
			end = cfg.Duration
		}
		return end
	}

	sessions := make([]session, 0, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		sessions = append(sessions, session{
			class: pickClass(cfg.Seed, s), end: endOf(cfg.Seed, s, 0),
			device: -1, seed: parallel.SeedFor(cfg.Seed, s),
		})
	}
	if cfg.Churn.ArrivalRate > 0 {
		domain := cfg.Seed ^ churnSessionSalt
		rng := mathx.NewRNG(parallel.SeedFor(cfg.Seed^churnSeedSalt, 0))
		i := 0
		for t := expDraw(rng, 1/cfg.Churn.ArrivalRate); t < cfg.Duration; t += expDraw(rng, 1/cfg.Churn.ArrivalRate) {
			sessions = append(sessions, session{
				class: pickClass(domain, i), start: t, end: endOf(domain, i, t),
				device: -1, seed: parallel.SeedFor(domain, i),
			})
			i++
		}
	}
	return sessions
}

func validate(cfg Config, classes []StreamClass) {
	if cfg.Duration <= 0 || (cfg.Streams <= 0 && cfg.Churn.ArrivalRate <= 0) {
		panic(fmt.Sprintf("serve: invalid config streams=%d duration=%v arrival_rate=%v",
			cfg.Streams, cfg.Duration, cfg.Churn.ArrivalRate))
	}
	if cfg.Streams < 0 || cfg.Churn.ArrivalRate < 0 || cfg.Churn.MeanLifetime < 0 || cfg.Devices < 0 {
		panic(fmt.Sprintf("serve: negative config field: %+v", cfg))
	}
	for _, c := range classes {
		if c.Stream.FPS <= 0 || c.Weight <= 0 {
			panic(fmt.Sprintf("serve: class %q needs positive FPS and weight", c.Name))
		}
	}
	if cfg.KV.Capacity < 0 && cfg.KV.Capacity != AutoCapacity {
		panic(fmt.Sprintf("serve: KV capacity %v must be positive, 0 (disabled) or AutoCapacity", cfg.KV.Capacity))
	}
	if cfg.KV.PageTokens < 0 {
		panic(fmt.Sprintf("serve: negative KV page size %d", cfg.KV.PageTokens))
	}
}

// Run executes the serving simulation.
func Run(cfg Config) Result {
	classes := cfg.classes()
	validate(cfg, classes)
	sim := hwsim.NewSim(cfg.Dev, hwsim.Llama3_8B(), cfg.Pol)
	sessions := buildSessions(cfg, classes)
	nDev := cfg.Devices
	if nDev <= 0 {
		nDev = 1
	}
	bal := cfg.Balancer
	if bal == nil {
		bal = NewRoundRobin()
	}
	bal.Reset(nDev)

	// Build the arrival schedule: sessions are independent, so each one's
	// arrival process is generated concurrently from its own derived seed
	// (parallel.SeedFor keeps session s's jitter a pure function of cfg.Seed
	// and s). The ordered fan-in and the deterministic seq renumbering below
	// make the merged schedule identical for any worker count.
	perSession := parallel.Map(cfg.Workers, len(sessions), func(s int) []event {
		sess := sessions[s]
		sc := classes[sess.class].Stream
		rng := mathx.NewRNG(sess.seed)
		interval := 1 / sc.FPS
		evs := []event{{at: sess.start, session: s, kind: evStart}}
		// Phase-shift sessions so arrivals interleave.
		phase := rng.Float64() * interval
		for t := sess.start + phase; t < sess.end; t += interval {
			evs = append(evs, event{at: t, session: s, kind: evFrame})
		}
		if sc.QueryEvery > 0 {
			for t := sess.start + sc.QueryEvery*(0.5+rng.Float64()); t < sess.end; t += sc.QueryEvery {
				evs = append(evs, event{at: t, session: s, kind: evQuery})
			}
		}
		evs = append(evs, event{at: sess.end, session: s, kind: evEnd})
		return evs
	})
	var events eventHeap
	seq := 0
	for _, evs := range perSession {
		for _, ev := range evs {
			ev.seq = seq
			seq++
			events = append(events, ev)
		}
	}
	heap.Init(&events)

	kv := make([]int, len(sessions))
	for s := range kv {
		kv[s] = classes[sessions[s].class].Stream.StartKV
	}
	metrics := make([]StreamMetrics, len(sessions))
	latencies := make([][]float64, len(sessions))
	devs := make([]DeviceState, nDev)
	devMetrics := make([]DeviceMetrics, nDev)
	for d := range devs {
		devs[d].Index = d
		devs[d].ClassSessions = make([]int, len(classes))
	}
	plane := newKVPlane(cfg, nDev, len(sessions))
	if plane != nil {
		for d := range devs {
			devs[d].CapacityPages = plane.pools[d].CapacityPages()
			devs[d].FreePages = devs[d].CapacityPages
		}
	}
	observe := func(kind EventKind, at float64, s int, latency float64) {
		if cfg.Observer == nil {
			return
		}
		cfg.Observer.Observe(Event{
			Kind: kind, Time: at, Session: s,
			Class: classes[sessions[s].class].Name, Device: sessions[s].device,
			Latency: latency, KV: kv[s],
		})
	}
	// trackPeak records device d's resident-KV high-water mark.
	trackPeak := func(d int) {
		if devs[d].ResidentKV > devMetrics[d].PeakResidentKV {
			devMetrics[d].PeakResidentKV = devs[d].ResidentKV
		}
	}
	// chargePaging occupies device d's serving timeline with page movement
	// starting no earlier than now: spills and reloads ride the same PCIe
	// link the device fetches KV over, so they serialise with service.
	chargePaging := func(d int, now, dur float64) {
		if dur <= 0 {
			return
		}
		start := devs[d].Free
		if now > start {
			start = now
		}
		devs[d].Free = start + dur
		devs[d].Busy += dur
	}
	// admit runs admission control for session s on device d: reject when
	// the working set can never fit, queue when the pool is full and
	// spilling is disabled, otherwise allocate (spilling cold sessions).
	admit := func(s, d int, at float64) int {
		pool := plane.pools[d]
		if !pool.Fits(kv[s]) {
			devMetrics[d].SessionsRejected++
			observe(EventSessionRejected, at, s, 0)
			return sessRejected
		}
		spill, ok := pool.Admit(s, kv[s], at)
		if !ok {
			plane.queues[d] = append(plane.queues[d], s)
			devMetrics[d].SessionsQueued++
			observe(EventSessionQueued, at, s, 0)
			return sessQueued
		}
		chargePaging(d, at, spill)
		devs[d].ResidentKV += kv[s]
		trackPeak(d)
		return sessAdmitted
	}
	// drainQueue admits waiting sessions in FIFO order after pages freed;
	// the head of the line blocks (no overtaking by smaller sessions).
	drainQueue := func(d int, at float64) {
		q := plane.queues[d]
		i := 0
		for ; i < len(q); i++ {
			h := q[i]
			if plane.state[h] != sessQueued {
				continue // departed while waiting
			}
			spill, ok := plane.pools[d].Admit(h, kv[h], at)
			if !ok {
				break
			}
			chargePaging(d, at, spill)
			plane.state[h] = sessAdmitted
			devs[d].ResidentKV += kv[h]
			trackPeak(d)
			observe(EventSessionAdmitted, at, h, 0)
		}
		plane.queues[d] = q[i:]
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		sess := &sessions[ev.session]
		sc := classes[sess.class].Stream
		switch ev.kind {
		case evStart:
			if plane != nil {
				// Refresh the balancer's view of pool occupancy.
				for i := range devs {
					devs[i].FreePages = plane.pools[i].FreePages()
				}
			}
			d := bal.Assign(ev.at, sess.class, devs)
			if d < 0 || d >= nDev {
				panic(fmt.Sprintf("serve: balancer %q returned device %d of %d", bal.Name(), d, nDev))
			}
			sess.device = d
			devs[d].ActiveSessions++
			devs[d].ClassSessions[sess.class]++
			devMetrics[d].Sessions++
			observe(EventSessionStart, ev.at, ev.session, 0)
			if plane == nil {
				devs[d].ResidentKV += kv[ev.session]
				trackPeak(d)
			} else {
				plane.state[ev.session] = admit(ev.session, d, ev.at)
			}
			continue
		case evEnd:
			d := sess.device
			devs[d].ActiveSessions--
			if plane == nil {
				devs[d].ResidentKV -= kv[ev.session]
			} else if plane.state[ev.session] == sessAdmitted {
				devs[d].ResidentKV -= kv[ev.session]
				plane.pools[d].Release(ev.session)
				drainQueue(d, ev.at)
			}
			if plane != nil {
				plane.state[ev.session] = sessGone
			}
			devs[d].ClassSessions[sess.class]--
			observe(EventSessionEnd, ev.at, ev.session, 0)
			continue
		}
		m := &metrics[ev.session]
		dev := &devs[sess.device]
		if plane != nil && plane.state[ev.session] != sessAdmitted {
			// Queued or rejected sessions hold no pages: their frames drop
			// and their queries go unanswered until admission.
			if ev.kind == evFrame {
				m.FramesArrived++
				m.FramesDropped++
				observe(EventFrameDropped, ev.at, ev.session, 0)
			} else {
				m.QueriesDropped++
				observe(EventQueryDropped, ev.at, ev.session, 0)
			}
			continue
		}
		start := dev.Free
		if ev.at > start {
			start = ev.at
		}
		if ev.kind == evFrame {
			m.FramesArrived++
			if cfg.DropThreshold > 0 && start-ev.at > cfg.DropThreshold*(1/sc.FPS) {
				m.FramesDropped++
				observe(EventFrameDropped, ev.at, ev.session, 0)
				continue
			}
			b := sim.FrameLatency(sc.TokensPerFrame, kv[ev.session], 1)
			if b.OOM {
				m.FramesDropped++
				observe(EventFrameDropped, ev.at, ev.session, 0)
				continue
			}
			paging := 0.0
			if plane != nil {
				// Reserve pages for the frame's new tokens, then make the
				// session fully resident; the movement time lands on the
				// device's serving timeline like any other work.
				pool := plane.pools[sess.device]
				growSpill, ok := pool.Grow(ev.session, sc.TokensPerFrame, ev.at)
				if !ok {
					m.FramesDropped++
					observe(EventFrameDropped, ev.at, ev.session, 0)
					continue
				}
				pageIn, pageOut := pool.Touch(ev.session, ev.at)
				paging = growSpill + pageIn + pageOut
			}
			dev.Free = start + paging + b.Total
			dev.Busy += paging + b.Total
			kv[ev.session] += sc.TokensPerFrame
			dev.ResidentKV += sc.TokensPerFrame
			trackPeak(sess.device)
			m.FramesServed++
			devMetrics[sess.device].FramesServed++
			latencies[ev.session] = append(latencies[ev.session], dev.Free-ev.at)
			observe(EventFrameServed, ev.at, ev.session, dev.Free-ev.at)
		} else {
			paging := 0.0
			if plane != nil {
				pool := plane.pools[sess.device]
				growSpill, ok := pool.Grow(ev.session, sc.QueryTokens+sc.AnswerTokens, ev.at)
				if !ok {
					m.QueriesDropped++
					observe(EventQueryDropped, ev.at, ev.session, 0)
					continue
				}
				pageIn, pageOut := pool.Touch(ev.session, ev.at)
				paging = growSpill + pageIn + pageOut
			}
			q := sim.Chunk(sc.QueryTokens, kv[ev.session], 1, hwsim.StageTextPhase)
			total := q.Total
			kv[ev.session] += sc.QueryTokens
			for i := 0; i < sc.AnswerTokens; i++ {
				total += sim.TPOT(kv[ev.session], 1).Total
				kv[ev.session]++
			}
			dev.Free = start + paging + total
			dev.Busy += paging + total
			dev.ResidentKV += sc.QueryTokens + sc.AnswerTokens
			trackPeak(sess.device)
			m.QueriesServed++
			devMetrics[sess.device].QueriesServed++
			observe(EventQueryServed, ev.at, ev.session, dev.Free-ev.at)
		}
	}

	var busy float64
	for d := range devs {
		busy += devs[d].Busy
		devMetrics[d].Utilization = clampUtil(devs[d].Busy / cfg.Duration)
	}
	if plane != nil {
		for d := range plane.pools {
			st := plane.pools[d].Stats()
			dm := &devMetrics[d]
			dm.PagesIn, dm.PagesOut = st.PagesIn, st.PagesOut
			dm.PageInTime, dm.PageOutTime = st.PageInTime, st.PageOutTime
		}
	}
	res := Result{
		PerStream: metrics, PerDevice: devMetrics, RealTime: true,
		Utilization: clampUtil(busy / (cfg.Duration * float64(nDev))),
	}
	if plane != nil {
		res.Memory = plane.memory(devMetrics)
	}
	// Post-barrier reduction: each session's latency sort and percentiles are
	// independent, so they run across the pool; the real-time verdict folds
	// in session order afterwards.
	parallel.ForEach(cfg.Workers, len(sessions), func(s int) {
		m := &metrics[s]
		m.Class = classes[sessions[s].class].Name
		m.Device = sessions[s].device
		if window := sessions[s].end - sessions[s].start; window > 0 {
			m.AchievedFPS = float64(m.FramesServed) / window
		}
		m.FinalKV = kv[s]
		if len(latencies[s]) > 0 {
			sort.Float64s(latencies[s])
			m.P50 = mathx.Percentile(latencies[s], 50)
			m.P99 = mathx.Percentile(latencies[s], 99)
		}
	})
	for s := range metrics {
		m := &metrics[s]
		if m.FramesArrived > 0 && float64(m.FramesServed) < 0.95*float64(m.FramesArrived) {
			res.RealTime = false
		}
	}
	res.PerClass, res.Aggregate = reduceClasses(classes, sessions, metrics, latencies)
	return res
}

func clampUtil(u float64) float64 {
	if u > 1 {
		return 1
	}
	return u
}

// reduceClasses pools per-session metrics into per-class and aggregate
// summaries. Latency percentiles are computed over the pooled (re-sorted)
// latency samples of each group, so they reflect frames, not sessions.
func reduceClasses(classes []StreamClass, sessions []session, metrics []StreamMetrics, latencies [][]float64) ([]ClassMetrics, ClassMetrics) {
	perClass := make([]ClassMetrics, len(classes))
	pooled := make([][]float64, len(classes))
	for c := range classes {
		perClass[c].Class = classes[c].Name
	}
	agg := ClassMetrics{Class: "all"}
	var aggPool []float64
	var aggFPS float64
	fps := make([]float64, len(classes))
	for s, m := range metrics {
		c := sessions[s].class
		cm := &perClass[c]
		cm.Sessions++
		cm.FramesArrived += m.FramesArrived
		cm.FramesServed += m.FramesServed
		cm.FramesDropped += m.FramesDropped
		cm.QueriesServed += m.QueriesServed
		cm.QueriesDropped += m.QueriesDropped
		fps[c] += m.AchievedFPS
		if m.FramesArrived > 0 && float64(m.FramesServed) >= 0.95*float64(m.FramesArrived) {
			cm.RealTimeSessions++
		}
		pooled[c] = append(pooled[c], latencies[s]...)
		aggFPS += m.AchievedFPS
		aggPool = append(aggPool, latencies[s]...)
	}
	finish := func(cm *ClassMetrics, pool []float64, fpsSum float64) {
		if cm.Sessions > 0 {
			cm.MeanFPS = fpsSum / float64(cm.Sessions)
		}
		if cm.FramesArrived > 0 {
			cm.DropRate = float64(cm.FramesDropped) / float64(cm.FramesArrived)
		}
		if len(pool) > 0 {
			sort.Float64s(pool)
			cm.P50 = mathx.Percentile(pool, 50)
			cm.P99 = mathx.Percentile(pool, 99)
		}
	}
	for c := range perClass {
		finish(&perClass[c], pooled[c], fps[c])
		agg.Sessions += perClass[c].Sessions
		agg.FramesArrived += perClass[c].FramesArrived
		agg.FramesServed += perClass[c].FramesServed
		agg.FramesDropped += perClass[c].FramesDropped
		agg.QueriesServed += perClass[c].QueriesServed
		agg.QueriesDropped += perClass[c].QueriesDropped
		agg.RealTimeSessions += perClass[c].RealTimeSessions
	}
	finish(&agg, aggPool, aggFPS)
	return perClass, agg
}

// MaxRealTimeStreams bisects the largest initial stream count (up to limit)
// the system serves in real time. The bisection relies on the real-time
// verdict being monotone in the stream count, which holds because initial
// sessions' schedules are pure functions of (Seed, index) and the churn
// population is seeded by arrival ordinal in its own domain: adding an
// initial session perturbs nothing else, it only adds device load.
func MaxRealTimeStreams(cfg Config, limit int) int {
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		c := cfg
		c.Streams = mid
		if Run(c).RealTime {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
