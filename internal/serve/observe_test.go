package serve

import "testing"

// TestEventKindStringExhaustive pins that every declared EventKind has a
// name: a future kind added without a String() case would export as
// "unknown" in traces and metrics, silently unlabeled.
func TestEventKindStringExhaustive(t *testing.T) {
	seen := make(map[string]EventKind, numEventKinds)
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("EventKind(%d) has no String() case", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("EventKind(%d) and EventKind(%d) share the name %q", int(prev), int(k), name)
		}
		seen[name] = k
	}
	if EventKind(numEventKinds).String() != "unknown" {
		t.Fatal("out-of-range kinds must read unknown")
	}
}

// TestStallKindStringExhaustive is the same guard for the telemetry plane's
// stall classification.
func TestStallKindStringExhaustive(t *testing.T) {
	seen := make(map[string]StallKind, numStallKinds)
	for k := StallKind(0); k < numStallKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("StallKind(%d) has no String() case", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("StallKind(%d) and StallKind(%d) share the name %q", int(prev), int(k), name)
		}
		seen[name] = k
	}
	if StallKind(numStallKinds).String() != "unknown" {
		t.Fatal("out-of-range kinds must read unknown")
	}
}
