package serve

import "testing"

// Switch exhaustiveness over EventKind and StallKind is enforced statically
// now: the `exhaustive` analyzer in internal/analysis (run by `make vet` and
// the CI vet job via cmd/vrex-vet) rejects any switch over a *Kind enum that
// neither covers every constant nor opts out with an explicit default. The
// former runtime sentinel loops that re-derived coverage from numEventKinds /
// numStallKinds are gone; what remains below is the one property the static
// check cannot see through String()'s default clause — that the name tables
// are collision-free and out-of-range values read "unknown".

// TestEventKindNamesDistinct pins the EventKind label table: unique names
// per kind, "unknown" beyond the sentinel.
func TestEventKindNamesDistinct(t *testing.T) {
	seen := make(map[string]EventKind, numEventKinds)
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("EventKind(%d) has no String() case", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("EventKind(%d) and EventKind(%d) share the name %q", int(prev), int(k), name)
		}
		seen[name] = k
	}
	if EventKind(numEventKinds).String() != "unknown" {
		t.Fatal("out-of-range kinds must read unknown")
	}
}

// TestStallKindNamesDistinct is the same guard for the telemetry plane's
// stall classification.
func TestStallKindNamesDistinct(t *testing.T) {
	seen := make(map[string]StallKind, numStallKinds)
	for k := StallKind(0); k < numStallKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("StallKind(%d) has no String() case", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("StallKind(%d) and StallKind(%d) share the name %q", int(prev), int(k), name)
		}
		seen[name] = k
	}
	if StallKind(numStallKinds).String() != "unknown" {
		t.Fatal("out-of-range kinds must read unknown")
	}
}
