package serve

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"vrex/internal/degrade"
	"vrex/internal/hwsim"
)

// degradeConfig builds a DegradeConfig around a policyspec string, failing
// the test on parse errors.
func degradeConfig(t *testing.T, spec string) DegradeConfig {
	t.Helper()
	p, err := degrade.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		return DegradeConfig{}
	}
	return DegradeConfig{Policy: p.Controller, Step: p.Step, Floor: p.Floor}
}

// pulseCtl is a deterministic test controller: each session's first `down`
// decisions demand the floor, everything after demands full budget — so a run
// exercises both degradation and restoration without depending on pressure.
type pulseCtl struct {
	down  int
	calls map[int]int
}

func (c *pulseCtl) Name() string { return "pulse" }

func (c *pulseCtl) Target(sig degrade.Signals) float64 {
	c.calls[sig.Session]++
	if c.calls[sig.Session] <= c.down {
		return 0
	}
	return 1
}

// stripDegrade zeroes the degradation-plane-only fields so an enabled-but-
// never-firing run can be compared against a disabled one.
func stripDegrade(res Result) Result {
	for s := range res.PerStream {
		res.PerStream[s].MeanBudget = 0
		res.PerStream[s].AccuracyProxy = 0
	}
	for c := range res.PerClass {
		res.PerClass[c].MeanBudget = 0
		res.PerClass[c].AccuracyProxy = 0
	}
	res.Aggregate.MeanBudget = 0
	res.Aggregate.AccuracyProxy = 0
	return res
}

// TestDegradeNeverFiringMatchesDisabled pins the reduction property beyond
// the golden tests: a plane whose controller always demands full budget
// (static(budget=1)) changes no serving metric — it only reports MeanBudget
// and AccuracyProxy at 1.
func TestDegradeNeverFiringMatchesDisabled(t *testing.T) {
	base := mixConfig(8, 2)
	enabled := base
	enabled.Degrade = degradeConfig(t, "static(budget=1)")
	a, b := Run(base), Run(enabled)
	for s := range b.PerStream {
		m := b.PerStream[s]
		if m.Degradations != 0 || m.Restorations != 0 {
			t.Fatalf("session %d took budget steps at full-budget target: %+v", s, m)
		}
		if m.FramesServed+m.QueriesServed > 0 && (m.MeanBudget != 1 || m.AccuracyProxy != 1) {
			t.Fatalf("session %d budget accounting at full budget: %+v", s, m)
		}
	}
	if b.Aggregate.MeanBudget != 1 || b.Aggregate.AccuracyProxy != 1 {
		t.Fatalf("aggregate budget accounting at full budget: %+v", b.Aggregate)
	}
	if !reflect.DeepEqual(a, stripDegrade(b)) {
		t.Fatalf("never-firing plane changed serving metrics:\n%+v\n%+v", a, stripDegrade(b))
	}
	// And the disabled plane reports all-zero degradation metrics.
	if a.Aggregate.MeanBudget != 0 || a.Aggregate.Degradations != 0 {
		t.Fatalf("disabled plane leaked degradation metrics: %+v", a.Aggregate)
	}
}

// TestDegradeStaticBounded pins the quantized convergence: a static target of
// 0.5 walks every session down in Step-sized increments to the first level at
// or below the target and holds — budgets stay within [target-ish, 1], no
// restorations, no oscillation.
func TestDegradeStaticBounded(t *testing.T) {
	cfg := mixConfig(6, 1)
	cfg.Degrade = degradeConfig(t, "static(budget=0.5)")
	res := Run(cfg)
	if res.Aggregate.Degradations == 0 {
		t.Fatal("static(budget=0.5) never degraded")
	}
	if res.Aggregate.Restorations != 0 {
		t.Fatalf("static target restored %d times (oscillation)", res.Aggregate.Restorations)
	}
	for s, m := range res.PerStream {
		if m.FramesServed+m.QueriesServed == 0 {
			continue
		}
		if m.MeanBudget <= 0 || m.MeanBudget > 1 {
			t.Fatalf("session %d mean budget %v out of (0, 1]", s, m.MeanBudget)
		}
		if m.AccuracyProxy <= 0 || m.AccuracyProxy > 1 {
			t.Fatalf("session %d accuracy proxy %v out of (0, 1]", s, m.AccuracyProxy)
		}
		// Settled budget is 0.49 (= 0.7^2, the first level <= 0.5); with the
		// default floor no session can sit below it.
		if m.MeanBudget < 0.49-1e-9 {
			t.Fatalf("session %d mean budget %v below the settled level", s, m.MeanBudget)
		}
	}
}

// TestDegradePulseRestores drives both directions deterministically: sessions
// degrade toward the floor for their first decisions, then restore all the
// way back to full budget, and the counters balance.
func TestDegradePulseRestores(t *testing.T) {
	cfg := mixConfig(4, 1)
	cfg.Degrade = DegradeConfig{Policy: &pulseCtl{down: 6, calls: map[int]int{}}}
	res := Run(cfg)
	if res.Aggregate.Degradations == 0 || res.Aggregate.Restorations == 0 {
		t.Fatalf("pulse controller: degradations=%d restorations=%d",
			res.Aggregate.Degradations, res.Aggregate.Restorations)
	}
	// Every degradation is eventually undone (the pulse ends long before the
	// run does), so the per-session step counts match and the device ends
	// with no degraded residents.
	for s, m := range res.PerStream {
		if m.Degradations != m.Restorations {
			t.Fatalf("session %d: %d degradations vs %d restorations",
				s, m.Degradations, m.Restorations)
		}
	}
	dm := res.PerDevice[0]
	if dm.Degradations != res.Aggregate.Degradations || dm.Restorations != res.Aggregate.Restorations {
		t.Fatalf("device counters %d/%d, aggregate %d/%d",
			dm.Degradations, dm.Restorations,
			res.Aggregate.Degradations, res.Aggregate.Restorations)
	}
	// Degraded sessions served cheaper steps at a real accuracy cost.
	if res.Aggregate.MeanBudget >= 1 || res.Aggregate.AccuracyProxy >= 1 {
		t.Fatalf("pulse left no budget trace: %+v", res.Aggregate)
	}
}

// TestDegradePressureFiresUnderTightPool puts the pressure controller on a
// pool small enough to page constantly: sessions must degrade, and the
// degraded run must not be slower than the undegraded one on the same
// scenario (the whole point of shedding retrieval work under pressure).
func TestDegradePressureFiresUnderTightPool(t *testing.T) {
	base := kvConfig(8, 1, 95*pageBytes250, "spill(evict=lru,pages=4)")
	degraded := base
	degraded.Degrade = degradeConfig(t, "pressure(lo=0.2,hi=0.5)")
	a, b := Run(base), Run(degraded)
	if b.Aggregate.Degradations == 0 {
		t.Fatal("pressure controller never fired on a thrashing pool")
	}
	if b.Aggregate.MeanBudget >= 1 {
		t.Fatalf("degradations without budget reduction: %+v", b.Aggregate)
	}
	if b.Aggregate.MeanBudget < degrade.DefaultFloor {
		t.Fatalf("mean budget %v below floor %v", b.Aggregate.MeanBudget, degrade.DefaultFloor)
	}
	if b.Aggregate.P99 > a.Aggregate.P99+1e-9 {
		t.Fatalf("degraded P99 %v worse than undegraded %v", b.Aggregate.P99, a.Aggregate.P99)
	}
}

// TestDegradeWorkerInvariance pins determinism: the enabled plane's decisions
// live on the single-threaded device loop, so results are byte-identical for
// any worker count — with and without the scheduler plane.
func TestDegradeWorkerInvariance(t *testing.T) {
	for _, sched := range []string{"", "edf"} {
		cfg := kvConfig(8, 2, 120*pageBytes250, "spill(evict=lru,pages=4)")
		cfg.Degrade = degradeConfig(t, "hybrid")
		if sched != "" {
			pol, err := ParseScheduler(sched)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Scheduler = SchedulerConfig{Policy: pol, BatchMax: 8}
		}
		cfg.Workers = 1
		seq := Run(cfg)
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			c := cfg
			c.Workers = w
			if par := Run(c); !reflect.DeepEqual(seq, par) {
				t.Fatalf("sched=%q: workers=%d diverged from workers=1", sched, w)
			}
		}
	}
}

// TestDegradeObserverEvents checks the budget-transition event stream:
// degraded/restored events carry the budget scales around each step, and
// every step moves the budget by exactly one quantized level.
func TestDegradeObserverEvents(t *testing.T) {
	cfg := mixConfig(4, 1)
	cfg.Degrade = DegradeConfig{Policy: &pulseCtl{down: 3, calls: map[int]int{}}}
	var events []Event
	cfg.Observer = ObserverFunc(func(ev Event) {
		if ev.Kind == EventDegraded || ev.Kind == EventRestored {
			events = append(events, ev)
		}
	})
	res := Run(cfg)
	if want := res.Aggregate.Degradations + res.Aggregate.Restorations; len(events) != want {
		t.Fatalf("observed %d budget events, counters say %d", len(events), want)
	}
	for _, ev := range events {
		down := ev.Kind == EventDegraded
		if down && ev.BudgetAfter >= ev.BudgetBefore {
			t.Fatalf("degraded event did not shrink the budget: %+v", ev)
		}
		if !down && ev.BudgetAfter <= ev.BudgetBefore {
			t.Fatalf("restored event did not grow the budget: %+v", ev)
		}
		if ev.BudgetAfter <= 0 || ev.BudgetAfter > 1 || ev.BudgetBefore <= 0 || ev.BudgetBefore > 1 {
			t.Fatalf("budget scales out of (0, 1]: %+v", ev)
		}
	}
}

// TestDegradeValidateRejects pins the config-level guards for out-of-range
// Step / Floor on an enabled plane.
func TestDegradeValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"step>=1", func(c *Config) { c.Degrade.Step = 1 }, "degrade step"},
		{"negative step", func(c *Config) { c.Degrade.Step = -0.5 }, "degrade step"},
		{"floor>1", func(c *Config) { c.Degrade.Floor = 1.5 }, "degrade floor"},
		{"negative floor", func(c *Config) { c.Degrade.Floor = -0.1 }, "degrade floor"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := mixConfig(2, 1)
			cfg.Degrade = degradeConfig(t, "pressure")
			tc.mut(&cfg)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("validate accepted an invalid degrade config")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.want) {
					t.Fatalf("panic %v does not mention %q", r, tc.want)
				}
			}()
			Run(cfg)
		})
	}
	// The same values are fine on a disabled plane (zero Policy ignores them
	// is NOT allowed — but a fully zero config must pass).
	cfg := mixConfig(2, 1)
	cfg.Degrade = DegradeConfig{}
	Run(cfg)
}

// mixConfig / kvConfig / pageBytes250 come from scenario_test.go and
// pressure_test.go; hwsim is imported there too, keep the linter happy here.
var _ = hwsim.VRex8
