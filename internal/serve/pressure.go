package serve

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
)

// AutoCapacity, as KVConfig.Capacity, derives each device's KV budget from
// its hardware spec (memory minus model weights and workspace).
const AutoCapacity = -1

// DefaultPageTokens is the KV page size when KVConfig leaves it unset: 256
// tokens — 32 MiB/page for Llama-3 8B at BF16, coarse enough that page
// bookkeeping stays cheap, fine enough that a 2 FPS stream crosses a page
// boundary only every ~13 s.
const DefaultPageTokens = 256

// KVConfig configures the device KV memory-pressure plane (internal/kvpool):
// a paged per-device KV budget with spill-to-host/NVMe and memory-aware
// admission control. The zero value disables the plane entirely — infinite
// capacity, no paging, no admission control — and Run reduces exactly to the
// unpooled simulation (the golden tests pin that path byte-for-byte).
type KVConfig struct {
	// Capacity is each device's KV budget in bytes: 0 disables the plane,
	// AutoCapacity derives the budget from the device spec
	// (hwsim.DeviceSpec.KVBudgetBytes), any positive value is explicit.
	Capacity float64
	// PageTokens is the page size in KV tokens (DefaultPageTokens when 0).
	PageTokens int
	// Spill configures eviction of cold sessions' pages to host/NVMe
	// (kvpool.ParseSpill). With spilling disabled, a full device queues new
	// sessions and drops frames whose KV growth cannot be allocated.
	Spill kvpool.SpillConfig
}

func (c KVConfig) enabled() bool { return c.Capacity != 0 }

// MemoryMetrics aggregates the KV memory-pressure plane across the fleet;
// all fields are zero when the plane is disabled.
type MemoryMetrics struct {
	// CapacityPages and PageTokens describe each device's pool.
	CapacityPages, PageTokens int
	// PagesIn / PagesOut count pages moved between device memory and the
	// backing store, fleet-wide; the *Time fields are the seconds charged.
	PagesIn, PagesOut       int
	PageInTime, PageOutTime float64
	// SessionsQueued / SessionsRejected count admission-control outcomes.
	SessionsQueued, SessionsRejected int
	// PeakResidentKV is the largest per-device resident-KV high-water mark.
	PeakResidentKV int
}

// admission states of a session on the memory-pressure plane.
const (
	sessIdle     = iota // not yet started
	sessAdmitted        // holds pages; frames are served
	sessQueued          // waiting for pages; frames drop meanwhile
	sessRejected        // working set exceeds device capacity; never served
	sessGone            // departed
)

// kvPlane is the per-run state of the memory-pressure plane: one pool per
// device, per-session admission state, and per-device FIFO admission queues.
// A nil *kvPlane disables the plane.
type kvPlane struct {
	pools  []*kvpool.Pool
	state  []int
	queues [][]int
}

// PoolShape resolves the configured budget against a device and policy: the
// per-device pool size in pages, the page size in tokens and bytes. It
// errors when the (possibly auto-derived) capacity cannot hold even one
// page — CLIs call it to validate flags up front; Run panics on the same
// condition.
func (c KVConfig) PoolShape(dev hwsim.DeviceSpec, pol hwsim.PolicyModel) (capacityPages, pageTokens int, pageBytes float64, err error) {
	llm := hwsim.Llama3_8B()
	capBytes := c.Capacity
	if capBytes == AutoCapacity {
		capBytes = dev.KVBudgetBytes(llm)
	}
	pageTokens = c.PageTokens
	if pageTokens == 0 {
		pageTokens = DefaultPageTokens
	}
	pageBytes = pol.KVBytesPerToken(llm) * float64(pageTokens)
	capacityPages = int(capBytes / pageBytes)
	if capacityPages < 1 {
		return 0, 0, 0, fmt.Errorf("serve: KV capacity %.4g B holds no %d-token page (%.4g B/page)",
			capBytes, pageTokens, pageBytes)
	}
	return capacityPages, pageTokens, pageBytes, nil
}

// newKVPlane builds the plane for a run, or returns nil when disabled; the
// config has already passed validate. acct, when non-nil, is the telemetry
// profile's mover-level page account, threaded into every pool's Transfer.
func newKVPlane(cfg Config, nDev, nSessions int, acct *kvpool.Account) *kvPlane {
	if !cfg.KV.enabled() {
		return nil
	}
	p := &kvPlane{
		pools:  make([]*kvpool.Pool, nDev),
		state:  make([]int, nSessions),
		queues: make([][]int, nDev),
	}
	// Homogeneous fleets share one pool shape; with DevSpecs each device's
	// budget, page bytes and spill pricing derive from its own spec.
	build := func(dev hwsim.DeviceSpec) kvpool.Config {
		pages, pageTokens, pageBytes, err := cfg.KV.PoolShape(dev, cfg.Pol)
		if err != nil {
			panic(err.Error())
		}
		return kvpool.Config{
			CapacityPages: pages, PageTokens: pageTokens, Spill: cfg.KV.Spill,
			Mover: kvpool.Transfer{
				Link: dev.Link, SSD: dev.OffloadSSD,
				Host: dev.HostMem, PageBytes: pageBytes, Acct: acct,
			},
		}
	}
	if len(cfg.DevSpecs) == 0 {
		pcfg := build(cfg.Dev)
		for d := range p.pools {
			p.pools[d] = kvpool.New(pcfg)
		}
	} else {
		for d := range p.pools {
			p.pools[d] = kvpool.New(build(cfg.DevSpecs[d]))
		}
	}
	return p
}

// memory folds the fleet's pool statistics into the aggregate, after the
// per-device metrics have been filled in.
func (p *kvPlane) memory(devMetrics []DeviceMetrics) MemoryMetrics {
	m := MemoryMetrics{
		CapacityPages: p.pools[0].CapacityPages(),
		PageTokens:    p.pools[0].PageTokens(),
	}
	for d := range devMetrics {
		dm := &devMetrics[d]
		m.PagesIn += dm.PagesIn
		m.PagesOut += dm.PagesOut
		m.PageInTime += dm.PageInTime
		m.PageOutTime += dm.PageOutTime
		m.SessionsQueued += dm.SessionsQueued
		m.SessionsRejected += dm.SessionsRejected
		if dm.PeakResidentKV > m.PeakResidentKV {
			m.PeakResidentKV = dm.PeakResidentKV
		}
	}
	return m
}
