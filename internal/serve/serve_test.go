package serve

import (
	"testing"

	"vrex/internal/hwsim"
)

func baseConfig(dev hwsim.DeviceSpec, pol hwsim.PolicyModel, streams int) Config {
	sc := DefaultStreamConfig()
	sc.QueryEvery = 0 // frames only unless a test wants queries
	return Config{
		Dev: dev, Pol: pol,
		Streams:       streams,
		Duration:      20,
		Stream:        sc,
		DropThreshold: 4,
		Seed:          1,
	}
}

func TestSingleStreamVRexRealTime(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 1)
	res := Run(cfg)
	if !res.RealTime {
		t.Fatalf("V-Rex8 must sustain one 2 FPS stream: %+v", res.PerStream[0])
	}
	m := res.PerStream[0]
	if m.AchievedFPS < 1.8 {
		t.Fatalf("achieved FPS %v, want ~2", m.AchievedFPS)
	}
	if m.FinalKV <= cfg.Stream.StartKV {
		t.Fatal("KV must grow as frames are served")
	}
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", m.P50, m.P99)
	}
}

func TestBacklogDropsFrames(t *testing.T) {
	// AGX+FlexGen at a large cache cannot keep up with 2 FPS x 4 streams;
	// frames must drop.
	cfg := baseConfig(hwsim.AGXOrin(), hwsim.FlexGenModel(), 4)
	cfg.Stream.StartKV = 20000
	res := Run(cfg)
	if res.RealTime {
		t.Fatal("overloaded GPU should not be real-time")
	}
	dropped := 0
	for _, m := range res.PerStream {
		dropped += m.FramesDropped
	}
	if dropped == 0 {
		t.Fatal("backlog should drop frames")
	}
}

func TestDroppedFramesDontGrowKV(t *testing.T) {
	cfg := baseConfig(hwsim.AGXOrin(), hwsim.FlexGenModel(), 4)
	cfg.Stream.StartKV = 20000
	res := Run(cfg)
	for s, m := range res.PerStream {
		want := cfg.Stream.StartKV + m.FramesServed*cfg.Stream.TokensPerFrame
		if m.FinalKV != want {
			t.Fatalf("stream %d KV %d, want %d (served %d)", s, m.FinalKV, want, m.FramesServed)
		}
	}
}

func TestVRexSustainsMoreStreamsThanGPU(t *testing.T) {
	mk := func(dev hwsim.DeviceSpec, pol hwsim.PolicyModel) Config {
		c := baseConfig(dev, pol, 1)
		c.Stream.StartKV = 10000
		c.Duration = 10
		return c
	}
	gpu := MaxRealTimeStreams(mk(hwsim.AGXOrin(), hwsim.FlexGenModel()), 16)
	vrex := MaxRealTimeStreams(mk(hwsim.VRex8(), hwsim.ReSVModel()), 16)
	if vrex <= gpu {
		t.Fatalf("V-Rex8 streams (%d) should exceed AGX+FlexGen (%d)", vrex, gpu)
	}
}

func TestQueriesServed(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 1)
	cfg.Stream.QueryEvery = 5
	res := Run(cfg)
	if res.PerStream[0].QueriesServed == 0 {
		t.Fatal("queries should be served")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 3)
	a := Run(cfg)
	b := Run(cfg)
	for s := range a.PerStream {
		if a.PerStream[s] != b.PerStream[s] {
			t.Fatal("serving simulation not deterministic")
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	res := Run(baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 2))
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v out of (0,1]", res.Utilization)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{Streams: 0, Duration: 1})
}

func TestMaxRealTimeStreamsMonotoneBase(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 1)
	cfg.Duration = 10
	n := MaxRealTimeStreams(cfg, 8)
	if n < 1 {
		t.Fatalf("V-Rex8 should sustain at least one stream, got %d", n)
	}
	// n streams is real-time, n+1 (if within limit) is not.
	c := cfg
	c.Streams = n
	if !Run(c).RealTime {
		t.Fatal("bisection result not actually real-time")
	}
	if n < 8 {
		c.Streams = n + 1
		if Run(c).RealTime {
			t.Fatal("bisection result not maximal")
		}
	}
}
