package serve

import (
	"reflect"
	"testing"

	"vrex/internal/hwsim"
)

// TestRunParallelEquivalence: the serving simulation must produce identical
// per-stream metrics and utilization for any worker count — schedule
// construction and metric reduction are sharded, the device loop is the
// barrier.
func TestRunParallelEquivalence(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 6)
	cfg.Stream.QueryEvery = 7
	cfg.Workers = 1
	seq := Run(cfg)
	for _, w := range []int{2, 8} {
		c := cfg
		c.Workers = w
		par := Run(c)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential:\nseq: %+v\npar: %+v", w, seq, par)
		}
	}
}

// TestStreamSeedIndependence: adding a stream must not perturb the arrival
// processes of existing streams (per-stream derived seeds, not a shared
// generator). Stream 0 of a 1-stream run sees the device alone, so compare
// arrival counts, which depend only on the schedule.
func TestStreamSeedIndependence(t *testing.T) {
	small := baseConfig(hwsim.VRex48(), hwsim.ReSVModel(), 1)
	big := baseConfig(hwsim.VRex48(), hwsim.ReSVModel(), 4)
	a := Run(small).PerStream[0]
	b := Run(big).PerStream[0]
	if a.FramesArrived != b.FramesArrived {
		t.Fatalf("stream 0 arrivals changed with stream count: %d vs %d",
			a.FramesArrived, b.FramesArrived)
	}
}
