package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// builtinClasses are the named stream shapes CLIs compose mixes from
// ("-mix 2fps:0.7,4fps:0.3"). All derive from the paper's 2 FPS working
// scenario; each varies one axis of the session shape.
func builtinClasses() map[string]StreamConfig {
	base := DefaultStreamConfig()
	fps := func(f float64) StreamConfig { c := base; c.FPS = f; return c }
	queryHeavy := base
	queryHeavy.QueryEvery = 5
	longCtx := base
	longCtx.StartKV = 20000
	quiet := base
	quiet.QueryEvery = 0
	return map[string]StreamConfig{
		"1fps":        fps(1),
		"2fps":        base,
		"4fps":        fps(4),
		"query-heavy": queryHeavy,
		"longctx":     longCtx,
		"quiet":       quiet,
	}
}

// ClassNames returns the built-in stream class names, sorted.
func ClassNames() []string {
	m := builtinClasses()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClassByName resolves a built-in stream class shape.
func ClassByName(name string) (StreamConfig, bool) {
	c, ok := builtinClasses()[strings.ToLower(strings.TrimSpace(name))]
	return c, ok
}

// ParseMix parses a weighted stream mix spec: comma-separated
// "class:weight" terms ("2fps:0.7,4fps:0.3"); the weight defaults to 1 when
// omitted ("2fps"). Class names resolve via ClassByName.
func ParseMix(spec string) ([]StreamClass, error) {
	var mix []StreamClass
	seen := map[string]bool{}
	for _, term := range strings.Split(spec, ",") {
		name, weightStr, hasWeight := strings.Cut(term, ":")
		name = strings.ToLower(strings.TrimSpace(name))
		sc, ok := ClassByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown stream class %q in mix %q (known: %s)",
				name, spec, strings.Join(ClassNames(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("serve: stream class %q repeated in mix %q", name, spec)
		}
		seen[name] = true
		weight := 1.0
		if hasWeight {
			w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("serve: mix %q: weight of %q must be a positive number", spec, name)
			}
			weight = w
		}
		mix = append(mix, StreamClass{Name: name, Weight: weight, Stream: sc})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("serve: empty mix spec")
	}
	return mix, nil
}
