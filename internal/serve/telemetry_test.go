package serve

import (
	"math"
	"reflect"
	"testing"
)

// recordingSink captures the full event and stall streams.
type recordingSink struct {
	events []Event
	stalls []stallRec
}

type stallRec struct {
	device     int
	start, dur float64
	kind       StallKind
}

func (r *recordingSink) Observe(ev Event) { r.events = append(r.events, ev) }
func (r *recordingSink) Stall(device int, start, dur float64, kind StallKind) {
	r.stalls = append(r.stalls, stallRec{device, start, dur, kind})
}

// telemetryConfig is a deliberately stressed run exercising every charge
// path at once: KV pool small enough to spill, EDF batching, a degradation
// controller, and a mid-run drain forcing priced live migrations.
func telemetryConfig(t *testing.T) Config {
	t.Helper()
	cfg := kvConfig(10, 2, 40*pageBytes250, "spill(evict=lru,pages=8)")
	cfg.Stream.FPS = 1
	p, err := ParseScheduler("edf")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler.Policy = p
	cfg.Scheduler.BatchMax = 4
	cfg.Degrade = degradeConfig(t, "pressure(lo=0.2,hi=0.5)")
	cfg.Migration.Cost = func(src, dst, kvTokens int) (float64, float64) {
		return 1e-6 * float64(kvTokens), 0.5e-6 * float64(kvTokens)
	}
	cfg.Control.At = []float64{8, 14}
	drained := false
	cfg.Control.Controller = func(now float64, ops *FleetOps) {
		if !drained {
			ops.Drain(0)
			drained = true
		} else {
			ops.Activate(0)
		}
	}
	return cfg
}

// TestTelemetryDoesNotPerturbResult pins the plane's observer-only
// contract: attaching a sink and a profile leaves every Result field
// byte-identical to the bare run.
func TestTelemetryDoesNotPerturbResult(t *testing.T) {
	bare := Run(telemetryConfig(t))
	wired := telemetryConfig(t)
	wired.Telemetry = TelemetryConfig{Sink: &recordingSink{}, Profile: &PhaseProfile{}}
	if got := Run(wired); !reflect.DeepEqual(bare, got) {
		t.Fatal("attaching telemetry changed the result")
	}
}

// TestPhaseProfileConservation pins the attribution invariant on a run that
// exercises compute, paging and migration charges: the phase buckets sum to
// exactly the device-seconds the engine charged (within float tolerance),
// and the sink's stall stream reconciles with the paging/migration buckets.
func TestPhaseProfileConservation(t *testing.T) {
	cfg := telemetryConfig(t)
	sink := &recordingSink{}
	prof := &PhaseProfile{}
	cfg.Telemetry = TelemetryConfig{Sink: sink, Profile: prof}
	res := Run(cfg)

	if prof.Charged <= 0 || prof.Sim.Steps == 0 {
		t.Fatalf("profile saw no work: charged=%v steps=%d", prof.Charged, prof.Sim.Steps)
	}
	if diff := math.Abs(prof.Total() - prof.Charged); diff > 1e-9 {
		t.Fatalf("attribution leak: |Total-Charged| = %g (total=%v charged=%v)",
			diff, prof.Total(), prof.Charged)
	}
	// The stressed config must actually exercise the non-compute buckets.
	if prof.PageIn+prof.PageOut == 0 {
		t.Fatal("pressured run charged no paging")
	}
	if prof.MigrationSend == 0 || prof.MigrationRecv == 0 {
		t.Fatalf("drain charged no migration legs: %+v", prof)
	}
	if res.Migrations.Live == 0 {
		t.Fatal("expected live migrations")
	}
	// Sink stalls reconcile with the profile's non-compute buckets.
	sums := make(map[StallKind]float64)
	for _, st := range sink.stalls {
		if st.dur <= 0 {
			t.Fatalf("non-positive stall: %+v", st)
		}
		sums[st.kind] += st.dur
	}
	for _, chk := range []struct {
		kind StallKind
		want float64
	}{
		{StallPageIn, prof.PageIn},
		{StallPageOut, prof.PageOut},
		{StallMigrateSend, prof.MigrationSend},
		{StallMigrateRecv, prof.MigrationRecv},
	} {
		if math.Abs(sums[chk.kind]-chk.want) > 1e-9 {
			t.Fatalf("%v stalls sum %v, profile bucket %v", chk.kind, sums[chk.kind], chk.want)
		}
	}
	// The mover-level account saw at least the engine-charged movement.
	if prof.Pages.PagesIn == 0 || prof.Pages.PagesOut == 0 {
		t.Fatalf("mover account empty: %+v", prof.Pages)
	}
}

// TestTelemetrySinkSeesObserverStream pins that the sink receives exactly
// the event stream Config.Observer sees, in the same order, whether or not
// an Observer is attached alongside.
func TestTelemetrySinkSeesObserverStream(t *testing.T) {
	var viaObserver []Event
	both := telemetryConfig(t)
	sink := &recordingSink{}
	both.Observer = ObserverFunc(func(ev Event) { viaObserver = append(viaObserver, ev) })
	both.Telemetry.Sink = sink
	Run(both)

	alone := telemetryConfig(t)
	soloSink := &recordingSink{}
	alone.Telemetry.Sink = soloSink
	Run(alone)

	if len(viaObserver) == 0 {
		t.Fatal("observer saw no events")
	}
	if !eventsEqual(viaObserver, sink.events) || !eventsEqual(viaObserver, soloSink.events) {
		t.Fatal("sink event stream diverged from the observer stream")
	}
}

// eventsEqual compares event streams treating NaN latencies as equal.
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		nx, ny := math.IsNaN(x.Latency), math.IsNaN(y.Latency)
		if nx != ny {
			return false
		}
		if nx {
			x.Latency, y.Latency = 0, 0
		}
		if x != y {
			return false
		}
	}
	return true
}
