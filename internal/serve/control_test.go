package serve

import (
	"math"
	"reflect"
	"testing"

	"vrex/internal/hwsim"
)

// controlConfig is baseConfig plus a 2-device fleet, ready for a controller.
func controlConfig(streams int) Config {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), streams)
	// 1 FPS: one VRex8 sustains ~5.8 frames/s, so a whole drained fleet can
	// consolidate onto one device without overload.
	cfg.Stream.FPS = 1
	cfg.Devices = 2
	return cfg
}

func TestControlDisabledReducesExactly(t *testing.T) {
	// A controller with no tick schedule (or a schedule with no controller)
	// must not perturb the timeline at all.
	base := Run(controlConfig(4))
	withTicks := controlConfig(4)
	withTicks.Control.At = []float64{5, 10} // Controller nil: plane disabled
	if !reflect.DeepEqual(base, Run(withTicks)) {
		t.Fatal("tick times without a controller must change nothing")
	}
	noTimes := controlConfig(4)
	noTimes.Control.Controller = func(float64, *FleetOps) { t.Fatal("must not tick") }
	if !reflect.DeepEqual(base, Run(noTimes)) {
		t.Fatal("a controller with no tick schedule must change nothing")
	}
}

func TestControlNoopControllerIsInvisible(t *testing.T) {
	// A controller that ticks but does nothing must reduce byte-identically,
	// on both the serial and the scheduled timeline.
	for _, sched := range []string{"", "edf"} {
		base := controlConfig(4)
		ticked := controlConfig(4)
		ticked.Control.Interval = 1
		ticks := 0
		ticked.Control.Controller = func(now float64, ops *FleetOps) { ticks++ }
		if sched != "" {
			p, err := ParseScheduler(sched)
			if err != nil {
				t.Fatal(err)
			}
			base.Scheduler.Policy = p
			ticked.Scheduler.Policy = p
		}
		if !reflect.DeepEqual(Run(base), Run(ticked)) {
			t.Fatalf("sched=%q: no-op controller must be invisible", sched)
		}
		if want := int(ticked.Duration) - 1; ticks != want {
			t.Fatalf("sched=%q: %d ticks, want %d", sched, ticks, want)
		}
	}
}

func TestDrainMigratesSessionsLive(t *testing.T) {
	cfg := controlConfig(4)
	unitCost := func(src, dst, kvTokens int) (float64, float64) { return 0.5, 0.25 }
	cfg.Migration.Cost = unitCost
	cfg.Control.At = []float64{10}
	cfg.Control.Controller = func(now float64, ops *FleetOps) { ops.Drain(0) }
	res := Run(cfg)
	if res.Migrations.Live == 0 || res.Migrations.Lossy != 0 {
		t.Fatalf("drain must migrate live: %+v", res.Migrations)
	}
	if res.Migrations.Tokens == 0 {
		t.Fatal("live migration must move KV tokens")
	}
	if want := float64(res.Migrations.Live) * 0.75; math.Abs(res.Migrations.Time-want) > 1e-9 {
		t.Fatalf("migration time %v, want %v (0.75 per move)", res.Migrations.Time, want)
	}
	d0, d1 := res.PerDevice[0], res.PerDevice[1]
	if d0.MigrationsOut != res.Migrations.Live || d1.MigrationsIn != res.Migrations.Live {
		t.Fatalf("per-device migration counts wrong: out=%d in=%d want %d",
			d0.MigrationsOut, d1.MigrationsIn, res.Migrations.Live)
	}
	if math.Abs(d0.MigrationTime-0.5*float64(d0.MigrationsOut)) > 1e-9 ||
		math.Abs(d1.MigrationTime-0.25*float64(d1.MigrationsIn)) > 1e-9 {
		t.Fatalf("per-device migration time legs wrong: src=%v dst=%v", d0.MigrationTime, d1.MigrationTime)
	}
	// After the drain every session serves on device 1.
	for s, m := range res.PerStream {
		if m.Device != 1 {
			t.Fatalf("session %d still on device %d after drain", s, m.Device)
		}
	}
	// The drained device serves nothing after t=10 but everything still
	// lands: no frames drop on an uncongested fleet.
	if res.Aggregate.FramesDropped != 0 {
		t.Fatalf("drain on an uncongested fleet dropped %d frames", res.Aggregate.FramesDropped)
	}
}

func TestFailLosesKVAndDropsBacklog(t *testing.T) {
	cfg := controlConfig(4)
	cfg.Migration.Cost = func(src, dst, kvTokens int) (float64, float64) {
		t.Fatal("lossy failure re-placement must not price a transfer")
		return 0, 0
	}
	cfg.Control.At = []float64{10}
	cfg.Control.Controller = func(now float64, ops *FleetOps) { ops.Fail(0) }
	res := Run(cfg)
	if res.Migrations.Lossy == 0 || res.Migrations.Live != 0 {
		t.Fatalf("failure must re-place lossily: %+v", res.Migrations)
	}
	if res.Migrations.Time != 0 || res.Migrations.Tokens != 0 {
		t.Fatalf("lossy moves are free and move nothing: %+v", res.Migrations)
	}
	// KV state restarted from StartKV at t=10: a re-placed session's final
	// KV is well below its undisturbed run's.
	undisturbed := Run(controlConfig(4))
	for s := range res.PerStream {
		if undisturbed.PerStream[s].Device != 0 {
			continue // never failed over
		}
		if res.PerStream[s].FinalKV >= undisturbed.PerStream[s].FinalKV {
			t.Fatalf("session %d kept its KV across a failure: %d >= %d",
				s, res.PerStream[s].FinalKV, undisturbed.PerStream[s].FinalKV)
		}
	}
}

func TestDrainChargesMigrationToTimeline(t *testing.T) {
	// The same drain with a large migration cost must push served work later:
	// deterministic, strictly larger p99 on the destination device.
	run := func(cost float64) Result {
		cfg := controlConfig(4)
		cfg.Migration.Cost = func(src, dst, kvTokens int) (float64, float64) { return cost, cost }
		cfg.Control.At = []float64{10}
		cfg.Control.Controller = func(now float64, ops *FleetOps) { ops.Drain(0) }
		return Run(cfg)
	}
	free, priced := run(0), run(2.0)
	if !(priced.Aggregate.P99 > free.Aggregate.P99) {
		t.Fatalf("migration cost must delay service: p99 %v vs %v", priced.Aggregate.P99, free.Aggregate.P99)
	}
	if priced.PerDevice[1].Utilization <= free.PerDevice[1].Utilization {
		t.Fatal("destination must absorb the migration time")
	}
	// Determinism: the same run twice is identical.
	if !reflect.DeepEqual(priced, run(2.0)) {
		t.Fatal("controlled run must be deterministic")
	}
}

func TestActivateRestoresService(t *testing.T) {
	cfg := controlConfig(4)
	cfg.Control.At = []float64{8, 14}
	cfg.Control.Controller = func(now float64, ops *FleetOps) {
		if now < 10 {
			ops.Drain(0)
		} else {
			ops.Activate(0)
		}
	}
	res := Run(cfg)
	// New arrivals after reactivation may land on device 0 again; at minimum
	// the run completes and the device's down window shows in utilization.
	if res.PerDevice[0].Utilization >= res.PerDevice[1].Utilization {
		t.Fatal("drained device must have served less")
	}
	var downs, ups int
	cfg.Observer = ObserverFunc(func(e Event) {
		switch e.Kind {
		case EventDeviceDown:
			downs++
		case EventDeviceUp:
			ups++
		}
	})
	Run(cfg)
	if downs != 1 || ups != 1 {
		t.Fatalf("device lifecycle events: %d down, %d up, want 1/1", downs, ups)
	}
}

func TestScheduledDrainMovesQueuedWork(t *testing.T) {
	// Under the scheduler plane, a drained device's queued ready items move
	// with their sessions and serve at the destination.
	cfg := controlConfig(4)
	p, err := ParseScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler.Policy = p
	cfg.Control.At = []float64{10}
	cfg.Control.Controller = func(now float64, ops *FleetOps) { ops.Drain(0) }
	moved := 0
	cfg.Observer = ObserverFunc(func(e Event) {
		if e.Kind == EventSessionMigrated {
			moved++
		}
	})
	res := Run(cfg)
	if moved == 0 {
		t.Fatal("drain must migrate sessions")
	}
	if res.Aggregate.FramesDropped != 0 {
		t.Fatalf("uncongested scheduled drain dropped %d frames", res.Aggregate.FramesDropped)
	}
	if res.PerDevice[0].FramesServed+res.PerDevice[1].FramesServed != res.Aggregate.FramesServed {
		t.Fatal("per-device frame counts must still reconcile")
	}
}

func TestScheduledFailDropsQueuedWork(t *testing.T) {
	// Overload one device so its ready queue is non-empty, then kill it: the
	// queued frames drop and their sessions restart elsewhere.
	cfg := baseConfig(hwsim.AGXOrin(), hwsim.FlexGenModel(), 6)
	cfg.Devices = 2
	cfg.Stream.StartKV = 20000
	p, err := ParseScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler.Policy = p
	cfg.DropThreshold = 0 // keep the backlog queued, not dropped
	cfg.Control.At = []float64{10}
	cfg.Control.Controller = func(now float64, ops *FleetOps) { ops.Fail(0) }
	res := Run(cfg)
	if res.Migrations.Lossy == 0 {
		t.Fatalf("failure must re-place sessions: %+v", res.Migrations)
	}
	if res.Aggregate.FramesDropped == 0 {
		t.Fatal("killing a backlogged device must drop its queued frames")
	}
	if !reflect.DeepEqual(res, Run(cfg)) {
		t.Fatal("failure injection must be deterministic")
	}
}

func TestMigrateSingleSession(t *testing.T) {
	cfg := controlConfig(2)
	cfg.Migration.Cost = func(src, dst, kvTokens int) (float64, float64) { return 0.1, 0.1 }
	cfg.Control.At = []float64{5}
	cfg.Control.Controller = func(now float64, ops *FleetOps) {
		on := ops.SessionsOn(0)
		if len(on) == 0 {
			t.Fatal("device 0 must hold a session at t=5")
		}
		if ops.KV(on[0]) <= 0 {
			t.Fatal("resident session must have KV")
		}
		ops.Migrate(on[0], 1)
		ops.Migrate(on[0], 1) // no-op: already there
	}
	res := Run(cfg)
	if res.Migrations.Live != 1 {
		t.Fatalf("exactly one live migration, got %+v", res.Migrations)
	}
}

func TestHeterogeneousDevSpecs(t *testing.T) {
	// A VRex8 + AGXOrin fleet: the slow device's sessions see much worse
	// latency than the fast device's, and DevSpecs matching Dev everywhere
	// reproduces the homogeneous run exactly.
	cfg := controlConfig(4)
	uniform := cfg
	uniform.DevSpecs = []hwsim.DeviceSpec{hwsim.VRex8(), hwsim.VRex8()}
	if !reflect.DeepEqual(Run(cfg), Run(uniform)) {
		t.Fatal("DevSpecs of all Dev must reproduce the homogeneous fleet")
	}
	mixed := cfg
	mixed.Stream.StartKV = 20000
	mixed.DevSpecs = []hwsim.DeviceSpec{hwsim.VRex8(), hwsim.AGXOrin()}
	res := Run(mixed)
	var fast, slow []int
	for s, m := range res.PerStream {
		if m.Device == 0 {
			fast = append(fast, s)
		} else {
			slow = append(slow, s)
		}
	}
	if len(fast) == 0 || len(slow) == 0 {
		t.Fatal("round-robin must populate both devices")
	}
	if res.PerStream[slow[0]].P50 <= res.PerStream[fast[0]].P50 {
		t.Fatalf("AGXOrin p50 %v must exceed VRex8 p50 %v",
			res.PerStream[slow[0]].P50, res.PerStream[fast[0]].P50)
	}
}

func TestDevSpecsLengthValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched DevSpecs length must panic")
		}
	}()
	cfg := controlConfig(2)
	cfg.DevSpecs = []hwsim.DeviceSpec{hwsim.VRex8()} // fleet is 2 devices
	Run(cfg)
}
