package serve

import (
	"reflect"
	"testing"

	"vrex/internal/mathx"
	"vrex/internal/parallel"
)

// TestHookPoissonExponentialEquivalence proves the hook seams sit exactly on
// the built-in draws: hooks that re-implement the Poisson arrival process,
// the exponential lifetime draw and the weighted class draw with the same
// RNG consumption produce a byte-identical Result to the nil-hook config.
func TestHookPoissonExponentialEquivalence(t *testing.T) {
	base := mixConfig(4, 2)
	base.Duration = 12
	base.Churn = ChurnConfig{ArrivalRate: 0.8, MeanLifetime: 5}
	want := Run(base)

	hooked := base
	hooked.Churn.Arrivals = func(rng *mathx.RNG, duration float64) []float64 {
		var times []float64
		for at := expDraw(rng, 1/base.Churn.ArrivalRate); at < duration; at += expDraw(rng, 1/base.Churn.ArrivalRate) {
			times = append(times, at)
		}
		return times
	}
	hooked.Churn.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 {
		return expDraw(rng, base.Churn.MeanLifetime)
	}
	classes := base.classes()
	var total float64
	for _, c := range classes {
		total += c.Weight
	}
	hooked.Churn.Class = func(rng *mathx.RNG, ordinal int, start float64) int {
		x := rng.Float64() * total
		for c := range classes {
			x -= classes[c].Weight
			if x < 0 {
				return c
			}
		}
		return len(classes) - 1
	}
	got := Run(hooked)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("hook reimplementation of Poisson/exponential churn diverged from the built-in path")
	}
}

// TestHookLifetimeNonPositiveMeansWholeRun pins the sentinel: a Lifetime hook
// returning 0 keeps the session for the rest of the run.
func TestHookLifetimeNonPositiveMeansWholeRun(t *testing.T) {
	cfg := mixConfig(3, 1)
	cfg.Duration = 10
	cfg.Churn.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 { return 0 }
	res := Run(cfg)
	for s, m := range res.PerStream {
		if m.AchievedFPS == 0 && m.FramesArrived == 0 {
			t.Fatalf("session %d saw no frames: lifetime sentinel truncated the run", s)
		}
	}
}

// TestHookArrivalsSkipsOutOfWindowTimes checks that arrival times outside
// [0, Duration) are dropped while later ordinals keep their seeds and
// classes — a trace replayed under a shorter duration keeps its survivors.
func TestHookArrivalsSkipsOutOfWindowTimes(t *testing.T) {
	cfg := mixConfig(0, 1)
	cfg.Duration = 10
	cfg.Churn.Arrivals = func(rng *mathx.RNG, duration float64) []float64 {
		return []float64{-1, 2, 99, 4}
	}
	res := Run(cfg)
	if got := len(res.PerStream); got != 2 {
		t.Fatalf("expected 2 in-window sessions, got %d", got)
	}

	// The surviving ordinals (1 and 3) must be seeded as ordinals 1 and 3,
	// not renumbered: compare against a run whose hook only emits them.
	direct := cfg
	direct.Churn.Arrivals = func(rng *mathx.RNG, duration float64) []float64 {
		return []float64{-1, 2, -1, 4}
	}
	if !reflect.DeepEqual(Run(direct), res) {
		t.Fatal("out-of-window arrivals perturbed surviving sessions' identities")
	}
}

// TestHookClassOutOfRangePanics pins the contract violation loudly.
func TestHookClassOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Churn.Class index must panic")
		}
	}()
	cfg := mixConfig(1, 1)
	cfg.Duration = 2
	cfg.Churn.Class = func(rng *mathx.RNG, ordinal int, start float64) int { return 99 }
	Run(cfg)
}

// TestHookWorkerInvariance: hook-driven session populations stay
// byte-identical across worker counts, like every other serve path.
func TestHookWorkerInvariance(t *testing.T) {
	cfg := mixConfig(2, 2)
	cfg.Duration = 10
	cfg.Churn.Arrivals = func(rng *mathx.RNG, duration float64) []float64 {
		var times []float64
		for at := expDraw(rng, 1.3); at < duration; at += expDraw(rng, 1.3) {
			times = append(times, at)
		}
		return times
	}
	cfg.Churn.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 {
		return 1 + 4*rng.Float64()
	}
	cfg.Workers = 1
	want := Run(cfg)
	for _, w := range []int{4, parallel.Workers(0)} {
		c := cfg
		c.Workers = w
		if got := Run(c); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential run", w)
		}
	}
}
