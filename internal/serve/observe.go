package serve

// EventKind classifies an Observer callback.
type EventKind int

const (
	// EventSessionStart: a session joined and was assigned a device.
	EventSessionStart EventKind = iota
	// EventSessionEnd: a session's presence window closed.
	EventSessionEnd
	// EventFrameServed: a video frame finished service.
	EventFrameServed
	// EventFrameDropped: a frame was dropped (backlog or OOM).
	EventFrameDropped
	// EventQueryServed: a query (prefill + full answer) finished service.
	EventQueryServed
	// EventSessionQueued: admission control had no pages for the session's
	// working set (KV plane only); its frames drop until admission.
	EventSessionQueued
	// EventSessionAdmitted: a previously queued session obtained its pages.
	EventSessionAdmitted
	// EventSessionRejected: the session's working set exceeds the device's
	// whole KV pool; it is never served.
	EventSessionRejected
	// EventQueryDropped: a query arrived for an unadmitted session, or its
	// KV growth could not be allocated.
	EventQueryDropped
)

// String names the kind for logs and traces.
func (k EventKind) String() string {
	switch k {
	case EventSessionStart:
		return "session-start"
	case EventSessionEnd:
		return "session-end"
	case EventFrameServed:
		return "frame-served"
	case EventFrameDropped:
		return "frame-dropped"
	case EventQueryServed:
		return "query-served"
	case EventSessionQueued:
		return "session-queued"
	case EventSessionAdmitted:
		return "session-admitted"
	case EventSessionRejected:
		return "session-rejected"
	case EventQueryDropped:
		return "query-dropped"
	}
	return "unknown"
}

// Event is one scheduling observation. Events are delivered from the
// single-threaded device loop in deterministic global arrival order, for
// every Workers setting.
type Event struct {
	Kind EventKind
	// Time is the arrival time of the underlying event (not its completion).
	Time    float64
	Session int
	// Class is the session's stream class name; Device its fleet member
	// (-1 before assignment).
	Class  string
	Device int
	// Latency is the completion latency (queueing + service) for
	// EventFrameServed / EventQueryServed, 0 otherwise.
	Latency float64
	// KV is the session's KV length after the event.
	KV int
}

// Observer receives scheduling events; wire one through Config.Observer to
// collect custom metrics without touching the engine.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }
