package serve

import "math"

// EventKind classifies an Observer callback.
type EventKind int

const (
	// EventSessionStart: a session joined and was assigned a device.
	EventSessionStart EventKind = iota
	// EventSessionEnd: a session's presence window closed.
	EventSessionEnd
	// EventFrameServed: a video frame finished service.
	EventFrameServed
	// EventFrameDropped: a frame was dropped (backlog or OOM).
	EventFrameDropped
	// EventQueryServed: a query (prefill + full answer) finished service.
	EventQueryServed
	// EventSessionQueued: admission control had no pages for the session's
	// working set (KV plane only); its frames drop until admission.
	EventSessionQueued
	// EventSessionAdmitted: a previously queued session obtained its pages.
	EventSessionAdmitted
	// EventSessionRejected: the session's working set exceeds the device's
	// whole KV pool; it is never served.
	EventSessionRejected
	// EventQueryDropped: a query arrived for an unadmitted session, or its
	// KV growth could not be allocated.
	EventQueryDropped
	// EventBatchFormed: the scheduler plane coalesced ready work into one
	// hardware step (Batch carries the member count, Latency the step's
	// service time, Time the step's start). Delivered after its members'
	// served events, with the head session's post-step KV. Never emitted on
	// the serial batch-1 timeline.
	EventBatchFormed
	// EventDeadlineMissed: a served frame completed after its class deadline
	// (StreamClass.SLO); emitted right after the frame's EventFrameServed
	// with the same completion latency.
	EventDeadlineMissed
	// EventDeviceDown: the control plane took a device out of service
	// (drain or failure injection). Session is -1; Device identifies it.
	EventDeviceDown
	// EventDeviceUp: the control plane returned a device to service.
	// Session is -1; Device identifies it.
	EventDeviceUp
	// EventSessionMigrated: the control plane moved a session to a new
	// device. Device is the destination, KV the session's post-move KV
	// length, and Latency the total seconds the move occupied device
	// timelines (0 for a lossy failure re-placement).
	EventSessionMigrated
	// EventDegraded: the degradation plane shrank the session's retrieval
	// budget by one quantized step; BudgetBefore / BudgetAfter carry the
	// budget scales around the step.
	EventDegraded
	// EventRestored: the degradation plane restored one quantized step of
	// the session's retrieval budget (pressure cleared with hysteresis).
	EventRestored
	// numEventKinds bounds the kind space; tests iterate [0, numEventKinds)
	// to keep String() and the telemetry exporters exhaustive.
	numEventKinds
)

// String names the kind for logs and traces.
func (k EventKind) String() string {
	switch k {
	case EventSessionStart:
		return "session-start"
	case EventSessionEnd:
		return "session-end"
	case EventFrameServed:
		return "frame-served"
	case EventFrameDropped:
		return "frame-dropped"
	case EventQueryServed:
		return "query-served"
	case EventSessionQueued:
		return "session-queued"
	case EventSessionAdmitted:
		return "session-admitted"
	case EventSessionRejected:
		return "session-rejected"
	case EventQueryDropped:
		return "query-dropped"
	case EventBatchFormed:
		return "batch-formed"
	case EventDeadlineMissed:
		return "deadline-missed"
	case EventDeviceDown:
		return "device-down"
	case EventDeviceUp:
		return "device-up"
	case EventSessionMigrated:
		return "session-migrated"
	case EventDegraded:
		return "degraded"
	case EventRestored:
		return "restored"
	}
	return "unknown"
}

// Event is one scheduling observation. Events are delivered from the
// single-threaded device loop in a deterministic order for every Workers
// setting: global arrival order on the serial timeline; under the scheduler
// plane, arrivals are delivered on arrival and served/missed events when
// their batch forms, so Time is not globally monotone there.
type Event struct {
	Kind EventKind
	// Time is the arrival time of the underlying work (not its completion);
	// for EventBatchFormed it is the step's start time.
	Time    float64
	Session int
	// Class is the session's stream class name; Device its fleet member
	// (-1 before assignment).
	Class  string
	Device int
	// Latency is the completion latency (queueing + service) for
	// EventFrameServed / EventQueryServed / EventDeadlineMissed and the
	// step's service time for EventBatchFormed. For every other kind —
	// including dropped frames and queries, which never complete — it is
	// NaN, so a dropped event can never be mistaken for a real zero-latency
	// sample (test with math.IsNaN, not == 0).
	Latency float64
	// KV is the session's KV length after the event.
	KV int
	// Batch is the number of co-scheduled items for EventBatchFormed
	// (1 for a solo query step), 0 for every other kind.
	Batch int
	// BudgetBefore / BudgetAfter are the session's retrieval budget scales
	// around an EventDegraded / EventRestored step, 0 for every other kind.
	BudgetBefore, BudgetAfter float64
}

// latencyNone is the Event.Latency sentinel for events that carry no
// completion latency (drops, admission outcomes, session lifecycle): NaN is
// unmistakable for a real zero-latency sample.
var latencyNone = math.NaN()

// Observer receives scheduling events; wire one through Config.Observer to
// collect custom metrics without touching the engine.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }
