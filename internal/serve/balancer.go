package serve

import "vrex/internal/named"

// DeviceState is the balancer's live view of one fleet member at assignment
// time.
type DeviceState struct {
	Index int
	// Free is the simulation time at which the device's queue drains.
	Free float64
	// Busy is the accumulated busy seconds so far.
	Busy float64
	// ActiveSessions counts sessions currently placed on the device.
	ActiveSessions int
	// ResidentKV is the summed KV length of the device's active (admitted)
	// sessions — the KV they own, whether its pages are currently in device
	// memory or spilled to the backing store. For physical occupancy under
	// the memory-pressure plane, use FreePages/CapacityPages.
	ResidentKV int
	// ClassSessions counts active sessions per stream class.
	ClassSessions []int
	// FreePages / CapacityPages expose the device's KV pool occupancy when
	// the memory-pressure plane is enabled (both zero otherwise): free and
	// total pages of the device's kvpool.
	FreePages, CapacityPages int
	// DegradedSessions counts resident sessions currently running below full
	// retrieval budget (always zero with the degradation plane disabled).
	DegradedSessions int
	// Down marks a device the control plane took out of service (drain or
	// failure injection). Balancers never see down devices: placement runs
	// over a filtered view that preserves Index. Always false without a
	// controller.
	Down bool
}

// Balancer places arriving sessions on fleet devices. Implementations may
// carry state (e.g. a round-robin cursor); Run calls Reset once before the
// first assignment, so a single value can be reused across runs
// deterministically.
type Balancer interface {
	Name() string
	// Reset prepares the balancer for a run over the given fleet size.
	Reset(devices int)
	// Assign returns the device index for a session of the given class
	// arriving at time now. It must return a value in [0, len(devices)).
	Assign(now float64, class int, devices []DeviceState) int
}

// RoundRobin cycles through devices in index order, ignoring load.
type RoundRobin struct{ next int }

// NewRoundRobin returns the balancer.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Balancer.
func (*RoundRobin) Name() string { return "round-robin" }

// Reset implements Balancer.
func (b *RoundRobin) Reset(int) { b.next = 0 }

// Assign implements Balancer.
func (b *RoundRobin) Assign(_ float64, _ int, devices []DeviceState) int {
	d := b.next % len(devices)
	b.next++
	return d
}

// LeastLoaded picks the device with the fewest active sessions, breaking
// ties by smaller resident KV, earlier queue-drain time, then lower index —
// a deterministic total order.
type LeastLoaded struct{}

// NewLeastLoaded returns the balancer.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Balancer.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Reset implements Balancer.
func (*LeastLoaded) Reset(int) {}

// Assign implements Balancer.
func (*LeastLoaded) Assign(_ float64, _ int, devices []DeviceState) int {
	return leastLoaded(devices)
}

func leastLoaded(devices []DeviceState) int {
	best := 0
	for i := 1; i < len(devices); i++ {
		a, b := &devices[i], &devices[best]
		switch {
		case a.ActiveSessions != b.ActiveSessions:
			if a.ActiveSessions < b.ActiveSessions {
				best = i
			}
		case a.ResidentKV != b.ResidentKV:
			if a.ResidentKV < b.ResidentKV {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	return best
}

// KVAffinity co-locates sessions of the same stream class so a device's
// resident KV working set stays class-homogeneous — sessions sharing a shape
// have matching cluster layouts and prefetch run lengths, which maximises
// the policy's segment-level reuse. Placement is affinity-first under a
// balance constraint: devices already holding more than a balanced share
// (plus one session of slack) are ineligible, and among the rest the session
// joins the device with the most active sessions of its class, falling back
// to least-loaded order on ties.
type KVAffinity struct{}

// NewKVAffinity returns the balancer.
func NewKVAffinity() *KVAffinity { return &KVAffinity{} }

// Name implements Balancer.
func (*KVAffinity) Name() string { return "kv-affinity" }

// Reset implements Balancer.
func (*KVAffinity) Reset(int) {}

// Assign implements Balancer.
func (*KVAffinity) Assign(_ float64, class int, devices []DeviceState) int {
	n := len(devices)
	total := 0
	for i := range devices {
		total += devices[i].ActiveSessions
	}
	// Balanced share of the population including the arriving session,
	// rounded up, plus one session of slack for affinity to act on.
	limit := (total+1+n-1)/n + 1
	best := -1
	for i := range devices {
		if devices[i].ActiveSessions >= limit {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		a, b := &devices[i], &devices[best]
		if a.ClassSessions[class] != b.ClassSessions[class] {
			if a.ClassSessions[class] > b.ClassSessions[class] {
				best = i
			}
			continue
		}
		switch {
		case a.ActiveSessions != b.ActiveSessions:
			if a.ActiveSessions < b.ActiveSessions {
				best = i
			}
		case a.ResidentKV != b.ResidentKV:
			if a.ResidentKV < b.ResidentKV {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	if best < 0 {
		// Unreachable given the slack, but stay safe against future edits.
		return leastLoaded(devices)
	}
	return best
}

// KVPressure places sessions by KV memory headroom: the device with the most
// free pool pages wins, so placement tracks actual memory pressure instead of
// session counts — a session mix with skewed StartKV lengths loads devices
// very unevenly per session. Ties (including the pool-disabled case, where
// every device reports zero free pages) fall back to least-loaded order.
type KVPressure struct{}

// NewKVPressure returns the balancer.
func NewKVPressure() *KVPressure { return &KVPressure{} }

// Name implements Balancer.
func (*KVPressure) Name() string { return "kv-pressure" }

// Reset implements Balancer.
func (*KVPressure) Reset(int) {}

// Assign implements Balancer.
func (*KVPressure) Assign(_ float64, _ int, devices []DeviceState) int {
	best := 0
	for i := 1; i < len(devices); i++ {
		a, b := &devices[i], &devices[best]
		switch {
		case a.FreePages != b.FreePages:
			if a.FreePages > b.FreePages {
				best = i
			}
		case a.ActiveSessions != b.ActiveSessions:
			if a.ActiveSessions < b.ActiveSessions {
				best = i
			}
		case a.ResidentKV != b.ResidentKV:
			if a.ResidentKV < b.ResidentKV {
				best = i
			}
		case a.Free < b.Free:
			best = i
		}
	}
	return best
}

// balancers is the balancer registry: CLIs resolve -balancer flags here.
var balancers = named.New[func() Balancer]("serve", "balancer")

func init() {
	RegisterBalancer("round-robin", func() Balancer { return NewRoundRobin() })
	RegisterBalancer("least-loaded", func() Balancer { return NewLeastLoaded() })
	RegisterBalancer("kv-affinity", func() Balancer { return NewKVAffinity() })
	RegisterBalancer("kv-pressure", func() Balancer { return NewKVPressure() })
}

// RegisterBalancer adds a balancer factory under name (lower-cased);
// duplicates panic — registry names are part of the CLI surface.
func RegisterBalancer(name string, f func() Balancer) { balancers.Register(name, f) }

// BalancerNames returns the registered balancer names, sorted.
func BalancerNames() []string { return balancers.Names() }

// NewBalancer builds a registered balancer by name.
func NewBalancer(name string) (Balancer, error) {
	f, ok := balancers.Lookup(name)
	if !ok {
		return nil, balancers.Unknown(name)
	}
	return f(), nil
}
