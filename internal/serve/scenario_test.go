package serve

import (
	"reflect"
	"testing"

	"vrex/internal/hwsim"
)

// mixConfig is a heterogeneous two-class fleet scenario used across the
// Scenario API tests.
func mixConfig(streams, devices int) Config {
	mix, err := ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		panic(err)
	}
	// Keep the classes query-free so frame accounting is easy to reason
	// about in assertions.
	for i := range mix {
		mix[i].Stream.QueryEvery = 0
		mix[i].Stream.StartKV = 5000
	}
	return Config{
		Dev: hwsim.VRex48(), Pol: hwsim.ReSVModel(),
		Streams: streams, Duration: 20, Classes: mix,
		Devices: devices, DropThreshold: 4, Seed: 11,
	}
}

func TestLegacyConfigEqualsSingleClassMix(t *testing.T) {
	legacy := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 4)
	legacy.Stream.QueryEvery = 9
	viaClasses := legacy
	viaClasses.Classes = []StreamClass{{Name: "default", Weight: 1, Stream: legacy.Stream}}
	a, b := Run(legacy), Run(viaClasses)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("single-class mix diverged from legacy Stream config:\n%+v\n%+v", a, b)
	}
}

func TestMixAssignsAllClasses(t *testing.T) {
	res := Run(mixConfig(16, 1))
	if len(res.PerClass) != 2 {
		t.Fatalf("want 2 class summaries, got %d", len(res.PerClass))
	}
	bySessions := 0
	for _, cm := range res.PerClass {
		if cm.Sessions == 0 {
			t.Fatalf("class %q drew no sessions in a 16-stream run", cm.Class)
		}
		bySessions += cm.Sessions
	}
	if bySessions != 16 || res.Aggregate.Sessions != 16 {
		t.Fatalf("session accounting: per-class %d, aggregate %d, want 16", bySessions, res.Aggregate.Sessions)
	}
	agg := ClassMetrics{}
	for _, cm := range res.PerClass {
		agg.FramesArrived += cm.FramesArrived
		agg.FramesServed += cm.FramesServed
		agg.QueriesServed += cm.QueriesServed
	}
	if agg.FramesArrived != res.Aggregate.FramesArrived || agg.FramesServed != res.Aggregate.FramesServed {
		t.Fatalf("aggregate != sum of classes: %+v vs %+v", res.Aggregate, agg)
	}
}

func TestMixClassShapesDiffer(t *testing.T) {
	// A 4fps session must arrive ~2x the frames of a 2fps session.
	res := Run(mixConfig(24, 4))
	perArrival := map[string]float64{}
	count := map[string]int{}
	for _, m := range res.PerStream {
		perArrival[m.Class] += float64(m.FramesArrived)
		count[m.Class]++
	}
	mean2 := perArrival["2fps"] / float64(count["2fps"])
	mean4 := perArrival["4fps"] / float64(count["4fps"])
	if mean4 < 1.8*mean2 || mean4 > 2.2*mean2 {
		t.Fatalf("4fps/2fps arrival ratio %v, want ~2", mean4/mean2)
	}
}

func TestFleetSpreadsSessions(t *testing.T) {
	res := Run(mixConfig(16, 4))
	if len(res.PerDevice) != 4 {
		t.Fatalf("want 4 device summaries, got %d", len(res.PerDevice))
	}
	for d, dm := range res.PerDevice {
		if dm.Sessions != 4 {
			t.Fatalf("round-robin device %d got %d sessions, want 4", d, dm.Sessions)
		}
	}
	total := 0
	for _, dm := range res.PerDevice {
		total += dm.FramesServed
	}
	if total != res.Aggregate.FramesServed {
		t.Fatalf("device frames %d != aggregate %d", total, res.Aggregate.FramesServed)
	}
}

func TestFleetScalesCapacity(t *testing.T) {
	cfg := mixConfig(1, 1)
	cfg.Duration = 10
	one := MaxRealTimeStreams(cfg, 48)
	cfg.Devices = 4
	cfg.Balancer = NewLeastLoaded()
	four := MaxRealTimeStreams(cfg, 48)
	if four < 2*one {
		t.Fatalf("4 devices sustain %d streams, single device %d; want >= 2x", four, one)
	}
}

func TestBalancersAreDeterministicAndBounded(t *testing.T) {
	for _, name := range BalancerNames() {
		b, err := NewBalancer(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mixConfig(12, 3)
		cfg.Balancer = b
		first := Run(cfg)
		// Reuse the same balancer value: Reset must make runs repeatable.
		second := Run(cfg)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("balancer %q not deterministic across reused runs", name)
		}
		for s, m := range first.PerStream {
			if m.Device < 0 || m.Device >= 3 {
				t.Fatalf("balancer %q placed session %d on device %d", name, s, m.Device)
			}
		}
	}
}

func TestKVAffinityAssign(t *testing.T) {
	b := NewKVAffinity()
	b.Reset(2)
	devs := []DeviceState{
		{Index: 0, ActiveSessions: 2, ClassSessions: []int{2, 0}},
		{Index: 1, ActiveSessions: 2, ClassSessions: []int{0, 2}},
	}
	if d := b.Assign(0, 0, devs); d != 0 {
		t.Fatalf("class 0 should join its clump on device 0, got %d", d)
	}
	if d := b.Assign(0, 1, devs); d != 1 {
		t.Fatalf("class 1 should join its clump on device 1, got %d", d)
	}
	// A device past the balanced share (+1 slack) is ineligible even for its
	// own class: total=4 -> limit ceil(5/2)+1 = 4.
	devs[0] = DeviceState{Index: 0, ActiveSessions: 4, ClassSessions: []int{4, 0}}
	devs[1] = DeviceState{Index: 1, ActiveSessions: 0, ClassSessions: []int{0, 0}}
	if d := b.Assign(0, 0, devs); d != 1 {
		t.Fatalf("overloaded clump must spill, got device %d", d)
	}
}

func TestKVAffinityBalancesLoad(t *testing.T) {
	cfg := mixConfig(12, 2)
	cfg.Balancer = NewKVAffinity()
	res := Run(cfg)
	// The balance constraint keeps per-device session counts within the
	// balanced share plus slack.
	for d, dm := range res.PerDevice {
		if dm.Sessions > 12/2+1 {
			t.Fatalf("device %d holds %d sessions, exceeding share+slack", d, dm.Sessions)
		}
	}
	// And affinity concentrates at least one class: some class must keep a
	// strict majority of its sessions on a single device.
	perClassDev := map[string]map[int]int{}
	perClass := map[string]int{}
	for _, m := range res.PerStream {
		if perClassDev[m.Class] == nil {
			perClassDev[m.Class] = map[int]int{}
		}
		perClassDev[m.Class][m.Device]++
		perClass[m.Class]++
	}
	clumped := false
	for class, devs := range perClassDev {
		for _, n := range devs {
			if 2*n > perClass[class] {
				clumped = true
			}
		}
	}
	if !clumped {
		t.Fatalf("no class clumped on any device: %v", perClassDev)
	}
}

func TestChurnAddsAndRemovesSessions(t *testing.T) {
	cfg := mixConfig(4, 2)
	cfg.Churn = ChurnConfig{ArrivalRate: 0.5, MeanLifetime: 8}
	res := Run(cfg)
	if len(res.PerStream) <= 4 {
		t.Fatalf("open-loop arrivals should add sessions: got %d", len(res.PerStream))
	}
	// With an 8 s mean lifetime over a 20 s run, at least one initial
	// session must depart early and therefore arrive fewer frames than a
	// full-duration session would.
	full := Run(mixConfig(4, 2))
	shorter := false
	for s := 0; s < 4; s++ {
		if res.PerStream[s].FramesArrived < full.PerStream[s].FramesArrived {
			shorter = true
		}
	}
	if !shorter {
		t.Fatal("lifetimes did not truncate any initial session")
	}
}

func TestChurnZeroValueIsInert(t *testing.T) {
	cfg := mixConfig(6, 2)
	a := Run(cfg)
	cfg.Churn = ChurnConfig{}
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-value churn changed results")
	}
}

func TestObserverSeesConsistentEvents(t *testing.T) {
	cfg := mixConfig(6, 2)
	cfg.Churn = ChurnConfig{ArrivalRate: 0.3, MeanLifetime: 10}
	counts := map[EventKind]int{}
	var lastTime float64
	cfg.Observer = ObserverFunc(func(e Event) {
		counts[e.Kind]++
		if e.Time < lastTime {
			t.Fatalf("events out of order: %v after %v", e.Time, lastTime)
		}
		lastTime = e.Time
		if e.Kind != EventSessionStart && e.Device < 0 {
			t.Fatalf("%v event before device assignment", e.Kind)
		}
	})
	res := Run(cfg)
	if counts[EventSessionStart] != len(res.PerStream) || counts[EventSessionEnd] != len(res.PerStream) {
		t.Fatalf("start/end events %d/%d, want %d each",
			counts[EventSessionStart], counts[EventSessionEnd], len(res.PerStream))
	}
	if counts[EventFrameServed] != res.Aggregate.FramesServed {
		t.Fatalf("frame-served events %d != metric %d", counts[EventFrameServed], res.Aggregate.FramesServed)
	}
	if counts[EventFrameDropped] != res.Aggregate.FramesDropped {
		t.Fatalf("frame-dropped events %d != metric %d", counts[EventFrameDropped], res.Aggregate.FramesDropped)
	}
	if counts[EventQueryServed] != res.Aggregate.QueriesServed {
		t.Fatalf("query events %d != metric %d", counts[EventQueryServed], res.Aggregate.QueriesServed)
	}
}

// TestScenarioParallelEquivalence extends the worker-count equivalence
// guarantee to the full Scenario API: mixes, churn and fleets must produce
// identical results for any Workers value.
func TestScenarioParallelEquivalence(t *testing.T) {
	cfg := mixConfig(8, 3)
	cfg.Churn = ChurnConfig{ArrivalRate: 0.4, MeanLifetime: 9}
	cfg.Balancer = NewLeastLoaded()
	cfg.Workers = 1
	seq := Run(cfg)
	for _, w := range []int{2, 8} {
		c := cfg
		c.Workers = w
		if par := Run(c); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential", w)
		}
	}
}

// TestMaxRealTimeStreamsMonotone checks the property the bisection in
// MaxRealTimeStreams depends on: the real-time verdict never flips back to
// true as streams are added, and the bisection answer matches a linear scan.
func TestMaxRealTimeStreamsMonotone(t *testing.T) {
	cfg := baseConfig(hwsim.VRex8(), hwsim.ReSVModel(), 1)
	cfg.Stream.StartKV = 10000
	cfg.Duration = 10
	const limit = 10
	linear := 0
	seenFalse := false
	for n := 1; n <= limit; n++ {
		c := cfg
		c.Streams = n
		if Run(c).RealTime {
			if seenFalse {
				t.Fatalf("real-time verdict non-monotone at %d streams", n)
			}
			linear = n
		} else {
			seenFalse = true
		}
	}
	if got := MaxRealTimeStreams(cfg, limit); got != linear {
		t.Fatalf("bisection %d != linear scan %d", got, linear)
	}
	// Raising the limit can only raise the answer.
	prev := 0
	for _, lim := range []int{1, 2, 4, 8, limit} {
		n := MaxRealTimeStreams(cfg, lim)
		if n < prev {
			t.Fatalf("MaxRealTimeStreams not monotone in limit: %d then %d", prev, n)
		}
		if n > lim {
			t.Fatalf("result %d exceeds limit %d", n, lim)
		}
		prev = n
	}
}

// TestChurnPopulationStableUnderStreams: churned sessions derive their
// schedule, class and lifetime from their arrival ordinal, so changing the
// initial stream count must not re-randomise them — the property that keeps
// MaxRealTimeStreams' bisection valid under churn.
func TestChurnPopulationStableUnderStreams(t *testing.T) {
	mk := func(streams int) Config {
		cfg := mixConfig(streams, 2)
		cfg.Churn = ChurnConfig{ArrivalRate: 0.5, MeanLifetime: 9}
		return cfg
	}
	a := Run(mk(3))
	b := Run(mk(5))
	churnA := a.PerStream[3:]
	churnB := b.PerStream[5:]
	if len(churnA) != len(churnB) {
		t.Fatalf("churn population size changed with Streams: %d vs %d", len(churnA), len(churnB))
	}
	for i := range churnA {
		// Scheduling (and so served counts) may differ under different load;
		// the arrival process and class assignment must not.
		if churnA[i].Class != churnB[i].Class || churnA[i].FramesArrived != churnB[i].FramesArrived {
			t.Fatalf("churn session %d re-randomised: %+v vs %+v", i, churnA[i], churnB[i])
		}
	}
	// And the bisection agrees with a linear scan even with churn enabled.
	cfg := mk(1)
	const limit = 6
	linear := 0
	for n := 1; n <= limit; n++ {
		c := cfg
		c.Streams = n
		if !Run(c).RealTime {
			break
		}
		linear = n
	}
	if got := MaxRealTimeStreams(cfg, limit); got != linear {
		t.Fatalf("bisection %d != linear scan %d under churn", got, linear)
	}
}

func TestAchievedFPSUsesPresenceWindow(t *testing.T) {
	// A churned session present for a fraction of the run still reports its
	// true per-window rate, not a duration-diluted one.
	cfg := mixConfig(2, 2)
	cfg.Churn = ChurnConfig{ArrivalRate: 0.6, MeanLifetime: 6}
	res := Run(cfg)
	for _, m := range res.PerStream[2:] {
		if m.FramesDropped == 0 && m.FramesArrived > 4 && m.AchievedFPS < 0.9 {
			t.Fatalf("drop-free session reports diluted FPS %v: %+v", m.AchievedFPS, m)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Name != "2fps" || mix[0].Weight != 0.7 || mix[1].Stream.FPS != 4 {
		t.Fatalf("mix parsed wrong: %+v", mix)
	}
	if _, err := ParseMix("2fps"); err != nil {
		t.Fatalf("weightless term should default to 1: %v", err)
	}
	for _, bad := range []string{"", "nosuch:1", "2fps:-1", "2fps:zero", "2fps:0.5,2fps:0.5"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestNewBalancerUnknown(t *testing.T) {
	if _, err := NewBalancer("nosuch"); err == nil {
		t.Fatal("unknown balancer should error")
	}
}
