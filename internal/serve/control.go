package serve

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// ControlConfig attaches a fleet controller to a run: at each tick the
// Controller sees the live fleet through a FleetOps facade and may drain or
// fail devices, bring them back, and migrate resident sessions — the
// primitives the cluster tier builds node faults, autoscaling and
// rebalancing from. Ticks are events on the run's own heap (after any
// arrivals at the same instant, before any scheduler step forms), so
// controller decisions are deterministic for every Workers setting. The zero
// value disables the plane entirely and Run reduces exactly to the
// uncontrolled timeline.
type ControlConfig struct {
	// Interval adds periodic ticks at Interval, 2*Interval, ... < Duration
	// (0 disables periodic ticks).
	Interval float64
	// At adds explicit tick times (out-of-window times are ignored).
	At []float64
	// Controller runs at every tick; nil disables the plane.
	Controller func(now float64, ops *FleetOps)
}

func (c ControlConfig) enabled() bool {
	return c.Controller != nil && (c.Interval > 0 || len(c.At) > 0)
}

// tickTimes returns the merged, sorted tick schedule within [0, duration).
func (c ControlConfig) tickTimes(duration float64) []float64 {
	var ts []float64
	if c.Interval > 0 {
		for t := c.Interval; t < duration; t += c.Interval {
			ts = append(ts, t)
		}
	}
	for _, t := range c.At {
		if t >= 0 && t < duration && !math.IsNaN(t) {
			ts = append(ts, t)
		}
	}
	sort.Float64s(ts)
	return ts
}

// MigrationConfig prices live session migration. The cluster tier supplies a
// Cost built on kvpool.Transfer (source page-out over PCIe to its backing
// store) plus a memsim.NICLink leg for cross-node moves; nil makes moves
// free (unit tests only — production configs should always price moves).
type MigrationConfig struct {
	// Cost returns the seconds a live move of kvTokens of KV from device src
	// to device dst occupies each timeline: srcTime lands on the source
	// device (page-out + send), dstTime on the destination (receive +
	// page-in).
	Cost func(src, dst, kvTokens int) (srcTime, dstTime float64)
}

// MigrationMetrics aggregates session mobility across a run; all fields are
// zero when no controller migrated anything.
type MigrationMetrics struct {
	// Live counts completed live migrations (KV moved intact); Lossy counts
	// failure re-placements, where the device's KV state is lost and the
	// session restarts from its class StartKV at the destination.
	Live, Lossy int
	// Tokens is the total KV tokens moved live.
	Tokens int
	// Time is the total seconds migration occupied device timelines (source
	// and destination legs both count).
	Time float64
}

// FleetOps is the controller's handle on the live fleet. All mutations are
// applied synchronously on the single-threaded event loop at the tick's
// timestamp.
type FleetOps struct {
	e  *engine
	at float64
}

// Now returns the tick's simulation time.
func (o *FleetOps) Now() float64 { return o.at }

// Devices returns the live fleet state. The slice is the engine's own —
// treat it as read-only and mutate only through FleetOps methods.
func (o *FleetOps) Devices() []DeviceState { return o.e.devs }

// Down reports whether device d is currently out of service.
func (o *FleetOps) Down(d int) bool { return o.e.devs[d].Down }

// SessionsOn returns the sessions currently occupying device d (assigned
// and not yet released), in session-index order.
func (o *FleetOps) SessionsOn(d int) []int { return o.e.sessionsOn(d) }

// KV returns session s's current KV length in tokens.
func (o *FleetOps) KV(s int) int { return o.e.kv[s] }

// Drain takes device d out of service gracefully: the device stops
// receiving new sessions, and every resident session migrates live to a
// destination the run's balancer picks among the remaining up devices —
// KV pages move at the configured migration cost, charged to both
// timelines. Sessions stay in place (and their frames drop) if no up
// device remains.
func (o *FleetOps) Drain(d int) { o.e.takeDown(d, o.at, false) }

// Fail kills device d: queued work drops, and every resident session loses
// its device-side KV state — it re-enters at a surviving device with its
// class StartKV (a lossy re-placement, no transfer cost).
func (o *FleetOps) Fail(d int) { o.e.takeDown(d, o.at, true) }

// Activate returns device d to service: it becomes eligible for placement
// again and (with the memory-pressure plane) re-admits its waiting queue.
func (o *FleetOps) Activate(d int) {
	e := o.e
	if !e.devs[d].Down {
		return
	}
	e.devs[d].Down = false
	e.nDown--
	e.observeDevice(EventDeviceUp, o.at, d)
	if e.plane != nil {
		e.drainQueue(d, o.at)
	}
}

// Migrate moves one resident session live to device dst (a no-op when the
// session is not resident, already there, or dst is down). Out-of-range
// indices panic.
func (o *FleetOps) Migrate(s, dst int) {
	e := o.e
	if s < 0 || s >= len(e.sessions) || dst < 0 || dst >= e.nDev {
		panic(fmt.Sprintf("serve: Migrate(%d, %d) out of range (%d sessions, %d devices)",
			s, dst, len(e.sessions), e.nDev))
	}
	if !e.resident[s] || e.sessions[s].device == dst || e.devs[dst].Down {
		return
	}
	e.migrateSession(s, dst, o.at, false)
}

// handleControl runs one controller tick.
func (e *engine) handleControl(at float64) {
	e.cfg.Control.Controller(at, &FleetOps{e: e, at: at})
}

// sessionsOn lists the sessions currently occupying device d.
func (e *engine) sessionsOn(d int) []int {
	var out []int
	for s := range e.sessions {
		if e.resident[s] && e.sessions[s].device == d {
			out = append(out, s)
		}
	}
	return out
}

// takeDown marks device d out of service and moves its occupants off:
// live migration on drain, lossy re-placement on failure. Destinations come
// from the run's balancer restricted to up devices; occupants stay (frames
// dropping) when none remains.
func (e *engine) takeDown(d int, at float64, fail bool) {
	if e.devs[d].Down {
		return
	}
	e.devs[d].Down = true
	e.nDown++
	e.observeDevice(EventDeviceDown, at, d)
	if fail && e.sched != nil {
		e.sched.dropReady(d, at)
	}
	for _, s := range e.sessionsOn(d) {
		dst := e.placeAvailable(s, at)
		if dst < 0 {
			continue // nowhere to go: the session stays and its frames drop
		}
		e.migrateSession(s, dst, at, fail)
	}
}

// placeAvailable picks a destination device for session s among the up
// devices through the run's balancer (-1 when every device is down). The
// filtered view preserves DeviceState.Index, which maps the pick back to
// the fleet.
func (e *engine) placeAvailable(s int, at float64) int {
	if e.nDown >= e.nDev {
		return -1
	}
	e.refreshFreePages()
	up := e.upScratch[:0]
	for i := range e.devs {
		if !e.devs[i].Down {
			up = append(up, e.devs[i])
		}
	}
	e.upScratch = up
	d := e.bal.Assign(at, e.sessions[s].class, up)
	if d < 0 || d >= len(up) {
		panic(fmt.Sprintf("serve: balancer %q returned device %d of %d up", e.bal.Name(), d, len(up)))
	}
	return up[d].Index
}

// refreshFreePages syncs the balancer-visible pool occupancy.
func (e *engine) refreshFreePages() {
	if e.plane == nil {
		return
	}
	for i := range e.devs {
		e.devs[i].FreePages = e.plane.pools[i].FreePages()
	}
}

// migrateSession moves session s from its device to dst. A live move
// (lossy=false) prices the KV transfer through cfg.Migration.Cost and
// charges the source and destination timelines; a lossy move (device
// failure) costs nothing but resets the session's KV to its class StartKV.
// Either way the session re-enters admission control at dst, so it may land
// queued or rejected there under memory pressure.
func (e *engine) migrateSession(s, dst int, at float64, lossy bool) {
	src := e.sessions[s].device
	if src == dst {
		return
	}
	class := e.sessions[s].class
	held := e.plane == nil || e.plane.state[s] == sessAdmitted
	if e.alive[s] {
		e.devs[src].ActiveSessions--
		e.devs[src].ClassSessions[class]--
		e.devs[dst].ActiveSessions++
		e.devs[dst].ClassSessions[class]++
	}
	if held {
		e.devs[src].ResidentKV -= e.kv[s]
	}
	if e.deg != nil && e.deg.level[s] > 0 {
		// The session keeps its degradation level across the move; the
		// resident-degraded count follows it to the destination.
		e.devs[src].DegradedSessions--
		e.devs[dst].DegradedSessions++
	}
	if e.plane != nil {
		switch e.plane.state[s] {
		case sessAdmitted:
			e.plane.pools[src].Release(s)
			e.drainQueue(src, at)
		case sessQueued:
			e.removeQueued(src, s)
		}
	}
	var cost float64
	if lossy {
		e.kv[s] = e.classes[class].Stream.StartKV
		e.mig.Lossy++
		e.devMetrics[src].MigrationsOut++
		e.devMetrics[dst].MigrationsIn++
	} else if held {
		var srcT, dstT float64
		if e.cfg.Migration.Cost != nil {
			srcT, dstT = e.cfg.Migration.Cost(src, dst, e.kv[s])
		}
		e.chargePaging(src, at, srcT, StallMigrateSend)
		e.chargePaging(dst, at, dstT, StallMigrateRecv)
		cost = srcT + dstT
		e.mig.Live++
		e.mig.Tokens += e.kv[s]
		e.mig.Time += cost
		e.devMetrics[src].MigrationsOut++
		e.devMetrics[src].MigrationTime += srcT
		e.devMetrics[dst].MigrationsIn++
		e.devMetrics[dst].MigrationTime += dstT
	}
	e.sessions[s].device = dst
	if e.plane == nil {
		e.devs[dst].ResidentKV += e.kv[s]
		e.trackPeak(dst)
	} else {
		e.plane.state[s] = e.admit(s, dst, at)
	}
	if e.sched != nil {
		e.sched.moveReady(s, src, dst, at)
	}
	e.observeMigration(at, s, dst, cost)
}

// removeQueued drops session s from device d's admission queue (it is
// moving elsewhere; a stale entry must never admit it back here).
func (e *engine) removeQueued(d, s int) {
	q := e.plane.queues[d]
	for i, h := range q {
		if h == s {
			e.plane.queues[d] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// observeDevice emits a device-lifecycle event (no session attached).
func (e *engine) observeDevice(kind EventKind, at float64, d int) {
	if !e.observing() {
		return
	}
	e.emit(Event{Kind: kind, Time: at, Session: -1, Device: d, Latency: latencyNone})
}

// observeMigration emits EventSessionMigrated with the destination device
// and the total timeline seconds the move cost (NaN never occurs; lossy
// moves report 0).
func (e *engine) observeMigration(at float64, s, dst int, cost float64) {
	if !e.observing() {
		return
	}
	e.emit(Event{
		Kind: EventSessionMigrated, Time: at, Session: s,
		Class: e.classes[e.sessions[s].class].Name, Device: dst,
		Latency: cost, KV: e.kv[s],
	})
}

// moveReady re-homes session s's queued ready items from device src to dst,
// keeping their policy keys and arrival order, and wakes dst up.
func (r *schedRun) moveReady(s, src, dst int, at float64) {
	kept := r.ready[src][:0]
	var moved []readyItem
	for _, it := range r.ready[src] {
		if it.session == s {
			moved = append(moved, it)
		} else {
			kept = append(kept, it)
		}
	}
	if len(moved) == 0 {
		return
	}
	r.ready[src] = kept
	heap.Init(&r.ready[src])
	r.ready[dst] = append(r.ready[dst], moved...)
	heap.Init(&r.ready[dst])
	if !r.stepScheduled[dst] {
		t := at
		if r.devs[dst].Free > t {
			t = r.devs[dst].Free
		}
		r.scheduleStep(dst, t)
	}
}

// dropReady drops every queued item on device d (device failure): frames
// and queries account as dropped and their pending slots resolve.
func (r *schedRun) dropReady(d int, at float64) {
	e := r.engine
	// Drain in heap order so the drop events observe deterministically.
	for r.ready[d].Len() > 0 {
		it := heap.Pop(&r.ready[d]).(readyItem)
		if it.query {
			e.metrics[it.session].QueriesDropped++
			e.observe(EventQueryDropped, it.at, it.session, latencyNone)
		} else {
			e.metrics[it.session].FramesDropped++
			e.observe(EventFrameDropped, it.at, it.session, latencyNone)
		}
		r.resolve(it.session, at)
	}
}
