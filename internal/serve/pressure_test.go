package serve

import (
	"reflect"
	"runtime"
	"testing"

	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
)

// kvConfig is mixConfig plus an explicit KV pool: capacityBytes of 250-token
// pages on VRex8 (NVMe-backed spill path). 250-token pages make the page
// math round against the 5000-token StartKV of mixConfig (20 pages/session,
// 32.768 MB/page for Llama-3 8B BF16).
func kvConfig(streams, devices int, capacityBytes float64, spill string) Config {
	cfg := mixConfig(streams, devices)
	cfg.Dev = hwsim.VRex8()
	sp, err := kvpool.ParseSpill(spill)
	if err != nil {
		panic(err)
	}
	cfg.KV = KVConfig{Capacity: capacityBytes, PageTokens: 250, Spill: sp}
	return cfg
}

// pageBytes250 is the byte size of one 250-token page at the test policy's
// 16-bit KV precision.
const pageBytes250 = 131072 * 250

// TestKVUnconstrainedMatchesDisabled pins the plane's reduction property
// beyond the golden tests: with the pool enabled but never binding (capacity
// far above the working set, no spilling ever needed), every serving metric
// is identical to the pool-disabled run — the plane only adds its own
// bookkeeping.
func TestKVUnconstrainedMatchesDisabled(t *testing.T) {
	base := mixConfig(8, 2)
	base.Dev = hwsim.VRex8()
	pooled := base
	pooled.KV = KVConfig{Capacity: 1e12, PageTokens: 250}
	a, b := Run(base), Run(pooled)
	if !reflect.DeepEqual(a.PerStream, b.PerStream) {
		t.Fatal("unconstrained pool changed per-stream metrics")
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) || !reflect.DeepEqual(a.Aggregate, b.Aggregate) {
		t.Fatal("unconstrained pool changed class metrics")
	}
	if !reflect.DeepEqual(a.PerDevice, b.PerDevice) {
		t.Fatalf("unconstrained pool changed device metrics:\n%+v\n%+v", a.PerDevice, b.PerDevice)
	}
	if a.Utilization != b.Utilization || a.RealTime != b.RealTime {
		t.Fatal("unconstrained pool changed run verdicts")
	}
	// The enabled plane reports its shape; the disabled one stays zero.
	if a.Memory != (MemoryMetrics{}) {
		t.Fatalf("disabled plane must report zero memory metrics: %+v", a.Memory)
	}
	if b.Memory.CapacityPages == 0 || b.Memory.PagesIn != 0 || b.Memory.SessionsQueued != 0 {
		t.Fatalf("unconstrained pool memory metrics: %+v", b.Memory)
	}
}

func TestPeakResidentKVReported(t *testing.T) {
	// Pool disabled: the satellite metric must still be tracked. On a single
	// device with no churn, every session is present until the end, so the
	// peak is the summed final KV.
	cfg := mixConfig(3, 1)
	res := Run(cfg)
	want := 0
	for _, m := range res.PerStream {
		want += m.FinalKV
	}
	if got := res.PerDevice[0].PeakResidentKV; got != want {
		t.Fatalf("peak resident KV %d, want summed final KV %d", got, want)
	}
}

func TestAdmissionRejectsOversizedWorkingSet(t *testing.T) {
	// 11 pages of capacity cannot ever hold a 20-page working set: every
	// session is rejected and nothing is served.
	cfg := kvConfig(3, 1, 11*pageBytes250, "none")
	res := Run(cfg)
	if res.Memory.SessionsRejected != 3 || res.PerDevice[0].SessionsRejected != 3 {
		t.Fatalf("rejected %d sessions, want 3: %+v", res.Memory.SessionsRejected, res.Memory)
	}
	if res.Aggregate.FramesServed != 0 || res.Aggregate.FramesArrived == 0 {
		t.Fatalf("rejected sessions must drop all frames: %+v", res.Aggregate)
	}
	if res.RealTime {
		t.Fatal("an all-rejected run cannot be real-time")
	}
}

func TestAdmissionQueuesWithoutSpill(t *testing.T) {
	// 25 pages hold one 20-page session (plus growth) but not two; with
	// spilling disabled the second session queues and starves.
	cfg := kvConfig(2, 1, 25*pageBytes250, "none")
	res := Run(cfg)
	if res.Memory.SessionsQueued != 1 {
		t.Fatalf("queued %d sessions, want 1", res.Memory.SessionsQueued)
	}
	served := []int{res.PerStream[0].FramesServed, res.PerStream[1].FramesServed}
	if (served[0] == 0) == (served[1] == 0) {
		t.Fatalf("exactly one session must starve: served %v", served)
	}
	if res.Memory.PagesIn != 0 || res.Memory.PagesOut != 0 {
		t.Fatalf("spilling disabled must move no pages: %+v", res.Memory)
	}
}

func TestQueriesDroppedCounted(t *testing.T) {
	// Same starved-session scenario, with queries: the unadmitted session's
	// queries must be counted as dropped, not silently vanish.
	cfg := kvConfig(2, 1, 25*pageBytes250, "none")
	for i := range cfg.Classes {
		cfg.Classes[i].Stream.QueryEvery = 4
	}
	res := Run(cfg)
	if res.Aggregate.QueriesDropped == 0 {
		t.Fatalf("starved session's queries not counted: %+v", res.Aggregate)
	}
	total := 0
	for _, m := range res.PerStream {
		total += m.QueriesDropped
	}
	if total != res.Aggregate.QueriesDropped {
		t.Fatalf("per-stream dropped queries %d != aggregate %d", total, res.Aggregate.QueriesDropped)
	}
}

func TestQueuedSessionAdmittedAfterDeparture(t *testing.T) {
	// With lifetimes truncating sessions, a departure frees pages and the
	// FIFO queue drains into them.
	cfg := kvConfig(2, 1, 25*pageBytes250, "none")
	cfg.Churn = ChurnConfig{MeanLifetime: 6}
	cfg.Seed = 5 // a seed whose first session departs mid-run
	admitted := 0
	cfg.Observer = ObserverFunc(func(e Event) {
		if e.Kind == EventSessionAdmitted {
			admitted++
		}
	})
	res := Run(cfg)
	if res.Memory.SessionsQueued == 0 {
		t.Fatal("scenario must queue a session")
	}
	if admitted == 0 {
		t.Fatal("a departure must admit the queued session")
	}
	for _, m := range res.PerStream {
		if m.FramesServed == 0 {
			t.Fatalf("late-admitted session never served: %+v", res.PerStream)
		}
	}
}

func TestSpillServesEveryoneAndChargesPaging(t *testing.T) {
	// 30 pages, two 20-page sessions: with LRU spilling both are admitted
	// and both serve frames, at the cost of page traffic charged on the
	// device timeline (visible as inflated latency vs an unconstrained run).
	cfg := kvConfig(2, 1, 30*pageBytes250, "spill(evict=lru,pages=4)")
	res := Run(cfg)
	if res.Memory.SessionsQueued != 0 || res.Memory.SessionsRejected != 0 {
		t.Fatalf("spill must admit everyone: %+v", res.Memory)
	}
	for s, m := range res.PerStream {
		if m.FramesServed == 0 {
			t.Fatalf("session %d starved despite spilling", s)
		}
	}
	if res.Memory.PagesIn == 0 || res.Memory.PagesOut == 0 {
		t.Fatalf("pressure must move pages: %+v", res.Memory)
	}
	if res.Memory.PageInTime <= 0 || res.Memory.PageOutTime <= 0 {
		t.Fatalf("page movement must cost time: %+v", res.Memory)
	}
	free := Run(kvConfig(2, 1, 1000*pageBytes250, "spill(evict=lru,pages=4)"))
	if res.Aggregate.P99 <= free.Aggregate.P99 {
		t.Fatalf("paging tax must show in P99: pressured %v vs free %v",
			res.Aggregate.P99, free.Aggregate.P99)
	}
	if free.Memory.PagesIn != 0 {
		t.Fatalf("unconstrained pool must not page: %+v", free.Memory)
	}
}

func TestAutoCapacityDerivesFromDeviceSpec(t *testing.T) {
	cfg := kvConfig(2, 1, AutoCapacity, "spill(evict=lru,pages=1)")
	res := Run(cfg)
	llm := hwsim.Llama3_8B()
	wantPages := int(cfg.Dev.KVBudgetBytes(llm) / (cfg.Pol.KVBytesPerToken(llm) * 250))
	if res.Memory.CapacityPages != wantPages {
		t.Fatalf("auto capacity %d pages, want %d", res.Memory.CapacityPages, wantPages)
	}
	if res.Memory.PageTokens != 250 {
		t.Fatalf("page tokens %d, want 250", res.Memory.PageTokens)
	}
}

// TestChurnSpillParallelEquivalence extends the worker-count guarantee to
// the memory-pressure plane: churn + spill + the kv-pressure balancer must
// be byte-identical across Workers 1, 4 and GOMAXPROCS.
func TestChurnSpillParallelEquivalence(t *testing.T) {
	cfg := kvConfig(6, 3, 40*pageBytes250, "spill(evict=lru,pages=8)")
	cfg.Churn = ChurnConfig{ArrivalRate: 0.4, MeanLifetime: 8}
	cfg.Balancer = NewKVPressure()
	cfg.Workers = 1
	seq := Run(cfg)
	if seq.Memory.PagesIn == 0 {
		t.Fatal("scenario must actually exercise spilling")
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Workers = w
		if par := Run(c); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential under memory pressure", w)
		}
	}
}

func TestKVPressureBalancerPicksMostFreePages(t *testing.T) {
	b := NewKVPressure()
	b.Reset(3)
	devs := []DeviceState{
		{Index: 0, FreePages: 5, CapacityPages: 40},
		{Index: 1, FreePages: 30, CapacityPages: 40},
		{Index: 2, FreePages: 12, CapacityPages: 40},
	}
	if d := b.Assign(0, 0, devs); d != 1 {
		t.Fatalf("kv-pressure picked device %d, want 1 (most free pages)", d)
	}
	// Pool disabled: all zero free pages -> least-loaded order.
	devs = []DeviceState{
		{Index: 0, ActiveSessions: 3},
		{Index: 1, ActiveSessions: 1},
	}
	if d := b.Assign(0, 0, devs); d != 1 {
		t.Fatalf("kv-pressure tie-break picked %d, want 1 (least loaded)", d)
	}
}

func TestEvictionPoliciesDiverge(t *testing.T) {
	// Under real pressure the eviction policy is load-bearing: at least one
	// policy pair must produce different outcomes on a skewed-size scenario.
	mk := func(evict string) Result {
		cfg := kvConfig(3, 1, 45*pageBytes250, "spill(evict="+evict+",pages=2)")
		cfg.Classes[1].Stream.StartKV = 2500 // skew session sizes
		return Run(cfg)
	}
	a, b, c := mk("lru"), mk("fifo"), mk("largest")
	if reflect.DeepEqual(a.PerStream, b.PerStream) && reflect.DeepEqual(a.PerStream, c.PerStream) {
		t.Fatal("all eviction policies produced identical outcomes under pressure")
	}
}

func TestKVValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"negative capacity":  func(c *Config) { c.KV.Capacity = -2 },
		"negative page size": func(c *Config) { c.KV = KVConfig{Capacity: 1e9, PageTokens: -1} },
		"sub-page capacity":  func(c *Config) { c.KV = KVConfig{Capacity: 1e3, PageTokens: 250} },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic", name)
				}
			}()
			cfg := mixConfig(2, 1)
			mutate(&cfg)
			Run(cfg)
		}()
	}
}
