package serve

import (
	"math"

	"vrex/internal/accuracy"
	"vrex/internal/degrade"
	"vrex/internal/hwsim"
)

// DegradeConfig configures the accuracy-aware graceful-degradation plane:
// a degradation controller (internal/degrade) consulted on the event loop at
// every frame admission and query service. When a session's device is
// KV-pressured or the session is deadline-missing, the controller shrinks
// that session's retrieval budget in bounded quantized steps (each level
// multiplies the budget by Step, never below Floor) and restores it with
// hysteresis when pressure clears. Every step is charged on both planes:
// the hardware step gets cheaper (the session's chunks are priced through
// hwsim.Sim.Scaled / StepReq.RatioScale, fetching proportionally fewer
// tokens), and the Proxy curve charges the functional-retrieval quality
// model, so Result gains per-class accuracy-proxy metrics next to SLO
// attainment.
//
// The zero value (nil Policy) disables the plane entirely: Run reduces
// byte-identically to the undegraded engine and every new metric stays zero.
type DegradeConfig struct {
	// Policy decides per-session target budgets; nil disables the plane.
	// Build one with degrade.Parse ("static(budget=0.5)", "pressure",
	// "deadline", "hybrid") or implement degrade.Controller directly.
	Policy degrade.Controller
	// Step is the multiplicative budget shrink per degradation level, in
	// (0, 1); 0 uses degrade.DefaultStep.
	Step float64
	// Floor is the minimum budget scale any session can reach, in (0, 1];
	// 0 uses degrade.DefaultFloor.
	Floor float64
	// Proxy maps a budget scale in (0, 1] to the fraction of proxy accuracy
	// retained at that budget; nil uses accuracy.BudgetRetention (the curve
	// fitted to the functional ThWics sweep).
	Proxy func(scale float64) float64
}

func (c DegradeConfig) enabled() bool { return c.Policy != nil }

// degradePlane is the per-run state of the degradation plane: per-session
// quantized levels, deadline-streak signals, proxy accounting, and lazily
// built scaled simulators per (device, level). A nil *degradePlane disables
// the plane.
type degradePlane struct {
	pol      degrade.Policy
	proxy    func(float64) float64
	maxLevel int
	// level is each session's quantized degradation level (0 = full budget).
	level []int
	// lastLat is each session's last frame completion latency (NaN until the
	// first frame serves) — the deadline controller's slack input.
	lastLat []float64
	// miss / meet count consecutive frames past / within the class deadline.
	miss, meet []int
	// budgetSum / retainSum / servedN accumulate the per-served-item budget
	// scale and proxy retention for the MeanBudget / AccuracyProxy metrics.
	budgetSum, retainSum []float64
	servedN              []int
	// scaled caches Sim.Scaled results per device and level so pricing never
	// allocates on the hot path after warm-up.
	scaled [][]*hwsim.Sim
}

// newDegradePlane builds the plane for a run, or returns nil when disabled;
// the config has already passed validate.
func newDegradePlane(cfg Config, nSessions, nDev int) *degradePlane {
	if !cfg.Degrade.enabled() {
		return nil
	}
	step := cfg.Degrade.Step
	if step == 0 {
		step = degrade.DefaultStep
	}
	floor := cfg.Degrade.Floor
	if floor == 0 {
		floor = degrade.DefaultFloor
	}
	proxy := cfg.Degrade.Proxy
	if proxy == nil {
		proxy = accuracy.BudgetRetention
	}
	p := &degradePlane{
		pol:       degrade.Policy{Controller: cfg.Degrade.Policy, Step: step, Floor: floor},
		proxy:     proxy,
		level:     make([]int, nSessions),
		lastLat:   make([]float64, nSessions),
		miss:      make([]int, nSessions),
		meet:      make([]int, nSessions),
		budgetSum: make([]float64, nSessions),
		retainSum: make([]float64, nSessions),
		servedN:   make([]int, nSessions),
		scaled:    make([][]*hwsim.Sim, nDev),
	}
	p.maxLevel = p.pol.MaxLevel()
	for s := range p.lastLat {
		p.lastLat[s] = math.NaN()
	}
	return p
}

// budgetOf returns session s's current budget scale (1 with the plane
// disabled or at level 0).
func (e *engine) budgetOf(s int) float64 {
	if e.deg == nil {
		return 1
	}
	return e.deg.pol.Budget(e.deg.level[s])
}

// simFor returns device d's simulator scaled to session s's current budget:
// the undegraded shared Sim at level 0, a cached Scaled copy otherwise. All
// engine pricing (frame steps, query chunks, TPOT, OOM admission) goes
// through it, so a degraded session's work is cheaper everywhere at once.
func (e *engine) simFor(d, s int) *hwsim.Sim {
	if e.deg == nil {
		return e.sims[d]
	}
	lvl := e.deg.level[s]
	if lvl <= 0 {
		return e.sims[d]
	}
	row := e.deg.scaled[d]
	if row == nil {
		row = make([]*hwsim.Sim, e.deg.maxLevel+1)
		e.deg.scaled[d] = row
	}
	if row[lvl] == nil {
		row[lvl] = e.sims[d].Scaled(e.deg.pol.Budget(lvl))
	}
	return row[lvl]
}

// degradeSignals samples the controller inputs for session s on device d at
// time `at`: KV-pool headroom and paging churn (benign defaults with the
// pressure plane disabled), deadline slack from the last served frame, and
// the miss/meet streaks.
func (e *engine) degradeSignals(s, d int, at float64) degrade.Signals {
	dp := e.deg
	sig := degrade.Signals{Session: s, Budget: e.budgetOf(s), FreePageFrac: 1}
	if e.plane != nil {
		pool := e.plane.pools[d]
		if cp := pool.CapacityPages(); cp > 0 {
			sig.FreePageFrac = float64(pool.FreePages()) / float64(cp)
		}
		if at > 0 {
			st := pool.Stats()
			sig.PagingRate = float64(st.PagesIn+st.PagesOut) / at
		}
	}
	slo := e.slo[e.sessions[s].class]
	sig.Slack = slo
	if !math.IsNaN(dp.lastLat[s]) {
		sig.Slack = slo - dp.lastLat[s]
	}
	sig.MissStreak = dp.miss[s]
	sig.MeetStreak = dp.meet[s]
	return sig
}

// degradeDecide runs one controller decision for session s on device d: ask
// the controller for a target budget, move the session's level at most one
// quantized step toward it (degrade.Policy.Decide never overshoots, so a
// fixed target converges monotonically and cannot oscillate), and account
// the transition on the session, device and observer. Both event loops call
// it at every frame admission and query service, before pricing, so the
// decision always applies to the step it gates.
func (e *engine) degradeDecide(s, d int, at float64) {
	dp := e.deg
	if dp == nil {
		return
	}
	target := dp.pol.Target(e.degradeSignals(s, d, at))
	dir := dp.pol.Decide(dp.level[s], target)
	if dir == 0 {
		return
	}
	before := dp.pol.Budget(dp.level[s])
	dp.level[s] += dir
	after := dp.pol.Budget(dp.level[s])
	if dir > 0 {
		e.metrics[s].Degradations++
		e.devMetrics[d].Degradations++
		if dp.level[s] == 1 {
			e.devs[d].DegradedSessions++
		}
		e.observeDegrade(EventDegraded, at, s, before, after)
	} else {
		e.metrics[s].Restorations++
		e.devMetrics[d].Restorations++
		if dp.level[s] == 0 {
			e.devs[d].DegradedSessions--
		}
		e.observeDegrade(EventRestored, at, s, before, after)
	}
}

// degradeServed folds one served frame or query into the plane's accounting:
// the item was served at the session's current budget, so the budget and its
// proxy retention accumulate toward MeanBudget / AccuracyProxy, and frames
// update the deadline streaks the deadline controller reads.
func (e *engine) degradeServed(s int, lat float64, frame bool) {
	dp := e.deg
	if dp == nil {
		return
	}
	b := dp.pol.Budget(dp.level[s])
	dp.budgetSum[s] += b
	dp.retainSum[s] += dp.proxy(b)
	dp.servedN[s]++
	if frame {
		if lat > e.slo[e.sessions[s].class] {
			dp.miss[s]++
			dp.meet[s] = 0
		} else {
			dp.meet[s]++
			dp.miss[s] = 0
		}
		dp.lastLat[s] = lat
	}
}

// observeDegrade emits a budget-transition event with the budget scale
// before and after the step.
func (e *engine) observeDegrade(kind EventKind, at float64, s int, before, after float64) {
	if !e.observing() {
		return
	}
	e.emit(Event{
		Kind: kind, Time: at, Session: s,
		Class: e.classes[e.sessions[s].class].Name, Device: e.sessions[s].device,
		Latency: latencyNone, KV: e.kv[s],
		BudgetBefore: before, BudgetAfter: after,
	})
}
