package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
)

func TestRMSNormUnitRMS(t *testing.T) {
	m := FromRows([][]float32{{3, 4, 0, 0}})
	gain := []float32{1, 1, 1, 1}
	out := RMSNorm(m, gain, 1e-6)
	var ss float64
	for _, v := range out.Row(0) {
		ss += float64(v) * float64(v)
	}
	rms := math.Sqrt(ss / 4)
	if math.Abs(rms-1) > 1e-3 {
		t.Fatalf("post-norm RMS = %v, want ~1", rms)
	}
}

func TestRMSNormGain(t *testing.T) {
	m := FromRows([][]float32{{1, 1}})
	out := RMSNorm(m, []float32{2, 3}, 0)
	if math.Abs(float64(out.At(0, 0))-2) > 1e-5 || math.Abs(float64(out.At(0, 1))-3) > 1e-5 {
		t.Fatalf("gain not applied: %v", out.Row(0))
	}
}

func TestSiLU(t *testing.T) {
	m := FromRows([][]float32{{0, 10, -10}})
	SiLU(m)
	if m.At(0, 0) != 0 {
		t.Fatal("silu(0) != 0")
	}
	if math.Abs(float64(m.At(0, 1))-10) > 1e-3 {
		t.Fatal("silu(10) should be ~10")
	}
	if math.Abs(float64(m.At(0, 2))) > 1e-3 {
		t.Fatal("silu(-10) should be ~0")
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	rng := mathx.NewRNG(3)
	m := NewMatrix(5, 8)
	m.Randomize(rng, 1)
	var before []float64
	for i := 0; i < m.Rows; i++ {
		before = append(before, mathx.Dot(m.Row(i), m.Row(i)))
	}
	RoPE(m, 7, 10000)
	for i := 0; i < m.Rows; i++ {
		after := mathx.Dot(m.Row(i), m.Row(i))
		if math.Abs(after-before[i]) > 1e-3 {
			t.Fatalf("RoPE changed norm of row %d: %v -> %v", i, before[i], after)
		}
	}
}

func TestRoPERelativeProperty(t *testing.T) {
	// dot(RoPE(q,p1), RoPE(k,p2)) depends only on p1-p2: rotating both by the
	// same additional offset must preserve the dot product.
	rng := mathx.NewRNG(4)
	q := NewMatrix(1, 16)
	k := NewMatrix(1, 16)
	q.Randomize(rng, 1)
	k.Randomize(rng, 1)
	q1, k1 := q.Clone(), k.Clone()
	RoPE(q1, 10, 10000)
	RoPE(k1, 3, 10000)
	d1 := mathx.Dot(q1.Row(0), k1.Row(0))
	q2, k2 := q.Clone(), k.Clone()
	RoPE(q2, 110, 10000)
	RoPE(k2, 103, 10000)
	d2 := mathx.Dot(q2.Row(0), k2.Row(0))
	if math.Abs(d1-d2) > 1e-3 {
		t.Fatalf("RoPE relative property violated: %v vs %v", d1, d2)
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	rng := mathx.NewRNG(5)
	m := NewMatrix(1, 8)
	m.Randomize(rng, 1)
	c := m.Clone()
	RoPE(c, 0, 10000)
	for i := range m.Data {
		if math.Abs(float64(m.Data[i]-c.Data[i])) > 1e-6 {
			t.Fatal("RoPE at position 0 should be identity")
		}
	}
}

func TestRoPEOddDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RoPE(NewMatrix(1, 3), 0, 10000)
}

func TestBf16RoundIdempotent(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		once := Bf16Round(v)
		twice := Bf16Round(once)
		return once == twice || (math.IsNaN(float64(once)) && math.IsNaN(float64(twice)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBf16RoundError(t *testing.T) {
	// bf16 has ~3 decimal digits; relative error must be < 2^-8.
	vals := []float32{1.2345, -987.654, 3.14159e-5, 2.71828e10}
	for _, v := range vals {
		r := Bf16Round(v)
		rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
		if rel > 1.0/256 {
			t.Errorf("bf16 relative error too large for %v: %v", v, rel)
		}
	}
}

func TestBf16ExactValues(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 0.5, 2, 256} {
		if Bf16Round(v) != v {
			t.Errorf("Bf16Round(%v) = %v, want exact", v, Bf16Round(v))
		}
	}
}

func TestInt4RoundTripErrorBound(t *testing.T) {
	rng := mathx.NewRNG(6)
	xs := make([]float32, 128)
	for i := range xs {
		xs[i] = rng.Norm32()
	}
	codes, scale, minv := QuantizeInt4(xs)
	back := DequantizeInt4(codes, scale, minv)
	for i := range xs {
		if math.Abs(float64(back[i]-xs[i])) > float64(scale)/2+1e-6 {
			t.Fatalf("int4 error exceeds scale/2 at %d: %v vs %v", i, back[i], xs[i])
		}
	}
}

func TestInt4ConstantInput(t *testing.T) {
	xs := []float32{2, 2, 2}
	codes, scale, minv := QuantizeInt4(xs)
	back := DequantizeInt4(codes, scale, minv)
	for _, v := range back {
		if v != 2 {
			t.Fatalf("constant input round-trip failed: %v", back)
		}
	}
}

func TestInt4Empty(t *testing.T) {
	codes, _, _ := QuantizeInt4(nil)
	if codes != nil {
		t.Fatal("empty input should give nil codes")
	}
}

func TestInt4CodesInRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		xs := make([]float32, 32)
		for i := range xs {
			xs[i] = rng.Norm32() * 10
		}
		codes, _, _ := QuantizeInt4(xs)
		for _, c := range codes {
			if c > 15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
