package tensor

import (
	"testing"

	"vrex/internal/mathx"
)

// TestMatMulTIntoMatchesMatMulT: the in-place kernel must be bit-identical
// to the allocating one for any worker setting.
func TestMatMulTIntoMatchesMatMulT(t *testing.T) {
	rng := mathx.NewRNG(61)
	a := NewMatrix(9, 33)
	b := NewMatrix(17, 33)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	want := MatMulT(a, b)
	dst := NewMatrix(9, 17)
	for i := range dst.Data {
		dst.Data[i] = 99 // must be fully overwritten
	}
	MatMulTInto(dst, a, b)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTIntoShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mis-shaped dst")
		}
	}()
	MatMulTInto(NewMatrix(2, 3), a, b)
}

// TestReshape: growth, shrink and content length semantics.
func TestReshape(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Reshape(4, 5)
	if m.Rows != 4 || m.Cols != 5 || len(m.Data) != 20 {
		t.Fatalf("reshape grow wrong: %v len=%d", m, len(m.Data))
	}
	data := &m.Data[0]
	m.Reshape(2, 2)
	if m.Rows != 2 || m.Cols != 2 || len(m.Data) != 4 {
		t.Fatalf("reshape shrink wrong: %v", m)
	}
	if &m.Data[0] != data {
		t.Fatal("shrinking reshape must not reallocate")
	}
}

// TestMatMulTIntoSequentialAllocFree: with one worker the kernel must not
// allocate (it sits inside ReSV's allocation-free hot path).
func TestMatMulTIntoSequentialAllocFree(t *testing.T) {
	SetWorkers(1)
	t.Cleanup(func() { SetWorkers(0) })
	rng := mathx.NewRNG(62)
	a := NewMatrix(16, 64)
	b := NewMatrix(80, 64)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	dst := NewMatrix(16, 80)
	allocs := testing.AllocsPerRun(50, func() {
		MatMulTInto(dst, a, b)
	})
	if allocs != 0 {
		t.Fatalf("sequential MatMulTInto allocates %v times per call, want 0", allocs)
	}
}
