// Package tensor implements the dense float32 linear-algebra kernels the
// functional transformer, the vision encoder and the ReSV algorithm are built
// on: row-major matrices, (transposed) matrix multiplication, normalisation,
// rotary position embedding, and reduced-precision conversions (bf16, int4)
// used by the KV cache storage models.
package tensor

import (
	"fmt"
	"sync/atomic"

	"vrex/internal/mathx"
	"vrex/internal/parallel"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Reshape resizes m to rows x cols in place, growing the backing slice only
// when capacity is insufficient (scratch-matrix reuse on hot paths). The
// element contents after a Reshape are unspecified.
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float32, need)
	}
	m.Data = m.Data[:need]
	m.Rows, m.Cols = rows, cols
}

// String implements fmt.Stringer with a compact shape description.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// Randomize fills m with N(0, scale) variates drawn from rng.
func (m *Matrix) Randomize(rng *mathx.RNG, scale float32) {
	for i := range m.Data {
		m.Data[i] = rng.Norm32() * scale
	}
}

// matmulGrain is the flop count below which MatMul/MatMulT stay on the
// caller's goroutine: sharding tiny products costs more in hand-off than the
// multiply itself.
const matmulGrain = 1 << 16

// matmulWorkers is the process-wide worker bound for MatMul/MatMulT (these
// kernels sit below every call path, so the knob is a package setting rather
// than a parameter threaded through each caller). 0 means GOMAXPROCS.
var matmulWorkers atomic.Int64

// SetWorkers bounds the worker count MatMul and MatMulT shard across:
// 0 uses GOMAXPROCS, 1 pins the kernels to the caller's goroutine. The CLIs
// wire their -parallel flag here so `-parallel 1` is fully sequential.
// Results are identical for any setting.
func SetWorkers(n int) { matmulWorkers.Store(int64(n)) }

// workersFor resolves the worker count for a product of the given flop
// count.
func workersFor(flops int) int {
	if flops < matmulGrain {
		return 1
	}
	return int(matmulWorkers.Load())
}

// MatMul returns a*b. Panics on shape mismatch. Output rows are independent,
// so large products are sharded row-wise across the worker pool; the result
// is identical for any worker count.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a, b))
	}
	out := NewMatrix(a.Rows, b.Cols)
	// The sequential path runs the plain loop without constructing the
	// fan-out closure, keeping small products allocation-free.
	if w := parallel.Workers(workersFor(a.Rows * a.Cols * b.Cols)); w <= 1 {
		for i := 0; i < a.Rows; i++ {
			matmulRow(a.Row(i), b, out.Row(i))
		}
	} else {
		parallel.ForEach(w, a.Rows, func(i int) {
			matmulRow(a.Row(i), b, out.Row(i))
		})
	}
	return out
}

// matmulRow accumulates one output row: orow += arow * b. The k-loop is
// unrolled 4-wide so each pass touches four B rows per load/store of the
// output row, which is the kernel's memory bottleneck.
//
//vrex:noalloc
func matmulRow(arow []float32, b *Matrix, orow []float32) {
	n := b.Cols
	k := 0
	for ; k+4 <= len(arow); k += 4 {
		a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := b.Data[k*n : k*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		for j := 0; j < n; j++ {
			orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; k < len(arow); k++ {
		av := arow[k]
		if av == 0 {
			continue
		}
		brow := b.Row(k)
		for j := range brow {
			orow[j] += av * brow[j]
		}
	}
}

// MatMulT returns a * b^T: out[i][j] = dot(a.Row(i), b.Row(j)). This is the
// natural layout for attention scores (Q x K^T with K stored row-per-token).
// Like MatMul it shards output rows across the pool above the grain size.
func MatMulT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes a * b^T into dst (which must be pre-shaped to
// a.Rows x b.Rows), overwriting its contents. This is the allocation-free
// kernel ReSV's batched cluster scoring streams Q x RepKey^T through; the
// sequential path avoids the fan-out closure entirely.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v x %v", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTInto dst shape %v, want %dx%d", dst, a.Rows, b.Rows))
	}
	if w := parallel.Workers(workersFor(a.Rows * a.Cols * b.Rows)); w <= 1 {
		for i := 0; i < a.Rows; i++ {
			matmulTRow(a.Row(i), b, dst.Row(i))
		}
	} else {
		parallel.ForEach(w, a.Rows, func(i int) {
			matmulTRow(a.Row(i), b, dst.Row(i))
		})
	}
}

// matmulTRow fills one output row of a * b^T.
//
//vrex:noalloc
func matmulTRow(arow []float32, b *Matrix, orow []float32) {
	for j := 0; j < b.Rows; j++ {
		orow[j] = float32(mathx.Dot(arow, b.Row(j)))
	}
}

// AddInPlace adds b to a element-wise.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies every element of m by s.
func ScaleInPlace(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// RowMean returns the column-wise mean of the given rows of m. Rows may be
// empty, in which case a zero vector is returned.
func RowMean(m *Matrix, rows []int) []float32 {
	mean := make([]float32, m.Cols)
	if len(rows) == 0 {
		return mean
	}
	for _, r := range rows {
		row := m.Row(r)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float32(len(rows))
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}
