// Package tensor implements the dense float32 linear-algebra kernels the
// functional transformer, the vision encoder and the ReSV algorithm are built
// on: row-major matrices, (transposed) matrix multiplication, normalisation,
// rotary position embedding, and reduced-precision conversions (bf16, int4)
// used by the KV cache storage models.
package tensor

import (
	"fmt"

	"vrex/internal/mathx"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String implements fmt.Stringer with a compact shape description.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// Randomize fills m with N(0, scale) variates drawn from rng.
func (m *Matrix) Randomize(rng *mathx.RNG, scale float32) {
	for i := range m.Data {
		m.Data[i] = rng.Norm32() * scale
	}
}

// MatMul returns a*b. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a, b))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT returns a * b^T: out[i][j] = dot(a.Row(i), b.Row(j)). This is the
// natural layout for attention scores (Q x K^T with K stored row-per-token).
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v x %v", a, b))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = float32(mathx.Dot(arow, b.Row(j)))
		}
	}
	return out
}

// AddInPlace adds b to a element-wise.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies every element of m by s.
func ScaleInPlace(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// RowMean returns the column-wise mean of the given rows of m. Rows may be
// empty, in which case a zero vector is returned.
func RowMean(m *Matrix, rows []int) []float32 {
	mean := make([]float32, m.Cols)
	if len(rows) == 0 {
		return mean
	}
	for _, r := range rows {
		row := m.Row(r)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float32(len(rows))
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}
