package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"vrex/internal/mathx"
)

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := mathx.NewRNG(1)
	a := NewMatrix(4, 4)
	a.Randomize(rng, 1)
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatalf("A*I != A at flat index %d", i)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := mathx.NewRNG(2)
	a := NewMatrix(3, 5)
	b := NewMatrix(4, 5)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMulT(a, b)
	// Explicit transpose of b.
	bt := NewMatrix(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := MatMul(a, bt)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddScale(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	AddInPlace(a, b)
	if a.At(0, 0) != 4 || a.At(0, 1) != 6 {
		t.Fatal("AddInPlace wrong")
	}
	ScaleInPlace(a, 0.5)
	if a.At(0, 0) != 2 || a.At(0, 1) != 3 {
		t.Fatal("ScaleInPlace wrong")
	}
}

func TestRowMean(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	mean := RowMean(m, []int{0, 2})
	if mean[0] != 3 || mean[1] != 4 {
		t.Fatalf("RowMean = %v", mean)
	}
	zero := RowMean(m, nil)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("RowMean of no rows should be zero")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A*B)*C == A*(B*C) within float tolerance, for random small matrices.
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		a := NewMatrix(3, 4)
		b := NewMatrix(4, 2)
		c := NewMatrix(2, 3)
		a.Randomize(rng, 0.5)
		b.Randomize(rng, 0.5)
		c.Randomize(rng, 0.5)
		l := MatMul(MatMul(a, b), c)
		r := MatMul(a, MatMul(b, c))
		for i := range l.Data {
			if math.Abs(float64(l.Data[i]-r.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
