package tensor

import (
	"math"
)

// RMSNorm applies root-mean-square normalisation with learned gain to each
// row of m, writing the result into a new matrix: out = x / rms(x) * gain.
// gain must have length m.Cols.
func RMSNorm(m *Matrix, gain []float32, eps float32) *Matrix {
	if len(gain) != m.Cols {
		panic("tensor: RMSNorm gain length mismatch")
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(m.Cols)+float64(eps)))
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v * inv * gain[j]
		}
	}
	return out
}

// SiLU applies x*sigmoid(x) element-wise in place.
func SiLU(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = v / (1 + float32(math.Exp(-float64(v))))
	}
}

// RoPE applies rotary position embedding in place to each row of m, treating
// row i as the token at absolute position basePos+i. The row dimension must
// be even: consecutive pairs (2k, 2k+1) are rotated by angle
// pos * theta^(-2k/d), the standard Llama formulation.
func RoPE(m *Matrix, basePos int, theta float64) {
	d := m.Cols
	if d%2 != 0 {
		panic("tensor: RoPE requires even dimension")
	}
	for i := 0; i < m.Rows; i++ {
		pos := float64(basePos + i)
		row := m.Row(i)
		for k := 0; k < d/2; k++ {
			freq := math.Pow(theta, -2*float64(k)/float64(d))
			angle := pos * freq
			sin, cos := math.Sincos(angle)
			a, b := float64(row[2*k]), float64(row[2*k+1])
			row[2*k] = float32(a*cos - b*sin)
			row[2*k+1] = float32(a*sin + b*cos)
		}
	}
}

// Bf16Round rounds v to bfloat16 precision (truncating the mantissa to 7
// bits with round-to-nearest-even) and returns the result as float32. The KV
// cache storage model uses this to emulate BF16 on-chip precision.
func Bf16Round(v float32) float32 {
	bits := math.Float32bits(v)
	// Round to nearest even at bit 16.
	lsb := (bits >> 16) & 1
	bits += 0x7fff + lsb
	bits &= 0xffff0000
	return math.Float32frombits(bits)
}

// Bf16RoundSlice rounds every element of xs to bfloat16 precision in place.
func Bf16RoundSlice(xs []float32) {
	for i, v := range xs {
		xs[i] = Bf16Round(v)
	}
}

// QuantizeInt4 quantises xs into 4-bit codes with a single per-group scale
// and zero-point (asymmetric, group = whole slice), returning the codes and
// the (scale, minimum) needed to dequantise. This models Oaken-style online
// 4-bit KV quantisation.
func QuantizeInt4(xs []float32) (codes []uint8, scale, minv float32) {
	if len(xs) == 0 {
		return nil, 0, 0
	}
	minv, maxv := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	scale = (maxv - minv) / 15
	if scale == 0 {
		scale = 1
	}
	codes = make([]uint8, len(xs))
	for i, v := range xs {
		q := int((v-minv)/scale + 0.5)
		if q < 0 {
			q = 0
		}
		if q > 15 {
			q = 15
		}
		codes[i] = uint8(q)
	}
	return codes, scale, minv
}

// DequantizeInt4 reverses QuantizeInt4.
func DequantizeInt4(codes []uint8, scale, minv float32) []float32 {
	out := make([]float32, len(codes))
	for i, c := range codes {
		out[i] = float32(c)*scale + minv
	}
	return out
}
