package scenario

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"vrex/internal/cluster"
	"vrex/internal/hwsim"
	"vrex/internal/mathx"
	"vrex/internal/serve"
)

// full exercises every grammar feature except traces.
const full = `# rush hour with a correlated 4fps burst
scenario rush-hour
duration 30
seed 11
streams 4
devices 2
device vrex8
policy rekv(frame=0.58,text=0.31)
balancer least-loaded
scheduler edf
batch-max 8
slo-ms 700
drop 6
kv-capacity 8
spill spill(evict=lru,pages=4)
degrade hybrid(lo=0.15,hi=0.4,step=0.8)
arrivals diurnal(rate=0.8,amp=0.9,period=12,phase=3)
lifetime pareto(shape=1.3,scale=4)
class 2fps(weight=0.7,slo-ms=500)
class 4fps(weight=0.3,priority=0,burst-rate=1.5,burst-at=10,burst-dur=5)
`

func TestParseMarshalRoundTrip(t *testing.T) {
	s, err := Parse("full.vrex", []byte(full))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "rush-hour" || s.Arrival.Kind != "diurnal" || s.Arrival.Phase != 3 ||
		s.Lifetime.Shape != 1.3 || s.Classes[1].Burst == nil || s.Classes[1].Priority != 0 {
		t.Fatalf("parse lost fields: %+v", s)
	}
	m1 := s.Marshal()
	s2, err := Parse("marshal", m1)
	if err != nil {
		t.Fatalf("Marshal output must re-parse: %v\n%s", err, m1)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("Parse(Marshal(s)) != s:\n%+v\n%+v", s, s2)
	}
	if m2 := s2.Marshal(); string(m1) != string(m2) {
		t.Fatalf("Marshal is not a fixed point:\n%s\n%s", m1, m2)
	}
}

func TestParseTraceScenario(t *testing.T) {
	src := `scenario replay
streams 0
arrivals trace
class 2fps(weight=1)
class 4fps(weight=1)
trace at=0,class=2fps,life=8
trace at=1.5,class=4fps,life=0
trace at=3,class=2fps,life=2.5
`
	s, err := Parse("replay.vrex", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trace) != 3 || s.Trace[1].Class != "4fps" || s.Trace[2].Lifetime != 2.5 {
		t.Fatalf("trace lost: %+v", s.Trace)
	}
	s2, err := Parse("marshal", s.Marshal())
	if err != nil || !reflect.DeepEqual(s, s2) {
		t.Fatalf("trace round trip: %v\n%+v\n%+v", err, s, s2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, want string }{
		{"unknown key", "durration 5\n", "unknown key"},
		{"duplicate key", "duration 5\nduration 6\n", "duplicate"},
		{"missing value", "duration\n", "needs a value"},
		{"bad number", "duration twenty\n", "bad number"},
		{"bad arrival", "arrivals bimodal(rate=1)\n", "unknown process"},
		{"bad arrival param", "arrivals poisson(rte=1)\n", "rte"},
		{"bad lifetime", "lifetime weibull(k=1)\n", "unknown distribution"},
		{"bad class", "class warp(weight=1)\n", "unknown stream class"},
		{"repeated class", "class 2fps\nclass 2fps\n", "repeated"},
		{"bad device", "device tpu\n", "unknown device"},
		{"negative duration", "duration -1\n", "duration"},
		{"batch without scheduler", "batch-max 8\n", "needs a scheduler"},
		{"slo without scheduler", "slo-ms 700\n", "needs a scheduler"},
		{"spill without kv", "spill spill(evict=lru)\n", "kv-capacity"},
		{"trace without arrivals", "trace at=0,class=2fps\n", "arrivals trace"},
		{"trace with streams", "streams 2\narrivals trace\ntrace at=0,class=2fps\n", "streams 0"},
		{"trace unknown class", "streams 0\narrivals trace\ntrace at=0,class=4fps\n", "not in the mix"},
		{"trace missing at", "streams 0\narrivals trace\ntrace class=2fps\n", "needs at="},
		{"burst without base", "class 2fps(burst-rate=1,burst-at=0,burst-dur=1)\n", "base arrival process"},
		{"burst partial", "arrivals poisson(rate=1)\nclass 2fps(burst-rate=1)\n", "burst"},
		{"no sessions", "streams 0\n", "no sessions"},
		{"rate flood", "duration 100\narrivals poisson(rate=1e9)\n", "sessions"},
		{"nan rate", "arrivals poisson(rate=nan)\n", "rate"},
		{"bad node list", "nodes warp:2\n", "unknown device"},
		{"router without nodes", "router least-loaded\n", "needs a node list"},
		{"autoscale without nodes", "autoscale queue\n", "needs a node list"},
		{"fault without nodes", "fault drain(node=0,at=5)\n", "need a node list"},
		{"rebalance without nodes", "rebalance-moves 2\n", "need a node list"},
		{"devices with nodes", "nodes vrex8:2\ndevices 2\n", "node list"},
		{"unknown router", "nodes vrex8:2\nrouter warp\n", "router"},
		{"unknown autoscaler", "nodes vrex8:2\nautoscale warp\n", "autoscale"},
		{"fault out of range", "nodes vrex8:2\nfault drain(node=3,at=5)\n", "node 3"},
		{"bad fault kind", "nodes vrex8:2\nfault crash(node=0,at=5)\n", "fault kind"},
		{"initial without autoscale", "nodes vrex8:1,vrex8:1\ninitial-nodes 1\n", "autoscale"},
		{"initial out of range", "nodes vrex8:1,vrex8:1\nautoscale queue\ninitial-nodes 5\n", "out of range"},
		{"slack without moves", "nodes vrex8:2\nrebalance-slack 2\n", "rebalance-moves"},
		{"unknown degrader", "degrade warp\n", "unknown controller"},
		{"degrade typo param", "degrade pressure(low=0.1)\n", "low"},
		{"degrade nan threshold", "degrade pressure(lo=nan)\n", "lo"},
		{"degrade negative threshold", "degrade pressure(lo=-0.1)\n", "lo"},
		{"degrade inverted thresholds", "degrade pressure(lo=0.5,hi=0.2)\n", "inverted"},
		{"degrade static without budget", "degrade static\n", "budget is required"},
		{"degrade budget above one", "degrade static(budget=1.5)\n", "budget"},
		{"degrade bad step", "degrade hybrid(step=1.2)\n", "step"},
		{"degrade bad floor", "degrade deadline(floor=0)\n", "floor"},
		{"degrade negative slack", "degrade deadline(slack=-inf)\n", "slack"},
	} {
		if _, err := Parse(tc.name, []byte(tc.src)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseKVCapacity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"", 0}, {"0", 0}, {"auto", serve.AutoCapacity}, {"8", 8e9}, {"0.5", 5e8},
	} {
		got, err := ParseKVCapacity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKVCapacity(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"-1", "x", "inf", "1e400"} {
		if _, err := ParseKVCapacity(bad); err == nil {
			t.Errorf("ParseKVCapacity(%q) must fail", bad)
		}
	}
}

// legacyConfig hand-builds the serve.Config the CLI flag surface always
// produced for a poisson/exp churn mix, bypassing the scenario layer.
func legacyConfig(t *testing.T) serve.Config {
	t.Helper()
	dev, _ := hwsim.DeviceByName("vrex8")
	pol, err := hwsim.ParsePolicy("resv")
	if err != nil {
		t.Fatal(err)
	}
	bal, err := serve.NewBalancer("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	classes, err := serve.ParseMix("2fps:0.7,4fps:0.3")
	if err != nil {
		t.Fatal(err)
	}
	for i := range classes {
		classes[i].Priority = i
	}
	return serve.Config{
		Dev: dev, Pol: pol, Streams: 6, Duration: 12,
		Classes: classes, Devices: 2, Balancer: bal,
		Churn:         serve.ChurnConfig{ArrivalRate: 0.8, MeanLifetime: 5},
		DropThreshold: 4, Seed: 9,
	}
}

func poissonScenario() *Scenario {
	s := Default()
	s.Duration = 12
	s.Seed = 9
	s.Streams = 6
	s.Devices = 2
	s.Arrival = ArrivalSpec{Kind: "poisson", Rate: 0.8}
	s.Lifetime = LifetimeSpec{Kind: "exp", Mean: 5}
	s.Classes = []ClassSpec{
		{Name: "2fps", Weight: 0.7, Priority: -1},
		{Name: "4fps", Weight: 0.3, Priority: -1},
	}
	return s
}

// TestScenarioReducesToLegacyChurn is the tentpole invariant: the
// constant-rate Poisson / exponential / static-mix scenario compiles to nil
// hooks and reproduces the legacy flag-built run byte-identically, at every
// worker count.
func TestScenarioReducesToLegacyChurn(t *testing.T) {
	s := poissonScenario()
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Churn.Arrivals != nil || cfg.Churn.Lifetime != nil || cfg.Churn.Class != nil {
		t.Fatal("poisson/exp scenario must compile to nil churn hooks")
	}
	if cfg.Churn.ArrivalRate != 0.8 || cfg.Churn.MeanLifetime != 5 {
		t.Fatalf("churn fields: %+v", cfg.Churn)
	}
	want := serve.Run(legacyConfig(t))
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg, err := s.Config()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = workers
		if got := serve.Run(cfg); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: scenario run differs from legacy flag-built run", workers)
		}
	}
}

func TestConfigResolvesFullSurface(t *testing.T) {
	s, err := Parse("full.vrex", []byte(full))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler.Policy == nil || cfg.Scheduler.BatchMax != 8 || cfg.Scheduler.SLO != 0.7 {
		t.Fatalf("scheduler not compiled: %+v", cfg.Scheduler)
	}
	if cfg.KV.Capacity != 8e9 || cfg.KV.Spill.Name() != "spill(evict=lru,pages=4)" {
		t.Fatalf("kv plane not compiled: %+v", cfg.KV)
	}
	if cfg.Churn.Arrivals == nil || cfg.Churn.Class == nil || cfg.Churn.Lifetime == nil {
		t.Fatal("time-varying scenario must compile arrival, class and lifetime hooks")
	}
	if cfg.Degrade.Policy == nil || cfg.Degrade.Policy.Name() != "hybrid" || cfg.Degrade.Step != 0.8 {
		t.Fatalf("degrade plane not compiled: %+v", cfg.Degrade)
	}
	if cfg.Classes[0].SLO != 0.5 || cfg.Classes[0].Priority != 0 || cfg.Classes[1].Priority != 0 {
		t.Fatalf("class surface: %+v", cfg.Classes)
	}
}

func TestDiurnalArrivalsFollowTheRate(t *testing.T) {
	s := Default()
	s.Streams = 0
	s.Duration = 200
	s.Arrival = ArrivalSpec{Kind: "diurnal", Rate: 1, Amp: 1, Period: 200, Phase: 0}
	cc := s.churn()
	times := cc.Arrivals(mathx.NewRNG(42), s.Duration)
	if len(times) == 0 {
		t.Fatal("no arrivals")
	}
	// sin >= 0 on [0, 100): rate in [1, 2]; sin < 0 on (100, 200): clamped
	// toward 0. The first half-period must dominate.
	var hi, lo int
	for _, at := range times {
		if at < 100 {
			hi++
		} else {
			lo++
		}
	}
	if hi <= 3*lo {
		t.Fatalf("diurnal density not followed: %d arrivals in the peak half, %d in the trough", hi, lo)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("arrival times must be strictly increasing")
		}
	}
}

func TestFlashCrowdDensity(t *testing.T) {
	s := Default()
	s.Streams = 0
	s.Duration = 100
	s.Arrival = ArrivalSpec{Kind: "flash", Rate: 0.5, At: 40, Dur: 20, Mult: 8}
	times := s.churn().Arrivals(mathx.NewRNG(7), s.Duration)
	var in, out int
	for _, at := range times {
		if at >= 40 && at < 60 {
			in++
		} else {
			out++
		}
	}
	// The window is 1/5 of the run at 8x the rate: expect ~2x the arrivals of
	// the remaining 4/5 combined.
	if in <= out {
		t.Fatalf("flash window not denser: %d inside vs %d outside", in, out)
	}
}

func TestHeavyTailLifetimes(t *testing.T) {
	s := Default()
	s.Lifetime = LifetimeSpec{Kind: "pareto", Shape: 1.2, Scale: 3}
	draw := s.churn().Lifetime
	rng := mathx.NewRNG(5)
	var over float64
	for i := 0; i < 4096; i++ {
		v := draw(rng, i, 0)
		if v < 3 {
			t.Fatalf("pareto draw %v below scale", v)
		}
		if v > 30 {
			over++
		}
	}
	// P(X > 10*scale) = 10^-1.2 ~ 6.3%: the tail must actually be heavy.
	if over == 0 {
		t.Fatal("pareto tail missing")
	}

	s.Lifetime = LifetimeSpec{Kind: "lognormal", Mu: 1, Sigma: 0.5}
	draw = s.churn().Lifetime
	for i := 0; i < 256; i++ {
		if v := draw(rng, i, 0); !(v > 0) || math.IsInf(v, 0) {
			t.Fatalf("lognormal draw %v", v)
		}
	}
}

func TestBurstTiltsClassMix(t *testing.T) {
	s := Default()
	s.Arrival = ArrivalSpec{Kind: "poisson", Rate: 0.5}
	s.Classes = []ClassSpec{
		{Name: "2fps", Weight: 1, Priority: -1},
		{Name: "4fps", Weight: 1, Priority: -1,
			Burst: &BurstSpec{Rate: 10, At: 10, Dur: 5}},
	}
	pick := s.churn().Class
	rng := mathx.NewRNG(3)
	count := func(at float64) int {
		n := 0
		for i := 0; i < 2000; i++ {
			if pick(rng, i, at) == 1 {
				n++
			}
		}
		return n
	}
	outside, inside := count(5), count(12)
	// Outside the burst the mix is 50/50; inside, class 1 holds 10.25/10.5 of
	// the instantaneous rate.
	if outside < 800 || outside > 1200 {
		t.Fatalf("static mix off: %d/2000 picked the bursting class outside the window", outside)
	}
	if inside < 1800 {
		t.Fatalf("burst must dominate the mix inside the window: %d/2000", inside)
	}
}

// TestRecordReplayReproducesRun closes the loop: record a stochastic churn
// run, compile the recording into a trace-replay scenario, and the replay
// reproduces the original run's results exactly (arrival ordinals keep their
// derived seeds, so even per-frame jitter matches).
func TestRecordReplayReproducesRun(t *testing.T) {
	base := Default()
	base.Name = "rec"
	base.Streams = 0
	base.Duration = 15
	base.Seed = 3
	base.Arrival = ArrivalSpec{Kind: "poisson", Rate: 1.5}
	base.Lifetime = LifetimeSpec{Kind: "exp", Mean: 6}
	base.Classes = []ClassSpec{
		{Name: "2fps", Weight: 0.6, Priority: -1},
		{Name: "4fps", Weight: 0.4, Priority: -1},
	}
	cfg, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	cfg.Observer = rec
	want := serve.Run(cfg)

	replay := rec.Scenario(base)
	if replay.Name != "rec-replay" || replay.Arrival.Kind != "trace" {
		t.Fatalf("replay scenario: %+v", replay)
	}
	if _, err := Parse("replay", replay.Marshal()); err != nil {
		t.Fatalf("recorded scenario must marshal to a parseable file: %v", err)
	}
	cfg2, err := replay.Config()
	if err != nil {
		t.Fatal(err)
	}
	if got := serve.Run(cfg2); !reflect.DeepEqual(got, want) {
		t.Fatal("trace replay did not reproduce the recorded run")
	}
}

func TestAdversarySearchDeterministicAndMonotone(t *testing.T) {
	base := Default()
	base.Name = "adv-base"
	base.Duration = 10
	base.Streams = 2
	base.Scheduler = "edf"
	base.Arrival = ArrivalSpec{Kind: "poisson", Rate: 0.6}
	base.Lifetime = LifetimeSpec{Kind: "exp", Mean: 5}
	opt := SearchOptions{Rounds: 5, Seed: 17, Workers: 1}
	r1, err := Search(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Scenario.Marshal()) != string(r2.Scenario.Marshal()) || r1.Score != r2.Score {
		t.Fatal("search must be deterministic for a fixed seed")
	}
	if r1.Score < r1.BaseScore {
		t.Fatalf("hill climb went downhill: %v < %v", r1.Score, r1.BaseScore)
	}
	if r1.Scenario.Name != "adv-base-adv" {
		t.Fatalf("winner name %q", r1.Scenario.Name)
	}
	if err := r1.Scenario.Validate(); err != nil {
		t.Fatalf("winner must stay valid: %v", err)
	}
	if _, err := Search(Default(), opt); err == nil {
		t.Fatal("search without an arrival process must fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := poissonScenario()
	s.Classes[1].Burst = &BurstSpec{Rate: 1, At: 0, Dur: 1}
	c := s.Clone()
	c.Classes[1].Burst.Rate = 99
	c.Classes[0].Weight = 99
	if s.Classes[1].Burst.Rate == 99 || s.Classes[0].Weight == 99 {
		t.Fatal("Clone must not share class or burst storage")
	}
	s.Faults = []cluster.Fault{{Kind: cluster.FaultDrain, Node: 0, At: 5}}
	c = s.Clone()
	c.Faults[0].At = 99
	if s.Faults[0].At == 99 {
		t.Fatal("Clone must not share fault storage")
	}
}

// clusterSrc exercises every cluster key: heterogeneous nodes with regions
// (canonicalized from loose input spacing / implicit device counts), a
// parameterized router and autoscaler, rebalancing, and repeated fault lines.
const clusterSrc = `scenario geo
duration 30
streams 6
nodes vrex8:2@us, a100@us ,agx:3@edge
router kv-headroom
autoscale queue(hi=2,lo=0.2)
initial-nodes 2
rebalance-moves 4
rebalance-slack 1.5
fault drain(node=1,at=10,recover=20)
fault fail(node=2,at=15)
arrivals poisson(rate=0.4)
lifetime exp(mean=12)
`

func TestClusterScenarioRoundTrip(t *testing.T) {
	s, err := Parse("geo.vrex", []byte(clusterSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsCluster() {
		t.Fatal("nodes line must make the scenario a cluster scenario")
	}
	if want := "vrex8:2@us,a100:1@us,agx:3@edge"; s.Nodes != want {
		t.Fatalf("nodes not canonicalized: %q, want %q", s.Nodes, want)
	}
	if len(s.Faults) != 2 || s.Faults[0].Kind != cluster.FaultDrain || s.Faults[1].Node != 2 {
		t.Fatalf("fault lines lost: %+v", s.Faults)
	}
	m1 := s.Marshal()
	s2, err := Parse("marshal", m1)
	if err != nil {
		t.Fatalf("Marshal output must re-parse: %v\n%s", err, m1)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("Parse(Marshal(s)) != s:\n%+v\n%+v", s, s2)
	}
	if m2 := s2.Marshal(); string(m1) != string(m2) {
		t.Fatalf("Marshal is not a fixed point:\n%s\n%s", m1, m2)
	}
}

func TestClusterConfigCompiles(t *testing.T) {
	s, err := Parse("geo.vrex", []byte(clusterSrc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.ClusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 3 || cfg.Nodes[0].Devices != 2 || cfg.Nodes[2].Region != "edge" {
		t.Fatalf("node list: %+v", cfg.Nodes)
	}
	if cfg.Router == nil || cfg.Router.Name() != "kv-headroom" {
		t.Fatalf("router: %+v", cfg.Router)
	}
	if cfg.Autoscaler == nil || cfg.Autoscaler.Name() != "queue" || cfg.InitialNodes != 2 {
		t.Fatalf("autoscaler: %+v initial %d", cfg.Autoscaler, cfg.InitialNodes)
	}
	if cfg.Rebalance.MaxMoves != 4 || cfg.Rebalance.Slack != 1.5 || len(cfg.Faults) != 2 {
		t.Fatalf("rebalance %+v faults %+v", cfg.Rebalance, cfg.Faults)
	}
	if cfg.NodeBalancer == nil || cfg.NodeBalancer() == nil {
		t.Fatal("node balancer factory must build")
	}
	if cfg.Base.Streams != 6 || cfg.Base.Duration != 30 {
		t.Fatalf("base config lost workload fields: %+v", cfg.Base)
	}
	// The run itself must be live: both the drain and the failure fire.
	res := cluster.Run(cfg)
	if res.Serve.Aggregate.Sessions == 0 {
		t.Fatal("cluster run served nothing")
	}
	if res.Serve.Migrations.Live == 0 {
		t.Fatal("drain fault must live-migrate sessions")
	}
	// A plain scenario refuses to compile as a cluster.
	if _, err := Default().ClusterConfig(); err == nil {
		t.Fatal("ClusterConfig on a non-cluster scenario must error")
	}
}
