package scenario

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"vrex/internal/cluster"
	"vrex/internal/policyspec"
	"vrex/internal/workload"
)

// The .vrex scenario grammar is line-oriented: one "key value" pair per
// line, '#' starts a comment, blank lines are ignored. Scalar keys may
// appear at most once; "class", "trace" and "fault" lines repeat.
// Structured values (arrivals, lifetime, class, fault) reuse the policyspec
// grammar, so scenario files read like the CLI's spec strings. A "nodes"
// line turns the scenario into a cluster run (Scenario.IsCluster):
//
//	scenario rush-hour
//	duration 60
//	arrivals diurnal(rate=0.8,amp=0.9,period=30)
//	lifetime pareto(shape=1.3,scale=4)
//	class 2fps(weight=0.7)
//	class 4fps(weight=0.3,burst-rate=2,burst-at=20,burst-dur=5)
//
// Marshal renders the canonical form — every scalar key in a fixed order,
// floats in their shortest exact representation — and is a fixed point:
// Parse(Marshal(s)) reproduces s, and Marshal(Parse(b)) re-marshals byte
// for byte.

// Parse parses and validates a .vrex scenario. The name argument is used in
// error messages (typically the file path).
func Parse(name string, data []byte) (*Scenario, error) {
	s := Default()
	s.Classes = nil // default mix only when the file declares no class lines
	seen := map[string]bool{}
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, rest := line, ""
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			key, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		key = strings.ToLower(key)
		if key != "class" && key != "trace" && key != "fault" {
			if seen[key] {
				return nil, fmt.Errorf("%s:%d: duplicate key %q", name, ln+1, key)
			}
			seen[key] = true
		}
		if rest == "" {
			return nil, fmt.Errorf("%s:%d: key %q needs a value", name, ln+1, key)
		}
		if err := s.setKey(key, rest); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
		}
	}
	if len(s.Classes) == 0 {
		s.Classes = Default().Classes
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return s, nil
}

// ParseFile reads and parses one .vrex file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

func parseF(key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%s: bad number %q", key, v)
	}
	return f, nil
}

func parseI(key, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s: bad integer %q", key, v)
	}
	return n, nil
}

func (s *Scenario) setKey(key, v string) error {
	var err error
	switch key {
	case "scenario":
		s.Name = strings.ToLower(v)
	case "duration":
		s.Duration, err = parseF(key, v)
	case "seed":
		s.Seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			err = fmt.Errorf("seed: bad integer %q", v)
		}
	case "streams":
		s.Streams, err = parseI(key, v)
	case "devices":
		s.Devices, err = parseI(key, v)
	case "device":
		s.Device = strings.ToLower(v)
	case "policy":
		s.Policy = strings.ToLower(v)
	case "balancer":
		s.Balancer = strings.ToLower(v)
	case "scheduler":
		s.Scheduler = strings.ToLower(v)
	case "batch-max":
		s.BatchMax, err = parseI(key, v)
	case "slo-ms":
		s.SLOms, err = parseF(key, v)
	case "drop":
		s.Drop, err = parseF(key, v)
	case "kv-capacity":
		s.KVCapacity = strings.ToLower(v)
	case "spill":
		s.Spill = strings.ToLower(v)
	case "page-tokens":
		s.PageTokens, err = parseI(key, v)
	case "degrade":
		// "none" is the zero value: canonicalize it away so Marshal stays a
		// fixed point (the line is omitted when the plane is disabled).
		s.Degrade = strings.ToLower(v)
		if s.Degrade == "none" {
			s.Degrade = ""
		}
	case "nodes":
		// Canonicalize at parse time so Marshal's "nodes" line is a fixed
		// point regardless of input spacing / implicit device counts.
		var nodes []cluster.NodeSpec
		if nodes, err = cluster.ParseNodes(v); err == nil {
			s.Nodes = cluster.FormatNodes(nodes)
		}
	case "router":
		s.Router = strings.ToLower(v)
	case "autoscale":
		s.Autoscale = strings.ToLower(v)
	case "initial-nodes":
		s.InitialNodes, err = parseI(key, v)
	case "rebalance-moves":
		s.RebalanceMoves, err = parseI(key, v)
	case "rebalance-slack":
		s.RebalanceSlack, err = parseF(key, v)
	case "fault":
		var fs []cluster.Fault
		if fs, err = cluster.ParseFaults(v); err == nil {
			s.Faults = append(s.Faults, fs...)
		}
	case "arrivals":
		err = s.setArrival(v)
	case "lifetime":
		err = s.setLifetime(v)
	case "class":
		err = s.addClass(v)
	case "trace":
		err = s.addTrace(v)
	default:
		err = fmt.Errorf("unknown key %q (known: scenario, duration, seed, streams, devices, device, policy, balancer, scheduler, batch-max, slo-ms, drop, kv-capacity, spill, page-tokens, degrade, nodes, router, autoscale, initial-nodes, rebalance-moves, rebalance-slack, fault, arrivals, lifetime, class, trace)", key)
	}
	return err
}

func (s *Scenario) setArrival(v string) error {
	sp, err := policyspec.Parse(v)
	if err != nil {
		return fmt.Errorf("arrivals: %v", err)
	}
	a := ArrivalSpec{Kind: sp.Name}
	var known []string
	switch sp.Name {
	case "none", "trace":
	case "poisson":
		a.Rate = sp.Float("rate", 0)
		known = []string{"rate"}
	case "diurnal":
		a.Rate = sp.Float("rate", 0)
		a.Amp = sp.Float("amp", 0)
		a.Period = sp.Float("period", 0)
		a.Phase = sp.Float("phase", 0)
		known = []string{"rate", "amp", "period", "phase"}
	case "flash":
		a.Rate = sp.Float("rate", 0)
		a.At = sp.Float("at", 0)
		a.Dur = sp.Float("dur", 0)
		a.Mult = sp.Float("mult", 1)
		known = []string{"rate", "at", "dur", "mult"}
	default:
		return fmt.Errorf("arrivals: unknown process %q (known: none, poisson, diurnal, flash, trace)", sp.Name)
	}
	if err := sp.CheckConsumed(known...); err != nil {
		return fmt.Errorf("arrivals: %v", err)
	}
	s.Arrival = a
	return nil
}

func (s *Scenario) setLifetime(v string) error {
	sp, err := policyspec.Parse(v)
	if err != nil {
		return fmt.Errorf("lifetime: %v", err)
	}
	l := LifetimeSpec{Kind: sp.Name}
	var known []string
	switch sp.Name {
	case "none":
	case "exp":
		l.Mean = sp.Float("mean", 0)
		known = []string{"mean"}
	case "pareto":
		l.Shape = sp.Float("shape", 0)
		l.Scale = sp.Float("scale", 0)
		known = []string{"shape", "scale"}
	case "lognormal":
		l.Mu = sp.Float("mu", 0)
		l.Sigma = sp.Float("sigma", 0)
		known = []string{"mu", "sigma"}
	default:
		return fmt.Errorf("lifetime: unknown distribution %q (known: none, exp, pareto, lognormal)", sp.Name)
	}
	if err := sp.CheckConsumed(known...); err != nil {
		return fmt.Errorf("lifetime: %v", err)
	}
	s.Lifetime = l
	return nil
}

func (s *Scenario) addClass(v string) error {
	sp, err := policyspec.Parse(v)
	if err != nil {
		return fmt.Errorf("class: %v", err)
	}
	c := ClassSpec{
		Name:     sp.Name,
		Weight:   sp.Float("weight", 1),
		SLOms:    sp.Float("slo-ms", 0),
		Priority: sp.Int("priority", -1),
	}
	if sp.Has("burst-rate") || sp.Has("burst-at") || sp.Has("burst-dur") {
		c.Burst = &BurstSpec{
			Rate: sp.Float("burst-rate", 0),
			At:   sp.Float("burst-at", 0),
			Dur:  sp.Float("burst-dur", 0),
		}
	}
	if err := sp.CheckConsumed("weight", "slo-ms", "priority", "burst-rate", "burst-at", "burst-dur"); err != nil {
		return fmt.Errorf("class: %v", err)
	}
	s.Classes = append(s.Classes, c)
	return nil
}

func (s *Scenario) addTrace(v string) error {
	// Trace lines are bare parameter lists ("at=1.5,class=2fps,life=8");
	// reuse the policyspec parameter grammar via a synthetic name.
	sp, err := policyspec.Parse("t(" + v + ")")
	if err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	e := workload.TraceEvent{
		At:       sp.Float("at", -1),
		Class:    sp.Str("class", ""),
		Lifetime: sp.Float("life", 0),
	}
	if err := sp.CheckConsumed("at", "class", "life"); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	if !sp.Has("at") || e.Class == "" {
		return fmt.Errorf("trace: needs at= and class=")
	}
	s.Trace = append(s.Trace, e)
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Marshal renders the scenario in canonical .vrex form. Marshal output
// re-parses to an equal Scenario and is a fixed point of Parse∘Marshal, the
// property -scenario-dump and the lint gate rely on.
func (s *Scenario) Marshal() []byte {
	var b strings.Builder
	w := func(key, val string) {
		b.WriteString(key)
		b.WriteByte(' ')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	w("scenario", s.Name)
	w("duration", fmtF(s.Duration))
	w("seed", strconv.FormatUint(s.Seed, 10))
	w("streams", strconv.Itoa(s.Streams))
	w("devices", strconv.Itoa(s.Devices))
	w("device", s.Device)
	w("policy", s.Policy)
	w("balancer", s.Balancer)
	w("scheduler", s.Scheduler)
	if s.BatchMax != 0 {
		w("batch-max", strconv.Itoa(s.BatchMax))
	}
	if s.SLOms != 0 {
		w("slo-ms", fmtF(s.SLOms))
	}
	w("drop", fmtF(s.Drop))
	w("kv-capacity", s.KVCapacity)
	w("spill", s.Spill)
	if s.PageTokens != 0 {
		w("page-tokens", strconv.Itoa(s.PageTokens))
	}
	if s.Degrade != "" {
		w("degrade", s.Degrade)
	}
	if s.Nodes != "" {
		w("nodes", s.Nodes)
	}
	if s.Router != "" {
		w("router", s.Router)
	}
	if s.Autoscale != "" {
		w("autoscale", s.Autoscale)
	}
	if s.InitialNodes != 0 {
		w("initial-nodes", strconv.Itoa(s.InitialNodes))
	}
	if s.RebalanceMoves != 0 {
		w("rebalance-moves", strconv.Itoa(s.RebalanceMoves))
	}
	if s.RebalanceSlack != 0 {
		w("rebalance-slack", fmtF(s.RebalanceSlack))
	}
	for _, f := range s.Faults {
		w("fault", cluster.FormatFaults([]cluster.Fault{f}))
	}
	w("arrivals", s.Arrival.Spec())
	w("lifetime", s.Lifetime.Spec())
	for _, c := range s.Classes {
		w("class", c.Spec())
	}
	for _, e := range s.Trace {
		w("trace", fmt.Sprintf("at=%s,class=%s,life=%s", fmtF(e.At), e.Class, fmtF(e.Lifetime)))
	}
	return []byte(b.String())
}

// Spec renders the arrival process in canonical spec-string form.
func (a ArrivalSpec) Spec() string {
	p := policyspec.P
	switch a.Kind {
	case "poisson":
		return policyspec.Format("poisson", p("rate", a.Rate))
	case "diurnal":
		ps := []policyspec.Param{p("rate", a.Rate), p("amp", a.Amp), p("period", a.Period)}
		if a.Phase != 0 {
			ps = append(ps, p("phase", a.Phase))
		}
		return policyspec.Format("diurnal", ps...)
	case "flash":
		return policyspec.Format("flash", p("rate", a.Rate), p("at", a.At), p("dur", a.Dur), p("mult", a.Mult))
	}
	return a.Kind // none, trace
}

// Spec renders the lifetime distribution in canonical spec-string form.
func (l LifetimeSpec) Spec() string {
	p := policyspec.P
	switch l.Kind {
	case "exp":
		return policyspec.Format("exp", p("mean", l.Mean))
	case "pareto":
		return policyspec.Format("pareto", p("shape", l.Shape), p("scale", l.Scale))
	case "lognormal":
		return policyspec.Format("lognormal", p("mu", l.Mu), p("sigma", l.Sigma))
	}
	return l.Kind // none
}

// Spec renders the class in canonical spec-string form.
func (c ClassSpec) Spec() string {
	p := policyspec.P
	ps := []policyspec.Param{p("weight", c.Weight)}
	if c.SLOms != 0 {
		ps = append(ps, p("slo-ms", c.SLOms))
	}
	if c.Priority >= 0 {
		ps = append(ps, p("priority", c.Priority))
	}
	if b := c.Burst; b != nil {
		ps = append(ps, p("burst-rate", b.Rate), p("burst-at", b.At), p("burst-dur", b.Dur))
	}
	return policyspec.Format(c.Name, ps...)
}
