package scenario

import (
	"vrex/internal/serve"
	"vrex/internal/workload"
)

// Recorder is a serve.Observer that accumulates a replayable per-session
// arrival trace from a live run: wire it through Config.Observer, run, then
// turn the recording into a trace-replay scenario with Scenario. Replaying
// that scenario reproduces the run's exact arrival pattern — times, classes
// and lifetimes — with no stochastic churn at all, which is how recorded
// load shapes become committed regression fixtures.
type Recorder struct {
	rec *workload.TraceRecorder
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{rec: workload.NewTraceRecorder()}
}

// Observe implements serve.Observer, capturing session starts and ends.
func (r *Recorder) Observe(e serve.Event) {
	switch e.Kind {
	case serve.EventSessionStart:
		r.rec.Start(e.Session, e.Time, e.Class)
	case serve.EventSessionEnd:
		r.rec.End(e.Session, e.Time)
	default:
		// only session lifecycle shapes the replayed trace
	}
}

// Events returns the recorded arrivals sorted by arrival time.
func (r *Recorder) Events() []workload.TraceEvent { return r.rec.Events() }

// Scenario converts the recording into a trace-replay scenario: base's
// device/policy/scheduler surface with the stochastic load shape replaced by
// the recorded trace (streams 0, arrivals trace, lifetime none, bursts
// stripped — the trace already embodies them).
func (r *Recorder) Scenario(base *Scenario) *Scenario {
	s := base.Clone()
	s.Name = base.Name + "-replay"
	s.Streams = 0
	s.Arrival = ArrivalSpec{Kind: "trace"}
	s.Lifetime = LifetimeSpec{Kind: "none"}
	s.Trace = r.Events()
	for i := range s.Classes {
		s.Classes[i].Burst = nil
	}
	return s
}
