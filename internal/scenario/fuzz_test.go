package scenario

import (
	"bytes"
	"testing"
)

// FuzzParseScenario drives the .vrex parser with arbitrary bytes: Parse must
// never panic, and whenever it accepts an input, Marshal must be a fixed
// point — the canonical form re-parses to an equal scenario that re-marshals
// byte for byte (the property -scenario-dump and the lint gate rely on).
// Seed corpus under testdata/fuzz/FuzzParseScenario; CI runs a short native
// fuzz smoke on top of the corpus regression pass.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte("scenario x\narrivals poisson(rate=0.5)\nlifetime exp(mean=4)\n"))
	f.Add([]byte(full))
	f.Add([]byte("streams 0\narrivals trace\nclass 2fps\ntrace at=0,class=2fps,life=3\n"))
	f.Add([]byte("duration -1\n"))
	f.Add([]byte("# only comments\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		m := s.Marshal()
		s2, err := Parse("fuzz-marshal", m)
		if err != nil {
			t.Fatalf("Marshal output rejected: %v\ninput: %q\nmarshal:\n%s", err, data, m)
		}
		if m2 := s2.Marshal(); !bytes.Equal(m, m2) {
			t.Fatalf("Marshal not a fixed point:\n%s\n----\n%s", m, m2)
		}
	})
}
