package scenario

import (
	"fmt"
	"math"

	"vrex/internal/mathx"
	"vrex/internal/serve"
)

// SearchOptions configure the adversarial scenario search.
type SearchOptions struct {
	// Rounds is the number of mutation rounds (default 24). Each round
	// evaluates one mutated candidate with a full serving run.
	Rounds int
	// Seed drives both the mutation choices and the candidate evaluations;
	// the whole search is deterministic for a given (base, options) pair.
	Seed uint64
	// MaxSessions caps a candidate's expected arrival volume (peak rate x
	// duration, default 1500): the adversary must make the scheduler miss
	// deadlines by *shaping* load, not by declaring an unbounded flood.
	MaxSessions float64
	// Workers is the serve worker count per evaluation (0 = GOMAXPROCS;
	// results are worker-invariant, so this only affects wall time).
	Workers int
}

// SearchResult is the outcome of an adversarial search.
type SearchResult struct {
	// Scenario is the most damaging load shape found (base itself when no
	// mutation beat it).
	Scenario *Scenario
	// Score and BaseScore are the damage metric of the winner and of the
	// unmutated base.
	Score     float64
	BaseScore float64
	// Evals counts full serving runs spent (base + accepted candidates).
	Evals int
}

// Score is the damage metric the adversary maximizes: deadline misses plus
// dropped work, plus the shortfall from full SLO attainment (weighted so a
// run that misses everything dominates one that misses a handful).
func Score(res serve.Result) float64 {
	agg := res.Aggregate
	return float64(agg.DeadlineMisses) +
		float64(agg.FramesDropped+agg.QueriesDropped) +
		100*(1-agg.SLOAttained)
}

// Search hill-climbs over base's load-shape parameters — arrival rates,
// flash-crowd placement, diurnal amplitude and phase, heavy-tail shape,
// per-class bursts — looking for the scenario that maximizes deadline damage
// (Score) for base's scheduler spec. The device/policy/scheduler surface is
// never mutated: the adversary attacks the workload, not the system under
// test. Deterministic for a given (base, options) pair.
func Search(base *Scenario, opt SearchOptions) (SearchResult, error) {
	if err := base.Validate(); err != nil {
		return SearchResult{}, err
	}
	if base.Arrival.Kind == "none" || base.Arrival.Kind == "trace" {
		return SearchResult{}, fmt.Errorf("scenario %s: adversarial search needs a stochastic arrival process (poisson, diurnal or flash)", base.Name)
	}
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 24
	}
	maxSessions := opt.MaxSessions
	if maxSessions <= 0 {
		maxSessions = 1500
	}
	rng := mathx.NewRNG(opt.Seed)

	eval := func(s *Scenario) (float64, error) {
		cfg, err := s.Config()
		if err != nil {
			return 0, err
		}
		cfg.Workers = opt.Workers
		return Score(serve.Run(cfg)), nil
	}

	out := SearchResult{Scenario: base.Clone()}
	score, err := eval(out.Scenario)
	if err != nil {
		return SearchResult{}, err
	}
	out.Score, out.BaseScore, out.Evals = score, score, 1

	for round := 0; round < rounds; round++ {
		cand := mutate(out.Scenario, rng)
		if cand.rateModel().max()*cand.Duration > maxSessions || cand.Validate() != nil {
			continue // mutation stepped out of range: spend the round, keep the incumbent
		}
		s, err := eval(cand)
		if err != nil {
			return SearchResult{}, err
		}
		out.Evals++
		if s > out.Score {
			out.Scenario, out.Score = cand, s
		}
	}
	out.Scenario.Name = base.Name + "-adv"
	return out, nil
}

// mutate returns a copy of s with one load-shape parameter perturbed. Moves
// are drawn from a fixed menu; infeasible results are filtered by the caller.
func mutate(s *Scenario, rng *mathx.RNG) *Scenario {
	c := s.Clone()
	// up draws a multiplicative step in [1.1, 1.6].
	up := func() float64 { return 1.1 + 0.5*rng.Float64() }
	switch rng.Intn(6) {
	case 0: // push the base arrival rate
		c.Arrival.Rate *= up()
	case 1: // sharpen the time variation of the base process
		switch c.Arrival.Kind {
		case "diurnal":
			c.Arrival.Amp = math.Min(1, c.Arrival.Amp+0.2+0.3*rng.Float64())
			c.Arrival.Phase += (rng.Float64() - 0.5) * c.Arrival.Period / 2
		case "flash":
			c.Arrival.Mult *= up()
			c.Arrival.Dur *= up()
		case "poisson": // morph into a flash crowd
			c.Arrival = ArrivalSpec{
				Kind: "flash", Rate: c.Arrival.Rate,
				At:   rng.Float64() * c.Duration / 2,
				Dur:  c.Duration / 4,
				Mult: 2 + 4*rng.Float64(),
			}
		}
	case 2: // relocate the flash window
		if c.Arrival.Kind == "flash" {
			c.Arrival.At = rng.Float64() * math.Max(0, c.Duration-c.Arrival.Dur)
		}
	case 3: // fatten the lifetime tail (longer sessions pile up concurrency)
		switch c.Lifetime.Kind {
		case "exp":
			c.Lifetime.Mean *= up()
		case "pareto":
			c.Lifetime.Shape = math.Max(1.05, c.Lifetime.Shape/up())
			c.Lifetime.Scale *= up()
		case "lognormal":
			c.Lifetime.Sigma += 0.1 + 0.2*rng.Float64()
		}
	case 4: // intensify an existing burst
		var idx []int
		for i, cl := range c.Classes {
			if cl.Burst != nil {
				idx = append(idx, i)
			}
		}
		if len(idx) > 0 {
			b := c.Classes[idx[rng.Intn(len(idx))]].Burst
			b.Rate *= up()
			b.Dur *= up()
		}
	case 5: // aim a correlated burst at the tightest-deadline class
		tgt := 0
		for i, cl := range c.Classes {
			if cl.SLOms > 0 && (c.Classes[tgt].SLOms <= 0 || cl.SLOms < c.Classes[tgt].SLOms) {
				tgt = i
			}
		}
		dur := c.Duration / 5
		c.Classes[tgt].Burst = &BurstSpec{
			Rate: c.rateModel().max()*0.5 + 0.5,
			At:   rng.Float64() * math.Max(0, c.Duration-dur),
			Dur:  dur,
		}
	}
	return c
}
