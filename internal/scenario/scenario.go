// Package scenario is the declarative workload layer of the serving
// simulator: a spec-string-consistent file format (scenarios/*.vrex)
// describing time-varying load — diurnal rate cycles, flash crowds,
// heavy-tailed (Pareto/lognormal) session lifetimes, correlated per-class
// bursts, and replay of recorded per-session arrival traces — compiled into
// the arrival/lifetime/class hooks the serve churn plane consumes
// (serve.ChurnConfig).
//
// The zero-value load shape (constant-rate Poisson arrivals, exponential
// lifetimes, static class weights) compiles to *nil* hooks, so it reduces
// byte-identically to the plain ChurnConfig the CLI flags always built:
// scenario files are a strict superset of the legacy -churn-*/-mix surface,
// and cmd/vrex-sim's flags are now sugar that synthesizes an in-memory
// Scenario (see -scenario-dump).
//
// The package also ships an adversarial generator (Search): a seeded
// hill-climb over scenario load-shape parameters maximizing deadline damage
// for a given scheduler spec, feeding the committed hostile suite under
// scenarios/.
package scenario

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"vrex/internal/cluster"
	"vrex/internal/degrade"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/mathx"
	"vrex/internal/serve"
	"vrex/internal/workload"
)

// ArrivalSpec describes the session arrival process.
//
//	none                                     no churn arrivals
//	poisson(rate=R)                          constant-rate Poisson
//	diurnal(rate=R,amp=A,period=P[,phase=F]) rate R*(1+A*sin(2*pi*(t+F)/P))
//	flash(rate=R,at=T,dur=D,mult=M)          rate R, but R*M during [T,T+D)
//	trace                                    replay the scenario's trace block
type ArrivalSpec struct {
	Kind   string // "none", "poisson", "diurnal", "flash", "trace"
	Rate   float64
	Amp    float64 // diurnal amplitude fraction in [0, 1]
	Period float64 // diurnal period, seconds
	Phase  float64 // diurnal phase shift, seconds
	At     float64 // flash start, seconds
	Dur    float64 // flash duration, seconds
	Mult   float64 // flash rate multiplier
}

// LifetimeSpec describes the session lifetime distribution.
//
//	none                        sessions stay for the rest of the run
//	exp(mean=M)                 exponential (the legacy churn-life flag)
//	pareto(shape=A,scale=X)     Pareto type I: X*(1-u)^(-1/A), heavy-tailed
//	lognormal(mu=M,sigma=S)     exp(M + S*N(0,1))
type LifetimeSpec struct {
	Kind  string // "none", "exp", "pareto", "lognormal"
	Mean  float64
	Shape float64
	Scale float64
	Mu    float64
	Sigma float64
}

// BurstSpec is a correlated per-class burst: extra arrivals of one class at
// Rate/s during [At, At+Dur). Bursts raise the total arrival rate and tilt
// the class mix toward the bursting class inside the window — the correlated
// load shape Poisson churn can never produce.
type BurstSpec struct {
	Rate float64
	At   float64
	Dur  float64
}

// ClassSpec is one component of the scenario's stream mix; Name resolves via
// serve.ClassByName. Priority -1 (the default) falls back to mix order, the
// priority-scheduler convention the CLI always used.
type ClassSpec struct {
	Name     string
	Weight   float64
	SLOms    float64
	Priority int
	Burst    *BurstSpec
}

// Scenario is one parsed .vrex file: the complete description of a serving
// run. Build one with Parse/ParseFile, render the canonical form with
// Marshal, and compile to a runnable configuration with Config.
type Scenario struct {
	Name     string
	Duration float64
	Seed     uint64
	Streams  int
	Devices  int
	Device   string
	Policy   string
	Balancer string
	// Scheduler is a serve scheduler spec ("none" keeps the serial batch-1
	// timeline); BatchMax and SLOms mirror the -batch-max/-slo-ms flags.
	Scheduler string
	BatchMax  int
	SLOms     float64
	Drop      float64
	// KVCapacity is the per-device KV budget: "0" (plane disabled), "auto",
	// or gigabytes; Spill and PageTokens mirror -spill/-page-tokens.
	KVCapacity string
	Spill      string
	PageTokens int
	// Degrade is the graceful-degradation controller spec (""/"none"
	// disables; see internal/degrade: static, pressure, deadline, hybrid),
	// mirroring -degrade.
	Degrade  string
	Arrival  ArrivalSpec
	Lifetime LifetimeSpec
	Classes  []ClassSpec
	// Trace is the recorded per-session arrival trace replayed when
	// Arrival.Kind is "trace".
	Trace []workload.TraceEvent
	// Nodes, when non-empty, turns the scenario into a cluster run (see
	// IsCluster / ClusterConfig): a canonical cluster.ParseNodes list
	// ("vrex8:4@us,a100:2@eu"). The remaining cluster keys only apply then.
	Nodes string
	// Router is the cluster session router spec ("" means round-robin).
	Router string
	// Autoscale is the cluster autoscaler spec (""/"none" disables).
	Autoscale string
	// InitialNodes is the number of nodes in service at t=0 under an
	// autoscaler (0 starts everything).
	InitialNodes int
	// RebalanceMoves / RebalanceSlack configure the per-tick session
	// rebalancer (moves 0 disables it).
	RebalanceMoves int
	RebalanceSlack float64
	// Faults are the injected node drains / failures ("fault" lines).
	Faults []cluster.Fault
}

// Default returns the scenario matching cmd/vrex-sim's serving-flag
// defaults: 8 initial 2fps sessions on one V-Rex8 for 20 s, round-robin, no
// churn, no KV plane, serial timeline.
func Default() *Scenario {
	return &Scenario{
		Name:       "custom",
		Duration:   20,
		Seed:       1,
		Streams:    8,
		Devices:    1,
		Device:     "vrex8",
		Policy:     "resv",
		Balancer:   "round-robin",
		Scheduler:  "none",
		Drop:       4,
		KVCapacity: "0",
		Spill:      "none",
		Arrival:    ArrivalSpec{Kind: "none"},
		Lifetime:   LifetimeSpec{Kind: "none"},
		Classes:    []ClassSpec{{Name: "2fps", Weight: 1, Priority: -1}},
	}
}

// Clone returns a deep copy (Classes, Burst and Trace are not shared).
func (s *Scenario) Clone() *Scenario {
	c := *s
	c.Classes = make([]ClassSpec, len(s.Classes))
	copy(c.Classes, s.Classes)
	for i, cl := range c.Classes {
		if cl.Burst != nil {
			b := *cl.Burst
			c.Classes[i].Burst = &b
		}
	}
	c.Trace = append([]workload.TraceEvent(nil), s.Trace...)
	c.Faults = append([]cluster.Fault(nil), s.Faults...)
	return &c
}

// ParseKVCapacity decodes a kv-capacity value: gigabytes, "auto" (derive
// from the device spec) or "0"/"" (plane disabled), returned in bytes
// (serve.AutoCapacity for auto).
func ParseKVCapacity(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch s {
	case "", "0":
		return 0, nil
	case "auto":
		return serve.AutoCapacity, nil
	}
	gb, err := strconv.ParseFloat(s, 64)
	if err != nil || gb <= 0 || math.IsInf(gb, 0) {
		return 0, fmt.Errorf("bad kv-capacity %q: want gigabytes, 'auto' or 0", s)
	}
	return gb * 1e9, nil
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// maxExpectedSessions bounds the arrival volume a scenario may declare
// (peak rate x duration): a lint-time guard against runaway session
// populations, far above anything the committed suite needs.
const maxExpectedSessions = 1e6

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate checks the scenario semantically: field ranges, registry
// resolution (device, policy, balancer, scheduler, spill, classes) and
// cross-field constraints, with the same rules the CLI flags enforce.
func (s *Scenario) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must match %s", s.Name, nameRE)
	}
	if !(s.Duration > 0) || math.IsInf(s.Duration, 0) {
		return fmt.Errorf("scenario %s: duration must be a positive finite number, got %v", s.Name, s.Duration)
	}
	if s.Streams < 0 {
		return fmt.Errorf("scenario %s: negative streams %d", s.Name, s.Streams)
	}
	if s.Devices < 1 {
		return fmt.Errorf("scenario %s: devices must be >= 1, got %d", s.Name, s.Devices)
	}
	if _, ok := hwsim.DeviceByName(s.Device); !ok {
		return fmt.Errorf("scenario %s: unknown device %q (known: %s)", s.Name, s.Device, strings.Join(hwsim.DeviceNames(), ", "))
	}
	if _, err := hwsim.ParsePolicy(s.Policy); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if _, err := serve.NewBalancer(s.Balancer); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	sched, err := serve.ParseScheduler(s.Scheduler)
	if err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if s.BatchMax < 0 || (s.BatchMax > 0 && sched == nil) {
		return fmt.Errorf("scenario %s: batch-max %d needs a scheduler and must be non-negative", s.Name, s.BatchMax)
	}
	if s.SLOms < 0 || !finite(s.SLOms) || (s.SLOms > 0 && sched == nil) {
		return fmt.Errorf("scenario %s: slo-ms %v needs a scheduler and must be non-negative and finite", s.Name, s.SLOms)
	}
	if s.Drop < 0 || !finite(s.Drop) {
		return fmt.Errorf("scenario %s: drop %v must be non-negative and finite", s.Name, s.Drop)
	}
	capacity, err := ParseKVCapacity(s.KVCapacity)
	if err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	spill, err := kvpool.ParseSpill(s.Spill)
	if err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if s.PageTokens < 0 {
		return fmt.Errorf("scenario %s: negative page-tokens %d", s.Name, s.PageTokens)
	}
	if capacity == 0 && (s.PageTokens != 0 || spill.Evict != nil) {
		return fmt.Errorf("scenario %s: spill and page-tokens need the memory-pressure plane: set kv-capacity", s.Name)
	}
	if _, err := degrade.Parse(s.Degrade); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if err := s.validateCluster(); err != nil {
		return err
	}
	if err := s.validateClasses(); err != nil {
		return err
	}
	if err := s.validateArrival(); err != nil {
		return err
	}
	if err := s.validateLifetime(); err != nil {
		return err
	}
	if s.Streams == 0 && s.Arrival.Kind == "none" {
		return fmt.Errorf("scenario %s: no sessions to serve: set streams >= 1 or an arrival process", s.Name)
	}
	if rm := s.rateModel(); rm.max()*s.Duration > maxExpectedSessions {
		return fmt.Errorf("scenario %s: peak arrival rate %.3g/s over %gs expects more than %g sessions", s.Name, rm.max(), s.Duration, maxExpectedSessions)
	}
	return nil
}

// IsCluster reports whether the scenario describes a cluster run (a "nodes"
// line is present); cluster scenarios compile with ClusterConfig.
func (s *Scenario) IsCluster() bool { return s.Nodes != "" }

func (s *Scenario) validateCluster() error {
	if !s.IsCluster() {
		// The cluster keys are meaningless without a node list; reject them
		// so a typo'd "nodes" line doesn't silently demote the scenario.
		switch {
		case s.Router != "":
			return fmt.Errorf("scenario %s: router needs a node list: set nodes", s.Name)
		case s.Autoscale != "":
			return fmt.Errorf("scenario %s: autoscale needs a node list: set nodes", s.Name)
		case s.InitialNodes != 0:
			return fmt.Errorf("scenario %s: initial-nodes needs a node list: set nodes", s.Name)
		case s.RebalanceMoves != 0 || s.RebalanceSlack != 0:
			return fmt.Errorf("scenario %s: rebalance keys need a node list: set nodes", s.Name)
		case len(s.Faults) > 0:
			return fmt.Errorf("scenario %s: fault lines need a node list: set nodes", s.Name)
		}
		return nil
	}
	nodes, err := cluster.ParseNodes(s.Nodes)
	if err != nil {
		return fmt.Errorf("scenario %s: nodes: %v", s.Name, err)
	}
	if s.Devices != 1 {
		return fmt.Errorf("scenario %s: devices comes from the node list in cluster scenarios (leave devices unset)", s.Name)
	}
	if _, err := cluster.ParseRouter(s.Router); err != nil {
		return fmt.Errorf("scenario %s: router: %v", s.Name, err)
	}
	scaler, err := cluster.ParseAutoscaler(s.Autoscale)
	if err != nil {
		return fmt.Errorf("scenario %s: autoscale: %v", s.Name, err)
	}
	if s.InitialNodes != 0 {
		if scaler == nil {
			return fmt.Errorf("scenario %s: initial-nodes needs an autoscaler to grow the cluster back: set autoscale", s.Name)
		}
		if s.InitialNodes < 0 || s.InitialNodes > len(nodes) {
			return fmt.Errorf("scenario %s: initial-nodes %d out of range [0, %d]", s.Name, s.InitialNodes, len(nodes))
		}
	}
	if s.RebalanceMoves < 0 {
		return fmt.Errorf("scenario %s: negative rebalance-moves %d", s.Name, s.RebalanceMoves)
	}
	if s.RebalanceSlack < 0 || !finite(s.RebalanceSlack) {
		return fmt.Errorf("scenario %s: rebalance-slack %v must be non-negative and finite", s.Name, s.RebalanceSlack)
	}
	if s.RebalanceSlack != 0 && s.RebalanceMoves == 0 {
		return fmt.Errorf("scenario %s: rebalance-slack needs rebalance-moves", s.Name)
	}
	for i, f := range s.Faults {
		if f.Node >= len(nodes) {
			return fmt.Errorf("scenario %s: fault %d targets node %d of a %d-node cluster", s.Name, i, f.Node, len(nodes))
		}
	}
	return nil
}

// ClusterConfig compiles a cluster scenario (IsCluster) into a runnable
// cluster.Config: the scenario's serving planes become the shared node base
// and the cluster keys pick topology, router, autoscaler, rebalancer and
// faults. The caller owns Base.Workers and Base.Observer.
func (s *Scenario) ClusterConfig() (cluster.Config, error) {
	if !s.IsCluster() {
		return cluster.Config{}, fmt.Errorf("scenario %s: not a cluster scenario (no nodes line)", s.Name)
	}
	base, err := s.Config()
	if err != nil {
		return cluster.Config{}, err
	}
	nodes, err := cluster.ParseNodes(s.Nodes)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("scenario %s: nodes: %v", s.Name, err)
	}
	router, err := cluster.ParseRouter(s.Router)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("scenario %s: router: %v", s.Name, err)
	}
	scaler, err := cluster.ParseAutoscaler(s.Autoscale)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("scenario %s: autoscale: %v", s.Name, err)
	}
	balSpec := s.Balancer
	return cluster.Config{
		Nodes:  nodes,
		Base:   base,
		Router: router,
		NodeBalancer: func() serve.Balancer {
			b, err := serve.NewBalancer(balSpec)
			if err != nil {
				panic(fmt.Sprintf("scenario: balancer %q validated but failed to build: %v", balSpec, err))
			}
			return b
		},
		Autoscaler:   scaler,
		InitialNodes: s.InitialNodes,
		Faults:       append([]cluster.Fault(nil), s.Faults...),
		Rebalance:    cluster.RebalanceConfig{MaxMoves: s.RebalanceMoves, Slack: s.RebalanceSlack},
	}, nil
}

func (s *Scenario) validateClasses() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario %s: needs at least one class", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Classes {
		if _, ok := serve.ClassByName(c.Name); !ok {
			return fmt.Errorf("scenario %s: unknown stream class %q (known: %s)", s.Name, c.Name, strings.Join(serve.ClassNames(), ", "))
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario %s: class %q repeated", s.Name, c.Name)
		}
		seen[c.Name] = true
		if !(c.Weight > 0) || math.IsInf(c.Weight, 0) {
			return fmt.Errorf("scenario %s: class %q weight %v must be positive and finite", s.Name, c.Name, c.Weight)
		}
		if c.SLOms < 0 || !finite(c.SLOms) {
			return fmt.Errorf("scenario %s: class %q slo-ms %v must be non-negative and finite", s.Name, c.Name, c.SLOms)
		}
		if c.Priority < -1 {
			return fmt.Errorf("scenario %s: class %q priority %d must be >= 0 (or unset)", s.Name, c.Name, c.Priority)
		}
		if b := c.Burst; b != nil {
			if !(b.Rate > 0) || math.IsInf(b.Rate, 0) || b.At < 0 || !finite(b.At) || !(b.Dur > 0) || math.IsInf(b.Dur, 0) {
				return fmt.Errorf("scenario %s: class %q burst needs burst-rate > 0, burst-at >= 0, burst-dur > 0 (got rate=%v at=%v dur=%v)",
					s.Name, c.Name, b.Rate, b.At, b.Dur)
			}
			if s.Arrival.Kind == "none" || s.Arrival.Kind == "trace" {
				return fmt.Errorf("scenario %s: class %q burst needs a base arrival process (poisson, diurnal or flash)", s.Name, c.Name)
			}
		}
	}
	return nil
}

func (s *Scenario) validateArrival() error {
	a := s.Arrival
	bad := func(field string, v float64) error {
		return fmt.Errorf("scenario %s: arrivals %s: bad %s %v", s.Name, a.Kind, field, v)
	}
	switch a.Kind {
	case "none":
		if len(s.Trace) > 0 {
			return fmt.Errorf("scenario %s: trace events need 'arrivals trace'", s.Name)
		}
	case "poisson":
		if !(a.Rate > 0) || math.IsInf(a.Rate, 0) {
			return bad("rate", a.Rate)
		}
	case "diurnal":
		switch {
		case !(a.Rate > 0) || math.IsInf(a.Rate, 0):
			return bad("rate", a.Rate)
		case a.Amp < 0 || a.Amp > 1 || math.IsNaN(a.Amp):
			return bad("amp", a.Amp)
		case !(a.Period > 0) || math.IsInf(a.Period, 0):
			return bad("period", a.Period)
		case !finite(a.Phase):
			return bad("phase", a.Phase)
		}
	case "flash":
		switch {
		case !(a.Rate > 0) || math.IsInf(a.Rate, 0):
			return bad("rate", a.Rate)
		case a.At < 0 || !finite(a.At):
			return bad("at", a.At)
		case !(a.Dur > 0) || math.IsInf(a.Dur, 0):
			return bad("dur", a.Dur)
		case a.Mult < 0 || !finite(a.Mult):
			return bad("mult", a.Mult)
		}
	case "trace":
		if s.Streams != 0 {
			return fmt.Errorf("scenario %s: trace replay needs streams 0 (every session comes from the trace)", s.Name)
		}
		if s.Lifetime.Kind != "none" {
			return fmt.Errorf("scenario %s: trace replay carries its own lifetimes: set lifetime none", s.Name)
		}
		if len(s.Trace) == 0 {
			return fmt.Errorf("scenario %s: 'arrivals trace' needs at least one trace event", s.Name)
		}
		known := map[string]bool{}
		for _, c := range s.Classes {
			known[c.Name] = true
		}
		for i, e := range s.Trace {
			if e.At < 0 || !finite(e.At) || e.Lifetime < 0 || !finite(e.Lifetime) {
				return fmt.Errorf("scenario %s: trace event %d: at=%v life=%v must be non-negative and finite", s.Name, i, e.At, e.Lifetime)
			}
			if !known[e.Class] {
				return fmt.Errorf("scenario %s: trace event %d references class %q not in the mix", s.Name, i, e.Class)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown arrival process %q (known: none, poisson, diurnal, flash, trace)", s.Name, a.Kind)
	}
	return nil
}

func (s *Scenario) validateLifetime() error {
	l := s.Lifetime
	switch l.Kind {
	case "none":
	case "exp":
		if l.Mean < 0 || !finite(l.Mean) {
			return fmt.Errorf("scenario %s: lifetime exp: bad mean %v", s.Name, l.Mean)
		}
	case "pareto":
		if !(l.Shape > 0) || math.IsInf(l.Shape, 0) || !(l.Scale > 0) || math.IsInf(l.Scale, 0) {
			return fmt.Errorf("scenario %s: lifetime pareto: shape %v and scale %v must be positive and finite", s.Name, l.Shape, l.Scale)
		}
	case "lognormal":
		if !finite(l.Mu) || l.Sigma < 0 || !finite(l.Sigma) {
			return fmt.Errorf("scenario %s: lifetime lognormal: bad mu %v / sigma %v", s.Name, l.Mu, l.Sigma)
		}
	default:
		return fmt.Errorf("scenario %s: unknown lifetime distribution %q (known: none, exp, pareto, lognormal)", s.Name, l.Kind)
	}
	return nil
}

// Config compiles the scenario into a runnable serve.Config: registries
// resolved, the load shape compiled into churn hooks (or, for the
// constant-rate Poisson/exponential/static-mix case, into the plain
// ChurnConfig fields — byte-identical to the legacy flag surface). The
// caller owns Workers and Observer; everything else is set.
func (s *Scenario) Config() (serve.Config, error) {
	if err := s.Validate(); err != nil {
		return serve.Config{}, err
	}
	dev, _ := hwsim.DeviceByName(s.Device)
	pol, err := hwsim.ParsePolicy(s.Policy)
	if err != nil {
		return serve.Config{}, err
	}
	bal, err := serve.NewBalancer(s.Balancer)
	if err != nil {
		return serve.Config{}, err
	}
	sched, err := serve.ParseScheduler(s.Scheduler)
	if err != nil {
		return serve.Config{}, err
	}
	classes := make([]serve.StreamClass, len(s.Classes))
	for i, c := range s.Classes {
		shape, _ := serve.ClassByName(c.Name)
		prio := c.Priority
		if prio < 0 {
			prio = i
		}
		classes[i] = serve.StreamClass{
			Name: c.Name, Weight: c.Weight, Stream: shape,
			SLO: c.SLOms / 1000, Priority: prio,
		}
	}
	cfg := serve.Config{
		Dev: dev, Pol: pol,
		Streams: s.Streams, Duration: s.Duration,
		Classes: classes, Devices: s.Devices, Balancer: bal,
		Churn:         s.churn(),
		DropThreshold: s.Drop, Seed: s.Seed,
	}
	capacity, err := ParseKVCapacity(s.KVCapacity)
	if err != nil {
		return serve.Config{}, err
	}
	if capacity != 0 {
		spill, err := kvpool.ParseSpill(s.Spill)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.KV = serve.KVConfig{Capacity: capacity, PageTokens: s.PageTokens, Spill: spill}
		if _, _, _, err := cfg.KV.PoolShape(dev, pol); err != nil {
			return serve.Config{}, fmt.Errorf("scenario %s: %v", s.Name, err)
		}
	}
	if sched != nil {
		cfg.Scheduler = serve.SchedulerConfig{Policy: sched, BatchMax: s.BatchMax, SLO: s.SLOms / 1000}
	}
	dp, err := degrade.Parse(s.Degrade)
	if err != nil {
		return serve.Config{}, err
	}
	if dp != nil {
		cfg.Degrade = serve.DegradeConfig{Policy: dp.Controller, Step: dp.Step, Floor: dp.Floor}
	}
	return cfg, nil
}

// --- load-shape compilation ---

// rateModel is the scenario's total arrival rate: the base process plus
// every class burst.
type rateModel struct {
	base   ArrivalSpec
	bursts []burstOf
}

type burstOf struct {
	class int
	BurstSpec
}

func (s *Scenario) rateModel() rateModel {
	rm := rateModel{base: s.Arrival}
	for i, c := range s.Classes {
		if c.Burst != nil {
			rm.bursts = append(rm.bursts, burstOf{class: i, BurstSpec: *c.Burst})
		}
	}
	return rm
}

// baseAt is the base process's instantaneous rate at time t.
func (r rateModel) baseAt(t float64) float64 {
	switch r.base.Kind {
	case "poisson":
		return r.base.Rate
	case "diurnal":
		v := r.base.Rate * (1 + r.base.Amp*math.Sin(2*math.Pi*(t+r.base.Phase)/r.base.Period))
		if v < 0 {
			return 0
		}
		return v
	case "flash":
		if t >= r.base.At && t < r.base.At+r.base.Dur {
			return r.base.Rate * r.base.Mult
		}
		return r.base.Rate
	}
	return 0 // none / trace
}

// burstAt is class c's extra burst rate at time t.
func (r rateModel) burstAt(c int, t float64) float64 {
	var v float64
	for _, b := range r.bursts {
		if b.class == c && t >= b.At && t < b.At+b.Dur {
			v += b.Rate
		}
	}
	return v
}

// at is the total arrival rate at time t.
func (r rateModel) at(t float64) float64 {
	v := r.baseAt(t)
	for _, b := range r.bursts {
		if t >= b.At && t < b.At+b.Dur {
			v += b.Rate
		}
	}
	return v
}

// max upper-bounds the total rate over all t (the thinning envelope).
func (r rateModel) max() float64 {
	var m float64
	switch r.base.Kind {
	case "poisson":
		m = r.base.Rate
	case "diurnal":
		m = r.base.Rate * (1 + r.base.Amp)
	case "flash":
		m = r.base.Rate * math.Max(1, r.base.Mult)
	}
	for _, b := range r.bursts {
		m += b.Rate
	}
	return m
}

// varying reports whether the base process is time-varying.
func (r rateModel) varying() bool {
	return r.base.Kind == "diurnal" || r.base.Kind == "flash"
}

// expDraw mirrors the serve churn plane's exponential sampler (clamped away
// from 0 so no two arrivals collide exactly).
func expDraw(rng *mathx.RNG, mean float64) float64 {
	d := -mean * math.Log(1-rng.Float64())
	if d <= 0 {
		return mean * 1e-12
	}
	return d
}

// churn compiles the load shape into serve.ChurnConfig. Constant-rate
// Poisson arrivals, exponential lifetimes and a static class mix compile to
// the plain rate fields with nil hooks — the exact objects the legacy CLI
// flags built, so the zero-value scenario reduces byte-identically.
func (s *Scenario) churn() serve.ChurnConfig {
	var cc serve.ChurnConfig
	rm := s.rateModel()

	if s.Arrival.Kind == "trace" {
		times := make([]float64, len(s.Trace))
		classIdx := make([]int, len(s.Trace))
		lives := make([]float64, len(s.Trace))
		byName := map[string]int{}
		for i, c := range s.Classes {
			byName[c.Name] = i
		}
		for i, e := range s.Trace {
			times[i] = e.At
			classIdx[i] = byName[e.Class]
			lives[i] = e.Lifetime
		}
		cc.Arrivals = func(rng *mathx.RNG, duration float64) []float64 { return times }
		cc.Class = func(rng *mathx.RNG, ordinal int, start float64) int {
			if ordinal < len(classIdx) {
				return classIdx[ordinal]
			}
			return 0
		}
		cc.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 {
			if ordinal < len(lives) {
				return lives[ordinal]
			}
			return 0
		}
		return cc
	}

	switch {
	case rm.varying() || len(rm.bursts) > 0:
		// Time-varying total rate: Lewis-Shedler thinning against the
		// envelope rate. Deterministic for a given rng.
		if lmax := rm.max(); lmax > 0 {
			cc.Arrivals = func(rng *mathx.RNG, duration float64) []float64 {
				var times []float64
				for t := expDraw(rng, 1/lmax); t < duration; t += expDraw(rng, 1/lmax) {
					if rng.Float64()*lmax < rm.at(t) {
						times = append(times, t)
					}
				}
				return times
			}
		}
	default:
		cc.ArrivalRate = s.Arrival.Rate // poisson or none (0)
	}

	if len(rm.bursts) > 0 {
		// Correlated class mix: an arrival at time t is class c with
		// probability proportional to its share of the base rate plus its own
		// burst rate — the burst both raises the total rate and tilts the mix.
		weights := make([]float64, len(s.Classes))
		var wsum float64
		for i, c := range s.Classes {
			weights[i] = c.Weight
			wsum += c.Weight
		}
		cc.Class = func(rng *mathx.RNG, ordinal int, start float64) int {
			lb := rm.baseAt(start)
			total := lb
			for _, b := range rm.bursts {
				if start >= b.At && start < b.At+b.Dur {
					total += b.Rate
				}
			}
			u := rng.Float64()
			if total <= 0 {
				// No instantaneous rate (e.g. an initial session at a dead
				// instant): fall back to the static weights.
				x := u * wsum
				for c := range weights {
					x -= weights[c]
					if x < 0 {
						return c
					}
				}
				return len(weights) - 1
			}
			x := u * total
			for c := range weights {
				x -= weights[c]/wsum*lb + rm.burstAt(c, start)
				if x < 0 {
					return c
				}
			}
			return len(weights) - 1
		}
	}

	switch s.Lifetime.Kind {
	case "exp":
		cc.MeanLifetime = s.Lifetime.Mean
	case "pareto":
		shape, scale := s.Lifetime.Shape, s.Lifetime.Scale
		cc.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 {
			return scale * math.Pow(1-rng.Float64(), -1/shape)
		}
	case "lognormal":
		mu, sigma := s.Lifetime.Mu, s.Lifetime.Sigma
		cc.Lifetime = func(rng *mathx.RNG, ordinal int, start float64) float64 {
			return math.Exp(mu + sigma*rng.Norm())
		}
	}
	return cc
}
