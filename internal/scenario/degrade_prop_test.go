package scenario

import (
	"fmt"
	"testing"

	"vrex/internal/degrade"
	"vrex/internal/serve"
)

// degradeBase is the pressured load shape the adversarial property tests
// mutate: a flash crowd of long-context sessions over a pool two sessions
// deep, with the hybrid controller armed.
const degradeBase = `scenario degrade-prop
duration 16
seed 3
streams 2
balancer kv-pressure
scheduler edf
batch-max 4
slo-ms 700
kv-capacity 6
spill spill(evict=lru,pages=4)
degrade hybrid(lo=0.15,hi=0.4)
arrivals flash(rate=0.25,at=6,dur=6,mult=4)
lifetime exp(mean=8)
class longctx(weight=0.6,slo-ms=600)
class 2fps(weight=0.4,slo-ms=900)
`

// TestAdversarialDegradeBudgetProperties drives the degradation plane with
// adversarially searched load shapes and checks the properties that hold for
// ANY workload: every budget step stays within [floor, 1], degrade steps
// shrink and restore steps grow the budget, per-session budget trajectories
// reconstruct exactly from the event stream, and once pressure has cleared
// for good the tail of each session's trajectory restores monotonically.
func TestAdversarialDegradeBudgetProperties(t *testing.T) {
	base, err := Parse("degrade-prop", []byte(degradeBase))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := degrade.Parse(base.Degrade)
	if err != nil {
		t.Fatal(err)
	}
	floor := pol.Floor
	seeds := []uint64{1, 9}
	rounds := 6
	if testing.Short() {
		seeds, rounds = seeds[:1], 3
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Search(base, SearchOptions{Rounds: rounds, Seed: seed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := res.Scenario.Config()
			if err != nil {
				t.Fatal(err)
			}
			type step struct {
				kind          serve.EventKind
				before, after float64
			}
			trace := map[int][]step{}
			cfg.Observer = serve.ObserverFunc(func(e serve.Event) {
				if e.Kind == serve.EventDegraded || e.Kind == serve.EventRestored {
					trace[e.Session] = append(trace[e.Session], step{e.Kind, e.BudgetBefore, e.BudgetAfter})
				}
			})
			out := serve.Run(cfg)
			if len(trace) == 0 {
				t.Fatal("adversarial run never engaged the degradation plane; the properties below would be vacuous")
			}
			const eps = 1e-9
			for s, steps := range trace {
				cur := 1.0
				lastDegrade := -1
				for i, st := range steps {
					if st.before < floor-eps || st.before > 1+eps || st.after < floor-eps || st.after > 1+eps {
						t.Fatalf("session %d step %d: budget %v -> %v escapes [%v, 1]", s, i, st.before, st.after, floor)
					}
					if st.before != cur {
						t.Fatalf("session %d step %d: BudgetBefore %v, trajectory says %v", s, i, st.before, cur)
					}
					if st.kind == serve.EventDegraded {
						if st.after >= st.before {
							t.Fatalf("session %d step %d: degrade did not shrink budget (%v -> %v)", s, i, st.before, st.after)
						}
						lastDegrade = i
					} else if st.after <= st.before {
						t.Fatalf("session %d step %d: restore did not grow budget (%v -> %v)", s, i, st.before, st.after)
					}
					cur = st.after
				}
				// Once the final degrade has happened, pressure has cleared
				// for good: the tail must restore strictly monotonically.
				for i := lastDegrade + 2; i < len(steps); i++ {
					if steps[i].after <= steps[i-1].after {
						t.Fatalf("session %d: post-pressure restores not monotone at step %d (%v then %v)",
							s, i, steps[i-1].after, steps[i].after)
					}
				}
			}
			for s, m := range out.PerStream {
				if m.MeanBudget != 0 && (m.MeanBudget < floor-eps || m.MeanBudget > 1+eps) {
					t.Fatalf("session %d: MeanBudget %v escapes [%v, 1]", s, m.MeanBudget, floor)
				}
			}
		})
	}
}

// TestAdversarialPressureNeedsPressure pins the headroom property: with the
// KV plane disabled every device reports full free-page headroom (far above
// any hi threshold), so a pressure controller must never degrade a session,
// no matter how hostile the searched load shape is.
func TestAdversarialPressureNeedsPressure(t *testing.T) {
	base, err := Parse("degrade-prop", []byte(degradeBase))
	if err != nil {
		t.Fatal(err)
	}
	base.Degrade = "pressure(lo=0.1,hi=0.3)"
	base.KVCapacity = "0" // no pool: FreePageFrac pins at 1 > hi
	base.Spill = "none"
	base.Balancer = "round-robin"
	res, err := Search(base, SearchOptions{Rounds: 3, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := res.Scenario.Config()
	if err != nil {
		t.Fatal(err)
	}
	out := serve.Run(cfg)
	if n := out.Aggregate.Degradations; n != 0 {
		t.Fatalf("pressure controller degraded %d times with no KV pressure", n)
	}
	if out.Aggregate.MeanBudget != 1 {
		t.Fatalf("MeanBudget = %v, want exactly 1 with an idle degradation plane", out.Aggregate.MeanBudget)
	}
}
