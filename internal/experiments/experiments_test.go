package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Sessions: 2, Seed: 7, Quick: true}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"fig4a", "fig4b", "fig4c", "fig5", "fig7", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "tab1", "tab2", "tab3",
		"sweep-thwics", "sweep-thhd", "sweep-nhp", "scale", "multiturn",
		"fleet", "memory", "slo", "scenarios", "cluster", "pareto",
		"telemetry",
	}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("have %d experiments, want %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", quickOpts(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestGet(t *testing.T) {
	if Get("fig13") == nil {
		t.Fatal("fig13 runner missing")
	}
	if Get("bogus") != nil {
		t.Fatal("bogus runner should be nil")
	}
}

// Fast, pure perf-plane experiments: verify each produces non-empty tables
// and key headline numbers.

func TestFig4a(t *testing.T) {
	ts := Fig4aMemoryFootprint(quickOpts())
	if len(ts) != 1 || ts[0].NumRows() == 0 {
		t.Fatal("fig4a empty")
	}
	out := ts[0].String()
	// The cache must exceed 32 GB within minutes.
	if !strings.Contains(out, "true") {
		t.Fatal("fig4a should show capacity exceeded")
	}
}

func TestFig4b(t *testing.T) {
	ts := Fig4bLatencyBreakdown(quickOpts())
	if len(ts) != 1 || ts[0].NumRows() != 6 {
		t.Fatal("fig4b should have 6 KV points")
	}
	// Prefill dominance at long contexts (paper: 83% at 80K).
	out := ts[0].String()
	if !strings.Contains(out, "80000") {
		t.Fatal("missing 80K row")
	}
}

func TestFig4c(t *testing.T) {
	ts := Fig4cRetrievalOverhead(quickOpts())
	if len(ts) != 1 || ts[0].NumRows() < 2 {
		t.Fatal("fig4c malformed")
	}
}

func TestFig13(t *testing.T) {
	ts := Fig13LatencyEnergy(quickOpts())
	if len(ts) != 8 { // 4 tables x 2 tiers
		t.Fatalf("fig13 tables = %d, want 8", len(ts))
	}
	for _, tb := range ts {
		if tb.NumRows() == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
	}
}

func TestFig14(t *testing.T) {
	ts := Fig14E2EBreakdown(quickOpts())
	if len(ts) != 1 || ts[0].NumRows() != 20 { // 5 kv x 4 systems
		t.Fatalf("fig14 rows = %d, want 20", ts[0].NumRows())
	}
}

func TestFig15(t *testing.T) {
	ts := Fig15Throughput(quickOpts())
	out := ts[0].String()
	if !strings.Contains(out, "OOM") {
		t.Fatal("fig15 must show OOM points")
	}
	if !strings.Contains(out, "V-Rex8") {
		t.Fatal("fig15 missing V-Rex8 row")
	}
}

func TestFig16(t *testing.T) {
	ts := Fig16Ablation(quickOpts())
	if ts[0].NumRows() != 4 {
		t.Fatal("fig16 should have 4 ablation steps")
	}
}

func TestFig17(t *testing.T) {
	ts := Fig17Bandwidth(quickOpts())
	if ts[0].NumRows() < 10 {
		t.Fatal("fig17 trace too short")
	}
}

func TestFig18(t *testing.T) {
	ts := Fig18Roofline(quickOpts())
	if ts[0].NumRows() != 3 {
		t.Fatal("fig18 should have 3 systems")
	}
}

func TestTab1(t *testing.T) {
	ts := Table1Hardware(quickOpts())
	if ts[0].NumRows() != 4 {
		t.Fatal("tab1 should list 4 devices")
	}
}

func TestTab3(t *testing.T) {
	ts := Table3AreaPower(quickOpts())
	if len(ts) != 2 {
		t.Fatal("tab3 should emit 2 tables")
	}
	if !strings.Contains(ts[0].String(), "KVMU") {
		t.Fatal("tab3 missing KVMU row")
	}
}

// Functional experiments (slower): run in quick mode.

func TestFig5(t *testing.T) {
	ts := Fig5Pipeline(quickOpts())
	if len(ts) != 4 { // 3 schedules + summary
		t.Fatalf("fig5 tables = %d, want 4", len(ts))
	}
	// Summary: each stage strictly faster than the previous.
	out := ts[3].String()
	if !strings.Contains(out, "vanilla") {
		t.Fatal("fig5 summary missing vanilla row")
	}
}

func TestFig7(t *testing.T) {
	ts := Fig7Similarity(quickOpts())
	if len(ts) != 2 {
		t.Fatal("fig7 should emit 2 tables")
	}
}

func TestFig20(t *testing.T) {
	ts := Fig20RatioDistribution(quickOpts())
	if len(ts) != 3 {
		t.Fatal("fig20 should emit 3 tables")
	}
	if ts[0].NumRows() != 6 {
		t.Fatalf("fig20 per-layer rows = %d, want 6", ts[0].NumRows())
	}
}

func TestTab2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("functional accuracy sweep")
	}
	ts := Table2Accuracy(quickOpts())
	if len(ts) != 2 || ts[0].NumRows() != 5 {
		t.Fatal("tab2 malformed")
	}
}

func TestFig19Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("functional accuracy sweep")
	}
	ts := Fig19ReSVAblation(quickOpts())
	if ts[0].NumRows() != 3 {
		t.Fatal("fig19 should have 3 variants")
	}
	// Full ReSV must have the largest speedup.
	out := ts[0].String()
	if !strings.Contains(out, "ReSV") {
		t.Fatal("fig19 missing ReSV row")
	}
}

func TestScale(t *testing.T) {
	ts := ScaleServing(quickOpts())
	if len(ts) != 2 {
		t.Fatal("scale should emit 2 tables")
	}
	if ts[0].NumRows() != 6 {
		t.Fatalf("scale capacity rows = %d, want 6", ts[0].NumRows())
	}
}

func TestMultiTurnQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("functional multi-turn sweep")
	}
	ts := MultiTurnCoherence(quickOpts())
	if len(ts) != 1 || ts[0].NumRows() != 3 {
		t.Fatal("multiturn malformed")
	}
}

func TestSweepsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweeps")
	}
	for name, r := range map[string]Runner{
		"thwics": SweepThWics, "thhd": SweepThHD, "nhp": SweepNHp,
	} {
		ts := r(quickOpts())
		if len(ts) != 1 || ts[0].NumRows() < 2 {
			t.Fatalf("sweep %s malformed", name)
		}
	}
}

func TestRunRendersAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range []string{"fig4a", "fig13", "fig15", "tab1", "tab3"} {
		var buf bytes.Buffer
		if err := Run(id, quickOpts(), &buf); err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("Run(%s) produced no output", id)
		}
	}
}
