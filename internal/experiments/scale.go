package experiments

import (
	"vrex/internal/hwsim"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// ScaleServing quantifies the paper's closing claim ("clear potential for
// scalable deployment in large-scale server environments"): the maximum
// number of concurrent 2 FPS streams each system serves in real time
// (>= 95% of frames on time), at mid-session KV lengths, plus per-stream
// quality at a fixed stream count.
func ScaleServing(opts Options) []*report.Table {
	duration := 20.0
	limit := 32
	if opts.Quick {
		duration = 8
		limit = 8
	}
	mk := func(dev hwsim.DeviceSpec, pol hwsim.PolicyModel, kv int) serve.Config {
		sc := serve.DefaultStreamConfig()
		sc.QueryEvery = 0
		sc.StartKV = kv
		return serve.Config{
			Dev: dev, Pol: pol, Streams: 1, Duration: duration,
			Stream: sc, DropThreshold: 4, Seed: opts.Seed,
			Workers: opts.Parallel,
		}
	}
	type sys struct {
		dev hwsim.DeviceSpec
		pol hwsim.PolicyModel
	}
	edge := []sys{
		{hwsim.AGXOrin(), hwsim.FlexGenModel()},
		{hwsim.AGXOrin(), hwsim.ReKVModel()},
		{hwsim.VRex8(), hwsim.ReSVModel()},
	}
	server := []sys{
		{hwsim.A100(), hwsim.FlexGenModel()},
		{hwsim.A100(), hwsim.ReKVModel()},
		{hwsim.VRex48(), hwsim.ReSVModel()},
	}

	cap := report.NewTable("Scale: max concurrent real-time 2 FPS streams",
		"system", "kv5K", "kv20K")
	for _, group := range [][]sys{edge, server} {
		for _, s := range group {
			row := []any{s.dev.Name + "+" + s.pol.Name}
			for _, kv := range []int{5000, 20000} {
				row = append(row, serve.MaxRealTimeStreams(mk(s.dev, s.pol, kv), limit))
			}
			cap.AddRow(row...)
		}
	}

	qual := report.NewTable("Scale: per-stream quality at 4 streams, 20K KV",
		"system", "achieved_FPS", "p50_ms", "p99_ms", "dropped_pct", "util_pct")
	for _, s := range append(edge, server...) {
		c := mk(s.dev, s.pol, 20000)
		c.Streams = 4
		res := serve.Run(c)
		var fps, p50, p99, drop, arrived float64
		for _, m := range res.PerStream {
			fps += m.AchievedFPS
			p50 += m.P50
			p99 += m.P99
			drop += float64(m.FramesDropped)
			arrived += float64(m.FramesArrived)
		}
		n := float64(len(res.PerStream))
		qual.AddRow(s.dev.Name+"+"+s.pol.Name, fps/n, 1000*p50/n, 1000*p99/n,
			100*drop/arrived, 100*res.Utilization)
	}
	return []*report.Table{cap, qual}
}
