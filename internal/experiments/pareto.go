package experiments

import (
	"fmt"

	"vrex/internal/degrade"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// paretoDegraders is the degradation-controller axis of the sweep; "none"
// is the undegraded reference point every frontier row is judged against.
var paretoDegraders = []string{
	"none",
	"static(budget=0.5)",
	"pressure",
	"deadline",
	"hybrid",
}

// paretoConfig builds one operating point of the Pareto sweep: a KV-starved
// two-class flash crowd on the edge V-Rex8 where the pool thrashes and
// deadlines slip — the regime the degradation plane exists for. The
// scheduler, eviction and degrader axes plug into an otherwise identical
// scenario so every row of the frontier is load-for-load comparable.
func paretoConfig(opts Options, scheduler, evict, degrader string, duration float64, streams int) serve.Config {
	sched, err := serve.ParseScheduler(scheduler)
	if err != nil {
		panic(fmt.Sprintf("experiments: pareto scheduler %q: %v", scheduler, err))
	}
	sp, err := kvpool.ParseSpill(fmt.Sprintf("spill(evict=%s,pages=8)", evict))
	if err != nil {
		panic(fmt.Sprintf("experiments: pareto eviction %q: %v", evict, err))
	}
	dp, err := degrade.Parse(degrader)
	if err != nil {
		panic(fmt.Sprintf("experiments: pareto degrader %q: %v", degrader, err))
	}
	inter := serve.DefaultStreamConfig()
	inter.QueryEvery = 0
	inter.StartKV = 24000
	back := inter
	back.StartKV = 48000
	cfg := serve.Config{
		Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
		Streams: streams, Duration: duration,
		Classes: []serve.StreamClass{
			{Name: "interactive", Weight: 0.4, Stream: inter, SLO: 0.6, Priority: 0},
			{Name: "background", Weight: 0.6, Stream: back, SLO: 2, Priority: 1},
		},
		// Long-context sessions (24K/48K KV) make attention + KV fetch the
		// dominant frame cost, so shrinking the retrieval budget buys real
		// latency back. The base population saturates the device at full
		// budget and leaves the pool below the pressure threshold; churn
		// arrivals overflow it — the regime the degradation plane exists
		// for. The class KV sizes differ so the eviction policy has a real
		// choice of victim when the pool spills.
		Churn:         serve.ChurnConfig{ArrivalRate: 0.12, MeanLifetime: duration * 0.25},
		KV:            serve.KVConfig{Capacity: 10e9, Spill: sp},
		Scheduler:     serve.SchedulerConfig{Policy: sched, BatchMax: 4},
		Balancer:      serve.NewKVPressure(),
		DropThreshold: 4, Seed: opts.Seed, Workers: opts.Parallel,
	}
	if dp != nil {
		cfg.Degrade = serve.DegradeConfig{Policy: dp.Controller, Step: dp.Step, Floor: dp.Floor}
	}
	return cfg
}

// ParetoFrontier sweeps scheduler x eviction x degradation controller over a
// KV-starved flash crowd and emits the accuracy-vs-SLO frontier: each
// degrader trades retained accuracy proxy (1 at full retrieval budget) for
// deadline attainment by shrinking pressured sessions' budgets. The frontier
// table shows where each controller lands; the reference "none" rows are the
// undegraded corner (accuracy 1, worst attainment under pressure). The second
// table isolates the headline operating point (edf + lru) and reports each
// controller's deltas against "none" — the degraders worth shipping dominate
// it on SLO attainment at a bounded accuracy cost.
func ParetoFrontier(opts Options) []*report.Table {
	duration := 20.0
	streams := 2
	if opts.Quick {
		duration = 12
		streams = 2
	}
	schedulers := []string{"fifo", "edf"}
	evictions := []string{"lru", "largest"}

	type point struct{ sched, evict, deg string }
	results := map[point]serve.Result{}
	run := func(sched, evict, deg string) serve.Result {
		key := point{sched, evict, deg}
		res, ok := results[key]
		if !ok {
			res = serve.Run(paretoConfig(opts, sched, evict, deg, duration, streams))
			results[key] = res
		}
		return res
	}

	frontier := report.NewTable(
		"Pareto: accuracy proxy vs SLO attainment under a KV-starved flash crowd (V-Rex8 + ReSV, 24K/48K KV, 10 GB pool)",
		"scheduler", "evict", "degrade", "slo_pct", "acc_proxy", "mean_budget",
		"degradations", "restorations", "dropped_pct", "p99_ms", "util_pct")
	for _, sched := range schedulers {
		for _, evict := range evictions {
			for _, deg := range paretoDegraders {
				res := run(sched, evict, deg)
				agg := res.Aggregate
				acc, budget := agg.AccuracyProxy, agg.MeanBudget
				if deg == "none" {
					// The disabled plane reports zeros; the frontier's
					// reference corner is full budget, full accuracy.
					acc, budget = 1, 1
				}
				frontier.AddRow(sched, evict, deg, 100*agg.SLOAttained, acc, budget,
					agg.Degradations, agg.Restorations, 100*agg.DropRate,
					1000*agg.P99, 100*res.Utilization)
			}
		}
	}

	// Headline point: deadline-aware scheduling + LRU eviction, each degrader
	// against the undegraded reference.
	base := run("edf", "lru", "none").Aggregate
	deltas := report.NewTable(
		"Pareto: degrader deltas vs none at the edf + lru operating point",
		"degrade", "slo_pct", "d_slo_pp", "acc_proxy", "d_acc", "goodput_fps", "interactive_slo_pct")
	for _, deg := range paretoDegraders {
		res := run("edf", "lru", deg)
		agg := res.Aggregate
		acc := agg.AccuracyProxy
		if deg == "none" {
			acc = 1
		}
		deltas.AddRow(deg, 100*agg.SLOAttained, 100*(agg.SLOAttained-base.SLOAttained),
			acc, acc-1, agg.Goodput, 100*res.PerClass[0].SLOAttained)
	}
	return []*report.Table{frontier, deltas}
}
