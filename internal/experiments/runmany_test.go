package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vrex/internal/report"
)

// TestRunManyRejectsUnknownIDUpfront: an unknown id anywhere in the list
// must fail before any runner starts — nothing may be written to w.
func TestRunManyRejectsUnknownIDUpfront(t *testing.T) {
	var buf bytes.Buffer
	err := RunMany([]string{"tab1", "nosuch", "tab3"}, goldenOptions(true), &buf, report.FormatText)
	if err == nil || !strings.Contains(err.Error(), `"nosuch"`) {
		t.Fatalf("err = %v, want unknown-experiment error naming nosuch", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("writer received %d bytes before the unknown id was rejected", buf.Len())
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), w.err
}

// TestRunManyPropagatesWriteError: a failing writer's error must surface as
// RunMany's return value instead of being swallowed by the fan-in.
func TestRunManyPropagatesWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	err := RunMany([]string{"tab1"}, goldenOptions(true), &failWriter{err: sentinel}, report.FormatText)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	// Also mid-stream: accept a little output, then fail.
	err = RunMany([]string{"tab1", "tab3"}, goldenOptions(true), &failWriter{n: 10, err: sentinel}, report.FormatText)
	if !errors.Is(err, sentinel) {
		t.Fatalf("mid-stream err = %v, want the writer's error", err)
	}
}
