package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"vrex/internal/report"
	"vrex/internal/serve"
)

// TestParetoDegraderDominatesNone pins the experiment's reason to exist: at
// the headline operating point (edf + lru) at least one degradation
// controller strictly beats the undegraded baseline on SLO attainment, and
// every controller's accuracy proxy stays above its configured floor — the
// trade is bounded, not a collapse.
func TestParetoDegraderDominatesNone(t *testing.T) {
	opts := goldenOptions(true)
	run := func(deg string) serve.Result {
		return serve.Run(paretoConfig(opts, "edf", "lru", deg, 12, 2))
	}
	base := run("none").Aggregate
	dominated := false
	for _, deg := range paretoDegraders[1:] {
		agg := run(deg).Aggregate
		if agg.MeanBudget <= 0 {
			t.Errorf("%s: degradation plane never engaged (MeanBudget %v)", deg, agg.MeanBudget)
			continue
		}
		if agg.AccuracyProxy < 0.5 {
			t.Errorf("%s: accuracy proxy %v collapsed below 0.5", deg, agg.AccuracyProxy)
		}
		if agg.SLOAttained > base.SLOAttained {
			dominated = true
		}
	}
	if !dominated {
		t.Fatalf("no degrader beat none on SLO attainment (baseline %v)", base.SLOAttained)
	}
}

// TestParetoWorkerInvariance requires the rendered experiment output to be
// byte-identical at Workers 1, 4 and GOMAXPROCS: parallelism must never leak
// into the degradation plane's decisions.
func TestParetoWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep three times; skipped in -short")
	}
	render := func(workers int) []byte {
		opts := goldenOptions(true)
		opts.Parallel = workers
		var buf bytes.Buffer
		if err := RunMany([]string{"pareto"}, opts, &buf, report.FormatText); err != nil {
			t.Fatalf("run at %d workers: %v", workers, err)
		}
		return buf.Bytes()
	}
	ref := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); !bytes.Equal(got, ref) {
			t.Fatalf("pareto output at %d workers diverged from workers=1\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, ref)
		}
	}
}
