package experiments

import (
	"vrex/internal/hwsim"
	"vrex/internal/report"
)

// Fig4aMemoryFootprint regenerates Fig. 4(a): the memory footprint of a
// streaming video LLM (Llama-3 8B backbone) at 10 FPS, batch 4, as video
// duration grows — the KV cache passes the 32 GB edge GPU capacity within
// minutes.
func Fig4aMemoryFootprint(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	const (
		fps            = 10
		tokensPerFrame = 10
		batch          = 4
		edgeCapacityGB = 32.0
	)
	t := report.NewTable("Fig 4a: memory footprint vs video duration (10 FPS, batch 4)",
		"minutes", "model_GB", "kv_GB", "total_GB", "exceeds_32GB")
	paramGB := llm.WeightBytes() / 1e9
	for _, min := range []float64{0, 1, 2, 3, 4, 5, 6, 8, 10} {
		tokens := min * 60 * fps * tokensPerFrame
		kvGB := tokens * llm.KVBytesPerToken() * batch / 1e9
		total := paramGB + kvGB
		t.AddRow(min, paramGB, kvGB, total, total > edgeCapacityGB)
	}
	return []*report.Table{t}
}

// coinScenario is the paper's average COIN working case: 26 frames of 10
// tokens, a 25-token question, 39 generated answer tokens.
type coinScenario struct {
	frames, tokensPerFrame, questionTokens, answerTokens int
}

func defaultScenario() coinScenario {
	return coinScenario{frames: 26, tokensPerFrame: 10, questionTokens: 25, answerTokens: 39}
}

// e2e simulates the full scenario against a pre-existing cache of kvLen
// tokens, returning (vision+MLP, prefill, generation) exposed times.
func (sc coinScenario) e2e(sim *hwsim.Sim, kvLen, batch int) (vis, prefill, gen float64) {
	kv := kvLen
	for f := 0; f < sc.frames; f++ {
		b := sim.FrameLatency(sc.tokensPerFrame, kv, batch)
		vis += b.VisionTime
		prefill += b.Total - b.VisionTime
		kv += sc.tokensPerFrame
	}
	q := sim.Chunk(sc.questionTokens, kv, batch, hwsim.StageTextPhase)
	prefill += q.Total
	kv += sc.questionTokens
	for i := 0; i < sc.answerTokens; i++ {
		gen += sim.TPOT(kv, batch).Total
		kv++
	}
	return vis, prefill, gen
}

// Fig4bLatencyBreakdown regenerates Fig. 4(b): end-to-end latency breakdown
// of the streaming scenario with InfiniGen on an A100 as the pre-existing KV
// cache length grows — prefill becomes the dominant stage (83% at 80K).
func Fig4bLatencyBreakdown(Options) []*report.Table {
	sc := defaultScenario()
	t := report.NewTable("Fig 4b: E2E latency breakdown, A100+InfiniGen",
		"kv_len", "vision_mlp_pct", "prefill_pct", "generation_pct", "total_s")
	for _, kv := range []int{0, 1000, 10000, 20000, 40000, 80000} {
		sim := hwsim.NewSim(hwsim.A100(), hwsim.Llama3_8B(), hwsim.InfiniGenModel())
		vis, pre, gen := sc.e2e(sim, kv, 1)
		total := vis + pre + gen
		t.AddRow(kv, 100*vis/total, 100*pre/total, 100*gen/total, total)
	}
	return []*report.Table{t}
}

// Fig4cRetrievalOverhead regenerates Fig. 4(c): at a 40K cache, the KV cache
// retrieval (prediction + fetch) is a small share of operations but the
// dominant share of prefill latency for a GPU retrieval baseline.
func Fig4cRetrievalOverhead(Options) []*report.Table {
	llm := hwsim.Llama3_8B()
	// InfiniGen adapted to prefill with the paper's 10K token budget at a
	// 40K cache (Sec. III-B's measurement setup).
	pol := hwsim.InfiniGenModel()
	pol.FrameRatio = 0.25
	sim := hwsim.NewSim(hwsim.A100(), llm, pol)
	b := sim.FrameLatency(10, 40000, 1)

	// Operation counts: LLM FLOPs (linear + attention, vision excluded as in
	// the paper's prefill analysis) vs prediction FLOPs.
	predOps := llm.PredFLOPs(10, 40000) * float64(llm.Layers)
	attended := int(pol.FrameRatio*40000) + 10
	llmOps := (llm.LayerLinearFLOPs(10) + llm.LayerAttnFLOPs(10, attended)) * float64(llm.Layers)
	opsRetr := 100 * predOps / (predOps + llmOps)

	latRetr := 100 * b.RetrievalExposed() / (b.Total - b.VisionTime)
	latPred := 100 * b.PredExposed / (b.Total - b.VisionTime)
	latFetch := 100 * b.FetchExposed / (b.Total - b.VisionTime)

	t := report.NewTable("Fig 4c: retrieval overhead at 40K (A100+InfiniGenP prefill)",
		"metric", "kv_retrieval_pct", "llm_pct")
	t.AddRow("operations", opsRetr, 100-opsRetr)
	t.AddRow("latency", latRetr, 100-latRetr)
	t.AddRow("latency (prediction part)", latPred, "-")
	t.AddRow("latency (fetch part)", latFetch, "-")
	return []*report.Table{t}
}
