package experiments

import (
	"fmt"

	"vrex/internal/accuracy"
	"vrex/internal/core"
	"vrex/internal/hashbit"
	"vrex/internal/hwsim"
	"vrex/internal/mathx"
	"vrex/internal/model"
	"vrex/internal/report"
	"vrex/internal/retrieval"
	"vrex/internal/workload"
)

// functionalModelConfig is the small-dimension model used by the functional
// experiments (accuracy, ratios, similarity).
func functionalModelConfig(seed uint64) model.Config {
	cfg := model.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// Fig7Similarity regenerates Fig. 7: (a) the cosine-similarity structure of
// key tokens between adjacent frames at layer 3 and (b) the correlation
// between hash-bit Hamming distance and cosine similarity (the paper
// measures |r| ~ 0.8 with N_hp = 32).
func Fig7Similarity(opts Options) []*report.Table {
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	wcfg.Stream.SceneLength = 0 // within-scene similarity, as in Fig. 7(a)
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	sess := gen.Session(workload.TaskStep, 0)

	m := model.New(mcfg)
	for _, fe := range sess.FrameEmbeds {
		m.Forward(fe, model.DenseRetriever{}, model.StageFrame, false)
	}
	layer := 3
	if layer >= mcfg.Layers {
		layer = mcfg.Layers - 1
	}
	cache := m.Cache(layer)
	tpf := sess.TokensPerFrame()

	// (a) adjacent-frame same-slot vs cross-slot similarity.
	var same, cross []float64
	for f := 0; f+1 < len(sess.FrameEmbeds); f++ {
		for s1 := 0; s1 < tpf; s1++ {
			a := cache.Key(f*tpf + s1)
			for s2 := 0; s2 < tpf; s2++ {
				b := cache.Key((f+1)*tpf + s2)
				sim := mathx.CosineSimilarity(a, b)
				if s1 == s2 {
					same = append(same, sim)
				} else {
					cross = append(cross, sim)
				}
			}
		}
	}
	ta := report.NewTable("Fig 7a: adjacent-frame key similarity (layer 3)",
		"pair_kind", "mean_cosine", "p10", "p90")
	ta.AddRow("same spatial slot", mathx.Mean(same), mathx.Percentile(same, 10), mathx.Percentile(same, 90))
	ta.AddRow("different slot", mathx.Mean(cross), mathx.Percentile(cross, 10), mathx.Percentile(cross, 90))

	// (b) cosine vs Hamming correlation over random key pairs.
	hasher := hashbit.NewHasher(cache.Dim, 32, mathx.NewRNG(opts.Seed^0x77))
	rng := mathx.NewRNG(opts.Seed ^ 0x99)
	var cos, ham []float64
	n := cache.Len()
	pairs := 500
	if opts.Quick {
		pairs = 100
	}
	for p := 0; p < pairs; p++ {
		i, j := rng.Intn(n), rng.Intn(n)
		cos = append(cos, mathx.CosineSimilarity(cache.Key(i), cache.Key(j)))
		ham = append(ham, float64(hashbit.Hamming(hasher.HashVector(cache.Key(i)), hasher.HashVector(cache.Key(j)))))
	}
	r := mathx.PearsonCorrelation(cos, ham)
	tb := report.NewTable("Fig 7b: hash-bit Hamming vs cosine similarity (N_hp=32)",
		"metric", "value")
	tb.AddRow("pearson correlation", r)
	tb.AddRow("pairs", pairs)
	return []*report.Table{ta, tb}
}

// table2Policies returns the Table II policy lineup as factories, in paper
// row order. resvCfg carries the experiment's ReSV configuration (worker
// count included).
func table2Policies(mcfg model.Config, tpf int, resvCfg core.Config) []struct {
	Name    string
	Factory accuracy.PolicyFactory
} {
	return []struct {
		Name    string
		Factory accuracy.PolicyFactory
	}{
		{"VideoLLM-Online", func() model.Retriever { return retrieval.NewDense() }},
		{"InfiniGen", func() model.Retriever { return retrieval.NewInfiniGen(mcfg, 0.068) }},
		{"InfiniGenP", func() model.Retriever { return retrieval.NewInfiniGenP(mcfg, 0.5, 0.068) }},
		{"ReKV", func() model.Retriever { return retrieval.NewReKV(mcfg, tpf, 0.584, 0.312) }},
		{"V-Rex's ReSV", func() model.Retriever { return core.New(mcfg, resvCfg) }},
	}
}

// Table2Accuracy regenerates Table II: COIN top-1 accuracy (proxy) and
// retrieval ratios per task family for the five policies.
func Table2Accuracy(opts Options) []*report.Table {
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	ev := opts.evaluator(mcfg, wcfg)

	acc := report.NewTable("Table II: accuracy (top-1, planted-saliency proxy)",
		"method", "Step", "Next", "Proc.+", "Task", "Proc.", "Avg")
	ratio := report.NewTable("Table II: retrieval ratio [frame% / text%]",
		"method", "Step", "Next", "Proc.+", "Task", "Proc.", "Avg")
	for _, pol := range table2Policies(mcfg, wcfg.Stream.TokensPerFrame, opts.resvConfig()) {
		rs := ev.EvaluateAll(pol.Factory)
		accRow := []any{pol.Name}
		ratRow := []any{pol.Name}
		var fr, tx float64
		for _, r := range rs {
			accRow = append(accRow, 100*r.Accuracy)
			ratRow = append(ratRow, formatRatioPair(r.FrameRatio, r.TextRatio))
			fr += r.FrameRatio
			tx += r.TextRatio
		}
		accRow = append(accRow, 100*accuracy.MeanAccuracy(rs))
		n := float64(len(rs))
		ratRow = append(ratRow, formatRatioPair(fr/n, tx/n))
		acc.AddRow(accRow...)
		ratio.AddRow(ratRow...)
	}
	return []*report.Table{acc, ratio}
}

func formatRatioPair(frame, text float64) string {
	if frame < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f / %.1f", 100*frame, 100*text)
}

// Fig19ReSVAblation regenerates Fig. 19: accuracy and frame-processing
// speedup (40K cache) of VideoLLM-Online, ReSV without clustering, and full
// ReSV.
func Fig19ReSVAblation(opts Options) []*report.Table {
	mcfg := functionalModelConfig(opts.Seed)
	wcfg := workload.DefaultConfig()
	ev := opts.evaluator(mcfg, wcfg)

	noCluster := opts.resvConfig()
	noCluster.DisableClustering = true
	variants := []struct {
		Name    string
		Factory accuracy.PolicyFactory
	}{
		{"VideoLLM-Online", func() model.Retriever { return retrieval.NewDense() }},
		{"ReSV w/o Clustering", func() model.Retriever { return core.New(mcfg, noCluster) }},
		{"ReSV", func() model.Retriever { return core.New(mcfg, opts.resvConfig()) }},
	}

	// Performance plane: baseline is the GPU without retrieval optimisation
	// (FlexGen offloading); variants run on V-Rex8.
	llm := hwsim.Llama3_8B()
	base := hwsim.NewSim(hwsim.AGXOrin(), llm, hwsim.FlexGenModel()).FrameLatency(10, 40000, 1)
	noClusterPerf := hwsim.ReSVModel()
	noClusterPerf.ClusterCompression = 1 // WiCSum over raw tokens
	noClusterPerf.SegmentTokens = 1      // no cluster-contiguous layout
	noClusterPerf.ResidentReuse = 0.3    // token-level selections less stable
	perf := map[string]float64{
		"VideoLLM-Online":     base.Total,
		"ReSV w/o Clustering": hwsim.NewSim(hwsim.VRex8(), llm, noClusterPerf).FrameLatency(10, 40000, 1).Total,
		"ReSV":                hwsim.NewSim(hwsim.VRex8(), llm, hwsim.ReSVModel()).FrameLatency(10, 40000, 1).Total,
	}

	t := report.NewTable("Fig 19: ReSV ablation (accuracy + speedup at 40K)",
		"config", "accuracy_pct", "acc_drop_pts", "speedup")
	var baseAcc float64
	for i, v := range variants {
		rs := ev.EvaluateAll(v.Factory)
		mean := 100 * accuracy.MeanAccuracy(rs)
		if i == 0 {
			baseAcc = mean
		}
		t.AddRow(v.Name, mean, baseAcc-mean, base.Total/perf[v.Name])
	}
	return []*report.Table{t}
}

// Fig20RatioDistribution regenerates Fig. 20: ReSV's retrieval ratio per
// layer and per head on a sample video, against the flat fixed-top-k lines
// of InfiniGenP and ReKV.
func Fig20RatioDistribution(opts Options) []*report.Table {
	mcfg := functionalModelConfig(opts.Seed)
	mcfg.Layers = 6 // more layers for a visible distribution
	wcfg := workload.DefaultConfig()
	gen := workload.NewGenerator(wcfg, mcfg.Dim)
	sess := gen.Session(workload.TaskStep, 0)

	m := model.New(mcfg)
	resv := core.New(mcfg, opts.resvConfig())
	for _, fe := range sess.FrameEmbeds {
		m.Forward(fe, resv, model.StageFrame, false)
	}
	for _, q := range sess.Queries {
		m.Forward(q.Embeddings, resv, model.StageText, false)
	}

	stats := resv.Stats()
	tl := report.NewTable("Fig 20: retrieval ratio per layer (%)",
		"layer", "ReSV", "InfiniGenP", "ReKV")
	for l, r := range stats.PerLayer {
		tl.AddRow(l, 100*r.Value(), 50.8, 58.4)
	}
	th := report.NewTable("Fig 20: retrieval ratio per head (%)",
		"head", "ReSV", "InfiniGenP", "ReKV")
	for h, r := range stats.PerHead {
		th.AddRow(h, 100*r.Value(), 50.8, 58.4)
	}
	// Summary: ReSV average vs the fixed baselines (paper: 3x fewer than
	// ReKV).
	var sum float64
	for _, r := range stats.PerLayer {
		sum += r.Value()
	}
	avg := sum / float64(len(stats.PerLayer))
	ts := report.NewTable("Fig 20: summary", "metric", "value")
	ts.AddRow("ReSV avg ratio (%)", 100*avg)
	ts.AddRow("ReKV / ReSV ratio", 0.584/avg)
	return []*report.Table{tl, th, ts}
}
