// Package experiments contains one runner per table and figure of the
// paper's evaluation (and motivation) sections. Each runner returns
// report.Tables whose rows are the series the paper plots; cmd/vrex-bench
// and bench_test.go drive them, and EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"vrex/internal/accuracy"
	"vrex/internal/core"
	"vrex/internal/model"
	"vrex/internal/parallel"
	"vrex/internal/report"
	"vrex/internal/workload"
)

// Options tunes experiment cost; the defaults match EXPERIMENTS.md.
type Options struct {
	// Sessions per task family for accuracy experiments.
	Sessions int
	// Seed for all functional-plane randomness.
	Seed uint64
	// Quick shrinks functional workloads for smoke tests and benchmarks.
	Quick bool
	// Parallel is the worker count for experiment dispatch (RunAll/RunMany)
	// and is threaded into the runners' inner kernels: 0 uses GOMAXPROCS,
	// 1 restores fully sequential execution. Output is identical either way.
	Parallel int
}

// workers resolves the Options worker count for fan-out sites.
func (o Options) workers() int { return parallel.Workers(o.Parallel) }

// resvConfig returns the paper-default ReSV configuration with the
// experiment's worker count threaded into the kernel shards.
func (o Options) resvConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = o.Parallel
	return cfg
}

// evaluator builds an accuracy evaluator that shares the experiment's worker
// count for session-level fan-out.
func (o Options) evaluator(mcfg model.Config, wcfg workload.Config) *accuracy.Evaluator {
	ev := accuracy.NewEvaluator(mcfg, wcfg, o.sessions())
	ev.Workers = o.Parallel
	return ev
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Sessions: 10, Seed: 7} }

func (o Options) sessions() int {
	if o.Sessions > 0 {
		if o.Quick && o.Sessions > 2 {
			return 2
		}
		return o.Sessions
	}
	if o.Quick {
		return 2
	}
	return 10
}

// Runner produces the tables for one experiment.
type Runner func(Options) []*report.Table

// registry maps experiment IDs (fig4a, tab2, ...) to runners.
var registry = map[string]Runner{
	"fig4a": Fig4aMemoryFootprint,
	"fig4b": Fig4bLatencyBreakdown,
	"fig4c": Fig4cRetrievalOverhead,
	"fig5":  Fig5Pipeline,
	"fig7":  Fig7Similarity,
	"fig13": Fig13LatencyEnergy,
	"fig14": Fig14E2EBreakdown,
	"fig15": Fig15Throughput,
	"fig16": Fig16Ablation,
	"fig17": Fig17Bandwidth,
	"fig18": Fig18Roofline,
	"fig19": Fig19ReSVAblation,
	"fig20": Fig20RatioDistribution,
	"tab1":  Table1Hardware,
	"tab2":  Table2Accuracy,
	"tab3":  Table3AreaPower,
	// Extensions beyond the paper's artifacts: hyperparameter ablation
	// benches, the serving-scale study, the fleet × balancer × mix sweep
	// built on the Scenario API, the KV memory-pressure study on the
	// kvpool plane, and the continuous-batching SLO sweep on the scheduler
	// plane (see EXPERIMENTS.md).
	"multiturn":    MultiTurnCoherence,
	"sweep-thwics": SweepThWics,
	"sweep-thhd":   SweepThHD,
	"sweep-nhp":    SweepNHp,
	"scale":        ScaleServing,
	"fleet":        FleetServing,
	"memory":       MemoryPressure,
	"slo":          SLOServing,
	"scenarios":    ScenarioSuite,
	"cluster":      ClusterServing,
	"pareto":       ParetoFrontier,
	"telemetry":    TelemetryObservability,
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID and renders its tables to w as aligned
// text.
func Run(id string, opts Options, w io.Writer) error {
	return RunAs(id, opts, w, report.FormatText)
}

// RunAs executes one experiment and renders in the given format (text, csv
// or md).
func RunAs(id string, opts Options, w io.Writer, format report.Format) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	for _, t := range r(opts) {
		t.RenderAs(w, format)
		fmt.Fprintln(w)
	}
	return nil
}

// RunMany executes the given experiments across opts.Parallel workers and
// writes their rendered tables to w in argument order. Each runner renders
// into a private buffer; the ordered streaming fan-in below emits an
// experiment's output as soon as every earlier id has been written — so the
// concatenation is byte-identical to running the ids sequentially, output is
// progressive rather than held until the slowest runner finishes, and only
// the out-of-order suffix is retained in memory. Unknown ids are rejected
// before any runner starts.
func RunMany(ids []string, opts Options, w io.Writer, format report.Format) error {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
		}
	}
	type rendered struct {
		idx int
		out []byte
	}
	// Buffered to len(ids): the fan-out supervisor can never block on send,
	// so an early return (write error) leaks nothing.
	results := make(chan rendered, len(ids))
	wait := parallel.Go(func() {
		defer close(results)
		parallel.ForEach(opts.workers(), len(ids), func(i int) {
			var buf bytes.Buffer
			for _, t := range registry[ids[i]](opts) {
				t.RenderAs(&buf, format)
				fmt.Fprintln(&buf)
			}
			results <- rendered{idx: i, out: buf.Bytes()}
		})
	})
	pending := make(map[int][]byte)
	next := 0
	for r := range results {
		pending[r.idx] = r.out
		for out, ok := pending[next]; ok; out, ok = pending[next] {
			if _, err := w.Write(out); err != nil {
				return err
			}
			delete(pending, next)
			next++
		}
	}
	wait() // re-raises a runner panic with its original value
	return nil
}

// RunAll executes every registered experiment (sorted-ID order) across
// opts.Parallel workers.
func RunAll(opts Options, w io.Writer, format report.Format) error {
	return RunMany(IDs(), opts, w, format)
}

// Get returns the runner for an ID (nil if unknown); bench_test.go uses it.
func Get(id string) Runner { return registry[id] }
