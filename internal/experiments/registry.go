// Package experiments contains one runner per table and figure of the
// paper's evaluation (and motivation) sections. Each runner returns
// report.Tables whose rows are the series the paper plots; cmd/vrex-bench
// and bench_test.go drive them, and EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"vrex/internal/report"
)

// Options tunes experiment cost; the defaults match EXPERIMENTS.md.
type Options struct {
	// Sessions per task family for accuracy experiments.
	Sessions int
	// Seed for all functional-plane randomness.
	Seed uint64
	// Quick shrinks functional workloads for smoke tests and benchmarks.
	Quick bool
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Sessions: 10, Seed: 7} }

func (o Options) sessions() int {
	if o.Sessions > 0 {
		if o.Quick && o.Sessions > 2 {
			return 2
		}
		return o.Sessions
	}
	if o.Quick {
		return 2
	}
	return 10
}

// Runner produces the tables for one experiment.
type Runner func(Options) []*report.Table

// registry maps experiment IDs (fig4a, tab2, ...) to runners.
var registry = map[string]Runner{
	"fig4a": Fig4aMemoryFootprint,
	"fig4b": Fig4bLatencyBreakdown,
	"fig4c": Fig4cRetrievalOverhead,
	"fig5":  Fig5Pipeline,
	"fig7":  Fig7Similarity,
	"fig13": Fig13LatencyEnergy,
	"fig14": Fig14E2EBreakdown,
	"fig15": Fig15Throughput,
	"fig16": Fig16Ablation,
	"fig17": Fig17Bandwidth,
	"fig18": Fig18Roofline,
	"fig19": Fig19ReSVAblation,
	"fig20": Fig20RatioDistribution,
	"tab1":  Table1Hardware,
	"tab2":  Table2Accuracy,
	"tab3":  Table3AreaPower,
	// Extensions beyond the paper's artifacts: hyperparameter ablation
	// benches (DESIGN.md) and the serving-scale study.
	"multiturn":    MultiTurnCoherence,
	"sweep-thwics": SweepThWics,
	"sweep-thhd":   SweepThHD,
	"sweep-nhp":    SweepNHp,
	"scale":        ScaleServing,
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID and renders its tables to w as aligned
// text.
func Run(id string, opts Options, w io.Writer) error {
	return RunAs(id, opts, w, report.FormatText)
}

// RunAs executes one experiment and renders in the given format (text, csv
// or md).
func RunAs(id string, opts Options, w io.Writer, format report.Format) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	for _, t := range r(opts) {
		t.RenderAs(w, format)
		fmt.Fprintln(w)
	}
	return nil
}

// Get returns the runner for an ID (nil if unknown); bench_test.go uses it.
func Get(id string) Runner { return registry[id] }
