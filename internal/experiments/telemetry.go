package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"vrex/internal/cluster"
	"vrex/internal/degrade"
	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/report"
	"vrex/internal/serve"
	"vrex/internal/telemetry"
)

// TelemetryObservability drives the observability plane end-to-end on one
// stressed scenario and reports what it sees. The scenario is chosen so every
// phase the profiler can attribute actually occurs: a two-node cluster under
// churn with a KV pool tight enough to page (spill + degradation pressure), a
// batching deadline scheduler, and a mid-run node drain whose evacuated
// sessions migrate live. Tables:
//
//   - phase attribution: simulated device-seconds by phase (compute split
//     from hwsim, paging and migration stalls from the engine), totalling the
//     engine-charged time exactly — the simulated-time "profiler" view;
//   - stalls by device: where the paging/migration time sat;
//   - span summary: sessions reconstructed from the event stream, lifecycle
//     balance, per-span tallies against the Result counters;
//   - exporter footprint: series/sample counts of the Prometheus exposition
//     and slice/mark counts of the Chrome trace (both deterministic).
func TelemetryObservability(opts Options) []*report.Table {
	duration, devs := 30.0, 4
	rate, life := 25.0, 8.0
	if opts.Quick {
		duration, devs = 12, 2
		rate, life = 12, 4
	}

	classes, err := serve.ParseMix("2fps:0.6,4fps:0.4")
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry mix: %v", err))
	}
	for i := range classes {
		classes[i].Stream.QueryEvery = 6
		classes[i].Stream.StartKV = 8000
		classes[i].SLO = 0.7
	}
	sched, err := serve.ParseScheduler("edf")
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry scheduler: %v", err))
	}
	sp, err := kvpool.ParseSpill("spill(evict=lru,pages=8)")
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry spill: %v", err))
	}
	dp, err := degrade.Parse("pressure(lo=0.2,hi=0.5)")
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry degrader: %v", err))
	}
	base := serve.Config{
		Pol:     hwsim.ReSVModel(),
		Streams: 8, Duration: duration, Classes: classes,
		Churn: serve.ChurnConfig{ArrivalRate: rate, MeanLifetime: life},
		// ~35 default pages per device: one 8000-token session fits, two
		// thrash — the pool pages and the pressure degrader fires.
		KV:            serve.KVConfig{Capacity: 35 * 256 * 131072, Spill: sp},
		Scheduler:     serve.SchedulerConfig{Policy: sched, BatchMax: 4, SLO: 0.7},
		Degrade:       serve.DegradeConfig{Policy: dp.Controller, Step: dp.Step, Floor: dp.Floor},
		DropThreshold: 4, Seed: opts.Seed, Workers: opts.Parallel,
	}
	col := telemetry.NewCollector()
	prof := col.Attach(&base)
	router, err := cluster.ParseRouter("least-loaded")
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry router: %v", err))
	}
	faultAt := math.Floor(0.4 * duration)
	recoverAt := math.Floor(0.7 * duration)
	res := cluster.Run(cluster.Config{
		Nodes: []cluster.NodeSpec{
			{Spec: hwsim.VRex48(), Devices: devs, Region: "us"},
			{Spec: hwsim.VRex48(), Devices: devs, Region: "us"},
		},
		Base: base, Router: router,
		Faults:          []cluster.Fault{{Kind: cluster.FaultDrain, Node: 1, At: faultAt, Recover: recoverAt}},
		Rebalance:       cluster.RebalanceConfig{MaxMoves: 4, Slack: 1},
		ControlInterval: 1,
	})

	attr := telemetry.AttributionTable(prof)

	m := col.Metrics(1, duration)
	stalls := report.NewTable("Stall seconds by device and kind",
		"device", "kind", "seconds")
	for d, kinds := range m.StallSeconds {
		names := make([]string, 0, len(kinds))
		for name := range kinds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			stalls.AddRow(d, name, kinds[name])
		}
	}

	spans, err := telemetry.BuildSpans(col.Events())
	if err != nil {
		panic(fmt.Sprintf("experiments: telemetry spans: %v", err))
	}
	balanced, frames, migs := 0, 0, 0
	for i := range spans {
		if spans[i].Balanced() {
			balanced++
		}
		frames += spans[i].Frames
		migs += spans[i].Migrations
	}
	agg := res.Serve.Aggregate
	mig := res.Serve.Migrations
	spanTab := report.NewTable("Session spans reconstructed from the event stream",
		"metric", "from_spans", "from_result")
	spanTab.AddRow("sessions", len(spans), agg.Sessions)
	spanTab.AddRow("balanced", balanced, agg.Sessions)
	spanTab.AddRow("frames_served", frames, agg.FramesServed)
	spanTab.AddRow("migrations", migs, mig.Live+mig.Lossy)
	spanTab.AddRow("peak_active", m.PeakActive, m.PeakActive)

	var prom, trace bytes.Buffer
	m.WritePrometheus(&prom)
	if err := col.WriteTrace(&trace); err != nil {
		panic(fmt.Sprintf("experiments: telemetry trace: %v", err))
	}
	promSeries := bytes.Count(prom.Bytes(), []byte{'\n'})
	marks, slices := 0, 0
	for _, line := range []struct {
		tag string
		n   *int
	}{{`"ph":"i"`, &marks}, {`"ph":"X"`, &slices}} {
		*line.n = bytes.Count(trace.Bytes(), []byte(line.tag))
	}
	export := report.NewTable("Exporter footprint (deterministic byte streams)",
		"export", "items", "note")
	export.AddRow("prometheus", promSeries, "text lines incl. HELP/TYPE")
	export.AddRow("trace_slices", slices, "complete events (batches, stalls, spans)")
	export.AddRow("trace_marks", marks, "instant events (session lifecycle)")
	export.AddRow("events", len(col.Events()), "engine observations")

	return []*report.Table{attr, stalls, spanTab, export}
}
