package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"vrex/internal/report"
)

// equivalenceIDs is the experiment set for byte-identical checks: it spans
// all three parallel layers (hwsim-plane tables, functional accuracy through
// the sharded ReSV kernel, and the serving simulator) while staying cheap
// enough to run un-gated.
var equivalenceIDs = []string{"fig4a", "fig13", "fig15", "fig20", "scale", "tab1", "tab3"}

// TestParallelRunByteIdentical is the engine's acceptance check: rendering an
// experiment with the sequential engine (Parallel=1) and with a sharded one
// must produce byte-identical tables.
func TestParallelRunByteIdentical(t *testing.T) {
	for _, id := range equivalenceIDs {
		render := func(workers int) string {
			opts := quickOpts()
			opts.Parallel = workers
			var buf bytes.Buffer
			if err := Run(id, opts, &buf); err != nil {
				t.Fatalf("Run(%s, workers=%d): %v", id, workers, err)
			}
			return buf.String()
		}
		seq := render(1)
		for _, w := range []int{2, 8} {
			if par := render(w); par != seq {
				t.Fatalf("experiment %s: workers=%d output diverged from sequential", id, w)
			}
		}
	}
}

// TestMemoryExperimentParallelByteIdentical: the memory-pressure experiment
// drives the churn + spill + admission serving path, whose pool operations
// all live inside the serialised device loop — its rendered output must be
// byte-identical across worker counts 1, 4 and GOMAXPROCS.
func TestMemoryExperimentParallelByteIdentical(t *testing.T) {
	render := func(workers int) string {
		opts := quickOpts()
		opts.Parallel = workers
		var buf bytes.Buffer
		if err := Run("memory", opts, &buf); err != nil {
			t.Fatalf("Run(memory, workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	seq := render(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if par := render(w); par != seq {
			t.Fatalf("memory experiment: workers=%d output diverged from sequential", w)
		}
	}
}

// TestSLOExperimentParallelByteIdentical: the slo experiment drives the
// scheduler plane's batched, deadline-ordered device loop — its rendered
// output must be byte-identical across worker counts 1, 4 and GOMAXPROCS.
func TestSLOExperimentParallelByteIdentical(t *testing.T) {
	render := func(workers int) string {
		opts := quickOpts()
		opts.Parallel = workers
		var buf bytes.Buffer
		if err := Run("slo", opts, &buf); err != nil {
			t.Fatalf("Run(slo, workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	seq := render(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if par := render(w); par != seq {
			t.Fatalf("slo experiment: workers=%d output diverged from sequential", w)
		}
	}
}

// TestClusterExperimentParallelByteIdentical: the cluster experiment drives
// the composite balancer, control plane (faults, autoscaling, rebalancing)
// and priced KV migration — its rendered output must be byte-identical
// across worker counts 1, 4 and GOMAXPROCS.
func TestClusterExperimentParallelByteIdentical(t *testing.T) {
	render := func(workers int) string {
		opts := quickOpts()
		opts.Parallel = workers
		var buf bytes.Buffer
		if err := Run("cluster", opts, &buf); err != nil {
			t.Fatalf("Run(cluster, workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	seq := render(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if par := render(w); par != seq {
			t.Fatalf("cluster experiment: workers=%d output diverged from sequential", w)
		}
	}
}

// TestRunManyByteIdenticalAndOrdered: dispatching experiments across workers
// must emit exactly the sequential concatenation, in argument order.
func TestRunManyByteIdenticalAndOrdered(t *testing.T) {
	ids := equivalenceIDs
	seqOpts := quickOpts()
	seqOpts.Parallel = 1
	var want bytes.Buffer
	for _, id := range ids {
		if err := RunAs(id, seqOpts, &want, report.FormatText); err != nil {
			t.Fatalf("sequential RunAs(%s): %v", id, err)
		}
	}
	parOpts := quickOpts()
	parOpts.Parallel = 4
	var got bytes.Buffer
	if err := RunMany(ids, parOpts, &got, report.FormatText); err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if got.String() != want.String() {
		t.Fatal("RunMany output differs from sequential concatenation")
	}
}

func TestRunManyUnknownIDRejectedUpfront(t *testing.T) {
	var buf bytes.Buffer
	err := RunMany([]string{"fig4a", "nope"}, quickOpts(), &buf, report.FormatText)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown id must be rejected, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatal("no output may be written when validation fails")
	}
}

// RunAll itself is a thin wrapper over RunMany(IDs(), ...); its dispatch and
// output are covered by the RunMany tests above, and BenchmarkRunAllParallel
// exercises the full registry end to end.
