package experiments

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/kvpool"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// MemoryPressure charts the thing that actually caps edge concurrency: KV
// cache footprint. It sweeps the serving simulator's memory-pressure plane
// (internal/kvpool) on the edge V-Rex8 — device KV capacity x stream mix x
// spill/eviction policy — and reports how many concurrent real-time streams
// each budget sustains. A second table zooms into one pressured operating
// point under session churn and shows the paging economy per eviction
// policy: page traffic, reload time, admission outcomes and the resident-KV
// high-water mark. At Llama-3 8B's 128 KiB/token, a 20K-token mid-session
// stream owns ~2.6 GB of KV, so single-digit gigabyte budgets bind long
// before V-Rex8's compute does.
func MemoryPressure(opts Options) []*report.Table {
	duration := 20.0
	limit := 16
	capacities := []float64{4e9, 8e9, 16e9}
	if opts.Quick {
		duration = 8
		limit = 8
		capacities = capacities[:2]
	}

	// Two mixes over the paper's 2 FPS working scenario: a uniform 20K-token
	// population, and a skewed one (10K/30K) where session sizes differ
	// enough for eviction-policy choices to matter.
	mkClasses := func(kvs map[string]int) []serve.StreamClass {
		var classes []serve.StreamClass
		for _, name := range []string{"small", "large"} {
			kv, ok := kvs[name]
			if !ok {
				continue
			}
			sc := serve.DefaultStreamConfig()
			sc.QueryEvery = 0
			sc.StartKV = kv
			weight := 0.6
			if name == "large" {
				weight = 0.4
			}
			classes = append(classes, serve.StreamClass{Name: name, Weight: weight, Stream: sc})
		}
		return classes
	}
	mixes := []struct {
		name    string
		classes []serve.StreamClass
	}{
		{"uniform 20K", mkClasses(map[string]int{"small": 20000})},
		{"10K:0.6 + 30K:0.4", mkClasses(map[string]int{"small": 10000, "large": 30000})},
	}
	spills := []string{
		"none",
		"spill(evict=lru,pages=8)",
		"spill(evict=fifo,pages=8)",
		"spill(evict=largest,pages=8)",
	}

	mk := func(classes []serve.StreamClass, capacity float64, spill string, devices int) serve.Config {
		sp, err := kvpool.ParseSpill(spill)
		if err != nil {
			panic(fmt.Sprintf("experiments: memory spill %q: %v", spill, err))
		}
		cfg := serve.Config{
			Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
			Streams: 1, Duration: duration, Classes: classes,
			Devices: devices, DropThreshold: 4, Seed: opts.Seed,
			Workers: opts.Parallel,
		}
		if capacity != 0 {
			// capacity == 0 leaves the plane disabled: the compute-bound
			// reference point ("unbounded" column).
			cfg.KV = serve.KVConfig{Capacity: capacity, Spill: sp}
		}
		if devices > 1 {
			cfg.Balancer = serve.NewKVPressure()
		}
		return cfg
	}

	// Capacity sweep: max real-time streams per (mix, spill policy, budget).
	headers := []string{"mix", "spill"}
	for _, c := range capacities {
		headers = append(headers, fmt.Sprintf("cap%.0fGB", c/1e9))
	}
	headers = append(headers, "unbounded")
	capTab := report.NewTable("Memory: max real-time streams vs device KV capacity (V-Rex8 + ReSV, 2 FPS)", headers...)
	for _, mix := range mixes {
		for _, spill := range spills {
			row := []any{mix.name, spill}
			// The final 0 capacity is the pool-disabled compute bound.
			for _, capacity := range append(append([]float64{}, capacities...), 0) {
				row = append(row, serve.MaxRealTimeStreams(mk(mix.classes, capacity, spill, 1), limit))
			}
			capTab.AddRow(row...)
		}
	}

	// Operating-point detail: a 2-device kv-pressure fleet at an 8 GB budget
	// under session churn, per spill policy — the paging economy behind the
	// capacity numbers.
	streams := 6
	pointCap := 8e9
	churn := serve.ChurnConfig{ArrivalRate: 0.3, MeanLifetime: duration / 2}
	if opts.Quick {
		// Fewer streams over a shorter run: shrink the budget too so the
		// quick path still exercises spilling (the determinism tests rely
		// on it).
		streams = 4
		pointCap = 4e9
	}
	pageTab := report.NewTable(
		fmt.Sprintf("Memory: paging economy at %.0f GB x 2 devices, %d initial streams + churn (kv-pressure balancer)", pointCap/1e9, streams),
		"spill", "sessions", "served", "dropped_pct", "p99_ms", "pages_in", "pages_out",
		"pagein_ms", "pageout_ms", "queued", "rejected", "peak_kv", "util_pct")
	for _, spill := range spills {
		cfg := mk(mixes[1].classes, pointCap, spill, 2)
		cfg.Streams = streams
		cfg.Churn = churn
		res := serve.Run(cfg)
		agg, mem := res.Aggregate, res.Memory
		pageTab.AddRow(spill, agg.Sessions, agg.FramesServed, 100*agg.DropRate, 1000*agg.P99,
			mem.PagesIn, mem.PagesOut, 1000*mem.PageInTime, 1000*mem.PageOutTime,
			mem.SessionsQueued, mem.SessionsRejected, mem.PeakResidentKV, 100*res.Utilization)
	}
	return []*report.Table{capTab, pageTab}
}
