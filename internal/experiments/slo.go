package experiments

import (
	"fmt"

	"vrex/internal/hwsim"
	"vrex/internal/report"
	"vrex/internal/serve"
)

// SLOServing sweeps the serving scheduler plane on the edge V-Rex8: offered
// load (initial streams) x scheduling policy (fifo / edf / priority) x
// per-step batch cap, over a two-class mix with a tight-deadline interactive
// class and a loose background class. The first table is the headline sweep
// — continuous batching amortises the per-step weight read, so a saturated
// device serves strictly more frames as the cap rises, while deadline-aware
// ordering decides who eats the queueing delay. The second table zooms into
// one overloaded operating point and shows the per-class story: fifo starves
// the tight class, edf trades background slack for interactive deadlines,
// and priority protects the interactive class outright.
func SLOServing(opts Options) []*report.Table {
	duration := 20.0
	loads := []int{4, 8, 12}
	if opts.Quick {
		duration = 8
		loads = []int{4, 8}
	}
	policies := []string{"fifo", "edf", "priority"}
	batches := []int{1, 4, 8}

	mk := func(policy string, batch, streams int) serve.Config {
		sched, err := serve.ParseScheduler(policy)
		if err != nil {
			panic(fmt.Sprintf("experiments: slo scheduler %q: %v", policy, err))
		}
		sc := serve.DefaultStreamConfig()
		sc.QueryEvery = 0
		sc.StartKV = 20000
		return serve.Config{
			Dev: hwsim.VRex8(), Pol: hwsim.ReSVModel(),
			Streams: streams, Duration: duration,
			Classes: []serve.StreamClass{
				{Name: "interactive", Weight: 0.3, Stream: sc, SLO: 0.6, Priority: 0},
				{Name: "background", Weight: 0.7, Stream: sc, SLO: 2, Priority: 1},
			},
			DropThreshold: 4, Seed: opts.Seed, Workers: opts.Parallel,
			Scheduler: serve.SchedulerConfig{Policy: sched, BatchMax: batch},
		}
	}

	// The per-class detail below revisits three of the sweep's operating
	// points; cache every Run so nothing is simulated twice.
	type point struct {
		policy      string
		batch, load int
	}
	results := map[point]serve.Result{}
	run := func(policy string, batch, load int) serve.Result {
		key := point{policy, batch, load}
		res, ok := results[key]
		if !ok {
			res = serve.Run(mk(policy, batch, load))
			results[key] = res
		}
		return res
	}

	sweep := report.NewTable(
		"SLO: goodput and attainment vs load x scheduler x batch cap (V-Rex8 + ReSV, 2 FPS, 20K KV)",
		"streams", "scheduler", "batch", "served", "dropped_pct", "slo_pct", "goodput_fps",
		"p99_ms", "queue_p99_ms", "mean_batch", "util_pct")
	for _, load := range loads {
		for _, policy := range policies {
			for _, batch := range batches {
				res := run(policy, batch, load)
				agg := res.Aggregate
				steps := 0
				for _, dm := range res.PerDevice {
					steps += dm.Batches
				}
				meanBatch := 0.0
				if steps > 0 {
					meanBatch = float64(agg.FramesServed) / float64(steps)
				}
				sweep.AddRow(load, policy, batch, agg.FramesServed, 100*agg.DropRate,
					100*agg.SLOAttained, agg.Goodput, 1000*agg.P99, 1000*agg.QueueP99,
					meanBatch, 100*res.Utilization)
			}
		}
	}

	// Operating-point detail: per-class deadlines at a saturated load where
	// the policy choice, not raw capacity, decides who attains.
	load := loads[len(loads)-1]
	classTab := report.NewTable(
		fmt.Sprintf("SLO: per-class attainment at %d streams, batch cap 4 (interactive 600 ms vs background 2 s)", load),
		"scheduler", "class", "sessions", "served", "slo_pct", "misses", "p99_ms", "queue_p99_ms")
	for _, policy := range policies {
		res := run(policy, 4, load)
		for _, cm := range append(res.PerClass, res.Aggregate) {
			classTab.AddRow(policy, cm.Class, cm.Sessions, cm.FramesServed,
				100*cm.SLOAttained, cm.DeadlineMisses, 1000*cm.P99, 1000*cm.QueueP99)
		}
	}
	return []*report.Table{sweep, classTab}
}
